// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6) at a reduced scale, plus the micro-benchmarks behind
// the §3.3 eigenvalue-cost claims. Run with
//
//	go test -bench=. -benchmem
//
// and see cmd/fixbench for full-scale, human-readable reproductions.
package fix_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/datagen"
	"github.com/fix-index/fix/internal/eigen"
	"github.com/fix-index/fix/internal/experiments"
	"github.com/fix-index/fix/internal/obs"
	"github.com/fix-index/fix/internal/xpath"
)

// benchScale keeps one benchmark iteration in the tens of milliseconds;
// fixbench runs the same code at scale 1.0.
const benchScale = 0.04

var (
	envMu    sync.Mutex
	envCache = map[datagen.Dataset]*experiments.Env{}
)

func benchEnv(b *testing.B, ds datagen.Dataset) *experiments.Env {
	b.Helper()
	envMu.Lock()
	defer envMu.Unlock()
	if env, ok := envCache[ds]; ok {
		return env
	}
	env, err := experiments.Setup(ds, datagen.Config{Seed: 42, Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	envCache[ds] = env
	return env
}

// BenchmarkTable1Construction measures index construction (Table 1 ICT):
// one full unclustered build per iteration.
func BenchmarkTable1Construction(b *testing.B) {
	for _, ds := range datagen.AllDatasets {
		b.Run(string(ds), func(b *testing.B) {
			env := benchEnv(b, ds)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix, err := core.Build(env.Store, core.Options{
					DepthLimit:   env.DepthLimit(),
					PaperPruning: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if ix.Entries() == 0 {
					b.Fatal("empty index")
				}
			}
		})
	}
}

// BenchmarkTable2Metrics evaluates the representative selectivity queries
// (Table 2) against a prebuilt index.
func BenchmarkTable2Metrics(b *testing.B) {
	for _, ds := range datagen.AllDatasets {
		b.Run(string(ds), func(b *testing.B) {
			env := benchEnv(b, ds)
			if _, err := env.Unclustered(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Table2(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5RandomQueries measures the random-workload metric sweep
// (Figure 5) with a reduced query count.
func BenchmarkFig5RandomQueries(b *testing.B) {
	env := benchEnv(b, datagen.XMarkDataset)
	if _, err := env.Unclustered(); err != nil {
		b.Fatal(err)
	}
	if _, err := env.SoundIndex(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(env, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// The Figure 6 benchmarks run the four-system runtime comparison on each
// dataset of §6.3.
func benchFig6(b *testing.B, ds datagen.Dataset) {
	env := benchEnv(b, ds)
	// Build everything outside the timer.
	if _, err := env.Unclustered(); err != nil {
		b.Fatal(err)
	}
	if _, err := env.Clustered(); err != nil {
		b.Fatal(err)
	}
	if _, err := env.FB(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(env)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.NoK.Count != r.FIXClus.Count {
				b.Fatalf("%s: result mismatch", r.Query)
			}
		}
	}
}

func BenchmarkFig6XMark(b *testing.B)    { benchFig6(b, datagen.XMarkDataset) }
func BenchmarkFig6Treebank(b *testing.B) { benchFig6(b, datagen.TreebankDataset) }
func BenchmarkFig6DBLP(b *testing.B)     { benchFig6(b, datagen.DBLPDataset) }

// BenchmarkFig7Values runs the §6.4 value-predicate workload (Figures 7a
// and 7b).
func BenchmarkFig7Values(b *testing.B) {
	env := benchEnv(b, datagen.DBLPDataset)
	if _, err := env.ValueIndex(experiments.DefaultBeta); err != nil {
		b.Fatal(err)
	}
	if _, err := env.FB(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBetaSweep measures the §6.4 construction-cost tradeoff.
func BenchmarkBetaSweep(b *testing.B) {
	env := benchEnv(b, datagen.DBLPDataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BetaSweep(env, []uint32{10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations measures the design-choice ablations from DESIGN.md.
func BenchmarkAblations(b *testing.B) {
	env := benchEnv(b, datagen.XMarkDataset)
	if _, err := env.Unclustered(); err != nil {
		b.Fatal(err)
	}
	if _, err := env.SoundIndex(); err != nil {
		b.Fatal(err)
	}
	b.Run("root-label", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.AblationRootLabel(env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pruning-mode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.AblationPruningMode(env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Eigenvalue computation cost (paper §3.3: "sub-millisecond for a dense
// 10×10 and sub-second for a dense 300×300 on a Pentium 4").
func randomSkew(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := float64(1 + rng.Intn(40))
			m[i][j] = w
			m[j][i] = -w
		}
	}
	return m
}

func benchEigenDense(b *testing.B, n int) {
	m := randomSkew(n, int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eigen.SkewExtremes(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenDense10(b *testing.B)  { benchEigenDense(b, 10) }
func BenchmarkEigenDense100(b *testing.B) { benchEigenDense(b, 100) }
func BenchmarkEigenDense300(b *testing.B) { benchEigenDense(b, 300) }

// BenchmarkEigenSparsePower measures the sparse σmax path used for
// near-budget subpatterns (up to the paper's 3000-edge cap).
func BenchmarkEigenSparsePower(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n, nEdges = 1500, 3000
	edges := make([]eigen.Edge, 0, nEdges)
	for len(edges) < nEdges {
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(n-i-1)
		edges = append(edges, eigen.Edge{From: int32(i), To: int32(j), W: float64(1 + rng.Intn(40))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if eigen.SkewMaxSparse(n, edges) <= 0 {
			b.Fatal("degenerate result")
		}
	}
}

// BenchmarkParallelBuild measures index construction across worker
// counts (the fixbench -exp parallel sweep as a testing.B target). The
// built index is identical for every worker count; only the wall time
// should move.
func BenchmarkParallelBuild(b *testing.B) {
	env := benchEnv(b, datagen.XMarkDataset)
	for _, w := range experiments.SweepWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix, err := core.Build(env.Store, core.Options{
					DepthLimit:   env.DepthLimit(),
					PaperPruning: true,
					Workers:      w,
				})
				if err != nil {
					b.Fatal(err)
				}
				if ix.Entries() == 0 {
					b.Fatal("empty index")
				}
			}
		})
	}
}

// BenchmarkQueryPipeline isolates the pruning+refinement pipeline of
// Algorithm 2 for one representative query per dataset.
func BenchmarkQueryPipeline(b *testing.B) {
	for _, ds := range datagen.AllDatasets {
		b.Run(string(ds), func(b *testing.B) {
			env := benchEnv(b, ds)
			ix, err := env.Unclustered()
			if err != nil {
				b.Fatal(err)
			}
			q, err := xpath.Parse(experiments.RepresentativeQueries[ds][1].XPath)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryTraceOverhead compares the same query untraced and
// traced. The untraced path is the overhead budget of the observability
// layer: it must match BenchmarkQueryPipeline (tracing off costs only a
// nil check per phase); the traced variant shows the price of the timer
// reads and stats snapshots a WithTrace query pays.
func BenchmarkQueryTraceOverhead(b *testing.B) {
	env := benchEnv(b, datagen.XMarkDataset)
	ix, err := env.Unclustered()
	if err != nil {
		b.Fatal(err)
	}
	q, err := xpath.Parse(experiments.RepresentativeQueries[datagen.XMarkDataset][1].XPath)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := &obs.Trace{}
			if _, err := ix.QueryTraced(context.Background(), q, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}
