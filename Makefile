GO ?= go

.PHONY: build vet test race lint lint-json check bench-parallel fuzz-smoke stress

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the project analyzer suite (tools/fixvet): errcmp, lockcheck,
# ctxcheck, obscheck, depcheck, and doccheck in one pass. Exits non-zero
# on any finding not covered by tools/fixvet/baseline.txt.
lint:
	$(GO) run ./tools/fixvet

# lint-json emits the findings as a JSON array on stdout, for editors
# and CI annotation.
lint-json:
	$(GO) run ./tools/fixvet -json

# check is the full pre-merge gate: vet, build, tests (the fault-injection
# and crash-recovery suites run as part of the default test set), then the
# race detector, then the static-analysis suite.
check: vet build test race lint

# bench-parallel regenerates the committed parallel-construction sweep
# (1/2/4/NumCPU workers; asserts byte-identical indexes).
bench-parallel:
	$(GO) run ./cmd/fixbench -exp parallel -scale 0.2 -json BENCH_parallel.json

# fuzz-smoke runs each native fuzz target briefly on top of the committed
# seed corpus — a cheap regression net for the input-hardening layer.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseXML -fuzztime=10s ./internal/xmltree/
	$(GO) test -fuzz=FuzzParseXPath -fuzztime=10s ./internal/xpath/

# stress hammers the governed fixserve stack (admission gate, breaker,
# panic containment) with concurrent clients under the race detector.
stress:
	FIX_STRESS=1 $(GO) test -race -run TestStressGovernedServer -v ./cmd/fixserve/
