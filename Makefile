GO ?= go

.PHONY: build vet test race check bench-parallel

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full pre-merge gate: vet, build, tests (the fault-injection
# and crash-recovery suites run as part of the default test set), then the
# race detector.
check: vet build test race

# bench-parallel regenerates the committed parallel-construction sweep
# (1/2/4/NumCPU workers; asserts byte-identical indexes).
bench-parallel:
	$(GO) run ./cmd/fixbench -exp parallel -scale 0.2 -json BENCH_parallel.json
