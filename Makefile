GO ?= go

.PHONY: build vet test race check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full pre-merge gate: vet, build, tests (the fault-injection
# and crash-recovery suites run as part of the default test set), then the
# race detector.
check: vet build test race
