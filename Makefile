GO ?= go

.PHONY: build vet test race docs check bench-parallel

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# docs lints the documentation conventions: go vet's doc-comment checks
# plus tools/doclint (package docs everywhere, exported-symbol docs on
# the public fix package).
docs:
	$(GO) vet ./...
	$(GO) run ./tools/doclint

# check is the full pre-merge gate: vet, build, tests (the fault-injection
# and crash-recovery suites run as part of the default test set), then the
# race detector, then the documentation lint.
check: vet build test race docs

# bench-parallel regenerates the committed parallel-construction sweep
# (1/2/4/NumCPU workers; asserts byte-identical indexes).
bench-parallel:
	$(GO) run ./cmd/fixbench -exp parallel -scale 0.2 -json BENCH_parallel.json
