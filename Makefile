GO ?= go

.PHONY: build vet test race lint lint-json check bench-parallel bench-shards bench-maintenance serve-smoke fuzz-smoke stress ingest-crash maintain-crash

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the project analyzer suite (tools/fixvet): the six flat
# passes (errcmp, lockcheck, ctxcheck, obscheck, depcheck, doccheck)
# plus the four flow-aware ones (lockorder, paircheck, atomiccheck,
# sendcheck) in one run, over the library and the tools subtree alike.
# Exits non-zero on any finding not covered by tools/fixvet/baseline.txt.
# Extra flags pass through FIXVET_FLAGS, e.g.
# `make lint FIXVET_FLAGS=-format=github` for CI annotations or
# `make lint FIXVET_FLAGS=-v` for per-pass timing.
FIXVET_FLAGS ?=
lint:
	$(GO) run ./tools/fixvet $(FIXVET_FLAGS)

# lint-json emits the findings as a JSON array on stdout, for editors
# and CI annotation.
lint-json:
	$(GO) run ./tools/fixvet -json

# check is the full pre-merge gate: vet, build, tests (the fault-injection
# and crash-recovery suites run as part of the default test set), then the
# race detector, then the static-analysis suite.
check: vet build test race lint

# bench-parallel regenerates the committed parallel-construction sweep
# (1/2/4/NumCPU workers; asserts byte-identical indexes).
bench-parallel:
	$(GO) run ./cmd/fixbench -exp parallel -scale 0.2 -json BENCH_parallel.json

# bench-shards regenerates the committed collection shard sweep
# (ingest + query throughput at 1/2/4/8 shards).
bench-shards:
	$(GO) run ./cmd/fixbench -exp shards -scale 0.5 -json BENCH_shards.json

# bench-maintenance regenerates the committed ingest-stall comparison:
# per-Add latency while the WAL is absorbed by blocking Saves vs the
# background checkpointer (p50/p99/max stall, replay-window size).
bench-maintenance:
	$(GO) run ./cmd/fixbench -exp maintenance -json BENCH_maintenance.json

# serve-smoke is the collection-serving e2e gate: a two-collection,
# four-shard-each fixserve surface taking concurrent scatter-gather
# queries and routed ingest under the race detector, plus the doc-drift
# check that every served route is in docs/SERVING.md.
serve-smoke:
	$(GO) test -race -v -run 'TestCollectionServerAcceptance|TestServingDocCoversAllRoutes|TestServingDocCoversAllFlags' ./cmd/fixserve/

# fuzz-smoke runs each native fuzz target briefly on top of the committed
# seed corpus — a cheap regression net for the input-hardening layer.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseXML -fuzztime=10s ./internal/xmltree/
	$(GO) test -fuzz=FuzzParseXPath -fuzztime=10s ./internal/xpath/
	$(GO) test -fuzz=FuzzIngestRequest -fuzztime=10s ./cmd/fixserve/

# stress hammers the governed fixserve stack — queries through the
# admission gate, breaker and panic containment, plus concurrent durable
# ingest against a shallow queue — with concurrent clients under the
# race detector.
stress:
	FIX_STRESS=1 $(GO) test -race -run 'TestStressGovernedServer|TestStressIngestAndQuery' -v ./cmd/fixserve/
	FIX_STRESS=1 $(GO) test -race -run 'TestStressMaintain' -v ./fix/

# ingest-crash runs the write-path crash-recovery sweeps: a simulated
# crash at every WAL/heap/index write of the ingest path, checking that
# acknowledged operations survive reopen and unacknowledged ones vanish.
ingest-crash:
	$(GO) test -run 'TestIngestCrashSweep|TestIngestBatchRollbackTransient' -v ./fix/
	$(GO) test -run 'TestCrashDuringDelete|TestIngestLog' -v ./internal/core/

# maintain-crash runs the online-maintenance fault suites: a simulated
# crash at every write of the checkpoint window, scrub detection of
# injected B-tree/heap/WAL/tombstone corruption with automatic repair,
# and the checkpoint failure/suspension/recovery state machine.
maintain-crash:
	$(GO) test -run 'TestCheckpoint|TestScrub|TestMaintainer' -v ./fix/
	$(GO) test -run 'TestScrubDisk' -v ./internal/btree/
