package main

import (
	"context"
	"sync"
)

// gate is the admission-control semaphore: a weighted semaphore with
// FIFO waiters and context-bounded waiting. Every query acquires weight
// before touching the database (traced queries weigh double — they
// collect per-phase timing across the worker pool), so the number of
// concurrently executing queries is bounded no matter how many requests
// arrive. A request that cannot be admitted before its wait context
// expires is turned away, which the HTTP layer reports as 429 with
// Retry-After — load shedding at the door instead of collapse inside.
type gate struct {
	capacity int64

	mu      sync.Mutex // lockcheck: leaf
	cur     int64      // guarded by mu
	waiters []*waiter  // guarded by mu
}

// waiter is one blocked Acquire; ready is closed when the gate grants
// its weight.
type waiter struct {
	weight int64
	ready  chan struct{}
}

func newGate(capacity int64) *gate {
	if capacity < 1 {
		capacity = 1
	}
	return &gate{capacity: capacity}
}

// clamp bounds a request weight to the gate capacity so an over-weight
// request (a traced query against capacity 1) degrades to "take the
// whole gate" instead of blocking forever. Acquire and Release clamp
// identically, so accounting stays balanced.
func (g *gate) clamp(weight int64) int64 {
	if weight > g.capacity {
		return g.capacity
	}
	return weight
}

// Acquire blocks until weight units are granted or ctx is done,
// returning ctx.Err() in the latter case. Grants are FIFO: a heavy
// waiter at the head is not starved by lighter arrivals behind it.
func (g *gate) Acquire(ctx context.Context, weight int64) error {
	weight = g.clamp(weight)
	g.mu.Lock()
	if g.cur+weight <= g.capacity && len(g.waiters) == 0 {
		g.cur += weight
		g.mu.Unlock()
		return nil
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
	}
	g.mu.Lock()
	select {
	case <-w.ready:
		// Granted in the race between ctx firing and taking the lock:
		// hand the grant straight back so the accounting stays exact.
		g.mu.Unlock()
		g.Release(weight)
	default:
		for i, q := range g.waiters {
			if q == w {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				break
			}
		}
		g.mu.Unlock()
	}
	return ctx.Err()
}

// Release returns weight units and admits as many queued waiters as now
// fit, in arrival order.
func (g *gate) Release(weight int64) {
	weight = g.clamp(weight)
	g.mu.Lock()
	g.cur -= weight
	if g.cur < 0 {
		g.cur = 0
	}
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if g.cur+w.weight > g.capacity {
			break
		}
		g.cur += w.weight
		g.waiters = g.waiters[1:]
		close(w.ready)
	}
	g.mu.Unlock()
}

// Load reports the in-flight weight and the capacity; /readyz uses it
// to surface saturation.
func (g *gate) Load() (inFlight, capacity int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur, g.capacity
}
