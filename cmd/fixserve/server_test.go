package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/fix-index/fix/fix"
)

// newTestDB builds a small indexed in-memory database.
func newTestDB(t *testing.T) *fix.DB {
	t.Helper()
	db, err := fix.CreateMem()
	if err != nil {
		t.Fatalf("CreateMem: %v", err)
	}
	docs := []string{
		`<article><author><email>a</email></author><title>x</title></article>`,
		`<article><author>anon</author></article>`,
		`<book><title>y</title></book>`,
	}
	for _, d := range docs {
		if _, err := db.AddDocumentString(d); err != nil {
			t.Fatalf("AddDocumentString: %v", err)
		}
	}
	if err := db.BuildIndex(fix.IndexOptions{}); err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	return db
}

func defaultTestConfig() serverConfig {
	return serverConfig{
		maxInFlight:    4,
		queueWait:      50 * time.Millisecond,
		requestTimeout: 5 * time.Second,
		breakerFaults:  5,
		breakerCool:    time.Hour,
	}
}

// get runs one request through the server's handler.
func get(t *testing.T, s *server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, req)
	return rec
}

func TestQueryEndpoint(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())

	rec := get(t, s, "/query?q="+url.QueryEscape("//article[author]"))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.Count != 2 {
		t.Fatalf("count = %d, want 2", resp.Count)
	}
	if resp.Trace != nil {
		t.Fatal("trace present without trace=1")
	}

	rec = get(t, s, "/query?q="+url.QueryEscape("//article[author]")+"&trace=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("traced status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding traced response: %v", err)
	}
	if resp.Trace == nil {
		t.Fatal("trace missing with trace=1")
	}

	if rec := get(t, s, "/query"); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing q: status = %d, want 400", rec.Code)
	}
	if rec := get(t, s, "/query?q="+url.QueryEscape("//[")); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad query: status = %d, want 400", rec.Code)
	}
}

func TestQueryLimitRejected(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())
	// Over the default 4096-byte expression limit: a well-formed but
	// oversized query is a client error.
	huge := "/" + strings.Repeat("a", 5000)
	rec := get(t, s, "/query?q="+url.QueryEscape(huge))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized query: status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
}

func TestBudgetExceeded422(t *testing.T) {
	db := newTestDB(t)
	db.SetOptions(fix.Options{Limits: fix.Limits{MaxRefineNodes: 1}})
	s := newServer(db, defaultTestConfig())
	rec := get(t, s, "/query?q="+url.QueryEscape("//article[author]"))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("budget kill: status = %d, want 422 (body %s)", rec.Code, rec.Body)
	}
	// Budget kills are expected governance, not index faults.
	if s.brk.State() != "closed" {
		t.Fatalf("breaker state after budget kill = %s, want closed", s.brk.State())
	}
}

func TestDeadline504(t *testing.T) {
	db := newTestDB(t)
	cfg := defaultTestConfig()
	cfg.requestTimeout = time.Nanosecond
	s := newServer(db, cfg)
	rec := get(t, s, "/query?q="+url.QueryEscape("//article[author]"))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status = %d, want 504 (body %s)", rec.Code, rec.Body)
	}
	if s.brk.State() != "closed" {
		t.Fatalf("breaker state after deadline = %s, want closed", s.brk.State())
	}
}

func TestAdmissionShed429(t *testing.T) {
	db := newTestDB(t)
	cfg := defaultTestConfig()
	cfg.maxInFlight = 1
	cfg.queueWait = 5 * time.Millisecond
	s := newServer(db, cfg)

	// Fill the gate so the request cannot be admitted in time.
	if err := s.gate.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	rec := get(t, s, "/query?q="+url.QueryEscape("//article[author]"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated gate: status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	s.gate.Release(1)
	if rec := get(t, s, "/query?q="+url.QueryEscape("//article[author]")); rec.Code != http.StatusOK {
		t.Fatalf("after release: status = %d, want 200", rec.Code)
	}
}

func TestReadyzReflectsSaturation(t *testing.T) {
	db := newTestDB(t)
	cfg := defaultTestConfig()
	cfg.maxInFlight = 1
	s := newServer(db, cfg)

	rec := get(t, s, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("idle readyz: status = %d, want 200", rec.Code)
	}
	var ready readyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatalf("decoding readyz: %v", err)
	}
	if ready.Status != "ready" || ready.Breaker != "closed" {
		t.Fatalf("readyz = %+v, want ready/closed", ready)
	}

	if err := s.gate.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	rec = get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated readyz: status = %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatalf("decoding saturated readyz: %v", err)
	}
	if ready.Status != "saturated" || ready.InFlight != 1 || ready.Capacity != 1 {
		t.Fatalf("readyz = %+v, want saturated 1/1", ready)
	}
	s.gate.Release(1)
}

// TestPanicContainmentDegradesAndBreakerSheds drives the full degraded-
// operation story through HTTP: an injected panic inside the query path
// is contained (500, not a crash), the index is marked degraded (503 on
// /healthz naming the cause), the breaker trips and routes subsequent
// queries to the exact scan fallback, and a later recovery probe closes
// it again.
func TestPanicContainmentDegradesAndBreakerSheds(t *testing.T) {
	db := newTestDB(t)
	cfg := defaultTestConfig()
	cfg.breakerFaults = 1
	cfg.breakerCool = 30 * time.Millisecond
	s := newServer(db, cfg)

	// Inject a fault: the slow-query hook (running inside the query
	// path, below the containment barrier) panics on every query.
	db.SetOptions(fix.Options{
		SlowQueryThreshold: time.Nanosecond,
		OnSlowQuery:        func(fix.QueryTrace) { panic("injected fault") },
	})
	rec := get(t, s, "/query?q="+url.QueryEscape("//article[author]"))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking query: status = %d, want 500 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "panic recovered") {
		t.Fatalf("panicking query body = %q, want ErrPanic text", rec.Body)
	}

	// The contained panic degraded the index: /healthz says so.
	rec = get(t, s, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after panic: status = %d, want 503", rec.Code)
	}
	var health healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	if health.Status != "degraded" || !strings.Contains(health.Cause, "panic") {
		t.Fatalf("healthz = %+v, want degraded with panic cause", health)
	}
	if s.brk.State() != "open" {
		t.Fatalf("breaker state = %s, want open", s.brk.State())
	}

	// Stop injecting; the open breaker still routes around the index.
	db.SetOptions(fix.Options{})
	rec = get(t, s, "/query?q="+url.QueryEscape("//article[author]"))
	if rec.Code != http.StatusOK {
		t.Fatalf("scan-only query: status = %d (body %s)", rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding scan-only response: %v", err)
	}
	if !resp.ScanFallback {
		t.Fatal("open breaker did not force the scan fallback")
	}
	if resp.Count != 2 {
		t.Fatalf("scan-only count = %d, want 2 (fallback must stay exact)", resp.Count)
	}

	// After the cooldown a probe goes back to the index path and, clean,
	// closes the breaker.
	time.Sleep(40 * time.Millisecond)
	rec = get(t, s, "/query?q="+url.QueryEscape("//article[author]"))
	if rec.Code != http.StatusOK {
		t.Fatalf("probe query: status = %d (body %s)", rec.Code, rec.Body)
	}
	if s.brk.State() != "closed" {
		t.Fatalf("breaker state after clean probe = %s, want closed", s.brk.State())
	}

	// The registry counted the contained panic.
	if snap := db.Snapshot(); snap.PanicsRecovered < 1 {
		t.Fatalf("panics_recovered = %d, want >= 1", snap.PanicsRecovered)
	}
}
