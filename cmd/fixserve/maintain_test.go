package main

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/fix-index/fix/fix"
)

// newDiskServer builds a server over a persistent DB (the admin
// checkpoint surface needs one; CreateMem has nothing to checkpoint).
func newDiskServer(t *testing.T) (*server, *fix.DB) {
	t.Helper()
	db, err := fix.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	s := newServer(db, defaultTestConfig())
	t.Cleanup(func() { _ = s.close() })
	return s, db
}

func TestAdminCheckpointEndpoint(t *testing.T) {
	s, db := newDiskServer(t)
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<a/>", "<b/>"}); err != nil {
		t.Fatal(err)
	}
	if db.IngestLag() != 2 {
		t.Fatalf("IngestLag = %d before the checkpoint", db.IngestLag())
	}
	rec := post(t, s, "/admin/checkpoint", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp checkpointResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding checkpoint response: %v", err)
	}
	if resp.Status != "ok" {
		t.Errorf("status = %q", resp.Status)
	}
	if db.IngestLag() != 0 {
		t.Errorf("IngestLag = %d after the checkpoint", db.IngestLag())
	}
}

func TestAdminCheckpointMemDBFails(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())
	defer s.close()
	rec := post(t, s, "/admin/checkpoint", "", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("checkpoint on an in-memory DB: status = %d, body %s", rec.Code, rec.Body)
	}
}

// TestAdminCheckpointRoutesThroughMaintainer checks the handler feeds a
// running maintainer's state machine rather than checkpointing behind
// its back.
func TestAdminCheckpointRoutesThroughMaintainer(t *testing.T) {
	s, db := newDiskServer(t)
	m, err := db.StartMaintainer(context.Background(), fix.MaintainConfig{
		Interval:      time.Hour, // never ticks; only explicit kicks
		ScrubInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s.setMaintainer(m)

	if _, err := db.IngestBatchCtx(context.Background(), []string{"<a/>"}); err != nil {
		t.Fatal(err)
	}
	rec := post(t, s, "/admin/checkpoint", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if got := m.Health().Checkpoints; got != 1 {
		t.Errorf("maintainer recorded %d checkpoints, want 1", got)
	}
}

func TestHealthzReportsMaintainer(t *testing.T) {
	s, db := newDiskServer(t)

	// Without a maintainer: WAL fields present, maintainer omitted.
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Maintainer != nil {
		t.Errorf("maintainer reported with none running: %+v", resp.Maintainer)
	}

	m, err := db.StartMaintainer(context.Background(), fix.MaintainConfig{
		Interval: time.Hour, ScrubInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s.setMaintainer(m)
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<a/>"}); err != nil {
		t.Fatal(err)
	}

	rec = get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status with idle maintainer = %d, body %s", rec.Code, rec.Body)
	}
	resp = healthResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Maintainer == nil || resp.Maintainer.State != fix.MaintainIdle {
		t.Fatalf("maintainer block = %+v, want idle state", resp.Maintainer)
	}
	if resp.WALBytes <= 0 {
		t.Errorf("wal_bytes = %d with a non-empty WAL", resp.WALBytes)
	}
	if resp.LastCheckpointAge < 0 {
		t.Errorf("last_checkpoint_age_seconds = %f", resp.LastCheckpointAge)
	}
}
