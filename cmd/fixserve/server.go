package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"log"
	"net/http"
	"time"

	"github.com/fix-index/fix/fix"
	"github.com/fix-index/fix/internal/obs"
)

// serverConfig carries the operational knobs from flags to the server.
type serverConfig struct {
	maxInFlight    int64            // admission gate capacity, in weight units
	queueWait      time.Duration    // max wait at the gate before 429
	requestTimeout time.Duration    // per-query deadline (0 disables)
	breakerFaults  int              // consecutive faults that trip the breaker
	breakerCool    time.Duration    // open-state cooldown before probing
	ingest         fix.IngestConfig // ingester tuning (queue depth, batching)
	maxIngestBytes int64            // /ingest body cap (0 = defaultMaxIngestBytes)
	pprof          bool
}

// ingester is the slice of fix.Ingester the server drives; a seam so
// handler tests can inject commit-phase failures deterministically.
type ingester interface {
	AddBatch(ctx context.Context, docs []string) ([]uint32, error)
	Delete(ctx context.Context, rec uint32) error
	QueueLen() int
	Close() error
}

// server wires resource governance — the admission gate and the index
// circuit breaker — around a fix.DB's query path, and a shared group-
// commit ingester around its write path.
type server struct {
	db   *fix.DB
	ing  ingester
	gate *gate
	brk  *breaker
	cfg  serverConfig
	// mnt is the background maintainer main starts in single-index
	// mode; nil in handler tests (and on in-memory DBs). Written once
	// before the listener starts. // immutable after publish
	mnt *fix.Maintainer
}

// setMaintainer wires the background maintainer into the server. It is
// part of construction: callers invoke it before the listener starts,
// and the field is read-only afterwards. lockcheck: builder
func (s *server) setMaintainer(m *fix.Maintainer) { s.mnt = m }

func newServer(db *fix.DB, cfg serverConfig) *server {
	return &server{
		db:   db,
		ing:  db.NewIngester(cfg.ingest),
		gate: newGate(cfg.maxInFlight),
		brk:  newBreaker(cfg.breakerFaults, cfg.breakerCool),
		cfg:  cfg,
	}
}

// close drains and stops the shared ingester: everything already
// acknowledged or queued commits before close returns.
func (s *server) close() error { return s.ing.Close() }

func (s *server) handler() http.Handler {
	mux := buildMux(singleModeRoutes, map[string]http.Handler{
		"GET /query":             http.HandlerFunc(s.handleQuery),
		"POST /ingest":           http.HandlerFunc(s.handleIngest),
		"POST /admin/checkpoint": http.HandlerFunc(s.handleAdminCheckpoint),
		"GET /metrics":           http.HandlerFunc(s.handleMetrics),
		"GET /debug/vars":        expvar.Handler(),
		"GET /healthz":           http.HandlerFunc(s.handleHealthz),
		"GET /readyz":            http.HandlerFunc(s.handleReadyz),
	})
	if s.cfg.pprof {
		mountPprof(mux)
	}
	return mux
}

// admit passes one request through the weighted admission gate, waiting
// at most queueWait; on shedding it writes the 429 + Retry-After
// response and returns false. The caller must Release(weight) after a
// true return.
func admit(w http.ResponseWriter, r *http.Request, g *gate, queueWait time.Duration, weight int64) bool {
	waitCtx := r.Context()
	if queueWait > 0 {
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithTimeout(waitCtx, queueWait)
		defer cancel()
	}
	if err := g.Acquire(waitCtx, weight); err != nil {
		obs.Default().ObserveAdmissionRejected()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server at capacity, retry later", http.StatusTooManyRequests)
		return false
	}
	return true
}

// queryResponse is the /query JSON shape. Trace is present only when
// the request asked for one with trace=1; ScanFallback reports that the
// count came from the exact sequential scan (degraded index, or the
// circuit breaker routing around a suspected-faulty one).
type queryResponse struct {
	Query        string          `json:"query"`
	Count        int             `json:"count"`
	Entries      int             `json:"entries"`
	Candidates   int             `json:"candidates"`
	Matched      int             `json:"matched_entries"`
	ScanFallback bool            `json:"scan_fallback,omitempty"`
	Trace        *fix.QueryTrace `json:"trace,omitempty"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("q")
	if expr == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	traced := r.URL.Query().Get("trace") == "1"
	weight := int64(1)
	if traced {
		weight = 2
	}
	if !admit(w, r, s.gate, s.cfg.queueWait, weight) {
		return
	}
	defer s.gate.Release(weight)

	qctx := r.Context()
	if s.cfg.requestTimeout > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, s.cfg.requestTimeout)
		defer cancel()
	}
	opts := []fix.QueryOption{}
	if traced {
		opts = append(opts, fix.Trace())
	}
	useIndex := s.brk.Allow()
	if !useIndex {
		opts = append(opts, fix.ScanOnly())
	}
	res, err := s.db.QueryCtx(qctx, expr, opts...)
	if useIndex && s.db.HasIndex() {
		s.brk.Record(indexFault(err))
	}
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, queryResponse{
		Query:        expr,
		Count:        res.Count,
		Entries:      res.Entries,
		Candidates:   res.Candidates,
		Matched:      res.MatchedEntries,
		ScanFallback: res.ScanFallback,
		Trace:        res.Trace,
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.db.Metrics())
}

// healthResponse is the /healthz JSON body. IngestLag counts
// acknowledged operations the ingest WAL holds ahead of the last
// checkpoint (replayed, not lost, on a crash); IngestQueue counts
// operations still waiting for their group commit; WALBytes and
// LastCheckpointAge size the replay window a crash right now would
// cost. Maintainer carries the background checkpointer's state machine
// (idle / retrying / suspended) and scrub history when one is running.
type healthResponse struct {
	Status            string                `json:"status"`
	Cause             string                `json:"cause,omitempty"`
	Generation        uint64                `json:"generation"`
	IngestLag         int                   `json:"ingest_lag"`
	IngestQueue       int                   `json:"ingest_queue"`
	WALBytes          int64                 `json:"wal_bytes"`
	LastCheckpointAge float64               `json:"last_checkpoint_age_seconds"`
	Maintainer        *fix.MaintainerHealth `json:"maintainer,omitempty"`
}

// handleHealthz reports index health: 200 when healthy (or there is no
// index to degrade), 503 with the degradation cause otherwise. A
// degraded database still answers queries — exactly, via the scan
// fallback — so health here means "at full speed", not "alive". A
// suspended checkpointer also degrades health: serving continues from
// the current base + WAL, but the replay window is growing unboundedly.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:            "ok",
		Generation:        s.db.GenerationID(),
		IngestLag:         s.db.IngestLag(),
		IngestQueue:       s.ing.QueueLen(),
		WALBytes:          s.db.WALBytes(),
		LastCheckpointAge: time.Since(s.db.LastCheckpoint()).Seconds(),
	}
	if s.mnt != nil {
		h := s.mnt.Health()
		resp.Maintainer = &h
		if h.State == fix.MaintainSuspended {
			resp.Status = "degraded"
			resp.Cause = "checkpointing suspended: " + h.LastError
		}
	}
	if s.db.HasIndex() {
		if err := s.db.IndexHealth(); err != nil {
			resp.Status = "degraded"
			resp.Cause = err.Error()
		}
	}
	if resp.Status != "ok" {
		writeJSONStatus(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSONStatus(w, http.StatusOK, resp)
}

// checkpointResponse is the POST /admin/checkpoint JSON body, reporting
// the post-checkpoint replay window (0 bytes on success).
type checkpointResponse struct {
	Status   string `json:"status"`
	WALBytes int64  `json:"wal_bytes"`
}

// handleAdminCheckpoint forces a checkpoint right now — before taking a
// filesystem snapshot, or to drain the replay window ahead of a planned
// restart. It routes through the maintainer when one is running (so the
// attempt also feeds its failure/suspension state machine) and falls
// back to a direct checkpoint otherwise.
func (s *server) handleAdminCheckpoint(w http.ResponseWriter, r *http.Request) {
	var err error
	if s.mnt != nil {
		err = s.mnt.Checkpoint(r.Context())
	} else {
		err = s.db.CheckpointCtx(r.Context())
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, checkpointResponse{Status: "ok", WALBytes: s.db.WALBytes()})
}

// readyResponse is the /readyz JSON body.
type readyResponse struct {
	Status   string `json:"status"`
	InFlight int64  `json:"in_flight"`
	Capacity int64  `json:"capacity"`
	Breaker  string `json:"breaker"`
}

// handleReadyz reflects admission-gate saturation: 503 while the gate is
// full (new queries would queue or be shed), 200 otherwise. Load
// balancers use it to steer traffic away before requests start seeing
// 429s; the breaker state rides along for operators.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	inFlight, capacity := s.gate.Load()
	resp := readyResponse{
		Status:   "ready",
		InFlight: inFlight,
		Capacity: capacity,
		Breaker:  s.brk.State(),
	}
	if inFlight >= capacity {
		resp.Status = "saturated"
		writeJSONStatus(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSONStatus(w, http.StatusOK, resp)
}

// statusFor maps a query error onto an HTTP status: client mistakes are
// 400, resource kills name which bound was hit, and everything else is
// a server fault.
func statusFor(err error) int {
	switch {
	case errors.Is(err, fix.ErrBadQuery), errors.Is(err, fix.ErrQueryLimit):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, fix.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// indexFault reports whether err impugns the index read path (and so
// should feed the circuit breaker). Client errors, deadlines,
// cancellations and budget kills are expected under governance and say
// nothing about index health.
func indexFault(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, fix.ErrBadQuery) || errors.Is(err, fix.ErrQueryLimit) ||
		errors.Is(err, fix.ErrBudgetExceeded) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("fixserve: encoding response: %v", err)
	}
}
