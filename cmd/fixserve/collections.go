package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sort"

	"github.com/fix-index/fix/fix"
	"github.com/fix-index/fix/internal/collection"
	"github.com/fix-index/fix/internal/obs"
)

// Collection mode (-collections DIR): fixserve serves a registry of
// named, sharded collections instead of one database. Per-collection
// serving lives under /c/{collection}/ — query, ingest, stats — and the
// admin surface under /collections creates, lists and drops them. The
// admission gate is shared across collections, with per-tenant weights:
// each request is charged its collection's manifest Weight (doubled for
// traced queries), so one heavy tenant exhausts its share of capacity
// without multiplying everyone's latency. The circuit breaker is a
// single-index-mode feature; collection shards already degrade to the
// exact scan fallback individually, which /healthz and each result's
// shard rows report.

// colServer wires the admission gate and the collection service behind
// the collection-mode HTTP surface.
type colServer struct {
	svc  *collection.Service
	gate *gate
	cfg  serverConfig
}

func newColServer(svc *collection.Service, cfg serverConfig) *colServer {
	return &colServer{svc: svc, gate: newGate(cfg.maxInFlight), cfg: cfg}
}

func (cs *colServer) handler() http.Handler {
	mux := buildMux(collectionModeRoutes, map[string]http.Handler{
		"GET /c/{collection}/query":        http.HandlerFunc(cs.handleQuery),
		"POST /c/{collection}/ingest":      http.HandlerFunc(cs.handleIngest),
		"GET /c/{collection}/stats":        http.HandlerFunc(cs.handleStats),
		"GET /collections":                 http.HandlerFunc(cs.handleList),
		"POST /collections":                http.HandlerFunc(cs.handleCreate),
		"DELETE /collections/{collection}": http.HandlerFunc(cs.handleDrop),
		"GET /metrics":                     http.HandlerFunc(cs.handleMetrics),
		"GET /debug/vars":                  expvar.Handler(),
		"GET /healthz":                     http.HandlerFunc(cs.handleHealthz),
		"GET /readyz":                      http.HandlerFunc(cs.handleReadyz),
	})
	if cs.cfg.pprof {
		mountPprof(mux)
	}
	return mux
}

// acquire resolves the {collection} path value against the registry,
// writing the 404 itself when the name is unknown. The release func
// pins the collection against Drop for the request's duration.
func (cs *colServer) acquire(w http.ResponseWriter, r *http.Request) (*collection.Collection, func(), bool) {
	name := r.PathValue("collection")
	col, release, err := cs.svc.Acquire(name)
	if err != nil {
		http.Error(w, fmt.Sprintf("unknown collection %q", name), http.StatusNotFound)
		return nil, nil, false
	}
	return col, release, true
}

// colQueryResponse is the /c/{collection}/query JSON shape: the merged
// collection result plus request attribution. The embedded
// collection.Result carries count, per-shard rows (with traces when
// trace=1), and the partial/degraded flags.
type colQueryResponse struct {
	Collection string `json:"collection"`
	Query      string `json:"query"`
	collection.Result
}

func (cs *colServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	col, release, ok := cs.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	expr := r.URL.Query().Get("q")
	if expr == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	traced := r.URL.Query().Get("trace") == "1"
	weight := int64(col.Weight())
	if traced {
		weight *= 2
	}
	if !admit(w, r, cs.gate, cs.cfg.queueWait, weight) {
		return
	}
	defer cs.gate.Release(weight)

	qctx := r.Context()
	if cs.cfg.requestTimeout > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, cs.cfg.requestTimeout)
		defer cancel()
	}
	res, err := col.Query(qctx, expr, collection.QueryOpts{Trace: traced})
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, colQueryResponse{Collection: col.Name(), Query: expr, Result: res})
}

func (cs *colServer) handleIngest(w http.ResponseWriter, r *http.Request) {
	col, release, ok := cs.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	weight := int64(col.Weight())
	if !admit(w, r, cs.gate, cs.cfg.queueWait, weight) {
		return
	}
	defer cs.gate.Release(weight)

	ops, ok := readIngestOps(w, r, cs.cfg.maxIngestBytes)
	if !ok {
		return
	}
	// Validate documents before anything is queued, like single-index
	// mode: a malformed line must not leave earlier shard batches
	// committed.
	for i, op := range ops {
		if op.Op == "add" {
			if err := col.ValidateDocument(op.XML); err != nil {
				http.Error(w, fmt.Sprintf("op %d: %v", i+1, err), http.StatusBadRequest)
				return
			}
		}
	}

	resp, err := cs.runIngest(r.Context(), col, ops)
	if err != nil {
		if errors.Is(err, fix.ErrIngestQueueFull) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), ingestStatusFor(err))
		return
	}
	writeJSON(w, resp)
}

// runIngest executes the decoded operations in order through the
// collection: runs of consecutive adds go down as one routed AddBatch
// (one group commit per touched shard), deletes resolve their global
// IDs to shards individually.
func (cs *colServer) runIngest(ctx context.Context, col *collection.Collection, ops []ingestOp) (ingestResponse, error) {
	resp := ingestResponse{IDs: []uint64{}}
	var run []string
	flushAdds := func() error {
		if len(run) == 0 {
			return nil
		}
		ids, err := col.AddBatch(ctx, run)
		if err != nil {
			return err
		}
		resp.IDs = append(resp.IDs, ids...)
		resp.Added += len(ids)
		run = run[:0]
		return nil
	}
	for _, op := range ops {
		switch op.Op {
		case "add":
			run = append(run, op.XML)
		case "delete":
			if err := flushAdds(); err != nil {
				return resp, err
			}
			if err := col.Delete(ctx, *op.Rec); err != nil {
				return resp, err
			}
			resp.Deleted++
		}
	}
	if err := flushAdds(); err != nil {
		return resp, err
	}
	resp.IngestLag = col.Stats().IngestLag
	return resp, nil
}

func (cs *colServer) handleStats(w http.ResponseWriter, r *http.Request) {
	col, release, ok := cs.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	writeJSON(w, col.Stats())
}

// createRequest is the POST /collections JSON body: the collection
// spec. Name is required; Shards defaults to 1, Weight to 1.
type createRequest struct {
	Name       string `json:"name"`
	Shards     int    `json:"shards"`
	Weight     int    `json:"weight"`
	DepthLimit int    `json:"depth_limit"`
	Values     bool   `json:"values"`
	Workers    int    `json:"workers"`
}

func (cs *colServer) handleCreate(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req createRequest
	if err := dec.Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	col, err := cs.svc.Create(r.Context(), req.Name, collection.Spec{
		Name:       req.Name,
		Shards:     req.Shards,
		Weight:     req.Weight,
		DepthLimit: req.DepthLimit,
		Values:     req.Values,
		Workers:    req.Workers,
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, collection.ErrExists) {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSONStatus(w, http.StatusCreated, col.Stats())
}

// listResponse is the GET /collections JSON shape.
type listResponse struct {
	Collections []collection.Stats `json:"collections"`
}

func (cs *colServer) handleList(w http.ResponseWriter, r *http.Request) {
	resp := listResponse{Collections: []collection.Stats{}}
	for _, name := range cs.svc.Names() {
		col, release, err := cs.svc.Acquire(name)
		if err != nil {
			continue // dropped between Names and Acquire
		}
		resp.Collections = append(resp.Collections, col.Stats())
		release()
	}
	sort.Slice(resp.Collections, func(i, j int) bool {
		return resp.Collections[i].Spec.Name < resp.Collections[j].Spec.Name
	})
	writeJSON(w, resp)
}

func (cs *colServer) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("collection")
	if err := cs.svc.Drop(name); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, collection.ErrNotFound) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (cs *colServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, obs.Default().Snapshot())
}

// colHealthResponse is the collection-mode /healthz JSON body: the
// aggregate verdict plus every shard of every collection (generation,
// lag, health cause).
type colHealthResponse struct {
	Status      string                              `json:"status"`
	Collections map[string][]collection.ShardHealth `json:"collections"`
}

// handleHealthz aggregates per-shard health across all collections: 200
// when every shard of every collection is at full speed, 503 with the
// degraded shards' causes otherwise. As in single-index mode, degraded
// means "answering exactly but slowly via the scan fallback", not
// "down".
func (cs *colServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := colHealthResponse{Status: "ok", Collections: map[string][]collection.ShardHealth{}}
	for _, name := range cs.svc.Names() {
		col, release, err := cs.svc.Acquire(name)
		if err != nil {
			continue
		}
		health := col.Health()
		release()
		resp.Collections[name] = health
		for _, h := range health {
			if !h.Healthy {
				resp.Status = "degraded"
			}
		}
	}
	if resp.Status != "ok" {
		writeJSONStatus(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSONStatus(w, http.StatusOK, resp)
}

// handleReadyz mirrors single-index mode minus the breaker (collection
// shards degrade individually instead): 503 while the shared admission
// gate is saturated.
func (cs *colServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	inFlight, capacity := cs.gate.Load()
	resp := readyResponse{
		Status:   "ready",
		InFlight: inFlight,
		Capacity: capacity,
		Breaker:  "none",
	}
	if inFlight >= capacity {
		resp.Status = "saturated"
		writeJSONStatus(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSONStatus(w, http.StatusOK, resp)
}
