// Command fixserve serves queries and metrics for a FIX database over
// HTTP. It is the operational face of the observability layer: every
// query can return its full trace, the process-wide metrics registry is
// exported as JSON and expvar, slow queries are logged to stderr, and
// the runtime profiler can be mounted for live debugging.
//
// Usage:
//
//	fixserve -db /tmp/xmarkdb -addr :8080 [-slow 50ms] [-pprof]
//
// Endpoints:
//
//	GET /query?q=XPATH[&trace=1]   run a query; JSON result, trace opt-in
//	GET /metrics                   fix.DB.Snapshot() as JSON
//	GET /debug/vars                expvar (includes the "fix" variable)
//	GET /debug/pprof/              net/http/pprof (only with -pprof)
//	GET /healthz                   200 if the index is healthy, 503 if degraded
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"github.com/fix-index/fix/fix"
)

func main() {
	dbdir := flag.String("db", "", "database directory")
	addr := flag.String("addr", ":8080", "listen address")
	slow := flag.Duration("slow", 0, "slow-query log threshold (0 disables)")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()
	if *dbdir == "" {
		fmt.Fprintln(os.Stderr, "usage: fixserve -db DIR [-addr :8080] [-slow DUR] [-pprof]")
		os.Exit(2)
	}

	db, err := fix.Open(*dbdir)
	if err != nil {
		log.Fatalf("fixserve: %v", err)
	}
	defer db.Close()

	if *slow > 0 {
		db.SetOptions(fix.Options{
			SlowQueryThreshold: *slow,
			OnSlowQuery: func(t fix.QueryTrace) {
				log.Printf("slow query (>= %v):\n%s", *slow, t.String())
			},
		})
	}
	fix.PublishExpvar(db)

	mux := http.NewServeMux()
	mux.HandleFunc("/query", queryHandler(db))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, db.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if db.HasIndex() {
			if err := db.IndexHealth(); err != nil {
				http.Error(w, fmt.Sprintf("index degraded: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	log.Printf("fixserve: %d documents, listening on %s", db.NumDocuments(), *addr)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      mux,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

// queryResponse is the /query JSON shape. Trace is present only when
// the request asked for one with trace=1.
type queryResponse struct {
	Query      string          `json:"query"`
	Count      int             `json:"count"`
	Entries    int             `json:"entries"`
	Candidates int             `json:"candidates"`
	Matched    int             `json:"matched_entries"`
	Trace      *fix.QueryTrace `json:"trace,omitempty"`
}

func queryHandler(db *fix.DB) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		expr := r.URL.Query().Get("q")
		if expr == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		var opts []fix.QueryOption
		if r.URL.Query().Get("trace") == "1" {
			opts = append(opts, fix.WithTrace())
		}
		res, err := db.QueryCtx(r.Context(), expr, opts...)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, queryResponse{
			Query:      expr,
			Count:      res.Count,
			Entries:    res.Entries,
			Candidates: res.Candidates,
			Matched:    res.MatchedEntries,
			Trace:      res.Trace,
		})
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("fixserve: encoding response: %v", err)
	}
}
