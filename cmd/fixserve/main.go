// Command fixserve serves queries and metrics for a FIX database over
// HTTP. It is the operational face of the observability and resource-
// governance layers: every query can return its full trace, the
// process-wide metrics registry is exported as JSON and expvar, slow
// queries are logged to stderr, and the runtime profiler can be mounted
// for live debugging.
//
// Admission control bounds concurrent query work with a weighted
// semaphore: requests that cannot be admitted within -queue-wait are
// shed with 429 and a Retry-After header. Each admitted query runs
// under -request-timeout, and a circuit breaker watches for internal
// index faults — after -breaker-faults consecutive failures it routes
// queries to the exact scan fallback until a recovery probe succeeds.
// SIGINT/SIGTERM drain in-flight requests before exiting.
//
// Writes arrive through POST /ingest and run through a shared group-
// commit ingester: a bounded queue (-ingest-queue) feeds a committer
// that batches up to -ingest-batch operations per WAL fsync, waiting at
// most -ingest-wait for stragglers. A full queue sheds with 429 +
// Retry-After. Acknowledged writes survive a crash via WAL replay; a
// background maintainer absorbs the WAL into the base snapshot in
// chunked checkpoints once it crosses -checkpoint-ops/-checkpoint-bytes
// or ages past -checkpoint-age, scrubs the durable files every
// -scrub-interval (auto-rebuilding a corrupt index), and surfaces its
// state on /healthz; POST /admin/checkpoint forces a checkpoint, and
// shutdown runs a final Save after the drain.
//
// fixserve runs in one of two modes. Single-index mode (-db DIR)
// serves one database. Collection mode (-collections DIR) serves a
// registry of named, sharded collections: documents route to shards by
// root label, queries scatter-gather across shards with per-shard
// deadlines (-shard-timeout) and order-stable merge, each request is
// charged its collection's admission weight, and a background manager
// periodically saves every shard and rebuilds degraded ones
// (-save-interval). docs/SERVING.md is the complete operations
// reference for both modes.
//
// Usage:
//
//	fixserve -db /tmp/xmarkdb -addr :8080 [-slow 50ms] [-pprof]
//	fixserve -collections /srv/fix -addr :8080 [-shard-timeout 2s]
//
// Single-index endpoints:
//
//	GET /query?q=XPATH[&trace=1]   run a query; JSON result, trace opt-in
//	POST /ingest                   durable writes: raw XML body, or NDJSON add/delete ops
//	POST /admin/checkpoint         force a WAL checkpoint now
//	GET /metrics                   fix.DB.Metrics() as JSON
//	GET /debug/vars                expvar (includes the "fix" variable)
//	GET /debug/pprof/              net/http/pprof (only with -pprof)
//	GET /healthz                   200 if the index is healthy, 503 + JSON cause if degraded
//	GET /readyz                    200 if the admission gate has room, 503 when saturated
//
// Collection-mode endpoints (see docs/SERVING.md for bodies):
//
//	GET /c/{collection}/query?q=XPATH[&trace=1]   scatter-gather query over the collection's shards
//	POST /c/{collection}/ingest                   routed durable writes (global IDs)
//	GET /c/{collection}/stats                     spec + per-shard document/index/lag counts
//	GET /collections                              list collections with stats
//	POST /collections                             create a collection (JSON spec)
//	DELETE /collections/{collection}              drop a collection and its data
//	GET /metrics, /debug/vars, /healthz, /readyz  as above; /healthz aggregates every shard
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/fix-index/fix/fix"
	"github.com/fix-index/fix/internal/collection"
	"github.com/fix-index/fix/internal/obs"
)

func main() {
	dbdir := flag.String("db", "", "database directory (single-index mode)")
	colRoot := flag.String("collections", "", "collections root directory (collection mode; mutually exclusive with -db)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard query deadline in collection mode (0 disables)")
	addr := flag.String("addr", ":8080", "listen address")
	slow := flag.Duration("slow", 0, "slow-query log threshold (0 disables)")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	maxInFlight := flag.Int64("max-inflight", 64, "admission gate capacity in weight units (traced queries weigh 2)")
	queueWait := flag.Duration("queue-wait", time.Second, "max wait at the admission gate before shedding with 429")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-query deadline (0 disables)")
	brkFaults := flag.Int("breaker-faults", 5, "consecutive index faults that trip the circuit breaker")
	brkCool := flag.Duration("breaker-cooldown", 10*time.Second, "breaker open-state cooldown before a recovery probe")
	maxRefine := flag.Int64("max-refine-nodes", 0, "per-query refinement-node budget (0 = unlimited)")
	maxCand := flag.Int("max-candidates", 0, "per-query candidate cap (0 = unlimited)")
	maxResults := flag.Int("max-results", 0, "per-query result cap (0 = unlimited)")
	ingestQueue := flag.Int("ingest-queue", 256, "bounded ingest queue depth in operations (full queue sheds with 429)")
	ingestBatch := flag.Int("ingest-batch", 64, "max operations per ingest group commit")
	ingestWait := flag.Duration("ingest-wait", 2*time.Millisecond, "max linger for an ingest group commit to fill")
	maxIngestBytes := flag.Int64("max-ingest-bytes", defaultMaxIngestBytes, "max /ingest request body size")
	saveInterval := flag.Duration("save-interval", 0, "collection mode: shard-checkpoint tick interval (0 disables); single mode: legacy alias for -checkpoint-age")
	ckOps := flag.Int("checkpoint-ops", 1024, "checkpoint once the ingest WAL holds this many operations (negative disables)")
	ckBytes := flag.Int64("checkpoint-bytes", 4<<20, "checkpoint once the ingest WAL reaches this size (negative disables)")
	ckAge := flag.Duration("checkpoint-age", 30*time.Second, "checkpoint once the last one is this old and the WAL is non-empty (negative disables)")
	scrubInterval := flag.Duration("scrub-interval", 2*time.Minute, "background scrub pass interval over index pages, heap records and the WAL (0 disables)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline")
	flag.Parse()
	if (*dbdir == "") == (*colRoot == "") {
		fmt.Fprintln(os.Stderr, "usage: fixserve -db DIR | -collections DIR  [-addr :8080] [-slow DUR] [-pprof]")
		os.Exit(2)
	}

	cfg := serverConfig{
		maxInFlight:    *maxInFlight,
		queueWait:      *queueWait,
		requestTimeout: *reqTimeout,
		breakerFaults:  *brkFaults,
		breakerCool:    *brkCool,
		ingest: fix.IngestConfig{
			QueueDepth: *ingestQueue,
			MaxBatch:   *ingestBatch,
			MaxWait:    *ingestWait,
		},
		maxIngestBytes: *maxIngestBytes,
		pprof:          *withPprof,
	}

	if *colRoot != "" {
		serveCollections(*colRoot, *addr, cfg, collectionTuning{
			shardTimeout:   *shardTimeout,
			maxRefineNodes: *maxRefine,
			maxCandidates:  *maxCand,
			maxResults:     *maxResults,
			slow:           *slow,
			saveInterval:   *saveInterval,
			drain:          *drain,
		})
		return
	}

	db, err := fix.Open(*dbdir)
	if err != nil {
		log.Fatalf("fixserve: %v", err)
	}
	defer db.Close()

	dbOpts := fix.Options{
		Limits: fix.Limits{
			MaxRefineNodes: *maxRefine,
			MaxCandidates:  *maxCand,
			MaxResults:     *maxResults,
		},
	}
	if *slow > 0 {
		dbOpts.SlowQueryThreshold = *slow
		dbOpts.OnSlowQuery = func(t fix.QueryTrace) {
			log.Printf("slow query (>= %v):\n%s", *slow, t.String())
		}
	}
	db.SetOptions(dbOpts)
	fix.PublishExpvar(db)

	s := newServer(db, cfg)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      s.handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The maintainer replaces the old unconditional Save ticker: it
	// checkpoints on WAL thresholds or age (skipping clean ticks), backs
	// off and eventually suspends on persistent failures, scrubs the
	// durable files, and auto-rebuilds a degraded index.
	mcfg := fix.MaintainConfig{
		WALOps:        *ckOps,
		WALBytes:      *ckBytes,
		MaxAge:        *ckAge,
		ScrubInterval: *scrubInterval,
	}
	if *saveInterval > 0 {
		mcfg.MaxAge = *saveInterval
	}
	if *scrubInterval <= 0 {
		mcfg.ScrubInterval = -1
	}
	mnt, err := db.StartMaintainer(ctx, mcfg)
	if err != nil {
		log.Fatalf("fixserve: %v", err)
	}
	s.setMaintainer(mnt)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("fixserve: %d documents, listening on %s", db.NumDocuments(), *addr)

	select {
	case err := <-errc:
		log.Fatalf("fixserve: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("fixserve: shutdown signal, draining for up to %v", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("fixserve: drain incomplete: %v", err)
		}
		// Stop maintenance, flush queued writes, then absorb the WAL so
		// restart starts clean.
		mnt.Close()
		if err := s.close(); err != nil {
			log.Printf("fixserve: ingester close: %v", err)
		}
		if err := db.Save(); err != nil {
			log.Printf("fixserve: final save: %v", err)
		}
	}
}

// collectionTuning carries the collection-mode knobs main parses that
// are not part of the shared serverConfig.
type collectionTuning struct {
	shardTimeout   time.Duration
	maxRefineNodes int64
	maxCandidates  int
	maxResults     int
	slow           time.Duration
	saveInterval   time.Duration
	drain          time.Duration
}

// serveCollections is collection-mode main: open the registry, start
// the background manager, serve, and on SIGINT/SIGTERM drain requests,
// save every shard's WAL into its base commit and close.
func serveCollections(root, addr string, cfg serverConfig, tune collectionTuning) {
	opts := collection.Options{
		ShardTimeout:   tune.shardTimeout,
		MaxRefineNodes: tune.maxRefineNodes,
		MaxCandidates:  tune.maxCandidates,
		MaxResults:     tune.maxResults,
		Ingest:         cfg.ingest,
	}
	if tune.slow > 0 {
		opts.SlowQueryThreshold = tune.slow
		opts.OnSlowQuery = func(t fix.QueryTrace) {
			log.Printf("slow query (>= %v):\n%s", tune.slow, t.String())
		}
	}
	svc, err := collection.OpenService(root, opts)
	if err != nil {
		log.Fatalf("fixserve: %v", err)
	}
	obs.Publish(func() any { return obs.Default().Snapshot() })

	cs := newColServer(svc, cfg)
	srv := &http.Server{
		Addr:         addr,
		Handler:      cs.handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	mgr := collection.StartManager(ctx, svc, tune.saveInterval, log.Printf)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("fixserve: serving %d collection(s) from %s on %s", len(svc.Names()), root, addr)

	select {
	case err := <-errc:
		log.Fatalf("fixserve: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("fixserve: shutdown signal, draining for up to %v", tune.drain)
		sctx, cancel := context.WithTimeout(context.Background(), tune.drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("fixserve: drain incomplete: %v", err)
		}
		mgr.Wait()
		// Absorb every shard's WAL, then close; operations still queued
		// at save time commit during close and replay on next open.
		if err := svc.SaveAll(); err != nil {
			log.Printf("fixserve: final save: %v", err)
		}
		if err := svc.Close(); err != nil {
			log.Printf("fixserve: close: %v", err)
		}
	}
}
