package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fix-index/fix/internal/collection"
)

// newTestColServer opens an empty collection service in a temp dir and
// wraps it in a collection-mode server.
func newTestColServer(t *testing.T, opts collection.Options, cfg serverConfig) *colServer {
	t.Helper()
	svc, err := collection.OpenService(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	return newColServer(svc, cfg)
}

// do runs one request through the collection-mode handler.
func (cs *colServer) do(t *testing.T, method, path, contentType, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	cs.handler().ServeHTTP(rec, req)
	return rec
}

// createCollection creates a collection over HTTP and fails the test on
// any status but 201.
func createCollection(t *testing.T, cs *colServer, body string) {
	t.Helper()
	rec := cs.do(t, http.MethodPost, "/collections", "application/json", body)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create %s: status = %d, body %s", body, rec.Code, rec.Body)
	}
}

func TestCollectionAdminFlow(t *testing.T) {
	cs := newTestColServer(t, collection.Options{}, defaultTestConfig())

	createCollection(t, cs, `{"name":"books","shards":2}`)
	if rec := cs.do(t, http.MethodPost, "/collections", "application/json", `{"name":"books"}`); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate create: status = %d, want 409", rec.Code)
	}
	if rec := cs.do(t, http.MethodPost, "/collections", "application/json", `{"name":"no/slash"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad name: status = %d, want 400", rec.Code)
	}
	if rec := cs.do(t, http.MethodPost, "/collections", "application/json", `{"name":"x","bogus":1}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: status = %d, want 400", rec.Code)
	}

	createCollection(t, cs, `{"name":"films","shards":1,"weight":2}`)
	rec := cs.do(t, http.MethodGet, "/collections", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: status = %d", rec.Code)
	}
	var list listResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Collections) != 2 || list.Collections[0].Spec.Name != "books" || list.Collections[1].Spec.Name != "films" {
		t.Fatalf("list = %+v, want [books films]", list)
	}
	if list.Collections[1].Spec.Weight != 2 {
		t.Fatalf("films weight = %d, want 2", list.Collections[1].Spec.Weight)
	}

	if rec := cs.do(t, http.MethodDelete, "/collections/films", "", ""); rec.Code != http.StatusNoContent {
		t.Fatalf("drop: status = %d, want 204", rec.Code)
	}
	if rec := cs.do(t, http.MethodDelete, "/collections/films", "", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("double drop: status = %d, want 404", rec.Code)
	}
	if rec := cs.do(t, http.MethodGet, "/c/films/query?q=//x", "", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("query on dropped collection: status = %d, want 404", rec.Code)
	}
	if rec := cs.do(t, http.MethodGet, "/c/nope/stats", "", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("stats on unknown collection: status = %d, want 404", rec.Code)
	}
}

func TestCollectionQueryIngestStats(t *testing.T) {
	cs := newTestColServer(t, collection.Options{}, defaultTestConfig())
	createCollection(t, cs, `{"name":"books","shards":4}`)

	// Raw-XML ingest: one routed add, global ID comes back.
	rec := cs.do(t, http.MethodPost, "/c/books/ingest", "application/xml",
		`<book><title>one</title></book>`)
	if rec.Code != http.StatusOK {
		t.Fatalf("raw ingest: status = %d, body %s", rec.Code, rec.Body)
	}
	var ing ingestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Added != 1 || len(ing.IDs) != 1 {
		t.Fatalf("raw ingest response = %+v", ing)
	}
	bookShard, _ := collection.SplitID(ing.IDs[0])
	if want := collection.ShardForLabel("book", 4); bookShard != want {
		t.Fatalf("book routed to shard %d, want %d", bookShard, want)
	}

	// NDJSON ingest: adds with two different roots route to their
	// shards; the later delete addresses a global ID.
	body := `{"op":"add","xml":"<book><title>two</title></book>"}
{"op":"add","xml":"<journal><title>j1</title></journal>"}
`
	rec = cs.do(t, http.MethodPost, "/c/books/ingest", "application/x-ndjson", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("ndjson ingest: status = %d, body %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Added != 2 {
		t.Fatalf("ndjson ingest response = %+v", ing)
	}
	jShard, _ := collection.SplitID(ing.IDs[1])
	if want := collection.ShardForLabel("journal", 4); jShard != want {
		t.Fatalf("journal routed to shard %d, want %d", jShard, want)
	}

	// A malformed document in a multi-op request is rejected before
	// anything commits.
	bad := `{"op":"add","xml":"<book><title>three</title></book>"}
{"op":"add","xml":"<unclosed>"}
`
	if rec := cs.do(t, http.MethodPost, "/c/books/ingest", "application/x-ndjson", bad); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed doc: status = %d, want 400", rec.Code)
	}

	// Scattered query: all four shards probed in order, counts merged.
	rec = cs.do(t, http.MethodGet, "/c/books/query?q="+url.QueryEscape("//title"), "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("query: status = %d, body %s", rec.Code, rec.Body)
	}
	var qr colQueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Count != 3 || qr.Targeted || qr.Partial || len(qr.Shards) != 4 {
		t.Fatalf("scattered query = %+v, want 3 results over 4 shards", qr)
	}

	// Targeted query with trace: one shard row carrying an attributed
	// trace.
	rec = cs.do(t, http.MethodGet, "/c/books/query?q="+url.QueryEscape("/journal/title")+"&trace=1", "", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Targeted || len(qr.Shards) != 1 || qr.Count != 1 {
		t.Fatalf("targeted query = %+v", qr)
	}
	if tr := qr.Shards[0].Trace; tr == nil || tr.Collection != "books" || tr.Shard != jShard {
		t.Fatalf("targeted trace = %+v, want books/%d attribution", qr.Shards[0].Trace, jShard)
	}

	// Delete by global ID, then verify the count dropped.
	rec = cs.do(t, http.MethodPost, "/c/books/ingest", "application/x-ndjson",
		fmt.Sprintf(`{"op":"delete","rec":%d}`, ing.IDs[1]))
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: status = %d, body %s", rec.Code, rec.Body)
	}
	rec = cs.do(t, http.MethodGet, "/c/books/query?q="+url.QueryEscape("//title"), "", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Count != 2 {
		t.Fatalf("count after delete = %d, want 2", qr.Count)
	}

	// Stats: aggregated counts plus one row per shard.
	rec = cs.do(t, http.MethodGet, "/c/books/stats", "", "")
	var st collection.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Spec.Name != "books" || st.Documents != 2 || len(st.Shards) != 4 {
		t.Fatalf("stats = %+v, want books with 2 live docs over 4 shards", st)
	}

	// Healthz aggregates every shard of every collection.
	rec = cs.do(t, http.MethodGet, "/healthz", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status = %d, body %s", rec.Code, rec.Body)
	}
	var health colHealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Collections["books"]) != 4 {
		t.Fatalf("healthz = %+v, want ok with 4 book shards", health)
	}
}

// TestCollectionShardDeadlineOverHTTP configures an unmeetable
// per-shard deadline and checks it is enforced end to end: the response
// is 200 with Partial set and every shard row timed out.
func TestCollectionShardDeadlineOverHTTP(t *testing.T) {
	cs := newTestColServer(t, collection.Options{ShardTimeout: time.Nanosecond}, defaultTestConfig())
	createCollection(t, cs, `{"name":"slow","shards":2}`)
	rec := cs.do(t, http.MethodPost, "/c/slow/ingest", "application/xml", `<a><b>x</b></a>`)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: status = %d, body %s", rec.Code, rec.Body)
	}
	rec = cs.do(t, http.MethodGet, "/c/slow/query?q="+url.QueryEscape("//b"), "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("query: status = %d, body %s", rec.Code, rec.Body)
	}
	var qr colQueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Partial || qr.Count != 0 {
		t.Fatalf("1ns shard deadline produced %+v, want all-shards-partial", qr)
	}
	for _, r := range qr.Shards {
		if !r.TimedOut {
			t.Fatalf("shard row %+v, want TimedOut", r)
		}
	}
}

// TestPerTenantAdmissionWeight pins the shared gate and checks a
// heavy-weight collection's request is shed while a light one passes:
// per-tenant weights at work.
func TestPerTenantAdmissionWeight(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.maxInFlight = 3
	cfg.queueWait = 5 * time.Millisecond
	cs := newTestColServer(t, collection.Options{}, cfg)
	createCollection(t, cs, `{"name":"light","shards":1,"weight":1}`)
	createCollection(t, cs, `{"name":"heavy","shards":1,"weight":2}`)

	// Occupy 2 of 3 units: a heavy query (weight 2) no longer fits, a
	// light one (weight 1) still does.
	if err := cs.gate.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	defer cs.gate.Release(2)

	if rec := cs.do(t, http.MethodGet, "/c/heavy/query?q="+url.QueryEscape("//x"), "", ""); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("heavy query: status = %d, want 429", rec.Code)
	} else if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if rec := cs.do(t, http.MethodGet, "/c/light/query?q="+url.QueryEscape("//x"), "", ""); rec.Code != http.StatusOK {
		t.Fatalf("light query: status = %d, want 200", rec.Code)
	}
}

// TestCollectionServerAcceptance is the acceptance criterion run: a
// two-collection, four-shard-each server taking concurrent
// scatter-gather queries, targeted queries and routed NDJSON ingest,
// with per-shard deadlines configured — then final counts reconciled
// exactly. Run it under -race via `make serve-smoke`.
func TestCollectionServerAcceptance(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.maxInFlight = 16
	cfg.queueWait = 2 * time.Second
	cs := newTestColServer(t, collection.Options{ShardTimeout: 10 * time.Second}, cfg)
	createCollection(t, cs, `{"name":"books","shards":4}`)
	createCollection(t, cs, `{"name":"films","shards":4,"weight":2}`)

	labels := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	const (
		writersPerCol = 2
		batches       = 10
		perBatch      = 3
	)
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	for _, col := range []string{"books", "films"} {
		for w := 0; w < writersPerCol; w++ {
			wg.Add(1)
			go func(col string, w int) {
				defer wg.Done()
				for b := 0; b < batches; b++ {
					var sb strings.Builder
					for i := 0; i < perBatch; i++ {
						l := labels[(w*batches+b+i)%len(labels)]
						fmt.Fprintf(&sb, `{"op":"add","xml":"<%s><item>v</item></%s>"}`+"\n", l, l)
					}
					rec := cs.do(t, http.MethodPost, "/c/"+col+"/ingest", "application/x-ndjson", sb.String())
					if rec.Code != http.StatusOK {
						errc <- fmt.Errorf("%s writer %d: status %d: %s", col, w, rec.Code, rec.Body)
						return
					}
				}
			}(col, w)
		}
		for q := 0; q < 2; q++ {
			wg.Add(1)
			go func(col string, q int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					expr := "//item"
					if i%2 == 0 {
						expr = "/" + labels[i%len(labels)] + "/item"
					}
					path := "/c/" + col + "/query?q=" + url.QueryEscape(expr)
					if i%5 == 0 {
						path += "&trace=1"
					}
					rec := cs.do(t, http.MethodGet, path, "", "")
					if rec.Code != http.StatusOK {
						errc <- fmt.Errorf("%s querier %d: status %d: %s", col, q, rec.Code, rec.Body)
						return
					}
					var qr colQueryResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
						errc <- err
						return
					}
					if qr.Partial {
						errc <- fmt.Errorf("%s querier %d: spurious partial: %+v", col, q, qr)
						return
					}
				}
			}(col, q)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if rec := cs.do(t, http.MethodGet, "/healthz", "", ""); rec.Code != http.StatusOK {
				errc <- fmt.Errorf("healthz during load: status %d", rec.Code)
				return
			}
			if rec := cs.do(t, http.MethodGet, "/c/books/stats", "", ""); rec.Code != http.StatusOK {
				errc <- fmt.Errorf("stats during load: status %d", rec.Code)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	want := writersPerCol * batches * perBatch
	for _, col := range []string{"books", "films"} {
		rec := cs.do(t, http.MethodGet, "/c/"+col+"/query?q="+url.QueryEscape("//item"), "", "")
		var qr colQueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Count != want || qr.Partial || len(qr.Shards) != 4 {
			t.Errorf("%s final count = %d (partial=%v, shards=%d), want %d over 4 shards",
				col, qr.Count, qr.Partial, len(qr.Shards), want)
		}
	}
}
