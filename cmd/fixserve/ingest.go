package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/fix-index/fix/fix"
)

// POST /ingest accepts writes in two shapes:
//
//   - a raw XML document body (any Content-Type except NDJSON): one
//     durable insert, responding with its assigned ID;
//   - a Content-Type: application/x-ndjson body: one JSON operation per
//     line, {"op":"add","xml":"<doc/>"} or {"op":"delete","rec":7},
//     executed in order through the shared ingester, so consecutive
//     adds coalesce into group commits.
//
// A 200 response means every operation in the request is durable (the
// WAL fsync completed) and visible to queries. Backpressure from the
// bounded ingest queue surfaces as 429 with Retry-After, exactly like
// admission-gate shedding; malformed input is rejected with 400 before
// anything is queued.

// defaultMaxIngestBytes bounds the /ingest request body when no flag
// overrides it.
const defaultMaxIngestBytes = 8 << 20

// maxIngestOpsPerRequest bounds the number of NDJSON operations one
// request may carry; larger loads should be split across requests so
// backpressure can act between them.
const maxIngestOpsPerRequest = 10000

// ingestOp is one decoded NDJSON operation. Rec is 64-bit because
// collection mode addresses documents by global ID (shard in the high
// half); single-index mode range-checks it into the DB's 32-bit record
// space at execution time.
type ingestOp struct {
	Op  string  `json:"op"`            // "add" or "delete"
	XML string  `json:"xml,omitempty"` // add: the document text
	Rec *uint64 `json:"rec,omitempty"` // delete: the target document ID
}

// parseIngestOps decodes an NDJSON operation stream: one JSON object
// per newline-separated line, blank lines ignored. It validates shape
// only (op names, required fields, op count) — XML payloads are parsed
// later against the DB's limits. Errors name the offending line.
func parseIngestOps(data []byte) ([]ingestOp, error) {
	var ops []ingestOp
	for lineno, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if len(ops) >= maxIngestOpsPerRequest {
			return nil, fmt.Errorf("line %d: more than %d operations in one request", lineno+1, maxIngestOpsPerRequest)
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var op ingestOp
		if err := dec.Decode(&op); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno+1, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("line %d: trailing data after the JSON object", lineno+1)
		}
		switch op.Op {
		case "add":
			if op.XML == "" {
				return nil, fmt.Errorf("line %d: \"add\" needs a non-empty \"xml\" field", lineno+1)
			}
			if op.Rec != nil {
				return nil, fmt.Errorf("line %d: \"add\" does not take a \"rec\" field", lineno+1)
			}
		case "delete":
			if op.Rec == nil {
				return nil, fmt.Errorf("line %d: \"delete\" needs a \"rec\" field", lineno+1)
			}
			if op.XML != "" {
				return nil, fmt.Errorf("line %d: \"delete\" does not take an \"xml\" field", lineno+1)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown op %q (want \"add\" or \"delete\")", lineno+1, op.Op)
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("empty request: no operations")
	}
	return ops, nil
}

// ingestResponse is the /ingest JSON shape. IDs lists the assigned
// document IDs of the request's adds, in request order (global IDs in
// collection mode, plain records in single-index mode).
type ingestResponse struct {
	IDs       []uint64 `json:"ids"`
	Added     int      `json:"added"`
	Deleted   int      `json:"deleted"`
	IngestLag int      `json:"ingest_lag"`
}

// readIngestOps reads and decodes an ingest request body: NDJSON
// operations under Content-Type application/x-ndjson, a single raw XML
// add otherwise. On failure it writes the error response and returns
// ok=false.
func readIngestOps(w http.ResponseWriter, r *http.Request, maxBytes int64) ([]ingestOp, bool) {
	if maxBytes <= 0 {
		maxBytes = defaultMaxIngestBytes
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("request body over %d bytes", maxBytes), http.StatusRequestEntityTooLarge)
			return nil, false
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if strings.Contains(r.Header.Get("Content-Type"), "ndjson") {
		ops, err := parseIngestOps(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return nil, false
		}
		return ops, true
	}
	return []ingestOp{{Op: "add", XML: string(body)}}, true
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// Writes pass the same admission gate as queries: ingest work must
	// not starve readers, and a saturated server sheds both alike.
	if !admit(w, r, s.gate, s.cfg.queueWait, 1) {
		return
	}
	defer s.gate.Release(1)

	ops, ok := readIngestOps(w, r, s.cfg.maxIngestBytes)
	if !ok {
		return
	}
	// Validate every document before anything is queued, so a malformed
	// line cannot leave the earlier half of the request committed.
	for i, op := range ops {
		if op.Op == "add" {
			if err := s.db.ValidateDocument(op.XML); err != nil {
				http.Error(w, fmt.Sprintf("op %d: %v", i+1, err), http.StatusBadRequest)
				return
			}
		}
	}

	resp, err := s.runIngest(r.Context(), ops)
	if err != nil {
		if errors.Is(err, fix.ErrIngestQueueFull) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), ingestStatusFor(err))
		return
	}
	writeJSON(w, resp)
}

// runIngest executes the decoded operations in order through the shared
// ingester. Runs of consecutive adds go down as one AddBatch, so a bulk
// NDJSON request pays roughly one group commit per run rather than one
// per document.
func (s *server) runIngest(ctx context.Context, ops []ingestOp) (ingestResponse, error) {
	resp := ingestResponse{IDs: []uint64{}}
	var run []string
	flushAdds := func() error {
		if len(run) == 0 {
			return nil
		}
		ids, err := s.ing.AddBatch(ctx, run)
		if err != nil {
			return err
		}
		for _, id := range ids {
			resp.IDs = append(resp.IDs, uint64(id))
		}
		resp.Added += len(ids)
		run = run[:0]
		return nil
	}
	for _, op := range ops {
		switch op.Op {
		case "add":
			run = append(run, op.XML)
		case "delete":
			if err := flushAdds(); err != nil {
				return resp, err
			}
			if *op.Rec > 0xFFFFFFFF {
				return resp, fmt.Errorf("%w: record %d out of range", fix.ErrUnknownDocument, *op.Rec)
			}
			if err := s.ing.Delete(ctx, uint32(*op.Rec)); err != nil {
				return resp, err
			}
			resp.Deleted++
		}
	}
	if err := flushAdds(); err != nil {
		return resp, err
	}
	resp.IngestLag = s.db.IngestLag()
	return resp, nil
}

// ingestStatusFor maps a commit-phase ingest error onto an HTTP status.
// Queue-full is handled by the caller (429 + Retry-After); everything
// reaching here was structurally valid input, so the remaining statuses
// describe server state.
func ingestStatusFor(err error) int {
	switch {
	case errors.Is(err, fix.ErrIngesterClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, fix.ErrDocumentLimit):
		return http.StatusBadRequest
	case errors.Is(err, fix.ErrUnknownDocument):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}
