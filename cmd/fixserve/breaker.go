package main

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	breakerClosed   breakerState = iota // index path in use
	breakerOpen                         // index suspected faulty; scan-only
	breakerHalfOpen                     // cooldown elapsed; probing
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker guards the index read path. Repeated internal faults
// (corruption surfacing mid-query, contained panics, storage errors)
// trip it open, after which every query is forced onto the exact
// scan fallback (fix.ScanOnly) — slower, but correct and not
// exercising the faulty path. After the cooldown one query at a time is
// let through as a recovery probe; a clean probe closes the breaker, a
// faulty one reopens it. Client errors, deadlines and budget kills say
// nothing about index health and never feed the breaker.
type breaker struct {
	threshold int           // consecutive faults that trip the breaker
	cooldown  time.Duration // open-state dwell before probing

	mu       sync.Mutex   // lockcheck: leaf
	state    breakerState // guarded by mu
	faults   int          // guarded by mu
	openedAt time.Time    // guarded by mu
	probing  bool         // guarded by mu
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether the next query may use the index; false routes
// it to the scan fallback. In half-open state exactly one query at a
// time is admitted as the probe.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// Record feeds back the outcome of a query that Allow admitted to the
// index path. fault means an internal index-read failure (see
// indexFault), not any error.
func (b *breaker) Record(fault bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if !fault {
			b.faults = 0
			return
		}
		b.faults++
		if b.faults >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.faults = 0
		}
	case breakerHalfOpen:
		b.probing = false
		if fault {
			b.state = breakerOpen
			b.openedAt = time.Now()
		} else {
			b.state = breakerClosed
			b.faults = 0
		}
	case breakerOpen:
		// A query admitted before the trip finishing late; nothing to
		// learn — the breaker already acted.
	}
}

// State returns the state name for /readyz.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
