package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"testing"

	"github.com/fix-index/fix/internal/collection"
)

// TestServingDocCoversAllRoutes diffs the endpoint headings in
// docs/SERVING.md against the route tables the muxes are built from.
// Both directions are checked: every served route must be documented,
// and every documented route must be served — the operations reference
// cannot drift from the binary.
func TestServingDocCoversAllRoutes(t *testing.T) {
	doc, err := os.ReadFile("../../docs/SERVING.md")
	if err != nil {
		t.Fatal(err)
	}
	headingRE := regexp.MustCompile("(?m)^### `((?:GET|POST|PUT|DELETE|PATCH) /[^`]*)`$")
	documented := map[string]bool{}
	for _, m := range headingRE.FindAllSubmatch(doc, -1) {
		documented[string(m[1])] = true
	}
	if len(documented) == 0 {
		t.Fatal("no `### `METHOD /path`` endpoint headings found in docs/SERVING.md")
	}

	served := map[string]bool{}
	for _, table := range [][]string{singleModeRoutes, collectionModeRoutes, pprofRoutes} {
		for _, route := range table {
			served[route] = true
		}
	}

	var missing, stale []string
	for route := range served {
		if !documented[route] {
			missing = append(missing, route)
		}
	}
	for route := range documented {
		if !served[route] {
			stale = append(stale, route)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	for _, route := range missing {
		t.Errorf("route %q is served but has no `### `%s`` heading in docs/SERVING.md", route, route)
	}
	for _, route := range stale {
		t.Errorf("docs/SERVING.md documents %q but no route table serves it", route)
	}
}

// TestServingDocCoversAllFlags extracts every flag definition from
// main.go and requires each to appear as `-name` in docs/SERVING.md.
func TestServingDocCoversAllFlags(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile("../../docs/SERVING.md")
	if err != nil {
		t.Fatal(err)
	}
	flagRE := regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Duration|Float64)\("([^"]+)"`)
	defs := flagRE.FindAllSubmatch(src, -1)
	if len(defs) == 0 {
		t.Fatal("no flag definitions found in main.go")
	}
	docRE := regexp.MustCompile("`-([A-Za-z0-9-]+)`")
	inDoc := map[string]bool{}
	for _, m := range docRE.FindAllSubmatch(doc, -1) {
		inDoc[string(m[1])] = true
	}
	for _, m := range defs {
		if name := string(m[1]); !inDoc[name] {
			t.Errorf("flag -%s is defined in main.go but not documented in docs/SERVING.md", name)
		}
	}
}

// TestMuxMethodDiscipline spot-checks that the method-qualified
// patterns reject the wrong verb with 405, for both modes.
func TestMuxMethodDiscipline(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query?q=//a", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("single mode POST /query: status = %d, want 405", rec.Code)
	}

	cs := newTestColServer(t, collection.Options{}, defaultTestConfig())
	rec = httptest.NewRecorder()
	cs.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/collections/x", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("collection mode GET /collections/x: status = %d, want 405", rec.Code)
	}
}
