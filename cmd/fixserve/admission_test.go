package main

import (
	"context"
	"testing"
	"time"
)

func TestGateAcquireRelease(t *testing.T) {
	g := newGate(2)
	ctx := context.Background()
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if in, capacity := g.Load(); in != 2 || capacity != 2 {
		t.Fatalf("Load = %d/%d, want 2/2", in, capacity)
	}
	g.Release(1)
	g.Release(1)
	if in, _ := g.Load(); in != 0 {
		t.Fatalf("in-flight after release = %d, want 0", in)
	}
}

func TestGateTimeoutWhenFull(t *testing.T) {
	g := newGate(1)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx, 1); err != context.DeadlineExceeded {
		t.Fatalf("acquire on full gate = %v, want DeadlineExceeded", err)
	}
	// The timed-out waiter must not leak: releasing must leave the gate
	// empty and usable.
	g.Release(1)
	if in, _ := g.Load(); in != 0 {
		t.Fatalf("in-flight after timeout + release = %d, want 0", in)
	}
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("acquire after recovery: %v", err)
	}
}

func TestGateBlocksUntilReleased(t *testing.T) {
	g := newGate(1)
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Acquire(context.Background(), 1) }()
	select {
	case err := <-done:
		t.Fatalf("second acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("acquire after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never admitted after release")
	}
}

func TestGateClampsOverweight(t *testing.T) {
	g := newGate(1)
	// Weight 2 against capacity 1 degrades to taking the whole gate
	// instead of blocking forever.
	if err := g.Acquire(context.Background(), 2); err != nil {
		t.Fatalf("overweight acquire: %v", err)
	}
	if in, _ := g.Load(); in != 1 {
		t.Fatalf("in-flight = %d, want clamped 1", in)
	}
	g.Release(2)
	if in, _ := g.Load(); in != 0 {
		t.Fatalf("in-flight after clamped release = %d, want 0", in)
	}
}

func TestGateFIFOHeavyWaiterNotStarved(t *testing.T) {
	g := newGate(2)
	ctx := context.Background()
	if err := g.Acquire(ctx, 2); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	heavy := make(chan error, 1)
	go func() { heavy <- g.Acquire(ctx, 2) }()
	// Give the heavy waiter time to enqueue at the head.
	time.Sleep(10 * time.Millisecond)
	light := make(chan error, 1)
	go func() { light <- g.Acquire(ctx, 1) }()
	g.Release(2)
	select {
	case err := <-heavy:
		if err != nil {
			t.Fatalf("heavy acquire: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("heavy head-of-line waiter starved by lighter arrival")
	}
	select {
	case <-light:
		t.Fatal("light waiter admitted ahead of available capacity")
	default:
	}
	g.Release(2)
	if err := <-light; err != nil {
		t.Fatalf("light acquire: %v", err)
	}
	g.Release(1)
}
