package main

import (
	"testing"
	"time"
)

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b := newBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("breaker closed after %d faults, threshold 3", i)
		}
		b.Record(true)
	}
	if b.State() != "closed" {
		t.Fatalf("state after 2 faults = %s, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("breaker rejected while still closed")
	}
	b.Record(true)
	if b.State() != "open" {
		t.Fatalf("state after 3rd fault = %s, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a query before cooldown")
	}
}

func TestBreakerSuccessResetsFaultStreak(t *testing.T) {
	b := newBreaker(2, time.Hour)
	b.Record(true)
	b.Record(false) // success: streak resets
	b.Record(true)
	if b.State() != "closed" {
		t.Fatalf("state = %s, want closed (faults were not consecutive)", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := newBreaker(1, 5*time.Millisecond)
	b.Record(true)
	if b.State() != "open" {
		t.Fatalf("state = %s, want open", b.State())
	}
	time.Sleep(10 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe not admitted")
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second concurrent probe admitted in half-open state")
	}
	b.Record(false)
	if b.State() != "closed" {
		t.Fatalf("state after clean probe = %s, want closed", b.State())
	}
}

func TestBreakerFaultyProbeReopens(t *testing.T) {
	b := newBreaker(1, 30*time.Millisecond)
	b.Record(true)
	time.Sleep(40 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Record(true)
	if b.State() != "open" {
		t.Fatalf("state after faulty probe = %s, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a query inside the fresh cooldown")
	}
}
