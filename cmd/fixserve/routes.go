package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// The route tables are the single source of truth for what fixserve
// serves: each mode's handler() builds its mux from its table (a
// missing handler is a startup panic, not a silent gap), and the
// docs/SERVING.md endpoint reference is diffed against the same tables
// by TestServingDocCoversAllRoutes — an endpoint cannot ship, move or
// disappear without the operations reference following.

// singleModeRoutes is the endpoint set of single-index mode (-db).
var singleModeRoutes = []string{
	"GET /query",
	"POST /ingest",
	"POST /admin/checkpoint",
	"GET /metrics",
	"GET /debug/vars",
	"GET /healthz",
	"GET /readyz",
}

// collectionModeRoutes is the endpoint set of collection mode
// (-collections): per-collection serving under /c/{collection}/ plus
// the collection admin surface, with the shared operational endpoints.
var collectionModeRoutes = []string{
	"GET /c/{collection}/query",
	"POST /c/{collection}/ingest",
	"GET /c/{collection}/stats",
	"GET /collections",
	"POST /collections",
	"DELETE /collections/{collection}",
	"GET /metrics",
	"GET /debug/vars",
	"GET /healthz",
	"GET /readyz",
}

// pprofRoutes are mounted in either mode when -pprof is set.
var pprofRoutes = []string{
	"GET /debug/pprof/",
}

// buildMux registers exactly the patterns in table, taking each handler
// from handlers. It panics on a table/handlers mismatch: the tables
// are load-bearing documentation, so drift is a programming error.
func buildMux(table []string, handlers map[string]http.Handler) *http.ServeMux {
	if len(handlers) != len(table) {
		panic(fmt.Sprintf("fixserve: %d handlers for %d routes", len(handlers), len(table)))
	}
	mux := http.NewServeMux()
	for _, pattern := range table {
		h, ok := handlers[pattern]
		if !ok {
			panic(fmt.Sprintf("fixserve: no handler for route %q", pattern))
		}
		mux.Handle(pattern, h)
	}
	return mux
}

// mountPprof adds the profiler endpoints (shared by both modes; only
// with -pprof). /debug/pprof/ is a prefix route — the sub-handlers
// below it are pprof's own and are not enumerated in the route tables.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
