package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fix-index/fix/fix"
)

// TestStressGovernedServer hammers the server from many goroutines with
// a deliberately tiny admission gate and intermittent injected faults,
// asserting the governance invariants: every request gets a classified
// response (no hangs, no crashes), shed requests see 429 + Retry-After,
// admitted queries that succeed return the exact count whether they ran
// on the index or the scan fallback, and the gate drains back to zero.
//
// It is heavyweight and meaningful mostly under -race, so it is gated:
//
//	FIX_STRESS=1 go test -race -run Stress ./cmd/fixserve/
//
// (the `make stress` target).
func TestStressGovernedServer(t *testing.T) {
	if os.Getenv("FIX_STRESS") == "" {
		t.Skip("set FIX_STRESS=1 to run the stress test")
	}
	db := newTestDB(t)
	cfg := serverConfig{
		maxInFlight:    2,
		queueWait:      2 * time.Millisecond,
		requestTimeout: time.Second,
		breakerFaults:  3,
		breakerCool:    5 * time.Millisecond,
	}
	s := newServer(db, cfg)

	// Fault injection: the slow-query hook panics on a fraction of
	// queries, exercising containment, degradation and the breaker under
	// full concurrency.
	var hookCalls atomic.Int64
	db.SetOptions(fix.Options{
		SlowQueryThreshold: time.Nanosecond,
		OnSlowQuery: func(fix.QueryTrace) {
			if hookCalls.Add(1)%7 == 0 {
				panic("injected stress fault")
			}
		},
	})

	h := s.handler()
	const workers = 32
	const perWorker = 50
	var ok200, shed429, fault500, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				path := "/query?q=" + url.QueryEscape("//article[author]")
				if i%3 == 0 {
					path += "&trace=1"
				}
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK:
					ok200.Add(1)
					var resp queryResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Errorf("decoding 200 body: %v", err)
						return
					}
					if resp.Count != 2 {
						t.Errorf("count = %d, want 2 (index and fallback must agree)", resp.Count)
						return
					}
				case http.StatusTooManyRequests:
					shed429.Add(1)
					if rec.Header().Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
						return
					}
				case http.StatusInternalServerError:
					fault500.Add(1) // injected panics, contained
				default:
					other.Add(1)
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if inFlight, _ := s.gate.Load(); inFlight != 0 {
		t.Fatalf("gate did not drain: %d weight still held", inFlight)
	}
	if ok200.Load() == 0 {
		t.Fatal("no query ever succeeded under load")
	}
	if fault500.Load() == 0 {
		t.Fatal("fault injection never fired (hook miswired?)")
	}
	t.Logf("stress: %d ok, %d shed (429), %d contained faults (500)",
		ok200.Load(), shed429.Load(), fault500.Load())
}
