package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fix-index/fix/fix"
)

// TestStressGovernedServer hammers the server from many goroutines with
// a deliberately tiny admission gate and intermittent injected faults,
// asserting the governance invariants: every request gets a classified
// response (no hangs, no crashes), shed requests see 429 + Retry-After,
// admitted queries that succeed return the exact count whether they ran
// on the index or the scan fallback, and the gate drains back to zero.
//
// It is heavyweight and meaningful mostly under -race, so it is gated:
//
//	FIX_STRESS=1 go test -race -run Stress ./cmd/fixserve/
//
// (the `make stress` target).
func TestStressGovernedServer(t *testing.T) {
	if os.Getenv("FIX_STRESS") == "" {
		t.Skip("set FIX_STRESS=1 to run the stress test")
	}
	db := newTestDB(t)
	cfg := serverConfig{
		maxInFlight:    2,
		queueWait:      2 * time.Millisecond,
		requestTimeout: time.Second,
		breakerFaults:  3,
		breakerCool:    5 * time.Millisecond,
	}
	s := newServer(db, cfg)

	// Fault injection: the slow-query hook panics on a fraction of
	// queries, exercising containment, degradation and the breaker under
	// full concurrency.
	var hookCalls atomic.Int64
	db.SetOptions(fix.Options{
		SlowQueryThreshold: time.Nanosecond,
		OnSlowQuery: func(fix.QueryTrace) {
			if hookCalls.Add(1)%7 == 0 {
				panic("injected stress fault")
			}
		},
	})

	h := s.handler()
	const workers = 32
	const perWorker = 50
	var ok200, shed429, fault500, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				path := "/query?q=" + url.QueryEscape("//article[author]")
				if i%3 == 0 {
					path += "&trace=1"
				}
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK:
					ok200.Add(1)
					var resp queryResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Errorf("decoding 200 body: %v", err)
						return
					}
					if resp.Count != 2 {
						t.Errorf("count = %d, want 2 (index and fallback must agree)", resp.Count)
						return
					}
				case http.StatusTooManyRequests:
					shed429.Add(1)
					if rec.Header().Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
						return
					}
				case http.StatusInternalServerError:
					fault500.Add(1) // injected panics, contained
				default:
					other.Add(1)
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if inFlight, _ := s.gate.Load(); inFlight != 0 {
		t.Fatalf("gate did not drain: %d weight still held", inFlight)
	}
	if ok200.Load() == 0 {
		t.Fatal("no query ever succeeded under load")
	}
	if fault500.Load() == 0 {
		t.Fatal("fault injection never fired (hook miswired?)")
	}
	t.Logf("stress: %d ok, %d shed (429), %d contained faults (500)",
		ok200.Load(), shed429.Load(), fault500.Load())
}

// TestStressIngestAndQuery hammers POST /ingest from many goroutines —
// on a real on-disk DB with a deliberately shallow ingest queue and
// fail-fast enqueue — while readers run /query and /healthz, asserting
// the write-path invariants: every request gets a classified response,
// queue-full and gate sheds see 429 + Retry-After, every 200 means the
// documents are durable and countable, and at the end the exact number
// of acknowledged adds (minus acknowledged deletes) is visible.
//
//	FIX_STRESS=1 go test -race -run Stress ./cmd/fixserve/
func TestStressIngestAndQuery(t *testing.T) {
	if os.Getenv("FIX_STRESS") == "" {
		t.Skip("set FIX_STRESS=1 to run the stress test")
	}
	dir := t.TempDir()
	db, err := fix.Create(dir)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer func() { _ = db.Close() }()
	if _, err := db.AddDocumentString(`<seed><title>s</title></seed>`); err != nil {
		t.Fatalf("AddDocumentString: %v", err)
	}
	if err := db.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	cfg := serverConfig{
		maxInFlight:    8,
		queueWait:      2 * time.Millisecond,
		requestTimeout: 5 * time.Second,
		breakerFaults:  5,
		breakerCool:    time.Hour,
		ingest: fix.IngestConfig{
			QueueDepth:  8,
			MaxBatch:    4,
			EnqueueWait: -1, // fail fast: exercises the 429 path for real
		},
	}
	s := newServer(db, cfg)
	h := s.handler()

	const writers = 16
	const perWriter = 40
	var acked, shed429, readOK atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				body := `{"op":"add","xml":"<stress><w>` + url.QueryEscape(string(rune('a'+w))) + `</w></stress>"}`
				req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader(body))
				req.Header.Set("Content-Type", "application/x-ndjson")
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK:
					var resp ingestResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Errorf("decoding 200 body: %v", err)
						return
					}
					if resp.Added != 1 {
						t.Errorf("added = %d, want 1", resp.Added)
						return
					}
					acked.Add(1)
				case http.StatusTooManyRequests:
					shed429.Add(1)
					if rec.Header().Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
						return
					}
				default:
					t.Errorf("unexpected ingest status %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}(w)
	}
	// Readers: queries and health checks race the writers.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet, "/query?q="+url.QueryEscape("//seed"), nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code == http.StatusOK {
					readOK.Add(1)
				}
				hreq := httptest.NewRequest(http.MethodGet, "/healthz", nil)
				hrec := httptest.NewRecorder()
				h.ServeHTTP(hrec, hreq)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if err := s.close(); err != nil {
		t.Fatalf("ingester close: %v", err)
	}
	if inFlight, _ := s.gate.Load(); inFlight != 0 {
		t.Fatalf("gate did not drain: %d weight still held", inFlight)
	}
	if acked.Load() == 0 {
		t.Fatal("no ingest ever succeeded under load")
	}
	// Exactly the acknowledged adds are visible — not one more, not one
	// fewer — and a final Save absorbs the WAL cleanly.
	req := httptest.NewRequest(http.MethodGet, "/query?q="+url.QueryEscape("//stress"), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("final count query: status = %d (body %s)", rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding final count: %v", err)
	}
	if int64(resp.Count) != acked.Load() {
		t.Fatalf("//stress count = %d, want %d acknowledged adds", resp.Count, acked.Load())
	}
	if err := db.Save(); err != nil {
		t.Fatalf("final save: %v", err)
	}
	if lag := db.IngestLag(); lag != 0 {
		t.Fatalf("ingest lag after Save = %d, want 0", lag)
	}
	t.Logf("ingest stress: %d acked, %d shed (429), %d reads ok",
		acked.Load(), shed429.Load(), readOK.Load())
}
