package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/fix-index/fix/fix"
)

// post runs one POST through the server's handler.
func post(t *testing.T, s *server, path, contentType, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, req)
	return rec
}

func decodeIngest(t *testing.T, rec *httptest.ResponseRecorder) ingestResponse {
	t.Helper()
	var resp ingestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding ingest response: %v (body %s)", err, rec.Body)
	}
	return resp
}

func queryCount(t *testing.T, s *server, expr string) int {
	t.Helper()
	rec := get(t, s, "/query?q="+url.QueryEscape(expr))
	if rec.Code != http.StatusOK {
		t.Fatalf("query %s: status = %d (body %s)", expr, rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding query response: %v", err)
	}
	return resp.Count
}

func TestIngestSingleXML(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())
	defer s.close()

	rec := post(t, s, "/ingest", "application/xml", `<note><title>z</title></note>`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	resp := decodeIngest(t, rec)
	if resp.Added != 1 || len(resp.IDs) != 1 || resp.IDs[0] != 3 {
		t.Fatalf("response = %+v, want one add with id 3", resp)
	}
	// The acknowledged document is immediately visible.
	if got := queryCount(t, s, "//note"); got != 1 {
		t.Fatalf("//note count = %d, want 1", got)
	}
}

func TestIngestNDJSONMixed(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())
	defer s.close()

	body := `{"op":"add","xml":"<note><title>a</title></note>"}
{"op":"add","xml":"<note><title>b</title></note>"}

{"op":"delete","rec":2}
{"op":"add","xml":"<note><title>c</title></note>"}
`
	rec := post(t, s, "/ingest", "application/x-ndjson", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	resp := decodeIngest(t, rec)
	if resp.Added != 3 || resp.Deleted != 1 {
		t.Fatalf("response = %+v, want 3 adds / 1 delete", resp)
	}
	wantIDs := []uint64{3, 4, 5}
	for i, id := range resp.IDs {
		if id != wantIDs[i] {
			t.Fatalf("ids = %v, want %v", resp.IDs, wantIDs)
		}
	}
	if got := queryCount(t, s, "//note"); got != 3 {
		t.Fatalf("//note count = %d, want 3", got)
	}
	// rec 2 was the book; its tombstone hides it from queries.
	if got := queryCount(t, s, "//book"); got != 0 {
		t.Fatalf("//book count after delete = %d, want 0", got)
	}
}

func TestIngestBadInput(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())
	defer s.close()

	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"op":"add",`},
		{"unknown field", `{"op":"add","xml":"<a/>","bogus":1}`},
		{"trailing data", `{"op":"add","xml":"<a/>"} extra`},
		{"unknown op", `{"op":"upsert","xml":"<a/>"}`},
		{"add without xml", `{"op":"add"}`},
		{"add with rec", `{"op":"add","xml":"<a/>","rec":1}`},
		{"delete without rec", `{"op":"delete"}`},
		{"delete with xml", `{"op":"delete","rec":1,"xml":"<a/>"}`},
		{"empty request", "\n\n"},
		{"bad xml payload", `{"op":"add","xml":"<unclosed>"}`},
	}
	for _, tc := range cases {
		rec := post(t, s, "/ingest", "application/x-ndjson", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", tc.name, rec.Code, rec.Body)
		}
	}
	// A mid-request error must reject the whole request: nothing from the
	// valid leading line may have been committed.
	before := s.db.NumDocuments()
	rec := post(t, s, "/ingest", "application/x-ndjson",
		`{"op":"add","xml":"<note/>"}`+"\n"+`{"op":"add","xml":"<broken"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("half-bad request: status = %d, want 400", rec.Code)
	}
	if got := s.db.NumDocuments(); got != before {
		t.Fatalf("half-bad request committed documents: %d -> %d", before, got)
	}

	// Raw-XML form: a body that fails to parse is a 400 too.
	if rec := post(t, s, "/ingest", "", `<unclosed>`); rec.Code != http.StatusBadRequest {
		t.Fatalf("raw bad xml: status = %d, want 400", rec.Code)
	}
}

func TestIngestMethodNotAllowed(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())
	defer s.close()
	rec := get(t, s, "/ingest")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: status = %d, want 405", rec.Code)
	}
	if rec.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", rec.Header().Get("Allow"))
	}
}

func TestIngestBodyTooLarge(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.maxIngestBytes = 64
	s := newServer(newTestDB(t), cfg)
	defer s.close()
	doc := "<a>" + strings.Repeat("x", 200) + "</a>"
	rec := post(t, s, "/ingest", "application/xml", doc)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want 413 (body %s)", rec.Code, rec.Body)
	}
}

func TestIngestTooManyOps(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())
	defer s.close()
	var sb strings.Builder
	for i := 0; i <= maxIngestOpsPerRequest; i++ {
		sb.WriteString(`{"op":"add","xml":"<a/>"}` + "\n")
	}
	rec := post(t, s, "/ingest", "application/x-ndjson", sb.String())
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("over-long request: status = %d, want 400", rec.Code)
	}
}

func TestIngestDeleteUnknown404(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())
	defer s.close()
	rec := post(t, s, "/ingest", "application/x-ndjson", `{"op":"delete","rec":99}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("delete of unknown record: status = %d, want 404 (body %s)", rec.Code, rec.Body)
	}
}

func TestIngestGateShed429(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.maxInFlight = 1
	cfg.queueWait = 5 * time.Millisecond
	s := newServer(newTestDB(t), cfg)
	defer s.close()

	if err := s.gate.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	rec := post(t, s, "/ingest", "application/xml", `<a/>`)
	s.gate.Release(1)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated gate: status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}

// fakeIngester injects commit-phase errors through the server's
// ingester seam, covering paths a healthy in-process ingester cannot
// reach deterministically (a full queue, a closed ingester).
type fakeIngester struct {
	err   error
	queue int
}

func (f *fakeIngester) AddBatch(ctx context.Context, docs []string) ([]uint32, error) {
	if f.err != nil {
		return nil, f.err
	}
	ids := make([]uint32, len(docs))
	return ids, nil
}

func (f *fakeIngester) Delete(ctx context.Context, rec uint32) error { return f.err }
func (f *fakeIngester) QueueLen() int                                { return f.queue }
func (f *fakeIngester) Close() error                                 { return nil }

func TestIngestQueueFull429(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())
	defer s.close()
	s.ing = &fakeIngester{err: fmt.Errorf("wrapped: %w", fix.ErrIngestQueueFull)}

	rec := post(t, s, "/ingest", "application/xml", `<a/>`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status = %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}

func TestIngestClosed503(t *testing.T) {
	s := newServer(newTestDB(t), defaultTestConfig())
	defer s.close()
	s.ing = &fakeIngester{err: fix.ErrIngesterClosed}

	rec := post(t, s, "/ingest", "application/xml", `<a/>`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("closed ingester: status = %d, want 503 (body %s)", rec.Code, rec.Body)
	}
}

// TestIngestHealthzLag drives the durable path end to end on disk: the
// WAL lag appears in /healthz and in the ingest response, and a Save
// absorbs it back to zero.
func TestIngestHealthzLag(t *testing.T) {
	dir := t.TempDir()
	db, err := fix.Create(dir)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer func() { _ = db.Close() }()
	if _, err := db.AddDocumentString(`<seed/>`); err != nil {
		t.Fatalf("AddDocumentString: %v", err)
	}
	if err := db.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s := newServer(db, defaultTestConfig())
	defer s.close()

	rec := post(t, s, "/ingest", "application/x-ndjson",
		`{"op":"add","xml":"<a/>"}`+"\n"+`{"op":"add","xml":"<b/>"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if resp := decodeIngest(t, rec); resp.IngestLag != 2 {
		t.Fatalf("response lag = %d, want 2", resp.IngestLag)
	}

	hrec := get(t, s, "/healthz")
	if hrec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d (body %s)", hrec.Code, hrec.Body)
	}
	var health healthResponse
	if err := json.Unmarshal(hrec.Body.Bytes(), &health); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	if health.IngestLag != 2 {
		t.Fatalf("healthz ingest_lag = %d, want 2", health.IngestLag)
	}

	if err := db.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	hrec = get(t, s, "/healthz")
	if err := json.Unmarshal(hrec.Body.Bytes(), &health); err != nil {
		t.Fatalf("decoding healthz after save: %v", err)
	}
	if health.IngestLag != 0 {
		t.Fatalf("healthz ingest_lag after Save = %d, want 0", health.IngestLag)
	}
}

func FuzzIngestRequest(f *testing.F) {
	f.Add(`{"op":"add","xml":"<a/>"}`)
	f.Add(`{"op":"delete","rec":7}`)
	f.Add(`{"op":"add","xml":"<a/>"}` + "\n" + `{"op":"delete","rec":0}` + "\n")
	f.Add(`{"op":"upsert"}`)
	f.Add(`{"op":"add",`)
	f.Add("\n\n\n")
	f.Add(`{"op":"add","xml":""}`)
	f.Add(`{"op":"delete","rec":-1}`)
	f.Add(`{"op":"delete","rec":4294967296}`)
	f.Add(`{"op":"add","xml":"<a/>"} {"op":"add","xml":"<b/>"}`)
	f.Fuzz(func(t *testing.T, data string) {
		ops, err := parseIngestOps([]byte(data))
		if err != nil {
			return
		}
		// A nil error promises well-formed operations downstream code can
		// execute without re-checking shape.
		if len(ops) == 0 {
			t.Fatal("nil error with zero operations")
		}
		for i, op := range ops {
			switch op.Op {
			case "add":
				if op.XML == "" || op.Rec != nil {
					t.Fatalf("op %d: malformed add accepted: %+v", i, op)
				}
			case "delete":
				if op.Rec == nil || op.XML != "" {
					t.Fatalf("op %d: malformed delete accepted: %+v", i, op)
				}
			default:
				t.Fatalf("op %d: unknown op %q accepted", i, op.Op)
			}
		}
	})
}
