// Command fixbench regenerates the paper's tables and figures over the
// synthetic workloads. Each experiment prints rows in the layout of the
// corresponding table/figure; see EXPERIMENTS.md for the mapping and the
// paper-vs-measured discussion.
//
// Usage:
//
//	fixbench -exp all                 # everything (slow at full scale)
//	fixbench -exp table2 -scale 0.2   # one experiment, smaller data
//	fixbench -exp fig5 -queries 1000  # the paper's full random workload
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/fix-index/fix/internal/datagen"
	"github.com/fix-index/fix/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|table2|fig5|fig6a|fig6b|fig6c|fig7|beta|ablation|rtree|spectrum|evaluators|parallel|generations|shards|maintenance|all")
		scale    = flag.Float64("scale", 1.0, "dataset scale (1.0 ≈ one tenth of the paper's element counts)")
		seed     = flag.Int64("seed", 42, "generator seed")
		queries  = flag.Int("queries", 200, "random queries per dataset for fig5 (paper: 1000)")
		verify   = flag.Bool("verify", false, "verify the integrity of every index built during the run")
		workers  = flag.Int("workers", 0, "worker pool bound for every index build (0 = one per CPU)")
		jsonPath = flag.String("json", "", "also write the parallel or generations sweep rows as JSON to this file (single-experiment runs only)")
	)
	flag.Parse()
	if err := run(*exp, *scale, *seed, *queries, *verify, *workers, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "fixbench:", err)
		os.Exit(1)
	}
}

// envs caches one Env per dataset across experiments.
type envs struct {
	cfg     datagen.Config
	workers int
	cache   map[datagen.Dataset]*experiments.Env
}

func (e *envs) get(ds datagen.Dataset) (*experiments.Env, error) {
	if env, ok := e.cache[ds]; ok {
		return env, nil
	}
	start := time.Now()
	env, err := experiments.Setup(ds, e.cfg)
	if err != nil {
		return nil, err
	}
	env.Workers = e.workers
	fmt.Printf("[setup] %s: %d documents, %d elements (%s)\n",
		ds, env.Store.NumRecords(), env.Elements(), time.Since(start).Round(time.Millisecond))
	e.cache[ds] = env
	return env, nil
}

func run(exp string, scale float64, seed int64, queries int, verify bool, workers int, jsonPath string) error {
	e := &envs{
		cfg:     datagen.Config{Seed: seed, Scale: scale},
		workers: workers,
		cache:   make(map[datagen.Dataset]*experiments.Env),
	}
	all := exp == "all"
	ran := false
	w := os.Stdout

	if all || exp == "table1" {
		ran = true
		var rows []experiments.Table1Row
		for _, ds := range datagen.AllDatasets {
			env, err := e.get(ds)
			if err != nil {
				return err
			}
			row, err := experiments.Table1(env)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		experiments.PrintTable1(w, rows)
		fmt.Fprintln(w)
	}
	if all || exp == "table2" {
		ran = true
		fmt.Fprintln(w, "Table 2: implementation-independent metrics for representative queries")
		for _, ds := range datagen.AllDatasets {
			env, err := e.get(ds)
			if err != nil {
				return err
			}
			rows, err := experiments.Table2(env)
			if err != nil {
				return err
			}
			experiments.PrintTable2(w, rows)
		}
		fmt.Fprintln(w)
	}
	if all || exp == "fig5" {
		ran = true
		var rows []experiments.Fig5Row
		for _, ds := range datagen.AllDatasets {
			env, err := e.get(ds)
			if err != nil {
				return err
			}
			row, err := experiments.Fig5(env, queries)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		experiments.PrintFig5(w, rows)
		fmt.Fprintln(w)
	}
	fig6 := map[string]datagen.Dataset{
		"fig6a": datagen.XMarkDataset,
		"fig6b": datagen.TreebankDataset,
		"fig6c": datagen.DBLPDataset,
	}
	for name, ds := range fig6 {
		if !all && exp != name {
			continue
		}
		ran = true
		env, err := e.get(ds)
		if err != nil {
			return err
		}
		rows, err := experiments.Fig6(env)
		if err != nil {
			return err
		}
		experiments.PrintFig6(w, string(ds), rows)
		fmt.Fprintln(w)
	}
	if all || exp == "fig7" || exp == "fig7a" || exp == "fig7b" {
		ran = true
		env, err := e.get(datagen.DBLPDataset)
		if err != nil {
			return err
		}
		rows, err := experiments.Fig7(env)
		if err != nil {
			return err
		}
		experiments.PrintFig7(w, rows)
		fmt.Fprintln(w)
	}
	if all || exp == "beta" {
		ran = true
		env, err := e.get(datagen.DBLPDataset)
		if err != nil {
			return err
		}
		rows, err := experiments.BetaSweep(env, []uint32{2, 10, 50})
		if err != nil {
			return err
		}
		experiments.PrintBetaSweep(w, rows)
		fmt.Fprintln(w)
	}
	if all || exp == "ablation" {
		ran = true
		for _, ds := range []datagen.Dataset{datagen.XMarkDataset, datagen.TreebankDataset} {
			env, err := e.get(ds)
			if err != nil {
				return err
			}
			rows, err := experiments.AblationRootLabel(env)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "[%s] ", ds)
			experiments.PrintRootLabelAblation(w, rows)
			depthRows, err := experiments.AblationDepth(env, []int{2, 4, 6})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "[%s] ", ds)
			experiments.PrintDepthSweep(w, depthRows)
			modeRows, err := experiments.AblationPruningMode(env)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "[%s] ", ds)
			experiments.PrintPruningMode(w, modeRows)
			fmt.Fprintln(w)
		}
	}
	if all || exp == "rtree" {
		ran = true
		for _, ds := range []datagen.Dataset{datagen.XMarkDataset, datagen.TreebankDataset} {
			env, err := e.get(ds)
			if err != nil {
				return err
			}
			rows, err := experiments.ExtRTree(env)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "[%s] ", ds)
			experiments.PrintRTree(w, rows)
		}
		fmt.Fprintln(w)
	}
	if all || exp == "spectrum" {
		ran = true
		for _, ds := range []datagen.Dataset{datagen.XMarkDataset, datagen.TreebankDataset} {
			env, err := e.get(ds)
			if err != nil {
				return err
			}
			rows, err := experiments.ExtSpectrum(env)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "[%s] ", ds)
			experiments.PrintSpectrum(w, rows)
		}
		fmt.Fprintln(w)
	}
	if all || exp == "evaluators" {
		ran = true
		for _, ds := range []datagen.Dataset{datagen.XMarkDataset, datagen.TreebankDataset, datagen.DBLPDataset} {
			env, err := e.get(ds)
			if err != nil {
				return err
			}
			rows, err := experiments.ExtEvaluators(env)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "[%s] ", ds)
			experiments.PrintEvaluators(w, rows)
		}
		fmt.Fprintln(w)
	}
	if all || exp == "parallel" {
		ran = true
		// A parallel sweep on one scheduler thread measures queueing, not
		// scaling — say so rather than letting the flat curve mislead.
		if runtime.GOMAXPROCS(0) == 1 {
			fmt.Fprintln(os.Stderr, "fixbench: warning: GOMAXPROCS=1; the parallel sweep cannot show speedup on one scheduler thread")
		}
		var rows []experiments.ParallelRow
		counts := experiments.SweepWorkerCounts()
		for _, ds := range datagen.AllDatasets {
			env, err := e.get(ds)
			if err != nil {
				return err
			}
			dsRows, err := experiments.ParallelSweep(env, counts)
			if err != nil {
				return err
			}
			rows = append(rows, dsRows...)
		}
		experiments.PrintParallelSweep(w, rows)
		fmt.Fprintln(w)
		if jsonPath != "" && exp == "parallel" {
			out := struct {
				NumCPU     int                       `json:"num_cpu"`
				GOMAXPROCS int                       `json:"gomaxprocs"`
				Scale      float64                   `json:"scale"`
				Seed       int64                     `json:"seed"`
				Workers    []int                     `json:"worker_counts"`
				Rows       []experiments.ParallelRow `json:"rows"`
			}{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: scale, Seed: seed, Workers: counts, Rows: rows}
			data, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "[json] wrote %s\n", jsonPath)
		}
	}
	if all || exp == "generations" {
		ran = true
		var rows []experiments.GenerationRow
		counts := experiments.GenerationSweepCounts()
		for _, ds := range datagen.AllDatasets {
			env, err := e.get(ds)
			if err != nil {
				return err
			}
			dsRows, err := experiments.GenerationSweep(context.Background(), env, counts, 300*time.Millisecond)
			if err != nil {
				return err
			}
			rows = append(rows, dsRows...)
		}
		experiments.PrintGenerationSweep(w, rows)
		fmt.Fprintln(w)
		if jsonPath != "" && exp == "generations" {
			out := struct {
				NumCPU     int                         `json:"num_cpu"`
				GOMAXPROCS int                         `json:"gomaxprocs"`
				Scale      float64                     `json:"scale"`
				Seed       int64                       `json:"seed"`
				Goroutines []int                       `json:"goroutine_counts"`
				Rows       []experiments.GenerationRow `json:"rows"`
			}{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: scale, Seed: seed, Goroutines: counts, Rows: rows}
			data, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "[json] wrote %s\n", jsonPath)
		}
	}
	if all || exp == "shards" {
		ran = true
		dir, err := os.MkdirTemp("", "fixbench-shards-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		counts := experiments.ShardSweepCounts()
		docsPerLabel := int(200 * scale)
		if docsPerLabel < 8 {
			docsPerLabel = 8
		}
		rows, err := experiments.ShardSweep(context.Background(), dir, counts, docsPerLabel, 4, 500*time.Millisecond)
		if err != nil {
			return err
		}
		experiments.PrintShardSweep(w, rows)
		fmt.Fprintln(w)
		if jsonPath != "" && exp == "shards" {
			out := struct {
				NumCPU     int                    `json:"num_cpu"`
				GOMAXPROCS int                    `json:"gomaxprocs"`
				Scale      float64                `json:"scale"`
				Seed       int64                  `json:"seed"`
				Shards     []int                  `json:"shard_counts"`
				Rows       []experiments.ShardRow `json:"rows"`
			}{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: scale, Seed: seed, Shards: counts, Rows: rows}
			data, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "[json] wrote %s\n", jsonPath)
		}
	}
	if all || exp == "maintenance" {
		ran = true
		dir, err := os.MkdirTemp("", "fixbench-maintenance-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		docs := int(12000 * scale)
		if docs < 500 {
			docs = 500
		}
		rows, err := experiments.MaintenanceSweep(context.Background(), dir, docs, 32, 250*time.Millisecond)
		if err != nil {
			return err
		}
		experiments.PrintMaintenanceSweep(w, rows)
		fmt.Fprintln(w)
		if jsonPath != "" && exp == "maintenance" {
			out := struct {
				NumCPU     int                          `json:"num_cpu"`
				GOMAXPROCS int                          `json:"gomaxprocs"`
				Scale      float64                      `json:"scale"`
				Seed       int64                        `json:"seed"`
				Modes      []string                     `json:"modes"`
				Rows       []experiments.MaintenanceRow `json:"rows"`
			}{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: scale, Seed: seed, Modes: experiments.MaintenanceModes(), Rows: rows}
			data, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "[json] wrote %s\n", jsonPath)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if verify {
		for ds, env := range e.cache {
			if err := env.VerifyIndexes(); err != nil {
				return fmt.Errorf("verifying %s indexes: %w", ds, err)
			}
			fmt.Printf("[verify] %s: all built indexes sound\n", ds)
		}
	}
	return nil
}
