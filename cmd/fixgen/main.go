// Command fixgen materializes one of the synthetic evaluation datasets
// into a FIX database directory (openable with the fix package and
// cmd/fixindex), or dumps it as XML text.
//
// Usage:
//
//	fixgen -dataset xmark -scale 0.5 -out /tmp/xmarkdb
//	fixgen -dataset tcmd -xml -out /tmp/tcmd.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/fix-index/fix/internal/datagen"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
)

func main() {
	var (
		dataset = flag.String("dataset", "xmark", "tcmd|dblp|xmark|treebank")
		scale   = flag.Float64("scale", 1.0, "dataset scale (1.0 ≈ one tenth of the paper's element counts)")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", "", "output database directory (or file with -xml)")
		asXML   = flag.Bool("xml", false, "write XML text instead of a database directory")
		verify  = flag.Bool("verify", false, "reopen the written database and check it round-trips")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "fixgen: -out is required")
		os.Exit(2)
	}
	if err := run(datagen.Dataset(*dataset), datagen.Config{Seed: *seed, Scale: *scale}, *out, *asXML, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "fixgen:", err)
		os.Exit(1)
	}
}

func run(ds datagen.Dataset, cfg datagen.Config, out string, asXML, verify bool) error {
	st, err := datagen.Generate(ds, cfg)
	if err != nil {
		return err
	}
	elems, err := st.CountElements()
	if err != nil {
		return err
	}
	if asXML {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for rec := 0; rec < st.NumRecords(); rec++ {
			cur, err := st.Cursor(uint32(rec))
			if err != nil {
				return err
			}
			n, err := cur.Decode(0)
			if err != nil {
				return err
			}
			if err := xmltree.Marshal(w, n); err != nil {
				return err
			}
			if err := w.WriteByte('\n'); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d documents, %d elements (XML text)\n", out, st.NumRecords(), elems)
		return nil
	}

	// Database directory: copy the in-memory store into a file-backed one
	// and persist the dictionary, matching the fix package's layout.
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	hf, err := storage.Create(filepath.Join(out, "data.heap"))
	if err != nil {
		return err
	}
	dst, err := storage.NewStore(hf, st.Dict())
	if err != nil {
		return err
	}
	for rec := 0; rec < st.NumRecords(); rec++ {
		buf, err := st.Record(uint32(rec))
		if err != nil {
			return err
		}
		if _, err := dst.AppendBytes(buf); err != nil {
			return err
		}
	}
	if err := dst.Sync(); err != nil {
		return err
	}
	df, err := os.Create(filepath.Join(out, "labels.dict"))
	if err != nil {
		return err
	}
	if _, err := st.Dict().WriteTo(df); err != nil {
		_ = df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d documents, %d elements, %d labels\n",
		out, dst.NumRecords(), elems, st.Dict().Len())
	if verify {
		if err := verifyDB(out, st.NumRecords(), elems); err != nil {
			return fmt.Errorf("verifying %s: %w", out, err)
		}
		fmt.Printf("verified %s: reopened database matches the generated data\n", out)
	}
	return nil
}

// verifyDB reopens the written database from scratch and re-derives the
// document and element counts, catching truncated or unreadable output
// before it is used in an experiment.
func verifyDB(dir string, wantDocs, wantElems int) error {
	df, err := os.Open(filepath.Join(dir, "labels.dict"))
	if err != nil {
		return err
	}
	dict, err := xmltree.ReadDict(df)
	_ = df.Close()
	if err != nil {
		return err
	}
	hf, err := storage.Open(filepath.Join(dir, "data.heap"))
	if err != nil {
		return err
	}
	st, err := storage.OpenStore(hf, dict)
	if err != nil {
		_ = hf.Close()
		return err
	}
	defer st.Close()
	if st.NumRecords() != wantDocs {
		return fmt.Errorf("reopened store holds %d documents, wrote %d", st.NumRecords(), wantDocs)
	}
	elems, err := st.CountElements()
	if err != nil {
		return err
	}
	if elems != wantElems {
		return fmt.Errorf("reopened store holds %d elements, wrote %d", elems, wantElems)
	}
	return nil
}
