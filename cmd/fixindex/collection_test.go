package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/fix-index/fix/internal/collection"
)

// newTestCollectionDir creates a 2-shard collection with a few routed
// documents and returns its directory.
func newTestCollectionDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	col, err := collection.Create(context.Background(), dir,
		collection.Spec{Name: "cli", Shards: 2}, collection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{
		`<book><title>a</title></book>`,
		`<film><title>b</title></film>`,
		`<book><title>c</title></book>`,
	}
	if _, err := col.AddBatch(context.Background(), docs); err != nil {
		t.Fatal(err)
	}
	if err := col.Save(); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestIsCollectionDir(t *testing.T) {
	dir := newTestCollectionDir(t)
	if !isCollectionDir(dir) {
		t.Error("collection dir not detected")
	}
	if isCollectionDir(t.TempDir()) {
		t.Error("empty dir detected as collection")
	}
}

// TestRunCollectionCommands drives every collection-mode command the
// way main would, against a real on-disk collection.
func TestRunCollectionCommands(t *testing.T) {
	dir := newTestCollectionDir(t)

	for _, args := range [][]string{
		{"query", "//title"},
		{"query", "-trace", "/book/title"},
		{"stats"},
		{"stats", "-json"},
		{"verify"},
		{"repair"},
	} {
		if err := run(dir, args); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
	if err := run(dir, []string{"build"}); err == nil {
		t.Error("build on a collection dir should be rejected")
	}
	if err := run(dir, []string{"metrics", "//title"}); err == nil {
		t.Error("metrics on a collection dir should be rejected")
	}
	if err := run(dir, []string{"bogus"}); err == nil {
		t.Error("unknown command should fail")
	}
}

func TestRunCollectionAdd(t *testing.T) {
	dir := newTestCollectionDir(t)
	docPath := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(docPath, []byte(`<film><title>d</title></film>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, []string{"add", docPath}); err != nil {
		t.Fatalf("add: %v", err)
	}
	// The routed add is visible to a scattered query on reopen.
	col, err := collection.Open(dir, collection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	res, err := col.Query(context.Background(), "//title", collection.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 4 {
		t.Errorf("count after CLI add = %d, want 4", res.Count)
	}
}
