// Command fixindex builds and queries FIX indexes over a database
// directory (created by fixgen or the fix package).
//
// Usage:
//
//	fixindex -db /tmp/xmarkdb build -depth 6 -clustered
//	fixindex -db /tmp/xmarkdb query -trace '//item[name]/mailbox'
//	fixindex -db /tmp/xmarkdb metrics '//item[name]/mailbox'
//	fixindex -db /tmp/xmarkdb add doc.xml
//	fixindex -db /tmp/xmarkdb stats -json
//	fixindex -db /tmp/xmarkdb verify
//	fixindex -db /tmp/xmarkdb repair
//
// When -db points at a collection directory (one holding a
// collection.json manifest, as created by fixserve's collection mode),
// the same commands operate on the whole sharded collection: query
// scatter-gathers with per-shard accounting, add routes documents by
// root label and prints global IDs, and stats/verify/repair walk every
// shard. See docs/SERVING.md for the collection layout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/fix-index/fix/fix"
)

func main() {
	dbdir := flag.String("db", "", "database directory")
	flag.Parse()
	args := flag.Args()
	if *dbdir == "" || len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if err := run(*dbdir, args); err != nil {
		fmt.Fprintln(os.Stderr, "fixindex:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fixindex -db DIR COMMAND [args]

commands:
  build [-depth N] [-clustered] [-values] [-beta N]   build the FIX index
  query [-trace] XPATH                                 run a query
  metrics XPATH                                        report sel/pp/fpr
  add FILE...                                          add XML documents
  stats [-json]                                        database statistics
  verify                                               check index integrity
  repair                                               rebuild a damaged index

a -db directory holding a collection.json manifest is operated on as a
sharded collection: query/add/stats/verify/repair cover every shard.`)
}

func run(dbdir string, args []string) error {
	if isCollectionDir(dbdir) {
		return runCollection(dbdir, args)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "add":
		db, err := openOrCreate(dbdir)
		if err != nil {
			return err
		}
		defer db.Close()
		for _, path := range rest {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			id, err := db.AddDocument(f)
			_ = f.Close()
			if err != nil {
				return fmt.Errorf("adding %s: %w", path, err)
			}
			fmt.Printf("added %s as document %d\n", path, id)
		}
		return db.Save()

	case "build":
		fs := flag.NewFlagSet("build", flag.ExitOnError)
		depth := fs.Int("depth", 0, "subpattern depth limit (0 = whole documents)")
		clustered := fs.Bool("clustered", false, "build a clustered index")
		values := fs.Bool("values", false, "integrate text values (§4.6)")
		beta := fs.Uint("beta", 0, "value hash range β (0 = default 10)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		db, err := fix.Open(dbdir)
		if err != nil {
			return err
		}
		defer db.Close()
		if err := db.BuildIndex(fix.IndexOptions{
			DepthLimit: *depth,
			Clustered:  *clustered,
			Values:     *values,
			Beta:       uint32(*beta),
		}); err != nil {
			return err
		}
		if err := db.Save(); err != nil {
			return err
		}
		fmt.Printf("built index: %d entries, %s, %v\n",
			db.IndexEntries(), sizeStr(db.IndexSizeBytes()), db.IndexBuildTime().Round(1e6))
		return nil

	case "query":
		fs := flag.NewFlagSet("query", flag.ExitOnError)
		trace := fs.Bool("trace", false, "print the full execution trace")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("query takes exactly one XPath expression")
		}
		db, err := fix.Open(dbdir)
		if err != nil {
			return err
		}
		defer db.Close()
		var opts []fix.QueryOption
		if *trace {
			opts = append(opts, fix.Trace())
		}
		res, err := db.Query(fs.Arg(0), opts...)
		if err != nil {
			return err
		}
		fmt.Printf("results: %d\n", res.Count)
		if res.Entries > 0 {
			fmt.Printf("pruning: %d entries -> %d candidates -> %d matched\n",
				res.Entries, res.Candidates, res.MatchedEntries)
		} else {
			fmt.Println("(full scan: no index or query not covered)")
		}
		if res.Trace != nil {
			fmt.Println(res.Trace.String())
		}
		return nil

	case "metrics":
		if len(rest) != 1 {
			return fmt.Errorf("metrics takes exactly one XPath expression")
		}
		db, err := fix.Open(dbdir)
		if err != nil {
			return err
		}
		defer db.Close()
		m, err := db.Effectiveness(rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("sel=%.2f%% pp=%.2f%% fpr=%.2f%%\n",
			m.Selectivity*100, m.PruningPower*100, m.FalsePosRatio*100)
		return nil

	case "verify":
		db, err := fix.Open(dbdir)
		if err != nil {
			return err
		}
		defer db.Close()
		if !db.HasIndex() {
			return fmt.Errorf("no index to verify (run 'build' first)")
		}
		if err := db.IndexHealth(); err != nil {
			fmt.Printf("index degraded: %v\n", err)
			fmt.Println("queries fall back to sequential scans; run 'repair' to rebuild")
			return nil
		}
		if err := db.VerifyIndex(); err != nil {
			fmt.Printf("index corrupt: %v\n", err)
			fmt.Println("run 'repair' to rebuild")
			return nil
		}
		fmt.Printf("index ok: %d entries verified\n", db.IndexEntries())
		return nil

	case "repair":
		db, err := fix.Open(dbdir)
		if err != nil {
			return err
		}
		defer db.Close()
		if !db.HasIndex() {
			return fmt.Errorf("no index to repair (run 'build' first)")
		}
		if err := db.RebuildIndex(); err != nil {
			return err
		}
		if err := db.VerifyIndex(); err != nil {
			return fmt.Errorf("rebuilt index still fails verification: %w", err)
		}
		fmt.Printf("index rebuilt: %d entries, %s\n", db.IndexEntries(), sizeStr(db.IndexSizeBytes()))
		return nil

	case "stats":
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "print the full metrics snapshot as JSON")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		db, err := fix.Open(dbdir)
		if err != nil {
			return err
		}
		defer db.Close()
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(db.Metrics())
		}
		fmt.Printf("documents: %d\n", db.NumDocuments())
		if db.HasIndex() {
			fmt.Printf("index: %d entries, %s\n", db.IndexEntries(), sizeStr(db.IndexSizeBytes()))
			if err := db.IndexHealth(); err != nil {
				fmt.Printf("index health: degraded (%v)\n", err)
			}
		} else {
			fmt.Println("index: none")
		}
		s := db.Metrics()
		fmt.Printf("governance: %d admission-rejected, %d deadline-exceeded, %d budget-exceeded, %d panics recovered\n",
			s.RejectedAdmission, s.DeadlineExceeded, s.BudgetExceeded, s.PanicsRecovered)
		return nil

	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func openOrCreate(dbdir string) (*fix.DB, error) {
	if _, err := os.Stat(dbdir); os.IsNotExist(err) {
		return fix.Create(dbdir)
	}
	return fix.Open(dbdir)
}

func sizeStr(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
