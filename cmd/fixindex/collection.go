package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/fix-index/fix/fix"
	"github.com/fix-index/fix/internal/collection"
)

// When -db points at a collection directory (it holds a
// collection.json manifest), fixindex operates on the whole sharded
// collection instead of a single database: queries scatter-gather with
// per-shard accounting, adds route by root label and print global IDs,
// and stats/verify/repair walk every shard. The command surface is the
// same as single-database mode; "build" is not offered because
// collection shards are created with their indexes and maintain them
// incrementally — "repair" rebuilds any shard that fails verification.

// isCollectionDir reports whether dir holds a collection manifest.
func isCollectionDir(dir string) bool {
	_, err := collection.ReadManifest(dir)
	return err == nil
}

// runCollection is the collection-mode command dispatcher, mirroring
// run for directories holding a collection.json.
func runCollection(dir string, args []string) error {
	cmd, rest := args[0], args[1:]
	ctx := context.Background()
	switch cmd {
	case "add":
		col, err := collection.Open(dir, collection.Options{})
		if err != nil {
			return err
		}
		defer col.Close()
		var docs []string
		for _, path := range rest {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			docs = append(docs, string(data))
		}
		ids, err := col.AddBatch(ctx, docs)
		if err != nil {
			return err
		}
		for i, id := range ids {
			shard, rec := collection.SplitID(id)
			fmt.Printf("added %s as document %d (shard %d record %d)\n", rest[i], id, shard, rec)
		}
		return col.Save()

	case "query":
		fs := flag.NewFlagSet("query", flag.ExitOnError)
		trace := fs.Bool("trace", false, "print every shard's execution trace")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("query takes exactly one XPath expression")
		}
		col, err := collection.Open(dir, collection.Options{})
		if err != nil {
			return err
		}
		defer col.Close()
		res, err := col.Query(ctx, fs.Arg(0), collection.QueryOpts{Trace: *trace})
		if err != nil {
			return err
		}
		routing := "scattered to all shards"
		if res.Targeted {
			routing = "targeted one shard by root label"
		}
		fmt.Printf("results: %d (%s)\n", res.Count, routing)
		if res.Entries > 0 {
			fmt.Printf("pruning: %d entries -> %d candidates -> %d matched\n",
				res.Entries, res.Candidates, res.Matched)
		}
		for _, row := range res.Shards {
			line := fmt.Sprintf("  shard %d: %d results", row.Shard, row.Count)
			if row.ScanFallback {
				line += " (scan fallback)"
			}
			if row.Err != "" {
				line += " error: " + row.Err
			}
			fmt.Println(line)
			if row.Trace != nil {
				fmt.Println(row.Trace.String())
			}
		}
		if res.Partial {
			fmt.Println("PARTIAL: some shards failed; the count covers survivors only")
		}
		return nil

	case "verify":
		return eachShard(dir, func(i int, db *fix.DB) error {
			if err := db.IndexHealth(); err != nil {
				fmt.Printf("shard %d degraded: %v\n", i, err)
				return nil
			}
			if err := db.VerifyIndex(); err != nil {
				fmt.Printf("shard %d corrupt: %v\n", i, err)
				return nil
			}
			fmt.Printf("shard %d ok: %d entries verified\n", i, db.IndexEntries())
			return nil
		})

	case "repair":
		return eachShard(dir, func(i int, db *fix.DB) error {
			if db.IndexHealth() == nil && db.VerifyIndex() == nil {
				fmt.Printf("shard %d ok, not rebuilt\n", i)
				return nil
			}
			if err := db.RebuildIndex(); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			if err := db.VerifyIndex(); err != nil {
				return fmt.Errorf("shard %d still fails verification after rebuild: %w", i, err)
			}
			if err := db.Save(); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			fmt.Printf("shard %d rebuilt: %d entries\n", i, db.IndexEntries())
			return nil
		})

	case "stats":
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "print the stats payload as JSON")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		col, err := collection.Open(dir, collection.Options{})
		if err != nil {
			return err
		}
		defer col.Close()
		st := col.Stats()
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(st)
		}
		fmt.Printf("collection: %s (%d shards, weight %d)\n",
			st.Spec.Name, st.Spec.Shards, st.Spec.Weight)
		fmt.Printf("documents: %d live, %d deleted; %d index entries; ingest lag %d\n",
			st.Documents, st.Deleted, st.Entries, st.IngestLag)
		for _, h := range st.Shards {
			state := "ok"
			if !h.Healthy {
				state = "degraded: " + h.Cause
			}
			fmt.Printf("  shard %d: gen %d, %d docs, %d entries, lag %d — %s\n",
				h.Shard, h.Generation, h.Documents, h.Entries, h.IngestLag, state)
		}
		return nil

	case "build", "metrics":
		return fmt.Errorf("%q is not available on a collection directory: shards maintain their indexes incrementally (use 'repair' to rebuild damaged shards, or point -db at one shard directory)", cmd)

	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// eachShard opens every shard database of the collection at dir in
// turn, without pulling the whole collection (and its ingesters) up.
func eachShard(dir string, fn func(i int, db *fix.DB) error) error {
	spec, err := collection.ReadManifest(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for i := 0; i < spec.Shards; i++ {
		db, err := fix.Open(collection.ShardDir(dir, i))
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := fn(i, db); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := db.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
