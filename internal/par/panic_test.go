package par

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestDoConvertsPanicSequential(t *testing.T) {
	err := Do(context.Background(), 1, 4, func(i int) error {
		if i == 2 {
			panic("boom at 2")
		}
		return nil
	})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("Do with panicking fn = %v, want ErrPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to *PanicError", err)
	}
	if pe.Value != "boom at 2" {
		t.Fatalf("PanicError.Value = %v, want the panic value", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatal("PanicError.Stack missing the worker stack trace")
	}
}

func TestDoConvertsPanicParallel(t *testing.T) {
	err := Do(context.Background(), 4, 64, func(i int) error {
		if i == 33 {
			panic(i)
		}
		return nil
	})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("parallel Do with panicking worker = %v, want ErrPanic", err)
	}
}

func TestDoPanicDoesNotMaskOtherIndices(t *testing.T) {
	// A panic on one index must stop the pool like any error, without
	// crashing the process or deadlocking the remaining workers.
	ran := make([]bool, 1000)
	err := Do(context.Background(), 8, len(ran), func(i int) error {
		if i == 0 {
			panic("early")
		}
		ran[i] = true
		return nil
	})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
}
