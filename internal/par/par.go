// Package par provides the bounded worker pool used by the index build
// (§3.4 matrix/eigenvalue computation per record) and the query
// refinement pipeline (§5). It is deliberately minimal: a fixed number of
// goroutines pull item indexes off a shared atomic counter, the first
// error (or context cancellation) stops the pool promptly, and callers
// keep determinism by writing results into per-index slots and merging
// them in order afterwards.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values below 1 mean "one
// worker per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// seqThreshold is the item count below which Do runs inline: spawning
// goroutines for a handful of items costs more than it saves.
const seqThreshold = 4

// Do runs fn(i) for every i in [0, n), using at most workers goroutines
// (values below 1 mean GOMAXPROCS). It returns the first error any call
// produced, or ctx.Err() if the context was cancelled; either stops the
// remaining work promptly (in-flight calls finish, queued items are
// dropped). fn must be safe to call from multiple goroutines; writes it
// makes to distinct per-index slots need no further synchronization, as
// Do establishes a happens-before edge between every fn call and its
// return.
func Do(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 || n < seqThreshold {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if pctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}
