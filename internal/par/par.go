// Package par provides the bounded worker pool used by the index build
// (§3.4 matrix/eigenvalue computation per record) and the query
// refinement pipeline (§5). It is deliberately minimal: a fixed number of
// goroutines pull item indexes off a shared atomic counter, the first
// error (or context cancellation) stops the pool promptly, and callers
// keep determinism by writing results into per-index slots and merging
// them in order afterwards.
package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrPanic is the sentinel wrapped by every PanicError, so callers can
// classify a recovered worker panic with errors.Is(err, par.ErrPanic)
// without depending on the concrete type.
var ErrPanic = errors.New("par: panic in worker")

// PanicError is a panic recovered inside a worker, converted into an
// error: the pool must never let a panicking work item kill the whole
// process, but the caller needs the original value and stack to report
// it. It unwraps to ErrPanic.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%v: %v\n%s", ErrPanic, e.Value, e.Stack)
}

func (e *PanicError) Unwrap() error { return ErrPanic }

// call invokes fn(i), converting a panic into a *PanicError so the pool
// (and the sequential path) report it as the first error instead of
// crashing the process.
func call(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Workers resolves a requested worker count: values below 1 mean "one
// worker per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// seqThreshold is the item count below which Do runs inline: spawning
// goroutines for a handful of items costs more than it saves.
const seqThreshold = 4

// Do runs fn(i) for every i in [0, n), using at most workers goroutines
// (values below 1 mean GOMAXPROCS). It returns the first error any call
// produced, or ctx.Err() if the context was cancelled; either stops the
// remaining work promptly (in-flight calls finish, queued items are
// dropped). A panicking fn never crashes the process: the panic is
// recovered inside the worker and reported as a *PanicError (test with
// errors.Is against ErrPanic). fn must be safe to call from multiple
// goroutines; writes it makes to distinct per-index slots need no
// further synchronization, as Do establishes a happens-before edge
// between every fn call and its return.
func Do(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 || n < seqThreshold {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := call(fn, i); err != nil {
				return err
			}
		}
		return nil
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if pctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := call(fn, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}
