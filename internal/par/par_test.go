package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 100
		var hits [n]atomic.Int32
		err := Do(context.Background(), workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoReturnsFirstError(t *testing.T) {
	boom := errors.New("boom")
	err := Do(context.Background(), 4, 50, func(i int) error {
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestDoObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := Do(ctx, 4, 1000, func(i int) error {
		ran.Add(1)
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers check the context before pulling work, so a pre-cancelled
	// pool runs at most a few in-flight calls, not the full range.
	if n := ran.Load(); n > 100 {
		t.Fatalf("ran %d items on a cancelled context", n)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive requests must resolve to at least one worker")
	}
	if Workers(5) != 5 {
		t.Fatalf("Workers(5) = %d", Workers(5))
	}
}
