// Package nok implements a navigational twig matcher in the role of the
// paper's NoK operator [32]: it evaluates twig queries (extended with
// descendant axes and value-equality predicates) directly over the binary
// subtree encoding in primary storage, with no index support. FIX uses it
// as the refinement processor on candidate subtrees (§5); the experiments
// also run it standalone as the unindexed baseline (§6.3).
//
// Evaluation is a two-pass dynamic program over the subtree. The first,
// bottom-up pass computes for every node the set of query nodes whose
// subtree constraints it satisfies (a bitmask; twig queries are tiny). The
// second, top-down pass walks only witnessed bindings to enumerate the
// distinct matches of the query's output node. Existence checks stop after
// the first pass.
//
// A compiled Query is immutable after Compile; every evaluation keeps its
// state in a per-call evalState, so one Query may be shared by any number
// of concurrent goroutines. The parallel refinement and scan paths rely
// on this.
package nok

import (
	"fmt"

	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// maxQueryNodes bounds the number of query-tree nodes (bitmask width).
const maxQueryNodes = 64

// qnode is a flattened query-tree node.
type qnode struct {
	label    uint32 // element label id; 0 for value leaves
	isValue  bool
	value    string
	desc     bool // incoming axis is descendant
	output   bool
	children []int
}

// Query is a compiled twig query ready for repeated evaluation.
type Query struct {
	nodes         []qnode
	rootDesc      bool // the query's leading axis is //
	unsatisfiable bool // a query label does not occur in the dictionary
}

// Compile flattens and label-resolves the query tree. A query whose labels
// never occur in the data is still compiled; it simply matches nothing.
func Compile(root *xpath.QNode, dict *xmltree.Dict) (*Query, error) {
	if root == nil {
		return nil, fmt.Errorf("nok: nil query")
	}
	q := &Query{rootDesc: root.Axis == xpath.Descendant}
	var add func(n *xpath.QNode) (int, error)
	add = func(n *xpath.QNode) (int, error) {
		if len(q.nodes) >= maxQueryNodes {
			return 0, fmt.Errorf("nok: query exceeds %d nodes", maxQueryNodes)
		}
		idx := len(q.nodes)
		qn := qnode{
			isValue: n.IsValue,
			value:   n.Value,
			desc:    n.Axis == xpath.Descendant,
			output:  n.Output,
		}
		if !n.IsValue {
			id, ok := dict.Lookup(n.Name)
			if !ok {
				q.unsatisfiable = true
			}
			qn.label = id
		}
		q.nodes = append(q.nodes, qn)
		for _, c := range n.Children {
			ci, err := add(c)
			if err != nil {
				return 0, err
			}
			q.nodes[idx].children = append(q.nodes[idx].children, ci)
		}
		return idx, nil
	}
	if _, err := add(root); err != nil {
		return nil, err
	}
	return q, nil
}

// evalState carries one evaluation's per-node satisfaction masks.
type evalState struct {
	c       xmltree.Cursor
	q       *Query
	sat     map[xmltree.Ref]uint64 // bit i set: node satisfies query node i's subtree
	visited int                    // nodes the bottom-up pass touched

	// budget, when non-nil, caps the bottom-up pass's node visits and
	// checks the query context once per chunk. local is the prepaid
	// allowance drawn from the shared budget; exceeded latches the first
	// budget or context error so the recursion unwinds without doing
	// further work.
	budget   *Budget
	local    int64
	exceeded error
}

// charge accounts one node visit against the budget. It reports false —
// after latching the error in s.exceeded — once the budget or the
// query's deadline is exhausted; a nil budget always allows.
func (s *evalState) charge() bool {
	if s.budget == nil {
		return true
	}
	if s.exceeded != nil {
		return false
	}
	if s.local > 0 {
		s.local--
		return true
	}
	grant, err := s.budget.take()
	if err != nil {
		s.exceeded = err
		return false
	}
	s.local = grant - 1
	return true
}

// pass1 computes the satisfaction mask of the node at r and returns
// (sat(r), sat(r) | union of descendants' sat).
func (s *evalState) pass1(r xmltree.Ref) (own, withDesc uint64) {
	if !s.charge() {
		return 0, 0
	}
	s.visited++
	var childUnion uint64 // union over children of (sat | descSat)
	type childInfo struct {
		ref xmltree.Ref
		sat uint64
	}
	var children []childInfo
	if !s.c.IsText(r) {
		it := s.c.Children(r)
		for {
			cr, ok := it.Next()
			if !ok {
				break
			}
			cs, cw := s.pass1(cr)
			childUnion |= cw
			children = append(children, childInfo{cr, cs})
		}
	}
	isText := s.c.IsText(r)
	var labelID uint32
	var text string
	if isText {
		text = s.c.Text(r)
	} else {
		labelID = s.c.LabelID(r)
	}
	for i := range s.q.nodes {
		qn := &s.q.nodes[i]
		if qn.isValue {
			if isText && text == qn.value {
				own |= 1 << uint(i)
			}
			continue
		}
		if isText || labelID != qn.label || qn.label == 0 {
			continue
		}
		ok := true
		for _, ci := range qn.children {
			cq := &s.q.nodes[ci]
			bit := uint64(1) << uint(ci)
			if cq.desc {
				if childUnion&bit == 0 {
					ok = false
					break
				}
			} else {
				found := false
				for _, ch := range children {
					if ch.sat&bit != 0 {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
		}
		if ok {
			own |= 1 << uint(i)
		}
	}
	if s.sat != nil && own != 0 {
		s.sat[r] = own
	}
	return own, own | childUnion
}

// Exists reports whether the query matches the subtree rooted at r: with a
// // leading axis any element of the subtree may bind the query root; with
// a / leading axis only r itself may.
func (q *Query) Exists(c xmltree.Cursor, r xmltree.Ref) bool {
	if q.unsatisfiable {
		return false
	}
	s := &evalState{c: c, q: q}
	own, withDesc := s.pass1(r)
	if q.rootDesc {
		return withDesc&1 != 0
	}
	return own&1 != 0
}

// Outputs returns the distinct nodes (by offset, in document order) that
// bind the query's output node in some embedding rooted per the leading
// axis.
func (q *Query) Outputs(c xmltree.Cursor, r xmltree.Ref) []xmltree.Ref {
	if q.unsatisfiable {
		return nil
	}
	s := &evalState{c: c, q: q, sat: make(map[xmltree.Ref]uint64)}
	return q.outputs(s, r)
}

// outputs runs both passes on an initialized state and enumerates the
// output bindings; Outputs, Eval and EvalBudget share it. A budget
// error surfaced by the first pass skips the second pass entirely: the
// satisfaction masks are incomplete, so enumerating from them would
// produce an arbitrary subset.
func (q *Query) outputs(s *evalState, r xmltree.Ref) []xmltree.Ref {
	c := s.c
	s.pass1(r)
	if s.exceeded != nil {
		return nil
	}
	// witnessed[q] per node: we propagate top-down which (node, query node)
	// bindings participate in a full embedding.
	witnessed := make(map[xmltree.Ref]uint64)
	var outputs []xmltree.Ref
	outputBit := uint64(0)
	for i := range q.nodes {
		if q.nodes[i].output {
			outputBit |= 1 << uint(i)
		}
	}
	var mark func(r xmltree.Ref, qi int)
	var collectDesc func(r xmltree.Ref, qi int)
	collectDesc = func(r xmltree.Ref, qi int) {
		it := c.Children(r)
		for {
			cr, ok := it.Next()
			if !ok {
				break
			}
			if s.sat[cr]&(1<<uint(qi)) != 0 {
				mark(cr, qi)
			}
			collectDesc(cr, qi)
		}
	}
	mark = func(r xmltree.Ref, qi int) {
		bit := uint64(1) << uint(qi)
		if witnessed[r]&bit != 0 {
			return
		}
		witnessed[r] |= bit
		for _, ci := range q.nodes[qi].children {
			if q.nodes[ci].desc {
				collectDesc(r, ci)
				continue
			}
			it := c.Children(r)
			for {
				cr, ok := it.Next()
				if !ok {
					break
				}
				if s.sat[cr]&(1<<uint(ci)) != 0 {
					mark(cr, ci)
				}
			}
		}
	}
	if q.rootDesc {
		if s.sat[r]&1 != 0 {
			mark(r, 0)
		}
		collectDesc(r, 0)
	} else if s.sat[r]&1 != 0 {
		mark(r, 0)
	}
	// Gather outputs in document order.
	var walk func(r xmltree.Ref)
	walk = func(r xmltree.Ref) {
		if witnessed[r]&outputBit != 0 {
			outputs = append(outputs, r)
		}
		it := c.Children(r)
		for {
			cr, ok := it.Next()
			if !ok {
				break
			}
			walk(cr)
		}
	}
	walk(r)
	return outputs
}

// Count returns the number of distinct output-node matches.
func (q *Query) Count(c xmltree.Cursor, r xmltree.Ref) int {
	return len(q.Outputs(c, r))
}

// Eval is Count with work accounting: it additionally reports how many
// subtree nodes the bottom-up pass visited — the unit of refinement work
// the observability layer records (obs.Trace.NodesVisited). The visit
// count is deterministic (the pass touches every node of the subtree
// exactly once), so traces reconcile across worker counts.
func (q *Query) Eval(c xmltree.Cursor, r xmltree.Ref) (count, visited int) {
	if q.unsatisfiable {
		return 0, 0
	}
	s := &evalState{c: c, q: q, sat: make(map[xmltree.Ref]uint64)}
	outs := q.outputs(s, r)
	return len(outs), s.visited
}

// EvalBudget is Eval under a work budget: every node the bottom-up pass
// visits is charged against b, and the budget's context is checked once
// per chunk, so a deadline interrupts evaluation even inside one large
// subtree. On exhaustion it returns ErrBudget (or the context's error)
// with the visits performed so far; the count is then meaningless and
// returned as zero. A nil budget behaves exactly like Eval.
func (q *Query) EvalBudget(c xmltree.Cursor, r xmltree.Ref, b *Budget) (count, visited int, err error) {
	if q.unsatisfiable {
		return 0, 0, nil
	}
	s := &evalState{c: c, q: q, sat: make(map[xmltree.Ref]uint64), budget: b}
	outs := q.outputs(s, r)
	if s.exceeded != nil {
		return 0, s.visited, s.exceeded
	}
	return len(outs), s.visited, nil
}
