package nok

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrBudget reports that an evaluation ran out of refinement-node
// budget. The caller decides what that means — the index core maps it
// onto its typed query-budget error.
var ErrBudget = errors.New("nok: refinement node budget exceeded")

// budgetChunk is how many node visits an evalState prepays from the
// shared budget at a time. Chunking keeps the shared atomic off the
// per-node path and bounds how stale the deadline check can be: ctx is
// consulted once per chunk, so cancellation is noticed within
// budgetChunk node visits even inside one huge subtree.
const budgetChunk = 64

// Budget caps the total refinement work of one query across all of its
// candidate evaluations. It is shared by the refinement worker pool: the
// remaining count is an atomic, and the context is only read, so any
// number of goroutines may draw from one Budget concurrently.
//
// A Budget also carries the query's context. Even an unlimited budget
// checks ctx.Err() once per chunk, which is what lets a deadline or a
// cancellation interrupt the evaluation of a single large subtree
// instead of waiting for the next record boundary.
type Budget struct {
	ctx       context.Context
	unlimited bool
	remaining atomic.Int64
}

// NewBudget returns a budget of maxNodes refinement-node visits drawn
// against ctx. maxNodes <= 0 means unlimited: only the context is
// enforced. A nil *Budget passed to EvalBudget disables both checks and
// costs one predictable branch per node — the default, ungoverned path.
func NewBudget(ctx context.Context, maxNodes int64) *Budget {
	b := &Budget{ctx: ctx, unlimited: maxNodes <= 0}
	if !b.unlimited {
		b.remaining.Store(maxNodes)
	}
	return b
}

// take prepays up to budgetChunk node visits, returning how many were
// granted. It returns the context's error once the deadline has passed,
// and ErrBudget once the node budget is exhausted.
func (b *Budget) take() (int64, error) {
	if err := b.ctx.Err(); err != nil {
		return 0, err
	}
	if b.unlimited {
		return budgetChunk, nil
	}
	for {
		rem := b.remaining.Load()
		if rem <= 0 {
			return 0, ErrBudget
		}
		grant := rem
		if grant > budgetChunk {
			grant = budgetChunk
		}
		if b.remaining.CompareAndSwap(rem, rem-grant) {
			return grant, nil
		}
	}
}
