package nok

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// wideDoc builds a document with n <b/> leaves under <a> elements, big
// enough that evaluation visits well over one budget chunk of nodes.
func wideDoc(n int) string {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < n; i++ {
		sb.WriteString("<a><b/></a>")
	}
	sb.WriteString("</r>")
	return sb.String()
}

func TestEvalBudgetMatchesEval(t *testing.T) {
	q, cur := compileOn(t, wideDoc(100), "//a/b")
	wantCount, wantVisited := q.Eval(cur, 0)
	b := NewBudget(context.Background(), 1<<20)
	count, visited, err := q.EvalBudget(cur, 0, b)
	if err != nil {
		t.Fatalf("EvalBudget under ample budget: %v", err)
	}
	if count != wantCount || visited != wantVisited {
		t.Fatalf("EvalBudget = (%d, %d), Eval = (%d, %d); budgeted path must not change results",
			count, visited, wantCount, wantVisited)
	}
}

func TestEvalBudgetNilBudgetIsEval(t *testing.T) {
	q, cur := compileOn(t, wideDoc(10), "//a/b")
	wantCount, wantVisited := q.Eval(cur, 0)
	count, visited, err := q.EvalBudget(cur, 0, nil)
	if err != nil {
		t.Fatalf("EvalBudget(nil): %v", err)
	}
	if count != wantCount || visited != wantVisited {
		t.Fatalf("EvalBudget(nil) = (%d, %d), want (%d, %d)", count, visited, wantCount, wantVisited)
	}
}

func TestEvalBudgetExhaustion(t *testing.T) {
	q, cur := compileOn(t, wideDoc(500), "//a/b")
	b := NewBudget(context.Background(), 1)
	_, _, err := q.EvalBudget(cur, 0, b)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("EvalBudget under budget 1 = %v, want ErrBudget", err)
	}
}

func TestEvalBudgetSharedAcrossEvaluations(t *testing.T) {
	// One budget drawn down by successive evaluations: the cap is per
	// query, not per candidate.
	q, cur := compileOn(t, wideDoc(100), "//a/b")
	_, visited := q.Eval(cur, 0)
	b := NewBudget(context.Background(), int64(visited)+budgetChunk)
	if _, _, err := q.EvalBudget(cur, 0, b); err != nil {
		t.Fatalf("first evaluation: %v", err)
	}
	_, _, err := q.EvalBudget(cur, 0, b)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("second evaluation on drained budget = %v, want ErrBudget", err)
	}
}

func TestEvalBudgetObservesCancellation(t *testing.T) {
	q, cur := compileOn(t, wideDoc(500), "//a/b")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := NewBudget(ctx, 0) // unlimited nodes: only the context stops it
	_, _, err := q.EvalBudget(cur, 0, b)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EvalBudget under cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestBudgetTakeGrantsAtMostChunk(t *testing.T) {
	b := NewBudget(context.Background(), budgetChunk*3)
	total := int64(0)
	for {
		grant, err := b.take()
		if errors.Is(err, ErrBudget) {
			break
		}
		if err != nil {
			t.Fatalf("take: %v", err)
		}
		if grant <= 0 || grant > budgetChunk {
			t.Fatalf("grant = %d, want in (0, %d]", grant, budgetChunk)
		}
		total += grant
	}
	if total != budgetChunk*3 {
		t.Fatalf("total granted = %d, want %d", total, budgetChunk*3)
	}
}
