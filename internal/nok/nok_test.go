package nok

import (
	"math/rand"
	"testing"

	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

func compileOn(t *testing.T, doc, query string) (*Query, xmltree.Cursor) {
	t.Helper()
	n, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	dict := xmltree.NewDict()
	buf := xmltree.EncodeBinary(n, dict)
	q, err := Compile(xpath.MustParse(query).Tree(), dict)
	if err != nil {
		t.Fatal(err)
	}
	return q, xmltree.Cursor{Buf: buf, Dict: dict}
}

func TestExistsBasic(t *testing.T) {
	doc := `<bib><article><author><email/></author></article><book><author><phone/></author></book></bib>`
	cases := []struct {
		query string
		want  bool
	}{
		{"//article", true},
		{"//article/author/email", true},
		{"//article/author/phone", false},
		{"//author[email]", true},
		{"//author[email][phone]", false},
		{"//bib[article][book]", true},
		{"/bib/book/author", true},
		{"/article", false}, // root is bib
		{"//bib//email", true},
		{"//article//phone", false},
		{"//unknownlabel", false},
	}
	for _, c := range cases {
		q, cur := compileOn(t, doc, c.query)
		if got := q.Exists(cur, 0); got != c.want {
			t.Errorf("Exists(%s) = %v, want %v", c.query, got, c.want)
		}
	}
}

func TestOutputsCountAndOrder(t *testing.T) {
	doc := `<r><a><b/><b/></a><a><b/></a><c><a><b/></a></c></r>`
	q, cur := compileOn(t, doc, "//a/b")
	outs := q.Outputs(cur, 0)
	if len(outs) != 4 {
		t.Fatalf("outputs = %d, want 4", len(outs))
	}
	for i := 1; i < len(outs); i++ {
		if outs[i-1] >= outs[i] {
			t.Error("outputs not in document order")
		}
	}
	for _, r := range outs {
		if cur.Label(r) != "b" {
			t.Errorf("output labeled %q", cur.Label(r))
		}
	}
}

func TestOutputsDedupAcrossEmbeddings(t *testing.T) {
	// The same b matches via two different a-ancestors with //: it must
	// be reported once.
	doc := `<a><a><b/></a></a>`
	q, cur := compileOn(t, doc, "//a//b")
	if got := q.Count(cur, 0); got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
}

func TestValuePredicates(t *testing.T) {
	doc := `<lib><book><publisher>Springer</publisher></book><book><publisher>ACM</publisher></book></lib>`
	cases := []struct {
		query string
		want  int
	}{
		{`//book[publisher="Springer"]`, 1},
		{`//book[publisher="ACM"]`, 1},
		{`//book[publisher="IEEE"]`, 0},
		{`//book[publisher]`, 2},
	}
	for _, c := range cases {
		q, cur := compileOn(t, doc, c.query)
		if got := q.Count(cur, 0); got != c.want {
			t.Errorf("Count(%s) = %d, want %d", c.query, got, c.want)
		}
	}
}

func TestRootAnchoredVsDescendant(t *testing.T) {
	doc := `<a><a><b/></a></a>`
	q, cur := compileOn(t, doc, "/a/b")
	if q.Exists(cur, 0) {
		t.Error("/a/b should not match (b is under the inner a)")
	}
	q, cur = compileOn(t, doc, "//a/b")
	if !q.Exists(cur, 0) {
		t.Error("//a/b should match")
	}
}

func TestCompileErrors(t *testing.T) {
	dict := xmltree.NewDict()
	if _, err := Compile(nil, dict); err == nil {
		t.Error("nil query accepted")
	}
	// Build a query wider than the bitmask.
	wide := &xpath.QNode{Name: "r"}
	for i := 0; i < 70; i++ {
		wide.Children = append(wide.Children, &xpath.QNode{Name: "c"})
	}
	if _, err := Compile(wide, dict); err == nil {
		t.Error("oversized query accepted")
	}
}

// naive is an exponential-time reference matcher used to validate the
// bitmask DP on random inputs.
func naive(cur xmltree.Cursor, r xmltree.Ref, q *xpath.QNode) bool {
	if q.IsValue {
		return cur.IsText(r) && cur.Text(r) == q.Value
	}
	if cur.IsText(r) || cur.Label(r) != q.Name {
		return false
	}
	for _, qc := range q.Children {
		found := false
		if qc.Axis == xpath.Child {
			it := cur.Children(r)
			for {
				c, ok := it.Next()
				if !ok {
					break
				}
				if naive(cur, c, qc) {
					found = true
					break
				}
			}
		} else {
			var desc func(x xmltree.Ref) bool
			desc = func(x xmltree.Ref) bool {
				it := cur.Children(x)
				for {
					c, ok := it.Next()
					if !ok {
						return false
					}
					if naive(cur, c, qc) || desc(c) {
						return true
					}
				}
			}
			found = desc(r)
		}
		if !found {
			return false
		}
	}
	return true
}

func naiveExists(cur xmltree.Cursor, q *xpath.QNode) bool {
	if q.Axis == xpath.Child {
		return naive(cur, 0, q)
	}
	var walk func(r xmltree.Ref) bool
	walk = func(r xmltree.Ref) bool {
		if naive(cur, r, q) {
			return true
		}
		it := cur.Children(r)
		for {
			c, ok := it.Next()
			if !ok {
				return false
			}
			if walk(c) {
				return true
			}
		}
	}
	return walk(0)
}

func randomDoc(rng *rand.Rand, depth int) *xmltree.Node {
	labels := []string{"a", "b", "c", "d"}
	var build func(d int) *xmltree.Node
	build = func(d int) *xmltree.Node {
		n := xmltree.Elem(labels[rng.Intn(len(labels))])
		if d <= 0 {
			return n
		}
		for i := rng.Intn(4); i > 0; i-- {
			n.Children = append(n.Children, build(d-1))
		}
		return n
	}
	return build(depth)
}

func randomQuery(rng *rand.Rand, depth int) *xpath.QNode {
	labels := []string{"a", "b", "c", "d"}
	var build func(d int, axis xpath.Axis) *xpath.QNode
	build = func(d int, axis xpath.Axis) *xpath.QNode {
		n := &xpath.QNode{Name: labels[rng.Intn(len(labels))], Axis: axis}
		if d <= 0 {
			return n
		}
		for i := rng.Intn(3); i > 0; i-- {
			a := xpath.Child
			if rng.Intn(4) == 0 {
				a = xpath.Descendant
			}
			n.Children = append(n.Children, build(d-1, a))
		}
		return n
	}
	root := build(depth, xpath.Descendant)
	if rng.Intn(3) == 0 {
		root.Axis = xpath.Child
	}
	return root
}

func TestExistsAgainstNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	dict := xmltree.NewDict()
	for trial := 0; trial < 500; trial++ {
		doc := randomDoc(rng, 4)
		buf := xmltree.EncodeBinary(doc, dict)
		cur := xmltree.Cursor{Buf: buf, Dict: dict}
		qt := randomQuery(rng, 3)
		q, err := Compile(qt, dict)
		if err != nil {
			t.Fatal(err)
		}
		got := q.Exists(cur, 0)
		want := naiveExists(cur, qt)
		if got != want {
			t.Fatalf("trial %d: Exists=%v naive=%v\ndoc: %s\nquery: %s",
				trial, got, want, doc, qt)
		}
		// Outputs must be non-empty exactly when a match exists and the
		// output node is the query root... the output marker may be
		// anywhere, so check consistency only when root is the output.
		if qt.Output || !hasOutput(qt) {
			markRootOutput(qt)
			q2, err := Compile(qt, dict)
			if err != nil {
				t.Fatal(err)
			}
			outs := q2.Outputs(cur, 0)
			if (len(outs) > 0) != want {
				t.Fatalf("trial %d: outputs=%d but exists=%v", trial, len(outs), want)
			}
		}
	}
}

func hasOutput(q *xpath.QNode) bool {
	found := false
	q.Walk(func(n *xpath.QNode) {
		if n.Output {
			found = true
		}
	})
	return found
}

func markRootOutput(q *xpath.QNode) {
	q.Walk(func(n *xpath.QNode) { n.Output = false })
	q.Output = true
}
