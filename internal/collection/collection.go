// Package collection promotes the one-DB-per-process fix engine into a
// sharded, multi-tenant serving layer: a named collection is a set of
// shards, each an independent fix.DB with its own FIX index, ingest WAL
// and generation chain. Documents are routed to shards by the hash of
// their root label, so every document with the same root lands in the
// same shard; queries whose first step pins the root label probe only
// that shard, and everything else scatter-gathers across all shards in
// parallel with per-shard deadlines and an order-stable merge.
//
// The design instantiates the paper's cost model (FIX §6): total query
// cost is the probe cost over the B-tree plus the refinement cost over
// the candidates, and both terms decompose over disjoint document
// partitions — a shard's probe scans a B-tree covering only its own
// documents, and refinement I/O touches only its own heap. Partitioning
// by root label additionally bounds per-probe work the way the paper's
// root-label key prefix does inside a single tree: a shard's tree only
// holds entries whose root labels hash to it, so the eigenvalue range
// scan never visits entries a root-label-pinned query could not match.
//
// This package is deliberately *above* the public fix API (the fixvet
// depcheck service-layer exemption): it composes whole databases and
// adds distribution concerns — routing, fan-out, partial results,
// background maintenance — without reaching into engine internals.
package collection

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/fix-index/fix/fix"
	"github.com/fix-index/fix/internal/obs"
	"github.com/fix-index/fix/internal/par"
)

// ManifestName is the file that marks a directory as a collection and
// records its immutable spec.
const ManifestName = "collection.json"

// ErrNoManifest reports that a directory holds no collection manifest.
var ErrNoManifest = errors.New("collection: no collection.json manifest")

// Spec is the persisted shape of a collection: everything that must
// survive a restart and cannot change after creation (resharding is a
// rebuild-the-world operation, out of scope here). The index build
// options are per-shard; runtime tuning (deadlines, queue depths) lives
// in Options and comes from server flags at open time.
type Spec struct {
	// Name is the collection's registry key; it doubles as the directory
	// name, so it is restricted to [A-Za-z0-9_-], max 64 bytes.
	Name string `json:"name"`
	// Shards is the fixed shard count. Documents are placed by
	// hash(root label) mod Shards.
	Shards int `json:"shards"`
	// Weight is the per-tenant admission weight: servers charge each of
	// this collection's requests Weight units at the shared admission
	// gate, so a heavy tenant can be made to consume its capacity share
	// faster. 0 means 1.
	Weight int `json:"weight"`
	// DepthLimit, Values and Workers are the fix.IndexOptions subset the
	// shards build their indexes with.
	DepthLimit int  `json:"depth_limit,omitempty"`
	Values     bool `json:"values,omitempty"`
	Workers    int  `json:"workers,omitempty"`
}

// normalize fills defaults and validates the spec.
func (s *Spec) normalize() error {
	if err := ValidateName(s.Name); err != nil {
		return err
	}
	if s.Shards <= 0 {
		s.Shards = 1
	}
	if s.Shards > MaxShards {
		return fmt.Errorf("collection: %d shards exceeds the maximum %d", s.Shards, MaxShards)
	}
	if s.Weight <= 0 {
		s.Weight = 1
	}
	return nil
}

// MaxShards bounds a collection's shard count: shard IDs live in the
// high half of a 64-bit global document ID, and fan-out beyond a few
// dozen shards per process costs more in scatter overhead than the
// partitioned probes save.
const MaxShards = 256

// ValidateName enforces the collection-name alphabet: 1–64 bytes of
// [A-Za-z0-9_-]. Names become directory components and URL path
// segments, so nothing richer is allowed.
func ValidateName(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("collection: name must be 1-64 characters")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return fmt.Errorf("collection: name %q contains %q; allowed are letters, digits, '_' and '-'", name, c)
		}
	}
	return nil
}

// Options is the runtime (non-persisted) tuning of an open collection:
// query governance, ingest batching, and the slow-query sink. The zero
// value imposes no limits and uses the fix ingest defaults.
type Options struct {
	// ShardTimeout is the per-shard query deadline: each shard's probe +
	// refinement runs under its own context.WithTimeout of this length,
	// independent of its siblings (shards run in parallel, so the
	// collection-level wall time is the slowest shard, not the sum). A
	// shard that misses it is reported in the result's shard trace and
	// the query returns partial results. 0 disables the per-shard
	// deadline (the request context still applies).
	ShardTimeout time.Duration
	// MaxRefineNodes, MaxCandidates and MaxResults are per-shard work
	// budgets, passed through as fix.Limits.
	MaxRefineNodes int64
	MaxCandidates  int
	MaxResults     int
	// Ingest tunes each shard's group-commit ingester.
	Ingest fix.IngestConfig
	// SlowQueryThreshold and OnSlowQuery install a per-shard slow-query
	// log; traces delivered to OnSlowQuery carry the collection name and
	// shard ID, so one sink can attribute hot shards across collections.
	SlowQueryThreshold time.Duration
	OnSlowQuery        func(fix.QueryTrace)
}

// limits converts the options into per-shard query limits.
func (o Options) limits() fix.Limits {
	return fix.Limits{
		Timeout:        o.ShardTimeout,
		MaxRefineNodes: o.MaxRefineNodes,
		MaxCandidates:  o.MaxCandidates,
		MaxResults:     o.MaxResults,
	}
}

// Shard is one partition of a collection: an independent fix.DB plus
// the group-commit ingester feeding it. Both are owned by the
// Collection; tests may reach through DB for fault injection, servers
// should not.
type Shard struct {
	// ID is the shard's zero-based index; it is the high half of every
	// global document ID the shard issues. // immutable after publish
	ID int
	// DB is the shard's database. // immutable after publish
	DB *fix.DB
	// Ing is the shard's ingester. // immutable after publish
	Ing *fix.Ingester
}

// Collection is a set of shards serving one named document corpus. All
// methods are safe for concurrent use; queries are lock-free end to end
// (each shard query pins a generation), and ingest serializes only
// inside each shard's group committer.
type Collection struct {
	spec   Spec
	dir    string
	opts   Options
	shards []*Shard

	// testShardStall, when set by tests, runs at the start of every
	// per-shard query — the seam that makes "one shard past its
	// deadline" deterministic.
	testShardStall func(shard int)
}

// GlobalID packs a shard ID and a shard-local record number into the
// collection-wide document ID: shard in the high 32 bits, record in the
// low 32. IDs are what /c/{name}/ingest returns and what deletes take.
func GlobalID(shard int, rec uint32) uint64 {
	return uint64(shard)<<32 | uint64(rec)
}

// SplitID unpacks a global document ID into shard and record.
func SplitID(id uint64) (shard int, rec uint32) {
	return int(id >> 32), uint32(id)
}

// Create creates a new collection under dir (the collection's own
// directory, typically <root>/<name>): the manifest, one subdirectory
// per shard, and an empty index per shard so streaming ingest maintains
// indexes incrementally from the first document. The directory must not
// already hold a collection.
func Create(ctx context.Context, dir string, spec Spec, opts Options) (*Collection, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return nil, fmt.Errorf("collection: %s already holds a collection", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Collection{spec: spec, dir: dir, opts: opts}
	for i := 0; i < spec.Shards; i++ {
		db, err := fix.Create(c.shardDir(i))
		if err != nil {
			c.closeShards()
			return nil, fmt.Errorf("collection: creating shard %d: %w", i, err)
		}
		if err := db.BuildIndexCtx(ctx, spec.indexOptions()); err != nil {
			_ = db.Close()
			c.closeShards()
			return nil, fmt.Errorf("collection: building shard %d index: %w", i, err)
		}
		if err := db.Save(); err != nil {
			_ = db.Close()
			c.closeShards()
			return nil, fmt.Errorf("collection: saving shard %d: %w", i, err)
		}
		c.addShard(i, db)
	}
	if err := writeManifest(dir, spec); err != nil {
		c.closeShards()
		return nil, err
	}
	return c, nil
}

// Open opens an existing collection directory, replaying each shard's
// ingest WAL (fix.Open semantics) so every acknowledged write is
// visible.
func Open(dir string, opts Options) (*Collection, error) {
	spec, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	c := &Collection{spec: spec, dir: dir, opts: opts}
	for i := 0; i < spec.Shards; i++ {
		db, err := fix.Open(c.shardDir(i))
		if err != nil {
			c.closeShards()
			return nil, fmt.Errorf("collection: opening shard %d: %w", i, err)
		}
		c.addShard(i, db)
	}
	return c, nil
}

// addShard wires one opened DB into the collection: per-shard options
// (slow-query attribution) and the shard's ingester.
func (c *Collection) addShard(id int, db *fix.DB) {
	dbOpts := fix.Options{
		Limits: c.opts.limits(),
	}
	if c.opts.SlowQueryThreshold > 0 && c.opts.OnSlowQuery != nil {
		name, sink := c.spec.Name, c.opts.OnSlowQuery
		dbOpts.SlowQueryThreshold = c.opts.SlowQueryThreshold
		dbOpts.OnSlowQuery = func(t fix.QueryTrace) {
			t.Collection = name
			t.Shard = id
			sink(t)
		}
	}
	db.SetOptions(dbOpts)
	c.shards = append(c.shards, &Shard{ID: id, DB: db, Ing: db.NewIngester(c.opts.Ingest)})
}

// indexOptions maps the persisted spec onto the fix build options.
func (s Spec) indexOptions() fix.IndexOptions {
	return fix.IndexOptions{DepthLimit: s.DepthLimit, Values: s.Values, Workers: s.Workers}
}

// shardDir returns shard i's directory.
func (c *Collection) shardDir(i int) string {
	return ShardDir(c.dir, i)
}

// ShardDir returns shard i's directory under a collection root. Tools
// that walk shards without opening the whole collection (fixindex
// verify/repair) use it to address individual shard databases.
func ShardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// writeManifest writes collection.json atomically (temp + fsync +
// rename), the same crash-safety bar as every other metadata file.
func writeManifest(dir string, spec Spec) error {
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, ManifestName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadManifest reads and validates a collection manifest from dir. A
// directory without one returns ErrNoManifest (test with errors.Is) so
// callers can distinguish "not a collection" from a broken manifest.
func ReadManifest(dir string) (Spec, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return Spec{}, fmt.Errorf("%w: %s", ErrNoManifest, dir)
		}
		return Spec{}, err
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return Spec{}, fmt.Errorf("collection: reading manifest in %s: %w", dir, err)
	}
	if err := spec.normalize(); err != nil {
		return Spec{}, fmt.Errorf("collection: manifest in %s: %w", dir, err)
	}
	return spec, nil
}

// Name returns the collection's registry key.
func (c *Collection) Name() string { return c.spec.Name }

// Spec returns the persisted spec (post-normalization).
func (c *Collection) Spec() Spec { return c.spec }

// NumShards returns the shard count.
func (c *Collection) NumShards() int { return len(c.shards) }

// Shard returns shard i; it panics on an out-of-range index (shard IDs
// come from SplitID or iteration, both bounded).
func (c *Collection) Shard(i int) *Shard { return c.shards[i] }

// Weight returns the per-tenant admission weight (≥ 1).
func (c *Collection) Weight() int { return c.spec.Weight }

// NumDocuments sums live (non-tombstoned) documents across shards.
func (c *Collection) NumDocuments() int {
	n := 0
	for _, s := range c.shards {
		n += s.DB.NumDocuments() - s.DB.DeletedDocuments()
	}
	return n
}

// AddBatch routes each document to its shard by root label and commits
// the per-shard batches in parallel through each shard's group-commit
// ingester. The returned global IDs are in argument order. The first
// routing or commit error fails the call; documents in other shards'
// batches may still have committed (cross-shard batches are not a
// distributed transaction — each shard's batch is atomic on its own).
func (c *Collection) AddBatch(ctx context.Context, docs []string) ([]uint64, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	type slot struct {
		shard int
		pos   int // position within the shard's batch
	}
	slots := make([]slot, len(docs))
	perShard := make([][]string, len(c.shards))
	for i, doc := range docs {
		label, err := fix.RootLabelString(doc)
		if err != nil {
			return nil, fmt.Errorf("collection: document %d: %w", i, err)
		}
		sh := ShardForLabel(label, len(c.shards))
		slots[i] = slot{shard: sh, pos: len(perShard[sh])}
		perShard[sh] = append(perShard[sh], doc)
	}
	recs := make([][]uint32, len(c.shards))
	err := par.Do(ctx, len(c.shards), len(c.shards), func(i int) error {
		if len(perShard[i]) == 0 {
			return nil
		}
		ids, err := c.shards[i].Ing.AddBatch(ctx, perShard[i])
		if err != nil {
			return fmt.Errorf("collection: shard %d: %w", i, err)
		}
		recs[i] = ids
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(docs))
	ndocs := 0
	for i, sl := range slots {
		out[i] = GlobalID(sl.shard, recs[sl.shard][sl.pos])
		ndocs++
	}
	obs.Default().Collection(c.spec.Name).ObserveCollectionIngest(ndocs, 0)
	return out, nil
}

// Add routes one document; see AddBatch.
func (c *Collection) Add(ctx context.Context, doc string) (uint64, error) {
	ids, err := c.AddBatch(ctx, []string{doc})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// Delete durably deletes the document with the given global ID through
// its shard's ingester. An ID naming a shard the collection does not
// have, or a record the shard never assigned, returns an error wrapping
// fix.ErrUnknownDocument.
func (c *Collection) Delete(ctx context.Context, id uint64) error {
	shard, rec := SplitID(id)
	if shard < 0 || shard >= len(c.shards) {
		return fmt.Errorf("%w: id %d names shard %d of %d", fix.ErrUnknownDocument, id, shard, len(c.shards))
	}
	if err := c.shards[shard].Ing.Delete(ctx, rec); err != nil {
		return fmt.Errorf("collection: shard %d: %w", shard, err)
	}
	obs.Default().Collection(c.spec.Name).ObserveCollectionIngest(0, 1)
	return nil
}

// Document fetches a stored document by global ID.
func (c *Collection) Document(id uint64) (string, error) {
	shard, rec := SplitID(id)
	if shard < 0 || shard >= len(c.shards) {
		return "", fmt.Errorf("%w: id %d names shard %d of %d", fix.ErrUnknownDocument, id, shard, len(c.shards))
	}
	return c.shards[shard].DB.Document(rec)
}

// ValidateDocument checks a document parses under the collection's
// parse limits without storing it — servers call it for every add
// before queueing anything, so a malformed document in a multi-op
// request cannot leave earlier shard batches committed. Limits are
// uniform across shards, so shard 0 answers for all.
func (c *Collection) ValidateDocument(doc string) error {
	return c.shards[0].DB.ValidateDocument(doc)
}

// Flush blocks until every shard's queued ingest operations have
// committed.
func (c *Collection) Flush(ctx context.Context) error {
	return par.Do(ctx, len(c.shards), len(c.shards), func(i int) error {
		return c.shards[i].Ing.Flush(ctx)
	})
}

// Save absorbs each shard's ingest WAL into its base commit. Shards
// save independently; the first error is returned but the remaining
// shards still save (a full disk on one shard must not grow every other
// shard's replay window).
func (c *Collection) Save() error {
	var first error
	for _, s := range c.shards {
		if err := s.DB.Save(); err != nil && first == nil {
			first = fmt.Errorf("collection: saving shard %d: %w", s.ID, err)
		}
	}
	return first
}

// CheckpointCtx absorbs each dirty shard's ingest WAL into its base
// commit through the chunked checkpoint (fix.DB.CheckpointCtx), and
// skips shards whose WAL is empty — every collection write flows
// through a shard's ingester into its WAL, so an empty WAL means
// nothing changed since the last checkpoint and the fsync cascade
// would be pure overhead. It returns how many shards checkpointed and
// how many were skipped clean; like Save, the first error is returned
// but the remaining shards still checkpoint.
func (c *Collection) CheckpointCtx(ctx context.Context) (done, skipped int, err error) {
	for _, s := range c.shards {
		if s.DB.IngestLag() == 0 {
			skipped++
			continue
		}
		if cerr := s.DB.CheckpointCtx(ctx); cerr != nil {
			if err == nil {
				err = fmt.Errorf("collection: checkpointing shard %d: %w", s.ID, cerr)
			}
			continue
		}
		done++
	}
	return done, skipped, err
}

// Rebuild rebuilds every shard whose index reports degraded health, in
// shard order. Queries keep flowing during a rebuild: shards publish
// generations, so readers pin the old image until the new one lands.
func (c *Collection) Rebuild(ctx context.Context) error {
	for _, s := range c.shards {
		if s.DB.IndexHealth() == nil {
			continue
		}
		if err := s.DB.RebuildIndexCtx(ctx); err != nil {
			return fmt.Errorf("collection: rebuilding shard %d: %w", s.ID, err)
		}
	}
	return nil
}

// Close stops the ingesters (draining queued operations) and closes
// every shard. It does not Save; acknowledged-but-unsaved operations
// stay protected by each shard's WAL.
func (c *Collection) Close() error {
	var first error
	for _, s := range c.shards {
		if err := s.Ing.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range c.shards {
		if err := s.DB.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// closeShards releases partially constructed shards on a failed
// Create/Open.
func (c *Collection) closeShards() {
	for _, s := range c.shards {
		_ = s.Ing.Close()
		_ = s.DB.Close()
	}
	c.shards = nil
}

// ShardHealth is one shard's row in Health.
type ShardHealth struct {
	Shard       int    `json:"shard"`
	Generation  uint64 `json:"generation"`
	Documents   int    `json:"documents"`
	Deleted     int    `json:"deleted"`
	Entries     int    `json:"index_entries"`
	IngestLag   int    `json:"ingest_lag"`
	IngestQueue int    `json:"ingest_queue"`
	Healthy     bool   `json:"healthy"`
	Cause       string `json:"cause,omitempty"`
}

// Health reports per-shard health and generation. A degraded shard
// still answers exactly (scan fallback); Healthy here means "at full
// speed", matching fixserve's /healthz convention.
func (c *Collection) Health() []ShardHealth {
	out := make([]ShardHealth, len(c.shards))
	for i, s := range c.shards {
		h := ShardHealth{
			Shard:       s.ID,
			Generation:  s.DB.GenerationID(),
			Documents:   s.DB.NumDocuments(),
			Deleted:     s.DB.DeletedDocuments(),
			Entries:     s.DB.IndexEntries(),
			IngestLag:   s.DB.IngestLag(),
			IngestQueue: s.Ing.QueueLen(),
			Healthy:     true,
		}
		if err := s.DB.IndexHealth(); err != nil {
			h.Healthy = false
			h.Cause = err.Error()
		}
		out[i] = h
	}
	return out
}

// Stats is the /c/{name}/stats payload: the spec plus aggregated and
// per-shard counts.
type Stats struct {
	Spec      Spec          `json:"spec"`
	Documents int           `json:"documents"`
	Deleted   int           `json:"deleted"`
	Entries   int           `json:"index_entries"`
	IngestLag int           `json:"ingest_lag"`
	Shards    []ShardHealth `json:"shards"`
}

// Stats aggregates Health into the stats payload.
func (c *Collection) Stats() Stats {
	st := Stats{Spec: c.spec, Shards: c.Health()}
	for _, h := range st.Shards {
		st.Documents += h.Documents - h.Deleted
		st.Deleted += h.Deleted
		st.Entries += h.Entries
		st.IngestLag += h.IngestLag
	}
	return st
}
