package collection

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/fix-index/fix/fix"
)

// TestShardDeadlinePartialResult stalls one shard past the per-shard
// deadline: the query must return the surviving shards' results marked
// Partial, identify the late shard as TimedOut, and keep the others'
// counts exact.
func TestShardDeadlinePartialResult(t *testing.T) {
	const nshards = 3
	c := newTestCollection(t, Spec{Name: "late", Shards: nshards},
		Options{ShardTimeout: 30 * time.Millisecond})
	ctx := context.Background()

	var docs []string
	for sh := 0; sh < nshards; sh++ {
		l := labelFor(t, sh, nshards)
		for i := 0; i < 4; i++ {
			docs = append(docs, doc(l, 2))
		}
	}
	if _, err := c.AddBatch(ctx, docs); err != nil {
		t.Fatal(err)
	}

	const late = 1
	c.testShardStall = func(shard int) {
		if shard == late {
			time.Sleep(150 * time.Millisecond)
		}
	}

	res, err := c.Query(ctx, "//item", QueryOpts{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("query with a stalled shard not flagged Partial")
	}
	for _, r := range res.Shards {
		if r.Shard == late {
			if !r.TimedOut {
				t.Errorf("late shard row = %+v, want TimedOut", r)
			}
			if r.Err == "" {
				t.Error("late shard row carries no error cause")
			}
			if r.Count != 0 {
				t.Errorf("late shard contributed %d results to a partial merge", r.Count)
			}
			continue
		}
		if r.TimedOut || r.Failed {
			t.Errorf("healthy shard %d row = %+v", r.Shard, r)
		}
		if r.Count != 4*2 {
			t.Errorf("healthy shard %d count = %d, want 8", r.Shard, r.Count)
		}
		if r.Trace == nil {
			t.Errorf("healthy shard %d returned no trace", r.Shard)
		} else if r.Trace.Collection != "late" || r.Trace.Shard != r.Shard {
			t.Errorf("shard %d trace attribution = %q/%d", r.Shard, r.Trace.Collection, r.Trace.Shard)
		}
	}
	if want := (nshards - 1) * 4 * 2; res.Count != want {
		t.Errorf("partial count = %d, want %d (surviving shards only)", res.Count, want)
	}

	// A targeted query avoiding the stalled shard is unaffected.
	l0 := labelFor(t, 0, nshards)
	res, err = c.Query(ctx, "/"+l0+"/item", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Count != 4*2 {
		t.Errorf("targeted query around the stall = %+v", res)
	}
}

// TestRequestContextCancelFailsWhole distinguishes the request context
// (its death fails the query) from per-shard deadlines (tolerated).
func TestRequestContextCancelFailsWhole(t *testing.T) {
	c := newTestCollection(t, Spec{Name: "cancel", Shards: 2}, Options{})
	if _, err := c.AddBatch(context.Background(), []string{doc(labelFor(t, 0, 2), 1)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.testShardStall = func(int) { cancel() }
	if _, err := c.Query(ctx, "//item", QueryOpts{}); err == nil {
		t.Fatal("query with canceled request context succeeded")
	}
}

// TestSlowQueryAttribution checks the slow-query sink receives traces
// stamped with collection and shard.
func TestSlowQueryAttribution(t *testing.T) {
	var mu sync.Mutex
	type hit struct {
		collection string
		shard      int
	}
	var hits []hit
	spec := Spec{Name: "slow", Shards: 2}
	c, err := Create(context.Background(), filepath.Join(t.TempDir(), "slow"), spec, Options{
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		OnSlowQuery: func(tr fix.QueryTrace) {
			mu.Lock()
			hits = append(hits, hit{tr.Collection, tr.Shard})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AddBatch(context.Background(), []string{doc(labelFor(t, 0, 2), 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), "//item", QueryOpts{}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(hits) == 0 {
		t.Fatal("no slow-query traces delivered")
	}
	seen := map[int]bool{}
	for _, h := range hits {
		if h.collection != "slow" {
			t.Errorf("trace attributed to collection %q, want slow", h.collection)
		}
		seen[h.shard] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("slow-query shards seen = %v, want both 0 and 1", seen)
	}
}

// TestConcurrentQueryIngestRebuild is the -race stress: queries
// (targeted and scattered), batched ingest, rebuilds and saves all run
// concurrently against one collection; nothing may error and final
// counts must reconcile.
func TestConcurrentQueryIngestRebuild(t *testing.T) {
	const nshards = 4
	c := newTestCollection(t, Spec{Name: "stress", Shards: nshards}, Options{})
	ctx := context.Background()

	labels := make([]string, nshards)
	for sh := 0; sh < nshards; sh++ {
		labels[sh] = labelFor(t, sh, nshards)
	}
	// Seed so early queries have data.
	var seed []string
	for _, l := range labels {
		seed = append(seed, doc(l, 1))
	}
	if _, err := c.AddBatch(ctx, seed); err != nil {
		t.Fatal(err)
	}

	const (
		writers       = 2
		batchesPerW   = 15
		docsPerBatch  = 4
		queriesPerGor = 40
	)
	var wg sync.WaitGroup
	errc := make(chan error, 16)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesPerW; b++ {
				batch := make([]string, docsPerBatch)
				for i := range batch {
					batch[i] = doc(labels[(w+b+i)%nshards], 1)
				}
				if _, err := c.AddBatch(ctx, batch); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < queriesPerGor; i++ {
				expr := "//item"
				if i%2 == 0 {
					expr = "/" + labels[i%nshards] + "/item"
				}
				res, err := c.Query(ctx, expr, QueryOpts{Trace: i%4 == 0})
				if err != nil {
					errc <- fmt.Errorf("querier %d: %w", q, err)
					return
				}
				if res.Partial {
					errc <- fmt.Errorf("querier %d: spurious partial: %+v", q, res)
					return
				}
			}
		}(q)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := c.Rebuild(ctx); err != nil {
				errc <- fmt.Errorf("rebuild: %w", err)
				return
			}
			if err := c.Save(); err != nil {
				errc <- fmt.Errorf("save: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	want := nshards + writers*batchesPerW*docsPerBatch
	res, err := c.Query(ctx, "//item", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Errorf("final count = %d, want %d", res.Count, want)
	}
	if got := c.NumDocuments(); got != want {
		t.Errorf("NumDocuments = %d, want %d", got, want)
	}
}
