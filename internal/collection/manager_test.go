package collection

import (
	"context"
	"testing"
	"time"
)

// TestManagerSkipsCleanShards checks the manager's dirty tracking: a
// shard with an empty WAL is skipped (counted, not checkpointed), so a
// collection receiving no writes costs zero fsyncs per tick.
func TestManagerSkipsCleanShards(t *testing.T) {
	root := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc, err := OpenService(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	col, err := svc.Create(ctx, "skippy", Spec{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.AddBatch(ctx, []string{doc(labelFor(t, 0, 2), 1)}); err != nil {
		t.Fatal(err)
	}

	m := StartManager(ctx, svc, 5*time.Millisecond, nil)
	deadline := time.Now().Add(5 * time.Second)
	for col.Stats().IngestLag != 0 {
		if time.Now().After(deadline) {
			t.Fatal("manager never absorbed the dirty shard's WAL")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := m.Stats(); st.Checkpoints < 1 {
		t.Fatalf("stats after absorption: %+v, want >= 1 checkpoint", st)
	}

	// Everything is clean now: ticks keep running, shards keep being
	// skipped, and no further checkpoints happen.
	base := m.Stats()
	time.Sleep(60 * time.Millisecond)
	st := m.Stats()
	if st.Checkpoints != base.Checkpoints {
		t.Errorf("checkpointed clean shards (%d -> %d)", base.Checkpoints, st.Checkpoints)
	}
	if st.Ticks <= base.Ticks {
		t.Errorf("manager stopped ticking (%d -> %d)", base.Ticks, st.Ticks)
	}
	if st.Skipped <= base.Skipped {
		t.Errorf("clean shards not counted as skipped (%d -> %d)", base.Skipped, st.Skipped)
	}

	cancel()
	m.Wait()
}
