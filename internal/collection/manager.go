// The Manager is the collections' background maintenance loop — the
// serving-layer counterpart of fixserve's single-DB save ticker. Every
// interval it saves all collections (absorbing each shard's ingest WAL
// into its base commit, bounding replay time) and rebuilds any shard
// whose index went degraded. Both run off the request path: saves and
// rebuilds publish new generations, and readers keep their pinned ones,
// so maintenance never blocks a query.

package collection

import (
	"context"
	"time"
)

// Manager periodically maintains every collection of a Service.
type Manager struct {
	svc      *Service
	interval time.Duration
	logf     func(format string, args ...any)
	done     chan struct{}
}

// StartManager starts the maintenance loop: every interval, save all
// collections and rebuild degraded shards. It stops when ctx is
// canceled; Wait blocks until the final tick (if any) finishes. logf
// receives one line per failed maintenance action (nil discards).
// interval <= 0 starts a no-op manager, so callers need no conditional.
func StartManager(ctx context.Context, svc *Service, interval time.Duration, logf func(format string, args ...any)) *Manager {
	m := &Manager{svc: svc, interval: interval, logf: logf, done: make(chan struct{})}
	if logf == nil {
		m.logf = func(string, ...any) {}
	}
	go m.run(ctx)
	return m
}

// Wait blocks until the loop has exited (after ctx cancellation).
func (m *Manager) Wait() { <-m.done }

func (m *Manager) run(ctx context.Context) {
	defer close(m.done)
	if m.interval <= 0 {
		<-ctx.Done()
		return
	}
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.tick(ctx)
		}
	}
}

// tick runs one maintenance pass. Errors are logged and swallowed: a
// full disk this tick must not stop the next tick from trying again.
func (m *Manager) tick(ctx context.Context) {
	err := m.svc.each(func(c *Collection) error {
		if err := c.Save(); err != nil {
			m.logf("collection %s: save: %v", c.Name(), err)
		}
		if err := c.Rebuild(ctx); err != nil {
			m.logf("collection %s: rebuild: %v", c.Name(), err)
		}
		return nil
	})
	if err != nil {
		m.logf("collection maintenance: %v", err)
	}
}
