// The Manager is the collections' background maintenance loop — the
// serving-layer counterpart of fixserve's single-DB Maintainer. Every
// interval it checkpoints the dirty shards of all collections
// (absorbing each shard's ingest WAL into its base commit, bounding
// replay time) and rebuilds any shard whose index went degraded. Shards
// whose WAL is empty are skipped — a collection receiving no writes
// costs zero fsyncs per tick. Both checkpoints and rebuilds run off the
// request path: they publish new generations, and readers keep their
// pinned ones, so maintenance never blocks a query.

package collection

import (
	"context"
	"sync/atomic"
	"time"
)

// Manager periodically maintains every collection of a Service.
type Manager struct {
	svc      *Service
	interval time.Duration
	logf     func(format string, args ...any)
	done     chan struct{}

	ticks       atomic.Int64
	checkpoints atomic.Int64
	skipped     atomic.Int64
}

// ManagerStats is a point-in-time snapshot of the maintenance loop's
// activity: ticks run, shard checkpoints performed, and shard
// checkpoints skipped because the shard's WAL was empty.
type ManagerStats struct {
	Ticks       int64 `json:"ticks"`
	Checkpoints int64 `json:"checkpoints"`
	Skipped     int64 `json:"skipped_clean"`
}

// StartManager starts the maintenance loop: every interval, checkpoint
// all dirty shards and rebuild degraded ones. It stops when ctx is
// canceled; Wait blocks until the final tick (if any) finishes. logf
// receives one line per failed maintenance action (nil discards).
// interval <= 0 starts a no-op manager, so callers need no conditional.
func StartManager(ctx context.Context, svc *Service, interval time.Duration, logf func(format string, args ...any)) *Manager {
	m := &Manager{svc: svc, interval: interval, logf: logf, done: make(chan struct{})}
	if logf == nil {
		m.logf = func(string, ...any) {}
	}
	go m.run(ctx)
	return m
}

// Wait blocks until the loop has exited (after ctx cancellation).
func (m *Manager) Wait() { <-m.done }

// Stats snapshots the loop's counters.
func (m *Manager) Stats() ManagerStats {
	return ManagerStats{
		Ticks:       m.ticks.Load(),
		Checkpoints: m.checkpoints.Load(),
		Skipped:     m.skipped.Load(),
	}
}

func (m *Manager) run(ctx context.Context) {
	defer close(m.done)
	if m.interval <= 0 {
		<-ctx.Done()
		return
	}
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.tick(ctx)
		}
	}
}

// tick runs one maintenance pass. Errors are logged and swallowed: a
// full disk this tick must not stop the next tick from trying again.
func (m *Manager) tick(ctx context.Context) {
	m.ticks.Add(1)
	err := m.svc.each(func(c *Collection) error {
		done, skipped, err := c.CheckpointCtx(ctx)
		m.checkpoints.Add(int64(done))
		m.skipped.Add(int64(skipped))
		if err != nil {
			m.logf("collection %s: checkpoint: %v", c.Name(), err)
		}
		if err := c.Rebuild(ctx); err != nil {
			m.logf("collection %s: rebuild: %v", c.Name(), err)
		}
		return nil
	})
	if err != nil {
		m.logf("collection maintenance: %v", err)
	}
}
