// Shard routing: documents are placed, and root-pinned queries
// targeted, by the FNV-1a hash of the root element label. The rule
// mirrors the paper's root-label key prefix (FIX §5.1): because every
// index entry is keyed by its document's root label first, a query
// whose first step names the root can confine its probe — here, to one
// shard; inside the shard, to one key range.

package collection

import (
	"hash/fnv"

	"github.com/fix-index/fix/internal/xpath"
)

// ShardForLabel returns the shard a document with the given root label
// belongs to: fnv1a32(label) mod n. The mapping is a pure function of
// the label and the shard count, so routing needs no directory and any
// process with the manifest routes identically.
func ShardForLabel(label string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(label))
	return int(h.Sum32() % uint32(n))
}

// ScatterAll is the queryTarget result meaning "probe every shard".
const ScatterAll = -1

// queryTarget decides the fan-out of a query: a path whose first step
// is the child axis (/label/...) can only match documents rooted at
// label, all of which live in one shard — return it. A leading
// descendant axis (//label/...) matches at any depth in any document,
// so it must scatter. A parse failure also scatters: the shards will
// reject the expression with the real fix.ErrBadQuery, keeping the
// router's grammar knowledge advisory rather than load-bearing.
func queryTarget(expr string, nshards int) int {
	if nshards <= 1 {
		return 0
	}
	p, err := xpath.Parse(expr)
	if err != nil || len(p.Steps) == 0 {
		return ScatterAll
	}
	if p.Steps[0].Axis != xpath.Child {
		return ScatterAll
	}
	return ShardForLabel(p.Steps[0].Name, nshards)
}
