package collection

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestServiceLifecycle(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()
	svc, err := OpenService(root, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := svc.Create(ctx, "books", Spec{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Create(ctx, "films", Spec{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Create(ctx, "books", Spec{}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create = %v, want ErrExists", err)
	}
	if _, err := svc.Create(ctx, "no/slashes", Spec{}); err == nil {
		t.Error("invalid name accepted")
	}
	if got := svc.Names(); len(got) != 2 || got[0] != "books" || got[1] != "films" {
		t.Errorf("Names = %v, want [books films]", got)
	}

	col, release, err := svc.Acquire("books")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.AddBatch(ctx, []string{doc(labelFor(t, 0, 2), 1)}); err != nil {
		t.Fatal(err)
	}
	release()
	if _, _, err := svc.Acquire("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Acquire(nope) = %v, want ErrNotFound", err)
	}

	// Reopen: collections come back from disk, WALs replayed.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	svc, err = OpenService(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.Names(); len(got) != 2 {
		t.Fatalf("Names after reopen = %v", got)
	}
	col, release, err = svc.Acquire("books")
	if err != nil {
		t.Fatal(err)
	}
	res, err := col.Query(ctx, "//item", QueryOpts{})
	release()
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Errorf("books count after reopen = %d, want 1", res.Count)
	}

	// Drop removes the directory and the registration.
	if err := svc.Drop("films"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "films")); !os.IsNotExist(err) {
		t.Errorf("films directory survives drop: %v", err)
	}
	if got := svc.Names(); len(got) != 1 || got[0] != "books" {
		t.Errorf("Names after drop = %v", got)
	}
	if err := svc.Drop("films"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double drop = %v, want ErrNotFound", err)
	}
}

// TestDropWaitsForReferences pins a collection with Acquire and checks
// Drop blocks until release, instead of closing it mid-request.
func TestDropWaitsForReferences(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()
	svc, err := OpenService(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Create(ctx, "pinned", Spec{Shards: 1}); err != nil {
		t.Fatal(err)
	}
	col, release, err := svc.Acquire("pinned")
	if err != nil {
		t.Fatal(err)
	}

	dropped := make(chan error, 1)
	go func() { dropped <- svc.Drop("pinned") }()

	select {
	case err := <-dropped:
		t.Fatalf("Drop returned %v while a reference was held", err)
	case <-time.After(50 * time.Millisecond):
	}
	// The pinned collection still works while Drop waits.
	if _, err := col.Query(ctx, "//x", QueryOpts{}); err != nil {
		t.Errorf("query on pinned collection during drop: %v", err)
	}
	release()
	if err := <-dropped; err != nil {
		t.Fatalf("Drop after release: %v", err)
	}
}

// TestServiceIgnoresStrayDirs checks OpenService skips subdirectories
// without a manifest instead of failing or inventing collections.
func TestServiceIgnoresStrayDirs(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "not-a-collection"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc, err := OpenService(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.Names(); len(got) != 0 {
		t.Errorf("Names over stray dirs = %v, want none", got)
	}
}

// TestManagerSavesAndRebuilds runs the background manager at a short
// interval and checks it absorbs ingest WALs (lag returns to zero) and
// repairs a shard forced degraded.
func TestManagerSavesAndRebuilds(t *testing.T) {
	root := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc, err := OpenService(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	col, err := svc.Create(ctx, "managed", Spec{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.AddBatch(ctx, []string{doc(labelFor(t, 0, 2), 1), doc(labelFor(t, 1, 2), 1)}); err != nil {
		t.Fatal(err)
	}
	if lag := col.Stats().IngestLag; lag == 0 {
		t.Fatal("no ingest lag before the manager ran; test can't observe a save")
	}

	var mu sync.Mutex
	var logged []string
	m := StartManager(ctx, svc, 10*time.Millisecond, func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, format)
		mu.Unlock()
	})

	deadline := time.Now().Add(5 * time.Second)
	for col.Stats().IngestLag != 0 {
		if time.Now().After(deadline) {
			t.Fatal("manager never absorbed the ingest WAL")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	m.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 0 {
		t.Errorf("manager logged errors: %v", logged)
	}
}
