// The Service is the named-collection registry: a root directory whose
// subdirectories each hold one collection (marked by collection.json).
// It owns collection lifecycle — create, open-on-start, drop — and
// hands out refcounted handles so a drop cannot tear a collection down
// under an in-flight request.

package collection

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrNotFound reports a request for a collection the service does not
// have.
var ErrNotFound = errors.New("collection: not found")

// ErrExists reports a create for a name already in use.
var ErrExists = errors.New("collection: already exists")

// ErrDropped reports an operation raced with Drop and lost.
var ErrDropped = errors.New("collection: dropped")

// Service is a registry of named collections under one root directory.
// All methods are safe for concurrent use.
type Service struct {
	root string
	opts Options

	// mu ranks below every fix.DB lock: it may be held while calling
	// into a DB (registry → engine), never the reverse.
	mu sync.Mutex // lockcheck: order 10
	// cols maps name → live handle. // guarded by mu
	cols map[string]*handle
}

// handle pairs a collection with the refcount that defers Drop until
// in-flight requests release it.
type handle struct {
	col *Collection
	// wg counts outstanding Acquire references. Drop waits on it after
	// unlinking the handle, so new references cannot arrive while it
	// waits.
	wg sync.WaitGroup
}

// OpenService opens every collection under root (creating root if
// needed): each subdirectory with a manifest is opened with the given
// runtime options, replaying its shards' WALs. Subdirectories without a
// manifest are ignored, so the root can host unrelated files. A shard
// that fails to open fails the whole service — serving with silently
// missing collections is worse than not starting.
func OpenService(root string, opts Options) (*Service, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	svc := &Service{root: root, opts: opts, cols: make(map[string]*handle)}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		col, err := Open(dir, opts)
		if err != nil {
			if errors.Is(err, ErrNoManifest) {
				continue
			}
			_ = svc.Close()
			return nil, fmt.Errorf("collection: opening %s: %w", e.Name(), err)
		}
		svc.cols[col.Name()] = &handle{col: col}
	}
	return svc, nil
}

// Create creates a new named collection and registers it. The spec's
// Name must match name (an empty spec Name is filled in).
func (s *Service) Create(ctx context.Context, name string, spec Spec) (*Collection, error) {
	if spec.Name == "" {
		spec.Name = name
	}
	if spec.Name != name {
		return nil, fmt.Errorf("collection: spec name %q does not match %q", spec.Name, name)
	}
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if _, ok := s.cols[name]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	// Reserve the name with a nil-collection handle so concurrent
	// creates of the same name fail fast while this one builds shards
	// outside the lock.
	h := &handle{}
	s.cols[name] = h
	s.mu.Unlock()

	col, err := Create(ctx, filepath.Join(s.root, name), spec, s.opts)
	s.mu.Lock()
	if err != nil {
		delete(s.cols, name)
		s.mu.Unlock()
		return nil, err
	}
	h.col = col
	s.mu.Unlock()
	return col, nil
}

// Acquire returns the named collection and a release func that must be
// called when the caller is done with it (typically deferred for the
// life of one request). Drop blocks until every acquired reference is
// released.
func (s *Service) Acquire(name string) (*Collection, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.cols[name]
	if !ok || h.col == nil {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	h.wg.Add(1)
	var once sync.Once
	return h.col, func() { once.Do(h.wg.Done) }, nil
}

// Names returns the registered collection names, sorted.
func (s *Service) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.cols))
	for name, h := range s.cols {
		if h.col != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Drop unregisters the named collection, waits for in-flight references
// to release, closes it and deletes its directory. The wait means Drop
// can block behind a slow query; the unlink happens first, so no new
// work can start on the collection while Drop waits.
func (s *Service) Drop(name string) error {
	s.mu.Lock()
	h, ok := s.cols[name]
	if !ok || h.col == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(s.cols, name)
	s.mu.Unlock()
	h.wg.Wait()
	if err := h.col.Close(); err != nil {
		return err
	}
	return os.RemoveAll(filepath.Join(s.root, name))
}

// each snapshots the live collections (sorted by name) and calls fn for
// each outside the lock, holding a reference across the call.
func (s *Service) each(fn func(*Collection) error) error {
	var first error
	for _, name := range s.Names() {
		col, release, err := s.Acquire(name)
		if err != nil {
			continue // dropped between Names and Acquire
		}
		if err := fn(col); err != nil && first == nil {
			first = err
		}
		release()
	}
	return first
}

// SaveAll saves every collection (WAL absorption on every shard); the
// first error is reported, the rest still save.
func (s *Service) SaveAll() error {
	return s.each(func(c *Collection) error { return c.Save() })
}

// Close closes every collection without saving (their WALs protect
// acknowledged writes). The service is unusable afterwards.
func (s *Service) Close() error {
	s.mu.Lock()
	cols := make([]*handle, 0, len(s.cols))
	for _, h := range s.cols {
		cols = append(cols, h)
	}
	s.cols = make(map[string]*handle)
	s.mu.Unlock()
	var first error
	for _, h := range cols {
		if h.col == nil {
			continue
		}
		h.wg.Wait()
		if err := h.col.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
