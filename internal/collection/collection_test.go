package collection

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/fix-index/fix/fix"
)

// labelFor returns a root label that routes to the wanted shard under
// the given shard count, so tests don't hard-code hash values.
func labelFor(t *testing.T, shard, nshards int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		l := fmt.Sprintf("lbl%d", i)
		if ShardForLabel(l, nshards) == shard {
			return l
		}
	}
	t.Fatalf("no label found for shard %d/%d", shard, nshards)
	return ""
}

// doc builds a tiny document rooted at label with n item children.
func doc(label string, n int) string {
	s := "<" + label + ">"
	for i := 0; i < n; i++ {
		s += "<item><name>x</name></item>"
	}
	return s + "</" + label + ">"
}

// newTestCollection creates a collection in a temp dir and registers
// cleanup.
func newTestCollection(t *testing.T, spec Spec, opts Options) *Collection {
	t.Helper()
	c, err := Create(context.Background(), filepath.Join(t.TempDir(), spec.Name), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestGlobalIDRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		shard int
		rec   uint32
	}{{0, 0}, {0, 7}, {3, 0}, {255, 1 << 31}, {17, 42}} {
		id := GlobalID(tc.shard, tc.rec)
		s, r := SplitID(id)
		if s != tc.shard || r != tc.rec {
			t.Errorf("SplitID(GlobalID(%d, %d)) = (%d, %d)", tc.shard, tc.rec, s, r)
		}
	}
}

func TestValidateName(t *testing.T) {
	for _, ok := range []string{"a", "books", "tenant-7", "A_b-9"} {
		if err := ValidateName(ok); err != nil {
			t.Errorf("ValidateName(%q) = %v", ok, err)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "a/b", "a b", "a.b", "ü", string(long)} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("ValidateName(%q) passed", bad)
		}
	}
}

// TestRoutingAndMergeOrder verifies document placement follows
// ShardForLabel, targeted queries confine to one shard, scattered
// queries cover all shards in ascending order, and global IDs name the
// right shard.
func TestRoutingAndMergeOrder(t *testing.T) {
	const nshards = 4
	c := newTestCollection(t, Spec{Name: "route", Shards: nshards}, Options{})
	ctx := context.Background()

	var docs []string
	var wantShard []int
	for sh := 0; sh < nshards; sh++ {
		l := labelFor(t, sh, nshards)
		for i := 0; i < sh+1; i++ { // shard i holds i+1 docs
			docs = append(docs, doc(l, 2))
			wantShard = append(wantShard, sh)
		}
	}
	ids, err := c.AddBatch(ctx, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(docs) {
		t.Fatalf("AddBatch returned %d ids for %d docs", len(ids), len(docs))
	}
	for i, id := range ids {
		if sh, _ := SplitID(id); sh != wantShard[i] {
			t.Errorf("doc %d placed in shard %d, want %d", i, sh, wantShard[i])
		}
	}

	// Scattered query: every shard probed, ascending order, merged count.
	res, err := c.Query(ctx, "//item", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Targeted {
		t.Error("descendant-axis query reported targeted")
	}
	if len(res.Shards) != nshards {
		t.Fatalf("scatter probed %d shards, want %d", len(res.Shards), nshards)
	}
	wantTotal := 0
	for i, r := range res.Shards {
		if r.Shard != i {
			t.Errorf("merge order: position %d holds shard %d", i, r.Shard)
		}
		if want := (i + 1) * 2; r.Count != want {
			t.Errorf("shard %d count = %d, want %d", i, r.Count, want)
		}
		wantTotal += (i + 1) * 2
	}
	if res.Count != wantTotal || res.Partial || res.Degraded {
		t.Errorf("scatter result = %+v, want count %d, no partial/degraded", res, wantTotal)
	}

	// Targeted query: /label pins the probe to one shard.
	l2 := labelFor(t, 2, nshards)
	res, err = c.Query(ctx, "/"+l2+"/item", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Targeted || len(res.Shards) != 1 || res.Shards[0].Shard != 2 {
		t.Fatalf("targeted query result = %+v, want single probe of shard 2", res)
	}
	if res.Count != 3*2 {
		t.Errorf("targeted count = %d, want 6", res.Count)
	}

	// Global IDs resolve back to their documents.
	got, err := c.Document(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != docs[0] {
		t.Errorf("Document(%d) = %q, want %q", ids[0], got, docs[0])
	}

	// WithDocuments returns global IDs in shard order.
	res, err = c.Query(ctx, "//item", QueryOpts{WithDocuments: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents) != len(docs) {
		t.Fatalf("WithDocuments returned %d ids, want %d", len(res.Documents), len(docs))
	}
	lastShard := -1
	for _, id := range res.Documents {
		sh, _ := SplitID(id)
		if sh < lastShard {
			t.Fatalf("documents not in shard order: %v", res.Documents)
		}
		lastShard = sh
	}
}

// TestEmptyCollection covers the zero-document edge: queries succeed
// with zero counts, never partial.
func TestEmptyCollection(t *testing.T) {
	c := newTestCollection(t, Spec{Name: "empty", Shards: 3}, Options{})
	res, err := c.Query(context.Background(), "//anything", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 || res.Partial || res.Degraded || len(res.Shards) != 3 {
		t.Errorf("empty-collection query = %+v, want 0 count over 3 clean shards", res)
	}
	if st := c.Stats(); st.Documents != 0 || len(st.Shards) != 3 {
		t.Errorf("empty-collection stats = %+v", st)
	}
}

func TestBadQueryFailsWhole(t *testing.T) {
	c := newTestCollection(t, Spec{Name: "bad", Shards: 2}, Options{})
	_, err := c.Query(context.Background(), "///", QueryOpts{})
	if !errors.Is(err, fix.ErrBadQuery) {
		t.Fatalf("Query(///) = %v, want ErrBadQuery", err)
	}
}

func TestDeleteByGlobalID(t *testing.T) {
	const nshards = 3
	c := newTestCollection(t, Spec{Name: "del", Shards: nshards}, Options{})
	ctx := context.Background()
	l := labelFor(t, 1, nshards)
	ids, err := c.AddBatch(ctx, []string{doc(l, 1), doc(l, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(ctx, "/"+l+"/item", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Errorf("count after delete = %d, want 1", res.Count)
	}
	// Unknown shard and unknown record both wrap ErrUnknownDocument.
	if err := c.Delete(ctx, GlobalID(99, 0)); !errors.Is(err, fix.ErrUnknownDocument) {
		t.Errorf("Delete(unknown shard) = %v, want ErrUnknownDocument", err)
	}
	if err := c.Delete(ctx, GlobalID(0, 12345)); !errors.Is(err, fix.ErrUnknownDocument) {
		t.Errorf("Delete(unknown rec) = %v, want ErrUnknownDocument", err)
	}
}

// TestDegradedShardAnswersExactly corrupts one shard's B-tree on disk:
// the collection must keep answering exactly (that shard scans), flag
// the result Degraded but NOT Partial, and Rebuild must restore full
// health.
func TestDegradedShardAnswersExactly(t *testing.T) {
	const nshards = 2
	dir := filepath.Join(t.TempDir(), "deg")
	ctx := context.Background()
	c, err := Create(ctx, dir, Spec{Name: "deg", Shards: nshards}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	for sh := 0; sh < nshards; sh++ {
		l := labelFor(t, sh, nshards)
		for i := 0; i < 8; i++ {
			docs = append(docs, doc(l, 3))
		}
	}
	if _, err := c.AddBatch(ctx, docs); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip bits in shard 1's B-tree pages (past the header page).
	btree := filepath.Join(dir, "shard-001", "fix.btree")
	buf, err := os.ReadFile(btree)
	if err != nil {
		t.Fatal(err)
	}
	const pageSize = 4096
	if len(buf) <= pageSize+100 {
		t.Fatalf("shard 1 btree only %d bytes; corpus too small to corrupt", len(buf))
	}
	for off := pageSize + 100; off < len(buf); off += pageSize {
		buf[off] ^= 0xFF
	}
	if err := os.WriteFile(btree, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Query(ctx, "//item", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != len(docs)*3 {
		t.Errorf("degraded count = %d, want %d (degraded shards must answer exactly)", res.Count, len(docs)*3)
	}
	if !res.Degraded {
		t.Error("result over a corrupt shard not flagged Degraded")
	}
	if res.Partial {
		t.Error("degraded-but-exact result flagged Partial")
	}
	if !res.Shards[1].ScanFallback {
		t.Errorf("shard 1 row = %+v, want ScanFallback", res.Shards[1])
	}
	if res.Shards[0].ScanFallback {
		t.Error("healthy shard 0 reported scan fallback")
	}

	health := c.Health()
	if health[1].Healthy || health[1].Cause == "" {
		t.Errorf("shard 1 health = %+v, want unhealthy with cause", health[1])
	}
	if !health[0].Healthy {
		t.Errorf("shard 0 health = %+v, want healthy", health[0])
	}

	if err := c.Rebuild(ctx); err != nil {
		t.Fatal(err)
	}
	if h := c.Health(); !h[1].Healthy {
		t.Errorf("shard 1 still unhealthy after rebuild: %+v", h[1])
	}
	res, err = c.Query(ctx, "//item", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Count != len(docs)*3 {
		t.Errorf("post-rebuild result = %+v, want clean count %d", res, len(docs)*3)
	}
}

// TestReopenReplaysShards verifies acknowledged ingest survives an
// unsaved close: each shard's WAL replays on Open.
func TestReopenReplaysShards(t *testing.T) {
	const nshards = 2
	dir := filepath.Join(t.TempDir(), "re")
	ctx := context.Background()
	c, err := Create(ctx, dir, Spec{Name: "re", Shards: nshards}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	for sh := 0; sh < nshards; sh++ {
		docs = append(docs, doc(labelFor(t, sh, nshards), 1))
	}
	if _, err := c.AddBatch(ctx, docs); err != nil {
		t.Fatal(err)
	}
	// Close WITHOUT Save: the shards' WALs are the only durability.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query(ctx, "//item", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != len(docs) {
		t.Errorf("count after reopen = %d, want %d", res.Count, len(docs))
	}
}
