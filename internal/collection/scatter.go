// Scatter-gather query evaluation. Each targeted shard runs the full
// probe→refine pipeline on its own pinned generation under its own
// deadline; the collection merges per-shard counts in shard order (the
// merge is order-stable: shard i's contribution always precedes shard
// i+1's, regardless of completion order, so repeated queries against an
// unchanged collection produce identical result layouts). A shard that
// misses its deadline or trips a work budget is tolerated: the query
// returns the surviving shards' results marked Partial, with the failed
// shard identified in the per-shard trace — the serving layer's
// equivalent of the engine's graceful degradation (a degraded index
// falls back to an exact scan; a degraded shard falls back to an
// explicit gap).

package collection

import (
	"context"
	"errors"
	"fmt"

	"github.com/fix-index/fix/fix"
	"github.com/fix-index/fix/internal/obs"
	"github.com/fix-index/fix/internal/par"
)

// QueryOpts configures one collection query.
type QueryOpts struct {
	// Trace requests a full execution trace from every probed shard.
	Trace bool
	// WithDocuments additionally collects the matching documents' global
	// IDs (shard-order stable, ascending within each shard). It costs a
	// second evaluation on each surviving shard, so it is meant for
	// tools and tests, not the serving hot path.
	WithDocuments bool
}

// ShardResult is one shard's contribution to a collection query.
type ShardResult struct {
	// Shard is the shard ID; results are always in ascending shard
	// order.
	Shard int `json:"shard"`
	// Count, Entries, Candidates and Matched are the shard's fix.Result
	// counters.
	Count      int `json:"count"`
	Entries    int `json:"entries"`
	Candidates int `json:"candidates"`
	Matched    int `json:"matched"`
	// ScanFallback reports the shard answered exactly through its
	// degraded-index scan fallback: correct results, index speed lost.
	ScanFallback bool `json:"scan_fallback,omitempty"`
	// TimedOut reports the shard was killed by the per-shard deadline;
	// Failed reports any other tolerated error. Either way the shard
	// contributed nothing and the collection result is Partial. Err
	// carries the cause.
	TimedOut bool   `json:"timed_out,omitempty"`
	Failed   bool   `json:"failed,omitempty"`
	Err      string `json:"error,omitempty"`
	// Trace is the shard's execution trace when requested, with
	// Collection and Shard filled in.
	Trace *fix.QueryTrace `json:"trace,omitempty"`
}

// Result is the merged outcome of a collection query.
type Result struct {
	// Count, Entries, Candidates and Matched sum the successful shards'
	// counters.
	Count      int `json:"count"`
	Entries    int `json:"entries"`
	Candidates int `json:"candidates"`
	Matched    int `json:"matched"`
	// Targeted reports the router confined the query to a single shard
	// (absolute /label first step); false means it scattered to all.
	Targeted bool `json:"targeted"`
	// Partial reports at least one probed shard timed out or failed, so
	// Count undercounts the true result. Inspect Shards for the gaps. A
	// shard answering through its scan fallback is NOT partial — those
	// results are exact.
	Partial bool `json:"partial,omitempty"`
	// Degraded reports at least one shard answered via scan fallback.
	Degraded bool `json:"degraded,omitempty"`
	// Shards holds the per-shard outcomes in ascending shard order, one
	// entry per probed shard (one entry for a targeted query).
	Shards []ShardResult `json:"shards"`
	// Documents holds matching documents' global IDs when requested
	// (QueryOpts.WithDocuments), in shard order.
	Documents []uint64 `json:"documents,omitempty"`
}

// Query evaluates an absolute XPath expression against the collection:
// route (one shard or all), probe the targets in parallel under
// per-shard deadlines, merge in shard order. A syntactically invalid
// expression fails the whole query with fix.ErrBadQuery; a canceled or
// expired request context fails it with the context error; per-shard
// deadline and budget kills degrade to a Partial result instead.
func (c *Collection) Query(ctx context.Context, expr string, opts QueryOpts) (Result, error) {
	targets := c.shards
	target := queryTarget(expr, len(c.shards))
	if target != ScatterAll {
		targets = c.shards[target : target+1]
	}
	rows := make([]ShardResult, len(targets))
	err := par.Do(ctx, len(targets), len(targets), func(i int) error {
		return c.queryShard(ctx, targets[i], expr, opts, &rows[i])
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{Targeted: target != ScatterAll, Shards: rows}
	timeouts, failures := 0, 0
	for _, r := range rows {
		res.Count += r.Count
		res.Entries += r.Entries
		res.Candidates += r.Candidates
		res.Matched += r.Matched
		if r.TimedOut {
			timeouts++
		} else if r.Failed {
			failures++
		}
		if r.ScanFallback {
			res.Degraded = true
		}
	}
	res.Partial = timeouts+failures > 0
	if opts.WithDocuments {
		for _, r := range rows {
			if r.TimedOut || r.Failed {
				continue
			}
			ids, err := c.shards[r.Shard].DB.QueryDocumentsCtx(ctx, expr, c.shardQueryOptions(opts)...)
			if err != nil {
				continue
			}
			for _, rec := range ids {
				res.Documents = append(res.Documents, GlobalID(r.Shard, rec))
			}
		}
	}
	obs.Default().Collection(c.spec.Name).ObserveCollectionQuery(res.Targeted, timeouts, failures)
	return res, nil
}

// shardQueryOptions builds the per-shard option set: the collection's
// work budgets plus tracing when requested. The per-shard deadline is
// NOT part of the limits here — queryShard owns it as a context
// wrapped around the whole shard probe, so stalls before the engine
// sees the query (scheduling, fault-injection seams) count against it
// too.
func (c *Collection) shardQueryOptions(opts QueryOpts) []fix.QueryOption {
	lim := c.opts.limits()
	lim.Timeout = 0
	qopts := []fix.QueryOption{fix.QueryLimits(lim)}
	if opts.Trace {
		qopts = append(qopts, fix.Trace())
	}
	return qopts
}

// queryShard runs one shard's probe under the per-shard deadline and
// classifies the outcome into the shard's result row. It returns a
// non-nil error only for faults that must fail the whole collection
// query: a bad expression, or the request context itself ending.
func (c *Collection) queryShard(ctx context.Context, s *Shard, expr string, opts QueryOpts, row *ShardResult) error {
	row.Shard = s.ID
	sctx := ctx
	if c.opts.ShardTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, c.opts.ShardTimeout)
		defer cancel()
	}
	if c.testShardStall != nil {
		c.testShardStall(s.ID)
	}
	res, err := s.DB.QueryCtx(sctx, expr, c.shardQueryOptions(opts)...)
	if err != nil {
		if errors.Is(err, fix.ErrBadQuery) {
			return err
		}
		if ctx.Err() != nil {
			return fmt.Errorf("collection: shard %d: %w", s.ID, ctx.Err())
		}
		row.Err = err.Error()
		if errors.Is(err, context.DeadlineExceeded) || sctx.Err() != nil {
			row.TimedOut = true
		} else {
			row.Failed = true
		}
		// A deadline kill with tracing on still yields the partial trace
		// (the phases that ran are attributed); keep it so the gap is
		// diagnosable from the response alone.
		if res.Trace != nil {
			t := *res.Trace
			t.Collection = c.spec.Name
			t.Shard = s.ID
			row.Trace = &t
		}
		return nil
	}
	row.Count = res.Count
	row.Entries = res.Entries
	row.Candidates = res.Candidates
	row.Matched = res.MatchedEntries
	row.ScanFallback = res.ScanFallback
	if res.Trace != nil {
		t := *res.Trace
		t.Collection = c.spec.Name
		t.Shard = s.ID
		row.Trace = &t
	}
	return nil
}
