package bisim

import (
	"errors"
	"io"
	"math"
	"testing"

	"github.com/fix-index/fix/internal/eigen"
	"github.com/fix-index/fix/internal/matrix"
)

func collectEvents(t *testing.T, s EventStream) []Event {
	t.Helper()
	var out []Event
	for {
		ev, err := s.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ev)
	}
}

func TestTravelerFullUnfolding(t *testing.T) {
	g, _, _ := buildFromXML(t, `<a><b><c/></b><b><c/></b></a>`, nil)
	// Bisim graph: c, b{c}, a{b} — unfolding to depth 3 replays a/b/c
	// (the two b's merged, so the unfolding has ONE b branch).
	evs := collectEvents(t, NewTraveler(g.Root, 3, 0))
	if len(evs) != 6 { // open a, open b, open c, close c, close b, close a
		t.Fatalf("events = %d: %v", len(evs), evs)
	}
	opens := 0
	depth, maxDepth := 0, 0
	for _, ev := range evs {
		if ev.Open {
			opens++
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		} else {
			depth--
		}
	}
	if opens != 3 || maxDepth != 3 || depth != 0 {
		t.Errorf("opens=%d maxDepth=%d final=%d", opens, maxDepth, depth)
	}
}

func TestTravelerDepthTruncation(t *testing.T) {
	g, _, _ := buildFromXML(t, `<a><b><c><d/></c></b></a>`, nil)
	evs := collectEvents(t, NewTraveler(g.Root, 2, 0))
	maxDepth, depth := 0, 0
	for _, ev := range evs {
		if ev.Open {
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		} else {
			depth--
		}
	}
	if maxDepth != 2 {
		t.Errorf("truncated unfolding reached depth %d, want 2", maxDepth)
	}
}

func TestTravelerBudget(t *testing.T) {
	g, _, _ := buildFromXML(t, `<a><b><c/></b><d><c/></d><e><c/></e></a>`, nil)
	s := NewTraveler(g.Root, 3, 2)
	var err error
	for err == nil {
		_, err = s.Next()
	}
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

// TestSubpatternTruncationRebuilds reproduces the paper's §4.4 point: the
// depth-truncated subgraph is not a bisimulation graph, so GEN-SUBPATTERN
// must rebuild. With <r><x><y/></x><x><z/></x></r> truncated to depth 2,
// the two x classes have equal signatures (both childless at the cut) and
// must merge.
func TestSubpatternTruncationRebuilds(t *testing.T) {
	g, _, _ := buildFromXML(t, `<r><x><y/></x><x><z/></x></r>`, nil)
	sub, ok, err := Subpattern(g.Root, 2, 0)
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	// Truncated: r{x} with a single merged x class => 2 vertices.
	if len(sub.Vertices) != 2 {
		t.Errorf("truncated subpattern has %d vertices, want 2", len(sub.Vertices))
	}
}

func TestSubpatternFastPathMatchesRebuild(t *testing.T) {
	// When the vertex depth fits in the limit, the fast path (reachable
	// subgraph) and the traveler rebuild must produce isospectral graphs.
	g, _, _ := buildFromXML(t, figure1, nil)
	for _, v := range g.Vertices {
		fast, ok, err := Subpattern(v, int(v.Depth), 0)
		if err != nil || !ok {
			t.Fatal(err, ok)
		}
		slow, err := Build(NewTraveler(v, int(v.Depth), 0), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast.Vertices) != len(slow.Vertices) || fast.NumEdges() != slow.NumEdges() {
			t.Fatalf("vertex %d: fast %d/%d vs slow %d/%d", v.ID,
				len(fast.Vertices), fast.NumEdges(), len(slow.Vertices), slow.NumEdges())
		}
		enc := matrix.NewEdgeEncoder()
		mf, _ := matrix.BuildSkew(fast.MatrixGraph(), enc, true)
		ms, okk := matrix.BuildSkew(slow.MatrixGraph(), enc, false)
		if !okk {
			t.Fatal("slow graph has unknown pairs")
		}
		_, maxF, err := eigen.SkewExtremes(mf)
		if err != nil {
			t.Fatal(err)
		}
		_, maxS, err := eigen.SkewExtremes(ms)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(maxF-maxS) > 1e-9*math.Max(1, maxF) {
			t.Fatalf("vertex %d: spectra differ: %v vs %v", v.ID, maxF, maxS)
		}
	}
}

func TestSubpatternBudgetFallback(t *testing.T) {
	g, _, _ := buildFromXML(t, figure1, nil)
	_, ok, err := Subpattern(g.Root, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("budget 1 should report oversize")
	}
}

func TestReachableIsIsolated(t *testing.T) {
	g, _, _ := buildFromXML(t, `<a><b><c/></b></a>`, nil)
	sub := Reachable(g.Root.Children[0]) // b{c}
	if len(sub.Vertices) != 2 {
		t.Fatalf("reachable vertices = %d, want 2", len(sub.Vertices))
	}
	// Mutating the copy must not touch the original.
	sub.Root.Label = 999
	for _, v := range g.Vertices {
		if v.Label == 999 {
			t.Error("Reachable shares vertices with the source graph")
		}
	}
	// IDs are dense and children precede parents.
	for i, v := range sub.Vertices {
		if int(v.ID) != i {
			t.Errorf("vertex %d has ID %d", i, v.ID)
		}
		for _, c := range v.Children {
			if c.ID >= v.ID {
				t.Errorf("child %d does not precede parent %d", c.ID, v.ID)
			}
		}
	}
}
