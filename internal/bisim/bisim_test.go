package bisim

import (
	"testing"

	"github.com/fix-index/fix/internal/xmltree"
)

// figure1 is the paper's Figure 1 bibliography document (structure only).
const figure1 = `<bib>
<article><title/><author><address/><email/></author></article>
<article><title/><author><email/><affiliation/></author></article>
<book><title/><author><affiliation/><address/></author></book>
<www><title/><author><email/></author></www>
<inproceedings><title/><author><email/><affiliation/></author></inproceedings>
</bib>`

func buildFromXML(t *testing.T, doc string, vh ValueHash) (*Graph, *xmltree.Dict, []uint64) {
	t.Helper()
	n, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	dict := xmltree.NewDict()
	var ptrs []uint64
	g, err := Build(FromXML(xmltree.NewTreeStream(n, 0), dict, vh), func(v *Vertex, ptr uint64) {
		ptrs = append(ptrs, ptr)
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, dict, ptrs
}

func TestFigure1Bisimulation(t *testing.T) {
	g, dict, ptrs := buildFromXML(t, figure1, nil)
	root, err := xmltree.ParseString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 4's precondition: one onClose per element.
	if len(ptrs) != root.CountElements() {
		t.Errorf("onClose fired %d times, want %d", len(ptrs), root.CountElements())
	}
	// The paper's key observation (Figure 2): downward bisimulation
	// merges the author of book and the author of inproceedings (same
	// children sets {affiliation, address} vs ... ). Expected classes:
	// bib, title, address, email, affiliation,
	// author{address,email}, author{email,affiliation} (article2 and
	// inproceedings share this), author{affiliation,address},
	// author{email},
	// article{title,author_ae}, article{title,author_ea},
	// book, www, inproceedings.
	// article2 and inproceedings have different labels so stay apart,
	// but their author children merge.
	wantVertices := 14
	if len(g.Vertices) != wantVertices {
		for _, v := range g.Vertices {
			t.Logf("vertex %d: label=%s children=%d depth=%d", v.ID, dict.Label(v.Label), len(v.Children), v.Depth)
		}
		t.Errorf("graph has %d vertices, want %d", len(g.Vertices), wantVertices)
	}
	if g.MaxDepth() != 4 {
		t.Errorf("MaxDepth = %d, want 4", g.MaxDepth())
	}
	if g.Root == nil || dict.Label(g.Root.Label) != "bib" {
		t.Error("root is not bib")
	}
	// The author under article2 and the author under inproceedings must
	// be the same vertex.
	authorID, _ := dict.Lookup("author")
	seen := make(map[int32]int)
	for _, v := range g.Vertices {
		if v.Label == authorID {
			seen[v.ID]++
		}
	}
	if len(seen) != 4 {
		t.Errorf("distinct author classes = %d, want 4", len(seen))
	}
}

func TestChildrenAreSetsAndOrdered(t *testing.T) {
	// Two identical children collapse into one vertex and appear once in
	// the parent's child set.
	g, _, _ := buildFromXML(t, `<a><b/><b/><b/></a>`, nil)
	if len(g.Vertices) != 2 {
		t.Fatalf("vertices = %d, want 2", len(g.Vertices))
	}
	if len(g.Root.Children) != 1 {
		t.Errorf("root children = %d, want 1", len(g.Root.Children))
	}
}

func TestStructurallyEqualSubtreesShareVertices(t *testing.T) {
	g, _, _ := buildFromXML(t, `<r><x><y/></x><x><y/></x><x><z/></x></r>`, nil)
	// Classes: y, z, x{y}, x{z}, r = 5.
	if len(g.Vertices) != 5 {
		t.Errorf("vertices = %d, want 5", len(g.Vertices))
	}
	if len(g.Root.Children) != 2 {
		t.Errorf("root child classes = %d, want 2", len(g.Root.Children))
	}
}

func TestDepths(t *testing.T) {
	g, _, _ := buildFromXML(t, `<a><b><c><d/></c></b><e/></a>`, nil)
	if g.Root.Depth != 4 {
		t.Errorf("root depth = %d, want 4", g.Root.Depth)
	}
	if g.MaxDepth() != 4 {
		t.Errorf("MaxDepth = %d", g.MaxDepth())
	}
}

func TestValueNodes(t *testing.T) {
	vh := func(v string) uint32 {
		if v == "hello" {
			return 100
		}
		return 101
	}
	g, _, ptrs := buildFromXML(t, `<a><b>hello</b><c>world</c></a>`, vh)
	// Classes: value100, value101, b{v100}, c{v101}, a = 5.
	if len(g.Vertices) != 5 {
		t.Errorf("vertices = %d, want 5", len(g.Vertices))
	}
	// onClose fires for elements only (a, b, c), not value nodes.
	if len(ptrs) != 3 {
		t.Errorf("element closes = %d, want 3", len(ptrs))
	}
	// Without a hash, text vanishes.
	g2, _, _ := buildFromXML(t, `<a><b>hello</b><c>world</c></a>`, nil)
	if len(g2.Vertices) != 3 {
		t.Errorf("structural-only vertices = %d, want 3", len(g2.Vertices))
	}
}

func TestMatrixGraphConversion(t *testing.T) {
	g, _, _ := buildFromXML(t, `<r><x><y/></x><x><z/></x></r>`, nil)
	mg := g.MatrixGraph()
	if mg.NumVertices() != len(g.Vertices) {
		t.Fatalf("vertices = %d, want %d", mg.NumVertices(), len(g.Vertices))
	}
	if mg.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", mg.NumEdges(), g.NumEdges())
	}
	for i, v := range g.Vertices {
		if mg.Labels[i] != v.Label {
			t.Errorf("label mismatch at %d", i)
		}
		if len(mg.Adj[i]) != len(v.Children) {
			t.Errorf("adjacency mismatch at %d", i)
		}
	}
}
