package bisim

import (
	"errors"
	"io"
)

// This file implements the paper's BISIM-TRAVELER (§4.4): a depth-first
// walk of the bisimulation graph limited to a given depth, producing the
// event stream of the truncated unfolding. The truncated subgraph of a
// bisimulation graph is generally not itself a bisimulation graph (the
// cut introduces structural repetition), so GEN-SUBPATTERN feeds the
// traveler's events back through Build to obtain a proper bisimulation
// graph of the subpattern.

// traveler streams the unfolding of a vertex up to depthLimit levels.
// budget bounds the number of Open events emitted; exceeding it surfaces
// as ErrBudget so the caller can fall back to the artificial [0, +inf)
// feature range.
type traveler struct {
	depthLimit int
	budget     int
	opens      int
	stack      []travFrame
}

type travFrame struct {
	v      *Vertex
	opened bool
	next   int
}

// ErrBudget reports that an unfolding exceeded its event budget.
type budgetError struct{}

func (budgetError) Error() string { return "bisim: unfolding exceeded event budget" }

// ErrBudget is returned by the traveler when the depth-limited unfolding
// would emit more Open events than the configured budget.
var ErrBudget error = budgetError{}

// NewTraveler returns an event stream over the depth-limited unfolding of
// v. depthLimit counts levels including v itself (depthLimit=1 emits only
// v). budget <= 0 means unlimited.
func NewTraveler(v *Vertex, depthLimit, budget int) EventStream {
	return &traveler{depthLimit: depthLimit, budget: budget, stack: []travFrame{{v: v}}}
}

func (t *traveler) Next() (Event, error) {
	for len(t.stack) > 0 {
		top := &t.stack[len(t.stack)-1]
		if !top.opened {
			top.opened = true
			t.opens++
			if t.budget > 0 && t.opens > t.budget {
				return Event{}, ErrBudget
			}
			return Event{Open: true, Label: top.v.Label}, nil
		}
		if len(t.stack) < t.depthLimit && top.next < len(top.v.Children) {
			child := top.v.Children[top.next]
			top.next++
			t.stack = append(t.stack, travFrame{v: child})
			continue
		}
		ev := Event{Open: false, Label: top.v.Label}
		t.stack = t.stack[:len(t.stack)-1]
		return ev, nil
	}
	return Event{}, io.EOF
}

// Subpattern returns the bisimulation graph of the depth-limited unfolding
// of v. When the vertex's own unfolding is no deeper than the limit, the
// reachable subgraph is already a bisimulation graph and is extracted
// directly without re-running the construction. The boolean result is
// false when the unfolding exceeded the budget (budget <= 0 disables the
// check).
func Subpattern(v *Vertex, depthLimit, budget int) (*Graph, bool, error) {
	if depthLimit <= 0 || int(v.Depth) <= depthLimit {
		g := Reachable(v)
		if budget > 0 && g.NumEdges() > budget {
			return nil, false, nil
		}
		return g, true, nil
	}
	g, err := Build(NewTraveler(v, depthLimit, budget), nil)
	if errors.Is(err, ErrBudget) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return g, true, nil
}

// Reachable extracts the subgraph reachable from v as a fresh Graph with
// re-numbered vertices. The result shares no structure with the source
// graph.
func Reachable(v *Vertex) *Graph {
	remap := make(map[int32]*Vertex)
	var order []*Vertex
	var visit func(*Vertex) *Vertex
	visit = func(u *Vertex) *Vertex {
		if nv, ok := remap[u.ID]; ok {
			return nv
		}
		nv := &Vertex{Label: u.Label, Depth: u.Depth}
		remap[u.ID] = nv
		if len(u.Children) > 0 {
			nv.Children = make([]*Vertex, len(u.Children))
			for i, c := range u.Children {
				nv.Children[i] = visit(c)
			}
		}
		order = append(order, nv)
		nv.ID = int32(len(order) - 1)
		return nv
	}
	root := visit(v)
	return &Graph{Root: root, Vertices: order}
}
