// Package bisim implements the bisimulation graphs at the core of FIX
// (paper §2.2 and §4): the single-pass, stack-based construction from a
// SAX event stream (Algorithm 1, CONSTRUCT-ENTRIES), the depth-limited
// graph traveler used to enumerate subpatterns of large documents
// (GEN-SUBPATTERN / BISIM-TRAVELER), and the conversion to the compact
// graph form consumed by the matrix translation.
//
// Two XML nodes fall into the same bisimulation vertex iff their labels
// and their sets of child vertices coincide — the "signature" of the
// paper. Because children close before their parent in document order, the
// graph is built bottom-up in one pass with O(1) signature hashing.
package bisim

import (
	"encoding/binary"
	"io"
	"sort"

	"github.com/fix-index/fix/internal/matrix"
	"github.com/fix-index/fix/internal/xmltree"
)

// Event is a structural open/close event over label identifiers. Value
// (text) nodes appear as an Open immediately followed by a Close with
// IsValue set; the construction never emits element callbacks for them.
type Event struct {
	Open    bool
	Label   uint32
	Ptr     uint64
	IsValue bool
}

// EventStream produces structural events; Next returns io.EOF at the end.
type EventStream interface {
	Next() (Event, error)
}

// Features caches the eigenvalue pair of the depth-limited subpattern
// rooted at a vertex. Oversize marks subpatterns whose unfolding exceeded
// the edge budget; they are indexed under the artificial [0, +inf) range
// so they are always candidates (paper §6.1).
type Features struct {
	Set      bool
	Oversize bool
	Min, Max float64
	// Spectrum optionally caches σ₂.. of the subpattern for the index
	// layer's spectrum filter.
	Spectrum []float64
}

// Vertex is one equivalence class of the bisimulation graph.
type Vertex struct {
	ID       int32
	Label    uint32
	Children []*Vertex // sorted by ID; a set, no duplicates
	Depth    int32     // height of the unfolding: leaf = 1
	Feats    Features  // managed by the index layer
}

// Graph is a bisimulation graph. Vertices are in creation (bottom-up)
// order, so children always precede parents.
type Graph struct {
	Root     *Vertex
	Vertices []*Vertex
}

// MaxDepth returns the depth of the graph's unfolding (the document
// depth), or 0 for an empty graph.
func (g *Graph) MaxDepth() int {
	if g.Root == nil {
		return 0
	}
	return int(g.Root.Depth)
}

// NumEdges returns the total number of edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, v := range g.Vertices {
		n += len(v.Children)
	}
	return n
}

// OnElement is invoked by Build at every element closing event with the
// element's bisimulation vertex and its storage pointer. The paper's index
// construction inserts one B-tree entry per invocation (Theorem 4).
type OnElement func(v *Vertex, ptr uint64)

type builder struct {
	bySig    map[string]*Vertex
	vertices []*Vertex
}

type sigFrame struct {
	label    uint32
	ptr      uint64
	isValue  bool
	children map[int32]*Vertex
}

// Build constructs the bisimulation graph of the event stream. If onClose
// is non-nil it is called for every element (non-value) closing event.
func Build(s EventStream, onClose OnElement) (*Graph, error) {
	b := &builder{bySig: make(map[string]*Vertex)}
	var stack []sigFrame
	var root *Vertex
	for {
		ev, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if ev.Open {
			stack = append(stack, sigFrame{label: ev.Label, ptr: ev.Ptr, isValue: ev.IsValue})
			continue
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		u := b.intern(top.label, top.children)
		if len(stack) > 0 {
			parent := &stack[len(stack)-1]
			if parent.children == nil {
				parent.children = make(map[int32]*Vertex, 4)
			}
			parent.children[u.ID] = u
		} else {
			root = u
		}
		if !top.isValue && onClose != nil {
			onClose(u, top.ptr)
		}
	}
	return &Graph{Root: root, Vertices: b.vertices}, nil
}

// intern finds or creates the vertex with the given signature.
func (b *builder) intern(label uint32, children map[int32]*Vertex) *Vertex {
	ids := make([]int32, 0, len(children))
	for id := range children {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	key := sigKey(label, ids)
	if v, ok := b.bySig[key]; ok {
		return v
	}
	v := &Vertex{ID: int32(len(b.vertices)), Label: label, Depth: 1}
	if len(ids) > 0 {
		v.Children = make([]*Vertex, len(ids))
		for i, id := range ids {
			c := children[id]
			v.Children[i] = c
			if c.Depth+1 > v.Depth {
				v.Depth = c.Depth + 1
			}
		}
	}
	b.vertices = append(b.vertices, v)
	b.bySig[key] = v
	return v
}

func sigKey(label uint32, ids []int32) string {
	buf := make([]byte, 0, 8+len(ids)*5)
	buf = binary.AppendUvarint(buf, uint64(label))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	return string(buf)
}

// MatrixGraph converts g into the compact form used for the skew-symmetric
// matrix translation. Vertex i of the result is g.Vertices[i].
func (g *Graph) MatrixGraph() *matrix.Graph {
	mg := &matrix.Graph{
		Labels: make([]uint32, len(g.Vertices)),
		Adj:    make([][]int32, len(g.Vertices)),
	}
	for i, v := range g.Vertices {
		mg.Labels[i] = v.Label
		if len(v.Children) > 0 {
			adj := make([]int32, len(v.Children))
			for j, c := range v.Children {
				adj[j] = c.ID
			}
			mg.Adj[i] = adj
		}
	}
	return mg
}

// ValueHash maps PCDATA to a synthetic label. The index layer provides one
// implementing the paper's (α, α+β] hashing (§4.6); nil disables value
// nodes entirely.
type ValueHash func(value string) uint32

// xmlAdapter translates an xmltree event stream into structural events,
// interning labels through dict and hashing text through vh. Text events
// expand into an Open/Close pair of a value node; when vh is nil they are
// dropped.
type xmlAdapter struct {
	src     xmltree.EventStream
	dict    *xmltree.Dict
	vh      ValueHash
	pending *Event
}

// FromXML adapts an xmltree event stream for Build.
func FromXML(src xmltree.EventStream, dict *xmltree.Dict, vh ValueHash) EventStream {
	return &xmlAdapter{src: src, dict: dict, vh: vh}
}

func (a *xmlAdapter) Next() (Event, error) {
	if a.pending != nil {
		ev := *a.pending
		a.pending = nil
		return ev, nil
	}
	for {
		ev, err := a.src.Next()
		if err != nil {
			return Event{}, err
		}
		switch ev.Kind {
		case xmltree.Open:
			return Event{Open: true, Label: a.dict.ID(ev.Label), Ptr: ev.Ptr}, nil
		case xmltree.Close:
			return Event{Open: false, Label: a.dict.ID(ev.Label), Ptr: ev.Ptr}, nil
		case xmltree.TextEvent:
			if a.vh == nil {
				continue
			}
			label := a.vh(ev.Value)
			a.pending = &Event{Open: false, Label: label, Ptr: ev.Ptr, IsValue: true}
			return Event{Open: true, Label: label, Ptr: ev.Ptr, IsValue: true}, nil
		}
	}
}
