package tagindex

import (
	"testing"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
)

func build(t *testing.T, docs ...string) *Index {
	t.Helper()
	st, err := storage.NewStore(storage.NewMemFile(), xmltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		n, err := xmltree.ParseString(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.AppendTree(n); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestPostingOrder(t *testing.T) {
	ix := build(t,
		`<r><x/><x><x/></x></r>`,
		`<r><x/></r>`,
	)
	xs := ix.List("x")
	if len(xs) != 4 {
		t.Fatalf("x postings = %d, want 4", len(xs))
	}
	for i := 1; i < len(xs); i++ {
		a, b := xs[i-1], xs[i]
		if a.Rec > b.Rec || (a.Rec == b.Rec && a.Start >= b.Start) {
			t.Fatalf("postings out of document order at %d: %+v then %+v", i, a, b)
		}
	}
	if rs := ix.List("r"); len(rs) != 2 || rs[0].Level != 0 || rs[1].Level != 0 {
		t.Errorf("r postings = %+v", rs)
	}
	if ix.List("unknown") != nil {
		t.Error("unknown label returned postings")
	}
}

func TestNestedRegions(t *testing.T) {
	ix := build(t, `<x><x><x/></x></x>`)
	xs := ix.List("x")
	if len(xs) != 3 {
		t.Fatalf("postings = %d", len(xs))
	}
	// Outer contains middle contains inner; levels 0,1,2.
	if !xs[0].Contains(xs[1]) || !xs[1].Contains(xs[2]) || !xs[0].Contains(xs[2]) {
		t.Error("nesting broken")
	}
	for i, p := range xs {
		if int(p.Level) != i {
			t.Errorf("posting %d level = %d", i, p.Level)
		}
	}
	if xs[1].Contains(xs[1]) {
		t.Error("self-containment must be false (proper ancestor)")
	}
}

func TestTextNodesSkipped(t *testing.T) {
	ix := build(t, `<a>text<b>more</b></a>`)
	if ix.NumElements() != 2 {
		t.Errorf("elements = %d, want 2", ix.NumElements())
	}
}

func TestPointerRoundTrip(t *testing.T) {
	ix := build(t, `<a><b/></a>`)
	b := ix.List("b")[0]
	p := b.Pointer()
	if p.Rec() != b.Rec || p.Off() != b.Start {
		t.Errorf("pointer %v from posting %+v", p, b)
	}
}

func TestSizeEstimate(t *testing.T) {
	ix := build(t, `<a><b/><c/></a>`)
	if ix.SizeBytes() != 3*14 {
		t.Errorf("SizeBytes = %d", ix.SizeBytes())
	}
}
