// Package tagindex provides per-label element posting lists with region
// encoding, the storage-side substrate of join-based XPath processing
// (paper references [3], [7], [31]): every element is recorded as
// (document, start, end, level), where [start, end) is its subtree's byte
// extent in the stored record. Containment of regions is equivalent to
// the ancestor-descendant relation, and a level difference of one to
// parent-child, which is what the structural-join operators in package
// joins consume.
package tagindex

import (
	"sort"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
)

// Posting is one element occurrence.
type Posting struct {
	Rec        uint32
	Start, End uint32 // subtree byte extent within the record
	Level      uint16 // depth below the document root (root = 0)
}

// Contains reports whether p's region properly contains q's (p is an
// ancestor of q in the same document).
func (p Posting) Contains(q Posting) bool {
	return p.Rec == q.Rec && p.Start < q.Start && q.End <= p.End
}

// Pointer converts the posting to a primary-storage pointer.
func (p Posting) Pointer() storage.Pointer {
	return storage.MakePointer(p.Rec, p.Start)
}

// Index maps label IDs to document-ordered posting lists.
type Index struct {
	dict  *xmltree.Dict
	lists map[uint32][]Posting

	elements int
}

// Build scans every record of the store.
func Build(st *storage.Store) (*Index, error) {
	ix := &Index{dict: st.Dict(), lists: make(map[uint32][]Posting)}
	for rec := 0; rec < st.NumRecords(); rec++ {
		cur, err := st.Cursor(uint32(rec))
		if err != nil {
			return nil, err
		}
		var walk func(r xmltree.Ref, level uint16)
		walk = func(r xmltree.Ref, level uint16) {
			if cur.IsText(r) {
				return
			}
			ix.elements++
			label := cur.LabelID(r)
			ix.lists[label] = append(ix.lists[label], Posting{
				Rec:   uint32(rec),
				Start: uint32(r),
				End:   uint32(cur.SubtreeEnd(r)),
				Level: level,
			})
			it := cur.Children(r)
			for {
				c, ok := it.Next()
				if !ok {
					return
				}
				walk(c, level+1)
			}
		}
		walk(0, 0)
	}
	// The preorder walk already yields (Rec, Start) order per label, but
	// normalize defensively: join operators rely on it.
	for _, l := range ix.lists {
		sort.Slice(l, func(i, j int) bool {
			if l[i].Rec != l[j].Rec {
				return l[i].Rec < l[j].Rec
			}
			return l[i].Start < l[j].Start
		})
	}
	return ix, nil
}

// List returns the posting list for a label name, or nil if the label
// never occurs.
func (ix *Index) List(name string) []Posting {
	id, ok := ix.dict.Lookup(name)
	if !ok {
		return nil
	}
	return ix.lists[id]
}

// NumElements returns the total number of postings.
func (ix *Index) NumElements() int { return ix.elements }

// NumLabels returns the number of distinct labels.
func (ix *Index) NumLabels() int { return len(ix.lists) }

// SizeBytes estimates the serialized footprint (14 bytes per posting).
func (ix *Index) SizeBytes() int64 { return int64(ix.elements) * 14 }
