package core

import (
	"math/rand"
	"testing"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// The spectrum filter (§3.3 "whole set of eigenvalues", Options.SpectrumK)
// must only remove false positives, never true matches.

func spectrumStore(t *testing.T, seed int64) *storage.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "c", "d"}
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		t.Fatal(err)
	}
	root := xmltree.Elem("root")
	for i := 0; i < 30; i++ {
		root.Children = append(root.Children, randomPropDoc(rng, labels, 5))
	}
	if _, err := st.AppendTree(root); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSpectrumFilterCompleteAndMonotone(t *testing.T) {
	st := spectrumStore(t, 808)
	plain, err := Build(st, Options{DepthLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	spectral, err := Build(st, Options{DepthLimit: 4, SpectrumK: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(809))
	for qn := 0; qn < 40; qn++ {
		qs := randomPropQuery(rng, []string{"a", "b", "c", "d"}, 3, 3)
		q := xpath.MustParse(qs)
		a, err := plain.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := spectral.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Count != b.Count || a.Matched != b.Matched {
			t.Fatalf("%s: spectrum filter changed results: %+v vs %+v", qs, a, b)
		}
		if b.Candidates > a.Candidates {
			t.Errorf("%s: spectrum filter increased candidates (%d -> %d)", qs, a.Candidates, b.Candidates)
		}
		_, wantCount := bruteCount(t, st, q)
		if b.Count != wantCount {
			t.Fatalf("%s: spectral index count %d, want %d", qs, b.Count, wantCount)
		}
	}
}

func TestSpectrumFilterWithPaperBound(t *testing.T) {
	st := spectrumStore(t, 810)
	ix, err := Build(st, Options{DepthLimit: 4, SpectrumK: 3, PaperPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	// The paper-mode benchmark queries (distinct labels per level) stay
	// exact under the spectrum filter too.
	for _, qs := range []string{"//a/b", "//a[b][c]", "//b/c/d"} {
		q := xpath.MustParse(qs)
		_, wantCount := bruteCount(t, st, q)
		res, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != wantCount {
			t.Errorf("%s: count %d, want %d", qs, res.Count, wantCount)
		}
	}
}

func TestSpectrumContainsSemantics(t *testing.T) {
	cases := []struct {
		entry   []float64
		queries [][]float64
		want    bool
	}{
		{nil, [][]float64{{5}}, true}, // no entry spectrum: keep
		{[]float64{5}, nil, true},     // no query spectrum: keep
		{[]float64{5, 3}, [][]float64{{4, 2}}, true},
		{[]float64{5, 3}, [][]float64{{4, 3.5}}, false},
		{[]float64{5}, [][]float64{{4, 99}}, true}, // extra query components unchecked
		{[]float64{5, 3}, [][]float64{{4}, {6}}, false},
		{[]float64{5, 3}, [][]float64{{5, 3}}, true}, // equality with slack
	}
	for i, c := range cases {
		if got := spectrumContains(c.entry, c.queries); got != c.want {
			t.Errorf("case %d: spectrumContains = %v, want %v", i, got, c.want)
		}
	}
}

func TestEntryValueRoundTrip(t *testing.T) {
	cases := []entryValue{
		{primary: 42},
		{primary: 42, hasCopy: true, clustered: 99},
		{primary: 1, spectrum: []float64{3.5, 2.25, 0}},
		{primary: 7, hasCopy: true, clustered: 8, spectrum: []float64{10, 9, 8, 7, 6, 5, 4, 3}},
	}
	for i, v := range cases {
		got := decodeValue(v.encode())
		if got.primary != v.primary || got.hasCopy != v.hasCopy || got.clustered != v.clustered {
			t.Fatalf("case %d: %+v -> %+v", i, v, got)
		}
		if len(got.spectrum) != len(v.spectrum) {
			t.Fatalf("case %d: spectrum len %d, want %d", i, len(got.spectrum), len(v.spectrum))
		}
		for j := range v.spectrum {
			if got.spectrum[j] != v.spectrum[j] {
				t.Errorf("case %d: spectrum[%d] = %v, want %v", i, j, got.spectrum[j], v.spectrum[j])
			}
		}
	}
	// Truncated buffers decode to a zero value instead of panicking.
	if v := decodeValue([]byte{0x10, 1, 2}); v.primary != 0 || v.spectrum != nil {
		t.Errorf("truncated decode = %+v", v)
	}
}
