package core

import (
	"testing"

	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// bibDocs is a small bibliography collection in the spirit of the paper's
// Figure 1.
var bibDocs = []string{
	`<article><title>t1</title><author><address>a</address><email>e</email></author></article>`,
	`<article><title>t2</title><author><email>e</email><affiliation>x</affiliation></author></article>`,
	`<book><title>t3</title><author><affiliation>x</affiliation><address>a</address></author></book>`,
	`<www><title>t4</title><author><email>e</email></author></www>`,
	`<inproceedings><title>t5</title><author><email>e</email><affiliation>x</affiliation></author></inproceedings>`,
	`<article><title>t6</title></article>`,
	`<book><title>t7</title><author><phone>p</phone></author></book>`,
}

func buildCollection(t *testing.T, docs []string, opts Options) (*storage.Store, *Index) {
	t.Helper()
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	for i, d := range docs {
		n, err := xmltree.ParseString(d)
		if err != nil {
			t.Fatalf("parsing doc %d: %v", i, err)
		}
		if _, err := st.AppendTree(n); err != nil {
			t.Fatalf("appending doc %d: %v", i, err)
		}
	}
	ix, err := Build(st, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return st, ix
}

// bruteCount evaluates the query over every document with the bare
// navigational matcher.
func bruteCount(t *testing.T, st *storage.Store, q *xpath.Path) (docs, results int) {
	t.Helper()
	nq, err := nok.Compile(q.Tree(), st.Dict())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for rec := 0; rec < st.NumRecords(); rec++ {
		cur, err := st.Cursor(uint32(rec))
		if err != nil {
			t.Fatalf("Cursor: %v", err)
		}
		if n := nq.Count(cur, 0); n > 0 {
			docs++
			results += n
		}
	}
	return docs, results
}

func TestCollectionIndexMatchesBruteForce(t *testing.T) {
	st, ix := buildCollection(t, bibDocs, Options{})
	queries := []string{
		"//article",
		"//article/author",
		"//article[author]/title",
		"//author[email]",
		"//author[email][affiliation]",
		"//book/author/phone",
		"//article/author/phone", // no results
		"/book/title",
		"/article[title]",
		"//nosuchlabel",
	}
	for _, qs := range queries {
		q := xpath.MustParse(qs)
		wantDocs, wantResults := bruteCount(t, st, q)
		res, err := ix.Query(q)
		if err != nil {
			t.Fatalf("%s: Query: %v", qs, err)
		}
		if res.Matched != wantDocs || res.Count != wantResults {
			t.Errorf("%s: got matched=%d count=%d, want %d/%d (candidates=%d)",
				qs, res.Matched, res.Count, wantDocs, wantResults, res.Candidates)
		}
		if res.Candidates < wantDocs {
			t.Errorf("%s: false negative: %d candidates < %d matching docs", qs, res.Candidates, wantDocs)
		}
		if res.Entries != len(bibDocs) {
			t.Errorf("%s: entries = %d, want %d", qs, res.Entries, len(bibDocs))
		}
	}
}

func TestCollectionClusteredEquivalent(t *testing.T) {
	_, plain := buildCollection(t, bibDocs, Options{})
	_, clustered := buildCollection(t, bibDocs, Options{Clustered: true})
	for _, qs := range []string{"//author[email]", "//article[author]/title", "/book/title"} {
		q := xpath.MustParse(qs)
		a, err := plain.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		b, err := clustered.Query(q)
		if err != nil {
			t.Fatalf("%s clustered: %v", qs, err)
		}
		if a.Count != b.Count || a.Matched != b.Matched || a.Candidates != b.Candidates {
			t.Errorf("%s: clustered result %+v differs from unclustered %+v", qs, b, a)
		}
	}
	if clustered.ClusteredStore() == nil {
		t.Fatal("clustered index has no clustered store")
	}
}

const deepDoc = `<dblp>
<article><author>a1</author><author>a2</author><title>t<i>x</i></title><number>7</number></article>
<article><author>a3</author><title>t</title></article>
<inproceedings><author>a1</author><title>t<i>y</i></title><url>u</url></inproceedings>
<inproceedings><author>a4</author><title>t</title></inproceedings>
<proceedings><booktitle>b</booktitle><title>t<sup>s</sup><i>z</i></title></proceedings>
<book><author>a5</author><title>t</title><publisher>p</publisher></book>
</dblp>`

func buildSingleDoc(t *testing.T, doc string, opts Options) (*storage.Store, *Index) {
	t.Helper()
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	n, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := st.AppendTree(n); err != nil {
		t.Fatalf("append: %v", err)
	}
	ix, err := Build(st, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return st, ix
}

func TestDepthLimitedIndexMatchesBruteForce(t *testing.T) {
	// The document's element depth is 4, so a limit of 3 forces
	// per-element subpattern enumeration (Algorithm 1's else branch).
	st, ix := buildSingleDoc(t, deepDoc, Options{DepthLimit: 3})
	root, err := xmltree.ParseString(deepDoc)
	if err != nil {
		t.Fatal(err)
	}
	wantEntries := root.CountElements()
	if ix.Entries() != wantEntries {
		t.Fatalf("entries = %d, want one per element = %d", ix.Entries(), wantEntries)
	}
	queries := []string{
		"//article",
		"//article[number]/author",
		"//inproceedings[url]/title",
		"//proceedings[booktitle]/title[sup][i]",
		"//title/i",
		"//article/author/title", // no results
	}
	for _, qs := range queries {
		q := xpath.MustParse(qs)
		_, wantResults := bruteCount(t, st, q)
		res, err := ix.Query(q)
		if err != nil {
			t.Fatalf("%s: Query: %v", qs, err)
		}
		if res.Count != wantResults {
			t.Errorf("%s: count = %d, want %d (candidates=%d matched=%d)",
				qs, res.Count, wantResults, res.Candidates, res.Matched)
		}
	}
}

func TestDepthCoverage(t *testing.T) {
	_, ix := buildSingleDoc(t, deepDoc, Options{DepthLimit: 2})
	q := xpath.MustParse("//proceedings[booktitle]/title[sup][i]") // depth 3
	if ix.Covered(q) {
		t.Error("depth-3 query reported covered by depth-2 index")
	}
	if _, err := ix.Query(q); err == nil {
		t.Error("Query should fail for an uncovered query")
	}
	q2 := xpath.MustParse("//article/author")
	if !ix.Covered(q2) {
		t.Error("depth-2 query reported uncovered by depth-2 index")
	}
}

func TestValueIndexEqualityPredicates(t *testing.T) {
	st, ix := buildSingleDoc(t, deepDoc, Options{DepthLimit: 4, Values: true, Beta: 8})
	queries := []string{
		`//book[publisher="p"]/title`,
		`//book[publisher="nope"]/title`,
		`//article[author="a1"]`,
		`//article[author="a3"]/title`,
	}
	for _, qs := range queries {
		q := xpath.MustParse(qs)
		_, wantResults := bruteCount(t, st, q)
		res, err := ix.Query(q)
		if err != nil {
			t.Fatalf("%s: Query: %v", qs, err)
		}
		if res.Count != wantResults {
			t.Errorf("%s: count = %d, want %d", qs, res.Count, wantResults)
		}
	}
}

func TestDescendantDecompositionQuery(t *testing.T) {
	st, ix := buildCollection(t, bibDocs, Options{})
	q := xpath.MustParse("//article[.//email]/title")
	wantDocs, wantResults := bruteCount(t, st, q)
	res, err := ix.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Matched != wantDocs || res.Count != wantResults {
		t.Errorf("got matched=%d count=%d, want %d/%d", res.Matched, res.Count, wantDocs, wantResults)
	}
}
