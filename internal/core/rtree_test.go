package core

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// TestRTreeCandidatesMatchBTree checks the §8 R-tree variant returns
// exactly the B-tree's candidate set on random workloads.
func TestRTreeCandidatesMatchBTree(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	labels := []string{"a", "b", "c", "d"}
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		t.Fatal(err)
	}
	root := xmltree.Elem("root")
	for i := 0; i < 40; i++ {
		root.Children = append(root.Children, randomPropDoc(rng, labels, 5))
	}
	if _, err := st.AppendTree(root); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(st, Options{DepthLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := ix.BuildFeatureRTree()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != ix.Entries() {
		t.Fatalf("rtree holds %d entries, index has %d", rt.Len(), ix.Entries())
	}
	for qn := 0; qn < 40; qn++ {
		qs := randomPropQuery(rng, labels, 3, 3)
		q := xpath.MustParse(qs)
		bt, _, err := ix.Candidates(q)
		if err != nil {
			t.Fatal(err)
		}
		rtc, err := rt.Candidates(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(bt) != len(rtc) {
			t.Fatalf("%s: btree %d candidates, rtree %d", qs, len(bt), len(rtc))
		}
		a := make([]uint64, len(bt))
		b := make([]uint64, len(rtc))
		for i := range bt {
			a[i] = uint64(bt[i].Primary)
			b[i] = uint64(rtc[i].Primary)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: candidate sets differ at %d", qs, i)
			}
		}
	}
}

func TestRTreeOversizeEntriesAlwaysCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	labels := []string{"a", "b", "c"}
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		t.Fatal(err)
	}
	root := xmltree.Elem("root")
	for i := 0; i < 15; i++ {
		root.Children = append(root.Children, randomPropDoc(rng, labels, 4))
	}
	if _, err := st.AppendTree(root); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(st, Options{DepthLimit: 3, EdgeBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ix.OversizeEntries() == 0 {
		t.Skip("no oversize entries generated")
	}
	rt, err := ix.BuildFeatureRTree()
	if err != nil {
		t.Fatal(err)
	}
	q := xpath.MustParse("//a[b][c]")
	bt, _, err := ix.Candidates(q)
	if err != nil {
		t.Fatal(err)
	}
	rtc, err := rt.Candidates(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(bt) != len(rtc) {
		t.Fatalf("btree %d candidates, rtree %d", len(bt), len(rtc))
	}
}
