package core

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
)

// replayParseLimits disables every parse bound for recovery. The logged
// bytes were already validated against the DB's configured limits when
// the operation was acknowledged, and those limits live only in memory
// (they are not persisted), so re-parsing under the defaults could
// reject a document admitted under looser custom limits and leave the
// database unopenable.
var replayParseLimits = xmltree.ParseLimits{
	MaxDepth:      -1,
	MaxTokenBytes: -1,
	MaxChildren:   -1,
	MaxNodes:      -1,
	MaxBytes:      -1,
}

// ReplayIngest re-applies the acknowledged operations of an ingest log
// to a store that has been truncated back to the log's base. Inserts are
// re-parsed and re-appended — the dictionary already holds every label
// the original appends assigned (it is saved before the log is created),
// so the encoding is deterministic and each append must land on exactly
// the record number the log recorded; a mismatch means the heap and the
// log disagree about the base and replay fails loudly rather than
// acknowledge the wrong documents. Deletes re-tombstone their records.
//
// ix may be nil (no index built yet). A healthy index absorbs the
// replayed operations in place; if an operation cannot be indexed
// (ErrRebuildRequired, or any mid-insert failure that could leave
// partial entries) the index degrades and replay continues — the
// documents' durability never depends on the index, only on the heap,
// and a degraded index still answers exactly through the scan fallback.
//
// It returns the number of operations replayed.
func ReplayIngest(st *storage.Store, ix *Index, ops []IngestOp) (int, error) {
	for i, op := range ops {
		switch op.Kind {
		case IngestOpInsert:
			n, err := xmltree.ParseWithLimits(bytes.NewReader(op.XML), replayParseLimits)
			if err != nil {
				return i, fmt.Errorf("core: replaying ingest op %d: document no longer parses: %w", i, err)
			}
			rec, err := st.AppendTree(n)
			if err != nil {
				return i, fmt.Errorf("core: replaying ingest op %d: %w", i, err)
			}
			if rec != op.Rec {
				return i, fmt.Errorf("core: replaying ingest op %d: append produced record %d, log says %d", i, rec, op.Rec)
			}
			if ix != nil && ix.Health() == nil {
				if err := ix.InsertDocument(rec); err != nil {
					if !errors.Is(err, ErrRebuildRequired) {
						err = fmt.Errorf("replayed insert of record %d failed: %w", rec, err)
					}
					ix.Degrade(err)
				}
			}
		case IngestOpDelete:
			if _, err := st.MarkDeleted(op.Rec); err != nil {
				return i, fmt.Errorf("core: replaying ingest op %d: %w", i, err)
			}
			if ix != nil && ix.Health() == nil {
				if _, err := ix.DeleteDocument(op.Rec); err != nil {
					ix.Degrade(fmt.Errorf("replayed delete of record %d failed: %w", op.Rec, err))
				}
			}
		default:
			return i, fmt.Errorf("core: replaying ingest op %d: unknown kind %d", i, op.Kind)
		}
	}
	return len(ops), nil
}
