package core

import (
	"testing"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xpath"
)

// TestPaperBoundFalseNegativeDemonstration pins down the completeness gap
// in the scheme as published (and why PaperPruning is not the default).
// The query //b[a[c]][a] matches <b><a><c/></a></b>: the single a[c]
// child witnesses both predicates, so the match maps two query nodes onto
// one document node. The query's pattern graph then has more edges than
// the document's, its σmax is strictly larger, and the paper's
// containment test prunes the true match. Canonicalization (which
// rewrites [a[c]][a] to [a[c]] — an exact transformation) restores
// completeness for this shape; the default sound bound is complete for
// every shape.
func TestPaperBoundFalseNegativeDemonstration(t *testing.T) {
	docs := []string{
		`<b><a><c/></a></b>`,
		// Padding documents so pruning has something to do.
		`<b><a/></b>`,
		`<b><c/></b>`,
	}
	q := xpath.MustParse("//b[a[c]][a]")

	_, sound := buildCollection(t, docs, Options{})
	res, err := sound.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 || res.Matched != 1 {
		t.Fatalf("sound bound lost the match: %+v", res)
	}

	// The canonicalized paper bound also finds it ([a] is subsumed).
	_, paper := buildCollection(t, docs, Options{PaperPruning: true})
	res, err = paper.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != 1 {
		t.Fatalf("canonicalized paper bound lost the match: %+v", res)
	}

	// Demonstrate the raw flaw without canonicalization: compute the
	// uncanonicalized pattern's features and show they exceed the
	// document's, i.e. the containment test of Algorithm 2 would prune
	// the only true match.
	pn, ok := paper.resolve(q.Tree(), nil)
	if !ok {
		t.Fatal("resolve failed")
	}
	g, err := patternGraph(pn) // NOT canonicalized
	if err != nil {
		t.Fatal(err)
	}
	qf, ok, err := graphFeatures(g, paper.enc, false)
	if err != nil || !ok {
		t.Fatalf("features: %v %v", ok, err)
	}
	var docMax float64
	err = paper.bt.Scan(nil, nil, func(k, v []byte) bool {
		ek := decodeKey(k)
		if storage.Pointer(decodeValue(v).primary).Rec() == 0 { // the matching document
			docMax = ek.max
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if qf.Max <= docMax {
		t.Fatalf("expected the uncanonicalized query bound (%v) to exceed the matching document's (%v)",
			qf.Max, docMax)
	}
}

// TestCanonicalizationSubsumption checks the exact rewriting rules.
func TestCanonicalizationSubsumption(t *testing.T) {
	_, ix := buildCollection(t, bibDocs, Options{})
	cases := []struct {
		query string
		nodes int // canonical pattern size
	}{
		{"//article[author][author]", 2},               // identical branches merge
		{"//article[author[email]][author]", 3},        // subsumed branch dropped
		{"//article[author[email]][author[phone]]", 3}, // incomparable: keep one
	}
	for _, c := range cases {
		pn, ok := ix.resolve(xpath.MustParse(c.query).Tree(), nil)
		if !ok {
			t.Fatalf("%s: resolve failed", c.query)
		}
		canonicalize(pn)
		if got := pn.size(); got != c.nodes {
			t.Errorf("%s: canonical size = %d, want %d", c.query, got, c.nodes)
		}
	}
}

func TestSoundBoundNeverExceedsPaperBound(t *testing.T) {
	_, ix := buildCollection(t, bibDocs, Options{})
	for _, qs := range []string{
		"//article[author]/title",
		"//author[email][affiliation]",
		"//book/author/phone",
	} {
		pn, ok := ix.resolve(xpath.MustParse(qs).Tree(), nil)
		if !ok {
			t.Fatalf("%s: resolve failed", qs)
		}
		canonicalize(pn)
		g, err := patternGraph(pn)
		if err != nil {
			t.Fatal(err)
		}
		paper, ok, err := graphFeatures(g, ix.enc, false)
		if err != nil || !ok {
			t.Fatalf("%s: %v %v", qs, ok, err)
		}
		sound, _, ok, err := ix.soundFeatures(pn, g)
		if err != nil || !ok {
			t.Fatalf("%s: %v %v", qs, ok, err)
		}
		if sound.Max > paper.Max+1e-9 {
			t.Errorf("%s: sound bound %v exceeds paper bound %v", qs, sound.Max, paper.Max)
		}
	}
}
