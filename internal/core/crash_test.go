package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fix-index/fix/internal/btree"
	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// faultFS routes the index's own file I/O through pl, so a test can
// crash Build/Save at any chosen write operation.
func faultFS(pl *storage.FaultPlan) *indexFS {
	return &indexFS{
		create: func(path string) (storage.File, error) {
			f, err := storage.Create(path)
			if err != nil {
				return nil, err
			}
			return pl.Wrap(f), nil
		},
		open: func(path string) (storage.File, error) {
			f, err := storage.Open(path)
			if err != nil {
				return nil, err
			}
			return pl.Wrap(f), nil
		},
	}
}

func memStoreFromDocs(t *testing.T, docs []string) *storage.Store {
	t.Helper()
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range docs {
		n, err := xmltree.ParseString(d)
		if err != nil {
			t.Fatalf("parsing doc %d: %v", i, err)
		}
		if _, err := st.AppendTree(n); err != nil {
			t.Fatalf("appending doc %d: %v", i, err)
		}
	}
	return st
}

// oracleCounts answers the queries by full navigational scan — the
// ground truth every post-crash state must reproduce. Tombstoned
// records are not part of the collection, so the oracle skips them.
func oracleCounts(t *testing.T, st *storage.Store, queries []string) map[string]int {
	t.Helper()
	out := make(map[string]int, len(queries))
	for _, qs := range queries {
		nq, err := nok.Compile(xpath.MustParse(qs).Tree(), st.Dict())
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for rec := 0; rec < st.NumRecords(); rec++ {
			if st.IsDeleted(uint32(rec)) {
				continue
			}
			cur, err := st.Cursor(uint32(rec))
			if err != nil {
				t.Fatal(err)
			}
			total += nq.Count(cur, 0)
		}
		out[qs] = total
	}
	return out
}

func checkOracle(t *testing.T, ix *Index, oracle map[string]int, ctx string) {
	t.Helper()
	for qs, want := range oracle {
		res, err := ix.Query(xpath.MustParse(qs))
		if err != nil {
			t.Fatalf("%s: query %s: %v", ctx, qs, err)
		}
		if res.Count != want {
			t.Errorf("%s: query %s = %d, oracle says %d", ctx, qs, res.Count, want)
		}
	}
}

// crashQueries stay within depth 2 so every index variant covers them.
var crashQueries = []string{
	"//title",
	"//author[email]",
	"//author[address]",
	"//article[author]",
}

// TestCrashPointRecovery drives Build+Save into a simulated crash at
// every write operation (plain and torn), then reopens the directory and
// requires one of exactly two outcomes: the commit never happened (no
// fix.meta, so the database layer would scan) or Open succeeds — replayed
// from the journal or degraded with a detected fault — and every query
// still matches the full-scan oracle.
func TestCrashPointRecovery(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"unclustered", Options{}},
		{"clustered", Options{Clustered: true}},
		{"depth2", Options{DepthLimit: 2}},
		{"values", Options{Values: true, Beta: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := memStoreFromDocs(t, bibDocs)
			oracle := oracleCounts(t, st, crashQueries)

			// Dry run to learn the deterministic write-op count.
			dry := &storage.FaultPlan{}
			opts := tc.opts
			opts.Dir = t.TempDir()
			opts.fs = faultFS(dry)
			ix, err := Build(st, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ix.Save(); err != nil {
				t.Fatal(err)
			}
			total := dry.Writes()
			if total < 4 {
				t.Fatalf("implausible write-op count %d", total)
			}

			for n := 1; n <= total; n++ {
				for _, torn := range []bool{false, true} {
					pl := &storage.FaultPlan{FailWrite: n, Torn: torn}
					o := tc.opts
					o.Dir = t.TempDir()
					o.fs = faultFS(pl)
					ix, err := Build(st, o)
					if err == nil {
						err = ix.Save()
					}
					if err == nil {
						t.Fatalf("write %d (torn=%t): expected an injected failure", n, torn)
					}
					if !errors.Is(err, storage.ErrInjected) {
						t.Fatalf("write %d (torn=%t): unexpected error: %v", n, torn, err)
					}

					// "Reboot": recover, then open whatever is on disk.
					if err := Recover(o.Dir); err != nil {
						t.Fatalf("write %d (torn=%t): recover: %v", n, torn, err)
					}
					if _, err := os.Stat(filepath.Join(o.Dir, "fix.meta")); os.IsNotExist(err) {
						// The commit never became durable: there is no
						// index, and the database layer scans. Correct by
						// construction.
						continue
					}
					re, err := Open(st, o.Dir)
					if err != nil {
						t.Fatalf("write %d (torn=%t): reopen: %v", n, torn, err)
					}
					checkOracle(t, re, oracle, re.opts.Dir)
					if re.Health() == nil {
						if err := re.Verify(); err != nil {
							t.Errorf("write %d (torn=%t): healthy index fails verify: %v", n, torn, err)
						}
					}
				}
			}
		})
	}
}

// TestCrashDuringIncrementalSave crashes the Save that follows an
// incremental InsertDocument on an already-committed index. Whatever the
// crash point, reopening must answer queries over the grown store
// correctly: either the journal replays the new commit, or the old index
// is detected as stale and queries fall back to scanning.
func TestCrashDuringIncrementalSave(t *testing.T) {
	const newDoc = `<article><author><email>zz</email><address>q</address></author></article>`

	build := func(pl *storage.FaultPlan) (*storage.Store, *Index, string) {
		st := memStoreFromDocs(t, bibDocs)
		o := Options{Dir: t.TempDir(), fs: faultFS(pl)}
		ix, err := Build(st, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Save(); err != nil {
			t.Fatal(err)
		}
		return st, ix, o.Dir
	}
	addDoc := func(st *storage.Store, ix *Index) error {
		n, err := xmltree.ParseString(newDoc)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := st.AppendTree(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.InsertDocument(rec); err != nil {
			return err
		}
		return ix.Save()
	}

	// Dry run: find the write-op window of the incremental phase.
	dry := &storage.FaultPlan{}
	st, ix, _ := build(dry)
	w1 := dry.Writes()
	if err := addDoc(st, ix); err != nil {
		t.Fatal(err)
	}
	w2 := dry.Writes()
	if w2 <= w1 {
		t.Fatalf("incremental save did no writes (%d..%d)", w1, w2)
	}
	oracle := oracleCounts(t, st, crashQueries)

	for n := w1 + 1; n <= w2; n++ {
		pl := &storage.FaultPlan{FailWrite: n, Torn: n%2 == 0}
		st, ix, dir := build(pl)
		if err := addDoc(st, ix); err == nil {
			t.Fatalf("write %d: expected an injected failure", n)
		} else if !errors.Is(err, storage.ErrInjected) {
			t.Fatalf("write %d: unexpected error: %v", n, err)
		}
		re, err := Open(st, dir)
		if err != nil {
			t.Fatalf("write %d: reopen: %v", n, err)
		}
		checkOracle(t, re, oracle, dir)
	}
}

// TestCrashDuringDelete drives DeleteDocument+Save into a simulated
// crash at every write operation. The store keeps the tombstone (the
// ingest WAL restores it after a real reboot), so whatever the crash
// point the index must end in one of exactly two live states — it fully
// forgot the record, or it degraded but still answers via the scan
// fallback — and both the live index and a reopen of the on-disk commit
// must match the tombstone-aware oracle.
func TestCrashDuringDelete(t *testing.T) {
	const target = uint32(1)

	build := func(pl *storage.FaultPlan) (*storage.Store, *Index, string) {
		st := memStoreFromDocs(t, bibDocs)
		o := Options{Dir: t.TempDir(), fs: faultFS(pl)}
		ix, err := Build(st, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Save(); err != nil {
			t.Fatal(err)
		}
		return st, ix, o.Dir
	}
	// delDoc mirrors the database layer's apply path: tombstone the
	// store, drop the index entries, persist; an index error degrades.
	delDoc := func(st *storage.Store, ix *Index) error {
		if _, err := st.MarkDeleted(target); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.DeleteDocument(target); err != nil {
			ix.Degrade(err)
			return err
		}
		return ix.Save()
	}

	// Dry run: find the write-op window of the delete phase.
	dry := &storage.FaultPlan{}
	st, ix, _ := build(dry)
	w1 := dry.Writes()
	if err := delDoc(st, ix); err != nil {
		t.Fatal(err)
	}
	w2 := dry.Writes()
	if w2 <= w1 {
		t.Fatalf("delete+save did no writes (%d..%d)", w1, w2)
	}
	oracle := oracleCounts(t, st, crashQueries)
	if full := oracleCounts(t, memStoreFromDocs(t, bibDocs), crashQueries); oracle[crashQueries[0]] >= full[crashQueries[0]] {
		t.Fatalf("deleting record %d did not change the oracle; pick a better target", target)
	}

	for n := w1 + 1; n <= w2; n++ {
		for _, torn := range []bool{false, true} {
			pl := &storage.FaultPlan{FailWrite: n, Torn: torn}
			st, ix, dir := build(pl)
			err := delDoc(st, ix)
			if err == nil {
				t.Fatalf("write %d (torn=%t): expected an injected failure", n, torn)
			}
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("write %d (torn=%t): unexpected error: %v", n, torn, err)
			}

			// Live state: degraded-but-queryable or fully applied; both
			// must match the oracle (the scan fallback and the index
			// refinement each skip tombstoned records).
			checkOracle(t, ix, oracle, "live")
			if ix.Health() == nil {
				// A healthy live index must have genuinely forgotten the
				// record: an indexed query may not touch it.
				res, qerr := ix.Query(xpath.MustParse(crashQueries[0]))
				if qerr != nil {
					t.Fatalf("write %d (torn=%t): healthy query: %v", n, torn, qerr)
				}
				if res.Fallback {
					t.Errorf("write %d (torn=%t): healthy index fell back to scanning", n, torn)
				}
			}

			// "Reboot": the on-disk commit is either pre- or post-delete;
			// with the tombstone restored, both answer correctly.
			re, err := Open(st, dir)
			if err != nil {
				t.Fatalf("write %d (torn=%t): reopen: %v", n, torn, err)
			}
			checkOracle(t, re, oracle, "reopened")
		}
	}
}

// TestQueryCorruptPageScanFallback corrupts every non-meta B-tree page of
// a committed index and checks that queries still return exactly the
// oracle's answers via the scan fallback, that the health status reports
// the corruption, and that a rebuild restores indexed operation.
func TestQueryCorruptPageScanFallback(t *testing.T) {
	st := memStoreFromDocs(t, bibDocs)
	dir := t.TempDir()
	ix, err := Build(st, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	oracle := oracleCounts(t, st, crashQueries)

	path := filepath.Join(dir, "fix.btree")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := btree.DefaultPageSize + 100; off < len(buf); off += btree.DefaultPageSize {
		buf[off] ^= 0xFF
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(st, dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Health() != nil {
		t.Fatalf("expected a clean open (meta page intact), got %v", re.Health())
	}
	res, err := re.Query(xpath.MustParse(crashQueries[1]))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Error("query against corrupt pages did not report the scan fallback")
	}
	if res.Count != oracle[crashQueries[1]] {
		t.Errorf("fallback count %d, oracle %d", res.Count, oracle[crashQueries[1]])
	}
	health := re.Health()
	if health == nil || !errors.Is(health, ErrCorrupt) || !errors.Is(health, ErrDegraded) {
		t.Fatalf("health after corrupt read = %v, want ErrDegraded wrapping ErrCorrupt", health)
	}
	checkOracle(t, re, oracle, "degraded")
	if err := re.Verify(); err == nil {
		t.Error("Verify passed on a corrupt index")
	}
	if err := re.Save(); err == nil {
		t.Error("Save succeeded on a degraded index")
	}
	if err := re.InsertDocument(0); err == nil {
		t.Error("InsertDocument succeeded on a degraded index")
	}

	// Rebuild repairs: same options, fresh files.
	reopts := re.Options()
	ix2, err := Build(st, reopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix2.Save(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(st, dir)
	if err != nil {
		t.Fatal(err)
	}
	if re2.Health() != nil {
		t.Fatalf("rebuilt index unhealthy: %v", re2.Health())
	}
	if err := re2.Verify(); err != nil {
		t.Fatalf("rebuilt index fails verify: %v", err)
	}
	res, err = re2.Query(xpath.MustParse(crashQueries[1]))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback {
		t.Error("rebuilt index still using the scan fallback")
	}
	checkOracle(t, re2, oracle, "rebuilt")
}

// TestStaleIndexDegrades grows the store after the index was committed
// (a crash between the heap append and the index save) and checks the
// reopened index refuses to serve potentially false-negative answers.
func TestStaleIndexDegrades(t *testing.T) {
	st := memStoreFromDocs(t, bibDocs)
	dir := t.TempDir()
	ix, err := Build(st, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	n, err := xmltree.ParseString(`<book><author><email>new</email></author></book>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendTree(n); err != nil {
		t.Fatal(err)
	}

	re, err := Open(st, dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Health() == nil {
		t.Fatal("stale index opened healthy")
	}
	oracle := oracleCounts(t, st, crashQueries)
	checkOracle(t, re, oracle, "stale")
	res, err := re.Query(xpath.MustParse("//author[email]"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback {
		t.Error("stale index did not fall back to scanning")
	}
}

// TestOpenRejectsInvalidMeta checks that damaged metadata fails loudly
// with a descriptive error instead of constructing a broken index.
func TestOpenRejectsInvalidMeta(t *testing.T) {
	st := memStoreFromDocs(t, bibDocs)
	dir := t.TempDir()
	ix, err := Build(st, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fix.meta")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ old, bad, want string }{
		{"depthlimit 0", "depthlimit -3", "depthlimit"},
		{"beta 10", "beta 0", "beta"},
		{"edgebudget 3000", "edgebudget -1", "edgebudget"},
		{"spectrumk 0", "spectrumk 99", "spectrumk"},
		{"alpha ", "alpha 4000000000x", "alpha"}, // see below: value replaced wholesale
	} {
		text := string(good)
		if tc.old == "alpha " {
			// Replace the whole alpha line with an out-of-range id.
			lines := strings.Split(text, "\n")
			for i, l := range lines {
				if strings.HasPrefix(l, "alpha ") {
					lines[i] = "alpha 4000000000"
				}
			}
			text = strings.Join(lines, "\n")
		} else {
			if !strings.Contains(text, tc.old) {
				t.Fatalf("meta does not contain %q:\n%s", tc.old, text)
			}
			text = strings.Replace(text, tc.old, tc.bad, 1)
		}
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(st, dir); err == nil {
			t.Errorf("%s: Open accepted invalid meta", tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the field", tc.want, err)
		}
	}
}
