package core

import (
	"strings"
	"testing"

	"github.com/fix-index/fix/internal/xpath"
)

func TestComputeMetrics(t *testing.T) {
	m := computeMetrics(100, 20, 10)
	if m.Sel != 0.9 || m.PP != 0.8 || m.FPR != 0.5 {
		t.Errorf("metrics = %+v", m)
	}
	zero := computeMetrics(0, 0, 0)
	if zero.Sel != 0 || zero.PP != 0 || zero.FPR != 0 {
		t.Errorf("zero metrics = %+v", zero)
	}
	s := m.String()
	for _, want := range []string{"sel=90.00%", "pp=80.00%", "fpr=50.00%", "ent=100"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestExistsShortCircuit(t *testing.T) {
	_, ix := buildCollection(t, bibDocs, Options{})
	ok, err := ix.Exists(xpath.MustParse("//author[email]"))
	if err != nil || !ok {
		t.Errorf("Exists = %v, %v", ok, err)
	}
	ok, err = ix.Exists(xpath.MustParse("//author[phone][affiliation]"))
	if err != nil || ok {
		t.Errorf("Exists(impossible) = %v, %v", ok, err)
	}
	ok, err = ix.Exists(xpath.MustParse("//nosuchlabel"))
	if err != nil || ok {
		t.Errorf("Exists(unknown label) = %v, %v", ok, err)
	}
}

func TestQueryFeaturesExposure(t *testing.T) {
	_, ix := buildCollection(t, bibDocs, Options{})
	f, ok, err := ix.QueryFeatures(xpath.MustParse("//article[author]/title"))
	if err != nil || !ok {
		t.Fatalf("QueryFeatures: %v %v", ok, err)
	}
	if f.Max <= 0 || f.Min != -f.Max {
		t.Errorf("features = %+v (skew spectra are symmetric)", f)
	}
	if _, ok, _ := ix.QueryFeatures(xpath.MustParse("//nosuchlabel")); ok {
		t.Error("unknown label produced features")
	}
}

func TestCoveredCollectionAlwaysTrue(t *testing.T) {
	_, ix := buildCollection(t, bibDocs, Options{})
	if !ix.Covered(xpath.MustParse("//a/b/c/d/e/f/g/h/i/j")) {
		t.Error("collection index should cover any depth")
	}
}

func TestBuildTimeAndSizes(t *testing.T) {
	_, ix := buildCollection(t, bibDocs, Options{Clustered: true})
	if ix.BuildTime() <= 0 {
		t.Error("BuildTime not positive")
	}
	if ix.SizeBytes() <= ix.BTree().Size() {
		t.Error("clustered index size should exceed the B-tree alone")
	}
	if ix.EdgePairs() == 0 {
		t.Error("no edge pairs assigned")
	}
	if ix.Store() == nil || ix.ClusteredStore() == nil {
		t.Error("store accessors nil")
	}
	if ix.MaxDocDepth() <= 0 {
		t.Error("MaxDocDepth not positive")
	}
}
