// Package core implements the FIX index itself: construction of feature
// keys from bisimulation graphs (paper §4), clustered and unclustered
// index layouts, query processing with eigenvalue-range pruning and NoK
// refinement (paper §5), the value-node extension (§4.6), and the
// implementation-independent metrics of the evaluation (§6.2).
package core

import (
	"encoding/binary"
	"math"
)

// Feature keys sort by (root label, λmax, λmin, sequence number). The
// containment search "entries with λmax_e >= λmax_q within a label
// partition" becomes a single range scan; λmin is filtered during the
// scan; the sequence number makes keys unique so equal features coexist.
const keySize = 4 + 8 + 8 + 8

// encodeFloat maps a float64 to 8 bytes whose lexicographic order matches
// numeric order (including negatives, ±Inf).
func encodeFloat(v float64) uint64 {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

// decodeFloat inverts encodeFloat.
func decodeFloat(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// entryKey is the decoded form of a B-tree key.
type entryKey struct {
	label    uint32
	max, min float64
	seq      uint64
}

func (k entryKey) encode() []byte {
	buf := make([]byte, keySize)
	binary.BigEndian.PutUint32(buf[0:4], k.label)
	binary.BigEndian.PutUint64(buf[4:12], encodeFloat(k.max))
	binary.BigEndian.PutUint64(buf[12:20], encodeFloat(k.min))
	binary.BigEndian.PutUint64(buf[20:28], k.seq)
	return buf
}

func decodeKey(buf []byte) entryKey {
	return entryKey{
		label: binary.BigEndian.Uint32(buf[0:4]),
		max:   decodeFloat(binary.BigEndian.Uint64(buf[4:12])),
		min:   decodeFloat(binary.BigEndian.Uint64(buf[12:20])),
		seq:   binary.BigEndian.Uint64(buf[20:28]),
	}
}

// scanBounds returns the [from, to) key range of the containment search
// for a query with the given root label and λmax: all entries of the
// label partition whose λmax is at least the query's.
func scanBounds(label uint32, queryMax float64) (from, to []byte) {
	from = make([]byte, 12)
	binary.BigEndian.PutUint32(from[0:4], label)
	binary.BigEndian.PutUint64(from[4:12], encodeFloat(queryMax))
	to = make([]byte, 4)
	binary.BigEndian.PutUint32(to[0:4], label+1)
	return from, to
}

// entryValue is the decoded form of a B-tree value:
//
//	byte 0          flags: bit 0 = clustered pointer present,
//	                bits 4-7 = number of stored spectrum components
//	bytes 1-8       primary pointer
//	[bytes 9-16]    clustered pointer
//	[k × 8 bytes]   σ₂..σ₍k+1₎ of the entry's pattern (σ₁ is the key's
//	                λmax), for the optional spectrum filter (§3.3)
type entryValue struct {
	primary   uint64
	clustered uint64
	hasCopy   bool
	spectrum  []float64
}

func (v entryValue) encode() []byte {
	size := 9
	flags := byte(len(v.spectrum)) << 4
	if v.hasCopy {
		flags |= 1
		size += 8
	}
	size += 8 * len(v.spectrum)
	buf := make([]byte, size)
	buf[0] = flags
	binary.BigEndian.PutUint64(buf[1:9], v.primary)
	pos := 9
	if v.hasCopy {
		binary.BigEndian.PutUint64(buf[pos:pos+8], v.clustered)
		pos += 8
	}
	for _, s := range v.spectrum {
		binary.BigEndian.PutUint64(buf[pos:pos+8], encodeFloat(s))
		pos += 8
	}
	return buf
}

func decodeValue(buf []byte) entryValue {
	var v entryValue
	if len(buf) < 9 {
		return v
	}
	flags := buf[0]
	v.hasCopy = flags&1 != 0
	k := int(flags >> 4)
	v.primary = binary.BigEndian.Uint64(buf[1:9])
	pos := 9
	if v.hasCopy {
		v.clustered = binary.BigEndian.Uint64(buf[pos : pos+8])
		pos += 8
	}
	for i := 0; i < k && pos+8 <= len(buf); i++ {
		v.spectrum = append(v.spectrum, decodeFloat(binary.BigEndian.Uint64(buf[pos:pos+8])))
		pos += 8
	}
	return v
}
