package core

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

func buildPersistent(t *testing.T, dir string, opts Options) (*storage.Store, *Index) {
	t.Helper()
	dict := xmltree.NewDict()
	hf, err := storage.Create(filepath.Join(dir, "data.heap"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.NewStore(hf, dict)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range bibDocs {
		n, err := xmltree.ParseString(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.AppendTree(n); err != nil {
			t.Fatal(err)
		}
	}
	opts.Dir = dir
	ix, err := Build(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, ix
}

func TestSaveOpenRoundTrip(t *testing.T) {
	for _, opts := range []Options{
		{},
		{Clustered: true},
		{Values: true, Beta: 4},
		{PaperPruning: true},
	} {
		dir := t.TempDir()
		st, ix := buildPersistent(t, dir, opts)
		q := xpath.MustParse("//author[email]")
		want, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Save(); err != nil {
			t.Fatal(err)
		}

		re, err := Open(st, dir)
		if err != nil {
			t.Fatalf("opts %+v: Open: %v", opts, err)
		}
		got, err := re.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("opts %+v: reopened query %+v, want %+v", opts, got, want)
		}
		if re.Entries() != ix.Entries() {
			t.Errorf("opts %+v: entries %d, want %d", opts, re.Entries(), ix.Entries())
		}
		ro := re.Options()
		if ro.Clustered != opts.Clustered || ro.Values != opts.Values || ro.PaperPruning != opts.PaperPruning {
			t.Errorf("opts round trip: got %+v, want %+v", ro, opts)
		}
	}
}

func TestOpenMissingDir(t *testing.T) {
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(st, filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("Open on missing dir succeeded")
	}
}

func TestOpenCorruptMeta(t *testing.T) {
	dir := t.TempDir()
	st, ix := buildPersistent(t, dir, Options{})
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fix.meta"), []byte("garbage 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(st, dir); err == nil {
		t.Error("Open on corrupt meta succeeded")
	}
}
