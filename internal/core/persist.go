package core

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/fix-index/fix/internal/btree"
	"github.com/fix-index/fix/internal/matrix"
	"github.com/fix-index/fix/internal/storage"
)

// On-disk index layout under Options.Dir:
//
//	fix.btree      B-tree of feature keys (checksummed 4 KiB pages)
//	fix.clustered  key-ordered subtree heap (clustered indexes only)
//	fix.edges      edge-label encoder
//	fix.meta       options and counters, line-oriented
//	fix.journal    shadow-commit journal, present only mid-Save or after
//	               a crash; see journal.go
//
// The primary store and label dictionary belong to the database layer and
// are persisted by it; the index only records the parameters needed to
// interpret its keys against them.

// metaVersion 2 adds the records field, which ties the committed index to
// the number of primary-store records it covers.
const metaVersion = 2

// encodeMeta renders the fix.meta payload.
func (ix *Index) encodeMeta() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "version %d\n", metaVersion)
	fmt.Fprintf(&b, "depthlimit %d\n", ix.opts.DepthLimit)
	fmt.Fprintf(&b, "clustered %t\n", ix.opts.Clustered)
	fmt.Fprintf(&b, "values %t\n", ix.opts.Values)
	fmt.Fprintf(&b, "beta %d\n", ix.opts.Beta)
	fmt.Fprintf(&b, "edgebudget %d\n", ix.opts.EdgeBudget)
	fmt.Fprintf(&b, "spectrumk %d\n", ix.opts.SpectrumK)
	fmt.Fprintf(&b, "paperpruning %t\n", ix.opts.PaperPruning)
	fmt.Fprintf(&b, "norootlabel %t\n", ix.opts.NoRootLabel)
	fmt.Fprintf(&b, "alpha %d\n", ix.vh.alpha)
	fmt.Fprintf(&b, "seq %d\n", ix.seq)
	fmt.Fprintf(&b, "oversize %d\n", ix.oversize)
	fmt.Fprintf(&b, "maxdocdepth %d\n", ix.maxDocDepth)
	fmt.Fprintf(&b, "records %d\n", ix.store.NumRecords())
	return b.Bytes()
}

// Save commits the index durably using the shadow-commit protocol: the
// dirty B-tree pages and the new fix.meta/fix.edges contents are first
// written and fsynced to fix.journal, then applied to the real files, and
// the journal is removed. A crash at any point leaves a state that Open
// (via Recover) resolves to exactly the previous or the new commit. For
// in-memory indexes (empty Dir) Save reduces to a flush.
func (ix *Index) Save() error {
	if err := ix.Health(); err != nil {
		return fmt.Errorf("core: refusing to save a degraded index: %w", err)
	}
	if ix.opts.Dir == "" {
		if err := ix.bt.Flush(); err != nil {
			return err
		}
		if ix.clustered != nil {
			return ix.clustered.Sync()
		}
		return nil
	}
	// The clustered heap is append-only and not journaled; sync it first
	// so every subtree copy the new commit references is durable before
	// the commit point.
	if ix.clustered != nil {
		if err := ix.clustered.Sync(); err != nil {
			return err
		}
	}
	pages, err := ix.bt.DirtyPages()
	if err != nil {
		return err
	}
	var eb bytes.Buffer
	if _, err := ix.enc.WriteTo(&eb); err != nil {
		return err
	}
	j := journal{
		pageSize: ix.bt.PageSize(),
		pages:    pages,
		meta:     ix.encodeMeta(),
		edges:    eb.Bytes(),
	}
	fsys := ix.opts.filesystem()
	jpath := filepath.Join(ix.opts.Dir, journalName)
	jf, err := fsys.create(jpath)
	if err != nil {
		return err
	}
	if _, err := jf.WriteAt(j.encode(), 0); err != nil {
		_ = jf.Close()
		return err
	}
	if err := jf.Sync(); err != nil { // commit point
		_ = jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	// Apply. Any failure from here on leaves the valid journal in place;
	// the next Open replays it.
	if err := ix.bt.Flush(); err != nil {
		return err
	}
	if err := atomicWrite(fsys, filepath.Join(ix.opts.Dir, "fix.edges"), j.edges); err != nil {
		return err
	}
	if err := atomicWrite(fsys, filepath.Join(ix.opts.Dir, "fix.meta"), j.meta); err != nil {
		return err
	}
	return os.Remove(jpath)
}

// Open loads a persisted index from dir and attaches it to the primary
// store it was built over. The store must carry the same dictionary as at
// build time (the database layer guarantees this).
//
// Open first lets Recover resolve any half-finished commit, then
// validates the metadata. Detectable damage that does not compromise
// query correctness — a corrupt B-tree, a damaged clustered heap, or an
// index that is stale relative to the store — degrades the index instead
// of failing: Health reports the cause and queries fall back to a full
// scan of the primary store until RebuildIndex runs.
func Open(st *storage.Store, dir string) (*Index, error) {
	if err := Recover(dir); err != nil {
		return nil, err
	}
	mf, err := os.Open(filepath.Join(dir, "fix.meta"))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	ix := &Index{store: st, dict: st.Dict()}
	ix.opts.Dir = dir
	var version int
	var alpha uint32
	var records int
	r := bufio.NewReader(mf)
	readField := func(name string, dst interface{}) error {
		var got string
		if _, err := fmt.Fscan(r, &got, dst); err != nil {
			return fmt.Errorf("core: reading meta field %s: %w", name, err)
		}
		if got != name {
			return fmt.Errorf("core: meta field %q, want %q", got, name)
		}
		return nil
	}
	if err := readField("version", &version); err != nil {
		return nil, err
	}
	if version != metaVersion {
		return nil, fmt.Errorf("core: unsupported index version %d (want %d)", version, metaVersion)
	}
	fields := []struct {
		name string
		dst  interface{}
	}{
		{"depthlimit", &ix.opts.DepthLimit},
		{"clustered", &ix.opts.Clustered},
		{"values", &ix.opts.Values},
		{"beta", &ix.opts.Beta},
		{"edgebudget", &ix.opts.EdgeBudget},
		{"spectrumk", &ix.opts.SpectrumK},
		{"paperpruning", &ix.opts.PaperPruning},
		{"norootlabel", &ix.opts.NoRootLabel},
		{"alpha", &alpha},
		{"seq", &ix.seq},
		{"oversize", &ix.oversize},
		{"maxdocdepth", &ix.maxDocDepth},
		{"records", &records},
	}
	for _, f := range fields {
		if err := readField(f.name, f.dst); err != nil {
			return nil, err
		}
	}
	if err := validateMeta(ix, alpha, records); err != nil {
		return nil, err
	}
	ix.vh = valueHasher{alpha: alpha, beta: ix.opts.Beta}

	ef, err := os.Open(filepath.Join(dir, "fix.edges"))
	if err != nil {
		return nil, err
	}
	ix.enc, err = matrix.ReadEdgeEncoder(ef)
	_ = ef.Close()
	if err != nil {
		return nil, err
	}

	// A store that grew or shrank since the commit means the index no
	// longer covers it: entries could dangle, and newer documents would be
	// invisible to the range scan (a false negative). Degrade rather than
	// serve wrong answers.
	if records != st.NumRecords() {
		ix.setHealth(fmt.Errorf("index covers %d records but the store holds %d", records, st.NumRecords()))
	}

	bf, err := storage.Open(filepath.Join(dir, "fix.btree"))
	if err != nil {
		if os.IsNotExist(err) {
			ix.setHealth(fmt.Errorf("%w: fix.btree is missing", ErrCorrupt))
			return ix, nil
		}
		return nil, err
	}
	bt, err := btree.Open(bf, ix.opts.CacheSize)
	if err != nil {
		_ = bf.Close()
		if errors.Is(err, ErrCorrupt) {
			ix.setHealth(err)
			return ix, nil
		}
		return nil, err
	}
	ix.bt = bt
	if ix.opts.Clustered {
		if err := ix.openClustered(dir); err != nil {
			// Clustered copies are an optimization; refinement falls back
			// to the primary pointers each entry also carries.
			ix.clustered = nil
			ix.setHealth(err)
		}
	}
	return ix, nil
}

func (ix *Index) openClustered(dir string) error {
	cf, err := storage.Open(filepath.Join(dir, "fix.clustered"))
	if err != nil {
		return err
	}
	ix.clustered, err = storage.OpenStore(cf, ix.dict)
	if err != nil {
		_ = cf.Close()
	}
	return err
}

// validateMeta rejects metadata that cannot describe a working index, so
// a damaged or hand-edited fix.meta fails loudly instead of constructing
// an index that misbehaves later.
func validateMeta(ix *Index, alpha uint32, records int) error {
	if ix.opts.DepthLimit < 0 {
		return fmt.Errorf("core: invalid meta: depthlimit %d is negative", ix.opts.DepthLimit)
	}
	if ix.opts.Beta == 0 {
		return fmt.Errorf("core: invalid meta: beta must be positive")
	}
	if ix.opts.EdgeBudget < 0 {
		return fmt.Errorf("core: invalid meta: edgebudget %d is negative", ix.opts.EdgeBudget)
	}
	if ix.opts.SpectrumK < 0 || ix.opts.SpectrumK > 8 {
		return fmt.Errorf("core: invalid meta: spectrumk %d outside [0, 8]", ix.opts.SpectrumK)
	}
	if alpha > ix.dict.MaxID() {
		return fmt.Errorf("core: invalid meta: alpha %d exceeds the dictionary's max label id %d", alpha, ix.dict.MaxID())
	}
	if records < 0 {
		return fmt.Errorf("core: invalid meta: records %d is negative", records)
	}
	return nil
}
