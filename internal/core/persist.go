package core

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"github.com/fix-index/fix/internal/btree"
	"github.com/fix-index/fix/internal/matrix"
	"github.com/fix-index/fix/internal/storage"
)

// On-disk index layout under Options.Dir:
//
//	fix.btree      B-tree of feature keys
//	fix.clustered  key-ordered subtree heap (clustered indexes only)
//	fix.edges      edge-label encoder
//	fix.meta       options and counters, line-oriented
//
// The primary store and label dictionary belong to the database layer and
// are persisted by it; the index only records the parameters needed to
// interpret its keys against them.

const metaVersion = 1

// Save persists the index metadata and flushes the B-tree. It is a no-op
// beyond the flush for in-memory indexes (empty Dir).
func (ix *Index) Save() error {
	if err := ix.bt.Flush(); err != nil {
		return err
	}
	if ix.clustered != nil {
		if err := ix.clustered.Sync(); err != nil {
			return err
		}
	}
	if ix.opts.Dir == "" {
		return nil
	}
	ef, err := os.Create(filepath.Join(ix.opts.Dir, "fix.edges"))
	if err != nil {
		return err
	}
	if _, err := ix.enc.WriteTo(ef); err != nil {
		ef.Close()
		return err
	}
	if err := ef.Close(); err != nil {
		return err
	}
	mf, err := os.Create(filepath.Join(ix.opts.Dir, "fix.meta"))
	if err != nil {
		return err
	}
	w := bufio.NewWriter(mf)
	fmt.Fprintf(w, "version %d\n", metaVersion)
	fmt.Fprintf(w, "depthlimit %d\n", ix.opts.DepthLimit)
	fmt.Fprintf(w, "clustered %t\n", ix.opts.Clustered)
	fmt.Fprintf(w, "values %t\n", ix.opts.Values)
	fmt.Fprintf(w, "beta %d\n", ix.opts.Beta)
	fmt.Fprintf(w, "edgebudget %d\n", ix.opts.EdgeBudget)
	fmt.Fprintf(w, "spectrumk %d\n", ix.opts.SpectrumK)
	fmt.Fprintf(w, "paperpruning %t\n", ix.opts.PaperPruning)
	fmt.Fprintf(w, "norootlabel %t\n", ix.opts.NoRootLabel)
	fmt.Fprintf(w, "alpha %d\n", ix.vh.alpha)
	fmt.Fprintf(w, "seq %d\n", ix.seq)
	fmt.Fprintf(w, "oversize %d\n", ix.oversize)
	fmt.Fprintf(w, "maxdocdepth %d\n", ix.maxDocDepth)
	if err := w.Flush(); err != nil {
		mf.Close()
		return err
	}
	return mf.Close()
}

// Open loads a persisted index from dir and attaches it to the primary
// store it was built over. The store must carry the same dictionary as at
// build time (the database layer guarantees this).
func Open(st *storage.Store, dir string) (*Index, error) {
	mf, err := os.Open(filepath.Join(dir, "fix.meta"))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	ix := &Index{store: st, dict: st.Dict()}
	ix.opts.Dir = dir
	var version int
	var alpha uint32
	r := bufio.NewReader(mf)
	fields := []struct {
		name string
		dst  interface{}
	}{
		{"version", &version},
		{"depthlimit", &ix.opts.DepthLimit},
		{"clustered", &ix.opts.Clustered},
		{"values", &ix.opts.Values},
		{"beta", &ix.opts.Beta},
		{"edgebudget", &ix.opts.EdgeBudget},
		{"spectrumk", &ix.opts.SpectrumK},
		{"paperpruning", &ix.opts.PaperPruning},
		{"norootlabel", &ix.opts.NoRootLabel},
		{"alpha", &alpha},
		{"seq", &ix.seq},
		{"oversize", &ix.oversize},
		{"maxdocdepth", &ix.maxDocDepth},
	}
	for _, f := range fields {
		var name string
		if _, err := fmt.Fscan(r, &name, f.dst); err != nil {
			return nil, fmt.Errorf("core: reading meta field %s: %w", f.name, err)
		}
		if name != f.name {
			return nil, fmt.Errorf("core: meta field %q, want %q", name, f.name)
		}
	}
	if version != metaVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", version)
	}
	ix.vh = valueHasher{alpha: alpha, beta: ix.opts.Beta}

	ef, err := os.Open(filepath.Join(dir, "fix.edges"))
	if err != nil {
		return nil, err
	}
	ix.enc, err = matrix.ReadEdgeEncoder(ef)
	ef.Close()
	if err != nil {
		return nil, err
	}

	bf, err := storage.Open(filepath.Join(dir, "fix.btree"))
	if err != nil {
		return nil, err
	}
	ix.bt, err = btree.Open(bf, ix.opts.CacheSize)
	if err != nil {
		return nil, err
	}
	if ix.opts.Clustered {
		cf, err := storage.Open(filepath.Join(dir, "fix.clustered"))
		if err != nil {
			return nil, err
		}
		ix.clustered, err = storage.OpenStore(cf, ix.dict)
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}
