package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// These tests check the index's central guarantee on randomized inputs:
// no false negatives (Theorems 2, 3, 5). Every document/element that the
// bare navigational matcher finds must survive the feature filter.

func randomPropDoc(rng *rand.Rand, labels []string, depth int) *xmltree.Node {
	var build func(d int) *xmltree.Node
	build = func(d int) *xmltree.Node {
		n := xmltree.Elem(labels[rng.Intn(len(labels))])
		if d <= 0 {
			return n
		}
		kids := rng.Intn(4)
		for i := 0; i < kids; i++ {
			n.Children = append(n.Children, build(d-rng.Intn(2)-1))
		}
		return n
	}
	return build(depth)
}

func randomPropQuery(rng *rand.Rand, labels []string, depth, branch int) string {
	var build func(d int) string
	build = func(d int) string {
		s := labels[rng.Intn(len(labels))]
		if d <= 1 {
			return s
		}
		for i := rng.Intn(branch); i > 0; i-- {
			s += "[" + build(d-1) + "]"
		}
		return s
	}
	return "//" + build(depth)
}

func TestNoFalseNegativesCollection(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	labels := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 10; trial++ {
		dict := xmltree.NewDict()
		st, err := storage.NewStore(storage.NewMemFile(), dict)
		if err != nil {
			t.Fatal(err)
		}
		const numDocs = 40
		for i := 0; i < numDocs; i++ {
			if _, err := st.AppendTree(randomPropDoc(rng, labels, 4)); err != nil {
				t.Fatal(err)
			}
		}
		ix, err := Build(st, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for qn := 0; qn < 30; qn++ {
			qs := randomPropQuery(rng, labels, 3, 3)
			q := xpath.MustParse(qs)
			wantDocs, wantCount := bruteCount(t, st, q)
			res, err := ix.Query(q)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, qs, err)
			}
			if res.Matched != wantDocs || res.Count != wantCount {
				t.Fatalf("trial %d %s: got %d/%d, want %d/%d",
					trial, qs, res.Matched, res.Count, wantDocs, wantCount)
			}
		}
	}
}

func TestNoFalseNegativesDepthLimited(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	labels := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 6; trial++ {
		dict := xmltree.NewDict()
		st, err := storage.NewStore(storage.NewMemFile(), dict)
		if err != nil {
			t.Fatal(err)
		}
		// One larger document.
		root := xmltree.Elem("root")
		for i := 0; i < 30; i++ {
			root.Children = append(root.Children, randomPropDoc(rng, labels, 5))
		}
		if _, err := st.AppendTree(root); err != nil {
			t.Fatal(err)
		}
		for _, depthLimit := range []int{3, 4} {
			ix, err := Build(st, Options{DepthLimit: depthLimit})
			if err != nil {
				t.Fatal(err)
			}
			for qn := 0; qn < 25; qn++ {
				qs := randomPropQuery(rng, labels, depthLimit, 3)
				q := xpath.MustParse(qs)
				if !ix.Covered(q) {
					continue
				}
				_, wantCount := bruteCount(t, st, q)
				res, err := ix.Query(q)
				if err != nil {
					t.Fatalf("trial %d L=%d %s: %v", trial, depthLimit, qs, err)
				}
				if res.Count != wantCount {
					t.Fatalf("trial %d L=%d %s: got %d, want %d (cand=%d)",
						trial, depthLimit, qs, res.Count, wantCount, res.Candidates)
				}
			}
		}
	}
}

func TestNoFalseNegativesWithValues(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	labels := []string{"a", "b", "c"}
	values := []string{"v1", "v2", "v3", "v4", "v5", "v6", "v7"}
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		t.Fatal(err)
	}
	root := xmltree.Elem("root")
	for i := 0; i < 50; i++ {
		d := randomPropDoc(rng, labels, 3)
		// Sprinkle text leaves.
		d.Walk(func(n *xmltree.Node) bool {
			if !n.IsText() && len(n.Children) == 0 && rng.Intn(2) == 0 {
				n.Children = append(n.Children, xmltree.Text(values[rng.Intn(len(values))]))
			}
			return true
		})
		root.Children = append(root.Children, d)
	}
	if _, err := st.AppendTree(root); err != nil {
		t.Fatal(err)
	}
	// A small beta forces hash collisions; completeness must survive
	// them (collisions only cost false positives).
	for _, beta := range []uint32{2, 16} {
		ix, err := Build(st, Options{DepthLimit: 4, Values: true, Beta: beta})
		if err != nil {
			t.Fatal(err)
		}
		for qn := 0; qn < 40; qn++ {
			label := labels[rng.Intn(len(labels))]
			val := values[rng.Intn(len(values))]
			qs := fmt.Sprintf(`//%s[%s=%q]`, label, labels[rng.Intn(len(labels))], val)
			q := xpath.MustParse(qs)
			_, wantCount := bruteCount(t, st, q)
			res, err := ix.Query(q)
			if err != nil {
				t.Fatalf("beta %d %s: %v", beta, qs, err)
			}
			if res.Count != wantCount {
				t.Fatalf("beta %d %s: got %d, want %d", beta, qs, res.Count, wantCount)
			}
		}
	}
}

func TestOversizeFallbackKeepsCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	labels := []string{"a", "b", "c", "d", "e", "f"}
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		t.Fatal(err)
	}
	root := xmltree.Elem("root")
	for i := 0; i < 20; i++ {
		root.Children = append(root.Children, randomPropDoc(rng, labels, 5))
	}
	if _, err := st.AppendTree(root); err != nil {
		t.Fatal(err)
	}
	// A tiny edge budget forces many oversize entries.
	ix, err := Build(st, Options{DepthLimit: 4, EdgeBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ix.OversizeEntries() == 0 {
		t.Fatal("expected oversize entries with budget 3")
	}
	for qn := 0; qn < 30; qn++ {
		qs := randomPropQuery(rng, labels, 3, 2)
		q := xpath.MustParse(qs)
		_, wantCount := bruteCount(t, st, q)
		res, err := ix.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if res.Count != wantCount {
			t.Fatalf("%s: got %d, want %d", qs, res.Count, wantCount)
		}
	}
}

func TestNoRootLabelStillCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	labels := []string{"a", "b", "c"}
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		t.Fatal(err)
	}
	root := xmltree.Elem("root")
	for i := 0; i < 25; i++ {
		root.Children = append(root.Children, randomPropDoc(rng, labels, 4))
	}
	if _, err := st.AppendTree(root); err != nil {
		t.Fatal(err)
	}
	with, err := Build(st, Options{DepthLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Build(st, Options{DepthLimit: 4, NoRootLabel: true})
	if err != nil {
		t.Fatal(err)
	}
	for qn := 0; qn < 25; qn++ {
		qs := randomPropQuery(rng, labels, 3, 3)
		q := xpath.MustParse(qs)
		a, err := with.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := without.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Count != b.Count {
			t.Fatalf("%s: with=%d without=%d", qs, a.Count, b.Count)
		}
		if b.Candidates < a.Candidates {
			t.Errorf("%s: label pruning increased candidates (%d -> %d)", qs, a.Candidates, b.Candidates)
		}
	}
}
