package core

import (
	"context"
	"fmt"
	"testing"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// parallelDocs returns a corpus spanning several pipeline batches, with
// new label pairs first appearing at varying records so the merge
// point's assignment order matters.
func parallelDocs(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		r, s, u := i%6, (i*3)%5, (i*7)%4
		out = append(out, fmt.Sprintf(
			`<r%d><s%d><leaf%d>v</leaf%d></s%d><u%d><s%d/></u%d></r%d>`,
			r, s, i%9, i%9, s, u, (s+1)%5, u, r))
	}
	return out
}

func newParallelStore(t *testing.T, docs []string) *storage.Store {
	t.Helper()
	st, err := storage.NewStore(storage.NewMemFile(), xmltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range docs {
		n, err := xmltree.ParseString(d)
		if err != nil {
			t.Fatalf("parsing doc %d: %v", i, err)
		}
		if _, err := st.AppendTree(n); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// entryDump flattens every B-tree entry to one comparable string.
func entryDump(t *testing.T, ix *Index) string {
	t.Helper()
	var buf []byte
	err := ix.bt.Scan(nil, nil, func(k, v []byte) bool {
		buf = append(buf, k...)
		buf = append(buf, 0xFF)
		buf = append(buf, v...)
		buf = append(buf, 0xFE)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestBuildDeterministicAcrossWorkers rebuilds the same store with
// several worker counts and requires identical entries, encoder
// assignments, and counters — for both the collection and the
// depth-limited scenario.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	docs := parallelDocs(200)
	st := newParallelStore(t, docs)
	for _, opts := range []Options{
		{},
		{DepthLimit: 2, SpectrumK: 2},
		{DepthLimit: 3, Clustered: true},
	} {
		t.Run(fmt.Sprintf("depth=%d,clustered=%t", opts.DepthLimit, opts.Clustered), func(t *testing.T) {
			var ref *Index
			var refDump string
			for _, w := range []int{1, 2, 7, 16} {
				o := opts
				o.Workers = w
				ix, err := Build(st, o)
				if err != nil {
					t.Fatalf("Workers=%d: %v", w, err)
				}
				dump := entryDump(t, ix)
				if ref == nil {
					ref, refDump = ix, dump
					continue
				}
				if dump != refDump {
					t.Errorf("Workers=%d produced different entries than Workers=1", w)
				}
				if ix.EdgePairs() != ref.EdgePairs() {
					t.Errorf("Workers=%d assigned %d edge pairs, want %d", w, ix.EdgePairs(), ref.EdgePairs())
				}
				if ix.Entries() != ref.Entries() || ix.OversizeEntries() != ref.OversizeEntries() || ix.MaxDocDepth() != ref.MaxDocDepth() {
					t.Errorf("Workers=%d counters diverged", w)
				}
			}
		})
	}
}

// TestBuildStats checks the per-phase breakdown is populated and
// consistent with the build.
func TestBuildStats(t *testing.T) {
	st := newParallelStore(t, parallelDocs(100))
	ix, err := Build(st, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Stats()
	if s.Workers != 4 {
		t.Errorf("Workers = %d, want 4", s.Workers)
	}
	if s.Records != 100 || s.Units != ix.Entries() {
		t.Errorf("Records=%d Units=%d, want 100 and %d", s.Records, s.Units, ix.Entries())
	}
	if s.Wall <= 0 || s.Wall != ix.BuildTime() {
		t.Errorf("Wall = %v, want positive and equal to BuildTime %v", s.Wall, ix.BuildTime())
	}
	if s.UnitsPerSec() <= 0 {
		t.Errorf("UnitsPerSec = %v, want > 0", s.UnitsPerSec())
	}
}

// TestBuildCancellation checks a cancelled context stops the build with
// ctx.Err() and that queries on an index built afterwards still work.
func TestBuildCancellation(t *testing.T) {
	st := newParallelStore(t, parallelDocs(120))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildCtx(ctx, st, Options{Workers: 4}); err != context.Canceled {
		t.Fatalf("BuildCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	ix, err := BuildCtx(context.Background(), st, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	q, err := xpath.Parse("//r1[s3]")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	_, brute := bruteCount(t, st, q)
	if res.Count != brute {
		t.Errorf("count = %d, want %d", res.Count, brute)
	}
}

// TestQueryCancellation checks the query paths observe cancellation.
func TestQueryCancellation(t *testing.T) {
	st := newParallelStore(t, parallelDocs(50))
	ix, err := Build(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := xpath.Parse("//r1[s3]")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.QueryCtx(ctx, q); err != context.Canceled {
		t.Errorf("QueryCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := ix.ExistsCtx(ctx, q); err != context.Canceled {
		t.Errorf("ExistsCtx on cancelled ctx = %v, want context.Canceled", err)
	}
}
