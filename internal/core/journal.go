package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"github.com/fix-index/fix/internal/btree"
	"github.com/fix-index/fix/internal/storage"
)

// Shadow-commit protocol. Save does not overwrite the committed index in
// place: it first writes everything the commit will change — the dirty
// B-tree pages and the full new contents of fix.meta and fix.edges — to a
// side journal (fix.journal) and fsyncs it, and only then applies the
// changes to the real files and removes the journal. The journal ends in
// a CRC-32C over its entire contents, so after a crash Recover can decide
// with certainty whether the commit happened:
//
//   - journal absent or its checksum invalid: the commit never reached
//     its durability point; the journal is discarded and the previous
//     committed state (old fix.meta/fix.edges/pages) remains in force.
//   - journal valid: the commit is durable; replaying it (idempotently)
//     completes the half-applied state, whatever subset of the real files
//     the crash interrupted.
//
// Layout (all integers big-endian):
//
//	offset 0..7    magic "FIXJNL01"
//	offset 8..11   page size
//	offset 12..15  number of page records
//	offset 16..19  length of the fix.meta payload
//	offset 20..23  length of the fix.edges payload
//	then per page record: page id u32, page bytes [pageSize]
//	then the fix.meta payload, the fix.edges payload
//	finally CRC-32C of everything above, u32
const journalMagic = "FIXJNL01"

const journalName = "fix.journal"

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

type journal struct {
	pageSize int
	pages    []btree.DirtyPage
	meta     []byte
	edges    []byte
}

func (j *journal) encode() []byte {
	var b bytes.Buffer
	b.WriteString(journalMagic)
	var u [4]byte
	put := func(v uint32) {
		binary.BigEndian.PutUint32(u[:], v)
		b.Write(u[:])
	}
	put(uint32(j.pageSize))
	put(uint32(len(j.pages)))
	put(uint32(len(j.meta)))
	put(uint32(len(j.edges)))
	for _, pg := range j.pages {
		put(pg.ID)
		b.Write(pg.Data)
	}
	b.Write(j.meta)
	b.Write(j.edges)
	put(crc32.Checksum(b.Bytes(), journalCRC))
	return b.Bytes()
}

// decodeJournal parses buf; ok is false when the journal is incomplete or
// damaged, i.e. the commit it describes never became durable.
func decodeJournal(buf []byte) (*journal, bool) {
	if len(buf) < 28 || string(buf[:8]) != journalMagic {
		return nil, false
	}
	j := &journal{pageSize: int(binary.BigEndian.Uint32(buf[8:12]))}
	npages := int(binary.BigEndian.Uint32(buf[12:16]))
	metaLen := int(binary.BigEndian.Uint32(buf[16:20]))
	edgesLen := int(binary.BigEndian.Uint32(buf[20:24]))
	if j.pageSize <= 0 || j.pageSize > 1<<24 || npages < 0 || metaLen < 0 || edgesLen < 0 {
		return nil, false
	}
	total := 24 + npages*(4+j.pageSize) + metaLen + edgesLen + 4
	if len(buf) != total {
		return nil, false
	}
	sum := binary.BigEndian.Uint32(buf[total-4:])
	if crc32.Checksum(buf[:total-4], journalCRC) != sum {
		return nil, false
	}
	pos := 24
	for i := 0; i < npages; i++ {
		id := binary.BigEndian.Uint32(buf[pos : pos+4])
		pos += 4
		j.pages = append(j.pages, btree.DirtyPage{ID: id, Data: buf[pos : pos+j.pageSize]})
		pos += j.pageSize
	}
	j.meta = buf[pos : pos+metaLen]
	pos += metaLen
	j.edges = buf[pos : pos+edgesLen]
	return j, true
}

// Recover completes or discards a half-finished Save in dir. It is
// idempotent, a no-op when no journal is present, and must run before the
// index files are read; Open and fix.Open call it automatically.
func Recover(dir string) error {
	jpath := filepath.Join(dir, journalName)
	buf, err := os.ReadFile(jpath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: reading journal: %w", err)
	}
	j, ok := decodeJournal(buf)
	if !ok {
		// The commit never became durable: discard it and keep the
		// previous committed state.
		return os.Remove(jpath)
	}
	bpath := filepath.Join(dir, "fix.btree")
	bf, err := os.OpenFile(bpath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("core: replaying journal: %w", err)
	}
	for _, pg := range j.pages {
		if _, err := bf.WriteAt(pg.Data, int64(pg.ID)*int64(j.pageSize)); err != nil {
			_ = bf.Close()
			return fmt.Errorf("core: replaying page %d: %w", pg.ID, err)
		}
	}
	if err := bf.Sync(); err != nil {
		_ = bf.Close()
		return err
	}
	if err := bf.Close(); err != nil {
		return err
	}
	if err := atomicWrite(osFS, filepath.Join(dir, "fix.edges"), j.edges); err != nil {
		return err
	}
	if err := atomicWrite(osFS, filepath.Join(dir, "fix.meta"), j.meta); err != nil {
		return err
	}
	return os.Remove(jpath)
}

// indexFS is the seam through which the index touches its own files;
// tests swap it for a fault-injecting variant to exercise every crash
// point of the commit protocol.
type indexFS struct {
	create func(path string) (storage.File, error)
	open   func(path string) (storage.File, error)
}

var osFS = &indexFS{create: storage.Create, open: storage.Open}

// atomicWrite replaces path with data via a temp file, fsync, and rename,
// so readers observe either the old contents or the new, never a prefix.
func atomicWrite(fsys *indexFS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
