package core

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/fix-index/fix/internal/bisim"
	"github.com/fix-index/fix/internal/btree"
	"github.com/fix-index/fix/internal/matrix"
	"github.com/fix-index/fix/internal/obs"
	"github.com/fix-index/fix/internal/par"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
)

// Parallel index construction.
//
// The per-record work of Algorithm 1 — parsing the stored document,
// reducing it to its bisimulation graph, translating to an anti-symmetric
// matrix, and computing extreme eigenvalues — is independent across
// records, so Build fans it out over a bounded worker pool. The one piece
// of shared state, the edge-label encoder (whose pair→weight assignment
// feeds the matrices and therefore the eigenvalues), is only ever mutated
// at a sequential merge point that walks records in record order.
// Records flow through the pipeline in batches of four phases:
//
//	1. parse + bisimulation     parallel; no shared writes
//	2. edge-pair assignment     sequential, in record order
//	3. matrix + eigenvalues     parallel; encoder is read-only
//	4. B-tree merge             sequential, in record order
//
// Because phases 2 and 4 see records in record order whatever the worker
// count, and phases 1 and 3 write only to per-record slots, the index
// bytes produced are identical for any Workers setting (including the
// batch size, which only bounds memory). BuildStats reports where the
// time went.

// BuildStats reports where one index construction spent its time. The
// per-phase durations are summed across workers, so on a multi-core build
// they can exceed Wall; comparing a phase across worker counts shows
// whether it scaled.
type BuildStats struct {
	// Workers is the effective worker-pool size used.
	Workers int
	// Records is the number of primary-store records indexed; Units the
	// number of indexable units (records, or elements when a depth limit
	// enumerates one subpattern per element).
	Records, Units int
	// Parse covers reading records and adapting them to structural event
	// streams; Bisim the bisimulation reduction; Eigen the matrix
	// translation and eigenvalue computation; Insert the sequential
	// B-tree merge. Parse, Bisim and Eigen are cumulative across workers.
	Parse, Bisim, Eigen, Insert time.Duration
	// Wall is the end-to-end construction time (BuildTime reports the
	// same value).
	Wall time.Duration
}

// UnitsPerSec returns indexing throughput in units per wall-clock second.
func (s BuildStats) UnitsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Units) / s.Wall.Seconds()
}

// phaseTimers accumulates per-phase nanoseconds from concurrent workers.
type phaseTimers struct {
	parse, bisim, eigen atomic.Int64
}

// graphElem is one element vertex reported by the bisimulation pass,
// paired with its storage pointer.
type graphElem struct {
	v   *bisim.Vertex
	ptr uint64
}

// pendingEntry is one computed index entry awaiting its in-order B-tree
// insert.
type pendingEntry struct {
	label uint32
	f     Features
	spec  []float64
	ptr   storage.Pointer
}

// buildUnit carries one record through the pipeline.
type buildUnit struct {
	rec     uint32
	graph   *bisim.Graph
	elems   []graphElem
	pairs   []matrix.LabelPair // first-seen order, deterministic
	depth   int
	entries []pendingEntry
}

// Build constructs a FIX index over every document in st.
func Build(st *storage.Store, opts Options) (*Index, error) {
	return BuildCtx(context.Background(), st, opts)
}

// BuildCtx is Build with cancellation: workers observe ctx between units
// and the sequential merge observes it between records, so a cancelled
// build returns ctx.Err() promptly. A cancelled on-disk build may leave a
// partially written fix.btree behind; it is harmless — the committed
// fix.meta still describes the previous index (or none), so a later Open
// either loads the old commit or degrades to the scan fallback, and
// rebuilding replaces the partial file.
func BuildCtx(ctx context.Context, st *storage.Store, opts Options) (*Index, error) {
	opts.setDefaults()
	workers := par.Workers(opts.Workers)
	start := time.Now()
	btFile, err := indexFile(opts, "fix.btree")
	if err != nil {
		return nil, err
	}
	bt, err := btree.Create(btFile, opts.PageSize, opts.CacheSize)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		opts:  opts,
		store: st,
		dict:  st.Dict(),
		bt:    bt,
		enc:   matrix.NewEdgeEncoder(),
	}
	ix.vh = valueHasher{alpha: ix.dict.MaxID(), beta: opts.Beta}
	var vh bisim.ValueHash
	if opts.Values {
		vh = ix.vh.hash
	}

	timers := &phaseTimers{}
	nrec := st.NumRecords()
	units := 0
	var insertTime time.Duration
	// The batch size bounds how many decoded graphs are in flight at
	// once; it does not affect the output (see the pipeline comment).
	batch := 4 * workers
	if batch < 64 {
		batch = 64
	}
	window := make([]*buildUnit, batch)
	for lo := 0; lo < nrec; lo += batch {
		hi := lo + batch
		if hi > nrec {
			hi = nrec
		}
		n := hi - lo
		// Phase 1: parse records and build bisimulation graphs.
		err := par.Do(ctx, workers, n, func(i int) error {
			u, err := ix.buildUnitGraph(uint32(lo+i), vh, timers)
			if err != nil {
				return err
			}
			window[i] = u
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Phase 2 — the deterministic merge point: assign edge-pair
		// weights in record order, so the encoder (and everything
		// derived from it) is identical for any worker count.
		for i := 0; i < n; i++ {
			if window[i] == nil {
				continue
			}
			for _, p := range window[i].pairs {
				ix.enc.Encode(p.Parent, p.Child)
			}
		}
		// Phase 3: matrices and eigenvalues; the encoder is read-only.
		err = par.Do(ctx, workers, n, func(i int) error {
			if window[i] == nil {
				return nil
			}
			return ix.buildUnitFeatures(window[i], timers)
		})
		if err != nil {
			return nil, err
		}
		// Phase 4: merge into the B-tree in record order.
		insStart := time.Now()
		for i := 0; i < n; i++ {
			u := window[i]
			window[i] = nil
			if u == nil {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if u.depth > ix.maxDocDepth {
				ix.maxDocDepth = u.depth
			}
			for _, e := range u.entries {
				if err := ix.insert(e.label, e.f, e.spec, e.ptr); err != nil {
					return nil, err
				}
			}
			units += len(u.entries)
		}
		insertTime += time.Since(insStart)
	}
	if opts.Clustered {
		if err := ix.buildClustered(ctx); err != nil {
			return nil, err
		}
	}
	if err := ix.bt.Flush(); err != nil {
		return nil, err
	}
	ix.buildTime = time.Since(start)
	obs.Default().ObserveBuild(nrec, units, ix.buildTime)
	ix.buildStats = BuildStats{
		Workers: workers,
		Records: nrec,
		Units:   units,
		Parse:   time.Duration(timers.parse.Load()),
		Bisim:   time.Duration(timers.bisim.Load()),
		Eigen:   time.Duration(timers.eigen.Load()),
		Insert:  insertTime,
		Wall:    ix.buildTime,
	}
	return ix, nil
}

// buildUnitGraph runs the parallel-safe front half of the pipeline for
// one record: parse, bisimulation reduction, and the deterministic list
// of edge-label pairs the record contributes. It returns nil for records
// without a root element.
func (ix *Index) buildUnitGraph(rec uint32, vh bisim.ValueHash, timers *phaseTimers) (*buildUnit, error) {
	parseStart := time.Now()
	cur, err := ix.store.Cursor(rec)
	if err != nil {
		return nil, err
	}
	base := uint64(storage.MakePointer(rec, 0))
	events, err := collectEvents(bisim.FromXML(xmltree.NewCursorStream(cur, 0, base), ix.dict, vh))
	if err != nil {
		return nil, fmt.Errorf("core: parsing record %d: %w", rec, err)
	}
	bisimStart := time.Now()
	timers.parse.Add(int64(bisimStart.Sub(parseStart)))
	u := &buildUnit{rec: rec}
	g, err := bisim.Build(&eventSlice{events: events}, func(v *bisim.Vertex, ptr uint64) {
		u.elems = append(u.elems, graphElem{v, ptr})
	})
	if err != nil {
		return nil, fmt.Errorf("core: building bisimulation graph of record %d: %w", rec, err)
	}
	if g.Root == nil {
		timers.bisim.Add(int64(time.Since(bisimStart)))
		return nil, nil
	}
	u.graph = g
	u.depth = g.MaxDepth()
	u.pairs = graphPairs(g)
	timers.bisim.Add(int64(time.Since(bisimStart)))
	return u, nil
}

// buildUnitFeatures computes the unit's index entries: features (and
// spectrum tails) for the whole document, or one per element under a
// depth limit. All edge pairs were assigned at the merge point, so the
// encoder is only read here.
func (ix *Index) buildUnitFeatures(u *buildUnit, timers *phaseTimers) error {
	eigenStart := time.Now()
	defer func() { timers.eigen.Add(int64(time.Since(eigenStart))) }()
	g := u.graph
	if ix.opts.DepthLimit == 0 {
		// The whole document is one indexable unit.
		var f Features
		var spec []float64
		if ix.opts.EdgeBudget > 0 && g.NumEdges() > ix.opts.EdgeBudget {
			f = oversizeFeatures()
		} else {
			var ok bool
			var err error
			f, ok, err = graphFeatures(g, ix.enc, false)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("core: internal: record %d uses an edge pair missing after pre-assignment", u.rec)
			}
			spec = graphSpectrumTail(g, ix.enc, ix.opts.SpectrumK)
		}
		base := storage.MakePointer(u.rec, 0)
		u.entries = []pendingEntry{{label: g.Root.Label, f: f, spec: spec, ptr: base}}
		return nil
	}
	// Enumerate one depth-limited subpattern per element (Theorem 4: with
	// a positive depth limit the number of entries equals the number of
	// elements).
	u.entries = make([]pendingEntry, 0, len(u.elems))
	for _, e := range u.elems {
		f, spec, err := subpatternFeatures(e.v, ix.opts.DepthLimit, ix.opts.EdgeBudget, ix.enc, ix.opts.SpectrumK, false)
		if err != nil {
			return err
		}
		u.entries = append(u.entries, pendingEntry{label: e.v.Label, f: f, spec: spec, ptr: storage.Pointer(e.ptr)})
	}
	return nil
}

// graphPairs lists the distinct (parent label, child label) pairs of g in
// a deterministic first-seen order: vertices in creation order, children
// in ID order. Every depth-limited unfolding of g uses only edges of g,
// so pre-assigning exactly these pairs covers all feature computations
// the record needs.
func graphPairs(g *bisim.Graph) []matrix.LabelPair {
	seen := make(map[matrix.LabelPair]struct{})
	var pairs []matrix.LabelPair
	for _, v := range g.Vertices {
		for _, c := range v.Children {
			p := matrix.LabelPair{Parent: v.Label, Child: c.Label}
			if _, ok := seen[p]; !ok {
				seen[p] = struct{}{}
				pairs = append(pairs, p)
			}
		}
	}
	return pairs
}

// collectEvents drains a bisimulation event stream into a slice, so the
// parse cost can be measured apart from the reduction.
func collectEvents(s bisim.EventStream) ([]bisim.Event, error) {
	var events []bisim.Event
	for {
		ev, err := s.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
}
