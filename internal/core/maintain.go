package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/fix-index/fix/internal/bisim"
	"github.com/fix-index/fix/internal/par"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
)

// Index maintenance. The paper builds once and queries (its update story
// is future work); these operations keep the index usable as a live
// structure: InsertDocument indexes a newly appended record without a
// rebuild, DeleteDocument removes a record's entries.

// ErrRebuildRequired marks maintenance failures that only a full index
// rebuild can clear: inserting into a degraded index, or inserting a
// document whose new element labels collide with the value-hash range a
// value index fixed at build time. Callers match it with errors.Is and
// respond by degrading (the data stays durable and queryable through the
// scan fallback) rather than retrying.
var ErrRebuildRequired = errors.New("core: index rebuild required")

// InsertDocument indexes the record rec, which must have been appended to
// the primary store after the index was built. For clustered indexes the
// new subtree copies are appended at the end of the heap, so their
// refinement reads lose the perfect key ordering until the next rebuild
// (query results are unaffected).
func (ix *Index) InsertDocument(rec uint32) error {
	if err := ix.Health(); err != nil {
		return fmt.Errorf("%w: cannot index into a degraded index: %w", ErrRebuildRequired, err)
	}
	if ix.opts.Values && ix.dict.MaxID() > ix.vh.alpha {
		// New element labels would collide with the value-hash range
		// (α, α+β] fixed at build time.
		return fmt.Errorf("%w: new element labels appeared after a value index was built", ErrRebuildRequired)
	}
	cur, err := ix.store.Cursor(rec)
	if err != nil {
		return err
	}
	var vh bisim.ValueHash
	if ix.opts.Values {
		vh = ix.vh.hash
	}
	base := uint64(storage.MakePointer(rec, 0))
	stream := bisim.FromXML(xmltree.NewCursorStream(cur, 0, base), ix.dict, vh)
	type elem struct {
		v   *bisim.Vertex
		ptr uint64
	}
	var elems []elem
	g, err := bisim.Build(stream, func(v *bisim.Vertex, ptr uint64) {
		elems = append(elems, elem{v, ptr})
	})
	if err != nil {
		return err
	}
	if g.Root == nil {
		return nil
	}
	if d := g.MaxDepth(); d > ix.maxDocDepth {
		ix.maxDocDepth = d
	}
	insert := ix.insertLive
	if ix.opts.DepthLimit == 0 {
		f, ok, err := graphFeatures(g, ix.enc, true)
		if err != nil {
			return err
		}
		if !ok || (ix.opts.EdgeBudget > 0 && g.NumEdges() > ix.opts.EdgeBudget) {
			f = oversizeFeatures()
		}
		var spec []float64
		if !f.Oversize {
			spec = graphSpectrumTail(g, ix.enc, ix.opts.SpectrumK)
		}
		return insert(g.Root.Label, f, spec, storage.Pointer(base))
	}
	for _, e := range elems {
		f, spec, err := subpatternFeatures(e.v, ix.opts.DepthLimit, ix.opts.EdgeBudget, ix.enc, ix.opts.SpectrumK, true)
		if err != nil {
			return err
		}
		if err := insert(e.v.Label, f, spec, storage.Pointer(e.ptr)); err != nil {
			return err
		}
	}
	return nil
}

// insertLive inserts one computed entry through the maintenance path.
// Unclustered entries go straight into the B-tree; clustered indexes
// additionally append a copy of the pointed-to subtree at the end of the
// clustered heap (the perfect key ordering returns at the next rebuild).
func (ix *Index) insertLive(label uint32, f Features, spec []float64, ptr storage.Pointer) error {
	if !ix.opts.Clustered {
		return ix.insert(label, f, spec, ptr)
	}
	scur, ref, err := ix.store.ReadSubtree(ptr)
	if err != nil {
		return err
	}
	crec, err := ix.clustered.AppendBytes(scur.SubtreeBytes(ref))
	if err != nil {
		return err
	}
	k := entryKey{label: label, max: f.Max, min: f.Min, seq: ix.seq}
	ix.seq++
	if f.Oversize {
		ix.oversize++
	}
	v := entryValue{
		primary:   uint64(ptr),
		clustered: uint64(storage.MakePointer(crec, 0)),
		hasCopy:   true,
		spectrum:  spec,
	}
	return ix.bt.Put(k.encode(), v.encode())
}

// InsertDocumentsCtx indexes a batch of newly appended records through
// the same four-phase parallel pipeline BuildCtx uses: parse +
// bisimulation fan out over the worker pool, edge-pair weights are
// assigned sequentially in argument order, matrices and eigenvalues fan
// out again, and the B-tree merge runs sequentially in argument order.
// For a batch of one it costs the same as InsertDocument; for the
// group-committed batches of streaming ingest it turns the per-document
// eigenvalue computation — by far the dominant indexing cost — into
// parallel work instead of serializing it under the write lock.
//
// The same preconditions as InsertDocument apply, checked once for the
// whole batch; any failure leaves previously merged entries in place, so
// callers must treat an error as grounds to degrade the index (exactly
// as a mid-batch InsertDocument failure would).
func (ix *Index) InsertDocumentsCtx(ctx context.Context, recs []uint32) error {
	if len(recs) == 0 {
		return nil
	}
	if err := ix.Health(); err != nil {
		return fmt.Errorf("%w: cannot index into a degraded index: %w", ErrRebuildRequired, err)
	}
	if ix.opts.Values && ix.dict.MaxID() > ix.vh.alpha {
		// New element labels would collide with the value-hash range
		// (α, α+β] fixed at build time.
		return fmt.Errorf("%w: new element labels appeared after a value index was built", ErrRebuildRequired)
	}
	var vh bisim.ValueHash
	if ix.opts.Values {
		vh = ix.vh.hash
	}
	workers := par.Workers(ix.opts.Workers)
	timers := &phaseTimers{}
	units := make([]*buildUnit, len(recs))
	err := par.Do(ctx, workers, len(recs), func(i int) error {
		u, err := ix.buildUnitGraph(recs[i], vh, timers)
		if err != nil {
			return err
		}
		units[i] = u
		return nil
	})
	if err != nil {
		return err
	}
	for _, u := range units {
		if u == nil {
			continue
		}
		for _, p := range u.pairs {
			ix.enc.Encode(p.Parent, p.Child)
		}
	}
	err = par.Do(ctx, workers, len(units), func(i int) error {
		if units[i] == nil {
			return nil
		}
		return ix.buildUnitFeatures(units[i], timers)
	})
	if err != nil {
		return err
	}
	for _, u := range units {
		if u == nil {
			continue
		}
		if u.depth > ix.maxDocDepth {
			ix.maxDocDepth = u.depth
		}
		for _, e := range u.entries {
			if err := ix.insertLive(e.label, e.f, e.spec, e.ptr); err != nil {
				return err
			}
		}
	}
	return nil
}

// DeleteDocument removes every index entry pointing into record rec. The
// record itself stays in the primary store (records are immutable), and
// clustered copies are only reclaimed by a rebuild. The scan is O(index);
// deletion is a maintenance operation, not a hot path.
func (ix *Index) DeleteDocument(rec uint32) (int, error) {
	if err := ix.Health(); err != nil {
		return 0, fmt.Errorf("%w: cannot delete from a degraded index: %w", ErrRebuildRequired, err)
	}
	var keys [][]byte
	err := ix.bt.Scan(nil, nil, func(k, v []byte) bool {
		if storage.Pointer(decodeValue(v).primary).Rec() == rec {
			keys = append(keys, append([]byte(nil), k...))
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		ok, err := ix.bt.Delete(k)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("core: entry vanished during delete")
		}
	}
	return len(keys), nil
}
