package core

import (
	"math"

	"github.com/fix-index/fix/internal/rtree"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xpath"
)

// FeatureRTree is the paper's §8 future-work variant: the same feature
// keys held in a three-dimensional R-tree instead of a B-tree. The
// containment search becomes one box query
//
//	label ∈ [l, l], λmax ∈ [q.max, +inf), λmin ∈ (-inf, q.min]
//
// so highly selective queries avoid walking the B-tree's λmax tail within
// a label partition.
type FeatureRTree struct {
	ix *Index
	rt *rtree.Tree
}

// BuildFeatureRTree bulk-loads the current index entries into an R-tree.
func (ix *Index) BuildFeatureRTree() (*FeatureRTree, error) {
	rt := rtree.New()
	err := ix.bt.Scan(nil, nil, func(k, v []byte) bool {
		ek := decodeKey(k)
		rt.Insert(rtree.Entry{
			Box:  rtree.Point([rtree.Dims]float64{float64(ek.label), ek.max, ek.min}),
			Data: decodeValue(v).primary,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return &FeatureRTree{ix: ix, rt: rt}, nil
}

// Len returns the number of indexed entries.
func (f *FeatureRTree) Len() int { return f.rt.Len() }

// NodesVisited exposes the R-tree search-effort counter.
func (f *FeatureRTree) NodesVisited() int64 { return f.rt.NodesVisited() }

// ResetStats zeroes the search-effort counter.
func (f *FeatureRTree) ResetStats() { f.rt.ResetStats() }

// Candidates runs the pruning phase through the R-tree. The candidate set
// is identical to Index.Candidates; only the search structure differs.
func (f *FeatureRTree) Candidates(path *xpath.Path) ([]Candidate, error) {
	p, err := f.ix.plan(path)
	if err != nil {
		return nil, err
	}
	if p.empty {
		return nil, nil
	}
	labelLo, labelHi := 0.0, math.MaxFloat64
	if p.labelOK {
		labelLo, labelHi = float64(p.topLabel), float64(p.topLabel)
	}
	// The primary twig constrains the box; additional twigs (collection
	// indexes) are checked per hit exactly like the B-tree path.
	q := rtree.Box{
		Min: [rtree.Dims]float64{labelLo, p.feats[0].Max, math.Inf(-1)},
		Max: [rtree.Dims]float64{labelHi, math.Inf(1), p.feats[0].Min},
	}
	var cands []Candidate
	f.rt.Search(q, func(e rtree.Entry) bool {
		entry := Features{Min: e.Box.Min[2], Max: e.Box.Min[1]}
		for _, tf := range p.feats {
			if !entry.Contains(tf) {
				return true
			}
		}
		cands = append(cands, Candidate{
			Key:     entryKey{label: uint32(e.Box.Min[0]), max: e.Box.Min[1], min: e.Box.Min[2]},
			Primary: storage.Pointer(e.Data),
		})
		return true
	})
	return cands, nil
}
