package core

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFloatEncodingOrder(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, eb := encodeFloat(a), encodeFloat(b)
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default:
			return ea == eb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Including the infinities used by the oversize fallback.
	vals := []float64{math.Inf(-1), -1e300, -1, -1e-300, 0, 1e-300, 1, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if encodeFloat(vals[i-1]) >= encodeFloat(vals[i]) {
			t.Errorf("order violated between %v and %v", vals[i-1], vals[i])
		}
	}
}

func TestFloatEncodingRoundTrip(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) {
			return true
		}
		return decodeFloat(encodeFloat(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(label uint32, max, min float64, seq uint64) bool {
		if math.IsNaN(max) || math.IsNaN(min) {
			return true
		}
		k := entryKey{label: label, max: max, min: min, seq: seq}
		return decodeKey(k.encode()) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestKeySortOrder(t *testing.T) {
	// Encoded keys must sort by (label, max, min, seq).
	rng := rand.New(rand.NewSource(9))
	keys := make([]entryKey, 300)
	for i := range keys {
		keys[i] = entryKey{
			label: uint32(rng.Intn(4)),
			max:   float64(rng.Intn(8)) - 2.5,
			min:   float64(rng.Intn(8)) - 4.5,
			seq:   uint64(rng.Intn(5)),
		}
	}
	enc := make([][]byte, len(keys))
	for i, k := range keys {
		enc[i] = k.encode()
	}
	sort.Slice(enc, func(i, j int) bool { return bytes.Compare(enc[i], enc[j]) < 0 })
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.label != b.label {
			return a.label < b.label
		}
		if a.max != b.max {
			return a.max < b.max
		}
		if a.min != b.min {
			return a.min < b.min
		}
		return a.seq < b.seq
	})
	for i := range keys {
		if decodeKey(enc[i]) != keys[i] {
			t.Fatalf("position %d: byte order %v != semantic order %v", i, decodeKey(enc[i]), keys[i])
		}
	}
}

func TestScanBoundsContainment(t *testing.T) {
	// Every entry with the same label and max >= queryMax must fall in
	// [from, to); entries below or in other labels must not.
	from, to := scanBounds(7, 2.5)
	in := entryKey{label: 7, max: 2.5, min: -2.5, seq: 0}.encode()
	inHigher := entryKey{label: 7, max: 100, min: -100, seq: 9}.encode()
	inInf := entryKey{label: 7, max: math.Inf(1), min: math.Inf(-1), seq: 1}.encode()
	below := entryKey{label: 7, max: 2.4, min: -2.4, seq: 0}.encode()
	otherLabel := entryKey{label: 8, max: 50, min: -50, seq: 0}.encode()
	for _, c := range []struct {
		key  []byte
		want bool
		name string
	}{
		{in, true, "equal max"},
		{inHigher, true, "higher max"},
		{inInf, true, "oversize"},
		{below, false, "below"},
		{otherLabel, false, "other label"},
	} {
		got := bytes.Compare(c.key, from) >= 0 && bytes.Compare(c.key, to) < 0
		if got != c.want {
			t.Errorf("%s: in-range = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFeaturesContains(t *testing.T) {
	big := Features{Min: -5, Max: 5}
	small := Features{Min: -3, Max: 3}
	if !big.Contains(small) || small.Contains(big) {
		t.Error("containment wrong")
	}
	if !big.Contains(big) {
		t.Error("self containment wrong")
	}
	inf := oversizeFeatures()
	if !inf.Contains(big) || !inf.Oversize {
		t.Error("oversize should contain everything")
	}
}
