package core

import (
	"sort"

	"github.com/fix-index/fix/internal/bisim"
	"github.com/fix-index/fix/internal/xpath"
)

// Query-pattern canonicalization.
//
// The paper's pruning rests on Theorem 3 (eigenvalue interlacing for
// induced subgraphs), but a twig match (Definition 4) is a homomorphism:
// two query nodes may map to the same data vertex. //b[a[c]][a] matches
// <b><a><c/></a></b> with both predicates witnessed by the same child, yet
// the query's pattern graph has more edges than the document's, its σmax
// is larger, and the paper's test would wrongly prune the document — a
// genuine false negative in the scheme as published.
//
// We therefore canonicalize the pruning pattern so its match image is
// injective:
//
//  1. (exact) a predicate branch subsumed by a same-label sibling is
//     dropped: [a[c]][a] ≡ [a[c]] existentially;
//  2. (weakening) of any remaining same-label sibling group, only the
//     largest branch is kept — the weakened pattern matches wherever the
//     original does, so candidates remain complete; refinement always
//     runs the full original query;
//  3. (weakening) the same rule is applied to same-label pairs that are
//     not in ancestor-descendant relation anywhere in the twig
//     ("cousins"), since only ancestor-related same-label nodes are
//     guaranteed distinct images (a proper ancestor's class has strictly
//     greater height).
//
// After canonicalization every pair of pattern vertices has either
// distinct labels or is ancestor-related, so a match embeds the pattern
// injectively into the entry's bisimulation graph.

// pnode is a label-resolved query-pattern node. Value leaves arrive here
// already hashed, so collisions merge exactly as they do in the data.
type pnode struct {
	label    uint32
	children []*pnode
	parent   *pnode
}

// size returns the number of nodes in the subtree.
func (p *pnode) size() int {
	n := 1
	for _, c := range p.children {
		n += c.size()
	}
	return n
}

// resolve converts a twig query tree into a pnode tree, hashing value
// leaves and resolving labels. ok is false if a label does not occur in
// the data, which proves the query empty.
func (ix *Index) resolve(n *xpath.QNode, parent *pnode) (*pnode, bool) {
	p := &pnode{parent: parent}
	if n.IsValue {
		if !ix.opts.Values {
			// Without a value index the constraint is left to
			// refinement; dropping the leaf keeps the pattern a
			// subpattern of the indexed one.
			return nil, true
		}
		p.label = ix.vh.hash(n.Value)
		return p, true
	}
	id, ok := ix.dict.Lookup(n.Name)
	if !ok {
		return nil, false
	}
	p.label = id
	for _, c := range n.Children {
		cp, ok := ix.resolve(c, p)
		if !ok {
			return nil, false
		}
		if cp != nil {
			p.children = append(p.children, cp)
		}
	}
	return p, true
}

// subsumes reports whether every document matching b at its root also
// matches a there: same label and every child constraint of a is
// entailed by some child constraint of b.
func subsumes(a, b *pnode) bool {
	if a.label != b.label {
		return false
	}
	for _, ac := range a.children {
		found := false
		for _, bc := range b.children {
			if subsumes(ac, bc) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// canonicalize rewrites the pattern per the rules above.
func canonicalize(root *pnode) {
	dedupeSiblings(root)
	pruneCousins(root)
}

func dedupeSiblings(p *pnode) {
	for _, c := range p.children {
		dedupeSiblings(c)
	}
	// Group children by label, keeping one representative per group:
	// prefer a branch that subsumes the others; otherwise the largest.
	byLabel := make(map[uint32][]*pnode)
	var order []uint32
	for _, c := range p.children {
		if _, ok := byLabel[c.label]; !ok {
			order = append(order, c.label)
		}
		byLabel[c.label] = append(byLabel[c.label], c)
	}
	var kept []*pnode
	for _, l := range order {
		group := byLabel[l]
		best := group[0]
		for _, c := range group[1:] {
			switch {
			case subsumes(best, c):
				// best is entailed by c: c is the stronger branch.
				best = c
			case subsumes(c, best):
				// keep best.
			case c.size() > best.size():
				best = c
			}
		}
		kept = append(kept, best)
	}
	p.children = kept
}

// pruneCousins removes same-label nodes that are not ancestor-related,
// keeping the larger subtree's occurrence.
func pruneCousins(root *pnode) {
	for {
		var all []*pnode
		var collect func(p *pnode)
		collect = func(p *pnode) {
			all = append(all, p)
			for _, c := range p.children {
				collect(c)
			}
		}
		collect(root)
		victim := (*pnode)(nil)
		for i := 0; i < len(all) && victim == nil; i++ {
			for j := i + 1; j < len(all); j++ {
				a, b := all[i], all[j]
				if a.label != b.label || isAncestor(a, b) || isAncestor(b, a) {
					continue
				}
				// Drop the smaller branch (ties: the later one).
				if a.size() < b.size() {
					victim = a
				} else {
					victim = b
				}
				break
			}
		}
		if victim == nil {
			return
		}
		removeChild(victim.parent, victim)
	}
}

func isAncestor(a, b *pnode) bool {
	for p := b.parent; p != nil; p = p.parent {
		if p == a {
			return true
		}
	}
	return false
}

func removeChild(parent, child *pnode) {
	if parent == nil {
		return
	}
	for i, c := range parent.children {
		if c == child {
			parent.children = append(parent.children[:i], parent.children[i+1:]...)
			return
		}
	}
}

// patternGraph builds the bisimulation graph of a canonical pattern.
func patternGraph(root *pnode) (*bisim.Graph, error) {
	var events []bisim.Event
	var emit func(p *pnode)
	emit = func(p *pnode) {
		events = append(events, bisim.Event{Open: true, Label: p.label})
		// Deterministic child order keeps features reproducible.
		sorted := append([]*pnode(nil), p.children...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].label < sorted[j].label })
		for _, c := range sorted {
			emit(c)
		}
		events = append(events, bisim.Event{Open: false, Label: p.label})
	}
	emit(root)
	return bisim.Build(&eventSlice{events: events}, nil)
}

// clone deep-copies a pattern tree.
func (p *pnode) clone(parent *pnode) *pnode {
	cp := &pnode{label: p.label, parent: parent}
	for _, c := range p.children {
		cp.children = append(cp.children, c.clone(cp))
	}
	return cp
}

// soundFeatures computes the default, provably complete pruning bound:
// the maximum of
//
//   - the ≤3-vertex induced bound over the full canonical pattern
//     (soundBound), and
//   - the full σmax of the largest "verified-exact" subpattern: a
//     subtree-closed fragment in which every non-adjacent vertex pair has
//     a label pair that never occurs as an edge in the data, so a match
//     image is exactly the pattern (an induced subgraph) and Theorem 3
//     applies as stated.
//
// It also returns the verified-exact pattern graph, whose spectrum is
// safe for the component-wise filter (Cauchy interlacing on an induced
// subgraph).
func (ix *Index) soundFeatures(pn *pnode, g *bisim.Graph) (Features, *bisim.Graph, bool, error) {
	b3, ok := ix.soundBound(g)
	if !ok {
		return Features{}, nil, false, nil
	}
	exact := pn.clone(nil)
	ix.shrinkToVerified(exact)
	eg, err := patternGraph(exact)
	if err != nil {
		return Features{}, nil, false, err
	}
	fe, ok, err := graphFeatures(eg, ix.enc, false)
	if err != nil {
		return Features{}, nil, false, err
	}
	if ok && fe.Max > b3.Max {
		return fe, eg, true, nil
	}
	return b3, eg, true, nil
}

// shrinkToVerified drops subtrees until no non-adjacent vertex pair has a
// label pair present in the edge encoder (in either direction). The
// remaining pattern's match image cannot contain edges beyond the pattern
// edges, so it is induced.
func (ix *Index) shrinkToVerified(root *pnode) {
	for {
		var all []*pnode
		var collect func(p *pnode)
		collect = func(p *pnode) {
			all = append(all, p)
			for _, c := range p.children {
				collect(c)
			}
		}
		collect(root)
		var victim *pnode
	search:
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				u, v := all[i], all[j]
				if u == v.parent || v == u.parent {
					continue // a pattern edge: allowed
				}
				_, uv := ix.enc.Lookup(u.label, v.label)
				_, vu := ix.enc.Lookup(v.label, u.label)
				if !uv && !vu {
					continue
				}
				// Extra image edge possible between these two: drop the
				// descendant, or the smaller of unrelated subtrees.
				switch {
				case isAncestor(u, v):
					victim = v
				case isAncestor(v, u):
					victim = u
				case u.size() < v.size():
					victim = u
				default:
					victim = v
				}
				break search
			}
		}
		if victim == nil {
			return
		}
		removeChild(victim.parent, victim)
	}
}
