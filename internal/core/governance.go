package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/fix-index/fix/internal/nok"
)

// ErrBudgetExceeded reports that a query was stopped because it hit one
// of its resource limits (candidate cap, result cap, or refinement-node
// budget). The wrapped message names the exhausted dimension. It is the
// resource-governance complement of a deadline: budgets bound work,
// deadlines bound time, and both produce typed errors instead of letting
// one query monopolize the process.
var ErrBudgetExceeded = errors.New("core: query budget exceeded")

// Limits caps what one query may consume. The zero value imposes no
// limits and adds no work to the query pipeline beyond one nil/zero
// check per phase — governance is strictly opt-in per query.
type Limits struct {
	// MaxRefineNodes caps the subtree nodes the NoK refinement pass may
	// visit across all candidates of the query (the nodes_visited unit
	// of the observability layer). 0 means unlimited.
	MaxRefineNodes int64
	// MaxCandidates caps how many entries may survive the feature
	// filter; the range scan stops early once the cap is crossed. A
	// query with more candidates than this would spend its time in
	// refinement anyway — rejecting it at the probe phase is cheaper.
	// 0 means unlimited.
	MaxCandidates int
	// MaxResults caps the total output-node matches; refinement stops
	// early once the running total crosses the cap. 0 means unlimited.
	MaxResults int
}

// governed reports whether any limit is set.
func (l Limits) governed() bool {
	return l.MaxRefineNodes > 0 || l.MaxCandidates > 0 || l.MaxResults > 0
}

// refineBudget returns the shared NoK budget for one query's refinement
// phase, or nil when neither a node limit nor a cancellable context is
// in play — the nil budget keeps the default path free of any per-node
// accounting.
func refineBudget(ctx context.Context, lim Limits) *nok.Budget {
	if lim.MaxRefineNodes <= 0 && ctx.Done() == nil {
		return nil
	}
	return nok.NewBudget(ctx, lim.MaxRefineNodes)
}

// budgetErr maps a nok budget exhaustion onto the typed core error;
// context errors (deadline, cancellation) pass through unchanged so
// callers see the standard context sentinels.
func budgetErr(err error) error {
	if errors.Is(err, nok.ErrBudget) {
		return fmt.Errorf("%w: refinement nodes", ErrBudgetExceeded)
	}
	return err
}

// resultCap tracks the running output-match total against MaxResults.
// Workers add their per-candidate counts; crossing the cap returns the
// typed budget error, which stops the worker pool. The final total is a
// sum of non-negative counts, so any partial sum over the cap proves
// the full query would exceed it too.
func errResultCap(total int64, lim Limits) error {
	if lim.MaxResults > 0 && total > int64(lim.MaxResults) {
		return fmt.Errorf("%w: results %d exceed limit %d", ErrBudgetExceeded, total, lim.MaxResults)
	}
	return nil
}
