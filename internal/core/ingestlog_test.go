package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"github.com/fix-index/fix/internal/storage"
)

func sampleOps() []IngestOp {
	return []IngestOp{
		{Kind: IngestOpInsert, Rec: 3, XML: []byte("<a><b>x</b></a>")},
		{Kind: IngestOpDelete, Rec: 1},
		{Kind: IngestOpInsert, Rec: 4, XML: []byte("<c/>")},
	}
}

func opsEqual(a, b []IngestOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Rec != b[i].Rec || string(a[i].XML) != string(b[i].XML) {
			return false
		}
	}
	return true
}

func TestIngestLogRoundTrip(t *testing.T) {
	f := storage.NewMemFile()
	lg, err := NewIngestLog(f, 3, 123)
	if err != nil {
		t.Fatal(err)
	}
	batch1 := sampleOps()
	batch2 := []IngestOp{{Kind: IngestOpInsert, Rec: 5, XML: []byte("<d>y</d>")}}
	if err := lg.AppendBatch(batch1); err != nil {
		t.Fatal(err)
	}
	if err := lg.AppendBatch(batch2); err != nil {
		t.Fatal(err)
	}
	if got := lg.Ops(); got != 4 {
		t.Fatalf("Ops() = %d, want 4", got)
	}

	lg2, ops, ok, err := OpenIngestLog(f)
	if err != nil || !ok {
		t.Fatalf("OpenIngestLog: ok=%v err=%v", ok, err)
	}
	if rec, end := lg2.Base(); rec != 3 || end != 123 {
		t.Fatalf("Base() = (%d, %d), want (3, 123)", rec, end)
	}
	want := append(append([]IngestOp{}, batch1...), batch2...)
	if !opsEqual(ops, want) {
		t.Fatalf("replayed ops = %+v, want %+v", ops, want)
	}
	if lg2.Size() != lg.Size() {
		t.Fatalf("reopened size %d != appended size %d", lg2.Size(), lg.Size())
	}
}

func TestIngestLogEmpty(t *testing.T) {
	f := storage.NewMemFile()
	if _, err := NewIngestLog(f, 0, 0); err != nil {
		t.Fatal(err)
	}
	_, ops, ok, err := OpenIngestLog(f)
	if err != nil || !ok {
		t.Fatalf("OpenIngestLog: ok=%v err=%v", ok, err)
	}
	if len(ops) != 0 {
		t.Fatalf("empty log replayed %d ops", len(ops))
	}
}

func TestIngestLogBadHeader(t *testing.T) {
	cases := map[string]func(f *storage.MemFile){
		"truncated": func(f *storage.MemFile) {
			_, _ = f.WriteAt([]byte("FIXW"), 0)
		},
		"bad magic": func(f *storage.MemFile) {
			buf := make([]byte, ingestHeaderSize)
			_, _ = f.WriteAt(buf, 0)
		},
		"bad crc": func(f *storage.MemFile) {
			lg, err := NewIngestLog(f, 7, 99)
			if err != nil {
				panic(err)
			}
			_ = lg
			_, _ = f.WriteAt([]byte{0xff}, ingestHeaderSize-1)
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			f := storage.NewMemFile()
			corrupt(f)
			_, _, ok, err := OpenIngestLog(f)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatal("invalid header reported ok")
			}
		})
	}
}

func TestIngestLogTornTail(t *testing.T) {
	// A torn final batch must be dropped; the valid prefix survives.
	for cut := 1; cut < 40; cut++ {
		f := storage.NewMemFile()
		lg, err := NewIngestLog(f, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		first := sampleOps()
		if err := lg.AppendBatch(first); err != nil {
			t.Fatal(err)
		}
		goodSize := lg.Size()
		if err := lg.AppendBatch([]IngestOp{{Kind: IngestOpInsert, Rec: 5, XML: []byte("<torn>tail</torn>")}}); err != nil {
			t.Fatal(err)
		}
		if int64(cut) >= lg.Size()-goodSize {
			break
		}
		if err := f.Truncate(lg.Size() - int64(cut)); err != nil {
			t.Fatal(err)
		}
		lg2, ops, ok, err := OpenIngestLog(f)
		if err != nil || !ok {
			t.Fatalf("cut %d: ok=%v err=%v", cut, ok, err)
		}
		if !opsEqual(ops, first) {
			t.Fatalf("cut %d: replayed %+v, want the first batch only", cut, ops)
		}
		if lg2.Size() != goodSize {
			t.Fatalf("cut %d: size %d after open, want %d", cut, lg2.Size(), goodSize)
		}
		if sz, _ := f.Size(); sz != goodSize {
			t.Fatalf("cut %d: torn tail not truncated (file %d bytes)", cut, sz)
		}
	}
}

func TestIngestLogCorruptBatch(t *testing.T) {
	f := storage.NewMemFile()
	lg, err := NewIngestLog(f, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := sampleOps()
	if err := lg.AppendBatch(first); err != nil {
		t.Fatal(err)
	}
	goodSize := lg.Size()
	if err := lg.AppendBatch([]IngestOp{{Kind: IngestOpInsert, Rec: 9, XML: []byte("<x/>")}}); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second batch: CRC must reject it and
	// everything after it.
	if _, err := f.WriteAt([]byte{0xAA}, goodSize+6); err != nil {
		t.Fatal(err)
	}
	_, ops, ok, err := OpenIngestLog(f)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !opsEqual(ops, first) {
		t.Fatalf("replayed %+v, want the first batch only", ops)
	}
}

func TestIngestLogTruncateBatch(t *testing.T) {
	f := storage.NewMemFile()
	lg, err := NewIngestLog(f, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := sampleOps()
	if err := lg.AppendBatch(first); err != nil {
		t.Fatal(err)
	}
	prev := lg.Size()
	bad := []IngestOp{{Kind: IngestOpInsert, Rec: 9, XML: []byte("<bad/>")}}
	if err := lg.AppendBatch(bad); err != nil {
		t.Fatal(err)
	}
	if err := lg.TruncateBatch(prev, len(bad)); err != nil {
		t.Fatal(err)
	}
	if lg.Ops() != len(first) {
		t.Fatalf("Ops() = %d after TruncateBatch, want %d", lg.Ops(), len(first))
	}
	_, ops, ok, err := OpenIngestLog(f)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !opsEqual(ops, first) {
		t.Fatalf("replayed %+v after TruncateBatch, want the first batch only", ops)
	}
}

func TestIngestLogReset(t *testing.T) {
	f := storage.NewMemFile()
	lg, err := NewIngestLog(f, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.AppendBatch(sampleOps()); err != nil {
		t.Fatal(err)
	}
	if err := lg.Reset(42, 9000); err != nil {
		t.Fatal(err)
	}
	if lg.Ops() != 0 {
		t.Fatalf("Ops() = %d after Reset, want 0", lg.Ops())
	}
	lg2, ops, ok, err := OpenIngestLog(f)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(ops) != 0 {
		t.Fatalf("reset log replayed %d ops", len(ops))
	}
	if rec, end := lg2.Base(); rec != 42 || end != 9000 {
		t.Fatalf("Base() = (%d, %d) after Reset, want (42, 9000)", rec, end)
	}
}

func TestIngestLogAppendFaults(t *testing.T) {
	// Sweep every write op of header + two appends; after each injected
	// crash the log must open to a valid prefix of fully-acked batches.
	batchA := sampleOps()
	batchB := []IngestOp{{Kind: IngestOpDelete, Rec: 0}}
	for fail := 1; fail <= 8; fail++ {
		for _, torn := range []bool{false, true} {
			name := fmt.Sprintf("fail=%d torn=%v", fail, torn)
			pl := &storage.FaultPlan{FailWrite: fail, Torn: torn}
			mem := storage.NewMemFile()
			f := pl.Wrap(mem)
			acked := 0
			lg, err := NewIngestLog(f, 0, 0)
			if err == nil {
				if err = lg.AppendBatch(batchA); err == nil {
					acked = len(batchA)
					if err = lg.AppendBatch(batchB); err == nil {
						acked += len(batchB)
					}
				}
			}
			if err != nil && !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("%s: unexpected error %v", name, err)
			}
			// Reopen the raw file, as recovery would after the crash.
			_, ops, ok, openErr := OpenIngestLog(mem)
			if openErr != nil {
				t.Fatalf("%s: reopen: %v", name, openErr)
			}
			if !ok {
				if acked != 0 {
					t.Fatalf("%s: header invalid but %d ops were acked", name, acked)
				}
				continue
			}
			// Everything acknowledged must replay; a fully-written batch
			// whose fsync failed may replay too (documented at-least-once
			// window), so ops may exceed acked but never exceed attempts.
			if len(ops) < acked {
				t.Fatalf("%s: %d ops acked but only %d replayed", name, acked, len(ops))
			}
			if len(ops) > len(batchA)+len(batchB) {
				t.Fatalf("%s: replayed %d ops, more than ever attempted", name, len(ops))
			}
			if len(ops) >= len(batchA) && !opsEqual(ops[:len(batchA)], batchA) {
				t.Fatalf("%s: first batch corrupted on replay", name)
			}
		}
	}
}

func TestDecodeIngestBatchRejects(t *testing.T) {
	good := encodeIngestBatch(sampleOps())
	payload := good[4 : len(good)-4]
	if _, err := decodeIngestBatch(payload); err != nil {
		t.Fatalf("control: %v", err)
	}
	t.Run("short", func(t *testing.T) {
		if _, err := decodeIngestBatch([]byte{1, 2}); err == nil {
			t.Fatal("short payload accepted")
		}
	})
	t.Run("trailing", func(t *testing.T) {
		if _, err := decodeIngestBatch(append(append([]byte{}, payload...), 0)); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})
	t.Run("kind", func(t *testing.T) {
		bad := append([]byte{}, payload...)
		bad[4] = 77 // first op's kind
		if _, err := decodeIngestBatch(bad); err == nil {
			t.Fatal("unknown kind accepted")
		}
	})
	t.Run("opcount", func(t *testing.T) {
		bad := append([]byte{}, payload...)
		binary.BigEndian.PutUint32(bad, maxIngestBatchOps+1)
		if _, err := decodeIngestBatch(bad); err == nil {
			t.Fatal("absurd op count accepted")
		}
	})
	t.Run("xmllen", func(t *testing.T) {
		bad := append([]byte{}, payload...)
		binary.BigEndian.PutUint32(bad[9:], 1<<31) // first insert's XML length
		if _, err := decodeIngestBatch(bad); err == nil {
			t.Fatal("oversized XML length accepted")
		}
	})
}
