package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/fix-index/fix/internal/storage"
)

// Ingest write-ahead log. The shadow journal (journal.go) makes Save
// atomic, but anything ingested between Saves used to live only in
// memory. The ingest log closes that window: every batch of inserts and
// deletes is appended to fix.ingest and fsynced *before* it is applied
// to the heap and the index, so the fsync is the durability point at
// which the batch is acknowledged. After a crash, recovery truncates the
// heap back to the log's recorded base and replays the log's valid
// prefix, reproducing exactly the acknowledged operations; the log is
// reset only after the next successful shadow-commit Save has made its
// contents durable elsewhere.
//
// Layout (all integers big-endian):
//
//	header:  magic "FIXWAL01" (8) | base records u32 | base heap end u64 |
//	         CRC-32C of the 20 bytes above, u32
//	batches: payload length u32 | payload | CRC-32C of the payload, u32
//	payload: op count u32, then per op:
//	         kind u8 (1=insert, 2=delete) | record u32 |
//	         for inserts: XML length u32 | raw XML bytes
//
// The header is fsynced at creation, so a log whose header fails its
// checksum was being created or reset when the crash hit — nothing in
// that generation was ever acknowledged, and the whole file is
// discarded. Batches are validated front to back; the longest valid
// prefix is exactly the set of acknowledged batches (a batch whose fsync
// did not complete was never acknowledged, so dropping a torn tail
// loses nothing).
const ingestMagic = "FIXWAL01"

// IngestLogName is the file name of the ingest write-ahead log inside an
// index directory.
const IngestLogName = "fix.ingest"

const ingestHeaderSize = 8 + 4 + 8 + 4

// Decode guards: a batch larger than these bounds is treated as a torn
// tail rather than allocated on faith.
const (
	maxIngestBatchBytes = 1 << 30
	maxIngestBatchOps   = 1 << 20
)

// Kinds of ingest log operations.
const (
	// IngestOpInsert appends a document; Rec is the record number the
	// replayed append must produce, XML the raw document text.
	IngestOpInsert = byte(1)
	// IngestOpDelete tombstones record Rec and removes its index
	// entries.
	IngestOpDelete = byte(2)
)

// IngestOp is one logged ingest operation.
type IngestOp struct {
	Kind byte   // IngestOpInsert or IngestOpDelete
	Rec  uint32 // record number appended (insert) or targeted (delete)
	XML  []byte // raw document text, inserts only
}

// IngestLog is an append-only write-ahead log of ingest batches over a
// single file. It is not internally locked: the fix layer serializes all
// appends and resets under its ingest mutex.
type IngestLog struct {
	f           storage.File
	size        int64 // end of the durable, valid prefix
	baseRecords uint32
	baseEnd     int64
	ops         int // operations appended since the base (ingest lag)
}

// NewIngestLog initializes an empty log over f, recording the current
// committed store state (record count and heap byte size) as the base
// that recovery truncates back to, and fsyncs the header. The caller
// must have made that base durable (heap synced, dictionary saved)
// before calling.
func NewIngestLog(f storage.File, baseRecords uint32, baseEnd int64) (*IngestLog, error) {
	lg := &IngestLog{f: f, baseRecords: baseRecords, baseEnd: baseEnd}
	if err := lg.writeHeader(); err != nil {
		return nil, err
	}
	return lg, nil
}

func (lg *IngestLog) writeHeader() error {
	hdr := make([]byte, 0, ingestHeaderSize)
	hdr = append(hdr, ingestMagic...)
	hdr = binary.BigEndian.AppendUint32(hdr, lg.baseRecords)
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(lg.baseEnd))
	hdr = binary.BigEndian.AppendUint32(hdr, crc32.Checksum(hdr, journalCRC))
	if _, err := lg.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("core: writing ingest log header: %w", err)
	}
	if err := lg.f.Sync(); err != nil {
		return fmt.Errorf("core: syncing ingest log header: %w", err)
	}
	lg.size = ingestHeaderSize
	lg.ops = 0
	return nil
}

// OpenIngestLog reads an existing log, validating the header and the
// longest valid prefix of batches. It truncates the file back to that
// prefix (dropping any torn tail — by construction never acknowledged)
// and returns the log positioned for further appends plus the decoded
// operations to replay. ok is false when the header itself is invalid:
// the log was being created or reset when the crash hit, nothing in it
// was acknowledged, and the caller should discard the file.
func OpenIngestLog(f storage.File) (lg *IngestLog, ops []IngestOp, ok bool, err error) {
	size, err := f.Size()
	if err != nil {
		return nil, nil, false, fmt.Errorf("core: sizing ingest log: %w", err)
	}
	if size < ingestHeaderSize {
		return nil, nil, false, nil
	}
	hdr := make([]byte, ingestHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, nil, false, fmt.Errorf("core: reading ingest log header: %w", err)
	}
	if string(hdr[:8]) != ingestMagic ||
		crc32.Checksum(hdr[:ingestHeaderSize-4], journalCRC) != binary.BigEndian.Uint32(hdr[ingestHeaderSize-4:]) {
		return nil, nil, false, nil
	}
	lg = &IngestLog{
		f:           f,
		baseRecords: binary.BigEndian.Uint32(hdr[8:12]),
		baseEnd:     int64(binary.BigEndian.Uint64(hdr[12:20])),
	}
	pos := int64(ingestHeaderSize)
	var lenBuf [4]byte
	for pos+8 <= size {
		if _, err := f.ReadAt(lenBuf[:], pos); err != nil {
			return nil, nil, false, fmt.Errorf("core: reading ingest batch at %d: %w", pos, err)
		}
		n := int64(binary.BigEndian.Uint32(lenBuf[:]))
		if n > maxIngestBatchBytes || pos+8+n > size {
			break // torn tail: the batch never finished reaching the disk
		}
		buf := make([]byte, n+4)
		if _, err := f.ReadAt(buf, pos+4); err != nil {
			return nil, nil, false, fmt.Errorf("core: reading ingest batch at %d: %w", pos, err)
		}
		payload, tail := buf[:n], buf[n:]
		if crc32.Checksum(payload, journalCRC) != binary.BigEndian.Uint32(tail) {
			break // torn tail: checksum cannot match a partial write
		}
		batch, decodeErr := decodeIngestBatch(payload)
		if decodeErr != nil {
			break // structurally damaged, same verdict as a bad checksum
		}
		ops = append(ops, batch...)
		pos += 8 + n
	}
	if pos < size {
		if err := f.Truncate(pos); err != nil {
			return nil, nil, false, fmt.Errorf("core: dropping torn ingest tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, nil, false, fmt.Errorf("core: dropping torn ingest tail: %w", err)
		}
	}
	lg.size = pos
	lg.ops = len(ops)
	return lg, ops, true, nil
}

// Base returns the committed store state the log was created over: the
// record count and heap byte size that recovery truncates back to before
// replaying.
func (lg *IngestLog) Base() (records uint32, end int64) {
	return lg.baseRecords, lg.baseEnd
}

// Ops returns the number of operations appended since the base — the
// ingest lag a Save would clear.
func (lg *IngestLog) Ops() int { return lg.ops }

// Size returns the byte size of the durable log prefix.
func (lg *IngestLog) Size() int64 { return lg.size }

// VerifyPrefix re-validates the durable prefix of the log up to limit
// bytes: the header checksum and every batch's length framing, CRC, and
// structural decode, exactly the walk OpenIngestLog would perform after
// a crash — but read-only, against the live file. The scrubber uses it
// to catch latent damage to acknowledged batches while the process is
// still up, when the data they guard is still absorbable by a
// checkpoint, rather than at the next reopen when replay silently drops
// everything after the damage as a "torn tail".
//
// limit must be a durable prefix size the caller snapshotted while
// holding the ingest lock (lg.Size()); concurrent appends land past it
// and are not examined. A batch that fails validation inside the limit
// is corruption, not a torn tail, and returns an error.
func (lg *IngestLog) VerifyPrefix(limit int64) error {
	if limit < ingestHeaderSize {
		return fmt.Errorf("core: ingest log prefix of %d bytes is shorter than the header", limit)
	}
	hdr := make([]byte, ingestHeaderSize)
	if _, err := lg.f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("core: scrubbing ingest log header: %w", err)
	}
	if string(hdr[:8]) != ingestMagic ||
		crc32.Checksum(hdr[:ingestHeaderSize-4], journalCRC) != binary.BigEndian.Uint32(hdr[ingestHeaderSize-4:]) {
		return fmt.Errorf("core: ingest log header failed its checksum")
	}
	pos := int64(ingestHeaderSize)
	var lenBuf [4]byte
	for pos < limit {
		if pos+8 > limit {
			return fmt.Errorf("core: ingest batch framing at %d overruns the durable prefix (%d bytes)", pos, limit)
		}
		if _, err := lg.f.ReadAt(lenBuf[:], pos); err != nil {
			return fmt.Errorf("core: scrubbing ingest batch at %d: %w", pos, err)
		}
		n := int64(binary.BigEndian.Uint32(lenBuf[:]))
		if n > maxIngestBatchBytes || pos+8+n > limit {
			return fmt.Errorf("core: ingest batch at %d claims %d bytes, past the durable prefix (%d bytes)", pos, n, limit)
		}
		buf := make([]byte, n+4)
		if _, err := lg.f.ReadAt(buf, pos+4); err != nil {
			return fmt.Errorf("core: scrubbing ingest batch at %d: %w", pos, err)
		}
		payload, tail := buf[:n], buf[n:]
		if crc32.Checksum(payload, journalCRC) != binary.BigEndian.Uint32(tail) {
			return fmt.Errorf("core: ingest batch at %d failed its checksum", pos)
		}
		if _, err := decodeIngestBatch(payload); err != nil {
			return fmt.Errorf("core: ingest batch at %d: %w", pos, err)
		}
		pos += 8 + n
	}
	return nil
}

// AppendBatch encodes the batch, appends it after the current prefix,
// and fsyncs — the single group-commit fsync that makes every operation
// in the batch durable at once. On any error the log file is rolled back
// to its previous size (best effort) and the batch must be treated as
// never acknowledged.
func (lg *IngestLog) AppendBatch(ops []IngestOp) error {
	if len(ops) == 0 {
		return nil
	}
	buf := encodeIngestBatch(ops)
	if _, err := lg.f.WriteAt(buf, lg.size); err != nil {
		lg.rollbackTo(lg.size)
		return fmt.Errorf("core: appending ingest batch: %w", err)
	}
	if err := lg.f.Sync(); err != nil {
		lg.rollbackTo(lg.size)
		return fmt.Errorf("core: syncing ingest batch: %w", err)
	}
	lg.size += int64(len(buf))
	lg.ops += len(ops)
	return nil
}

// rollbackTo tries to truncate the file back to size after a failed
// append. Failure is tolerable: the partial batch fails its checksum on
// the next open and is dropped there instead.
func (lg *IngestLog) rollbackTo(size int64) {
	if err := lg.f.Truncate(size); err != nil {
		return
	}
	_ = lg.f.Sync()
}

// TruncateBatch removes the most recently appended batch after its
// apply failed: the file is truncated back to prevSize and fsynced, so
// a later crash cannot replay the unacknowledged batch, and the
// operation count drops by nops.
func (lg *IngestLog) TruncateBatch(prevSize int64, nops int) error {
	if err := lg.f.Truncate(prevSize); err != nil {
		return fmt.Errorf("core: truncating failed ingest batch: %w", err)
	}
	if err := lg.f.Sync(); err != nil {
		return fmt.Errorf("core: truncating failed ingest batch: %w", err)
	}
	lg.size = prevSize
	lg.ops -= nops
	return nil
}

// Reset truncates the log to empty and writes a fresh header recording
// the new committed base. Save calls it only after the shadow commit has
// durably absorbed everything the log held; a crash inside Reset leaves
// an invalid header, which recovery treats as "no log" — correct,
// because the previous contents are already committed elsewhere.
func (lg *IngestLog) Reset(baseRecords uint32, baseEnd int64) error {
	if err := lg.f.Truncate(0); err != nil {
		return fmt.Errorf("core: resetting ingest log: %w", err)
	}
	lg.baseRecords = baseRecords
	lg.baseEnd = baseEnd
	return lg.writeHeader()
}

// Close closes the underlying file.
func (lg *IngestLog) Close() error { return lg.f.Close() }

func encodeIngestBatch(ops []IngestOp) []byte {
	var b bytes.Buffer
	var u [8]byte
	put32 := func(v uint32) {
		binary.BigEndian.PutUint32(u[:4], v)
		b.Write(u[:4])
	}
	put32(0) // payload length, patched below
	put32(uint32(len(ops)))
	for _, op := range ops {
		b.WriteByte(op.Kind)
		put32(op.Rec)
		if op.Kind == IngestOpInsert {
			put32(uint32(len(op.XML)))
			b.Write(op.XML)
		}
	}
	buf := b.Bytes()
	payload := buf[4:]
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, journalCRC))
}

func decodeIngestBatch(payload []byte) ([]IngestOp, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("core: ingest batch too short")
	}
	nops := binary.BigEndian.Uint32(payload)
	if nops > maxIngestBatchOps {
		return nil, fmt.Errorf("core: ingest batch claims %d ops", nops)
	}
	pos := 4
	ops := make([]IngestOp, 0, nops)
	for i := uint32(0); i < nops; i++ {
		if pos+5 > len(payload) {
			return nil, fmt.Errorf("core: ingest batch truncated at op %d", i)
		}
		op := IngestOp{Kind: payload[pos], Rec: binary.BigEndian.Uint32(payload[pos+1:])}
		pos += 5
		switch op.Kind {
		case IngestOpInsert:
			if pos+4 > len(payload) {
				return nil, fmt.Errorf("core: ingest batch truncated at op %d", i)
			}
			n := int(binary.BigEndian.Uint32(payload[pos:]))
			pos += 4
			if n > maxIngestBatchBytes || pos+n > len(payload) {
				return nil, fmt.Errorf("core: ingest batch truncated at op %d", i)
			}
			op.XML = payload[pos : pos+n : pos+n]
			pos += n
		case IngestOpDelete:
		default:
			return nil, fmt.Errorf("core: unknown ingest op kind %d", op.Kind)
		}
		ops = append(ops, op)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("core: %d trailing bytes in ingest batch", len(payload)-pos)
	}
	return ops, nil
}
