package core

import (
	"fmt"
	"hash/fnv"
	"math"

	"github.com/fix-index/fix/internal/bisim"
	"github.com/fix-index/fix/internal/eigen"
	"github.com/fix-index/fix/internal/matrix"
)

// Features is the eigenvalue pair used as the index key together with the
// root label (paper §3.4). Oversize patterns carry the artificial
// [-Inf, +Inf] range so they are always candidates (paper §6.1).
type Features struct {
	Min, Max float64
	Oversize bool
}

// Contains reports whether f's range contains g's (the pruning test of
// Theorem 3: a subpattern's eigenvalue range is contained in the
// pattern's).
func (f Features) Contains(g Features) bool {
	return f.Min <= g.Min && g.Max <= f.Max
}

// oversizeFeatures is the artificial always-candidate range.
func oversizeFeatures() Features {
	return Features{Min: math.Inf(-1), Max: math.Inf(1), Oversize: true}
}

// denseEigenLimit is the vertex count up to which the dense O(n³) solver
// is used; larger graphs switch to sparse power iteration with a small
// upward safety margin (queries are always tiny and therefore always take
// the exact dense path, so the margin cannot introduce false negatives).
const denseEigenLimit = 300

// graphFeatures computes the feature pair of a bisimulation graph. With
// assign=true unseen edge label pairs are added to the encoder (index
// construction); with assign=false an unseen pair reports ok=false,
// meaning the pattern cannot occur in the indexed data.
func graphFeatures(g *bisim.Graph, enc *matrix.EdgeEncoder, assign bool) (Features, bool, error) {
	mg := g.MatrixGraph()
	if n := mg.NumVertices(); n > denseEigenLimit {
		edges, ok := matrix.BuildEdges(mg, enc, assign)
		if !ok {
			return Features{}, false, nil
		}
		sigma := eigen.SafetyMargin(eigen.SkewMaxSparse(n, edges))
		return Features{Min: -sigma, Max: sigma}, true, nil
	}
	m, ok := matrix.BuildSkew(mg, enc, assign)
	if !ok {
		return Features{}, false, nil
	}
	min, max, err := eigen.SkewExtremes(m)
	if err != nil {
		return Features{}, false, fmt.Errorf("core: eigenvalues: %w", err)
	}
	return Features{Min: min, Max: max}, true, nil
}

// graphSpectrumTail returns σ₂..σ₍k+1₎ of the graph's skew matrix (the
// key already carries σ₁), or nil when k is zero or the graph is too
// large for the dense solver — a missing spectrum only disables the extra
// filter, never correctness.
func graphSpectrumTail(g *bisim.Graph, enc *matrix.EdgeEncoder, k int) []float64 {
	if k <= 0 {
		return nil
	}
	mg := g.MatrixGraph()
	if mg.NumVertices() > denseEigenLimit {
		return nil
	}
	m, ok := matrix.BuildSkew(mg, enc, false)
	if !ok {
		return nil
	}
	sigma, err := eigen.SkewSpectrum(m)
	if err != nil {
		return nil
	}
	if len(sigma) <= 1 {
		return nil
	}
	tail := sigma[1:]
	if len(tail) > k {
		tail = tail[:k]
	}
	return append([]float64(nil), tail...)
}

// spectrumContains reports whether an entry's stored spectrum tail
// dominates every twig's query spectrum component-wise (σ_j(entry) ≥
// σ_j(query) for every stored j). Missing components on either side are
// treated as unknown and never prune.
func spectrumContains(entry []float64, queries [][]float64) bool {
	if len(entry) == 0 {
		return true
	}
	const slack = 1e-9
	for _, q := range queries {
		n := len(q)
		if len(entry) < n {
			n = len(entry)
		}
		for j := 0; j < n; j++ {
			if entry[j] < q[j]-slack*(1+q[j]) {
				return false
			}
		}
	}
	return true
}

// subpatternFeatures returns the (memoized) features of the depth-limited
// subpattern rooted at vertex v, falling back to the artificial range when
// the unfolding exceeds the edge budget. When spectrumK > 0 it also
// returns (and caches) the entry's spectrum tail. With assign=true unseen
// edge pairs are added to the encoder (the sequential incremental-insert
// path); the parallel build passes assign=false because every pair of the
// record's graph was assigned at the pipeline's merge point, keeping the
// encoder read-only across workers — a missing pair then is an internal
// invariant violation, not a data property.
func subpatternFeatures(v *bisim.Vertex, depthLimit, budget int, enc *matrix.EdgeEncoder, spectrumK int, assign bool) (Features, []float64, error) {
	if v.Feats.Set {
		if v.Feats.Oversize {
			return oversizeFeatures(), nil, nil
		}
		return Features{Min: v.Feats.Min, Max: v.Feats.Max}, v.Feats.Spectrum, nil
	}
	g, ok, err := bisim.Subpattern(v, depthLimit, budget)
	if err != nil {
		return Features{}, nil, err
	}
	var f Features
	var spec []float64
	if !ok {
		f = oversizeFeatures()
	} else {
		f, ok, err = graphFeatures(g, enc, assign)
		if err != nil {
			return Features{}, nil, err
		}
		if !ok {
			return Features{}, nil, fmt.Errorf("core: internal: subpattern uses an edge pair missing after pre-assignment")
		}
		spec = graphSpectrumTail(g, enc, spectrumK)
	}
	v.Feats = bisim.Features{Set: true, Oversize: f.Oversize, Min: f.Min, Max: f.Max, Spectrum: spec}
	return f, spec, nil
}

// valueHasher implements the paper's §4.6 mapping of PCDATA into the small
// label range (α, α+β], where α is the largest element label ID.
type valueHasher struct {
	alpha uint32
	beta  uint32
}

func (h valueHasher) hash(value string) uint32 {
	f := fnv.New32a()
	// Writes to an fnv hash never fail.
	_, _ = f.Write([]byte(value))
	return h.alpha + 1 + f.Sum32()%h.beta
}
