package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/fix-index/fix/internal/btree"
	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/obs"
	"github.com/fix-index/fix/internal/par"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// Generation is one immutable, published snapshot of the queryable state:
// a frozen B-tree image, a frozen view of the primary heap's record
// table, the tombstone set as of the freeze, and the (shared, read-only)
// query-planning state of the index it was frozen from. Queries against a
// Generation take no lock anywhere — not the B-tree mutex, not the store
// mutex — so any number of goroutines can query one concurrently while
// writers prepare and publish the next generation.
//
// Generations are reference counted: the publisher holds one reference
// (released when the next generation replaces it), and every pinned
// reader holds one more. When the count reaches zero the release hook
// runs and the generation's memory becomes collectable; the heap file
// itself is shared with the live store and is never reclaimed per
// generation.
type Generation struct {
	id      uint64            // immutable after publish
	ix      *Index            // immutable after publish (plan state is read-only and shared)
	view    *btree.View       // immutable after publish (nil when degraded or index-less)
	store   *storage.ReadView // immutable after publish
	tombs   *storage.TombSet  // immutable after publish
	dict    *xmltree.Dict     // immutable after publish
	workers int               // immutable after publish
	entries int               // immutable after publish
	health  error             // immutable after publish (frozen at freeze time)

	refs      atomic.Int64
	onRelease func() // immutable after publish
}

// NewGeneration freezes the current state of store (and ix, which may be
// nil when no index exists) into a new Generation. prev, when it is the
// previously published generation of the same index, lets the B-tree
// freeze share unchanged page buffers. Freezing never fails: if the
// index is degraded, or the B-tree image cannot be materialized, the
// generation is published with that health problem recorded and answers
// queries through the exact scan fallback, mirroring a degraded Index.
//
// The caller receives the publisher's reference (refs = 1); onRelease
// runs once when the last reference is dropped.
func NewGeneration(id uint64, ix *Index, store *storage.Store, dict *xmltree.Dict, prev *Generation, onRelease func()) *Generation {
	g := &Generation{
		id:        id,
		ix:        ix,
		store:     store.Freeze(),
		tombs:     store.TombSnapshot(),
		dict:      dict,
		onRelease: onRelease,
	}
	g.refs.Store(1)
	if ix != nil {
		g.workers = ix.Options().Workers
		g.health = ix.Health()
		if g.health == nil {
			var pv *btree.View
			if prev != nil && prev.ix == ix {
				pv = prev.view
			}
			if bt := ix.BTree(); bt != nil {
				v, err := bt.FreezeView(pv)
				if err != nil {
					g.health = fmt.Errorf("%w: freezing index view: %w", ErrDegraded, err)
					// Freezing reads (and verifies) every changed page, so
					// a failure here is detected corruption of the live
					// tree — record it on the index like the query path
					// does, so Health reports it until a rebuild.
					ix.setHealth(err)
				} else {
					g.view = v
					g.entries = v.Len()
				}
			} else {
				g.health = fmt.Errorf("%w: B-tree unavailable", ErrDegraded)
			}
		}
	}
	return g
}

// ID returns the generation's publish sequence number.
func (g *Generation) ID() uint64 { return g.id }

// Health returns nil for a generation frozen from a healthy index (or
// one with no index at all), and otherwise the problem — frozen at
// freeze time — that routes its queries to the scan fallback.
func (g *Generation) Health() error { return g.health }

// Entries returns the number of index entries in the frozen image.
func (g *Generation) Entries() int { return g.entries }

// HasIndex reports whether the generation carries an index.
func (g *Generation) HasIndex() bool { return g.ix != nil }

// Store returns the frozen view of the primary heap.
func (g *Generation) Store() *storage.ReadView { return g.store }

// Tombs returns the frozen tombstone set.
func (g *Generation) Tombs() *storage.TombSet { return g.tombs }

// Workers returns the worker-pool bound frozen from the index options.
func (g *Generation) Workers() int { return g.workers }

// Refs returns the current reference count (for tests and metrics).
func (g *Generation) Refs() int64 { return g.refs.Load() }

// Pin takes a reference, reporting false when the generation is already
// fully released (the count was zero — the caller raced a final Unpin
// and must reload the current generation and retry).
func (g *Generation) Pin() bool {
	for {
		n := g.refs.Load()
		if n <= 0 {
			return false
		}
		if g.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Unpin drops a reference; the last drop runs the release hook.
func (g *Generation) Unpin() {
	if g.refs.Add(-1) == 0 && g.onRelease != nil {
		g.onRelease()
	}
}

// Covered reports whether the generation's index can answer the query.
func (g *Generation) Covered(path *xpath.Path) bool {
	return g.ix != nil && g.ix.Covered(path)
}

// candidates is candidatesForPlan over the frozen B-tree image: the same
// range scan and feature filter, minus every lock.
func (g *Generation) candidates(ctx context.Context, p *queryPlan, lim Limits) ([]Candidate, int, error) {
	if p.empty {
		return nil, 0, nil
	}
	if g.view == nil {
		return nil, 0, fmt.Errorf("%w: B-tree view unavailable", ErrCorrupt)
	}
	var from, to []byte
	if p.labelOK {
		from, to = scanBounds(p.topLabel, p.feats[0].Max)
	}
	var cands []Candidate
	scanned := 0
	cancelled := false
	overCap := false
	err := g.view.Scan(from, to, func(k, v []byte) bool {
		scanned++
		if scanned%1024 == 0 && ctx.Err() != nil {
			cancelled = true
			return false
		}
		ek := decodeKey(k)
		entry := Features{Min: ek.min, Max: ek.max}
		for _, f := range p.feats {
			if !entry.Contains(f) {
				return true
			}
		}
		ev := decodeValue(v)
		if !spectrumContains(ev.spectrum, p.specs) {
			return true
		}
		if lim.MaxCandidates > 0 && len(cands) >= lim.MaxCandidates {
			overCap = true
			return false
		}
		c := Candidate{Key: ek, Primary: storage.Pointer(ev.primary)}
		if ev.hasCopy {
			c.Clustered = storage.Pointer(ev.clustered)
			c.HasCopy = true
		}
		cands = append(cands, c)
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	if cancelled {
		return nil, 0, ctx.Err()
	}
	if overCap {
		return nil, 0, fmt.Errorf("%w: more than %d candidates", ErrBudgetExceeded, lim.MaxCandidates)
	}
	return cands, scanned, nil
}

// CandidatesCtx returns the index candidates for the query, or an error
// wrapping ErrDegraded when the generation was frozen degraded.
func (g *Generation) CandidatesCtx(ctx context.Context, path *xpath.Path) ([]Candidate, int, error) {
	if g.health != nil {
		return nil, 0, g.health
	}
	p, err := g.ix.plan(path)
	if err != nil {
		return nil, 0, err
	}
	return g.candidates(ctx, p, Limits{})
}

// QueryGoverned is Index.QueryGoverned against the frozen snapshot: the
// same pruning + refinement pipeline, trace accounting, and governance,
// with every read served lock-free from the generation. Refinement
// always follows primary pointers — the clustered heap belongs to the
// live index and may be replaced mid-generation by a rebuild, while the
// primary heap is append-only and safe to share.
func (g *Generation) QueryGoverned(ctx context.Context, path *xpath.Path, tr *obs.Trace, lim Limits) (Result, error) {
	planStart := time.Now()
	p, err := g.ix.plan(path)
	if tr != nil {
		tr.Phase[obs.PhasePlan] += time.Since(planStart)
	}
	if err != nil {
		return Result{}, err
	}
	if g.health != nil {
		return g.ScanCount(ctx, p.tree, tr, lim, true)
	}
	probeStart := time.Now()
	var bt0 btree.Stats
	if tr != nil {
		bt0 = g.view.Stats()
	}
	cands, scanned, err := g.candidates(ctx, p, lim)
	if tr != nil {
		tr.Phase[obs.PhaseProbe] += time.Since(probeStart)
		d := g.view.Stats().Sub(bt0)
		tr.BTree = obs.BTreeDelta{
			PageReads:  d.PageReads,
			PageWrites: d.PageWrites,
			CacheHits:  d.CacheHits,
			Evictions:  d.Evictions,
		}
	}
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			// The frozen image failed to decode (pages were verified at
			// freeze, so this is exceptional); answer exactly via the scan
			// and record the corruption on the live index like the locked
			// query path does.
			g.ix.setHealth(err)
			return g.ScanCount(ctx, p.tree, tr, lim, true)
		}
		return Result{}, err
	}
	res := Result{Entries: g.entries, Scanned: scanned, Candidates: len(cands)}
	rq, rootAnchored := g.ix.refinementQuery(p.tree)
	nq, err := nok.Compile(rq, g.dict)
	if err != nil {
		return Result{}, err
	}
	var st0 storage.Stats
	if tr != nil {
		st0 = g.store.Stats()
	}
	bud := refineBudget(ctx, lim)
	var fetchNS, refineNS, visited, running atomic.Int64
	counts := make([]int, len(cands))
	err = par.Do(ctx, g.workers, len(cands), func(i int) error {
		c := cands[i]
		if rootAnchored && c.Primary.Off() != 0 {
			return nil // a /-anchored query only matches document roots
		}
		if g.tombs.Has(c.Primary.Rec()) {
			return nil // tombstoned: entries may outlive the delete until rebuild
		}
		if tr == nil {
			cur, ref, err := g.store.ReadSubtree(c.Primary)
			if err != nil {
				return err
			}
			n := 0
			if bud == nil {
				n = nq.Count(cur, ref)
			} else {
				n, _, err = nq.EvalBudget(cur, ref, bud)
				if err != nil {
					return budgetErr(err)
				}
			}
			counts[i] = n
			if n > 0 {
				return errResultCap(running.Add(int64(n)), lim)
			}
			return nil
		}
		fetchStart := time.Now()
		cur, ref, err := g.store.ReadSubtree(c.Primary)
		refineStart := time.Now()
		fetchNS.Add(int64(refineStart.Sub(fetchStart)))
		if err != nil {
			return err
		}
		n, nodes, err := nq.EvalBudget(cur, ref, bud)
		refineNS.Add(int64(time.Since(refineStart)))
		visited.Add(int64(nodes))
		if err != nil {
			return budgetErr(err)
		}
		counts[i] = n
		if n > 0 {
			return errResultCap(running.Add(int64(n)), lim)
		}
		return nil
	})
	if tr != nil {
		tr.Phase[obs.PhaseFetch] += time.Duration(fetchNS.Load())
		tr.Phase[obs.PhaseRefine] += time.Duration(refineNS.Load())
		tr.NodesVisited += visited.Load()
		tr.Workers = par.Workers(g.workers)
		tr.Storage = tr.Storage.Add(storageDelta(g.store.Stats().Sub(st0)))
	}
	if err != nil {
		return Result{}, err
	}
	for _, n := range counts {
		if n > 0 {
			res.Matched++
			res.Count += n
		}
	}
	if tr != nil {
		tr.Entries, tr.Scanned, tr.Candidates = res.Entries, res.Scanned, res.Candidates
		tr.Matched, tr.Count = res.Matched, res.Count
	}
	return res, nil
}

// ExistsGoverned is Index.ExistsCtx against the frozen snapshot: lazy
// refinement, first hit stops the pool.
func (g *Generation) ExistsGoverned(ctx context.Context, path *xpath.Path) (bool, error) {
	p, err := g.ix.plan(path)
	if err != nil {
		return false, err
	}
	if g.health != nil {
		return g.ScanExists(ctx, p.tree)
	}
	cands, _, err := g.candidates(ctx, p, Limits{})
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			g.ix.setHealth(err)
			return g.ScanExists(ctx, p.tree)
		}
		return false, err
	}
	rq, rootAnchored := g.ix.refinementQuery(p.tree)
	nq, err := nok.Compile(rq, g.dict)
	if err != nil {
		return false, err
	}
	var found atomic.Bool
	err = par.Do(ctx, g.workers, len(cands), func(i int) error {
		if found.Load() {
			return nil
		}
		c := cands[i]
		if rootAnchored && c.Primary.Off() != 0 {
			return nil
		}
		if g.tombs.Has(c.Primary.Rec()) {
			return nil
		}
		cur, ref, err := g.store.ReadSubtree(c.Primary)
		if err != nil {
			return err
		}
		if nq.Exists(cur, ref) {
			found.Store(true)
			return errFoundMatch
		}
		return nil
	})
	if err != nil && !errors.Is(err, errFoundMatch) {
		return false, err
	}
	return found.Load(), nil
}

// ScanCount answers a query without the index by refining every live
// record of the frozen heap view, under the same governance as the
// indexed path. When markFallback is set the result and trace are
// flagged as a degraded-index fallback (the caller passes false for a
// deliberate scan, where it owns the flagging).
func (g *Generation) ScanCount(ctx context.Context, qt *xpath.QNode, tr *obs.Trace, lim Limits, markFallback bool) (Result, error) {
	nq, err := nok.Compile(qt, g.dict)
	if err != nil {
		return Result{}, err
	}
	var st0 storage.Stats
	if tr != nil {
		st0 = g.store.Stats()
	}
	bud := refineBudget(ctx, lim)
	var fetchNS, refineNS, visited, running atomic.Int64
	nrec := g.store.NumRecords()
	counts := make([]int, nrec)
	err = par.Do(ctx, g.workers, nrec, func(i int) error {
		if g.tombs.Has(uint32(i)) {
			return nil // tombstoned records are not part of the collection
		}
		if tr == nil {
			cur, err := g.store.Cursor(uint32(i))
			if err != nil {
				return err
			}
			n := 0
			if bud == nil {
				n = nq.Count(cur, 0)
			} else {
				n, _, err = nq.EvalBudget(cur, 0, bud)
				if err != nil {
					return budgetErr(err)
				}
			}
			counts[i] = n
			if n > 0 {
				return errResultCap(running.Add(int64(n)), lim)
			}
			return nil
		}
		fetchStart := time.Now()
		cur, err := g.store.Cursor(uint32(i))
		refineStart := time.Now()
		fetchNS.Add(int64(refineStart.Sub(fetchStart)))
		if err != nil {
			return err
		}
		n, nodes, err := nq.EvalBudget(cur, 0, bud)
		refineNS.Add(int64(time.Since(refineStart)))
		visited.Add(int64(nodes))
		if err != nil {
			return budgetErr(err)
		}
		counts[i] = n
		if n > 0 {
			return errResultCap(running.Add(int64(n)), lim)
		}
		return nil
	})
	if tr != nil {
		if markFallback {
			tr.Fallback = true
		}
		tr.Workers = par.Workers(g.workers)
		tr.Phase[obs.PhaseFetch] += time.Duration(fetchNS.Load())
		tr.Phase[obs.PhaseRefine] += time.Duration(refineNS.Load())
		tr.NodesVisited += visited.Load()
		tr.Storage = tr.Storage.Add(storageDelta(g.store.Stats().Sub(st0)))
	}
	if err != nil {
		return Result{}, err
	}
	res := Result{Fallback: markFallback}
	for _, n := range counts {
		if n > 0 {
			res.Matched++
			res.Count += n
		}
	}
	if tr != nil {
		tr.Matched, tr.Count = res.Matched, res.Count
	}
	return res, nil
}

// ScanExists is the Exists counterpart of ScanCount.
func (g *Generation) ScanExists(ctx context.Context, qt *xpath.QNode) (bool, error) {
	nq, err := nok.Compile(qt, g.dict)
	if err != nil {
		return false, err
	}
	var found atomic.Bool
	err = par.Do(ctx, g.workers, g.store.NumRecords(), func(i int) error {
		if found.Load() || g.tombs.Has(uint32(i)) {
			return nil
		}
		cur, err := g.store.Cursor(uint32(i))
		if err != nil {
			return err
		}
		if nq.Exists(cur, 0) {
			found.Store(true)
			return errFoundMatch
		}
		return nil
	})
	if err != nil && !errors.Is(err, errFoundMatch) {
		return false, err
	}
	return found.Load(), nil
}
