package core

import (
	"testing"

	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

func TestInsertDocumentCollection(t *testing.T) {
	st, ix := buildCollection(t, bibDocs, Options{})
	n, err := xmltree.ParseString(`<article><title>new</title><author><phone>p</phone><email>e</email></author></article>`)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.AppendTree(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.InsertDocument(rec); err != nil {
		t.Fatal(err)
	}
	if ix.Entries() != len(bibDocs)+1 {
		t.Fatalf("entries = %d, want %d", ix.Entries(), len(bibDocs)+1)
	}
	q := xpath.MustParse("//author[phone][email]")
	wantDocs, wantCount := bruteCount(t, st, q)
	res, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched != wantDocs || res.Count != wantCount {
		t.Errorf("after insert: got %d/%d, want %d/%d", res.Matched, res.Count, wantDocs, wantCount)
	}
}

func TestInsertDocumentDepthLimited(t *testing.T) {
	st, ix := buildSingleDoc(t, deepDoc, Options{DepthLimit: 3, Clustered: true})
	n, err := xmltree.ParseString(`<dblp><inproceedings><author>zz</author><title>t<i>q</i></title><url>u</url></inproceedings></dblp>`)
	if err != nil {
		t.Fatal(err)
	}
	before := ix.Entries()
	rec, err := st.AppendTree(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.InsertDocument(rec); err != nil {
		t.Fatal(err)
	}
	if ix.Entries() != before+n.CountElements() {
		t.Fatalf("entries = %d, want %d", ix.Entries(), before+n.CountElements())
	}
	q := xpath.MustParse("//inproceedings[url]/title/i")
	_, wantCount := bruteCount(t, st, q)
	res, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != wantCount {
		t.Errorf("after insert: count = %d, want %d", res.Count, wantCount)
	}
}

func TestDeleteDocument(t *testing.T) {
	st, ix := buildCollection(t, bibDocs, Options{})
	q := xpath.MustParse("//author[email]")
	before, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Document 0 matches; remove it from the index.
	removed, err := ix.DeleteDocument(0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d entries, want 1", removed)
	}
	if ix.Entries() != len(bibDocs)-1 {
		t.Fatalf("entries = %d", ix.Entries())
	}
	after, err := ix.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Matched != before.Matched-1 {
		t.Errorf("matched = %d, want %d", after.Matched, before.Matched-1)
	}
	_ = st
}

func TestInsertThenDeleteRoundTrip(t *testing.T) {
	st, ix := buildCollection(t, bibDocs, Options{})
	n, err := xmltree.ParseString(`<www><title>x</title><author><email>e</email></author></www>`)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.AppendTree(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.InsertDocument(rec); err != nil {
		t.Fatal(err)
	}
	removed, err := ix.DeleteDocument(rec)
	if err != nil || removed != 1 {
		t.Fatalf("removed %d, err %v", removed, err)
	}
	if ix.Entries() != len(bibDocs) {
		t.Errorf("entries = %d, want %d", ix.Entries(), len(bibDocs))
	}
}
