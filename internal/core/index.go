package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fix-index/fix/internal/bisim"
	"github.com/fix-index/fix/internal/btree"
	"github.com/fix-index/fix/internal/matrix"
	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/obs"
	"github.com/fix-index/fix/internal/par"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// ErrNotCovered reports that a query is deeper than the index's depth
// limit, so the index cannot be used for it (paper §4.4).
var ErrNotCovered = errors.New("core: query deeper than index depth limit")

// ErrCorrupt is the B-tree's corruption error, re-exported so callers of
// the core package can test for it without importing internal/btree.
var ErrCorrupt = btree.ErrCorrupt

// ErrDegraded reports that the index cannot be trusted — corruption was
// detected, or the index is stale relative to the primary store — and
// queries are being served by the scan fallback until a rebuild.
var ErrDegraded = errors.New("core: index degraded")

// Options configures index construction.
type Options struct {
	// DepthLimit is the subpattern depth limit L of Algorithm 1. Zero
	// indexes each document as a single entry (the collection scenario);
	// positive L enumerates one depth-L subpattern per element
	// (Theorem 4), the large-document scenario.
	DepthLimit int
	// Clustered selects the clustered layout: candidate subtrees are
	// copied into a key-ordered heap so refinement I/O is sequential
	// (paper §4.1, Figure 4).
	Clustered bool
	// Values enables the integrated value index (§4.6): text nodes are
	// hashed into (α, α+β] and indexed as leaf labels.
	Values bool
	// Beta is the value-hash range β; default 10 (the paper's DBLP
	// setting).
	Beta uint32
	// EdgeBudget caps the bisimulation graph size for eigenvalue
	// computation; larger subpatterns fall back to the artificial
	// [-Inf,+Inf] range. Default 3000 edges, as in the paper (§6.1).
	EdgeBudget int
	// PageSize and CacheSize configure the B-tree; zero values pick the
	// defaults.
	PageSize, CacheSize int
	// NoRootLabel disables the root-label component of the pruning test
	// (query planning falls back to a feature-only full scan). It exists
	// for the ablation study of the label feature (paper §3.4).
	NoRootLabel bool
	// SpectrumK stores, per entry, the next K eigenvalue magnitudes
	// beyond λmax (σ₂..σ₍K+1₎) and filters candidates by component-wise
	// dominance — the paper's §3.3 "whole set of eigenvalues" idea made
	// practical (fixed K, stored in the B-tree value, no equality tests).
	// With the default sound bound the query side uses the verified-exact
	// pattern's spectrum, so Cauchy interlacing makes the filter
	// complete. 0 disables it; values are capped at 8.
	SpectrumK int
	// Workers bounds the worker pool that parallelizes per-record feature
	// extraction during Build and candidate refinement during queries.
	// Zero (the default) means one worker per available CPU (GOMAXPROCS);
	// 1 forces fully sequential execution. The index bytes produced by
	// Build are identical for every Workers value. Workers is a runtime
	// tuning knob: it is not persisted with the index, so a reopened
	// index runs with the default until set again.
	Workers int
	// PaperPruning selects the paper's literal pruning bound: the σmax
	// of the (canonicalized) query pattern. That bound can produce rare
	// false negatives — a match is a homomorphism, and even injective
	// images may gain edges that LOWER σmax, violating the induced-
	// subgraph premise of Theorem 3 — so it is off by default. The
	// default bound is provably complete: the maximum of the ≤3-vertex
	// induced bound and the σmax of the largest subpattern whose label
	// pairs certify that no extra image edges can exist. The experiments
	// run both; see DESIGN.md and EXPERIMENTS.md.
	PaperPruning bool
	// Dir, when non-empty, stores the B-tree and the clustered heap in
	// files under this directory; otherwise everything index-side lives
	// in memory files.
	Dir string
	// fs overrides how the index creates and opens its own files; the
	// crash tests inject storage faults through it. Nil means the real
	// filesystem.
	fs *indexFS
}

func (o *Options) filesystem() *indexFS {
	if o.fs != nil {
		return o.fs
	}
	return osFS
}

func (o *Options) setDefaults() {
	if o.Beta == 0 {
		o.Beta = 10
	}
	if o.EdgeBudget == 0 {
		o.EdgeBudget = 3000
	}
	if o.SpectrumK > 8 {
		o.SpectrumK = 8
	}
	if o.SpectrumK < 0 {
		o.SpectrumK = 0
	}
}

// Index is a FIX index over one primary store.
type Index struct {
	opts      Options
	store     *storage.Store
	dict      *xmltree.Dict
	bt        *btree.Tree
	enc       *matrix.EdgeEncoder
	clustered *storage.Store
	vh        valueHasher

	seq         uint64
	oversize    int
	maxDocDepth int
	buildTime   time.Duration
	buildStats  BuildStats

	// healthMu serializes health transitions because concurrent queries
	// may detect corruption simultaneously. It is a leaf lock: never
	// held across I/O or while taking another lock (lockcheck: leaf).
	healthMu sync.Mutex
	// health is the first corruption or staleness problem observed, set
	// at Open time or by a query-time page read; nil means healthy. Once
	// set, queries answer from the scan fallback. Guarded by healthMu.
	health error
}

// Health returns nil for a healthy index, or an error (wrapping
// ErrDegraded, and ErrCorrupt when the cause was corruption) describing
// why the index has been taken out of the query path. A degraded index
// still answers queries correctly via the scan fallback; RebuildIndex
// restores it.
func (ix *Index) Health() error {
	ix.healthMu.Lock()
	defer ix.healthMu.Unlock()
	return ix.health
}

// Degrade records err as the index's health problem, taking the index
// out of the query path until a rebuild (queries keep answering exactly
// via the scan fallback). The public API's panic-containment barrier
// uses it: after a recovered panic the in-memory index state cannot be
// trusted, so the conservative move is the same as for detected
// corruption. Only the first problem is kept.
func (ix *Index) Degrade(err error) { ix.setHealth(err) }

// setHealth records the first problem that degrades the index.
func (ix *Index) setHealth(err error) {
	ix.healthMu.Lock()
	defer ix.healthMu.Unlock()
	if ix.health == nil {
		ix.health = fmt.Errorf("%w: %w", ErrDegraded, err)
	}
}

// Candidate is one index hit: the pruning phase returns these and the
// refinement phase validates them.
type Candidate struct {
	Key       entryKey
	Primary   storage.Pointer
	Clustered storage.Pointer
	HasCopy   bool
}

// Result summarizes one query execution.
type Result struct {
	Entries    int // total index entries (ent)
	Scanned    int // entries touched by the range scan
	Candidates int // entries surviving the feature filter (cdt)
	Matched    int // candidates producing at least one result (rst)
	Count      int // total output-node matches
	// Fallback reports that the index was degraded (see Health) and the
	// result came from a full sequential scan of the primary store. The
	// counts are exact; the pruning statistics are zero.
	Fallback bool
}

func indexFile(opts Options, name string) (storage.File, error) {
	if opts.Dir == "" {
		return storage.NewMemFile(), nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	return opts.filesystem().create(filepath.Join(opts.Dir, name))
}

func (ix *Index) insert(label uint32, f Features, spectrum []float64, ptr storage.Pointer) error {
	if f.Oversize {
		ix.oversize++
	}
	k := entryKey{label: label, max: f.Max, min: f.Min, seq: ix.seq}
	ix.seq++
	v := entryValue{primary: uint64(ptr), spectrum: spectrum}
	return ix.bt.Put(k.encode(), v.encode())
}

// buildClustered copies every entry's subtree into a fresh heap in key
// order and rewrites the B-tree values to carry both pointers. The copy
// order is the key order, so the heap stays sequential-read friendly;
// the loop observes ctx between entries.
func (ix *Index) buildClustered(ctx context.Context) error {
	type kv struct {
		key []byte
		val entryValue
	}
	var entries []kv
	err := ix.bt.Scan(nil, nil, func(k, v []byte) bool {
		entries = append(entries, kv{append([]byte(nil), k...), decodeValue(v)})
		return true
	})
	if err != nil {
		return err
	}
	cf, err := indexFile(ix.opts, "fix.clustered")
	if err != nil {
		return err
	}
	ix.clustered, err = storage.NewStore(cf, ix.dict)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return err
		}
		cur, ref, err := ix.store.ReadSubtree(storage.Pointer(e.val.primary))
		if err != nil {
			return err
		}
		rec, err := ix.clustered.AppendBytes(cur.SubtreeBytes(ref))
		if err != nil {
			return err
		}
		e.val.hasCopy = true
		e.val.clustered = uint64(storage.MakePointer(rec, 0))
		if err := ix.bt.Put(e.key, e.val.encode()); err != nil {
			return err
		}
	}
	return nil
}

// Entries returns the number of index entries (ent in the paper's
// metrics), or 0 when the B-tree is unavailable.
func (ix *Index) Entries() int {
	if ix.bt == nil {
		return 0
	}
	return ix.bt.Len()
}

// OversizeEntries returns how many entries use the artificial range.
func (ix *Index) OversizeEntries() int { return ix.oversize }

// MaxDocDepth returns the deepest indexed document.
func (ix *Index) MaxDocDepth() int { return ix.maxDocDepth }

// BuildTime returns the wall-clock construction time.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// Stats returns the per-phase timing breakdown of the last Build. It is
// the zero value for indexes loaded from disk.
func (ix *Index) Stats() BuildStats { return ix.buildStats }

// Options returns the options the index was built with.
func (ix *Index) Options() Options { return ix.opts }

// BTree exposes the underlying B-tree (for stats and experiments). It is
// nil when the index is degraded because the tree could not be opened.
func (ix *Index) BTree() *btree.Tree { return ix.bt }

// Verify checks the on-disk integrity of the index: every B-tree page's
// checksum and structure, the meta/leaf entry-count agreement, and that
// every entry's primary pointer addresses an existing record. Problems
// are recorded in the health status and returned.
func (ix *Index) Verify() error {
	if err := ix.Health(); err != nil {
		return err
	}
	if err := ix.verify(); err != nil {
		ix.setHealth(err)
		return err
	}
	return nil
}

func (ix *Index) verify() error {
	if ix.bt == nil {
		return fmt.Errorf("%w: B-tree unavailable", ErrCorrupt)
	}
	if err := ix.bt.Verify(); err != nil {
		return err
	}
	nrec := uint32(ix.store.NumRecords())
	var bad error
	err := ix.bt.Scan(nil, nil, func(k, v []byte) bool {
		p := storage.Pointer(decodeValue(v).primary)
		if p.Rec() >= nrec {
			bad = fmt.Errorf("%w: entry points at record %d but the store holds %d", ErrCorrupt, p.Rec(), nrec)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return bad
}

// Store returns the primary store the index was built over.
func (ix *Index) Store() *storage.Store { return ix.store }

// ClusteredStore returns the clustered heap, or nil for unclustered
// indexes.
func (ix *Index) ClusteredStore() *storage.Store { return ix.clustered }

// SizeBytes returns the index size: B-tree pages plus the clustered heap.
func (ix *Index) SizeBytes() int64 {
	var size int64
	if ix.bt != nil {
		size = ix.bt.Size()
	}
	if ix.clustered != nil {
		size += ix.clustered.Size()
	}
	return size
}

// EdgePairs returns the number of distinct edge-label pairs assigned.
func (ix *Index) EdgePairs() int { return ix.enc.Len() }

// queryPlan carries the analyzed form of one query.
type queryPlan struct {
	tree     *xpath.QNode
	twigs    []*xpath.Twig
	feats    []Features  // per twig
	specs    [][]float64 // per twig: σ₂.. of the (exact) pattern, for SpectrumK
	topLabel uint32
	labelOK  bool // top twig root label restricts the scan
	empty    bool // provably no results
}

// plan computes twig features and the scan strategy for a query.
func (ix *Index) plan(path *xpath.Path) (*queryPlan, error) {
	qt := path.Tree()
	if qt == nil {
		return nil, fmt.Errorf("core: empty query")
	}
	p := &queryPlan{tree: qt, twigs: xpath.Decompose(qt)}
	top := p.twigs[0]
	if ix.opts.DepthLimit > 0 {
		if top.Root.Depth() > ix.opts.DepthLimit {
			return nil, fmt.Errorf("%w: top twig depth %d > limit %d", ErrNotCovered, top.Root.Depth(), ix.opts.DepthLimit)
		}
		// Descendant sub-twigs carry no pruning power for depth-limited
		// indexes (paper §5); only the top twig is used.
		p.twigs = p.twigs[:1]
	}
	for _, tw := range p.twigs {
		pn, ok := ix.resolve(tw.Root, nil)
		if !ok {
			p.empty = true
			return p, nil
		}
		canonicalize(pn)
		g, err := patternGraph(pn)
		if err != nil {
			return nil, err
		}
		var f Features
		specGraph := g
		if ix.opts.PaperPruning {
			f, ok, err = graphFeatures(g, ix.enc, false)
			if err != nil {
				return nil, err
			}
		} else {
			f, specGraph, ok, err = ix.soundFeatures(pn, g)
			if err != nil {
				return nil, err
			}
		}
		if !ok {
			p.empty = true
			return p, nil
		}
		p.feats = append(p.feats, f)
		if ix.opts.SpectrumK > 0 {
			p.specs = append(p.specs, graphSpectrumTail(specGraph, ix.enc, ix.opts.SpectrumK))
		}
	}
	// Root-label pruning applies to every depth-limited index (entries
	// are rooted at each element) and to collection indexes only for
	// root-anchored queries.
	if !ix.opts.NoRootLabel && (ix.opts.DepthLimit > 0 || qt.Axis == xpath.Child) {
		id, ok := ix.dict.Lookup(top.Root.Name)
		if !ok {
			p.empty = true
			return p, nil
		}
		p.topLabel, p.labelOK = id, true
	}
	return p, nil
}

// soundBound computes the provably sound pruning bound: the maximum σ
// over the pattern's guaranteed-induced substructures of at most three
// vertices (single edges and adjacent edge pairs). A 3×3 skew-symmetric
// matrix has σ = √(Σw²), which only grows when the data adds edges among
// the image vertices, so unlike the full-pattern σ this bound can never
// prune a true match. ok is false when a pattern edge never occurs in the
// data.
func (ix *Index) soundBound(g *bisim.Graph) (Features, bool) {
	best := 0.0
	for _, v := range g.Vertices {
		ws := make([]float64, 0, len(v.Children))
		for _, c := range v.Children {
			w, ok := ix.enc.Lookup(v.Label, c.Label)
			if !ok {
				return Features{}, false
			}
			fw := float64(w)
			ws = append(ws, fw)
			if fw > best {
				best = fw
			}
			// Chains v -> c -> gc.
			for _, gc := range c.Children {
				w2, ok := ix.enc.Lookup(c.Label, gc.Label)
				if !ok {
					return Features{}, false
				}
				if s := hyp(fw, float64(w2)); s > best {
					best = s
				}
			}
		}
		// Sibling stars v -> {ci, cj}.
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				if s := hyp(ws[i], ws[j]); s > best {
					best = s
				}
			}
		}
	}
	return Features{Min: -best, Max: best}, true
}

func hyp(a, b float64) float64 {
	return math.Sqrt(a*a + b*b)
}

type eventSlice struct {
	events []bisim.Event
	pos    int
}

func (s *eventSlice) Next() (bisim.Event, error) {
	if s.pos >= len(s.events) {
		return bisim.Event{}, io.EOF
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, nil
}

// Candidates runs the pruning phase: a B-tree range scan over the feature
// keys, keeping entries whose eigenvalue range contains every twig's range
// (and whose root label matches, when applicable). scanned reports how
// many entries the scan touched. On a degraded index Candidates returns
// the health error (wrapping ErrDegraded): its pruning promise — no false
// negatives — cannot be kept, so callers must scan instead.
func (ix *Index) Candidates(path *xpath.Path) (cands []Candidate, scanned int, err error) {
	return ix.CandidatesCtx(context.Background(), path)
}

// CandidatesCtx is Candidates with cancellation: the range scan observes
// ctx periodically and returns ctx.Err() promptly once it is cancelled.
func (ix *Index) CandidatesCtx(ctx context.Context, path *xpath.Path) (cands []Candidate, scanned int, err error) {
	if err := ix.Health(); err != nil {
		return nil, 0, err
	}
	p, err := ix.plan(path)
	if err != nil {
		return nil, 0, err
	}
	return ix.candidatesForPlan(ctx, p, Limits{})
}

func (ix *Index) candidatesForPlan(ctx context.Context, p *queryPlan, lim Limits) ([]Candidate, int, error) {
	if p.empty {
		return nil, 0, nil
	}
	if ix.bt == nil {
		return nil, 0, fmt.Errorf("%w: B-tree unavailable", ErrCorrupt)
	}
	var from, to []byte
	if p.labelOK {
		from, to = scanBounds(p.topLabel, p.feats[0].Max)
	} else {
		// No label restriction: scan everything; the feature filter
		// still applies.
		from, to = nil, nil
	}
	var cands []Candidate
	scanned := 0
	cancelled := false
	overCap := false
	err := ix.bt.Scan(from, to, func(k, v []byte) bool {
		scanned++
		if scanned%1024 == 0 && ctx.Err() != nil {
			cancelled = true
			return false
		}
		ek := decodeKey(k)
		entry := Features{Min: ek.min, Max: ek.max}
		for _, f := range p.feats {
			if !entry.Contains(f) {
				return true
			}
		}
		ev := decodeValue(v)
		if !spectrumContains(ev.spectrum, p.specs) {
			return true
		}
		if lim.MaxCandidates > 0 && len(cands) >= lim.MaxCandidates {
			overCap = true
			return false
		}
		c := Candidate{Key: ek, Primary: storage.Pointer(ev.primary)}
		if ev.hasCopy {
			c.Clustered = storage.Pointer(ev.clustered)
			c.HasCopy = true
		}
		cands = append(cands, c)
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	if cancelled {
		return nil, 0, ctx.Err()
	}
	if overCap {
		return nil, 0, fmt.Errorf("%w: more than %d candidates", ErrBudgetExceeded, lim.MaxCandidates)
	}
	return cands, scanned, nil
}

// Query runs the full pruning + refinement pipeline and returns result
// statistics. Refinement reads the clustered heap when present, otherwise
// it follows primary pointers.
//
// When the index is degraded — marked unhealthy at Open, or a page read
// during this very query detects corruption — Query falls back to a full
// sequential scan of the primary store. The fallback is semantically
// safe: refinement over every record can never miss a match, so the
// result set is exactly correct, only slower.
func (ix *Index) Query(path *xpath.Path) (Result, error) {
	return ix.QueryCtx(context.Background(), path)
}

// QueryCtx is Query with cancellation and parallel refinement: candidate
// verification fans out over the worker pool sized by Options.Workers
// (0 = GOMAXPROCS), with per-candidate results merged in candidate order
// so the statistics are deterministic. It is QueryTraced without a trace.
func (ix *Index) QueryCtx(ctx context.Context, path *xpath.Path) (Result, error) {
	return ix.QueryTraced(ctx, path, nil)
}

// QueryTraced is QueryCtx with an optional execution trace; it is
// QueryGoverned with no resource limits. A nil tr disables every timer
// and counter snapshot, so the untraced path does no extra work.
func (ix *Index) QueryTraced(ctx context.Context, path *xpath.Path, tr *obs.Trace) (Result, error) {
	return ix.QueryGoverned(ctx, path, tr, Limits{})
}

// QueryGoverned is the fully general query entry point: QueryCtx plus an
// optional execution trace (a non-nil tr accumulates per-phase wall
// times — plan, B-tree probe, candidate fetch, NoK refinement — and the
// I/O each phase caused; fetch/refine durations are summed across
// refinement workers, see obs.Trace) and per-query resource limits.
//
// Limits are enforced at the pipeline's natural checkpoints: the range
// scan stops once MaxCandidates is crossed, refinement draws every node
// visit from a shared budget of MaxRefineNodes, and the running match
// total is checked against MaxResults — each violation returns an error
// wrapping ErrBudgetExceeded. A cancellable ctx is additionally checked
// inside refinement (once per budget chunk), so a deadline interrupts
// even the evaluation of a single large subtree. With a zero Limits and
// a context that cannot be cancelled, the pipeline is byte-for-byte the
// ungoverned one. On a limit or deadline error a non-nil tr retains the
// phases that completed, so the caller can attribute where the budget
// went (the partial trace).
func (ix *Index) QueryGoverned(ctx context.Context, path *xpath.Path, tr *obs.Trace, lim Limits) (Result, error) {
	planStart := time.Now()
	p, err := ix.plan(path)
	if tr != nil {
		tr.Phase[obs.PhasePlan] += time.Since(planStart)
	}
	if err != nil {
		return Result{}, err
	}
	if ix.Health() != nil {
		return ix.scanFallback(ctx, p.tree, tr, lim)
	}
	probeStart := time.Now()
	var bt0 btree.Stats
	if tr != nil {
		bt0 = ix.bt.Stats()
	}
	cands, scanned, err := ix.candidatesForPlan(ctx, p, lim)
	if tr != nil {
		tr.Phase[obs.PhaseProbe] += time.Since(probeStart)
		d := ix.bt.Stats().Sub(bt0)
		tr.BTree = obs.BTreeDelta{
			PageReads:  d.PageReads,
			PageWrites: d.PageWrites,
			CacheHits:  d.CacheHits,
			Evictions:  d.Evictions,
		}
	}
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			ix.setHealth(err)
			return ix.scanFallback(ctx, p.tree, tr, lim)
		}
		return Result{}, err
	}
	res := Result{Entries: ix.bt.Len(), Scanned: scanned, Candidates: len(cands)}
	rq, rootAnchored := ix.refinementQuery(p.tree)
	nq, err := nok.Compile(rq, ix.dict)
	if err != nil {
		return Result{}, err
	}
	var st0, cl0 storage.Stats
	if tr != nil {
		st0 = ix.store.Stats()
		if ix.clustered != nil {
			cl0 = ix.clustered.Stats()
		}
	}
	bud := refineBudget(ctx, lim)
	var fetchNS, refineNS, visited, running atomic.Int64
	counts := make([]int, len(cands))
	err = par.Do(ctx, ix.opts.Workers, len(cands), func(i int) error {
		c := cands[i]
		if rootAnchored && c.Primary.Off() != 0 {
			return nil // a /-anchored query only matches document roots
		}
		if ix.store.IsDeleted(c.Primary.Rec()) {
			return nil // tombstoned: entries may outlive the delete until rebuild
		}
		if tr == nil {
			cur, ref, err := ix.candidateCursor(c)
			if err != nil {
				return err
			}
			n := 0
			if bud == nil {
				n = nq.Count(cur, ref)
			} else {
				n, _, err = nq.EvalBudget(cur, ref, bud)
				if err != nil {
					return budgetErr(err)
				}
			}
			counts[i] = n
			if n > 0 {
				return errResultCap(running.Add(int64(n)), lim)
			}
			return nil
		}
		fetchStart := time.Now()
		cur, ref, err := ix.candidateCursor(c)
		refineStart := time.Now()
		fetchNS.Add(int64(refineStart.Sub(fetchStart)))
		if err != nil {
			return err
		}
		n, nodes, err := nq.EvalBudget(cur, ref, bud)
		refineNS.Add(int64(time.Since(refineStart)))
		visited.Add(int64(nodes))
		if err != nil {
			return budgetErr(err)
		}
		counts[i] = n
		if n > 0 {
			return errResultCap(running.Add(int64(n)), lim)
		}
		return nil
	})
	if tr != nil {
		tr.Phase[obs.PhaseFetch] += time.Duration(fetchNS.Load())
		tr.Phase[obs.PhaseRefine] += time.Duration(refineNS.Load())
		tr.NodesVisited += visited.Load()
		tr.Workers = par.Workers(ix.opts.Workers)
		delta := ix.store.Stats().Sub(st0)
		sd := storageDelta(delta)
		if ix.clustered != nil {
			sd = sd.Add(storageDelta(ix.clustered.Stats().Sub(cl0)))
		}
		tr.Storage = tr.Storage.Add(sd)
	}
	if err != nil {
		return Result{}, err
	}
	for _, n := range counts {
		if n > 0 {
			res.Matched++
			res.Count += n
		}
	}
	if tr != nil {
		tr.Entries, tr.Scanned, tr.Candidates = res.Entries, res.Scanned, res.Candidates
		tr.Matched, tr.Count = res.Matched, res.Count
	}
	return res, nil
}

// storageDelta converts a storage.Stats difference into the trace's
// subsystem-neutral delta form.
func storageDelta(d storage.Stats) obs.StorageDelta {
	return obs.StorageDelta{
		SeqReads:     d.SeqReads,
		RandomReads:  d.RandomReads,
		CachedReads:  d.CachedReads,
		BytesRead:    d.BytesRead,
		SubtreeReads: d.SubtreeReads,
		SubtreeBytes: d.SubtreeBytes,
	}
}

// Exists reports whether the query has at least one result, refining
// candidates lazily and stopping at the first hit. Like Query, it falls
// back to a full scan when the index is degraded.
func (ix *Index) Exists(path *xpath.Path) (bool, error) {
	return ix.ExistsCtx(context.Background(), path)
}

// ExistsCtx is Exists with cancellation and parallel refinement; the
// first verified candidate stops the remaining workers.
func (ix *Index) ExistsCtx(ctx context.Context, path *xpath.Path) (bool, error) {
	p, err := ix.plan(path)
	if err != nil {
		return false, err
	}
	if ix.Health() != nil {
		return ix.existsFallback(ctx, p.tree)
	}
	cands, _, err := ix.candidatesForPlan(ctx, p, Limits{})
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			ix.setHealth(err)
			return ix.existsFallback(ctx, p.tree)
		}
		return false, err
	}
	rq, rootAnchored := ix.refinementQuery(p.tree)
	nq, err := nok.Compile(rq, ix.dict)
	if err != nil {
		return false, err
	}
	var found atomic.Bool
	err = par.Do(ctx, ix.opts.Workers, len(cands), func(i int) error {
		if found.Load() {
			return nil
		}
		c := cands[i]
		if rootAnchored && c.Primary.Off() != 0 {
			return nil
		}
		if ix.store.IsDeleted(c.Primary.Rec()) {
			return nil
		}
		cur, ref, err := ix.candidateCursor(c)
		if err != nil {
			return err
		}
		if nq.Exists(cur, ref) {
			found.Store(true)
			return errFoundMatch
		}
		return nil
	})
	if err != nil && !errors.Is(err, errFoundMatch) {
		return false, err
	}
	return found.Load(), nil
}

// errFoundMatch is the internal sentinel Exists-style searches use to
// stop the worker pool after the first hit.
var errFoundMatch = errors.New("core: match found")

// refinementQuery adapts the original query for per-candidate refinement:
// for depth-limited indexes the leading // becomes / because every
// descendant of an indexed pattern instance is itself indexed (Algorithm
// 2, lines 7-8). It also reports whether candidates must be document
// roots (a /-anchored query on a depth-limited index).
func (ix *Index) refinementQuery(qt *xpath.QNode) (*xpath.QNode, bool) {
	if ix.opts.DepthLimit == 0 {
		return qt, false
	}
	rq := qt.Clone()
	rootAnchored := rq.Axis == xpath.Child
	rq.Axis = xpath.Child
	return rq, rootAnchored
}

// scanFallback answers a query without the index: it compiles the
// original query tree and refines every record of the primary store,
// fanning the records out over the worker pool. Because a full
// refinement pass cannot produce false negatives, the counts are exact
// regardless of what happened to the index. A non-nil tr records the
// scan as fetch + refinement work with Fallback set; the pruning
// counters stay zero because no pruning happened. The scan observes the
// same governance as the indexed path: refinement node budget, result
// cap, and the context at loop boundaries — a degraded index must not
// turn a bounded query into an unbounded scan.
func (ix *Index) scanFallback(ctx context.Context, qt *xpath.QNode, tr *obs.Trace, lim Limits) (Result, error) {
	nq, err := nok.Compile(qt, ix.dict)
	if err != nil {
		return Result{}, err
	}
	var st0 storage.Stats
	if tr != nil {
		st0 = ix.store.Stats()
	}
	bud := refineBudget(ctx, lim)
	var fetchNS, refineNS, visited, running atomic.Int64
	nrec := ix.store.NumRecords()
	counts := make([]int, nrec)
	err = par.Do(ctx, ix.opts.Workers, nrec, func(i int) error {
		if ix.store.IsDeleted(uint32(i)) {
			return nil // tombstoned records are not part of the collection
		}
		if tr == nil {
			cur, err := ix.store.Cursor(uint32(i))
			if err != nil {
				return err
			}
			n := 0
			if bud == nil {
				n = nq.Count(cur, 0)
			} else {
				n, _, err = nq.EvalBudget(cur, 0, bud)
				if err != nil {
					return budgetErr(err)
				}
			}
			counts[i] = n
			if n > 0 {
				return errResultCap(running.Add(int64(n)), lim)
			}
			return nil
		}
		fetchStart := time.Now()
		cur, err := ix.store.Cursor(uint32(i))
		refineStart := time.Now()
		fetchNS.Add(int64(refineStart.Sub(fetchStart)))
		if err != nil {
			return err
		}
		n, nodes, err := nq.EvalBudget(cur, 0, bud)
		refineNS.Add(int64(time.Since(refineStart)))
		visited.Add(int64(nodes))
		if err != nil {
			return budgetErr(err)
		}
		counts[i] = n
		if n > 0 {
			return errResultCap(running.Add(int64(n)), lim)
		}
		return nil
	})
	if tr != nil {
		tr.Fallback = true
		tr.Workers = par.Workers(ix.opts.Workers)
		tr.Phase[obs.PhaseFetch] += time.Duration(fetchNS.Load())
		tr.Phase[obs.PhaseRefine] += time.Duration(refineNS.Load())
		tr.NodesVisited += visited.Load()
		tr.Storage = tr.Storage.Add(storageDelta(ix.store.Stats().Sub(st0)))
	}
	if err != nil {
		return Result{}, err
	}
	res := Result{Fallback: true}
	for _, n := range counts {
		if n > 0 {
			res.Matched++
			res.Count += n
		}
	}
	if tr != nil {
		tr.Matched, tr.Count = res.Matched, res.Count
	}
	return res, nil
}

// existsFallback is the Exists counterpart of scanFallback.
func (ix *Index) existsFallback(ctx context.Context, qt *xpath.QNode) (bool, error) {
	nq, err := nok.Compile(qt, ix.dict)
	if err != nil {
		return false, err
	}
	var found atomic.Bool
	err = par.Do(ctx, ix.opts.Workers, ix.store.NumRecords(), func(i int) error {
		if found.Load() || ix.store.IsDeleted(uint32(i)) {
			return nil
		}
		cur, err := ix.store.Cursor(uint32(i))
		if err != nil {
			return err
		}
		if nq.Exists(cur, 0) {
			found.Store(true)
			return errFoundMatch
		}
		return nil
	})
	if err != nil && !errors.Is(err, errFoundMatch) {
		return false, err
	}
	return found.Load(), nil
}

func (ix *Index) candidateCursor(c Candidate) (xmltree.Cursor, xmltree.Ref, error) {
	if c.HasCopy && ix.clustered != nil {
		cur, err := ix.clustered.Cursor(c.Clustered.Rec())
		return cur, 0, err
	}
	return ix.store.ReadSubtree(c.Primary)
}

// Covered reports whether the index can answer the query (depth check).
func (ix *Index) Covered(path *xpath.Path) bool {
	if ix.opts.DepthLimit == 0 {
		return true
	}
	qt := path.Tree()
	if qt == nil {
		return false
	}
	return xpath.Decompose(qt)[0].Root.Depth() <= ix.opts.DepthLimit
}

// QueryFeatures exposes the feature pair FIX computes for the query's top
// twig; diagnostics and experiments use it.
func (ix *Index) QueryFeatures(path *xpath.Path) (Features, bool, error) {
	p, err := ix.plan(path)
	if err != nil {
		return Features{}, false, err
	}
	if p.empty || len(p.feats) == 0 {
		return Features{}, false, nil
	}
	return p.feats[0], true, nil
}
