package core

import (
	"fmt"

	"github.com/fix-index/fix/internal/xpath"
)

// Metrics are the paper's implementation-independent effectiveness
// measures (§6.2):
//
//	sel = 1 - rst/ent   query selectivity
//	pp  = 1 - cdt/ent   pruning power of the index
//	fpr = 1 - rst/cdt   false-positive ratio among candidates
//
// where ent is the number of index entries, cdt the number of candidates
// the index returns, and rst the number of entries producing at least one
// final result.
type Metrics struct {
	Ent, Cdt, Rst int
	Sel, PP, FPR  float64
}

func computeMetrics(ent, cdt, rst int) Metrics {
	m := Metrics{Ent: ent, Cdt: cdt, Rst: rst}
	if ent > 0 {
		m.Sel = 1 - float64(rst)/float64(ent)
		m.PP = 1 - float64(cdt)/float64(ent)
	}
	if cdt > 0 {
		m.FPR = 1 - float64(rst)/float64(cdt)
	}
	return m
}

func (m Metrics) String() string {
	return fmt.Sprintf("sel=%.2f%% pp=%.2f%% fpr=%.2f%% (ent=%d cdt=%d rst=%d)",
		m.Sel*100, m.PP*100, m.FPR*100, m.Ent, m.Cdt, m.Rst)
}

// Evaluate runs the query and reports the implementation-independent
// metrics. By the index's no-false-negative property the result-producing
// entries are a subset of the candidates, so rst is measured on them.
func (ix *Index) Evaluate(path *xpath.Path) (Metrics, error) {
	res, err := ix.Query(path)
	if err != nil {
		return Metrics{}, err
	}
	return computeMetrics(res.Entries, res.Candidates, res.Matched), nil
}
