package core

import (
	"context"
	"errors"
	"fmt"
)

// ScrubDiskCtx verifies the on-disk B-tree image of the index in bounded
// chunks, releasing the tree lock between chunks so queries and ingest
// interleave with the scan (see btree.Tree.ScrubDisk). It is the
// background scrubber's entry point: unlike Verify it reads the file
// directly, so it catches latent on-disk damage — bit rot, a torn
// eviction write-back — while the index is still serving from cached
// pages that look fine.
//
// pause, when non-nil, runs between chunks with no locks held; returning
// an error aborts the scan. Detected corruption latches degraded health,
// exactly like Verify, and returns an error wrapping ErrCorrupt; a
// cancelled context or an aborting pause returns without touching
// health. It returns the number of pages verified.
func (ix *Index) ScrubDiskCtx(ctx context.Context, chunkPages int, pause func() error) (int, error) {
	if err := ix.Health(); err != nil {
		return 0, err
	}
	if ix.bt == nil {
		return 0, fmt.Errorf("%w: B-tree unavailable", ErrCorrupt)
	}
	n, err := ix.bt.ScrubDisk(chunkPages, func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if pause != nil {
			return pause()
		}
		return nil
	})
	if err != nil && errors.Is(err, ErrCorrupt) {
		ix.setHealth(err)
	}
	return n, err
}
