package xpath

import (
	"testing"
)

func TestParseSimplePaths(t *testing.T) {
	p, err := Parse("/a/b//c")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if p.Steps[0].Axis != Child || p.Steps[0].Name != "a" {
		t.Errorf("step 0 = %+v", p.Steps[0])
	}
	if p.Steps[2].Axis != Descendant || p.Steps[2].Name != "c" {
		t.Errorf("step 2 = %+v", p.Steps[2])
	}
}

func TestParsePredicates(t *testing.T) {
	p, err := Parse("//article[author][title/i]/ee")
	if err != nil {
		t.Fatal(err)
	}
	art := p.Steps[0]
	if len(art.Preds) != 2 {
		t.Fatalf("preds = %d", len(art.Preds))
	}
	if art.Preds[0].Path[0].Name != "author" {
		t.Errorf("pred 0 = %+v", art.Preds[0])
	}
	if len(art.Preds[1].Path) != 2 || art.Preds[1].Path[1].Name != "i" {
		t.Errorf("pred 1 = %+v", art.Preds[1])
	}
}

func TestParseValuePredicates(t *testing.T) {
	p, err := Parse(`//proceedings[publisher="Springer"][title]`)
	if err != nil {
		t.Fatal(err)
	}
	pr := p.Steps[0].Preds[0]
	if !pr.HasValue || pr.Value != "Springer" || pr.Path[0].Name != "publisher" {
		t.Errorf("value pred = %+v", pr)
	}
	// Spaces and single quotes.
	p, err = Parse(`//a[b = 'x y']`)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Steps[0].Preds[0].Value; v != "x y" {
		t.Errorf("value = %q", v)
	}
}

func TestParseDescendantPredicate(t *testing.T) {
	p, err := Parse("//open_auction[.//bidder[name][email]]/price")
	if err != nil {
		t.Fatal(err)
	}
	pred := p.Steps[0].Preds[0]
	if pred.Path[0].Axis != Descendant || pred.Path[0].Name != "bidder" {
		t.Errorf("descendant pred = %+v", pred.Path[0])
	}
	if len(pred.Path[0].Preds) != 2 {
		t.Errorf("nested preds = %d", len(pred.Path[0].Preds))
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"a/b",     // missing leading axis
		"//",      // missing name
		"//a[",    // unterminated predicate
		"//a[b",   // unterminated predicate
		`//a[b="`, // unterminated string
		"//a]",    // stray bracket
		"//a[]",   // empty predicate
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, expr := range []string{
		"/article/epilog[acknoledgements]/references/a_id",
		"//article[number]/author",
		"//proceedings[booktitle]/title[sup][i]",
		"//item[payment][quantity][shipping][mailbox/mail/text]/description/parlist",
		"//open_auction[.//bidder[name][email]]/price",
		`//proceedings[publisher="Springer"][title]`,
	} {
		p, err := Parse(expr)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", p.String(), expr, err)
		}
		if back.String() != p.String() {
			t.Errorf("unstable print: %q -> %q", p.String(), back.String())
		}
	}
}

func TestTreeShape(t *testing.T) {
	p := MustParse("//a[b][c/d]/e")
	root := p.Tree()
	if root.Name != "a" || root.Axis != Descendant {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 3 {
		t.Fatalf("children = %d", len(root.Children))
	}
	// Predicates first, trunk continuation last.
	if root.Children[0].Name != "b" || root.Children[1].Name != "c" || root.Children[2].Name != "e" {
		t.Errorf("child order: %v %v %v", root.Children[0].Name, root.Children[1].Name, root.Children[2].Name)
	}
	if !root.Children[2].Output {
		t.Error("trunk tail not marked Output")
	}
	if root.Children[0].Output || root.Children[1].Output {
		t.Error("predicate marked Output")
	}
	if root.Children[1].Children[0].Name != "d" {
		t.Error("nested predicate chain broken")
	}
}

func TestTreeValueLeaf(t *testing.T) {
	p := MustParse(`//a[b="v"]`)
	root := p.Tree()
	b := root.Children[0]
	if len(b.Children) != 1 || !b.Children[0].IsValue || b.Children[0].Value != "v" {
		t.Errorf("value leaf = %+v", b.Children)
	}
}

func TestDepth(t *testing.T) {
	cases := []struct {
		expr string
		want int
	}{
		{"//a", 1},
		{"//a/b", 2},
		{"//a[b][c]", 2},
		{"//a[b/c]/d", 3},
		{`//a[b="v"]`, 3}, // value leaf counts as a level
	}
	for _, c := range cases {
		if got := MustParse(c.expr).Tree().Depth(); got != c.want {
			t.Errorf("Depth(%s) = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestDecompose(t *testing.T) {
	p := MustParse("//open_auction[.//bidder[name][email]]/price")
	twigs := Decompose(p.Tree())
	if len(twigs) != 2 {
		t.Fatalf("twigs = %d", len(twigs))
	}
	if !twigs[0].Top {
		t.Error("first twig not marked Top")
	}
	top := twigs[0].Root
	if top.Name != "open_auction" || len(top.Children) != 1 || top.Children[0].Name != "price" {
		t.Errorf("top twig = %s", top)
	}
	sub := twigs[1].Root
	if sub.Name != "bidder" || len(sub.Children) != 2 {
		t.Errorf("descendant twig = %s", sub)
	}
	if !top.IsTwig() || !sub.IsTwig() {
		t.Error("decomposed parts are not twigs")
	}
	// Original tree untouched.
	if len(p.Tree().Children) != 2 {
		t.Error("Tree() no longer reproducible")
	}
}

func TestDecomposeMidPathDescendant(t *testing.T) {
	p := MustParse("//a/b//c/d")
	twigs := Decompose(p.Tree())
	if len(twigs) != 2 {
		t.Fatalf("twigs = %d", len(twigs))
	}
	if twigs[0].Root.Name != "a" || twigs[1].Root.Name != "c" {
		t.Errorf("twig roots = %s, %s", twigs[0].Root.Name, twigs[1].Root.Name)
	}
}

func TestIsTwig(t *testing.T) {
	if !MustParse("//a[b][c/d]").Tree().IsTwig() {
		t.Error("pure child-axis tree not recognized as twig")
	}
	if MustParse("//a[.//b]").Tree().IsTwig() {
		t.Error("descendant predicate recognized as twig")
	}
}

func TestCloneIndependence(t *testing.T) {
	root := MustParse("//a[b]/c").Tree()
	cp := root.Clone()
	cp.Children[0].Name = "mutated"
	if root.Children[0].Name == "mutated" {
		t.Error("Clone shares nodes")
	}
}

func TestWalk(t *testing.T) {
	var names []string
	MustParse("//a[b][c]/d").Tree().Walk(func(n *QNode) {
		names = append(names, n.Name)
	})
	if len(names) != 4 || names[0] != "a" || names[3] != "d" {
		t.Errorf("walk = %v", names)
	}
}

func TestAxisString(t *testing.T) {
	if Child.String() != "/" || Descendant.String() != "//" {
		t.Error("axis strings wrong")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on garbage did not panic")
		}
	}()
	MustParse("not a path")
}

func TestPathStringNestedPredicates(t *testing.T) {
	for _, expr := range []string{
		"//a[b[c][d]]/e",
		"//a[.//b[c]]/d",
		`//a[b[c]="v"]`,
	} {
		p, err := Parse(expr)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		re, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if re.String() != p.String() {
			t.Errorf("unstable: %q -> %q", p.String(), re.String())
		}
	}
}

func TestQNodeStringValueLeaf(t *testing.T) {
	n := MustParse(`//a[b="v"]`).Tree()
	s := n.String()
	if s == "" {
		t.Fatal("empty render")
	}
	// The rendered form must be re-parseable.
	if _, err := Parse(s); err != nil {
		t.Errorf("render %q does not re-parse: %v", s, err)
	}
}

func TestDepthNil(t *testing.T) {
	var n *QNode
	if n.Depth() != 0 {
		t.Error("nil depth != 0")
	}
	if Decompose(nil) != nil {
		t.Error("Decompose(nil) != nil")
	}
	if n.Clone() != nil {
		t.Error("Clone(nil) != nil")
	}
	n.Walk(func(*QNode) { t.Error("walk visited nil") })
}
