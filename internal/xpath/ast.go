// Package xpath parses the XPath fragment used by FIX (paper §2.1): path
// expressions over child (/) and descendant (//) axes with branching
// predicates and value-equality predicates, e.g.
//
//	//article[author]/ee
//	//open_auction[.//bidder[name][email]]/price
//	//proceedings[publisher="Springer"][title]
//
// A parsed path is converted into a query tree (QNode), which the rest of
// the system uses for twig-pattern construction, depth/coverage checks,
// //-decomposition into twigs (paper §5) and navigational matching.
package xpath

import (
	"strconv"
	"strings"
)

// Axis is the relationship between consecutive steps.
type Axis uint8

const (
	// Child is the / axis.
	Child Axis = iota
	// Descendant is the // axis.
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Step is one location step: an axis, a name test and optional predicates.
type Step struct {
	Axis  Axis
	Name  string
	Preds []*Predicate
}

// Predicate is a branching predicate: a relative path, optionally with a
// trailing value-equality comparison ([p = "v"]).
type Predicate struct {
	Path     []*Step
	Value    string
	HasValue bool
}

// Path is a parsed absolute path expression. Steps[0].Axis is the leading
// axis (/ or //).
type Path struct {
	Steps []*Step
}

// String renders the path in XPath syntax.
func (p *Path) String() string {
	var sb strings.Builder
	for _, s := range p.Steps {
		writeStep(&sb, s)
	}
	return sb.String()
}

func writeStep(sb *strings.Builder, s *Step) {
	sb.WriteString(s.Axis.String())
	sb.WriteString(s.Name)
	for _, pred := range s.Preds {
		sb.WriteByte('[')
		for i, ps := range pred.Path {
			if i == 0 {
				if ps.Axis == Descendant {
					sb.WriteString(".//")
				}
			} else {
				sb.WriteString(ps.Axis.String())
			}
			sb.WriteString(ps.Name)
			for _, nested := range ps.Preds {
				sb.WriteByte('[')
				writeRel(sb, nested)
				sb.WriteByte(']')
			}
		}
		if pred.HasValue {
			if len(pred.Path) == 0 {
				sb.WriteByte('.') // value-only predicate: [.="v"]
			}
			sb.WriteByte('=')
			sb.WriteString(strconv.Quote(pred.Value))
		}
		sb.WriteByte(']')
	}
}

func writeRel(sb *strings.Builder, pred *Predicate) {
	for i, ps := range pred.Path {
		if i == 0 {
			if ps.Axis == Descendant {
				sb.WriteString(".//")
			}
		} else {
			sb.WriteString(ps.Axis.String())
		}
		sb.WriteString(ps.Name)
		for _, nested := range ps.Preds {
			sb.WriteByte('[')
			writeRel(sb, nested)
			sb.WriteByte(']')
		}
	}
	if pred.HasValue {
		if len(pred.Path) == 0 {
			sb.WriteByte('.') // value-only predicate: [.="v"]
		}
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(pred.Value))
	}
}

// QNode is a node of the query tree. The tree form is what the matcher and
// the pattern builder consume: every step and every predicate step becomes
// a node; a value-equality predicate becomes a value leaf (IsValue).
type QNode struct {
	Name     string
	Axis     Axis // axis on the edge from the parent (for the root: the leading axis)
	IsValue  bool
	Value    string
	Output   bool // marks the result node (last step of the trunk)
	Children []*QNode
}

// Tree converts the path into its query tree. The returned root is the
// first step; its Axis is the path's leading axis.
func (p *Path) Tree() *QNode {
	if len(p.Steps) == 0 {
		return nil
	}
	root := stepNode(p.Steps[0])
	cur := root
	for _, s := range p.Steps[1:] {
		n := stepNode(s)
		cur.Children = append(cur.Children, n)
		cur = n
	}
	cur.Output = true
	return root
}

func stepNode(s *Step) *QNode {
	n := &QNode{Name: s.Name, Axis: s.Axis}
	for _, pred := range s.Preds {
		n.Children = append(n.Children, predNode(pred))
	}
	return n
}

// predNode converts a predicate's relative path into a chain of QNodes,
// returning the head of the chain.
func predNode(pred *Predicate) *QNode {
	var head, cur *QNode
	for _, s := range pred.Path {
		n := stepNode(s)
		if head == nil {
			head = n
		} else {
			cur.Children = append(cur.Children, n)
		}
		cur = n
	}
	if pred.HasValue {
		leaf := &QNode{IsValue: true, Value: pred.Value, Axis: Child}
		if cur == nil {
			return leaf
		}
		cur.Children = append(cur.Children, leaf)
	}
	return head
}

// Depth returns the number of levels of the query tree rooted at n. Value
// leaves count as a level, matching the indexed representation where
// values are hashed leaf children.
func (n *QNode) Depth() int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// HasDescendantEdge reports whether any edge strictly below n uses the
// descendant axis (the root's own incoming axis is not considered).
func (n *QNode) HasDescendantEdge() bool {
	for _, c := range n.Children {
		if c.Axis == Descendant || c.HasDescendantEdge() {
			return true
		}
	}
	return false
}

// Walk visits every node of the query tree in preorder.
func (n *QNode) Walk(fn func(*QNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// String renders the query tree back to an XPath-like expression rooted at
// this node, mainly for diagnostics.
func (n *QNode) String() string {
	var sb strings.Builder
	n.write(&sb, true)
	return sb.String()
}

func (n *QNode) write(sb *strings.Builder, root bool) {
	if n.IsValue {
		sb.WriteString(".=")
		sb.WriteString(strconv.Quote(n.Value))
		return
	}
	if root {
		sb.WriteString(n.Axis.String())
	} else if n.Axis == Descendant {
		sb.WriteString(".//")
	}
	sb.WriteString(n.Name)
	// Every child is rendered as a predicate, which is semantically
	// equivalent for existential matching and re-parseable.
	for _, c := range n.Children {
		sb.WriteByte('[')
		c.write(sb, false)
		sb.WriteByte(']')
	}
}

// Clone returns a deep copy of the query tree.
func (n *QNode) Clone() *QNode {
	if n == nil {
		return nil
	}
	cp := &QNode{Name: n.Name, Axis: n.Axis, IsValue: n.IsValue, Value: n.Value, Output: n.Output}
	if len(n.Children) > 0 {
		cp.Children = make([]*QNode, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}
