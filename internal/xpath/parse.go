package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses an absolute path expression of the supported fragment:
//
//	path    := axis step (axis step)*
//	axis    := '/' | '//'
//	step    := name pred*
//	pred    := '[' rel ( '=' string )? ']'
//	rel     := ( './/' | '' ) name pred* ( axis name pred* )*
//	string  := '"' chars '"'
//
// Whitespace is permitted around '=' and inside predicates.
func Parse(input string) (*Path, error) {
	p := &parser{src: input}
	path, err := p.parsePath()
	if err != nil {
		return nil, fmt.Errorf("xpath: %w (input %q)", err, input)
	}
	return path, nil
}

// MustParse is Parse that panics on error; for tests and fixed query
// tables.
func MustParse(input string) *Path {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src string
	pos int
}

func (p *parser) parsePath() (*Path, error) {
	var path Path
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			break
		}
		axis, ok := p.axis()
		if !ok {
			return nil, fmt.Errorf("expected axis at offset %d", p.pos)
		}
		step, err := p.step(axis)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
	}
	if len(path.Steps) == 0 {
		return nil, fmt.Errorf("empty expression")
	}
	return &path, nil
}

func (p *parser) axis() (Axis, bool) {
	if !p.eat('/') {
		return Child, false
	}
	if p.eat('/') {
		return Descendant, true
	}
	return Child, true
}

func (p *parser) step(axis Axis) (*Step, error) {
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	s := &Step{Axis: axis, Name: name}
	for {
		p.skipSpace()
		if !p.eat('[') {
			break
		}
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		if !p.eat(']') {
			return nil, fmt.Errorf("expected ']' at offset %d", p.pos)
		}
		s.Preds = append(s.Preds, pred)
	}
	return s, nil
}

func (p *parser) predicate() (*Predicate, error) {
	pred := &Predicate{}
	p.skipSpace()
	// Value-only predicate [.="v"] or [. = "v"].
	if p.peek() == '.' && p.peekAt(1) != '/' {
		p.pos++
		p.skipSpace()
		if !p.eat('=') {
			return nil, fmt.Errorf("expected '=' after '.' at offset %d", p.pos)
		}
		v, err := p.quoted()
		if err != nil {
			return nil, err
		}
		pred.Value, pred.HasValue = v, true
		return pred, nil
	}
	first := Child
	if strings.HasPrefix(p.src[p.pos:], ".//") {
		p.pos += 3
		first = Descendant
	} else if strings.HasPrefix(p.src[p.pos:], "//") {
		p.pos += 2
		first = Descendant
	}
	for {
		step, err := p.step(first)
		if err != nil {
			return nil, err
		}
		pred.Path = append(pred.Path, step)
		p.skipSpace()
		axis, ok := p.axis()
		if !ok {
			break
		}
		first = axis
	}
	p.skipSpace()
	if p.eat('=') {
		v, err := p.quoted()
		if err != nil {
			return nil, err
		}
		pred.Value, pred.HasValue = v, true
	}
	return pred, nil
}

func (p *parser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isNameRune(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected name at offset %d", start)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) quoted() (string, error) {
	p.skipSpace()
	quote := p.peek()
	if quote != '"' && quote != '\'' {
		return "", fmt.Errorf("expected quoted string at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("unterminated string starting at offset %d", start)
	}
	v := p.src[start:p.pos]
	p.pos++
	return v, nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) eat(c byte) bool {
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) peekAt(off int) byte {
	if p.pos+off < len(p.src) {
		return p.src[p.pos+off]
	}
	return 0
}

func isNameRune(r rune) bool {
	return r == '_' || r == '-' || r == ':' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
