package xpath

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// ErrSyntax reports a malformed expression; every syntax error Parse
// returns wraps it, so callers (an HTTP handler deciding between 400
// and 500, say) can classify without string matching.
var ErrSyntax = errors.New("xpath: syntax error")

// ErrLimit reports that an expression exceeded a parse limit (length,
// step count, predicate count, or nesting depth). Like ErrSyntax it is
// a client-input error, but it rejects well-formed input that is too
// expensive to plan and evaluate rather than input that is wrong.
var ErrLimit = errors.New("xpath: query limit exceeded")

// Limits bounds how large a query expression may be. Query planning,
// NoK compilation and refinement all walk the query tree, so an
// unbounded expression is an unbounded amount of per-query work before
// a single record is read. A zero field selects the package default; a
// negative field disables that limit.
type Limits struct {
	MaxLength int // bytes of expression text
	MaxSteps  int // total steps, including steps inside predicates
	MaxPreds  int // total predicates
	MaxDepth  int // predicate nesting depth
}

// Default query limits. MaxSteps tracks the NoK evaluator's 64-node
// bitmask bound: queries past it could parse, but never evaluate.
const (
	DefaultMaxLength = 4096
	DefaultMaxSteps  = 128
	DefaultMaxPreds  = 64
	DefaultMaxDepth  = 24
)

// effective resolves the zero-means-default, negative-means-unlimited
// convention into concrete bounds (0 = unlimited).
func (l Limits) effective() Limits {
	resolve := func(v, def int) int {
		switch {
		case v < 0:
			return 0
		case v == 0:
			return def
		default:
			return v
		}
	}
	return Limits{
		MaxLength: resolve(l.MaxLength, DefaultMaxLength),
		MaxSteps:  resolve(l.MaxSteps, DefaultMaxSteps),
		MaxPreds:  resolve(l.MaxPreds, DefaultMaxPreds),
		MaxDepth:  resolve(l.MaxDepth, DefaultMaxDepth),
	}
}

// Parse parses an absolute path expression of the supported fragment:
//
//	path    := axis step (axis step)*
//	axis    := '/' | '//'
//	step    := name pred*
//	pred    := '[' rel ( '=' string )? ']'
//	rel     := ( './/' | '' ) name pred* ( axis name pred* )*
//	string  := '"' chars '"'
//
// Whitespace is permitted around '=' and inside predicates. The default
// Limits apply; syntax errors wrap ErrSyntax, limit violations wrap
// ErrLimit.
func Parse(input string) (*Path, error) {
	return ParseWithLimits(input, Limits{})
}

// ParseWithLimits is Parse under explicit expression limits; see Limits
// for the zero/negative conventions.
func ParseWithLimits(input string, lim Limits) (*Path, error) {
	lim = lim.effective()
	if lim.MaxLength > 0 && len(input) > lim.MaxLength {
		return nil, fmt.Errorf("%w: expression is %d bytes, limit %d", ErrLimit, len(input), lim.MaxLength)
	}
	p := &parser{src: input, lim: lim}
	path, err := p.parsePath()
	if err != nil {
		if errors.Is(err, ErrLimit) {
			return nil, fmt.Errorf("%w (input %.80q)", err, input)
		}
		return nil, fmt.Errorf("%w: %v (input %.80q)", ErrSyntax, err, input)
	}
	return path, nil
}

// MustParse is Parse that panics on error; for tests and fixed query
// tables.
func MustParse(input string) *Path {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src string
	pos int
	lim Limits

	steps, preds, depth int // running counts against lim
}

func (p *parser) parsePath() (*Path, error) {
	var path Path
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			break
		}
		axis, ok := p.axis()
		if !ok {
			return nil, fmt.Errorf("expected axis at offset %d", p.pos)
		}
		step, err := p.step(axis)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
	}
	if len(path.Steps) == 0 {
		return nil, fmt.Errorf("empty expression")
	}
	return &path, nil
}

func (p *parser) axis() (Axis, bool) {
	if !p.eat('/') {
		return Child, false
	}
	if p.eat('/') {
		return Descendant, true
	}
	return Child, true
}

func (p *parser) step(axis Axis) (*Step, error) {
	p.steps++
	if p.lim.MaxSteps > 0 && p.steps > p.lim.MaxSteps {
		return nil, fmt.Errorf("%w: more than %d steps", ErrLimit, p.lim.MaxSteps)
	}
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	s := &Step{Axis: axis, Name: name}
	for {
		p.skipSpace()
		if !p.eat('[') {
			break
		}
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		if !p.eat(']') {
			return nil, fmt.Errorf("expected ']' at offset %d", p.pos)
		}
		s.Preds = append(s.Preds, pred)
	}
	return s, nil
}

// predicate parses one bracketed predicate. It is the parser's only
// recursion (predicate → step → predicate), so the nesting-depth limit
// lives here: it is what keeps a hostile expression like `a[b[c[…` from
// overflowing the goroutine stack.
func (p *parser) predicate() (*Predicate, error) {
	p.preds++
	if p.lim.MaxPreds > 0 && p.preds > p.lim.MaxPreds {
		return nil, fmt.Errorf("%w: more than %d predicates", ErrLimit, p.lim.MaxPreds)
	}
	p.depth++
	defer func() { p.depth-- }()
	if p.lim.MaxDepth > 0 && p.depth > p.lim.MaxDepth {
		return nil, fmt.Errorf("%w: predicates nested deeper than %d", ErrLimit, p.lim.MaxDepth)
	}
	pred := &Predicate{}
	p.skipSpace()
	// Value-only predicate [.="v"] or [. = "v"].
	if p.peek() == '.' && p.peekAt(1) != '/' {
		p.pos++
		p.skipSpace()
		if !p.eat('=') {
			return nil, fmt.Errorf("expected '=' after '.' at offset %d", p.pos)
		}
		v, err := p.quoted()
		if err != nil {
			return nil, err
		}
		pred.Value, pred.HasValue = v, true
		return pred, nil
	}
	first := Child
	if strings.HasPrefix(p.src[p.pos:], ".//") {
		p.pos += 3
		first = Descendant
	} else if strings.HasPrefix(p.src[p.pos:], "//") {
		p.pos += 2
		first = Descendant
	}
	for {
		step, err := p.step(first)
		if err != nil {
			return nil, err
		}
		pred.Path = append(pred.Path, step)
		p.skipSpace()
		axis, ok := p.axis()
		if !ok {
			break
		}
		first = axis
	}
	p.skipSpace()
	if p.eat('=') {
		v, err := p.quoted()
		if err != nil {
			return nil, err
		}
		pred.Value, pred.HasValue = v, true
	}
	return pred, nil
}

func (p *parser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isNameRune(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected name at offset %d", start)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) quoted() (string, error) {
	p.skipSpace()
	quote := p.peek()
	if quote != '"' && quote != '\'' {
		return "", fmt.Errorf("expected quoted string at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("unterminated string starting at offset %d", start)
	}
	v := p.src[start:p.pos]
	p.pos++
	return v, nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) eat(c byte) bool {
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) peekAt(off int) byte {
	if p.pos+off < len(p.src) {
		return p.src[p.pos+off]
	}
	return 0
}

func isNameRune(r rune) bool {
	return r == '_' || r == '-' || r == ':' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
