package xpath

import (
	"errors"
	"strings"
	"testing"
)

func TestParseLimitLength(t *testing.T) {
	_, err := Parse("//" + strings.Repeat("a", DefaultMaxLength))
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("oversized expression = %v, want ErrLimit", err)
	}
}

func TestParseLimitSteps(t *testing.T) {
	lim := Limits{MaxSteps: 3}
	if _, err := ParseWithLimits("/a/b/c", lim); err != nil {
		t.Fatalf("steps at the limit: %v", err)
	}
	_, err := ParseWithLimits("/a/b/c/d", lim)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("steps over the limit = %v, want ErrLimit", err)
	}
	// Steps inside predicates count too: the evaluator walks them the
	// same as top-level steps.
	_, err = ParseWithLimits("/a[b][c][d]", lim)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("predicate steps over the limit = %v, want ErrLimit", err)
	}
}

func TestParseLimitPreds(t *testing.T) {
	lim := Limits{MaxPreds: 2}
	if _, err := ParseWithLimits("//a[b][c]", lim); err != nil {
		t.Fatalf("predicates at the limit: %v", err)
	}
	_, err := ParseWithLimits("//a[b][c][d]", lim)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("predicates over the limit = %v, want ErrLimit", err)
	}
}

func TestParseLimitNestingDepth(t *testing.T) {
	lim := Limits{MaxDepth: 2}
	if _, err := ParseWithLimits("//a[b[c]]", lim); err != nil {
		t.Fatalf("nesting at the limit: %v", err)
	}
	_, err := ParseWithLimits("//a[b[c[d]]]", lim)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("nesting over the limit = %v, want ErrLimit", err)
	}
}

func TestParseHostileNestingDoesNotOverflow(t *testing.T) {
	// Unclosed deep nesting: without the depth limit this would recurse
	// to a stack overflow before ever failing on syntax. It must fail
	// with a typed error instead (which one depends on what trips first).
	hostile := "//" + strings.Repeat("a[", 2000)
	_, err := Parse(hostile)
	if !errors.Is(err, ErrLimit) && !errors.Is(err, ErrSyntax) {
		t.Fatalf("hostile nesting = %v, want ErrLimit or ErrSyntax", err)
	}
}

func TestParseNegativeDisablesLimit(t *testing.T) {
	lim := Limits{MaxSteps: -1, MaxLength: -1, MaxPreds: -1, MaxDepth: -1}
	long := "/a" + strings.Repeat("/b", DefaultMaxSteps+10)
	if _, err := ParseWithLimits(long, lim); err != nil {
		t.Fatalf("negative limits must disable the bounds: %v", err)
	}
}

func TestSyntaxErrorsWrapErrSyntax(t *testing.T) {
	for _, bad := range []string{"", "//", "/a[", `/a[.="x]`, "a/b", "/a]"} {
		_, err := Parse(bad)
		if err == nil {
			continue // some of these may be accepted by the fragment
		}
		if !errors.Is(err, ErrSyntax) && !errors.Is(err, ErrLimit) {
			t.Errorf("Parse(%q) = %v: error does not wrap ErrSyntax/ErrLimit", bad, err)
		}
	}
}
