package xpath

import (
	"errors"
	"testing"
)

// FuzzParseXPath asserts the query parser's hardening contract on
// arbitrary input: every failure is a typed error (ErrSyntax or
// ErrLimit, never a panic or an unclassified error), and every accepted
// expression round-trips through String().
func FuzzParseXPath(f *testing.F) {
	seeds := []string{
		"//a",
		"/bib/article/author",
		"//article[author/email]",
		`//a[.="v"]`,
		`//a[b = "v"][.//c]`,
		"//a[b[c[d]]]//e",
		"/a [ b ] /c",
		"//",
		"/a[",
		"]]][[[",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			if !errors.Is(err, ErrSyntax) && !errors.Is(err, ErrLimit) {
				t.Fatalf("Parse(%q): unclassified error %v", s, err)
			}
			return
		}
		out := p.String()
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("String() output %q (from %q) does not re-parse: %v", out, s, err)
		}
		if p2.String() != out {
			t.Fatalf("unstable round trip: %q -> %q -> %q", s, out, p2.String())
		}
	})
}
