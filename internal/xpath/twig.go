package xpath

// Twig decomposition (paper §5). A twig query may only use child axes
// below its root, so a general query tree with internal descendant edges
// is decomposed into maximal child-axis-connected components ("twigs")
// joined by descendant edges. For example
//
//	//open_auction[.//bidder[name][email]]/price
//
// decomposes into the top twig //open_auction/price and the descendant
// twig //bidder[name][email].

// Twig is one component of the decomposition: a query tree whose internal
// edges are all child axes. Top marks the twig containing the original
// query root.
type Twig struct {
	Root *QNode
	Top  bool
}

// IsTwig reports whether the query tree rooted at n is already a twig
// (no descendant edges below the root).
func (n *QNode) IsTwig() bool { return !n.HasDescendantEdge() }

// Decompose splits the query tree into twigs. The first element is always
// the top twig. The input tree is not modified; twig trees are copies with
// descendant-edge children cut.
func Decompose(root *QNode) []*Twig {
	if root == nil {
		return nil
	}
	var twigs []*Twig
	var build func(n *QNode) *QNode
	var queue []*QNode
	build = func(n *QNode) *QNode {
		cp := &QNode{Name: n.Name, Axis: n.Axis, IsValue: n.IsValue, Value: n.Value, Output: n.Output}
		for _, c := range n.Children {
			if c.Axis == Descendant {
				queue = append(queue, c)
				continue
			}
			cp.Children = append(cp.Children, build(c))
		}
		return cp
	}
	top := build(root)
	twigs = append(twigs, &Twig{Root: top, Top: true})
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		twigs = append(twigs, &Twig{Root: build(n)})
	}
	return twigs
}
