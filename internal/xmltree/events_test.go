package xmltree

import (
	"io"
	"testing"
)

func TestTreeStreamEvents(t *testing.T) {
	n := Elem("a", Elem("b", Text("x")), Elem("c"))
	evs, err := Collect(NewTreeStream(n, 100))
	if err != nil {
		t.Fatal(err)
	}
	kinds := []EventKind{Open, Open, TextEvent, Close, Open, Close, Close}
	labels := []string{"a", "b", "", "b", "c", "c", "a"}
	if len(evs) != len(kinds) {
		t.Fatalf("events = %d, want %d", len(evs), len(kinds))
	}
	for i, ev := range evs {
		if ev.Kind != kinds[i] || ev.Label != labels[i] {
			t.Errorf("event %d = %v %q, want %v %q", i, ev.Kind, ev.Label, kinds[i], labels[i])
		}
	}
	// Open/Close pairs of the same element carry the same pointer, and
	// all pointers are offset by the base.
	if evs[0].Ptr != 100 || evs[6].Ptr != 100 {
		t.Errorf("root pointers = %d, %d", evs[0].Ptr, evs[6].Ptr)
	}
	if evs[1].Ptr != evs[3].Ptr {
		t.Error("open/close pointers differ for b")
	}
}

func TestTreeStreamEmpty(t *testing.T) {
	s := NewTreeStream(nil, 0)
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestSliceStreamReplay(t *testing.T) {
	src := []Event{{Kind: Open, Label: "a"}, {Kind: Close, Label: "a"}}
	s := NewSliceStream(src)
	out, err := Collect(s)
	if err != nil || len(out) != 2 {
		t.Fatalf("collect: %v %d", err, len(out))
	}
	if _, err := s.Next(); err != io.EOF {
		t.Error("exhausted stream should return EOF")
	}
}

func TestEventKindString(t *testing.T) {
	if Open.String() != "open" || Close.String() != "close" || TextEvent.String() != "text" {
		t.Error("kind strings wrong")
	}
	if EventKind(9).String() != "unknown" {
		t.Error("unknown kind string wrong")
	}
}
