// Package xmltree provides the XML document model used throughout FIX
// (the paper's §2 preliminaries): an in-memory node tree, a SAX-style
// event stream abstraction, parsing from and serialization to textual
// XML, and a compact binary subtree encoding with a zero-copy
// navigation cursor.
//
// The model is deliberately small: elements carry a label, text nodes carry
// a value, and that is all the structure the FIX index (and the paper's
// bisimulation machinery) cares about. Attributes, comments, processing
// instructions and namespaces are outside the paper's data model and are
// skipped by the parser.
package xmltree

import (
	"fmt"
	"strings"
)

// Node is a single node of an XML tree. An element node has a non-empty
// Label; a text node has an empty Label and carries its character data in
// Value. Text nodes never have children.
type Node struct {
	Label    string
	Value    string
	Children []*Node
}

// Elem constructs an element node with the given label and children.
func Elem(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// Text constructs a text node carrying the given character data.
func Text(value string) *Node {
	return &Node{Value: value}
}

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n.Label == "" }

// Append adds children to n and returns n for chaining.
func (n *Node) Append(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Depth returns the depth of the subtree rooted at n. A leaf has depth 1.
// Text nodes count as nodes, matching the paper's treatment of values as
// labeled leaf children of their parent element.
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// CountElements returns the number of element nodes in the subtree rooted
// at n, including n itself if it is an element.
func (n *Node) CountElements() int {
	if n == nil {
		return 0
	}
	total := 0
	if !n.IsText() {
		total = 1
	}
	for _, c := range n.Children {
		total += c.CountElements()
	}
	return total
}

// CountNodes returns the number of nodes (elements and text) in the
// subtree rooted at n.
func (n *Node) CountNodes() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// Walk visits every node of the subtree in document (preorder) order.
// It stops early if fn returns false.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if n == nil {
		return true
	}
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// Child returns the first element child with the given label, or nil.
func (n *Node) Child(label string) *Node {
	for _, c := range n.Children {
		if c.Label == label {
			return c
		}
	}
	return nil
}

// TextContent returns the concatenation of all text node values directly
// under n.
func (n *Node) TextContent() string {
	var sb strings.Builder
	for _, c := range n.Children {
		if c.IsText() {
			sb.WriteString(c.Value)
		}
	}
	return sb.String()
}

// String renders a compact single-line summary of the node, useful in
// test failure messages. It is not valid XML; use Marshal for that.
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	if n.IsText() {
		return fmt.Sprintf("%q", n.Value)
	}
	if len(n.Children) == 0 {
		return "(" + n.Label + ")"
	}
	parts := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		parts = append(parts, c.String())
	}
	return "(" + n.Label + " " + strings.Join(parts, " ") + ")"
}

// Equal reports whether two trees are structurally identical, including
// text values and child order.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Label != o.Label || n.Value != o.Value || len(n.Children) != len(o.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := &Node{Label: n.Label, Value: n.Value}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}
