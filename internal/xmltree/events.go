package xmltree

import "io"

// EventKind discriminates the events of a SAX-style stream over an XML
// tree, matching the input model of the paper's Algorithm 1
// (CONSTRUCT-ENTRIES): open tags, close tags and character data.
type EventKind uint8

const (
	// Open is generated when an element's start tag is encountered.
	Open EventKind = iota
	// Close is generated when an element's end tag is encountered.
	Close
	// TextEvent is generated for a text node between tags.
	TextEvent
)

func (k EventKind) String() string {
	switch k {
	case Open:
		return "open"
	case Close:
		return "close"
	case TextEvent:
		return "text"
	default:
		return "unknown"
	}
}

// Event is a single parsing event. Ptr is an opaque pointer into primary
// storage identifying where the subtree rooted at this element starts; it
// is carried through bisimulation construction and becomes the B-tree
// payload (paper Algorithm 1, x.start_ptr).
type Event struct {
	Kind  EventKind
	Label string // element label for Open/Close
	Value string // character data for TextEvent
	Ptr   uint64
}

// EventStream produces parsing events. Next returns io.EOF after the last
// event.
type EventStream interface {
	Next() (Event, error)
}

// treeStream walks an in-memory tree emitting events. Ptr values are the
// preorder ordinal of each node offset by base, which is sufficient for
// in-memory use; storage-backed streams supply real byte offsets instead.
type treeStream struct {
	stack []frame
	next  uint64
}

type frame struct {
	node *Node
	ptr  uint64
	idx  int // next child index; -1 means the open event is pending
}

// NewTreeStream returns an EventStream over the given tree. base is added
// to every pointer, letting a caller stream several documents with
// non-overlapping pointer ranges.
func NewTreeStream(root *Node, base uint64) EventStream {
	ts := &treeStream{next: base}
	if root != nil {
		ts.stack = append(ts.stack, frame{node: root, idx: -1})
	}
	return ts
}

func (ts *treeStream) Next() (Event, error) {
	for len(ts.stack) > 0 {
		top := &ts.stack[len(ts.stack)-1]
		if top.idx < 0 {
			top.idx = 0
			top.ptr = ts.next
			ts.next++
			if top.node.IsText() {
				// Emit the text event and pop immediately; text nodes
				// have no close event.
				ev := Event{Kind: TextEvent, Value: top.node.Value, Ptr: top.ptr}
				ts.stack = ts.stack[:len(ts.stack)-1]
				return ev, nil
			}
			return Event{Kind: Open, Label: top.node.Label, Ptr: top.ptr}, nil
		}
		if top.idx < len(top.node.Children) {
			child := top.node.Children[top.idx]
			top.idx++
			ts.stack = append(ts.stack, frame{node: child, idx: -1})
			continue
		}
		ev := Event{Kind: Close, Label: top.node.Label, Ptr: top.ptr}
		ts.stack = ts.stack[:len(ts.stack)-1]
		return ev, nil
	}
	return Event{}, io.EOF
}

// SliceStream replays a fixed slice of events; it is used by tests and by
// the bisimulation traveler.
type SliceStream struct {
	events []Event
	pos    int
}

// NewSliceStream returns a stream over the given events.
func NewSliceStream(events []Event) *SliceStream {
	return &SliceStream{events: events}
}

func (s *SliceStream) Next() (Event, error) {
	if s.pos >= len(s.events) {
		return Event{}, io.EOF
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, nil
}

// Collect drains a stream into a slice, mainly for tests.
func Collect(s EventStream) ([]Event, error) {
	var out []Event
	for {
		ev, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}
