package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads a single XML document from r and returns its root element.
// Attributes, comments, processing instructions and namespaces are ignored
// (the paper's data model covers element structure and PCDATA only).
// Whitespace-only text between elements is dropped.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Label: t.Name.Local}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end tag </%s>", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			s := strings.TrimSpace(string(t))
			if s == "" || len(stack) == 0 {
				continue
			}
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, Text(s))
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unterminated element <%s>", stack[len(stack)-1].Label)
	}
	return root, nil
}

// ParseString is a convenience wrapper around Parse.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// Marshal writes the subtree rooted at n as compact XML (no indentation,
// escaped text).
func Marshal(w io.Writer, n *Node) error {
	if n == nil {
		return nil
	}
	if n.IsText() {
		return xml.EscapeText(w, []byte(n.Value))
	}
	if _, err := io.WriteString(w, "<"+n.Label+">"); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := Marshal(w, c); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</"+n.Label+">")
	return err
}

// MarshalString renders the subtree as an XML string.
func MarshalString(n *Node) string {
	var sb strings.Builder
	// strings.Builder writes never fail.
	_ = Marshal(&sb, n)
	return sb.String()
}
