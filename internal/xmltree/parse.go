package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrLimit reports that a document exceeded a parse limit (depth, token
// size, fan-out, node count, or input bytes). Test with errors.Is; the wrapped
// message names the violated dimension. Limit errors are deliberate
// rejections of well-formed but oversized input, distinct from the
// malformed-XML errors Parse otherwise returns.
var ErrLimit = errors.New("xmltree: parse limit exceeded")

// ParseLimits bounds what a single document may cost to parse, so an
// untrusted input fails fast with a typed error instead of exhausting
// memory. A zero field selects the package default; a negative field
// disables that limit.
type ParseLimits struct {
	// MaxDepth caps element nesting. Deep documents are the classic
	// recursion attack: later stages (binary encoding, bisimulation,
	// re-serialization) recurse over the tree, so depth admitted here is
	// stack consumed there.
	MaxDepth int
	// MaxTokenBytes caps the byte length of one element name or one
	// text node.
	MaxTokenBytes int
	// MaxChildren caps the children of one element (fan-out).
	MaxChildren int
	// MaxNodes caps the total number of tree nodes (elements plus text).
	MaxNodes int
	// MaxBytes caps the total serialized input consumed for one
	// document. It is the outermost guard: the other limits bound the
	// parsed tree, MaxBytes bounds the raw bytes before the parser (or a
	// caller buffering for a write-ahead log) trusts them.
	MaxBytes int
}

// Default parse limits: generous for any realistic document (XMark
// depth is ~12; DBLP fan-out is large but bounded), tight enough that a
// hostile input cannot run the process out of memory or stack.
const (
	DefaultMaxDepth      = 512
	DefaultMaxTokenBytes = 1 << 20 // 1 MiB per name or text node
	DefaultMaxChildren   = 1 << 20
	DefaultMaxNodes      = 1 << 26
	DefaultMaxBytes      = 1 << 28 // 256 MiB of raw document input
)

// effective resolves the zero-means-default, negative-means-unlimited
// convention into concrete bounds (0 = unlimited).
func (l ParseLimits) effective() ParseLimits {
	resolve := func(v, def int) int {
		switch {
		case v < 0:
			return 0
		case v == 0:
			return def
		default:
			return v
		}
	}
	return ParseLimits{
		MaxDepth:      resolve(l.MaxDepth, DefaultMaxDepth),
		MaxTokenBytes: resolve(l.MaxTokenBytes, DefaultMaxTokenBytes),
		MaxChildren:   resolve(l.MaxChildren, DefaultMaxChildren),
		MaxNodes:      resolve(l.MaxNodes, DefaultMaxNodes),
		MaxBytes:      resolve(l.MaxBytes, DefaultMaxBytes),
	}
}

// Parse reads a single XML document from r and returns its root element.
// Attributes, comments, processing instructions and namespaces are ignored
// (the paper's data model covers element structure and PCDATA only).
// Whitespace-only text between elements is dropped. The default
// ParseLimits apply; use ParseWithLimits to change them.
func Parse(r io.Reader) (*Node, error) {
	return ParseWithLimits(r, ParseLimits{})
}

// ParseWithLimits is Parse under explicit resource limits; see
// ParseLimits for the zero/negative conventions. Violations return an
// error wrapping ErrLimit.
func ParseWithLimits(r io.Reader, lim ParseLimits) (*Node, error) {
	lim = lim.effective()
	var lr *byteLimitReader
	if lim.MaxBytes > 0 {
		lr = &byteLimitReader{r: r, left: int64(lim.MaxBytes)}
		r = lr
	}
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	nodes := 0
	addNode := func() error {
		nodes++
		if lim.MaxNodes > 0 && nodes > lim.MaxNodes {
			return fmt.Errorf("%w: more than %d nodes", ErrLimit, lim.MaxNodes)
		}
		return nil
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			if lr != nil && lr.exceeded {
				return nil, fmt.Errorf("%w: document larger than %d bytes", ErrLimit, lim.MaxBytes)
			}
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if lim.MaxDepth > 0 && len(stack) >= lim.MaxDepth {
				return nil, fmt.Errorf("%w: depth exceeds %d", ErrLimit, lim.MaxDepth)
			}
			if lim.MaxTokenBytes > 0 && len(t.Name.Local) > lim.MaxTokenBytes {
				return nil, fmt.Errorf("%w: element name longer than %d bytes", ErrLimit, lim.MaxTokenBytes)
			}
			if err := addNode(); err != nil {
				return nil, err
			}
			n := &Node{Label: t.Name.Local}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				if lim.MaxChildren > 0 && len(parent.Children) >= lim.MaxChildren {
					return nil, fmt.Errorf("%w: element <%s> has more than %d children", ErrLimit, parent.Label, lim.MaxChildren)
				}
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end tag </%s>", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if lim.MaxTokenBytes > 0 && len(t) > lim.MaxTokenBytes {
				return nil, fmt.Errorf("%w: text node longer than %d bytes", ErrLimit, lim.MaxTokenBytes)
			}
			s := strings.TrimSpace(string(t))
			if s == "" || len(stack) == 0 {
				continue
			}
			if err := addNode(); err != nil {
				return nil, err
			}
			parent := stack[len(stack)-1]
			if lim.MaxChildren > 0 && len(parent.Children) >= lim.MaxChildren {
				return nil, fmt.Errorf("%w: element <%s> has more than %d children", ErrLimit, parent.Label, lim.MaxChildren)
			}
			parent.Children = append(parent.Children, Text(s))
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unterminated element <%s>", stack[len(stack)-1].Label)
	}
	return root, nil
}

// ParseString is a convenience wrapper around Parse.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// byteLimitReader hands out at most left bytes, then fails the first
// read that would go past them — but only if the source actually has
// more data, so an input of exactly the limit still reaches its EOF.
// exceeded lets the parser map the failure to ErrLimit however the xml
// decoder propagates reader errors.
type byteLimitReader struct {
	r        io.Reader
	left     int64
	exceeded bool
}

func (l *byteLimitReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if l.left <= 0 {
		var one [1]byte
		n, err := l.r.Read(one[:])
		if n > 0 {
			l.exceeded = true
			return 0, fmt.Errorf("%w: document input over byte limit", ErrLimit)
		}
		return 0, err
	}
	if int64(len(p)) > l.left {
		p = p[:l.left]
	}
	n, err := l.r.Read(p)
	l.left -= int64(n)
	return n, err
}

// ReadDocument buffers all of r, bounded by the effective MaxBytes of
// lim (the only field it consults); oversized input returns an error
// wrapping ErrLimit. Callers that must hold a document's raw bytes —
// the ingest write-ahead log logs them verbatim — use it so buffering
// is as bounded as the streaming parse itself.
func ReadDocument(r io.Reader, lim ParseLimits) ([]byte, error) {
	max := lim.effective().MaxBytes
	if max <= 0 {
		return io.ReadAll(r)
	}
	data, err := io.ReadAll(io.LimitReader(r, int64(max)+1))
	if err != nil {
		return nil, err
	}
	if len(data) > max {
		return nil, fmt.Errorf("%w: document larger than %d bytes", ErrLimit, max)
	}
	return data, nil
}

// Marshal writes the subtree rooted at n as compact XML (no indentation,
// escaped text).
func Marshal(w io.Writer, n *Node) error {
	if n == nil {
		return nil
	}
	if n.IsText() {
		return xml.EscapeText(w, []byte(n.Value))
	}
	if _, err := io.WriteString(w, "<"+n.Label+">"); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := Marshal(w, c); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</"+n.Label+">")
	return err
}

// MarshalString renders the subtree as an XML string.
func MarshalString(n *Node) string {
	var sb strings.Builder
	// strings.Builder writes never fail.
	_ = Marshal(&sb, n)
	return sb.String()
}
