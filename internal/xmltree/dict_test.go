package xmltree

import (
	"bytes"
	"sync"
	"testing"
)

func TestDictAssignAndLookup(t *testing.T) {
	d := NewDict()
	a := d.ID("alpha")
	b := d.ID("beta")
	if a != 1 || b != 2 {
		t.Fatalf("IDs = %d, %d; want 1, 2", a, b)
	}
	if again := d.ID("alpha"); again != a {
		t.Errorf("re-ID(alpha) = %d, want %d", again, a)
	}
	if id, ok := d.Lookup("beta"); !ok || id != b {
		t.Errorf("Lookup(beta) = %d, %v", id, ok)
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup(gamma) should miss")
	}
	if d.Label(a) != "alpha" || d.Label(0) != "" {
		t.Error("Label lookup wrong")
	}
	if d.Label(99) == "" {
		t.Error("unknown ID should render a placeholder, not empty")
	}
	if d.MaxID() != 2 || d.Len() != 2 {
		t.Errorf("MaxID=%d Len=%d", d.MaxID(), d.Len())
	}
	labels := d.Labels()
	if len(labels) != 2 || labels[0] != "alpha" || labels[1] != "beta" {
		t.Errorf("Labels = %v", labels)
	}
}

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	for _, s := range []string{"a", "weird \"label\"", "tab\there", "ünïcode"} {
		d.ID(s)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDict(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), d.Len())
	}
	for _, s := range []string{"a", "weird \"label\"", "tab\there", "ünïcode"} {
		want, _ := d.Lookup(s)
		got, ok := back.Lookup(s)
		if !ok || got != want {
			t.Errorf("Lookup(%q) = %d, %v; want %d", s, got, ok, want)
		}
	}
}

func TestDictConcurrent(t *testing.T) {
	d := NewDict()
	labels := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l := labels[i%len(labels)]
				id := d.ID(l)
				if d.Label(id) != l {
					t.Errorf("Label(ID(%q)) mismatch", l)
					return
				}
			}
		}()
	}
	wg.Wait()
	if d.Len() != len(labels) {
		t.Errorf("Len = %d, want %d", d.Len(), len(labels))
	}
}
