package xmltree

import (
	"strings"
	"testing"
)

// FuzzParseXML asserts the parser's hardening contract on arbitrary
// bytes: under tight limits it must return a tree or an error — never
// panic, hang, or blow the stack — and any tree it accepts must survive
// a marshal → parse round trip.
func FuzzParseXML(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a><b>text</b><b/></a>`,
		`<bib><article><author><email>x@y</email></author></article></bib>`,
		`<a>&lt;escaped&gt;</a>`,
		`<a><!-- comment --><?pi data?><b xmlns:x="u" x:attr="v"/></a>`,
		strings.Repeat("<a>", 40) + strings.Repeat("</a>", 40),
		`<a><b></a></b>`, // mismatched
		`<a>` + strings.Repeat("<b/>", 50) + `</a>`,
		``,
		`not xml at all`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lim := ParseLimits{MaxDepth: 64, MaxTokenBytes: 1 << 16, MaxChildren: 1 << 10, MaxNodes: 1 << 16}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseWithLimits(strings.NewReader(s), lim)
		if err != nil {
			return
		}
		if n == nil {
			t.Fatal("nil root without error")
		}
		out := MarshalString(n)
		if _, err := ParseWithLimits(strings.NewReader(out), lim); err != nil {
			t.Fatalf("marshal output does not re-parse: %v\ninput  %q\noutput %q", err, s, out)
		}
	})
}
