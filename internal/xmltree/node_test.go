package xmltree

import (
	"strings"
	"testing"
)

func sample() *Node {
	return Elem("bib",
		Elem("article",
			Elem("title", Text("t1")),
			Elem("author",
				Elem("address"),
				Elem("email"))),
		Elem("book",
			Elem("title", Text("t2")),
			Elem("author",
				Elem("affiliation"))))
}

func TestDepth(t *testing.T) {
	cases := []struct {
		n    *Node
		want int
	}{
		{nil, 0},
		{Elem("a"), 1},
		{Elem("a", Elem("b")), 2},
		{Elem("a", Text("x")), 2},
		{sample(), 5}, // bib/article/title/"t1" is 4; bib/article/author/email is 4... deepest is 4? see below
	}
	// bib -> article -> title -> text = 4 levels; bib -> article -> author -> email = 4.
	cases[4].want = 4
	for i, c := range cases {
		if got := c.n.Depth(); got != c.want {
			t.Errorf("case %d: Depth() = %d, want %d", i, got, c.want)
		}
	}
}

func TestCounts(t *testing.T) {
	n := sample()
	// bib, article, title, author, address, email, book, title, author,
	// affiliation = 10 elements; plus two text nodes.
	if got := n.CountElements(); got != 10 {
		t.Errorf("CountElements = %d, want 10", got)
	}
	if got := n.CountNodes(); got != 12 {
		t.Errorf("CountNodes = %d, want 12", got)
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	n := sample()
	var order []string
	n.Walk(func(x *Node) bool {
		if x.IsText() {
			order = append(order, "#"+x.Value)
		} else {
			order = append(order, x.Label)
		}
		return true
	})
	want := "bib article title #t1 author address email book title #t2 author affiliation"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("walk order = %q, want %q", got, want)
	}
	count := 0
	n.Walk(func(x *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d nodes, want 3", count)
	}
}

func TestChildAndTextContent(t *testing.T) {
	n := sample()
	art := n.Child("article")
	if art == nil || art.Label != "article" {
		t.Fatalf("Child(article) = %v", art)
	}
	if n.Child("nope") != nil {
		t.Error("Child(nope) should be nil")
	}
	title := art.Child("title")
	if got := title.TextContent(); got != "t1" {
		t.Errorf("TextContent = %q, want t1", got)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := sample()
	b := sample()
	if !a.Equal(b) {
		t.Error("identical trees not Equal")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not Equal to original")
	}
	c.Children[0].Label = "mutated"
	if a.Equal(c) {
		t.Error("mutated clone still Equal")
	}
	if a.Children[0].Label == "mutated" {
		t.Error("mutating the clone changed the original")
	}
	if a.Equal(nil) || !(*Node)(nil).Equal(nil) {
		t.Error("nil Equal semantics wrong")
	}
}

func TestStringSummary(t *testing.T) {
	n := Elem("a", Text("x"), Elem("b"))
	if got := n.String(); got != `(a "x" (b))` {
		t.Errorf("String = %q", got)
	}
}

func TestAppend(t *testing.T) {
	n := Elem("a").Append(Elem("b"), Text("t"))
	if len(n.Children) != 2 || n.Children[0].Label != "b" || !n.Children[1].IsText() {
		t.Errorf("Append built %v", n)
	}
}
