package xmltree

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Dict maps element labels to dense uint32 identifiers and back. Label IDs
// start at 1; ID 0 is reserved for text nodes in the binary encoding.
//
// A Dict is safe for concurrent use.
type Dict struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string // strs[i] is the label with ID i+1
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// ID returns the identifier for label, assigning a fresh one if the label
// has not been seen before.
func (d *Dict) ID(label string) uint32 {
	d.mu.RLock()
	id, ok := d.ids[label]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[label]; ok {
		return id
	}
	d.strs = append(d.strs, label)
	id = uint32(len(d.strs))
	d.ids[label] = id
	return id
}

// Lookup returns the identifier for label without assigning a new one.
// The second result reports whether the label is known.
func (d *Dict) Lookup(label string) (uint32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[label]
	return id, ok
}

// Label returns the label string for the given identifier. It returns the
// empty string for ID 0 (text) and for unknown IDs it returns a synthetic
// placeholder so that diagnostics never panic.
func (d *Dict) Label(id uint32) string {
	if id == 0 {
		return ""
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) <= len(d.strs) {
		return d.strs[id-1]
	}
	return fmt.Sprintf("#%d", id)
}

// Len returns the number of distinct labels registered.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.strs)
}

// MaxID returns the largest assigned label ID, or 0 if empty. The paper's
// value hashing (§4.6) maps PCDATA into the range (MaxID, MaxID+β].
func (d *Dict) MaxID() uint32 {
	return uint32(d.Len())
}

// Labels returns all registered labels sorted lexicographically.
func (d *Dict) Labels() []string {
	d.mu.RLock()
	out := make([]string, len(d.strs))
	copy(out, d.strs)
	d.mu.RUnlock()
	sort.Strings(out)
	return out
}

// WriteTo serializes the dictionary as a line-oriented text format:
// a count line followed by one quoted label per line in ID order.
func (d *Dict) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "%d\n", len(d.strs))
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, s := range d.strs {
		k, err = fmt.Fprintf(bw, "%s\n", strconv.Quote(s))
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadDict deserializes a dictionary written by WriteTo.
func ReadDict(r io.Reader) (*Dict, error) {
	br := bufio.NewReader(r)
	var count int
	if _, err := fmt.Fscanf(br, "%d\n", &count); err != nil {
		return nil, fmt.Errorf("xmltree: reading dict header: %w", err)
	}
	d := NewDict()
	for i := 0; i < count; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("xmltree: reading dict entry %d: %w", i, err)
		}
		s, err := strconv.Unquote(line[:len(line)-1])
		if err != nil {
			return nil, fmt.Errorf("xmltree: unquoting dict entry %d: %w", i, err)
		}
		d.strs = append(d.strs, s)
		d.ids[s] = uint32(len(d.strs))
	}
	return d, nil
}
