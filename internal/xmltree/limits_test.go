package xmltree

import (
	"errors"
	"strings"
	"testing"
)

// nestedDoc builds <a><a>…</a></a> nested depth levels deep.
func nestedDoc(depth int) string {
	return strings.Repeat("<a>", depth) + strings.Repeat("</a>", depth)
}

func TestParseLimitDepth(t *testing.T) {
	lim := ParseLimits{MaxDepth: 3}
	if _, err := ParseWithLimits(strings.NewReader(nestedDoc(3)), lim); err != nil {
		t.Fatalf("depth at the limit: %v", err)
	}
	_, err := ParseWithLimits(strings.NewReader(nestedDoc(4)), lim)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("depth over the limit = %v, want ErrLimit", err)
	}
}

func TestParseLimitTokenBytes(t *testing.T) {
	lim := ParseLimits{MaxTokenBytes: 8}
	if _, err := ParseWithLimits(strings.NewReader("<a>12345678</a>"), lim); err != nil {
		t.Fatalf("text at the limit: %v", err)
	}
	_, err := ParseWithLimits(strings.NewReader("<a>123456789</a>"), lim)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("oversized text = %v, want ErrLimit", err)
	}
	_, err = ParseWithLimits(strings.NewReader("<abcdefghij/>"), lim)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("oversized element name = %v, want ErrLimit", err)
	}
}

func TestParseLimitChildren(t *testing.T) {
	lim := ParseLimits{MaxChildren: 2}
	if _, err := ParseWithLimits(strings.NewReader("<r><a/><a/></r>"), lim); err != nil {
		t.Fatalf("fan-out at the limit: %v", err)
	}
	_, err := ParseWithLimits(strings.NewReader("<r><a/><a/><a/></r>"), lim)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("fan-out over the limit = %v, want ErrLimit", err)
	}
}

func TestParseLimitNodes(t *testing.T) {
	lim := ParseLimits{MaxNodes: 3}
	if _, err := ParseWithLimits(strings.NewReader("<r><a/><a/></r>"), lim); err != nil {
		t.Fatalf("nodes at the limit: %v", err)
	}
	_, err := ParseWithLimits(strings.NewReader("<r><a/><a/><a/></r>"), lim)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("nodes over the limit = %v, want ErrLimit", err)
	}
}

func TestParseDefaultDepthLimit(t *testing.T) {
	// Parse (no explicit limits) must reject hostile nesting beyond the
	// package default rather than risking the stack of later recursive
	// consumers.
	_, err := Parse(strings.NewReader(nestedDoc(DefaultMaxDepth + 1)))
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("hostile depth under default limits = %v, want ErrLimit", err)
	}
}

func TestParseNegativeDisablesLimit(t *testing.T) {
	lim := ParseLimits{MaxDepth: -1}
	n, err := ParseWithLimits(strings.NewReader(nestedDoc(DefaultMaxDepth+10)), lim)
	if err != nil {
		t.Fatalf("negative MaxDepth must disable the bound: %v", err)
	}
	if n == nil {
		t.Fatal("nil root without error")
	}
}

func TestParseLimitErrorsAreNotSyntaxErrors(t *testing.T) {
	// A limit rejection must stay distinguishable from malformed XML.
	_, err := ParseWithLimits(strings.NewReader("<a><b></a>"), ParseLimits{})
	if err == nil || errors.Is(err, ErrLimit) {
		t.Fatalf("malformed XML = %v, want a non-limit parse error", err)
	}
}

func TestParseLimitBytes(t *testing.T) {
	doc := "<a>12345</a>"
	if _, err := ParseWithLimits(strings.NewReader(doc), ParseLimits{MaxBytes: len(doc)}); err != nil {
		t.Fatalf("input exactly at the byte limit: %v", err)
	}
	_, err := ParseWithLimits(strings.NewReader(doc), ParseLimits{MaxBytes: len(doc) - 1})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("input over the byte limit = %v, want ErrLimit", err)
	}
}

func TestReadDocumentLimitBytes(t *testing.T) {
	doc := "<a>hello</a>"
	got, err := ReadDocument(strings.NewReader(doc), ParseLimits{MaxBytes: len(doc)})
	if err != nil || string(got) != doc {
		t.Fatalf("ReadDocument at the limit = %q, %v", got, err)
	}
	if _, err := ReadDocument(strings.NewReader(doc), ParseLimits{MaxBytes: len(doc) - 1}); !errors.Is(err, ErrLimit) {
		t.Fatalf("ReadDocument over the limit = %v, want ErrLimit", err)
	}
	// Negative disables the bound entirely.
	if _, err := ReadDocument(strings.NewReader(doc), ParseLimits{MaxBytes: -1}); err != nil {
		t.Fatalf("ReadDocument with the bound disabled: %v", err)
	}
}
