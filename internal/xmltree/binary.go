package xmltree

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary subtree encoding.
//
// Every node is encoded as a varint tag followed by a varint length:
//
//	element: tag = labelID<<1        length = total bytes of the children
//	text:    tag = 1                 length = byte length of the value
//
// followed by either the children encodings or the UTF-8 value bytes.
// Because each node knows the byte length of its body, a consumer can
// decode the subtree starting at any node offset without touching its
// siblings, and can skip a whole subtree in O(1). This gives the
// navigational operators (NoK) first-child/next-sibling moves directly over
// stored bytes with no deserialization, and lets an index pointer address
// any element inside a large stored document.

// AppendBinary appends the binary encoding of the subtree rooted at n to
// dst, interning labels in dict, and returns the extended slice.
func AppendBinary(dst []byte, n *Node, dict *Dict) []byte {
	if n == nil {
		return dst
	}
	if n.IsText() {
		dst = binary.AppendUvarint(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(len(n.Value)))
		return append(dst, n.Value...)
	}
	id := dict.ID(n.Label)
	dst = binary.AppendUvarint(dst, uint64(id)<<1)
	// Encode children into a scratch region so the length prefix can be
	// written first. To avoid a second buffer we reserve a maximal varint,
	// encode, then shift if the varint turned out shorter.
	body := encodeChildren(nil, n, dict)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

func encodeChildren(dst []byte, n *Node, dict *Dict) []byte {
	for _, c := range n.Children {
		dst = AppendBinary(dst, c, dict)
	}
	return dst
}

// EncodeBinary encodes the subtree rooted at n.
func EncodeBinary(n *Node, dict *Dict) []byte {
	return AppendBinary(nil, n, dict)
}

// DecodeBinary reconstructs the node tree encoded at the start of buf.
// It returns the tree and the number of bytes consumed.
func DecodeBinary(buf []byte, dict *Dict) (*Node, int, error) {
	c := Cursor{Buf: buf, Dict: dict}
	n, end, err := c.decode(0)
	return n, int(end), err
}

// Ref is a byte offset of a node within an encoded buffer.
type Ref uint32

// Cursor navigates a binary-encoded subtree without decoding it. The zero
// offset is the root of the buffer. Cursors are cheap values; create them
// freely.
type Cursor struct {
	Buf  []byte
	Dict *Dict
}

// header parses the node header at r, returning the tag, the body length
// and the offset of the body.
func (c Cursor) header(r Ref) (tag uint64, bodyLen uint64, body Ref, err error) {
	tag, n1 := binary.Uvarint(c.Buf[r:])
	if n1 <= 0 {
		return 0, 0, 0, fmt.Errorf("xmltree: corrupt node tag at offset %d", r)
	}
	bodyLen, n2 := binary.Uvarint(c.Buf[int(r)+n1:])
	if n2 <= 0 {
		return 0, 0, 0, fmt.Errorf("xmltree: corrupt node length at offset %d", r)
	}
	body = r + Ref(n1) + Ref(n2)
	if int(body)+int(bodyLen) > len(c.Buf) {
		return 0, 0, 0, fmt.Errorf("xmltree: node body at offset %d overruns buffer", r)
	}
	return tag, bodyLen, body, nil
}

// IsText reports whether the node at r is a text node.
func (c Cursor) IsText(r Ref) bool {
	tag, _, _, err := c.header(r)
	return err == nil && tag == 1
}

// LabelID returns the label identifier of the element at r, or 0 for a
// text node or corrupt data.
func (c Cursor) LabelID(r Ref) uint32 {
	tag, _, _, err := c.header(r)
	if err != nil || tag == 1 {
		return 0
	}
	return uint32(tag >> 1)
}

// Label returns the label string of the element at r.
func (c Cursor) Label(r Ref) string {
	return c.Dict.Label(c.LabelID(r))
}

// Text returns the character data of the text node at r (empty for
// elements).
func (c Cursor) Text(r Ref) string {
	tag, bodyLen, body, err := c.header(r)
	if err != nil || tag != 1 {
		return ""
	}
	return string(c.Buf[body : body+Ref(bodyLen)])
}

// SubtreeEnd returns the offset one past the end of the subtree at r.
func (c Cursor) SubtreeEnd(r Ref) Ref {
	_, bodyLen, body, err := c.header(r)
	if err != nil {
		return Ref(len(c.Buf))
	}
	return body + Ref(bodyLen)
}

// SubtreeBytes returns the raw encoding of the subtree at r. The slice
// aliases the cursor's buffer.
func (c Cursor) SubtreeBytes(r Ref) []byte {
	return c.Buf[r:c.SubtreeEnd(r)]
}

// Children returns an iterator over the child nodes of the element at r.
func (c Cursor) Children(r Ref) ChildIter {
	tag, bodyLen, body, err := c.header(r)
	if err != nil || tag == 1 {
		return ChildIter{}
	}
	return ChildIter{c: c, pos: body, end: body + Ref(bodyLen)}
}

// Decode reconstructs the subtree rooted at r as a Node tree.
func (c Cursor) Decode(r Ref) (*Node, error) {
	n, _, err := c.decode(r)
	return n, err
}

func (c Cursor) decode(r Ref) (*Node, Ref, error) {
	tag, bodyLen, body, err := c.header(r)
	if err != nil {
		return nil, 0, err
	}
	end := body + Ref(bodyLen)
	if tag == 1 {
		return Text(string(c.Buf[body:end])), end, nil
	}
	n := &Node{Label: c.Dict.Label(uint32(tag >> 1))}
	pos := body
	for pos < end {
		child, next, err := c.decode(pos)
		if err != nil {
			return nil, 0, err
		}
		n.Children = append(n.Children, child)
		pos = next
	}
	return n, end, nil
}

// Depth returns the depth of the subtree at r (a leaf has depth 1).
func (c Cursor) Depth(r Ref) int {
	max := 0
	it := c.Children(r)
	for {
		child, ok := it.Next()
		if !ok {
			break
		}
		if d := c.Depth(child); d > max {
			max = d
		}
	}
	return max + 1
}

// ChildIter iterates over the children of one element.
type ChildIter struct {
	c        Cursor
	pos, end Ref
}

// Next returns the offset of the next child, or false when exhausted.
func (it *ChildIter) Next() (Ref, bool) {
	if it.pos >= it.end || it.c.Buf == nil {
		return 0, false
	}
	r := it.pos
	it.pos = it.c.SubtreeEnd(r)
	return r, true
}

// cursorStream walks a binary-encoded subtree emitting events whose Ptr
// values are base+offset, so an index entry can point back into storage.
type cursorStream struct {
	c     Cursor
	base  uint64
	stack []cursorFrame
}

type cursorFrame struct {
	ref    Ref
	it     ChildIter
	opened bool
}

// NewCursorStream returns an EventStream over the encoded subtree at r.
// Every event's Ptr is base plus the node's byte offset in the buffer.
func NewCursorStream(c Cursor, r Ref, base uint64) EventStream {
	return &cursorStream{c: c, base: base, stack: []cursorFrame{{ref: r}}}
}

func (s *cursorStream) Next() (Event, error) {
	for len(s.stack) > 0 {
		top := &s.stack[len(s.stack)-1]
		if !top.opened {
			top.opened = true
			ptr := s.base + uint64(top.ref)
			if s.c.IsText(top.ref) {
				ev := Event{Kind: TextEvent, Value: s.c.Text(top.ref), Ptr: ptr}
				s.stack = s.stack[:len(s.stack)-1]
				return ev, nil
			}
			top.it = s.c.Children(top.ref)
			return Event{Kind: Open, Label: s.c.Label(top.ref), Ptr: ptr}, nil
		}
		if child, ok := top.it.Next(); ok {
			s.stack = append(s.stack, cursorFrame{ref: child})
			continue
		}
		ev := Event{Kind: Close, Label: s.c.Label(top.ref), Ptr: s.base + uint64(top.ref)}
		s.stack = s.stack[:len(s.stack)-1]
		return ev, nil
	}
	var zero Event
	return zero, io.EOF
}
