package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	n, err := ParseString(`<a><b>hi</b><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	want := Elem("a", Elem("b", Text("hi")), Elem("c"))
	if !n.Equal(want) {
		t.Errorf("parsed %v, want %v", n, want)
	}
}

func TestParseSkipsWhitespaceAndDecorations(t *testing.T) {
	n, err := ParseString("<?xml version=\"1.0\"?>\n<a>\n  <!-- comment -->\n  <b attr=\"ignored\">x</b>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	want := Elem("a", Elem("b", Text("x")))
	if !n.Equal(want) {
		t.Errorf("parsed %v, want %v", n, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"<a>",
		"<a></b>",
		"<a></a><b></b>",
		"just text",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	orig := Elem("bib",
		Elem("article", Elem("title", Text("a < b & c"))),
		Elem("note", Text(`quotes " and '`)))
	s := MarshalString(orig)
	back, err := ParseString(s)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", s, err)
	}
	if !back.Equal(orig) {
		t.Errorf("round trip %v -> %q -> %v", orig, s, back)
	}
}

// genTree builds a deterministic pseudo-random tree from an integer seed,
// suitable for quick-check roundtrips.
func genTree(seed uint64, depth int) *Node {
	labels := []string{"a", "bb", "ccc", "d-e", "f_g"}
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	var build func(d int) *Node
	build = func(d int) *Node {
		if d <= 0 || next()%4 == 0 {
			if next()%3 == 0 {
				return Text("txt" + labels[next()%5])
			}
			return Elem(labels[next()%5])
		}
		n := Elem(labels[next()%5])
		for i := uint64(0); i < next()%4; i++ {
			c := build(d - 1)
			if c.IsText() && len(n.Children) > 0 && n.Children[len(n.Children)-1].IsText() {
				continue // adjacent text nodes merge on reparse; keep trees canonical
			}
			n.Children = append(n.Children, c)
		}
		return n
	}
	root := build(depth)
	if root.IsText() {
		root = Elem("root", root)
	}
	return root
}

func TestQuickMarshalParseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		orig := genTree(seed, 5)
		back, err := ParseString(MarshalString(orig))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return back.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		orig := genTree(seed, 6)
		dict := NewDict()
		buf := EncodeBinary(orig, dict)
		back, n, err := DecodeBinary(buf, dict)
		if err != nil || n != len(buf) {
			return false
		}
		return back.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMarshalEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Marshal(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "" {
		t.Errorf("Marshal(nil) wrote %q", sb.String())
	}
}
