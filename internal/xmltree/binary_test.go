package xmltree

import (
	"testing"
	"testing/quick"
)

func encodeSample(t *testing.T) (Cursor, *Node) {
	t.Helper()
	n := sample()
	dict := NewDict()
	buf := EncodeBinary(n, dict)
	return Cursor{Buf: buf, Dict: dict}, n
}

func TestCursorNavigation(t *testing.T) {
	c, _ := encodeSample(t)
	if got := c.Label(0); got != "bib" {
		t.Fatalf("root label = %q", got)
	}
	it := c.Children(0)
	first, ok := it.Next()
	if !ok || c.Label(first) != "article" {
		t.Fatalf("first child = %q, ok=%v", c.Label(first), ok)
	}
	second, ok := it.Next()
	if !ok || c.Label(second) != "book" {
		t.Fatalf("second child = %q, ok=%v", c.Label(second), ok)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("expected exhausted iterator")
	}
	// article's first child is title, whose child is the text node.
	at := c.Children(first)
	title, _ := at.Next()
	if c.Label(title) != "title" {
		t.Fatalf("title label = %q", c.Label(title))
	}
	tt := c.Children(title)
	txt, ok := tt.Next()
	if !ok || !c.IsText(txt) || c.Text(txt) != "t1" {
		t.Fatalf("text node = %q (isText=%v)", c.Text(txt), c.IsText(txt))
	}
	if c.Text(title) != "" {
		t.Error("Text on element should be empty")
	}
	if c.Label(txt) != "" || c.LabelID(txt) != 0 {
		t.Error("Label on text node should be empty")
	}
}

func TestCursorSubtree(t *testing.T) {
	c, n := encodeSample(t)
	it := c.Children(0)
	art, _ := it.Next()
	sub := c.SubtreeBytes(art)
	// Decoding the extracted slice must reproduce the article subtree.
	back, used, err := DecodeBinary(sub, c.Dict)
	if err != nil || used != len(sub) {
		t.Fatalf("decode: used=%d len=%d err=%v", used, len(sub), err)
	}
	if !back.Equal(n.Children[0]) {
		t.Errorf("subtree %v != %v", back, n.Children[0])
	}
}

func TestCursorDepth(t *testing.T) {
	c, n := encodeSample(t)
	if got, want := c.Depth(0), n.Depth(); got != want {
		t.Errorf("cursor depth = %d, want %d", got, want)
	}
}

func TestCursorDecode(t *testing.T) {
	c, n := encodeSample(t)
	back, err := c.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(n) {
		t.Errorf("Decode = %v, want %v", back, n)
	}
}

func TestCorruptBuffer(t *testing.T) {
	dict := NewDict()
	// A header promising more body bytes than the buffer holds.
	c := Cursor{Buf: []byte{4, 200}, Dict: dict}
	if _, err := c.Decode(0); err == nil {
		t.Error("decoding corrupt buffer succeeded")
	}
	if c.LabelID(0) != 0 {
		t.Error("LabelID on corrupt buffer should be 0")
	}
}

func TestCursorStreamMatchesTreeStream(t *testing.T) {
	f := func(seed uint64) bool {
		n := genTree(seed, 5)
		dict := NewDict()
		buf := EncodeBinary(n, dict)
		c := Cursor{Buf: buf, Dict: dict}
		evA, err := Collect(NewTreeStream(n, 0))
		if err != nil {
			return false
		}
		evB, err := Collect(NewCursorStream(c, 0, 0))
		if err != nil {
			return false
		}
		if len(evA) != len(evB) {
			return false
		}
		for i := range evA {
			// Pointers differ by construction (ordinals vs offsets);
			// kinds, labels and values must agree.
			if evA[i].Kind != evB[i].Kind || evA[i].Label != evB[i].Label || evA[i].Value != evB[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCursorStreamPointers(t *testing.T) {
	c, _ := encodeSample(t)
	const base = 1 << 40
	evs, err := Collect(NewCursorStream(c, 0, base))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		off := ev.Ptr - base
		if ev.Ptr < base || int(off) >= len(c.Buf) {
			t.Fatalf("event pointer %d out of range", ev.Ptr)
		}
		if ev.Kind == Open && c.Label(Ref(off)) != ev.Label {
			t.Errorf("pointer %d resolves to %q, event says %q", off, c.Label(Ref(off)), ev.Label)
		}
	}
}
