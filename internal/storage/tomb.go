package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// tombMagic identifies the tombstone sidecar that persists the deleted-
// record set across restarts. The heap itself is append-only, so the
// sidecar is the only durable trace of a committed delete once the
// ingest log has been truncated.
const tombMagic = "FIXTOMB1"

// tombCRC is the CRC-32C (Castagnoli) table shared with the index
// journal and the ingest log.
var tombCRC = crc32.MakeTable(crc32.Castagnoli)

// EncodeTombstones serializes a deleted-record set:
//
//	magic (8) | count (u32) | rec (u32) × count | CRC-32C (u32)
//
// The CRC covers magic through the last record, so a torn sidecar write
// is detected on load rather than silently reviving deleted documents.
func EncodeTombstones(recs []uint32) []byte {
	buf := make([]byte, 0, len(tombMagic)+4+4*len(recs)+4)
	buf = append(buf, tombMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(recs)))
	for _, r := range recs {
		buf = binary.BigEndian.AppendUint32(buf, r)
	}
	sum := crc32.Checksum(buf, tombCRC)
	return binary.BigEndian.AppendUint32(buf, sum)
}

// DecodeTombstones parses a sidecar produced by EncodeTombstones,
// validating magic, length, and checksum.
func DecodeTombstones(b []byte) ([]uint32, error) {
	if len(b) < len(tombMagic)+8 {
		return nil, fmt.Errorf("storage: tombstone sidecar too short (%d bytes)", len(b))
	}
	if string(b[:len(tombMagic)]) != tombMagic {
		return nil, fmt.Errorf("storage: tombstone sidecar bad magic %q", b[:len(tombMagic)])
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, tombCRC) != binary.BigEndian.Uint32(tail) {
		return nil, fmt.Errorf("storage: tombstone sidecar checksum mismatch")
	}
	count := binary.BigEndian.Uint32(b[len(tombMagic):])
	want := len(tombMagic) + 4 + 4*int(count) + 4
	if len(b) != want {
		return nil, fmt.Errorf("storage: tombstone sidecar length %d, want %d for %d records", len(b), want, count)
	}
	recs := make([]uint32, count)
	for i := range recs {
		recs[i] = binary.BigEndian.Uint32(b[len(tombMagic)+4+4*i:])
	}
	return recs, nil
}
