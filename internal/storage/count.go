package storage

import "github.com/fix-index/fix/internal/xmltree"

// CountElements walks every record and returns the total number of
// element nodes (text nodes excluded). It is a convenience for dataset
// statistics; the walk does not disturb the read cache position counters
// beyond normal record reads.
func (s *Store) CountElements() (int, error) {
	total := 0
	for rec := 0; rec < s.NumRecords(); rec++ {
		cur, err := s.Cursor(uint32(rec))
		if err != nil {
			return 0, err
		}
		var walk func(r xmltree.Ref) int
		walk = func(r xmltree.Ref) int {
			if cur.IsText(r) {
				return 0
			}
			n := 1
			it := cur.Children(r)
			for {
				c, ok := it.Next()
				if !ok {
					break
				}
				n += walk(c)
			}
			return n
		}
		total += walk(0)
	}
	return total, nil
}
