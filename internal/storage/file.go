// Package storage implements the primary XML data storage used by FIX: an
// append-only record heap holding binary-encoded document trees, addressed
// by stable pointers (record, offset) that index entries carry as their
// payload. It also provides the File abstraction shared with the B-tree
// pager, with both OS-file and in-memory implementations, and I/O
// accounting that distinguishes sequential from random reads so the
// experiments can report implementation-independent costs for clustered
// versus unclustered indexes (paper §4.1).
package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the minimal random-access file interface needed by the storage
// heap, the B-tree pager, and the ingest write-ahead log. Truncate
// discards everything past the given size; the ingest log uses it to
// drop a torn tail on recovery and to roll back a failed batch.
type File interface {
	io.ReaderAt
	io.WriterAt
	Size() (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// osFile adapts *os.File to the File interface.
type osFile struct {
	*os.File
}

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Create opens (creating or truncating) the named file for read/write.
func Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open opens an existing file for read/write.
func Open(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// MemFile is an in-memory File, used by tests and by short-lived scratch
// stores. The zero value is an empty file ready to use.
type MemFile struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemFile returns an empty in-memory file.
func NewMemFile() *MemFile { return &MemFile{} }

func (f *MemFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	if off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *MemFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	end := off + int64(len(p))
	if end > int64(len(f.buf)) {
		if end <= int64(cap(f.buf)) {
			f.buf = f.buf[:end]
		} else {
			// Amortized doubling so append-heavy writers (the record
			// heap, the B-tree) stay linear.
			newCap := 2 * cap(f.buf)
			if int64(newCap) < end {
				newCap = int(end)
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.buf)
			f.buf = grown
		}
	}
	copy(f.buf[off:], p)
	return len(p), nil
}

func (f *MemFile) Size() (int64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.buf)), nil
}

// Truncate discards all bytes at or past size. Growing the file (size
// beyond the current length) extends it with zeros, matching os.File.
func (f *MemFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("storage: negative truncate size %d", size)
	}
	if size <= int64(len(f.buf)) {
		f.buf = f.buf[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, f.buf)
	f.buf = grown
	return nil
}

func (f *MemFile) Sync() error  { return nil }
func (f *MemFile) Close() error { return nil }
