package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"github.com/fix-index/fix/internal/xmltree"
)

// Pointer addresses a node inside the primary storage: the high 32 bits
// select a record (document), the low 32 bits are the byte offset of the
// node's binary encoding inside that record. Pointers are what the FIX
// B-tree stores as values for the unclustered index.
type Pointer uint64

// MakePointer packs a record number and an in-record offset.
func MakePointer(rec, off uint32) Pointer {
	return Pointer(uint64(rec)<<32 | uint64(off))
}

// Rec returns the record number.
func (p Pointer) Rec() uint32 { return uint32(p >> 32) }

// Off returns the byte offset inside the record.
func (p Pointer) Off() uint32 { return uint32(p) }

func (p Pointer) String() string {
	return fmt.Sprintf("ptr(%d:%d)", p.Rec(), p.Off())
}

// Stats accumulates I/O accounting for a Store. Sequential reads are reads
// that start exactly where the previous read ended; everything else is
// counted as a random read. Cached reads touch no I/O and are counted
// separately.
type Stats struct {
	RecordsWritten int64
	BytesWritten   int64
	RandomReads    int64
	SeqReads       int64
	CachedReads    int64
	BytesRead      int64
	// SubtreeReads/SubtreeBytes count pointer dereferences through
	// ReadSubtree: the I/O a deployment would pay to fetch just the
	// pointed-to subtree (one seek plus its bytes), independent of the
	// record-level caching this implementation uses physically. The
	// unclustered-index refinement cost model is built on these.
	SubtreeReads int64
	SubtreeBytes int64
}

// Sub returns the field-wise difference s - o, the I/O that happened
// between two snapshots. The query trace uses it to attribute the
// fetch/refinement I/O of one query.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		RecordsWritten: s.RecordsWritten - o.RecordsWritten,
		BytesWritten:   s.BytesWritten - o.BytesWritten,
		RandomReads:    s.RandomReads - o.RandomReads,
		SeqReads:       s.SeqReads - o.SeqReads,
		CachedReads:    s.CachedReads - o.CachedReads,
		BytesRead:      s.BytesRead - o.BytesRead,
		SubtreeReads:   s.SubtreeReads - o.SubtreeReads,
		SubtreeBytes:   s.SubtreeBytes - o.SubtreeBytes,
	}
}

const storeMagic = "FIXSTOR1"

// Store is an append-only heap of records, each holding one binary-encoded
// XML document (or subtree, in the clustered-copy case). Records are
// length-prefixed; the offset table is kept in memory and rebuilt by
// scanning on open.
//
// A Store is safe for concurrent readers; appends must not race with other
// operations.
type Store struct {
	mu      sync.Mutex
	f       File
	dict    *xmltree.Dict
	offs    []int64 // offset of each record's length prefix
	lens    []uint32
	end     int64 // next append position
	lastEnd int64 // end offset of the last physical read, for seq/random
	stats   Stats
	rs      readStats // shared with every ReadView frozen from this store

	// deleted marks records removed by DeleteDocument. The heap is
	// append-only, so deletion is a tombstone: the bytes stay on disk
	// but every scan and refinement path skips the record. The set is
	// persisted in a sidecar file by the fix layer and restored from
	// the ingest log on recovery.
	deleted map[uint32]bool

	cacheRec uint32
	cacheBuf []byte
	hasCache bool
}

// NewStore initializes an empty store over f, writing the header. The
// dictionary is shared with whoever encodes the trees.
func NewStore(f File, dict *xmltree.Dict) (*Store, error) {
	if _, err := f.WriteAt([]byte(storeMagic), 0); err != nil {
		return nil, fmt.Errorf("storage: writing header: %w", err)
	}
	return &Store{f: f, dict: dict, end: int64(len(storeMagic))}, nil
}

// OpenStore opens an existing store, rebuilding the record offset table.
func OpenStore(f File, dict *xmltree.Dict) (*Store, error) {
	hdr := make([]byte, len(storeMagic))
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("storage: reading header: %w", err)
	}
	if string(hdr) != storeMagic {
		return nil, fmt.Errorf("storage: bad magic %q", hdr)
	}
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, dict: dict}
	pos := int64(len(storeMagic))
	var lenBuf [4]byte
	for pos < size {
		if _, err := f.ReadAt(lenBuf[:], pos); err != nil {
			return nil, fmt.Errorf("storage: scanning record at %d: %w", pos, err)
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		s.offs = append(s.offs, pos)
		s.lens = append(s.lens, n)
		pos += 4 + int64(n)
	}
	s.end = pos
	return s, nil
}

// Dict returns the label dictionary used to encode records.
func (s *Store) Dict() *xmltree.Dict { return s.dict }

// NumRecords returns the number of records in the store.
func (s *Store) NumRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.offs)
}

// Size returns the total byte size of the store.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// Stats returns a snapshot of the I/O counters: the store's own, merged
// with the counters of every ReadView frozen from it, so a caller
// differencing Stats around a query sees the same deltas whether the
// query read through the store or a frozen view.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	rs := s.rs.load()
	st.SeqReads += rs.SeqReads
	st.RandomReads += rs.RandomReads
	st.CachedReads += rs.CachedReads
	st.BytesRead += rs.BytesRead
	st.SubtreeReads += rs.SubtreeReads
	st.SubtreeBytes += rs.SubtreeBytes
	return st
}

// ResetStats zeroes the I/O counters (store and view side), so an
// experiment can measure a single query in isolation.
func (s *Store) ResetStats() {
	s.mu.Lock()
	s.stats = Stats{}
	s.lastEnd = -1
	s.mu.Unlock()
	s.rs.reset()
}

// AppendTree encodes and appends a document tree, returning its record
// number.
func (s *Store) AppendTree(n *xmltree.Node) (uint32, error) {
	return s.AppendBytes(xmltree.EncodeBinary(n, s.dict))
}

// AppendBytes appends a pre-encoded record.
func (s *Store) AppendBytes(b []byte) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
	if _, err := s.f.WriteAt(lenBuf[:], s.end); err != nil {
		return 0, fmt.Errorf("storage: append: %w", err)
	}
	if _, err := s.f.WriteAt(b, s.end+4); err != nil {
		return 0, fmt.Errorf("storage: append: %w", err)
	}
	rec := uint32(len(s.offs))
	s.offs = append(s.offs, s.end)
	s.lens = append(s.lens, uint32(len(b)))
	s.end += 4 + int64(len(b))
	s.stats.RecordsWritten++
	s.stats.BytesWritten += int64(len(b)) + 4
	return rec, nil
}

// Record returns the raw bytes of a record, with I/O accounting. The most
// recently read record is cached so that repeated probes of the same
// document during refinement don't multiply counted I/O.
func (s *Store) Record(rec uint32) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recordLocked(rec)
}

func (s *Store) recordLocked(rec uint32) ([]byte, error) {
	if int(rec) >= len(s.offs) {
		return nil, fmt.Errorf("storage: record %d out of range (have %d)", rec, len(s.offs))
	}
	if s.hasCache && s.cacheRec == rec {
		s.stats.CachedReads++
		return s.cacheBuf, nil
	}
	off := s.offs[rec] + 4
	n := s.lens[rec]
	buf := make([]byte, n)
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("storage: reading record %d: %w", rec, err)
	}
	if s.offs[rec] == s.lastEnd {
		s.stats.SeqReads++
	} else {
		s.stats.RandomReads++
	}
	s.lastEnd = off + int64(n)
	s.stats.BytesRead += int64(n)
	s.cacheRec, s.cacheBuf, s.hasCache = rec, buf, true
	return buf, nil
}

// Cursor returns a navigation cursor over the given record.
func (s *Store) Cursor(rec uint32) (xmltree.Cursor, error) {
	buf, err := s.Record(rec)
	if err != nil {
		return xmltree.Cursor{}, err
	}
	return xmltree.Cursor{Buf: buf, Dict: s.dict}, nil
}

// ReadSubtree resolves a pointer to a cursor positioned at the pointed-to
// node.
func (s *Store) ReadSubtree(p Pointer) (xmltree.Cursor, xmltree.Ref, error) {
	cur, err := s.Cursor(p.Rec())
	if err != nil {
		return xmltree.Cursor{}, 0, err
	}
	if int(p.Off()) >= len(cur.Buf) {
		return xmltree.Cursor{}, 0, fmt.Errorf("storage: %v offset beyond record of %d bytes", p, len(cur.Buf))
	}
	ref := xmltree.Ref(p.Off())
	s.mu.Lock()
	s.stats.SubtreeReads++
	s.stats.SubtreeBytes += int64(cur.SubtreeEnd(ref) - ref)
	s.mu.Unlock()
	return cur, ref, nil
}

// MarkDeleted tombstones a record. It reports whether the record was
// live (a repeated delete of the same record returns false), and errors
// only when the record number is out of range.
func (s *Store) MarkDeleted(rec uint32) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(rec) >= len(s.offs) {
		return false, fmt.Errorf("storage: record %d out of range (have %d)", rec, len(s.offs))
	}
	if s.deleted[rec] {
		return false, nil
	}
	if s.deleted == nil {
		s.deleted = make(map[uint32]bool)
	}
	s.deleted[rec] = true
	return true, nil
}

// UnmarkDeleted removes a tombstone, reviving the record. Batch rollback
// uses it to undo the deletes of a failed ingest batch.
func (s *Store) UnmarkDeleted(rec uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.deleted, rec)
}

// IsDeleted reports whether a record carries a tombstone.
func (s *Store) IsDeleted(rec uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleted[rec]
}

// NumDeleted returns the number of tombstoned records.
func (s *Store) NumDeleted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.deleted)
}

// DeletedRecords returns the tombstoned record numbers in ascending
// order, for persistence.
func (s *Store) DeletedRecords() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]uint32, 0, len(s.deleted))
	for r := range s.deleted {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i] < recs[j] })
	return recs
}

// SetDeleted replaces the tombstone set wholesale, used when loading the
// persisted sidecar on open. Out-of-range records are rejected so a
// corrupt sidecar cannot poison the in-memory state.
func (s *Store) SetDeleted(recs []uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[uint32]bool, len(recs))
	for _, r := range recs {
		if int(r) >= len(s.offs) {
			return fmt.Errorf("storage: tombstone for record %d out of range (have %d)", r, len(s.offs))
		}
		m[r] = true
	}
	s.deleted = m
	return nil
}

// TruncateTo rolls the heap back to exactly nrecords records and byte
// size end, discarding later appends and any tombstones on discarded
// records. Ingest batch rollback uses it: a failed batch must leave the
// heap exactly as it was before the batch started.
func (s *Store) TruncateTo(nrecords int, end int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nrecords < 0 || nrecords > len(s.offs) {
		return fmt.Errorf("storage: truncate to %d records (have %d)", nrecords, len(s.offs))
	}
	if err := s.f.Truncate(end); err != nil {
		return fmt.Errorf("storage: truncating heap: %w", err)
	}
	s.offs = s.offs[:nrecords]
	s.lens = s.lens[:nrecords]
	s.end = end
	for r := range s.deleted {
		if int(r) >= nrecords {
			delete(s.deleted, r)
		}
	}
	s.hasCache = false
	s.cacheBuf = nil
	s.lastEnd = -1
	return nil
}

// Sync flushes the underlying file.
func (s *Store) Sync() error { return s.f.Sync() }

// Close closes the underlying file.
func (s *Store) Close() error { return s.f.Close() }

// ClearCache drops the one-record read cache, so a following query
// measures cold I/O.
func (s *Store) ClearCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hasCache = false
	s.cacheBuf = nil
	s.lastEnd = -1
}
