package storage

import (
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/fix-index/fix/internal/xmltree"
)

func TestPointerPacking(t *testing.T) {
	f := func(rec, off uint32) bool {
		p := MakePointer(rec, off)
		return p.Rec() == rec && p.Off() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemFileModel(t *testing.T) {
	// Compare MemFile against a growing byte-slice model under random
	// writes and reads.
	rng := rand.New(rand.NewSource(3))
	mf := NewMemFile()
	var model []byte
	for i := 0; i < 500; i++ {
		off := rng.Int63n(2000)
		data := make([]byte, rng.Intn(64))
		rng.Read(data)
		if _, err := mf.WriteAt(data, off); err != nil {
			t.Fatal(err)
		}
		end := off + int64(len(data))
		if end > int64(len(model)) {
			model = append(model, make([]byte, end-int64(len(model)))...)
		}
		copy(model[off:], data)
	}
	size, err := mf.Size()
	if err != nil || size != int64(len(model)) {
		t.Fatalf("size = %d, want %d (err=%v)", size, len(model), err)
	}
	got := make([]byte, len(model))
	if _, err := mf.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Error("MemFile content diverged from model")
	}
	// Reads past EOF.
	if n, err := mf.ReadAt(make([]byte, 10), size+5); n != 0 || err != io.EOF {
		t.Errorf("read past EOF: n=%d err=%v", n, err)
	}
	if _, err := mf.ReadAt(make([]byte, 1), -1); err == nil {
		t.Error("negative offset read should fail")
	}
	if _, err := mf.WriteAt([]byte{1}, -1); err == nil {
		t.Error("negative offset write should fail")
	}
}

func newStore(t *testing.T) *Store {
	t.Helper()
	st, err := NewStore(NewMemFile(), xmltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreAppendAndRead(t *testing.T) {
	st := newStore(t)
	docs := []*xmltree.Node{
		xmltree.Elem("a", xmltree.Elem("b")),
		xmltree.Elem("c", xmltree.Text("hello")),
		xmltree.Elem("d"),
	}
	for i, d := range docs {
		rec, err := st.AppendTree(d)
		if err != nil {
			t.Fatal(err)
		}
		if rec != uint32(i) {
			t.Errorf("record %d numbered %d", i, rec)
		}
	}
	if st.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d", st.NumRecords())
	}
	for i, d := range docs {
		cur, err := st.Cursor(uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		back, err := cur.Decode(0)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(d) {
			t.Errorf("record %d decoded %v, want %v", i, back, d)
		}
	}
	if _, err := st.Record(99); err == nil {
		t.Error("out-of-range record read should fail")
	}
}

func TestStoreReopen(t *testing.T) {
	dict := xmltree.NewDict()
	f := NewMemFile()
	st, err := NewStore(f, dict)
	if err != nil {
		t.Fatal(err)
	}
	want := xmltree.Elem("root", xmltree.Elem("x", xmltree.Text("v")))
	if _, err := st.AppendTree(want); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendTree(xmltree.Elem("second")); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(f, dict)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumRecords() != 2 {
		t.Fatalf("reopened NumRecords = %d", re.NumRecords())
	}
	cur, err := re.Cursor(0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := cur.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(want) {
		t.Errorf("reopened record = %v, want %v", back, want)
	}
	// Appending after reopen continues the sequence.
	rec, err := re.AppendTree(xmltree.Elem("third"))
	if err != nil || rec != 2 {
		t.Errorf("append after reopen: rec=%d err=%v", rec, err)
	}
}

func TestStoreOpenRejectsGarbage(t *testing.T) {
	f := NewMemFile()
	if _, err := f.WriteAt([]byte("NOTASTORE"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(f, xmltree.NewDict()); err == nil {
		t.Error("OpenStore on garbage succeeded")
	}
}

func TestStoreSequentialVsRandomAccounting(t *testing.T) {
	st := newStore(t)
	for i := 0; i < 5; i++ {
		if _, err := st.AppendTree(xmltree.Elem("doc", xmltree.Text("x"))); err != nil {
			t.Fatal(err)
		}
	}
	st.ResetStats()
	st.ClearCache()
	for i := 0; i < 5; i++ {
		if _, err := st.Record(uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats()
	if s.RandomReads != 1 || s.SeqReads != 4 {
		t.Errorf("in-order scan: random=%d seq=%d, want 1/4", s.RandomReads, s.SeqReads)
	}

	st.ResetStats()
	st.ClearCache()
	for _, rec := range []uint32{4, 0, 2} {
		if _, err := st.Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	s = st.Stats()
	if s.RandomReads != 3 || s.SeqReads != 0 {
		t.Errorf("out-of-order: random=%d seq=%d, want 3/0", s.RandomReads, s.SeqReads)
	}

	// Cached re-read.
	st.ResetStats()
	if _, err := st.Record(2); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Record(2); err != nil {
		t.Fatal(err)
	}
	s = st.Stats()
	if s.CachedReads != 2 {
		// First read hits the cache left by the previous loop.
		t.Errorf("cached reads = %d, want 2", s.CachedReads)
	}
}

func TestReadSubtreeAccounting(t *testing.T) {
	st := newStore(t)
	doc := xmltree.Elem("a", xmltree.Elem("b", xmltree.Elem("c")), xmltree.Elem("d"))
	rec, err := st.AppendTree(doc)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := st.Cursor(rec)
	if err != nil {
		t.Fatal(err)
	}
	it := cur.Children(0)
	bRef, _ := it.Next()
	st.ResetStats()
	cur2, ref, err := st.ReadSubtree(MakePointer(rec, uint32(bRef)))
	if err != nil {
		t.Fatal(err)
	}
	if cur2.Label(ref) != "b" {
		t.Errorf("subtree label = %q, want b", cur2.Label(ref))
	}
	s := st.Stats()
	if s.SubtreeReads != 1 || s.SubtreeBytes <= 0 {
		t.Errorf("subtree accounting = %+v", s)
	}
	if _, _, err := st.ReadSubtree(MakePointer(rec, 1<<20)); err == nil {
		t.Error("out-of-range subtree read should fail")
	}
}

func TestOSFileBackend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "heap")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	dict := xmltree.NewDict()
	st, err := NewStore(f, dict)
	if err != nil {
		t.Fatal(err)
	}
	want := xmltree.Elem("persisted", xmltree.Text("yes"))
	if _, err := st.AppendTree(want); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(f2, dict)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	cur, err := re.Cursor(0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := cur.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(want) {
		t.Errorf("persisted record = %v, want %v", back, want)
	}
}

func TestCountElements(t *testing.T) {
	st := newStore(t)
	if _, err := st.AppendTree(xmltree.Elem("a", xmltree.Elem("b"), xmltree.Text("t"))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendTree(xmltree.Elem("c")); err != nil {
		t.Fatal(err)
	}
	n, err := st.CountElements()
	if err != nil || n != 3 {
		t.Errorf("CountElements = %d, %v; want 3", n, err)
	}
}
