package storage

import (
	"fmt"
	"sync/atomic"

	"github.com/fix-index/fix/internal/xmltree"
)

// readStats counts the I/O of lock-free ReadViews. The fields are atomic
// because views are read concurrently without the store mutex; one
// instance is shared by a Store and every view frozen from it, so the
// Store's merged Stats stay cumulative across generations. lastEnd
// carries the seq/random classification across reads — exact for a
// single reader, approximate when readers interleave (the counters still
// sum correctly; only the seq/random split blurs).
type readStats struct {
	seqReads     atomic.Int64
	randomReads  atomic.Int64
	cachedReads  atomic.Int64
	bytesRead    atomic.Int64
	subtreeReads atomic.Int64
	subtreeBytes atomic.Int64
	lastEnd      atomic.Int64
}

// load returns the counters as a Stats snapshot.
func (rs *readStats) load() Stats {
	return Stats{
		SeqReads:     rs.seqReads.Load(),
		RandomReads:  rs.randomReads.Load(),
		CachedReads:  rs.cachedReads.Load(),
		BytesRead:    rs.bytesRead.Load(),
		SubtreeReads: rs.subtreeReads.Load(),
		SubtreeBytes: rs.subtreeBytes.Load(),
	}
}

func (rs *readStats) reset() {
	rs.seqReads.Store(0)
	rs.randomReads.Store(0)
	rs.cachedReads.Store(0)
	rs.bytesRead.Store(0)
	rs.subtreeReads.Store(0)
	rs.subtreeBytes.Store(0)
	rs.lastEnd.Store(-1)
}

// ReadView is an immutable snapshot of a Store's record table: a fixed
// record count over the append-only heap file. Reads take no lock — the
// heap is append-only and rollback only ever truncates records newer
// than any published view, so the bytes under a view's records never
// change. The one-record cache mirrors Store's (refinement probes the
// same document repeatedly, especially on single-document datasets) but
// is an atomic pointer to an immutable pair instead of mutex-guarded
// state: a racing fill just loses the publication, never corrupts it.
type ReadView struct {
	f    File
	dict *xmltree.Dict
	offs []int64  // immutable after publish
	lens []uint32 // immutable after publish
	rs   *readStats
	last atomic.Pointer[viewCached]
}

// viewCached is one published (record, bytes) cache entry. Both fields
// are immutable after publish; replacing the entry swaps the pointer.
type viewCached struct {
	rec uint32
	buf []byte
}

// Freeze returns an immutable view of the store's current records,
// sharing the offset table's backing array (safe: the table is
// append-only below any published length — see TruncateTo).
func (s *Store) Freeze() *ReadView {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.offs)
	return &ReadView{
		f:    s.f,
		dict: s.dict,
		offs: s.offs[:n:n],
		lens: s.lens[:n:n],
		rs:   &s.rs,
	}
}

// Dict returns the label dictionary used to encode records.
func (v *ReadView) Dict() *xmltree.Dict { return v.dict }

// NumRecords returns the number of records at freeze time.
func (v *ReadView) NumRecords() int { return len(v.offs) }

// Stats returns the cumulative ReadView counters of the owning store.
// It is lock-free; the query trace differences it around the
// fetch/refinement phases.
func (v *ReadView) Stats() Stats { return v.rs.load() }

// Record returns the raw bytes of a record, with I/O accounting. The
// returned buffer is shared (with the cache and other callers) and must
// not be modified.
func (v *ReadView) Record(rec uint32) ([]byte, error) {
	if int(rec) >= len(v.offs) {
		return nil, fmt.Errorf("storage: record %d out of range (view has %d)", rec, len(v.offs))
	}
	if c := v.last.Load(); c != nil && c.rec == rec {
		v.rs.cachedReads.Add(1)
		return c.buf, nil
	}
	off := v.offs[rec] + 4
	n := v.lens[rec]
	buf := make([]byte, n)
	if _, err := v.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("storage: reading record %d: %w", rec, err)
	}
	if v.rs.lastEnd.Swap(off+int64(n)) == v.offs[rec] {
		v.rs.seqReads.Add(1)
	} else {
		v.rs.randomReads.Add(1)
	}
	v.rs.bytesRead.Add(int64(n))
	v.last.Store(&viewCached{rec: rec, buf: buf})
	return buf, nil
}

// Cursor returns a navigation cursor over the given record.
func (v *ReadView) Cursor(rec uint32) (xmltree.Cursor, error) {
	buf, err := v.Record(rec)
	if err != nil {
		return xmltree.Cursor{}, err
	}
	return xmltree.Cursor{Buf: buf, Dict: v.dict}, nil
}

// ReadSubtree resolves a pointer to a cursor positioned at the
// pointed-to node, mirroring Store.ReadSubtree's cost accounting.
func (v *ReadView) ReadSubtree(p Pointer) (xmltree.Cursor, xmltree.Ref, error) {
	cur, err := v.Cursor(p.Rec())
	if err != nil {
		return xmltree.Cursor{}, 0, err
	}
	if int(p.Off()) >= len(cur.Buf) {
		return xmltree.Cursor{}, 0, fmt.Errorf("storage: %v offset beyond record of %d bytes", p, len(cur.Buf))
	}
	ref := xmltree.Ref(p.Off())
	v.rs.subtreeReads.Add(1)
	v.rs.subtreeBytes.Add(int64(cur.SubtreeEnd(ref) - ref))
	return cur, ref, nil
}

// TombSet is an immutable snapshot of a store's tombstones. The nil
// TombSet is valid and empty.
type TombSet struct {
	m map[uint32]bool // immutable after publish
}

// TombSnapshot returns an immutable copy of the current tombstone set.
func (s *Store) TombSnapshot() *TombSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.deleted) == 0 {
		return &TombSet{}
	}
	m := make(map[uint32]bool, len(s.deleted))
	for r := range s.deleted {
		m[r] = true
	}
	return &TombSet{m: m}
}

// Has reports whether the record carried a tombstone at snapshot time.
func (t *TombSet) Has(rec uint32) bool { return t != nil && t.m[rec] }

// Len returns the number of tombstoned records in the snapshot.
func (t *TombSet) Len() int {
	if t == nil {
		return 0
	}
	return len(t.m)
}
