package storage

import (
	"bytes"
	"testing"

	"github.com/fix-index/fix/internal/xmltree"
)

// TestReadViewSnapshotIsolation freezes a view and keeps appending to
// the live store: the view's record set must not grow, and its records
// must read back byte-identical.
func TestReadViewSnapshotIsolation(t *testing.T) {
	st, err := NewStore(NewMemFile(), xmltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		b := bytes.Repeat([]byte{byte('a' + i)}, 20+i)
		if _, err := st.AppendBytes(b); err != nil {
			t.Fatal(err)
		}
		want = append(want, b)
	}
	v := st.Freeze()
	if v.NumRecords() != len(want) {
		t.Fatalf("view NumRecords = %d, want %d", v.NumRecords(), len(want))
	}
	// Keep appending: invisible to the frozen view.
	for i := 0; i < 5; i++ {
		if _, err := st.AppendBytes([]byte("later")); err != nil {
			t.Fatal(err)
		}
	}
	if v.NumRecords() != len(want) {
		t.Errorf("view grew to %d records after appends", v.NumRecords())
	}
	for rec, b := range want {
		got, err := v.Record(uint32(rec))
		if err != nil || !bytes.Equal(got, b) {
			t.Fatalf("view Record(%d) = %q, %v; want %q", rec, got, err, b)
		}
	}
	if _, err := v.Record(uint32(len(want))); err == nil {
		t.Error("view served a record appended after the freeze")
	}
	if st.NumRecords() != len(want)+5 {
		t.Errorf("live store NumRecords = %d, want %d", st.NumRecords(), len(want)+5)
	}
}

// TestReadViewStatsMerge checks view I/O lands in the owning store's
// cumulative Stats.
func TestReadViewStatsMerge(t *testing.T) {
	st, err := NewStore(NewMemFile(), xmltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := st.AppendTree(xmltree.Elem("doc", xmltree.Text("x"))); err != nil {
			t.Fatal(err)
		}
	}
	v := st.Freeze()
	before := st.Stats()
	// Sequential walk: record 0 then 1 extends the last read position.
	if _, err := v.Record(0); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Record(1); err != nil {
		t.Fatal(err)
	}
	after := st.Stats()
	if after.BytesRead <= before.BytesRead {
		t.Error("view reads not merged into Store.Stats bytes_read")
	}
	if after.SeqReads+after.RandomReads <= before.SeqReads+before.RandomReads {
		t.Error("view reads not classified into seq/random counters")
	}
}

// TestTombSnapshotIsolation freezes the tombstone set and deletes more
// records afterwards: the snapshot must not change.
func TestTombSnapshotIsolation(t *testing.T) {
	st, err := NewStore(NewMemFile(), xmltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := st.AppendTree(xmltree.Elem("doc")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.MarkDeleted(1); err != nil {
		t.Fatal(err)
	}
	ts := st.TombSnapshot()
	if !ts.Has(1) || ts.Has(2) || ts.Len() != 1 {
		t.Fatalf("snapshot = {has1:%v has2:%v len:%d}, want {true false 1}", ts.Has(1), ts.Has(2), ts.Len())
	}
	if _, err := st.MarkDeleted(2); err != nil {
		t.Fatal(err)
	}
	if ts.Has(2) || ts.Len() != 1 {
		t.Error("tombstone snapshot changed after a later delete")
	}
	// A nil snapshot (no deletes ever) is safe to query.
	var nilSet *TombSet
	if nilSet.Has(0) || nilSet.Len() != 0 {
		t.Error("nil TombSet misbehaves")
	}
}
