package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultPlanFailsNthWrite(t *testing.T) {
	pl := &FaultPlan{FailWrite: 3}
	f := pl.Wrap(NewMemFile())
	buf := []byte("payload!")
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(buf, 8); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd write op: got %v, want ErrInjected", err)
	}
	if !pl.Tripped() {
		t.Error("plan did not report tripping")
	}
	// A crashed process persists nothing further: later ops keep failing.
	if _, err := f.WriteAt(buf, 16); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip write: got %v, want ErrInjected", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip sync: got %v, want ErrInjected", err)
	}
	if got := pl.Writes(); got != 3 {
		t.Errorf("Writes() = %d, want 3 (post-trip ops are not counted)", got)
	}
	// Reads keep working so aborting code paths can finish.
	out := make([]byte, len(buf))
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("read after trip: %v", err)
	}
	if !bytes.Equal(out, buf) {
		t.Errorf("read back %q, want %q", out, buf)
	}
}

func TestFaultPlanOneShot(t *testing.T) {
	pl := &FaultPlan{FailWrite: 2, OneShot: true}
	f := pl.Wrap(NewMemFile())
	if _, err := f.WriteAt([]byte("aa"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("bb"), 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd write: got %v, want ErrInjected", err)
	}
	if _, err := f.WriteAt([]byte("bb"), 2); err != nil {
		t.Fatalf("retry after one-shot fault: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after one-shot fault: %v", err)
	}
}

func TestFaultPlanTornWrite(t *testing.T) {
	pl := &FaultPlan{FailWrite: 1, Torn: true}
	mem := NewMemFile()
	f := pl.Wrap(mem)
	page := bytes.Repeat([]byte{0xAB}, 64)
	if _, err := f.WriteAt(page, 0); !errors.Is(err, ErrInjected) {
		t.Fatal("torn write did not fail")
	}
	sz, err := mem.Size()
	if err != nil {
		t.Fatal(err)
	}
	if sz != 32 {
		t.Fatalf("torn write persisted %d bytes, want the first half (32)", sz)
	}
	got := make([]byte, 32)
	if _, err := mem.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page[:32]) {
		t.Error("persisted prefix differs from the buffer's first half")
	}
}

func TestFaultPlanSharedAcrossFiles(t *testing.T) {
	pl := &FaultPlan{FailWrite: 2}
	a := pl.Wrap(NewMemFile())
	b := pl.Wrap(NewMemFile())
	if _, err := a.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteAt([]byte("y"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("counter not shared across files: %v", err)
	}
}

func TestFaultPlanFailsNthRead(t *testing.T) {
	pl := &FaultPlan{FailRead: 2}
	f := pl.Wrap(NewMemFile())
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4)
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(out, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd read: got %v, want ErrInjected", err)
	}
	if _, err := f.ReadAt(out, 0); err != nil {
		t.Fatalf("read faults are one-shot by design: %v", err)
	}
}
