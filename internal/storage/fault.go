package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the error a FaultFile returns at its scheduled fault
// point. Tests assert on it with errors.Is to distinguish injected crash
// points from real I/O failures.
var ErrInjected = errors.New("storage: injected fault")

// FaultPlan deterministically schedules faults across every FaultFile
// created from it with Wrap. Write operations (WriteAt and Sync — the
// durability-relevant crash points) share one counter across all wrapped
// files, so "fail the Nth write" simulates a crash at the Nth step of a
// multi-file commit protocol; reads have their own counter.
//
// Unless OneShot is set, every write operation after the failing one also
// fails: a crashed process persists nothing further, so recovery code
// must cope with the prefix of writes alone. Reads keep working either
// way, letting the aborting code path run to completion.
type FaultPlan struct {
	FailWrite int  // fail the Nth write op (1-based); 0 = never
	FailRead  int  // fail the Nth read op (1-based); 0 = never
	Torn      bool // the failing WriteAt persists the first half of its buffer
	OneShot   bool // only the Nth op fails; later ops succeed (transient fault)

	mu      sync.Mutex
	writes  int
	reads   int
	tripped bool
}

// Wrap returns a File that applies the plan's schedule around f.
func (pl *FaultPlan) Wrap(f File) File { return &FaultFile{inner: f, plan: pl} }

// Writes returns how many write operations the plan has observed; a dry
// run with no faults scheduled uses it to size a crash-point sweep.
func (pl *FaultPlan) Writes() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.writes
}

// Tripped reports whether the scheduled fault has fired.
func (pl *FaultPlan) Tripped() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.tripped
}

// nextWrite advances the write counter and reports (torn, fail) for this
// operation.
func (pl *FaultPlan) nextWrite() (bool, bool) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.tripped && !pl.OneShot {
		return false, true
	}
	pl.writes++
	if pl.FailWrite > 0 && pl.writes == pl.FailWrite {
		pl.tripped = true
		return pl.Torn, true
	}
	return false, false
}

func (pl *FaultPlan) nextRead() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.reads++
	return pl.FailRead > 0 && pl.reads == pl.FailRead
}

// FaultFile wraps a File and injects the faults its FaultPlan schedules.
// It implements File, so it can stand in for any index or heap file.
type FaultFile struct {
	inner File
	plan  *FaultPlan
}

func (f *FaultFile) ReadAt(p []byte, off int64) (int, error) {
	if f.plan.nextRead() {
		return 0, fmt.Errorf("read of %d bytes at %d: %w", len(p), off, ErrInjected)
	}
	return f.inner.ReadAt(p, off)
}

func (f *FaultFile) WriteAt(p []byte, off int64) (int, error) {
	torn, fail := f.plan.nextWrite()
	if fail {
		if torn && len(p) > 1 {
			// A torn write: half the buffer reaches the disk before the
			// crash, leaving a page whose checksum cannot match.
			n, _ := f.inner.WriteAt(p[:len(p)/2], off)
			return n, fmt.Errorf("torn write of %d bytes at %d: %w", len(p), off, ErrInjected)
		}
		return 0, fmt.Errorf("write of %d bytes at %d: %w", len(p), off, ErrInjected)
	}
	return f.inner.WriteAt(p, off)
}

func (f *FaultFile) Sync() error {
	if _, fail := f.plan.nextWrite(); fail {
		return fmt.Errorf("sync: %w", ErrInjected)
	}
	return f.inner.Sync()
}

// Truncate counts as a write operation: log resets and rollback
// truncations are durability-relevant crash points just like appends.
func (f *FaultFile) Truncate(size int64) error {
	if _, fail := f.plan.nextWrite(); fail {
		return fmt.Errorf("truncate to %d: %w", size, ErrInjected)
	}
	return f.inner.Truncate(size)
}

func (f *FaultFile) Size() (int64, error) { return f.inner.Size() }
func (f *FaultFile) Close() error         { return f.inner.Close() }
