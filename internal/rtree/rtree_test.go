package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxIntersects(t *testing.T) {
	a := Box{Min: [Dims]float64{0, 0, 0}, Max: [Dims]float64{2, 2, 2}}
	b := Box{Min: [Dims]float64{1, 1, 1}, Max: [Dims]float64{3, 3, 3}}
	c := Box{Min: [Dims]float64{5, 5, 5}, Max: [Dims]float64{6, 6, 6}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping boxes reported disjoint")
	}
	if a.Intersects(c) {
		t.Error("disjoint boxes reported overlapping")
	}
	// Touching edges intersect.
	d := Box{Min: [Dims]float64{2, 0, 0}, Max: [Dims]float64{4, 2, 2}}
	if !a.Intersects(d) {
		t.Error("touching boxes reported disjoint")
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Insert(Entry{Box: Point([Dims]float64{float64(i), float64(i), 0}), Data: uint64(i)})
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []uint64
	tr.Search(Box{Min: [Dims]float64{2, 2, -1}, Max: [Dims]float64{5, 5, 1}}, func(e Entry) bool {
		got = append(got, e.Data)
		return true
	})
	if len(got) != 4 {
		t.Errorf("search hit %v, want 4 points (2..5)", got)
	}
}

func TestRandomAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := New()
	var all []Entry
	for i := 0; i < 3000; i++ {
		e := Entry{
			Box: Point([Dims]float64{
				float64(rng.Intn(50)),
				rng.Float64() * 100,
				-rng.Float64() * 100,
			}),
			Data: uint64(i),
		}
		tr.Insert(e)
		all = append(all, e)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		q := Box{
			Min: [Dims]float64{float64(rng.Intn(50)), rng.Float64() * 80, -100},
			Max: [Dims]float64{float64(rng.Intn(50)) + 5, 100, -rng.Float64() * 80},
		}
		want := make(map[uint64]bool)
		for _, e := range all {
			if q.Intersects(e.Box) {
				want[e.Data] = true
			}
		}
		got := make(map[uint64]bool)
		tr.Search(q, func(e Entry) bool {
			if got[e.Data] {
				t.Fatal("duplicate result")
			}
			got[e.Data] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for d := range want {
			if !got[d] {
				t.Fatalf("trial %d: missing %d", trial, d)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(Entry{Box: Point([Dims]float64{0, 0, 0}), Data: uint64(i)})
	}
	n := 0
	tr.Search(Box{Min: [Dims]float64{-1, -1, -1}, Max: [Dims]float64{1, 1, 1}}, func(e Entry) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestInfiniteCoordinates(t *testing.T) {
	// The FIX oversize entries use ±Inf; they must be retrievable by any
	// containment query.
	tr := New()
	tr.Insert(Entry{Box: Point([Dims]float64{3, math.Inf(1), math.Inf(-1)}), Data: 42})
	for i := 0; i < 200; i++ {
		tr.Insert(Entry{Box: Point([Dims]float64{3, float64(i % 17), -float64(i % 13)}), Data: uint64(i)})
	}
	found := false
	tr.Search(Box{
		Min: [Dims]float64{3, 1000, math.Inf(-1)},
		Max: [Dims]float64{3, math.Inf(1), -999},
	}, func(e Entry) bool {
		if e.Data == 42 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("oversize point not found by dominance query")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		n := 50 + rng.Intn(500)
		for i := 0; i < n; i++ {
			tr.Insert(Entry{Box: Point([Dims]float64{
				float64(rng.Intn(10)), rng.NormFloat64() * 10, rng.NormFloat64() * 10,
			})})
		}
		return tr.Validate() == nil && tr.Len() == n && tr.Depth() >= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsCounter(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Insert(Entry{Box: Point([Dims]float64{float64(i), float64(i), 0})})
	}
	tr.ResetStats()
	tr.Search(Point([Dims]float64{250, 250, 0}), func(Entry) bool { return true })
	if tr.NodesVisited() == 0 {
		t.Error("search visited no nodes")
	}
	// A point query should touch far fewer nodes than the tree holds.
	if tr.NodesVisited() > int64(tr.Len()/4) {
		t.Errorf("point query visited %d nodes out of %d entries", tr.NodesVisited(), tr.Len())
	}
}
