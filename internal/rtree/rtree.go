// Package rtree implements a Guttman R-tree over three-dimensional boxes,
// the "R-tree or other high-dimensional indexing trees" the paper's
// conclusion (§8) proposes as the next home for FIX feature vectors. FIX
// stores every entry as the point (root label, λmax, λmin); the
// containment search "label = l ∧ λmax ≥ q ∧ λmin ≤ q'" becomes a single
// box query, which an R-tree answers without scanning the whole λmax tail
// the B-tree range scan has to walk.
package rtree

import (
	"fmt"
	"math"
)

// Dims is the dimensionality of the tree.
const Dims = 3

// Box is an axis-aligned box; a point has Min == Max.
type Box struct {
	Min, Max [Dims]float64
}

// Point returns a degenerate box.
func Point(coords [Dims]float64) Box {
	return Box{Min: coords, Max: coords}
}

// Intersects reports whether two boxes overlap.
func (b Box) Intersects(o Box) bool {
	for d := 0; d < Dims; d++ {
		if b.Max[d] < o.Min[d] || o.Max[d] < b.Min[d] {
			return false
		}
	}
	return true
}

// contains reports whether b fully contains o.
func (b Box) contains(o Box) bool {
	for d := 0; d < Dims; d++ {
		if o.Min[d] < b.Min[d] || o.Max[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// extend grows b to cover o.
func (b *Box) extend(o Box) {
	for d := 0; d < Dims; d++ {
		if o.Min[d] < b.Min[d] {
			b.Min[d] = o.Min[d]
		}
		if o.Max[d] > b.Max[d] {
			b.Max[d] = o.Max[d]
		}
	}
}

// volume returns the (clamped) volume of the box. Infinite extents are
// clamped so enlargement comparisons stay finite.
func (b Box) volume() float64 {
	v := 1.0
	for d := 0; d < Dims; d++ {
		side := b.Max[d] - b.Min[d]
		if math.IsInf(side, 1) {
			side = math.MaxFloat64 / 8
		}
		v *= side + 1e-12
	}
	return v
}

func enlargement(b, o Box) float64 {
	grown := b
	grown.extend(o)
	return grown.volume() - b.volume()
}

// Entry is a leaf payload.
type Entry struct {
	Box  Box
	Data uint64
}

const (
	maxEntries = 16
	minEntries = maxEntries / 4
)

type node struct {
	leaf     bool
	box      Box
	entries  []Entry // leaf
	children []*node // internal
}

// Tree is an in-memory R-tree. The zero value is not usable; call New.
type Tree struct {
	root  *node
	count int
	// NodesVisited counts nodes touched by searches since the last
	// ResetStats, the R-tree analogue of entries scanned.
	nodesVisited int64
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.count }

// NodesVisited returns the search-effort counter.
func (t *Tree) NodesVisited() int64 { return t.nodesVisited }

// ResetStats zeroes the search-effort counter.
func (t *Tree) ResetStats() { t.nodesVisited = 0 }

// Insert adds an entry.
func (t *Tree) Insert(e Entry) {
	t.count++
	split := t.insert(t.root, e)
	if split != nil {
		old := t.root
		t.root = &node{children: []*node{old, split}}
		t.root.box = old.box
		t.root.box.extend(split.box)
	}
}

func (t *Tree) insert(n *node, e Entry) *node {
	if len(n.entries) == 0 && len(n.children) == 0 {
		n.box = e.Box
	} else {
		n.box.extend(e.Box)
	}
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > maxEntries {
			return splitLeaf(n)
		}
		return nil
	}
	// Choose the child needing least enlargement (ties: smaller volume).
	best := n.children[0]
	bestEnl := enlargement(best.box, e.Box)
	for _, c := range n.children[1:] {
		enl := enlargement(c.box, e.Box)
		if enl < bestEnl || (enl == bestEnl && c.box.volume() < best.box.volume()) {
			best, bestEnl = c, enl
		}
	}
	split := t.insert(best, e)
	if split != nil {
		n.children = append(n.children, split)
		if len(n.children) > maxEntries {
			return splitInternal(n)
		}
	}
	return nil
}

// splitLeaf performs Guttman's quadratic split on an over-full leaf,
// moving part of the entries into a returned sibling.
func splitLeaf(n *node) *node {
	seedA, seedB := pickSeeds(len(n.entries), func(i int) Box { return n.entries[i].Box })
	entries := n.entries
	a := []Entry{entries[seedA]}
	b := []Entry{entries[seedB]}
	boxA, boxB := entries[seedA].Box, entries[seedB].Box
	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for k, e := range rest {
		if assignToA(e.Box, &boxA, &boxB, len(a), len(b), len(rest)-k) {
			a = append(a, e)
		} else {
			b = append(b, e)
		}
	}
	n.entries = a
	n.box = boxA
	return &node{leaf: true, entries: b, box: boxB}
}

func splitInternal(n *node) *node {
	seedA, seedB := pickSeeds(len(n.children), func(i int) Box { return n.children[i].box })
	children := n.children
	a := []*node{children[seedA]}
	b := []*node{children[seedB]}
	boxA, boxB := children[seedA].box, children[seedB].box
	rest := make([]*node, 0, len(children)-2)
	for i, c := range children {
		if i != seedA && i != seedB {
			rest = append(rest, c)
		}
	}
	for k, c := range rest {
		if assignToA(c.box, &boxA, &boxB, len(a), len(b), len(rest)-k) {
			a = append(a, c)
		} else {
			b = append(b, c)
		}
	}
	n.children = a
	n.box = boxA
	return &node{children: b, box: boxB}
}

// pickSeeds chooses the pair wasting the most volume when grouped.
func pickSeeds(n int, boxAt func(int) Box) (int, int) {
	worst := -1.0
	sa, sb := 0, 1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			combined := boxAt(i)
			combined.extend(boxAt(j))
			waste := combined.volume() - boxAt(i).volume() - boxAt(j).volume()
			if waste > worst {
				worst, sa, sb = waste, i, j
			}
		}
	}
	return sa, sb
}

// assignToA decides group membership during a split, respecting the
// minimum fill. remaining counts the unassigned items including the
// current one.
func assignToA(b Box, boxA, boxB *Box, lenA, lenB, remaining int) bool {
	// Force-fill a group that needs every remaining item to reach the
	// minimum.
	if lenA+remaining <= minEntries {
		boxA.extend(b)
		return true
	}
	if lenB+remaining <= minEntries {
		boxB.extend(b)
		return false
	}
	enlA := enlargement(*boxA, b)
	enlB := enlargement(*boxB, b)
	if enlA < enlB || (enlA == enlB && lenA <= lenB) {
		boxA.extend(b)
		return true
	}
	boxB.extend(b)
	return false
}

// Search calls fn for every entry whose box intersects query; fn
// returning false stops the search.
func (t *Tree) Search(query Box, fn func(Entry) bool) {
	t.search(t.root, query, fn)
}

func (t *Tree) search(n *node, query Box, fn func(Entry) bool) bool {
	t.nodesVisited++
	if n.leaf {
		for _, e := range n.entries {
			if query.Intersects(e.Box) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if query.Intersects(c.box) {
			if !t.search(c, query, fn) {
				return false
			}
		}
	}
	return true
}

// Depth returns the height of the tree.
func (t *Tree) Depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}

// Validate checks structural invariants (fill factors, bounding boxes);
// it is used by tests.
func (t *Tree) Validate() error {
	var check func(n *node, isRoot bool) (Box, int, error)
	check = func(n *node, isRoot bool) (Box, int, error) {
		if n.leaf {
			if !isRoot && (len(n.entries) < minEntries || len(n.entries) > maxEntries) {
				return Box{}, 0, fmt.Errorf("rtree: leaf fill %d out of range", len(n.entries))
			}
			if len(n.entries) == 0 {
				return n.box, 0, nil
			}
			box := n.entries[0].Box
			for _, e := range n.entries[1:] {
				box.extend(e.Box)
			}
			if !n.box.contains(box) {
				return Box{}, 0, fmt.Errorf("rtree: leaf box does not cover entries")
			}
			return box, len(n.entries), nil
		}
		if !isRoot && (len(n.children) < minEntries || len(n.children) > maxEntries) {
			return Box{}, 0, fmt.Errorf("rtree: node fill %d out of range", len(n.children))
		}
		if len(n.children) == 0 {
			return Box{}, 0, fmt.Errorf("rtree: internal node with no children")
		}
		total := 0
		box, cnt, err := check(n.children[0], false)
		if err != nil {
			return Box{}, 0, err
		}
		total += cnt
		for _, c := range n.children[1:] {
			cb, cnt, err := check(c, false)
			if err != nil {
				return Box{}, 0, err
			}
			total += cnt
			box.extend(cb)
		}
		if !n.box.contains(box) {
			return Box{}, 0, fmt.Errorf("rtree: node box does not cover children")
		}
		return box, total, nil
	}
	_, total, err := check(t.root, true)
	if err != nil {
		return err
	}
	if total != t.count {
		return fmt.Errorf("rtree: count %d != entries %d", t.count, total)
	}
	return nil
}
