package matrix

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/fix-index/fix/internal/eigen"
)

func TestEncoderAssignment(t *testing.T) {
	e := NewEdgeEncoder()
	w1 := e.Encode(1, 2)
	w2 := e.Encode(1, 3)
	w3 := e.Encode(2, 3)
	if w1 != 1 || w2 != 2 || w3 != 3 {
		t.Fatalf("weights = %d %d %d", w1, w2, w3)
	}
	if again := e.Encode(1, 2); again != w1 {
		t.Errorf("re-encode = %d, want %d", again, w1)
	}
	if w, ok := e.Lookup(1, 3); !ok || w != w2 {
		t.Errorf("Lookup = %d, %v", w, ok)
	}
	if _, ok := e.Lookup(9, 9); ok {
		t.Error("Lookup of unseen pair succeeded")
	}
	if e.Len() != 3 {
		t.Errorf("Len = %d", e.Len())
	}
	// Direction matters: (2,1) is distinct from (1,2).
	if w := e.Encode(2, 1); w == w1 {
		t.Error("reversed pair shares a weight")
	}
}

func TestEncoderRoundTrip(t *testing.T) {
	e := NewEdgeEncoder()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		e.Encode(rng.Uint32()%50, rng.Uint32()%50)
	}
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != e.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), e.Len())
	}
	for p, w := range e.pairs {
		got, ok := back.Lookup(p.Parent, p.Child)
		if !ok || got != w {
			t.Errorf("pair %v: got %d, %v; want %d", p, got, ok, w)
		}
	}
}

func TestReadEncoderGarbage(t *testing.T) {
	if _, err := ReadEdgeEncoder(bytes.NewReader([]byte{1})); err == nil {
		t.Error("truncated encoder accepted")
	}
}

// figure2 is the bisimulation graph of the paper's Figure 2 in compact
// form: bib -> {article, book, inproceedings}; article -> {author(1),
// title}; ... simplified to a representative DAG.
func figure2() *Graph {
	// 0=bib 1=article 2=book 3=author_a 4=author_b 5=title
	return &Graph{
		Labels: []uint32{1, 2, 3, 4, 4, 5},
		Adj: [][]int32{
			{1, 2},
			{3, 5},
			{4, 5},
			nil, nil, nil,
		},
	}
}

func TestBuildSkewShape(t *testing.T) {
	g := figure2()
	enc := NewEdgeEncoder()
	m, ok := BuildSkew(g, enc, true)
	if !ok {
		t.Fatal("assign build failed")
	}
	n := g.NumVertices()
	for i := 0; i < n; i++ {
		if m[i][i] != 0 {
			t.Errorf("diagonal (%d,%d) = %v", i, i, m[i][i])
		}
		for j := 0; j < n; j++ {
			if m[i][j] != -m[j][i] {
				t.Errorf("not skew at (%d,%d)", i, j)
			}
		}
	}
	// Same label pair, same weight: article->title and book->title have
	// different parent labels, so they differ; the two author edges from
	// distinct labels differ too. But re-encoding the same graph yields
	// identical weights.
	m2, ok := BuildSkew(g, enc, false)
	if !ok {
		t.Fatal("lookup build failed")
	}
	for i := range m {
		for j := range m[i] {
			if m[i][j] != m2[i][j] {
				t.Fatalf("rebuild differs at (%d,%d)", i, j)
			}
		}
	}
	if g.NumEdges() != 6 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestBuildSkewUnknownPair(t *testing.T) {
	g := figure2()
	enc := NewEdgeEncoder()
	if _, ok := BuildSkew(g, enc, false); ok {
		t.Error("lookup build with empty encoder should fail")
	}
	if _, ok := BuildEdges(g, enc, false); ok {
		t.Error("edge build with empty encoder should fail")
	}
}

func TestBuildEdgesMatchesBuildSkew(t *testing.T) {
	g := figure2()
	enc := NewEdgeEncoder()
	m, _ := BuildSkew(g, enc, true)
	edges, ok := BuildEdges(g, enc, false)
	if !ok {
		t.Fatal("BuildEdges failed")
	}
	if len(edges) != g.NumEdges() {
		t.Fatalf("%d edges, want %d", len(edges), g.NumEdges())
	}
	for _, e := range edges {
		if m[e.From][e.To] != e.W {
			t.Errorf("edge %v disagrees with matrix %v", e, m[e.From][e.To])
		}
	}
}

// TestSpectrumPermutationInvariance verifies the property §3.2 relies on:
// renumbering vertices does not change the eigenvalues.
func TestSpectrumPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(8)
		g := &Graph{Labels: make([]uint32, n), Adj: make([][]int32, n)}
		for i := range g.Labels {
			g.Labels[i] = uint32(1 + rng.Intn(4))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.Adj[i] = append(g.Adj[i], int32(j))
				}
			}
		}
		enc := NewEdgeEncoder()
		m1, _ := BuildSkew(g, enc, true)
		_, max1, err := eigen.SkewExtremes(m1)
		if err != nil {
			t.Fatal(err)
		}
		// Permute the graph.
		perm := rng.Perm(n)
		pg := &Graph{Labels: make([]uint32, n), Adj: make([][]int32, n)}
		for i, p := range perm {
			pg.Labels[p] = g.Labels[i]
		}
		for i, adj := range g.Adj {
			for _, j := range adj {
				pg.Adj[perm[i]] = append(pg.Adj[perm[i]], int32(perm[j]))
			}
		}
		m2, ok := BuildSkew(pg, enc, false)
		if !ok {
			t.Fatal("permuted build failed")
		}
		_, max2, err := eigen.SkewExtremes(m2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(max1-max2) > 1e-9*math.Max(1, max1) {
			t.Fatalf("trial %d: sigma changed under permutation: %v vs %v", trial, max1, max2)
		}
	}
}
