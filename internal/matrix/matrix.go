// Package matrix translates labeled directed graphs (twig patterns and
// bisimulation graphs) into the anti-symmetric matrices whose eigenvalues
// are the FIX features (paper §3.2). Vertex labels are folded into edge
// weights: every distinct (parent label, child label) pair is assigned a
// distinct positive integer by an EdgeEncoder, the weight goes to M[i][j]
// and its negation to M[j][i], and the eigenvalues of the resulting
// skew-symmetric matrix are invariant under vertex renumbering.
package matrix

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"github.com/fix-index/fix/internal/eigen"
)

// LabelPair identifies a directed edge type by the labels of its incident
// vertices.
type LabelPair struct {
	Parent, Child uint32
}

// EdgeEncoder assigns distinct positive integer weights to distinct
// (parent label, child label) pairs. The assignment is persisted with the
// index so queries are encoded identically. It is safe for concurrent use.
type EdgeEncoder struct {
	mu    sync.RWMutex
	pairs map[LabelPair]int32
	list  []LabelPair
}

// NewEdgeEncoder returns an empty encoder.
func NewEdgeEncoder() *EdgeEncoder {
	return &EdgeEncoder{pairs: make(map[LabelPair]int32)}
}

// Encode returns the weight for the pair, assigning the next integer if it
// is new. Weights start at 1.
func (e *EdgeEncoder) Encode(parent, child uint32) int32 {
	p := LabelPair{parent, child}
	e.mu.RLock()
	w, ok := e.pairs[p]
	e.mu.RUnlock()
	if ok {
		return w
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if w, ok := e.pairs[p]; ok {
		return w
	}
	e.list = append(e.list, p)
	w = int32(len(e.list))
	e.pairs[p] = w
	return w
}

// Lookup returns the weight for the pair without assigning. ok is false
// for pairs never seen in the indexed data — a query containing such an
// edge cannot match anything (the pair would have been assigned during
// construction), so callers may safely return an empty candidate set.
func (e *EdgeEncoder) Lookup(parent, child uint32) (int32, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	w, ok := e.pairs[LabelPair{parent, child}]
	return w, ok
}

// Len returns the number of distinct pairs assigned.
func (e *EdgeEncoder) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.list)
}

// WriteTo persists the encoder: a count followed by fixed-width pairs in
// assignment order.
func (e *EdgeEncoder) WriteTo(w io.Writer) (int64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], uint32(len(e.list)))
	n, err := bw.Write(buf[:4])
	total := int64(n)
	if err != nil {
		return total, err
	}
	for _, p := range e.list {
		binary.BigEndian.PutUint32(buf[:4], p.Parent)
		binary.BigEndian.PutUint32(buf[4:], p.Child)
		n, err = bw.Write(buf[:])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadEdgeEncoder deserializes an encoder written by WriteTo.
func ReadEdgeEncoder(r io.Reader) (*EdgeEncoder, error) {
	br := bufio.NewReader(r)
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return nil, fmt.Errorf("matrix: reading encoder header: %w", err)
	}
	count := binary.BigEndian.Uint32(buf[:4])
	e := NewEdgeEncoder()
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("matrix: reading encoder pair %d: %w", i, err)
		}
		p := LabelPair{binary.BigEndian.Uint32(buf[:4]), binary.BigEndian.Uint32(buf[4:])}
		e.list = append(e.list, p)
		e.pairs[p] = int32(i + 1)
	}
	return e, nil
}

// Graph is a labeled DAG in compact form: Labels[i] is the label of vertex
// i and Adj[i] lists the child vertices of i. Vertex 0 is conventionally
// the root.
type Graph struct {
	Labels []uint32
	Adj    [][]int32
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.Labels) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n
}

// BuildEdges translates g into the sparse edge-list form of its
// skew-symmetric matrix. Semantics of enc and assign match BuildSkew.
func BuildEdges(g *Graph, enc *EdgeEncoder, assign bool) ([]eigen.Edge, bool) {
	edges := make([]eigen.Edge, 0, g.NumEdges())
	for i, children := range g.Adj {
		for _, j := range children {
			var w int32
			if assign {
				w = enc.Encode(g.Labels[i], g.Labels[j])
			} else {
				var ok bool
				w, ok = enc.Lookup(g.Labels[i], g.Labels[j])
				if !ok {
					return nil, false
				}
			}
			edges = append(edges, eigen.Edge{From: int32(i), To: j, W: float64(w)})
		}
	}
	return edges, true
}

// BuildSkew translates g into its skew-symmetric matrix using enc for edge
// weights. If assign is true, unseen label pairs get fresh weights (index
// construction); if false and the graph contains a pair unknown to enc,
// BuildSkew returns (nil, false) — the query-side signal that the pattern
// cannot occur in the indexed data.
func BuildSkew(g *Graph, enc *EdgeEncoder, assign bool) ([][]float64, bool) {
	n := g.NumVertices()
	m := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n]
	}
	for i, children := range g.Adj {
		for _, j := range children {
			var w int32
			if assign {
				w = enc.Encode(g.Labels[i], g.Labels[j])
			} else {
				var ok bool
				w, ok = enc.Lookup(g.Labels[i], g.Labels[j])
				if !ok {
					return nil, false
				}
			}
			m[i][j] = float64(w)
			m[j][i] = -float64(w)
		}
	}
	return m, true
}
