// Package obs is the unified observability layer of the FIX index: a
// per-query execution trace (Trace), a process-wide lock-free metrics
// registry (Registry) with a bounded latency histogram, and the expvar
// surface both are exported through.
//
// The paper's entire evaluation (§6) argues with implementation-
// independent accounting — pruning power and false-positive ratio over
// index entries (§6.2), page I/O counts for the runtime comparisons
// (§6.3) — so the trace phases and counters here are named to map
// directly onto those quantities; docs/OBSERVABILITY.md is the
// reference, including the mapping back to §6.2's sel/pp/fpr.
//
// The design rule is "atomics only on hot paths": the registry is a set
// of atomic counters and an atomic-bucket histogram, and a nil *Trace
// disables every snapshot and timer in the query pipeline, so untraced
// queries pay only a handful of atomic adds.
package obs

import "time"

// Phase identifies one stage of the query pipeline, in execution order.
type Phase int

const (
	// PhaseParse is XPath text to query tree (internal/xpath).
	PhaseParse Phase = iota
	// PhasePlan is //-decomposition plus per-twig feature computation
	// (the query side of the paper's Algorithm 2, lines 1-2).
	PhasePlan
	// PhaseProbe is the B-tree eigenvalue range scan — the pruning
	// phase. Its B-tree counters are the page-I/O accounting of §6.3.
	PhaseProbe
	// PhaseFetch is candidate fetch: dereferencing candidate pointers
	// into primary (or clustered) storage.
	PhaseFetch
	// PhaseRefine is NoK navigational refinement of fetched candidates.
	PhaseRefine
	// NumPhases is the number of traced phases.
	NumPhases
)

var phaseNames = [NumPhases]string{"parse", "plan", "probe", "fetch", "refine"}

// String returns the phase's short name as used in logs and documents.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// BTreeDelta is the pager activity one query caused: physical page reads
// (cache misses), physical page writes, cache hits, and cache evictions.
type BTreeDelta struct {
	PageReads  int64
	PageWrites int64
	CacheHits  int64
	Evictions  int64
}

// StorageDelta is the record-heap activity one query caused, in the
// storage layer's own accounting: sequential vs. random record reads,
// reads served by the one-record cache, bytes read, and pointer
// dereferences through ReadSubtree (the unclustered refinement cost
// model's unit).
type StorageDelta struct {
	SeqReads     int64
	RandomReads  int64
	CachedReads  int64
	BytesRead    int64
	SubtreeReads int64
	SubtreeBytes int64
}

// Add returns the field-wise sum of two deltas; queries that touch both
// the primary and the clustered heap report the combined delta.
func (d StorageDelta) Add(o StorageDelta) StorageDelta {
	return StorageDelta{
		SeqReads:     d.SeqReads + o.SeqReads,
		RandomReads:  d.RandomReads + o.RandomReads,
		CachedReads:  d.CachedReads + o.CachedReads,
		BytesRead:    d.BytesRead + o.BytesRead,
		SubtreeReads: d.SubtreeReads + o.SubtreeReads,
		SubtreeBytes: d.SubtreeBytes + o.SubtreeBytes,
	}
}

// Trace records one query's execution: wall time per phase plus the
// counters each phase produced. A nil *Trace disables collection
// entirely; every producer checks for nil before touching a timer.
//
// Phase durations for PhaseFetch and PhaseRefine are summed across the
// refinement worker pool, so on a multi-core query they can exceed the
// query's total wall time (the same convention as core.BuildStats).
//
// The I/O deltas are computed by differencing the shared subsystem
// counters around the phase, so when multiple queries run concurrently
// over one database a trace may attribute a concurrent query's I/O to
// itself. The process-wide totals (Registry and the cumulative
// subsystem stats) are exact regardless.
type Trace struct {
	// Query is the original XPath text.
	Query string
	// Start is when query evaluation began.
	Start time.Time
	// Total is the end-to-end wall time.
	Total time.Duration
	// Phase holds per-phase durations, indexed by Phase.
	Phase [NumPhases]time.Duration

	// Entries is the number of index entries (ent of §6.2); Scanned how
	// many the range scan touched; Candidates how many survived the
	// feature filter (cdt); Matched how many candidates produced at
	// least one result (rst); Count the total output-node matches.
	Entries, Scanned, Candidates, Matched, Count int
	// Workers is the refinement worker-pool size used.
	Workers int
	// NodesVisited counts subtree nodes the NoK bottom-up pass visited,
	// the unit of refinement work.
	NodesVisited int64
	// BTree is the pager activity of the probe phase.
	BTree BTreeDelta
	// Storage is the record-heap activity of fetch + refinement,
	// primary and clustered heaps combined.
	Storage StorageDelta
	// Fallback reports that the index was degraded and the result came
	// from a full sequential scan; the pruning counters are then zero.
	Fallback bool
	// Generation is the publish sequence number of the index generation
	// the query ran against (0 when unknown), for attributing traces
	// across concurrent index swaps.
	Generation uint64
}
