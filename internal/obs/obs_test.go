package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestPhaseString(t *testing.T) {
	want := []string{"parse", "plan", "probe", "fetch", "refine"}
	for i, w := range want {
		if got := Phase(i).String(); got != w {
			t.Errorf("Phase(%d) = %q, want %q", i, got, w)
		}
	}
	if got := Phase(99).String(); got != "unknown" {
		t.Errorf("Phase(99) = %q, want unknown", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{time.Millisecond, 10},             // 1024µs <= 2^10
		{time.Second, 20},                  // 1e6µs <= 2^20
		{10 * time.Minute, NumBuckets - 1}, // overflow bucket
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's contents must respect its bound.
	for i := 0; i < NumBuckets-1; i++ {
		if bucketFor(BucketBound(i)) != i {
			t.Errorf("BucketBound(%d) = %v lands in bucket %d", i, BucketBound(i), bucketFor(BucketBound(i)))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow ones: p50 must sit in the fast
	// bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50 != 4*time.Microsecond {
		t.Errorf("p50 = %v, want 4µs (bucket bound over 3µs)", s.P50)
	}
	if s.P99 != 1024*time.Microsecond {
		t.Errorf("p99 = %v, want 1.024ms (bucket bound over 900µs)", s.P99)
	}
	if len(s.Buckets) != 2 {
		t.Errorf("non-empty buckets = %d, want 2 (%+v)", len(s.Buckets), s.Buckets)
	}
	if s.Mean <= 0 {
		t.Errorf("mean = %v, want > 0", s.Mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty histogram snapshot = %+v", s)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines and
// checks the totals; run with -race to verify lock-freedom is also
// data-race-freedom.
func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.ObserveQuery(time.Millisecond, 10, 5, 2, 3, i%10 == 0, 7)
				if i%50 == 0 {
					r.ObserveQueryError()
					r.ObserveBuild(4, 4, time.Second)
					_ = r.Snapshot() // snapshots race with writers by design
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	const n = goroutines * per
	if s.Queries != n || s.Scanned != 10*n || s.Candidates != 5*n || s.Matched != 2*n || s.Results != 3*n {
		t.Errorf("totals diverge: %+v", s)
	}
	if s.Fallbacks != n/10 {
		t.Errorf("fallbacks = %d, want %d", s.Fallbacks, n/10)
	}
	if s.QueryErrors != goroutines*10 || s.Builds != goroutines*10 {
		t.Errorf("errors/builds = %d/%d, want %d each", s.QueryErrors, s.Builds, goroutines*10)
	}
	if s.Latency.Count != n {
		t.Errorf("latency count = %d, want %d", s.Latency.Count, n)
	}
	if s.NodesVisited != 7*n {
		t.Errorf("nodes visited = %d, want %d", s.NodesVisited, 7*n)
	}
}

func TestSnapshotMarshalsToJSON(t *testing.T) {
	var r Registry
	r.ObserveQuery(5*time.Millisecond, 100, 10, 5, 5, false, 42)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"queries":1`, `"candidates":10`, `"query_latency"`} {
		if !jsonContains(b, key) {
			t.Errorf("snapshot JSON missing %s: %s", key, b)
		}
	}
}

func jsonContains(b []byte, sub string) bool {
	return len(b) >= len(sub) && string(b) != "" && containsStr(string(b), sub)
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestStorageDeltaAdd(t *testing.T) {
	a := StorageDelta{SeqReads: 1, RandomReads: 2, CachedReads: 3, BytesRead: 4, SubtreeReads: 5, SubtreeBytes: 6}
	b := StorageDelta{SeqReads: 10, RandomReads: 20, CachedReads: 30, BytesRead: 40, SubtreeReads: 50, SubtreeBytes: 60}
	got := a.Add(b)
	want := StorageDelta{SeqReads: 11, RandomReads: 22, CachedReads: 33, BytesRead: 44, SubtreeReads: 55, SubtreeBytes: 66}
	if got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
}
