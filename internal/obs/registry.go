package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the process-wide aggregation of query and build activity.
// Every field is an atomic, so recording is wait-free and safe from any
// number of goroutines; there is deliberately no mutex anywhere near the
// query path. I/O counters are not duplicated here — the storage and
// B-tree layers keep their own exact cumulative counters, and the public
// snapshot (fix.DB.Snapshot) merges the two views.
type Registry struct {
	queries      atomic.Int64
	queryErrors  atomic.Int64
	fallbacks    atomic.Int64
	scanned      atomic.Int64
	candidates   atomic.Int64
	matched      atomic.Int64
	results      atomic.Int64
	nodesVisited atomic.Int64

	// Rejection classes of the resource-governance layer: queries turned
	// away at the admission gate, killed by their deadline, or stopped by
	// a work budget — plus panics converted to errors by a containment
	// barrier. Each rejected query is also counted in queryErrors (except
	// admission rejections, which never reach the query pipeline).
	rejectedAdmission atomic.Int64
	deadlineExceeded  atomic.Int64
	budgetExceeded    atomic.Int64
	panicsRecovered   atomic.Int64

	builds       atomic.Int64
	buildRecords atomic.Int64
	buildUnits   atomic.Int64
	buildWallNS  atomic.Int64

	// Ingest pipeline counters. A batch is one group commit (one WAL
	// append sharing one fsync); docs and deletes count the operations
	// inside batches; queueFull counts operations rejected by
	// backpressure; replayed counts operations re-applied from the WAL
	// during crash recovery.
	ingestBatches   atomic.Int64
	ingestDocs      atomic.Int64
	ingestDeletes   atomic.Int64
	ingestFsyncs    atomic.Int64
	ingestQueueFull atomic.Int64
	ingestReplayed  atomic.Int64

	// Online-maintenance counters: background WAL checkpoints, scrub
	// passes (and passes that found damage), and automatic rebuilds of
	// a degraded index.
	checkpoints        atomic.Int64
	checkpointFailures atomic.Int64
	scrubPasses        atomic.Int64
	scrubFindings      atomic.Int64
	autoRebuilds       atomic.Int64
	autoRebuildErrors  atomic.Int64

	// collections maps collection name → *CollectionStats (see
	// scoped.go); populated only when the sharded serving layer is in
	// use.
	collections sync.Map

	latency Histogram
}

// defaultRegistry is the process-wide registry every DB records into.
var defaultRegistry Registry

// Default returns the process-wide registry.
func Default() *Registry { return &defaultRegistry }

// ObserveQuery records one completed query: its latency and the pruning
// pipeline counters. visited is the NoK node-visit count when the query
// was traced, 0 otherwise (the counter is documented as covering traced
// queries only).
func (r *Registry) ObserveQuery(total time.Duration, scanned, candidates, matched, results int, fallback bool, visited int64) {
	r.queries.Add(1)
	if fallback {
		r.fallbacks.Add(1)
	}
	r.scanned.Add(int64(scanned))
	r.candidates.Add(int64(candidates))
	r.matched.Add(int64(matched))
	r.results.Add(int64(results))
	r.nodesVisited.Add(visited)
	r.latency.Observe(total)
}

// ObserveQueryError records a query that failed (parse error, I/O
// error, cancellation); failed queries do not enter the latency
// histogram.
func (r *Registry) ObserveQueryError() { r.queryErrors.Add(1) }

// ObserveAdmissionRejected records a query turned away at an admission
// gate before it entered the query pipeline (fixserve's 429 path).
func (r *Registry) ObserveAdmissionRejected() { r.rejectedAdmission.Add(1) }

// ObserveDeadlineExceeded records a query killed by its deadline.
func (r *Registry) ObserveDeadlineExceeded() { r.deadlineExceeded.Add(1) }

// ObserveBudgetExceeded records a query stopped by a work budget
// (candidate, result, or refinement-node limit).
func (r *Registry) ObserveBudgetExceeded() { r.budgetExceeded.Add(1) }

// ObservePanicRecovered records a panic converted into an error by a
// containment barrier (the fix public API or a par worker).
func (r *Registry) ObservePanicRecovered() { r.panicsRecovered.Add(1) }

// ObserveIngestBatch records one committed ingest batch: the number of
// document inserts and deletes it carried, and how many fsyncs it cost
// (one, for the group commit — recorded explicitly so the docs/fsyncs
// ratio exposes the amortization).
func (r *Registry) ObserveIngestBatch(docs, deletes, fsyncs int) {
	r.ingestBatches.Add(1)
	r.ingestDocs.Add(int64(docs))
	r.ingestDeletes.Add(int64(deletes))
	r.ingestFsyncs.Add(int64(fsyncs))
}

// ObserveIngestQueueFull records operations rejected by ingest
// backpressure (the bounded queue stayed full past the enqueue wait).
func (r *Registry) ObserveIngestQueueFull(ops int) { r.ingestQueueFull.Add(int64(ops)) }

// ObserveIngestReplayed records operations re-applied from the ingest
// WAL during crash recovery.
func (r *Registry) ObserveIngestReplayed(ops int) { r.ingestReplayed.Add(int64(ops)) }

// ObserveCheckpoint records one WAL-checkpoint attempt and whether it
// committed.
func (r *Registry) ObserveCheckpoint(ok bool) {
	if ok {
		r.checkpoints.Add(1)
	} else {
		r.checkpointFailures.Add(1)
	}
}

// ObserveScrub records one completed scrub pass; damaged reports that
// the pass found corruption.
func (r *Registry) ObserveScrub(damaged bool) {
	r.scrubPasses.Add(1)
	if damaged {
		r.scrubFindings.Add(1)
	}
}

// ObserveAutoRebuild records one automatic rebuild attempt of a
// degraded index and whether it succeeded.
func (r *Registry) ObserveAutoRebuild(ok bool) {
	if ok {
		r.autoRebuilds.Add(1)
	} else {
		r.autoRebuildErrors.Add(1)
	}
}

// ObserveBuild records one completed index construction.
func (r *Registry) ObserveBuild(records, units int, wall time.Duration) {
	r.builds.Add(1)
	r.buildRecords.Add(int64(records))
	r.buildUnits.Add(int64(units))
	r.buildWallNS.Add(int64(wall))
}

// RegistrySnapshot is a point-in-time copy of a Registry. Field meanings
// follow the paper's §6.2 vocabulary: Scanned sums entries touched by
// range scans, Candidates sums cdt, Matched sums rst, Results sums
// output-node matches.
type RegistrySnapshot struct {
	Queries      int64 `json:"queries"`
	QueryErrors  int64 `json:"query_errors"`
	Fallbacks    int64 `json:"scan_fallbacks"`
	Scanned      int64 `json:"entries_scanned"`
	Candidates   int64 `json:"candidates"`
	Matched      int64 `json:"matched_entries"`
	Results      int64 `json:"results"`
	NodesVisited int64 `json:"nodes_visited"`

	// Resource-governance rejection classes and contained panics.
	RejectedAdmission int64 `json:"queries_rejected_admission"`
	DeadlineExceeded  int64 `json:"queries_deadline_exceeded"`
	BudgetExceeded    int64 `json:"queries_budget_exceeded"`
	PanicsRecovered   int64 `json:"panics_recovered"`

	Builds       int64         `json:"builds"`
	BuildRecords int64         `json:"build_records"`
	BuildUnits   int64         `json:"build_units"`
	BuildWall    time.Duration `json:"build_wall_ns"`

	// Ingest pipeline counters (group-commit WAL write path).
	IngestBatches   int64 `json:"ingest_batches"`
	IngestDocs      int64 `json:"ingest_docs"`
	IngestDeletes   int64 `json:"ingest_deletes"`
	IngestFsyncs    int64 `json:"ingest_fsyncs"`
	IngestQueueFull int64 `json:"ingest_queue_full"`
	IngestReplayed  int64 `json:"ingest_replayed"`

	// Online-maintenance counters (background checkpointer + scrubber).
	Checkpoints        int64 `json:"checkpoints"`
	CheckpointFailures int64 `json:"checkpoint_failures"`
	ScrubPasses        int64 `json:"scrub_passes"`
	ScrubFindings      int64 `json:"scrub_findings"`
	AutoRebuilds       int64 `json:"auto_rebuilds"`
	AutoRebuildErrors  int64 `json:"auto_rebuild_errors"`

	// Collections holds the per-collection counters of the sharded
	// serving layer, keyed by collection name; nil (omitted from JSON)
	// when no collection was ever observed in this process.
	Collections map[string]CollectionSnapshot `json:"collections,omitempty"`

	Latency LatencySnapshot `json:"query_latency"`
}

// Snapshot copies the registry. Concurrent recording may interleave with
// the reads; each individual counter is still exact at its read point.
func (r *Registry) Snapshot() RegistrySnapshot {
	return RegistrySnapshot{
		Queries:      r.queries.Load(),
		QueryErrors:  r.queryErrors.Load(),
		Fallbacks:    r.fallbacks.Load(),
		Scanned:      r.scanned.Load(),
		Candidates:   r.candidates.Load(),
		Matched:      r.matched.Load(),
		Results:      r.results.Load(),
		NodesVisited: r.nodesVisited.Load(),

		RejectedAdmission: r.rejectedAdmission.Load(),
		DeadlineExceeded:  r.deadlineExceeded.Load(),
		BudgetExceeded:    r.budgetExceeded.Load(),
		PanicsRecovered:   r.panicsRecovered.Load(),

		Builds:       r.builds.Load(),
		BuildRecords: r.buildRecords.Load(),
		BuildUnits:   r.buildUnits.Load(),
		BuildWall:    time.Duration(r.buildWallNS.Load()),

		IngestBatches:   r.ingestBatches.Load(),
		IngestDocs:      r.ingestDocs.Load(),
		IngestDeletes:   r.ingestDeletes.Load(),
		IngestFsyncs:    r.ingestFsyncs.Load(),
		IngestQueueFull: r.ingestQueueFull.Load(),
		IngestReplayed:  r.ingestReplayed.Load(),

		Checkpoints:        r.checkpoints.Load(),
		CheckpointFailures: r.checkpointFailures.Load(),
		ScrubPasses:        r.scrubPasses.Load(),
		ScrubFindings:      r.scrubFindings.Load(),
		AutoRebuilds:       r.autoRebuilds.Load(),
		AutoRebuildErrors:  r.autoRebuildErrors.Load(),

		Collections: r.snapshotCollections(),

		Latency: r.latency.Snapshot(),
	}
}

var publishOnce sync.Once

// Publish registers fn's value under the expvar name "fix" (alongside
// the runtime's memstats/cmdline variables on /debug/vars). expvar
// names are process-global and cannot be unregistered, so only the
// first call in a process takes effect; later calls are no-ops.
func Publish(fn func() any) {
	publishOnce.Do(func() {
		expvar.Publish("fix", expvar.Func(fn))
	})
}
