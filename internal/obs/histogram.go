package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of latency histogram buckets. Bucket i counts
// observations with d <= 1µs·2^i; the last bucket is the overflow bucket
// (upper bound 1µs·2^27 ≈ 134s, far beyond any sane query).
const NumBuckets = 28

// Histogram is a bounded, lock-free latency histogram with power-of-two
// microsecond buckets. The zero value is ready to use; Observe is a
// single atomic add, so concurrent observers never contend on a lock.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	us := d / time.Microsecond
	if us <= 1 {
		return 0
	}
	// Smallest i with us <= 2^i: the bit length of us-1.
	i := bits.Len64(uint64(us - 1))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketBound returns bucket i's inclusive upper bound.
func BucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

// Observe records one latency observation.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// LatencySnapshot is a point-in-time copy of a Histogram, with quantiles
// estimated from the bucket upper bounds (each at most 2× the true
// value, the bucket resolution).
type LatencySnapshot struct {
	Count   int64           `json:"count"`
	Mean    time.Duration   `json:"mean_ns"`
	P50     time.Duration   `json:"p50_ns"`
	P95     time.Duration   `json:"p95_ns"`
	P99     time.Duration   `json:"p99_ns"`
	Buckets []LatencyBucket `json:"buckets,omitempty"`
}

// LatencyBucket is one non-empty histogram bucket: Le is the inclusive
// upper bound, Count the observations in (previous bound, Le].
type LatencyBucket struct {
	Le    time.Duration `json:"le_ns"`
	Count int64         `json:"count"`
}

// Snapshot copies the histogram. Concurrent Observe calls may land
// between the bucket reads; the snapshot is still internally plausible
// (quantiles are computed from the copied buckets alone).
func (h *Histogram) Snapshot() LatencySnapshot {
	var counts [NumBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := LatencySnapshot{Count: total}
	if total == 0 {
		return s
	}
	s.Mean = time.Duration(h.sumNS.Load() / total)
	s.P50 = quantile(&counts, total, 0.50)
	s.P95 = quantile(&counts, total, 0.95)
	s.P99 = quantile(&counts, total, 0.99)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, LatencyBucket{Le: BucketBound(i), Count: c})
		}
	}
	return s
}

// quantile returns the upper bound of the bucket holding the q-quantile.
func quantile(counts *[NumBuckets]int64, total int64, q float64) time.Duration {
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}
