package obs

import (
	"sort"
	"sync/atomic"
)

// CollectionStats aggregates the activity of one named collection in the
// sharded serving layer (internal/collection). Like the Registry it
// lives in, every field is an atomic, so the scatter-gather hot path
// records without locks; the per-shard query detail (latency, pruning
// counters) still lands in the process-wide Registry — these counters
// add only what the collection layer knows and the per-DB layer cannot:
// fan-out shape, partial results, and routing decisions.
type CollectionStats struct {
	queries       atomic.Int64 // collection-level queries (one per client call)
	targeted      atomic.Int64 // routed to a single shard by root label
	scattered     atomic.Int64 // broadcast to every shard
	partials      atomic.Int64 // queries that returned with ≥1 failed shard
	shardTimeouts atomic.Int64 // per-shard deadline kills observed
	shardErrors   atomic.Int64 // other per-shard failures tolerated in a partial result
	ingestDocs    atomic.Int64 // documents routed into shards
	ingestDeletes atomic.Int64 // deletes routed into shards
}

// ObserveCollectionQuery records one collection-level query: whether the
// router targeted a single shard or scattered to all of them, and how
// many shards timed out or failed (a nonzero count of either makes the
// result partial).
func (c *CollectionStats) ObserveCollectionQuery(targeted bool, timeouts, failures int) {
	c.queries.Add(1)
	if targeted {
		c.targeted.Add(1)
	} else {
		c.scattered.Add(1)
	}
	if timeouts+failures > 0 {
		c.partials.Add(1)
	}
	c.shardTimeouts.Add(int64(timeouts))
	c.shardErrors.Add(int64(failures))
}

// ObserveCollectionIngest records documents and deletes routed through a
// collection into its shards.
func (c *CollectionStats) ObserveCollectionIngest(docs, deletes int) {
	c.ingestDocs.Add(int64(docs))
	c.ingestDeletes.Add(int64(deletes))
}

// CollectionSnapshot is a point-in-time copy of one collection's
// counters.
type CollectionSnapshot struct {
	Queries       int64 `json:"queries"`
	Targeted      int64 `json:"queries_targeted"`
	Scattered     int64 `json:"queries_scattered"`
	Partials      int64 `json:"queries_partial"`
	ShardTimeouts int64 `json:"shard_timeouts"`
	ShardErrors   int64 `json:"shard_errors"`
	IngestDocs    int64 `json:"ingest_docs"`
	IngestDeletes int64 `json:"ingest_deletes"`
}

// Collection returns the named collection's counters in this registry,
// creating them on first use. The same name always returns the same
// *CollectionStats for the life of the process (dropping a collection
// retains its counters — totals are cumulative, like every other
// registry counter). The lookup is a lock-free sync.Map read after the
// first query creates the entry.
func (r *Registry) Collection(name string) *CollectionStats {
	if v, ok := r.collections.Load(name); ok {
		return v.(*CollectionStats)
	}
	v, _ := r.collections.LoadOrStore(name, &CollectionStats{})
	return v.(*CollectionStats)
}

// CollectionNames returns the collection names with recorded activity,
// sorted.
func (r *Registry) CollectionNames() []string {
	var names []string
	r.collections.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// snapshotCollections copies every collection's counters, keyed by name.
// It returns nil when no collection was ever observed, so single-index
// deployments serialize no empty "collections" object.
func (r *Registry) snapshotCollections() map[string]CollectionSnapshot {
	var out map[string]CollectionSnapshot
	r.collections.Range(func(k, v any) bool {
		c := v.(*CollectionStats)
		if out == nil {
			out = make(map[string]CollectionSnapshot)
		}
		out[k.(string)] = CollectionSnapshot{
			Queries:       c.queries.Load(),
			Targeted:      c.targeted.Load(),
			Scattered:     c.scattered.Load(),
			Partials:      c.partials.Load(),
			ShardTimeouts: c.shardTimeouts.Load(),
			ShardErrors:   c.shardErrors.Load(),
			IngestDocs:    c.ingestDocs.Load(),
			IngestDeletes: c.ingestDeletes.Load(),
		}
		return true
	})
	return out
}
