package joins

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/tagindex"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

func buildStore(t *testing.T, docs []string) *storage.Store {
	t.Helper()
	st, err := storage.NewStore(storage.NewMemFile(), xmltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range docs {
		n, err := xmltree.ParseString(d)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if _, err := st.AppendTree(n); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func nokCount(t *testing.T, st *storage.Store, q *xpath.Path) int {
	t.Helper()
	nq, err := nok.Compile(q.Tree(), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for rec := 0; rec < st.NumRecords(); rec++ {
		cur, err := st.Cursor(uint32(rec))
		if err != nil {
			t.Fatal(err)
		}
		total += nq.Count(cur, 0)
	}
	return total
}

func TestStructuralJoinBasic(t *testing.T) {
	st := buildStore(t, []string{
		`<bib><article><author><email/></author></article><book><author><phone/></author></book></bib>`,
		`<bib><article><author/></article></bib>`,
	})
	tags, err := tagindex.Build(st)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(tags)
	cases := []struct {
		query string
		want  int
	}{
		{"//article/author", 2},
		{"//author[email]", 1},
		{"//bib//author", 3},
		{"//book/author/phone", 1},
		{"/bib/article", 2},
		{"//article/phone", 0},
		{"//nosuch", 0},
	}
	for _, c := range cases {
		got, err := ev.Count(xpath.MustParse(c.query).Tree())
		if err != nil {
			t.Fatalf("%s: %v", c.query, err)
		}
		if got != c.want {
			t.Errorf("Count(%s) = %d, want %d", c.query, got, c.want)
		}
		if want := nokCount(t, st, xpath.MustParse(c.query)); got != want {
			t.Errorf("%s: joins %d, NoK %d", c.query, got, want)
		}
	}
}

func TestValuePredicateRejected(t *testing.T) {
	st := buildStore(t, []string{`<a><b>v</b></a>`})
	tags, err := tagindex.Build(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tags).Count(xpath.MustParse(`//a[b="v"]`).Tree()); !errors.Is(err, ErrValuePredicate) {
		t.Errorf("err = %v, want ErrValuePredicate", err)
	}
}

func TestRecursiveNesting(t *testing.T) {
	// Nested same-label elements stress the ancestor stack.
	st := buildStore(t, []string{`<a><a><b/><a><b/></a></a><b/></a>`})
	tags, err := tagindex.Build(st)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(tags)
	for _, c := range []struct {
		query string
		want  int
	}{
		{"//a/b", 3},
		{"//a//b", 3},
		{"//a/a", 2},
		{"//a[a]/b", 2},
		{"/a/b", 1},
	} {
		got, err := ev.Count(xpath.MustParse(c.query).Tree())
		if err != nil {
			t.Fatalf("%s: %v", c.query, err)
		}
		if got != c.want {
			t.Errorf("Count(%s) = %d, want %d", c.query, got, c.want)
		}
	}
}

func randomDoc(rng *rand.Rand, labels []string, depth int) *xmltree.Node {
	var build func(d int) *xmltree.Node
	build = func(d int) *xmltree.Node {
		n := xmltree.Elem(labels[rng.Intn(len(labels))])
		if d <= 0 {
			return n
		}
		for i := rng.Intn(4); i > 0; i-- {
			n.Children = append(n.Children, build(d-1))
		}
		return n
	}
	return build(depth)
}

func TestRandomAgainstNoK(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	labels := []string{"a", "b", "c", "d"}
	queries := []string{
		"//a/b", "//a[b][c]", "//a//d", "//b/c/d", "//a[b/c]/d",
		"/a/b", "//c[d]/a", "//d[a]//b", "//a/a/b",
	}
	for trial := 0; trial < 30; trial++ {
		st, err := storage.NewStore(storage.NewMemFile(), xmltree.NewDict())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := st.AppendTree(randomDoc(rng, labels, 5)); err != nil {
				t.Fatal(err)
			}
		}
		tags, err := tagindex.Build(st)
		if err != nil {
			t.Fatal(err)
		}
		ev := New(tags)
		for _, qs := range queries {
			q := xpath.MustParse(qs)
			got, err := ev.Count(q.Tree())
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, qs, err)
			}
			if want := nokCount(t, st, q); got != want {
				t.Fatalf("trial %d %s: joins %d, NoK %d", trial, qs, got, want)
			}
		}
	}
}

func TestSemiJoinDirections(t *testing.T) {
	st := buildStore(t, []string{`<r><a><b/></a><a/><b/></r>`})
	tags, err := tagindex.Build(st)
	if err != nil {
		t.Fatal(err)
	}
	as := tags.List("a")
	bs := tags.List("b")
	if len(as) != 2 || len(bs) != 2 {
		t.Fatalf("lists: a=%d b=%d", len(as), len(bs))
	}
	anc := SemiJoinAnc(as, bs, true)
	if len(anc) != 1 {
		t.Errorf("ancestors with b child = %d, want 1", len(anc))
	}
	desc := SemiJoinDesc(as, bs, true)
	if len(desc) != 1 {
		t.Errorf("b's with a parent = %d, want 1", len(desc))
	}
	// Descendant axis: same here (depth 1).
	if got := SemiJoinAnc(as, bs, false); len(got) != 1 {
		t.Errorf("descendant semijoin = %d", len(got))
	}
}

func TestTagIndexRegions(t *testing.T) {
	st := buildStore(t, []string{`<r><a><b/></a></r>`})
	tags, err := tagindex.Build(st)
	if err != nil {
		t.Fatal(err)
	}
	r := tags.List("r")[0]
	a := tags.List("a")[0]
	b := tags.List("b")[0]
	if !r.Contains(a) || !a.Contains(b) || !r.Contains(b) {
		t.Error("containment relations wrong")
	}
	if b.Contains(a) || a.Contains(r) {
		t.Error("reverse containment reported")
	}
	if r.Level != 0 || a.Level != 1 || b.Level != 2 {
		t.Errorf("levels: %d %d %d", r.Level, a.Level, b.Level)
	}
	if tags.NumElements() != 3 || tags.NumLabels() != 3 {
		t.Errorf("elements=%d labels=%d", tags.NumElements(), tags.NumLabels())
	}
}
