// Package joins implements join-based twig query evaluation over the
// tagindex posting lists: the Stack-Tree structural join of Al-Khalifa et
// al. (the paper's reference [3]) applied bottom-up to compute satisfying
// element lists per query node, then top-down to enumerate witnessed
// output bindings. It is the "join-based" refinement/evaluation
// alternative of the paper's architecture (Figure 3); the experiments
// compare it against the navigational NoK operator (§6.3).
package joins

import (
	"fmt"

	"github.com/fix-index/fix/internal/tagindex"
	"github.com/fix-index/fix/internal/xpath"
)

// ErrValuePredicate reports a query with value-equality predicates, which
// the structural evaluator does not handle (callers refine with NoK).
var ErrValuePredicate = fmt.Errorf("joins: value predicates require navigational refinement")

// Evaluator answers twig queries from a tag index alone.
type Evaluator struct {
	tags *tagindex.Index
}

// New returns an evaluator over the given tag index.
func New(tags *tagindex.Index) *Evaluator {
	return &Evaluator{tags: tags}
}

// SemiJoinAnc returns the ancestors (in list order) that contain at least
// one descendant from desc; childOnly restricts to parent-child. Both
// inputs must be in document order. It is the ancestor-output direction
// of the Stack-Tree structural join.
func SemiJoinAnc(anc, desc []tagindex.Posting, childOnly bool) []tagindex.Posting {
	matched := make([]bool, len(anc))
	stackJoin(anc, desc, childOnly, func(ai, di int) { matched[ai] = true })
	out := make([]tagindex.Posting, 0, len(anc))
	for i, m := range matched {
		if m {
			out = append(out, anc[i])
		}
	}
	return out
}

// SemiJoinDesc returns the descendants that have at least one ancestor
// (or parent, with childOnly) in anc.
func SemiJoinDesc(anc, desc []tagindex.Posting, childOnly bool) []tagindex.Posting {
	matched := make([]bool, len(desc))
	stackJoin(anc, desc, childOnly, func(ai, di int) { matched[di] = true })
	out := make([]tagindex.Posting, 0, len(desc))
	for i, m := range matched {
		if m {
			out = append(out, desc[i])
		}
	}
	return out
}

// stackJoin runs the Stack-Tree merge: one pass over both document-
// ordered lists with a stack of currently-open ancestors. emit is called
// for every (ancestor index, descendant index) pair related by the axis.
// For the semi-join uses above the per-pair cost is amortized by the
// matched-flag short-circuit in the callers; the pass itself is
// O(|anc| + |desc| + pairs).
func stackJoin(anc, desc []tagindex.Posting, childOnly bool, emit func(ai, di int)) {
	var stack []int // indices into anc, innermost last
	ai := 0
	for di := 0; di < len(desc); di++ {
		d := desc[di]
		// Pop ancestors that end before d starts or belong to earlier
		// documents.
		for len(stack) > 0 {
			top := anc[stack[len(stack)-1]]
			if top.Rec < d.Rec || (top.Rec == d.Rec && top.End <= d.Start) {
				stack = stack[:len(stack)-1]
			} else {
				break
			}
		}
		// Push ancestors that start before d.
		for ai < len(anc) {
			a := anc[ai]
			if a.Rec < d.Rec || (a.Rec == d.Rec && a.Start < d.Start) {
				if a.Rec == d.Rec && d.Start < a.End {
					stack = append(stack, ai)
				}
				ai++
			} else {
				break
			}
		}
		// Every stacked ancestor contains d.
		for si := len(stack) - 1; si >= 0; si-- {
			a := anc[stack[si]]
			if a.Rec != d.Rec || a.End < d.End {
				continue
			}
			if childOnly {
				if a.Level+1 == d.Level {
					emit(stack[si], di)
				}
				continue
			}
			emit(stack[si], di)
		}
	}
}

// Count returns the number of distinct output-node matches of the twig
// query (value predicates are rejected with ErrValuePredicate).
func (e *Evaluator) Count(root *xpath.QNode) (int, error) {
	w, err := e.Witnessed(root)
	if err != nil {
		return 0, err
	}
	return len(w), nil
}

// Witnessed returns the postings binding the query's output node.
func (e *Evaluator) Witnessed(root *xpath.QNode) ([]tagindex.Posting, error) {
	if root == nil {
		return nil, fmt.Errorf("joins: nil query")
	}
	sat := make(map[*xpath.QNode][]tagindex.Posting)
	if err := e.satisfy(root, sat); err != nil {
		return nil, err
	}
	// Root axis filter.
	rootList := sat[root]
	if root.Axis == xpath.Child {
		filtered := rootList[:0:0]
		for _, p := range rootList {
			if p.Level == 0 {
				filtered = append(filtered, p)
			}
		}
		rootList = filtered
	}
	witnessed := map[*xpath.QNode][]tagindex.Posting{root: rootList}
	var down func(q *xpath.QNode)
	down = func(q *xpath.QNode) {
		for _, c := range q.Children {
			witnessed[c] = SemiJoinDesc(witnessed[q], sat[c], c.Axis == xpath.Child)
			down(c)
		}
	}
	down(root)
	var out []tagindex.Posting
	var collect func(q *xpath.QNode)
	collect = func(q *xpath.QNode) {
		if q.Output {
			out = append(out, witnessed[q]...)
		}
		for _, c := range q.Children {
			collect(c)
		}
	}
	collect(root)
	if out == nil && !hasOutput(root) {
		// Queries whose tree has no explicit output (e.g. single-step
		// paths built by hand) default to the root.
		out = rootList
	}
	return out, nil
}

func hasOutput(q *xpath.QNode) bool {
	found := false
	q.Walk(func(n *xpath.QNode) {
		if n.Output {
			found = true
		}
	})
	return found
}

// satisfy computes, bottom-up, the elements satisfying each query node's
// subtree constraints.
func (e *Evaluator) satisfy(q *xpath.QNode, sat map[*xpath.QNode][]tagindex.Posting) error {
	if q.IsValue {
		return ErrValuePredicate
	}
	list := e.tags.List(q.Name)
	for _, c := range q.Children {
		if err := e.satisfy(c, sat); err != nil {
			return err
		}
		list = SemiJoinAnc(list, sat[c], c.Axis == xpath.Child)
	}
	sat[q] = list
	return nil
}
