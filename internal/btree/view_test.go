package btree

import (
	"fmt"
	"testing"

	"github.com/fix-index/fix/internal/storage"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key%04d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val%04d", i)) }

// TestFreezeViewSnapshotIsolation freezes a view and keeps mutating the
// live tree: the view must keep answering exactly from the frozen state.
func TestFreezeViewSnapshotIsolation(t *testing.T) {
	tr := newTree(t, 512)
	const n = 100
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tr.FreezeView(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the live tree: overwrite every even key, add new keys.
	for i := 0; i < n; i += 2 {
		if err := tr.Put(key(i), []byte("LIVE")); err != nil {
			t.Fatal(err)
		}
	}
	for i := n; i < 2*n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if v.Len() != n {
		t.Errorf("view Len = %d, want %d (frozen before inserts)", v.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok, err := v.Get(key(i))
		if err != nil || !ok || string(got) != string(val(i)) {
			t.Fatalf("view Get(%s) = %q, %v, %v; want %q", key(i), got, ok, err, val(i))
		}
	}
	if _, ok, _ := v.Get(key(n)); ok {
		t.Error("view sees a key inserted after the freeze")
	}
	// The live tree sees all mutations.
	got, ok, err := tr.Get(key(0))
	if err != nil || !ok || string(got) != "LIVE" {
		t.Fatalf("live Get(key0) = %q, %v, %v; want LIVE", got, ok, err)
	}
	// A full view scan yields exactly the frozen entries, in order.
	count := 0
	err = v.Scan(nil, nil, func(k, val []byte) bool {
		if string(k) != string(key(count)) {
			t.Fatalf("scan key %d = %s, want %s", count, k, key(count))
		}
		count++
		return true
	})
	if err != nil || count != n {
		t.Fatalf("view scan: count = %d, err = %v; want %d", count, err, n)
	}
}

// TestFreezeViewSharesUnchangedPages verifies the copy-on-write contract:
// consecutive views share the buffers of pages untouched between freezes.
func TestFreezeViewSharesUnchangedPages(t *testing.T) {
	tr := newTree(t, 512)
	for i := 0; i < 200; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	v1, err := tr.FreezeView(nil)
	if err != nil {
		t.Fatal(err)
	}
	// No mutation in between: the second view must share every buffer.
	v2, err := tr.FreezeView(v1)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id < len(v1.pages); id++ {
		if v1.pages[id] == nil {
			continue
		}
		if &v1.pages[id][0] != &v2.pages[id][0] {
			t.Fatalf("page %d not shared across an unchanged freeze", id)
		}
	}
	// One insert dirties a handful of pages; the rest stay shared.
	if err := tr.Put(key(1000), val(1000)); err != nil {
		t.Fatal(err)
	}
	v3, err := tr.FreezeView(v2)
	if err != nil {
		t.Fatal(err)
	}
	shared, copied := 0, 0
	for id := 1; id < len(v2.pages); id++ {
		if v2.pages[id] == nil || id >= len(v3.pages) || v3.pages[id] == nil {
			continue
		}
		if &v2.pages[id][0] == &v3.pages[id][0] {
			shared++
		} else {
			copied++
		}
	}
	if shared == 0 {
		t.Error("no pages shared after a single-key insert")
	}
	if copied == 0 {
		t.Error("no pages copied after a single-key insert (dirty tracking broken?)")
	}
	if copied >= shared {
		t.Errorf("copied %d >= shared %d pages for one insert; expected a small dirty set", copied, shared)
	}
	// The new view sees the insert, the old one does not.
	if _, ok, _ := v3.Get(key(1000)); !ok {
		t.Error("v3 missing the key inserted before its freeze")
	}
	if _, ok, _ := v2.Get(key(1000)); ok {
		t.Error("v2 sees a key inserted after its freeze")
	}
}

// TestFreezeViewAfterEviction drives the cache small enough that freeze
// must materialize evicted pages from the file, and verifies the image.
func TestFreezeViewAfterEviction(t *testing.T) {
	tr, err := Create(storage.NewMemFile(), 512, 4) // tiny cache: evicts constantly
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tr.FreezeView(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != n {
		t.Fatalf("view Len = %d, want %d", v.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok, err := v.Get(key(i))
		if err != nil || !ok || string(got) != string(val(i)) {
			t.Fatalf("view Get(%s) = %q, %v, %v", key(i), got, ok, err)
		}
	}
	if v.Stats().PageReads == 0 {
		t.Error("freeze over a tiny cache reported no physical page reads")
	}
}

// TestFreezeViewStatsMerge checks that view activity lands in the owning
// tree's cumulative Stats.
func TestFreezeViewStatsMerge(t *testing.T) {
	tr := newTree(t, 512)
	for i := 0; i < 50; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tr.FreezeView(nil)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Stats().CacheHits
	if _, _, err := v.Get(key(7)); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().CacheHits <= before {
		t.Error("view node accesses not merged into Tree.Stats")
	}
}
