// Package btree implements the disk-based B+tree that FIX uses to index
// feature keys (the paper used Berkeley DB in this role). It is a
// page-oriented tree over the storage.File abstraction with an LRU page
// cache, arbitrary byte-string keys and values, range scans over the leaf
// chain, and I/O accounting for the implementation-independent metrics in
// the experiments (§6.2) and the query traces of internal/obs.
package btree

import (
	"container/list"
	"fmt"
	"sort"

	"github.com/fix-index/fix/internal/storage"
)

// Stats counts pager activity. Every physical page read is by definition
// a cache miss (hits never touch the file), so PageReads doubles as the
// miss counter; Evictions counts pages dropped from the LRU cache to
// admit another, the signal that the working set exceeds the cache.
type Stats struct {
	PageReads  int64 // physical page reads == cache misses
	PageWrites int64 // physical page writes
	CacheHits  int64
	Evictions  int64
}

// Sub returns the field-wise difference s - o, the pager activity that
// happened between two snapshots. The query trace uses it to attribute
// probe-phase I/O.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		PageReads:  s.PageReads - o.PageReads,
		PageWrites: s.PageWrites - o.PageWrites,
		CacheHits:  s.CacheHits - o.CacheHits,
		Evictions:  s.Evictions - o.Evictions,
	}
}

// pager manages fixed-size pages over a File with write-back LRU caching.
type pager struct {
	f        storage.File
	pageSize int
	npages   uint32
	cap      int
	cache    map[uint32]*page
	lru      *list.List // front = most recent
	stats    Stats
	// changed records pages whose content diverged from the most recent
	// frozen View (dirtied or freshly allocated since then). FreezeView
	// copies exactly these pages and clears the set, so consecutive views
	// share the buffers of everything else.
	changed map[uint32]bool
	// writeErr is the first background write-back failure since the last
	// fully successful flush. Eviction write-backs are best effort (the
	// victim stays resident and dirty on failure), so the error must be
	// surfaced at the next flush/Sync, or a caller could believe a commit
	// succeeded when data never reached the disk.
	writeErr error
}

type page struct {
	id    uint32
	buf   []byte
	dirty bool
	elem  *list.Element
}

// payload returns the node/meta portion of the page, after the checksum
// header.
func (pg *page) payload() []byte { return pg.buf[pageHeaderSize:] }

func newPager(f storage.File, pageSize, cacheSize int) *pager {
	if cacheSize < 8 {
		cacheSize = 8
	}
	return &pager{
		f:        f,
		pageSize: pageSize,
		cap:      cacheSize,
		cache:    make(map[uint32]*page, cacheSize),
		lru:      list.New(),
		changed:  make(map[uint32]bool),
	}
}

// read returns the page with the given id, loading it if needed.
func (p *pager) read(id uint32) (*page, error) {
	if pg, ok := p.cache[id]; ok {
		p.stats.CacheHits++
		p.lru.MoveToFront(pg.elem)
		return pg, nil
	}
	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("btree: reading page %d: %w", id, err)
	}
	if err := verifyPage(id, buf); err != nil {
		return nil, err
	}
	p.stats.PageReads++
	return p.admit(id, buf), nil
}

// alloc appends a fresh zeroed page.
func (p *pager) alloc() (*page, error) {
	id := p.npages
	p.npages++
	pg := p.admit(id, make([]byte, p.pageSize))
	pg.dirty = true
	p.changed[id] = true
	return pg, nil
}

func (p *pager) admit(id uint32, buf []byte) *page {
	pg := &page{id: id, buf: buf}
	pg.elem = p.lru.PushFront(pg)
	p.cache[id] = pg
	for p.lru.Len() > p.cap {
		tail := p.lru.Back()
		victim := tail.Value.(*page)
		if victim.dirty {
			// Best effort write-back; errors surface on Flush/Sync.
			if err := p.writePage(victim); err == nil {
				victim.dirty = false
			} else {
				// Keep the victim resident rather than losing data, and
				// record the failure so flush cannot silently succeed.
				p.writeErr = err
				p.lru.MoveToFront(tail)
				break
			}
		}
		p.lru.Remove(tail)
		delete(p.cache, victim.id)
		p.stats.Evictions++
	}
	return pg
}

func (p *pager) markDirty(pg *page) {
	pg.dirty = true
	p.changed[pg.id] = true
}

func (p *pager) writePage(pg *page) error {
	stampPage(pg.buf)
	if _, err := p.f.WriteAt(pg.buf, int64(pg.id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("btree: writing page %d: %w", pg.id, err)
	}
	p.stats.PageWrites++
	return nil
}

// dirtyIDs returns the ids of all dirty pages in ascending order, so
// flushes and journal commits are deterministic.
func (p *pager) dirtyIDs() []uint32 {
	var ids []uint32
	for id, pg := range p.cache {
		if pg.dirty {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// flush writes all dirty pages back and syncs the file. Pages whose
// eviction write-back failed earlier are still dirty and resident, so a
// fully successful flush makes every page durable and clears the sticky
// write error; anything less reports a failure.
func (p *pager) flush() error {
	for _, id := range p.dirtyIDs() {
		pg := p.cache[id]
		if err := p.writePage(pg); err != nil {
			p.writeErr = err
			return err
		}
		pg.dirty = false
	}
	if err := p.f.Sync(); err != nil {
		p.writeErr = err
		return err
	}
	p.writeErr = nil
	return nil
}
