// Package btree implements the disk-based B+tree that FIX uses to index
// feature keys (the paper used Berkeley DB in this role). It is a
// page-oriented tree over the storage.File abstraction with an LRU page
// cache, arbitrary byte-string keys and values, range scans over the leaf
// chain, and I/O accounting for the implementation-independent metrics in
// the experiments.
package btree

import (
	"container/list"
	"fmt"

	"github.com/fix-index/fix/internal/storage"
)

// Stats counts pager activity.
type Stats struct {
	PageReads  int64 // physical page reads
	PageWrites int64 // physical page writes
	CacheHits  int64
}

// pager manages fixed-size pages over a File with write-back LRU caching.
type pager struct {
	f        storage.File
	pageSize int
	npages   uint32
	cap      int
	cache    map[uint32]*page
	lru      *list.List // front = most recent
	stats    Stats
}

type page struct {
	id    uint32
	buf   []byte
	dirty bool
	elem  *list.Element
}

func newPager(f storage.File, pageSize, cacheSize int) *pager {
	if cacheSize < 8 {
		cacheSize = 8
	}
	return &pager{
		f:        f,
		pageSize: pageSize,
		cap:      cacheSize,
		cache:    make(map[uint32]*page, cacheSize),
		lru:      list.New(),
	}
}

// read returns the page with the given id, loading it if needed.
func (p *pager) read(id uint32) (*page, error) {
	if pg, ok := p.cache[id]; ok {
		p.stats.CacheHits++
		p.lru.MoveToFront(pg.elem)
		return pg, nil
	}
	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return nil, fmt.Errorf("btree: reading page %d: %w", id, err)
	}
	p.stats.PageReads++
	return p.admit(id, buf), nil
}

// alloc appends a fresh zeroed page.
func (p *pager) alloc() (*page, error) {
	id := p.npages
	p.npages++
	pg := p.admit(id, make([]byte, p.pageSize))
	pg.dirty = true
	return pg, nil
}

func (p *pager) admit(id uint32, buf []byte) *page {
	pg := &page{id: id, buf: buf}
	pg.elem = p.lru.PushFront(pg)
	p.cache[id] = pg
	for p.lru.Len() > p.cap {
		tail := p.lru.Back()
		victim := tail.Value.(*page)
		if victim.dirty {
			// Best effort write-back; errors surface on Flush/Sync.
			if err := p.writePage(victim); err == nil {
				victim.dirty = false
			} else {
				// Keep the victim resident rather than losing data.
				p.lru.MoveToFront(tail)
				break
			}
		}
		p.lru.Remove(tail)
		delete(p.cache, victim.id)
	}
	return pg
}

func (p *pager) markDirty(pg *page) { pg.dirty = true }

func (p *pager) writePage(pg *page) error {
	if _, err := p.f.WriteAt(pg.buf, int64(pg.id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("btree: writing page %d: %w", pg.id, err)
	}
	p.stats.PageWrites++
	return nil
}

// flush writes all dirty pages back.
func (p *pager) flush() error {
	for _, pg := range p.cache {
		if pg.dirty {
			if err := p.writePage(pg); err != nil {
				return err
			}
			pg.dirty = false
		}
	}
	return p.f.Sync()
}
