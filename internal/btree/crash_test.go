package btree

import (
	"errors"
	"fmt"
	"testing"

	"github.com/fix-index/fix/internal/storage"
)

func fillTree(t *testing.T, tr *Tree, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%05d", i))
		if err := tr.Put(k, []byte(fmt.Sprintf("val%05d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
}

func TestCorruptPageDetected(t *testing.T) {
	mem := storage.NewMemFile()
	tr, err := Create(mem, 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	fillTree(t, tr, 200)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte on every page except the meta page.
	sz, err := mem.Size()
	if err != nil {
		t.Fatal(err)
	}
	one := []byte{0xFF}
	for off := int64(512) + 100; off < sz; off += 512 {
		if _, err := mem.WriteAt(one, off); err != nil {
			t.Fatal(err)
		}
	}

	re, err := Open(mem, 0)
	if err != nil {
		t.Fatalf("open with intact meta page: %v", err)
	}
	if _, _, err := re.Get([]byte("key00000")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupt page: got %v, want ErrCorrupt", err)
	}
	if err := re.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify: got %v, want ErrCorrupt", err)
	}
}

func TestCorruptMetaPageRejectedAtOpen(t *testing.T) {
	mem := storage.NewMemFile()
	tr, err := Create(mem, 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	fillTree(t, tr, 10)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// Damage the meta page past the magic, so only the checksum can tell.
	if _, err := mem.WriteAt([]byte{0xFF}, pageHeaderSize+20); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(mem, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt meta page: got %v, want ErrCorrupt", err)
	}
}

func TestTornPageDetected(t *testing.T) {
	mem := storage.NewMemFile()
	tr, err := Create(mem, 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	fillTree(t, tr, 200)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: the first half of page 1 is from a different
	// (zeroed) version than the second half.
	if _, err := mem.WriteAt(make([]byte, 256), 512); err != nil {
		t.Fatal(err)
	}
	re, err := Open(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = re.Scan(nil, nil, func(k, v []byte) bool { return true })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scan over torn page: got %v, want ErrCorrupt", err)
	}
}

// TestEvictionWriteFailureSurfacesAtFlush pins the satellite fix for the
// silent data-loss hazard: if an eviction write-back fails, the page
// stays resident and the error must resurface from Flush, never be
// swallowed.
func TestEvictionWriteFailureSurfacesAtFlush(t *testing.T) {
	pl := &storage.FaultPlan{FailWrite: 1}
	tr, err := Create(pl.Wrap(storage.NewMemFile()), 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	// No write happens until the cache overflows, so the first physical
	// write is an eviction write-back — which the plan fails.
	fillTree(t, tr, 500)
	if !pl.Tripped() {
		t.Fatal("500 inserts at cache size 8 caused no eviction")
	}
	if err := tr.Flush(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Flush after failed eviction: got %v, want the eviction's error", err)
	}
}

// TestTransientEvictionFailureRecovers checks the other half of the
// contract: after a one-off eviction failure, the page is still resident
// and dirty, so a later Flush rewrites it and the tree is fully durable.
func TestTransientEvictionFailureRecovers(t *testing.T) {
	pl := &storage.FaultPlan{FailWrite: 1, OneShot: true}
	mem := storage.NewMemFile()
	tr, err := Create(pl.Wrap(mem), 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	fillTree(t, tr, n)
	if !pl.Tripped() {
		t.Fatal("expected an eviction fault to fire")
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush retry after transient fault: %v", err)
	}
	re, err := Open(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), n)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%05d", i))
		v, ok, err := re.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("val%05d", i) {
			t.Fatalf("Get(%s) = %q, %v, %v", k, v, ok, err)
		}
	}
	if err := re.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCleanTree(t *testing.T) {
	tr := newTree(t, 512)
	fillTree(t, tr, 300)
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
}
