package btree

import (
	"errors"
	"fmt"
	"testing"

	"github.com/fix-index/fix/internal/storage"
)

// flushedTree builds a multi-page tree and flushes it so every page's
// disk copy is current.
func flushedTree(t *testing.T, f storage.File, keys int) *Tree {
	t.Helper()
	tr, err := Create(f, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func flipFileByte(t *testing.T, f storage.File, off int64) {
	t.Helper()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestScrubDiskClean(t *testing.T) {
	f := storage.NewMemFile()
	tr := flushedTree(t, f, 200)
	pages := int(tr.Size() / 512)
	if pages < 4 {
		t.Fatalf("tree too small for the test: %d pages", pages)
	}
	scanned, err := tr.ScrubDisk(3, nil)
	if err != nil {
		t.Fatalf("scrub of a clean tree: %v", err)
	}
	if scanned != pages {
		t.Errorf("scanned %d of %d pages", scanned, pages)
	}
}

func TestScrubDiskDetectsCorruption(t *testing.T) {
	f := storage.NewMemFile()
	tr := flushedTree(t, f, 200)
	// Damage a non-meta page's payload: the checksum must catch it.
	flipFileByte(t, f, 2*512+90)
	scanned, err := tr.ScrubDisk(3, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scrub = %d pages, %v; want ErrCorrupt", scanned, err)
	}
	// The cached copy is still clean, so reads keep working — exactly
	// the latent-rot scenario the scrubber exists for.
	if _, ok, err := tr.Get([]byte("key0007")); err != nil || !ok {
		t.Errorf("cached read after disk rot: %v %v", ok, err)
	}
}

// TestScrubDiskSkipsDirtyPages: a page dirty in the cache has a
// legitimately stale (even garbage) disk copy until the next flush, so
// the scrubber must not read it; after the flush rewrites it, the same
// page verifies again.
func TestScrubDiskSkipsDirtyPages(t *testing.T) {
	f := storage.NewMemFile()
	tr, err := Create(f, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	flipFileByte(t, f, 512+40) // page 1 is the lone root leaf
	if _, err := tr.ScrubDisk(2, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scrub after corruption = %v, want ErrCorrupt", err)
	}
	// Dirtying the page in cache makes its disk copy out of scope.
	if err := tr.Put([]byte("k3"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ScrubDisk(2, nil); err != nil {
		t.Fatalf("scrub with the damaged page dirty in cache: %v", err)
	}
	// The flush rewrites the page, repairing the disk copy.
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	scanned, err := tr.ScrubDisk(2, nil)
	if err != nil {
		t.Fatalf("scrub after flush: %v", err)
	}
	if want := int(tr.Size() / 512); scanned != want {
		t.Errorf("scanned %d of %d pages after flush", scanned, want)
	}
}

func TestScrubDiskPauseAbortsAndPaces(t *testing.T) {
	f := storage.NewMemFile()
	tr := flushedTree(t, f, 200)
	pages := int(tr.Size() / 512)

	var pauses int
	scanned, err := tr.ScrubDisk(1, func() error { pauses++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if scanned != pages || pauses < pages-1 {
		t.Errorf("scanned %d pages with %d pauses; want %d pages, >= %d pauses", scanned, pauses, pages, pages-1)
	}

	sentinel := errors.New("rate limit says stop")
	scanned, err = tr.ScrubDisk(1, func() error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("aborting pause: scrub = %v, want the sentinel", err)
	}
	if scanned != 1 {
		t.Errorf("scanned %d pages before the first pause, want 1", scanned)
	}
}
