package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/fix-index/fix/internal/storage"
)

func newTree(t *testing.T, pageSize int) *Tree {
	t.Helper()
	tr, err := Create(storage.NewMemFile(), pageSize, 32)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBasicPutGet(t *testing.T) {
	tr := newTree(t, 512)
	if err := tr.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get(k1) = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := tr.Get([]byte("missing")); ok {
		t.Error("Get(missing) found something")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	// Overwrite does not change Len.
	if err := tr.Put([]byte("k1"), []byte("V1!")); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len after overwrite = %d", tr.Len())
	}
	v, _, _ = tr.Get([]byte("k1"))
	if string(v) != "V1!" {
		t.Errorf("overwritten value = %q", v)
	}
}

func TestOverwriteGrowthSplits(t *testing.T) {
	// Regression: overwriting with a larger value must split rather than
	// overflow the page (this bit the clustered-index rewrite).
	tr := newTree(t, 512)
	for i := 0; i < 40; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key%03d", i)), []byte("short")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		v := bytes.Repeat([]byte{byte(i)}, 60)
		if err := tr.Put([]byte(fmt.Sprintf("key%03d", i)), v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		v, ok, err := tr.Get([]byte(fmt.Sprintf("key%03d", i)))
		if err != nil || !ok || len(v) != 60 || v[0] != byte(i) {
			t.Fatalf("key%03d: %v %v len=%d", i, ok, err, len(v))
		}
	}
}

func insertionOrders(n int) map[string][]int {
	asc := make([]int, n)
	desc := make([]int, n)
	random := make([]int, n)
	for i := range asc {
		asc[i] = i
		desc[i] = n - 1 - i
		random[i] = i
	}
	rng := rand.New(rand.NewSource(11))
	rng.Shuffle(n, func(i, j int) { random[i], random[j] = random[j], random[i] })
	return map[string][]int{"ascending": asc, "descending": desc, "random": random}
}

func TestManyInsertsAllOrders(t *testing.T) {
	const n = 3000
	for name, order := range insertionOrders(n) {
		t.Run(name, func(t *testing.T) {
			tr := newTree(t, 512)
			for _, i := range order {
				key := []byte(fmt.Sprintf("key-%06d", i))
				val := []byte(fmt.Sprintf("val-%d", i))
				if err := tr.Put(key, val); err != nil {
					t.Fatal(err)
				}
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d, want %d", tr.Len(), n)
			}
			if tr.Height() < 2 {
				t.Errorf("height = %d; expected splits", tr.Height())
			}
			for i := 0; i < n; i++ {
				key := []byte(fmt.Sprintf("key-%06d", i))
				v, ok, err := tr.Get(key)
				if err != nil || !ok || string(v) != fmt.Sprintf("val-%d", i) {
					t.Fatalf("Get(%s) = %q, %v, %v", key, v, ok, err)
				}
			}
			// Full scan must be sorted and complete.
			var prev []byte
			count := 0
			err := tr.Scan(nil, nil, func(k, v []byte) bool {
				if prev != nil && bytes.Compare(prev, k) >= 0 {
					t.Fatalf("scan out of order: %q then %q", prev, k)
				}
				prev = append(prev[:0], k...)
				count++
				return true
			})
			if err != nil || count != n {
				t.Fatalf("scan count = %d, err = %v", count, err)
			}
		})
	}
}

func TestScanRanges(t *testing.T) {
	tr := newTree(t, 512)
	for i := 0; i < 100; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("%03d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	collect := func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}
	if err := tr.Scan([]byte("010"), []byte("015"), collect); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != "010" || got[4] != "014" {
		t.Errorf("range scan = %v", got)
	}
	// From a key that does not exist.
	got = nil
	if err := tr.Scan([]byte("0105"), []byte("013"), collect); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "011" {
		t.Errorf("inexact range scan = %v", got)
	}
	// Early stop.
	got = nil
	if err := tr.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 3
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("early stop = %v", got)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 512)
	for i := 0; i < 200; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("%04d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 2 {
		ok, err := tr.Delete([]byte(fmt.Sprintf("%04d", i)))
		if err != nil || !ok {
			t.Fatalf("Delete(%04d) = %v, %v", i, ok, err)
		}
	}
	if ok, _ := tr.Delete([]byte("0000")); ok {
		t.Error("double delete reported success")
	}
	if tr.Len() != 100 {
		t.Errorf("Len after deletes = %d", tr.Len())
	}
	for i := 0; i < 200; i++ {
		_, ok, _ := tr.Get([]byte(fmt.Sprintf("%04d", i)))
		if want := i%2 == 1; ok != want {
			t.Errorf("Get(%04d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestPersistence(t *testing.T) {
	f := storage.NewMemFile()
	tr, err := Create(f, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("%05d", i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(f, 16)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 500 || re.Height() != tr.Height() {
		t.Fatalf("reopened len=%d height=%d, want %d/%d", re.Len(), re.Height(), tr.Len(), tr.Height())
	}
	for i := 0; i < 500; i++ {
		v, ok, err := re.Get([]byte(fmt.Sprintf("%05d", i)))
		if err != nil || !ok || string(v) != fmt.Sprint(i) {
			t.Fatalf("reopened Get(%05d) = %q, %v, %v", i, v, ok, err)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	f := storage.NewMemFile()
	if _, err := f.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f, 0); err == nil {
		t.Error("Open on garbage succeeded")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	tr := newTree(t, 512)
	if err := tr.Put(make([]byte, 100), make([]byte, 100)); err == nil {
		t.Error("entry larger than a quarter page accepted")
	}
}

func TestModelRandomOps(t *testing.T) {
	// Model-based test: random put/delete/get/scan against a Go map.
	tr := newTree(t, 512)
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(99))
	key := func() string { return fmt.Sprintf("k%04d", rng.Intn(2000)) }
	for op := 0; op < 20000; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // put
			k, v := key(), fmt.Sprintf("v%d", op)
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 6, 7: // delete
			k := key()
			ok, err := tr.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			_, inModel := model[k]
			if ok != inModel {
				t.Fatalf("Delete(%s) = %v, model has %v", k, ok, inModel)
			}
			delete(model, k)
		default: // get
			k := key()
			v, ok, err := tr.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			want, inModel := model[k]
			if ok != inModel || (ok && string(v) != want) {
				t.Fatalf("Get(%s) = %q, %v; model %q, %v", k, v, ok, want, inModel)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	// Final scan must equal the sorted model.
	var wantKeys []string
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	i := 0
	err := tr.Scan(nil, nil, func(k, v []byte) bool {
		if i >= len(wantKeys) || string(k) != wantKeys[i] || string(v) != model[wantKeys[i]] {
			t.Fatalf("scan position %d: got %q=%q", i, k, v)
		}
		i++
		return true
	})
	if err != nil || i != len(wantKeys) {
		t.Fatalf("scan covered %d of %d (err=%v)", i, len(wantKeys), err)
	}
}

func TestStatsAndClearCache(t *testing.T) {
	tr := newTree(t, 512)
	for i := 0; i < 1000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.ClearCache(); err != nil {
		t.Fatal(err)
	}
	tr.ResetStats()
	if _, _, err := tr.Get([]byte("00500")); err != nil {
		t.Fatal(err)
	}
	cold := tr.Stats()
	if cold.PageReads == 0 {
		t.Error("cold get did no page reads")
	}
	tr.ResetStats()
	if _, _, err := tr.Get([]byte("00500")); err != nil {
		t.Fatal(err)
	}
	warm := tr.Stats()
	if warm.PageReads != 0 || warm.CacheHits == 0 {
		t.Errorf("warm get: %+v", warm)
	}
	if tr.Size() <= 0 {
		t.Error("Size not positive")
	}
}
