package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Every on-disk page carries a small header so that torn writes and bit
// rot are detected instead of silently mis-decoded:
//
//	offset 0..3  CRC-32C (Castagnoli) of bytes 4..pageSize-1
//	offset 4     page format version
//	offset 5..7  reserved (zero)
//	offset 8..   payload (meta fields on page 0, a node elsewhere)
//
// The checksum is stamped immediately before every physical write and
// verified on every physical read; cached pages are authoritative and not
// re-verified.
const (
	pageHeaderSize    = 8
	pageFormatVersion = 1
)

// ErrCorrupt reports that on-disk data failed validation: a checksum
// mismatch, an unknown format version, or a structurally invalid page.
// Callers distinguish it from I/O errors with errors.Is and can fall back
// to scanning the primary store, which never misses a match.
var ErrCorrupt = errors.New("btree: corrupt page")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// stampPage writes the format version and checksum into buf's header.
func stampPage(buf []byte) {
	buf[4] = pageFormatVersion
	buf[5], buf[6], buf[7] = 0, 0, 0
	binary.BigEndian.PutUint32(buf[0:4], crc32.Checksum(buf[4:], crcTable))
}

// verifyPage checks buf's header against its contents.
func verifyPage(id uint32, buf []byte) error {
	want := binary.BigEndian.Uint32(buf[0:4])
	if got := crc32.Checksum(buf[4:], crcTable); got != want {
		return fmt.Errorf("%w: page %d checksum %08x, want %08x", ErrCorrupt, id, got, want)
	}
	if buf[4] != pageFormatVersion {
		return fmt.Errorf("%w: page %d has format version %d, want %d", ErrCorrupt, id, buf[4], pageFormatVersion)
	}
	return nil
}
