package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/fix-index/fix/internal/storage"
)

const (
	magic = "FIXBT002" // 002: checksummed page headers
	// DefaultPageSize is the page size used unless overridden.
	DefaultPageSize = 4096
	// DefaultCacheSize is the default number of cached pages.
	DefaultCacheSize = 256
)

// Tree is a disk-based B+tree with byte-string keys and values. Keys are
// unique; Put overwrites. Keys and values must individually fit in a
// quarter page so that splits always succeed.
//
// Every exported operation takes an internal mutex, so a Tree is safe for
// concurrent use; even read-only operations need the exclusion because
// they move pages through the LRU cache. Scan holds the lock for the
// whole pass, so scan callbacks must not call back into the same Tree.
// For mutex-free concurrent reads, FreezeView materializes an immutable
// View that many goroutines can Get/Scan without any lock.
type Tree struct {
	mu     sync.Mutex
	p      *pager // guarded by mu (the pager owns the page cache, I/O counters, and npages)
	root   uint32 // guarded by mu
	height uint32 // guarded by mu
	count  uint64 // guarded by mu
	vs     viewStats
}

// Create initializes an empty tree on f.
func Create(f storage.File, pageSize, cacheSize int) (*Tree, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < 256 {
		return nil, fmt.Errorf("btree: page size %d too small", pageSize)
	}
	if cacheSize <= 0 {
		cacheSize = DefaultCacheSize
	}
	t := &Tree{p: newPager(f, pageSize, cacheSize)}
	// Page 0 is the meta page.
	if _, err := t.p.alloc(); err != nil {
		return nil, err
	}
	rootPg, err := t.p.alloc()
	if err != nil {
		return nil, err
	}
	rootNode := &node{id: rootPg.id, leaf: true}
	rootNode.encode(rootPg.payload())
	t.p.markDirty(rootPg)
	t.root = rootPg.id
	t.height = 1
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree from f. Corruption of the meta page — a bad
// magic, an implausible page size, or a checksum mismatch — is reported as
// ErrCorrupt so callers can degrade gracefully instead of mis-reading the
// tree.
func Open(f storage.File, cacheSize int) (*Tree, error) {
	// The page size must be known before the meta page can be
	// checksum-verified, so peek at the raw header first.
	var hdr [pageHeaderSize + 40]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: reading meta: %v", ErrCorrupt, err)
	}
	raw := hdr[pageHeaderSize:]
	if string(raw[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, raw[:8])
	}
	pageSize := int(binary.BigEndian.Uint32(raw[8:12]))
	if pageSize < 256 || pageSize > 1<<24 {
		return nil, fmt.Errorf("%w: implausible page size %d", ErrCorrupt, pageSize)
	}
	if cacheSize <= 0 {
		cacheSize = DefaultCacheSize
	}
	t := &Tree{p: newPager(f, pageSize, cacheSize)}
	pg, err := t.p.read(0)
	if err != nil {
		return nil, err
	}
	meta := pg.payload()
	t.root = binary.BigEndian.Uint32(meta[12:16])
	t.p.npages = binary.BigEndian.Uint32(meta[16:20])
	t.count = binary.BigEndian.Uint64(meta[20:28])
	t.height = binary.BigEndian.Uint32(meta[28:32])
	if t.p.npages < 2 || t.root == 0 || t.root >= t.p.npages || t.height == 0 {
		return nil, fmt.Errorf("%w: meta page: npages=%d root=%d height=%d", ErrCorrupt, t.p.npages, t.root, t.height)
	}
	return t, nil
}

func (t *Tree) writeMeta() error {
	pg, err := t.p.read(0)
	if err != nil {
		return err
	}
	meta := pg.payload()
	copy(meta[:8], magic)
	binary.BigEndian.PutUint32(meta[8:12], uint32(t.p.pageSize))
	binary.BigEndian.PutUint32(meta[12:16], t.root)
	binary.BigEndian.PutUint32(meta[16:20], t.p.npages)
	binary.BigEndian.PutUint64(meta[20:28], t.count)
	binary.BigEndian.PutUint32(meta[28:32], t.height)
	t.p.markDirty(pg)
	return nil
}

// Len returns the number of entries.
func (t *Tree) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.count)
}

// Height returns the height of the tree (1 = a single leaf).
func (t *Tree) Height() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.height)
}

// Size returns the file size in bytes (pages allocated × page size).
func (t *Tree) Size() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(t.p.npages) * int64(t.p.pageSize)
}

// Stats returns a snapshot of I/O counters: the pager's, merged with the
// counters of every View frozen from this tree, so a caller differencing
// Stats around a query sees the same deltas whether the query ran against
// the live tree or a frozen view.
func (t *Tree) Stats() Stats {
	t.mu.Lock()
	s := t.p.stats
	t.mu.Unlock()
	vs := t.vs.load()
	s.PageReads += vs.PageReads
	s.CacheHits += vs.CacheHits
	return s
}

// ResetStats zeroes the pager and view counters.
func (t *Tree) ResetStats() {
	t.mu.Lock()
	t.p.stats = Stats{}
	t.mu.Unlock()
	t.vs.pageReads.Store(0)
	t.vs.cacheHits.Store(0)
}

// Flush writes all dirty pages and the meta page.
func (t *Tree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flush()
}

func (t *Tree) flush() error {
	if err := t.writeMeta(); err != nil {
		return err
	}
	return t.p.flush()
}

// payloadSize is the space available to a node on one page.
func (t *Tree) payloadSize() int { return t.p.pageSize - pageHeaderSize }

func (t *Tree) maxEntry() int { return t.payloadSize() / 4 }

func (t *Tree) loadNode(id uint32) (*node, error) {
	pg, err := t.p.read(id)
	if err != nil {
		return nil, err
	}
	return decodeNode(id, pg.payload())
}

func (t *Tree) storeNode(n *node) error {
	pg, err := t.p.read(n.id)
	if err != nil {
		return err
	}
	n.encode(pg.payload())
	t.p.markDirty(pg)
	return nil
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, err := t.findLeaf(key)
	if err != nil {
		return nil, false, err
	}
	i, ok := n.searchLeaf(key)
	if !ok {
		return nil, false, nil
	}
	return n.vals[i], true, nil
}

func (t *Tree) findLeaf(key []byte) (*node, error) {
	id := t.root
	for {
		n, err := t.loadNode(id)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			return n, nil
		}
		id = n.childFor(key)
	}
}

// Put inserts or overwrites the entry for key.
func (t *Tree) Put(key, val []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(key)+len(val)+8 > t.maxEntry() {
		return fmt.Errorf("btree: entry of %d bytes exceeds max %d", len(key)+len(val), t.maxEntry())
	}
	sepKey, newChild, grew, added, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if added {
		t.count++
	}
	if grew {
		// Root split: create a new internal root.
		pg, err := t.p.alloc()
		if err != nil {
			return err
		}
		newRoot := &node{
			id:       pg.id,
			next:     t.root, // leftmost child
			keys:     [][]byte{sepKey},
			children: []uint32{newChild},
		}
		newRoot.encode(pg.payload())
		t.p.markDirty(pg)
		t.root = pg.id
		t.height++
	}
	return nil
}

// insert descends to the leaf, inserts, and propagates splits upward.
// It returns (separator, right sibling id, split?, newEntry?).
func (t *Tree) insert(id uint32, key, val []byte) ([]byte, uint32, bool, bool, error) {
	n, err := t.loadNode(id)
	if err != nil {
		return nil, 0, false, false, err
	}
	if n.leaf {
		i, exact := n.searchLeaf(key)
		if exact {
			// Overwrites may grow the entry past the page capacity, in
			// which case the leaf splits like a fresh insert would.
			n.vals[i] = append([]byte(nil), val...)
			if n.encodedSize() <= t.payloadSize() {
				return nil, 0, false, false, t.storeNode(n)
			}
			sep, rightID, err := t.splitLeaf(n)
			return sep, rightID, true, false, err
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = append([]byte(nil), key...)
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = append([]byte(nil), val...)
		if n.encodedSize() <= t.payloadSize() {
			return nil, 0, false, true, t.storeNode(n)
		}
		sep, rightID, err := t.splitLeaf(n)
		return sep, rightID, true, true, err
	}
	child := n.childFor(key)
	sep, newChild, grew, added, err := t.insert(child, key, val)
	if err != nil || !grew {
		return nil, 0, false, added, err
	}
	// Insert separator and right child into this internal node.
	i := 0
	for i < len(n.keys) && bytes.Compare(n.keys[i], sep) < 0 {
		i++
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, 0)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = newChild
	if n.encodedSize() <= t.payloadSize() {
		return nil, 0, false, added, t.storeNode(n)
	}
	upSep, rightID, err := t.splitInternal(n)
	return upSep, rightID, true, added, err
}

// splitLeaf moves the upper half of n into a new right sibling and returns
// the separator (the right sibling's first key).
func (t *Tree) splitLeaf(n *node) ([]byte, uint32, error) {
	mid := len(n.keys) / 2
	pg, err := t.p.alloc()
	if err != nil {
		return nil, 0, err
	}
	right := &node{
		id:   pg.id,
		leaf: true,
		next: n.next,
		keys: append([][]byte(nil), n.keys[mid:]...),
		vals: append([][]byte(nil), n.vals[mid:]...),
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.next = right.id
	right.encode(pg.payload())
	t.p.markDirty(pg)
	if err := t.storeNode(n); err != nil {
		return nil, 0, err
	}
	return right.keys[0], right.id, nil
}

// splitInternal splits an over-full internal node, promoting the median
// key.
func (t *Tree) splitInternal(n *node) ([]byte, uint32, error) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	pg, err := t.p.alloc()
	if err != nil {
		return nil, 0, err
	}
	right := &node{
		id:       pg.id,
		next:     n.children[mid], // leftmost child of the right node
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]uint32(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid]
	right.encode(pg.payload())
	t.p.markDirty(pg)
	if err := t.storeNode(n); err != nil {
		return nil, 0, err
	}
	return sep, right.id, nil
}

// Delete removes the entry for key, reporting whether it existed. Leaves
// are allowed to underflow (no rebalancing); space is reclaimed only by
// rebuilding, which matches the build-once workload of the FIX index.
func (t *Tree) Delete(key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, err := t.findLeaf(key)
	if err != nil {
		return false, err
	}
	i, ok := n.searchLeaf(key)
	if !ok {
		return false, nil
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	if err := t.storeNode(n); err != nil {
		return false, err
	}
	t.count--
	return true, nil
}

// Scan calls fn for every entry with from <= key < to in key order. A nil
// to scans to the end; a nil from starts at the beginning. fn returning
// false stops the scan. The tree lock is held for the whole scan, so fn
// must not call back into the Tree.
func (t *Tree) Scan(from, to []byte, fn func(key, val []byte) bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.scan(from, to, fn)
}

func (t *Tree) scan(from, to []byte, fn func(key, val []byte) bool) error {
	if from == nil {
		from = []byte{}
	}
	n, err := t.findLeaf(from)
	if err != nil {
		return err
	}
	i, _ := n.searchLeaf(from)
	for {
		for ; i < len(n.keys); i++ {
			if to != nil && bytes.Compare(n.keys[i], to) >= 0 {
				return nil
			}
			if !fn(n.keys[i], n.vals[i]) {
				return nil
			}
		}
		if n.next == 0 {
			return nil
		}
		n, err = t.loadNode(n.next)
		if err != nil {
			return err
		}
		i = 0
	}
}

// ClearCache flushes dirty pages and drops the page cache, so a following
// operation measures cold I/O.
func (t *Tree) ClearCache() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.flush(); err != nil {
		return err
	}
	t.p.cache = make(map[uint32]*page, t.p.cap)
	t.p.lru.Init()
	return nil
}

// PageSize returns the tree's page size in bytes.
func (t *Tree) PageSize() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.p.pageSize
}

// DirtyPage is a checksummed copy of one modified page, ready to be
// journaled before an atomic commit.
type DirtyPage struct {
	ID   uint32
	Data []byte
}

// DirtyPages stamps the meta page and returns checksummed copies of every
// dirty page in id order, without writing anything. A following Flush
// writes byte-identical pages in place, so a journal built from this
// snapshot replays to exactly the committed state.
func (t *Tree) DirtyPages() ([]DirtyPage, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	ids := t.p.dirtyIDs()
	out := make([]DirtyPage, 0, len(ids))
	for _, id := range ids {
		buf := append([]byte(nil), t.p.cache[id].buf...)
		stampPage(buf)
		out = append(out, DirtyPage{ID: id, Data: buf})
	}
	return out, nil
}

// Verify checks the integrity of every allocated page — checksum, format
// version, and node structure — and that the leaf chain holds exactly the
// number of entries the meta page claims. It returns the first problem
// found, wrapping ErrCorrupt for validation failures.
func (t *Tree) Verify() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := uint32(1); id < t.p.npages; id++ {
		pg, err := t.p.read(id)
		if err != nil {
			return err
		}
		if _, err := decodeNode(id, pg.payload()); err != nil {
			return err
		}
	}
	n := 0
	err := t.scan(nil, nil, func(k, v []byte) bool { n++; return true })
	if err != nil {
		return err
	}
	if uint64(n) != t.count {
		return fmt.Errorf("%w: leaf chain holds %d entries, meta page claims %d", ErrCorrupt, n, t.count)
	}
	return nil
}
