package btree

import "fmt"

// ScrubDisk verifies the on-disk image of the tree — page checksums,
// format versions, and node structure — in bounded chunks, releasing the
// tree mutex between chunks so writers and flushes interleave with the
// scan. It is the background scrubber's view of the file: unlike Verify,
// which reads through the page cache and so would happily validate pages
// that only exist in memory, ScrubDisk reads the file directly and
// catches latent on-disk damage (bit rot, torn background write-backs)
// before a query or a reopen trips over it.
//
// Pages that are currently dirty in the cache are skipped: their disk
// copy is legitimately stale (or absent) until the next flush, so only
// clean pages make claims about the file. pause, when non-nil, runs
// between chunks with no locks held; returning an error aborts the scan
// with that error, which is how callers bound the scrubber's I/O rate
// and propagate cancellation.
//
// It returns the number of pages verified and the first problem found,
// wrapping ErrCorrupt for validation failures.
func (t *Tree) ScrubDisk(chunk int, pause func() error) (int, error) {
	if chunk <= 0 {
		chunk = 64
	}
	scanned := 0
	var buf []byte
	for start := uint32(0); ; {
		t.mu.Lock()
		if start >= t.p.npages {
			t.mu.Unlock()
			return scanned, nil
		}
		end := start + uint32(chunk)
		if end > t.p.npages {
			end = t.p.npages
		}
		if len(buf) != t.p.pageSize {
			buf = make([]byte, t.p.pageSize)
		}
		for id := start; id < end; id++ {
			if pg, ok := t.p.cache[id]; ok && pg.dirty {
				continue
			}
			if _, err := t.p.f.ReadAt(buf, int64(id)*int64(t.p.pageSize)); err != nil {
				t.mu.Unlock()
				return scanned, fmt.Errorf("btree: scrub: reading page %d: %w", id, err)
			}
			if err := verifyPage(id, buf); err != nil {
				t.mu.Unlock()
				return scanned, fmt.Errorf("btree: scrub: %w", err)
			}
			if id > 0 {
				if _, err := decodeNode(id, buf[pageHeaderSize:]); err != nil {
					t.mu.Unlock()
					return scanned, fmt.Errorf("btree: scrub: %w", err)
				}
			}
			scanned++
		}
		t.mu.Unlock()
		start = end
		if pause != nil {
			if err := pause(); err != nil {
				return scanned, err
			}
		}
	}
}
