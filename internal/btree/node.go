package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// On-page node layout. All integers big-endian.
//
//	offset 0     type: 1 = leaf, 2 = internal
//	offset 1..2  number of keys
//	offset 3..6  leaf: next-leaf page id (0 = none)
//	             internal: leftmost child page id
//	offset 7..15 reserved
//	offset 16..  cells
//
// Leaf cell:     keyLen u16, valLen u16, key bytes, value bytes
// Internal cell: keyLen u16, key bytes, child page id u32
//
// An internal node with k keys has k+1 children: the leftmost child in the
// header plus one per cell; cell i's child holds keys >= cell i's key.

const (
	nodeHeaderSize = 16
	typeLeaf       = 1
	typeInternal   = 2
)

// node is the decoded in-memory form of a page.
type node struct {
	id       uint32
	leaf     bool
	next     uint32 // leaf: next-leaf page; internal: leftmost child
	keys     [][]byte
	vals     [][]byte // leaf only
	children []uint32 // internal only, parallel to keys (child right of keys[i])
}

func decodeNode(id uint32, buf []byte) (*node, error) {
	if len(buf) < nodeHeaderSize {
		return nil, fmt.Errorf("%w: page %d too small", ErrCorrupt, id)
	}
	n := &node{id: id}
	switch buf[0] {
	case typeLeaf:
		n.leaf = true
	case typeInternal:
	default:
		return nil, fmt.Errorf("%w: page %d has unknown type %d", ErrCorrupt, id, buf[0])
	}
	nkeys := int(binary.BigEndian.Uint16(buf[1:3]))
	n.next = binary.BigEndian.Uint32(buf[3:7])
	pos := nodeHeaderSize
	for i := 0; i < nkeys; i++ {
		if pos+2 > len(buf) {
			return nil, fmt.Errorf("%w: page %d cell %d overruns page", ErrCorrupt, id, i)
		}
		kl := int(binary.BigEndian.Uint16(buf[pos : pos+2]))
		pos += 2
		if n.leaf {
			if pos+2 > len(buf) {
				return nil, fmt.Errorf("%w: page %d cell %d overruns page", ErrCorrupt, id, i)
			}
			vl := int(binary.BigEndian.Uint16(buf[pos : pos+2]))
			pos += 2
			if pos+kl+vl > len(buf) {
				return nil, fmt.Errorf("%w: page %d cell %d overruns page", ErrCorrupt, id, i)
			}
			n.keys = append(n.keys, append([]byte(nil), buf[pos:pos+kl]...))
			pos += kl
			n.vals = append(n.vals, append([]byte(nil), buf[pos:pos+vl]...))
			pos += vl
		} else {
			if pos+kl+4 > len(buf) {
				return nil, fmt.Errorf("%w: page %d cell %d overruns page", ErrCorrupt, id, i)
			}
			n.keys = append(n.keys, append([]byte(nil), buf[pos:pos+kl]...))
			pos += kl
			n.children = append(n.children, binary.BigEndian.Uint32(buf[pos:pos+4]))
			pos += 4
		}
	}
	return n, nil
}

// encodedSize returns the number of bytes the node occupies on a page.
func (n *node) encodedSize() int {
	size := nodeHeaderSize
	for i, k := range n.keys {
		if n.leaf {
			size += 4 + len(k) + len(n.vals[i])
		} else {
			size += 2 + len(k) + 4
		}
	}
	return size
}

// encode serializes the node into buf (a full page). It panics if the node
// does not fit; callers must split before encoding.
func (n *node) encode(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = typeLeaf
	} else {
		buf[0] = typeInternal
	}
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	binary.BigEndian.PutUint32(buf[3:7], n.next)
	pos := nodeHeaderSize
	for i, k := range n.keys {
		binary.BigEndian.PutUint16(buf[pos:pos+2], uint16(len(k)))
		pos += 2
		if n.leaf {
			v := n.vals[i]
			binary.BigEndian.PutUint16(buf[pos:pos+2], uint16(len(v)))
			pos += 2
			copy(buf[pos:], k)
			pos += len(k)
			copy(buf[pos:], v)
			pos += len(v)
		} else {
			copy(buf[pos:], k)
			pos += len(k)
			binary.BigEndian.PutUint32(buf[pos:pos+4], n.children[i])
			pos += 4
		}
	}
}

// searchLeaf returns the index of the first key >= target and whether an
// exact match exists.
func (n *node) searchLeaf(target []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && bytes.Equal(n.keys[lo], target)
}

// childFor returns the child page to descend into for target: the child
// right of the last key <= target, or the leftmost child.
func (n *node) childFor(target []byte) uint32 {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], target) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return n.next // leftmost child
	}
	return n.children[lo-1]
}
