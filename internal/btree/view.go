package btree

import (
	"bytes"
	"fmt"
	"sync/atomic"
)

// viewStats counts the activity of frozen views: pages materialized from
// the file at freeze time (physical reads) and node accesses served from
// a view's in-memory image (cache hits — a view is a fully resident
// cache). The fields are atomic because views are read without any lock;
// one instance is shared by a Tree and every View frozen from it, so the
// Tree's merged Stats stay cumulative across generations.
type viewStats struct {
	pageReads atomic.Int64
	cacheHits atomic.Int64
}

// load returns the counters as a Stats snapshot.
func (vs *viewStats) load() Stats {
	return Stats{PageReads: vs.pageReads.Load(), CacheHits: vs.cacheHits.Load()}
}

// View is an immutable snapshot of a Tree. Every allocated page is
// materialized in memory at freeze time, so Get and Scan decode from
// private buffers and never touch the pager, the file, or any lock —
// a View is safe for unlimited concurrent readers while the owning Tree
// keeps mutating. Consecutive views share the buffers of pages that did
// not change between freezes, so the incremental memory cost of a new
// view is proportional to the pages dirtied since the last one.
type View struct {
	owner    *Tree
	pages    [][]byte // immutable after publish (per-id page payloads; entry 0, the meta page, is nil)
	root     uint32   // immutable after publish
	height   uint32   // immutable after publish
	count    uint64   // immutable after publish
	pageSize int      // immutable after publish
	stats    *viewStats
}

// FreezeView materializes the tree's current state as an immutable View.
// Pages unchanged since prev (a View previously frozen from this same
// tree, or nil) share prev's buffers; changed pages are copied from the
// page cache, or read and verified from the file when they were evicted
// (eviction writes dirty pages back, so the file holds the latest content
// of every uncached page). The freeze never writes: the tree's dirty
// state and the shadow-commit protocol are unaffected.
func (t *Tree) FreezeView(prev *View) (*View, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev != nil && prev.owner != t {
		prev = nil
	}
	npages := t.p.npages
	pages := make([][]byte, npages)
	if prev != nil {
		copy(pages, prev.pages)
	}
	for id := uint32(1); id < npages; id++ {
		if pages[id] != nil && !t.p.changed[id] {
			continue
		}
		if pg, ok := t.p.cache[id]; ok {
			pages[id] = append([]byte(nil), pg.payload()...)
			continue
		}
		buf := make([]byte, t.p.pageSize)
		if _, err := t.p.f.ReadAt(buf, int64(id)*int64(t.p.pageSize)); err != nil {
			return nil, fmt.Errorf("btree: freezing page %d: %w", id, err)
		}
		if err := verifyPage(id, buf); err != nil {
			return nil, err
		}
		t.vs.pageReads.Add(1)
		pages[id] = buf[pageHeaderSize:]
	}
	clear(t.p.changed)
	return &View{
		owner:    t,
		pages:    pages,
		root:     t.root,
		height:   t.height,
		count:    t.count,
		pageSize: t.p.pageSize,
		stats:    &t.vs,
	}, nil
}

// node decodes the node on page id from the view's materialized image.
func (v *View) node(id uint32) (*node, error) {
	if id == 0 || id >= uint32(len(v.pages)) || v.pages[id] == nil {
		return nil, fmt.Errorf("%w: view references page %d of %d", ErrCorrupt, id, len(v.pages))
	}
	v.stats.cacheHits.Add(1)
	return decodeNode(id, v.pages[id])
}

// Len returns the number of entries at freeze time.
func (v *View) Len() int { return int(v.count) }

// Height returns the tree height at freeze time.
func (v *View) Height() int { return int(v.height) }

// Size returns the byte size of the frozen image (pages × page size).
func (v *View) Size() int64 { return int64(len(v.pages)) * int64(v.pageSize) }

// Stats returns the cumulative view-side counters of the owning tree:
// freeze-time physical reads and in-memory node accesses. It is
// lock-free; the query trace differences it around the probe phase.
func (v *View) Stats() Stats { return v.stats.load() }

// Get returns the value stored under key in the frozen image.
func (v *View) Get(key []byte) ([]byte, bool, error) {
	n, err := v.findLeaf(key)
	if err != nil {
		return nil, false, err
	}
	i, ok := n.searchLeaf(key)
	if !ok {
		return nil, false, nil
	}
	return n.vals[i], true, nil
}

func (v *View) findLeaf(key []byte) (*node, error) {
	id := v.root
	for {
		n, err := v.node(id)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			return n, nil
		}
		id = n.childFor(key)
	}
}

// Scan calls fn for every entry with from <= key < to in key order, over
// the frozen image. A nil to scans to the end; a nil from starts at the
// beginning; fn returning false stops the scan. Unlike Tree.Scan no lock
// is held, so fn may do anything, including querying the live tree.
func (v *View) Scan(from, to []byte, fn func(key, val []byte) bool) error {
	if from == nil {
		from = []byte{}
	}
	n, err := v.findLeaf(from)
	if err != nil {
		return err
	}
	i, _ := n.searchLeaf(from)
	for {
		for ; i < len(n.keys); i++ {
			if to != nil && bytes.Compare(n.keys[i], to) >= 0 {
				return nil
			}
			if !fn(n.keys[i], n.vals[i]) {
				return nil
			}
		}
		if n.next == 0 {
			return nil
		}
		n, err = v.node(n.next)
		if err != nil {
			return err
		}
		i = 0
	}
}
