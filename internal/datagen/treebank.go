package datagen

import (
	"math/rand"

	"github.com/fix-index/fix/internal/xmltree"
)

// Treebank generates one Treebank-style document: deeply recursive parse
// trees under EMPTY containers, as in the University of Washington
// Treebank XML dump the paper uses. Structures are deep and highly
// selective; the bisimulation graph is large because deep recursive
// contexts rarely repeat exactly (paper §1 and §6.1).
func Treebank(cfg Config) *xmltree.Node {
	rng := rand.New(rand.NewSource(cfg.Seed))
	file := xmltree.Elem("FILE")
	for i := cfg.scale(1800); i > 0; i-- {
		empty := xmltree.Elem("EMPTY")
		for j := between(rng, 1, 2); j > 0; j-- {
			empty.Append(tbSentence(rng, between(rng, 6, 14)))
		}
		file.Append(empty)
	}
	return file
}

// tbSentence generates an S subtree with bounded recursion depth.
func tbSentence(rng *rand.Rand, depth int) *xmltree.Node {
	s := xmltree.Elem("S")
	s.Append(tbNP(rng, depth-1))
	s.Append(tbVP(rng, depth-1))
	if chance(rng, 0.3) {
		s.Append(tbPP(rng, depth-1))
	}
	if depth > 3 && chance(rng, 0.12) {
		s.Append(tbSentence(rng, depth-2))
	}
	return s
}

func tbNP(rng *rand.Rand, depth int) *xmltree.Node {
	np := xmltree.Elem("NP")
	if depth <= 1 {
		np.Append(tbLeaf(rng))
		return np
	}
	switch rng.Intn(10) {
	case 0, 1, 2: // NP -> NP PP
		np.Append(tbNP(rng, depth-1))
		np.Append(tbPP(rng, depth-1))
	case 3, 4: // NP -> NP NP (apposition)
		np.Append(tbNP(rng, depth-1))
		np.Append(tbNP(rng, depth-1))
	case 5: // NP -> NP SBAR
		np.Append(tbNP(rng, depth-1))
		np.Append(tbSBAR(rng, depth-1))
	case 6, 7: // NP -> DT NN
		np.Append(xmltree.Elem("DT", text(rng, 1)))
		np.Append(xmltree.Elem("NN", text(rng, 1)))
	default:
		np.Append(tbLeaf(rng))
	}
	return np
}

func tbVP(rng *rand.Rand, depth int) *xmltree.Node {
	vp := xmltree.Elem("VP")
	vp.Append(xmltree.Elem("VBD", text(rng, 1)))
	if depth <= 1 {
		return vp
	}
	switch rng.Intn(8) {
	case 0, 1, 2:
		vp.Append(tbNP(rng, depth-1))
	case 3:
		vp.Append(tbNP(rng, depth-1))
		vp.Append(tbPP(rng, depth-1))
	case 4:
		vp.Append(tbSBAR(rng, depth-1))
	case 5:
		vp.Append(tbVP(rng, depth-1))
	case 6:
		vp.Append(tbPP(rng, depth-1))
	}
	return vp
}

func tbPP(rng *rand.Rand, depth int) *xmltree.Node {
	pp := xmltree.Elem("PP", xmltree.Elem("IN", text(rng, 1)))
	if depth > 1 {
		pp.Append(tbNP(rng, depth-1))
	} else {
		pp.Append(tbLeaf(rng))
	}
	return pp
}

func tbSBAR(rng *rand.Rand, depth int) *xmltree.Node {
	sbar := xmltree.Elem("SBAR")
	if depth > 2 {
		sbar.Append(tbSentence(rng, depth-1))
	} else {
		sbar.Append(tbLeaf(rng))
	}
	return sbar
}

func tbLeaf(rng *rand.Rand) *xmltree.Node {
	return xmltree.Elem(pick(rng, []string{"PRP", "NN", "NNS", "NNP", "JJ", "CD"}), text(rng, 1))
}
