package datagen_test

import (
	"testing"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/datagen"
	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/xmltree"
)

func TestGenerateAndIndexSmoke(t *testing.T) {
	for _, ds := range datagen.AllDatasets {
		t0 := time.Now()
		st, err := datagen.Generate(ds, datagen.Config{Seed: 42, Scale: 0.05})
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		gen := time.Since(t0)
		elems := 0
		for r := 0; r < st.NumRecords(); r++ {
			cur, err := st.Cursor(uint32(r))
			if err != nil {
				t.Fatal(err)
			}
			var walk func(ref xmltree.Ref)
			walk = func(ref xmltree.Ref) {
				if cur.IsText(ref) {
					return
				}
				elems++
				it := cur.Children(ref)
				for {
					c, ok := it.Next()
					if !ok {
						break
					}
					walk(c)
				}
			}
			walk(0)
		}
		t1 := time.Now()
		ix, err := core.Build(st, core.Options{DepthLimit: datagen.DefaultDepthLimit(ds)})
		if err != nil {
			t.Fatalf("%s: Build: %v", ds, err)
		}
		t.Logf("%-9s gen=%v size=%dKB docs=%d elems=%d ICT=%v entries=%d oversize=%d idx=%dKB pairs=%d maxdepth=%d",
			ds, gen.Round(time.Millisecond), st.Size()/1024, st.NumRecords(), elems,
			time.Since(t1).Round(time.Millisecond), ix.Entries(), ix.OversizeEntries(),
			ix.SizeBytes()/1024, ix.EdgePairs(), ix.MaxDocDepth())
	}
}

func TestDeterminism(t *testing.T) {
	for _, ds := range datagen.AllDatasets {
		a, err := datagen.Generate(ds, datagen.Config{Seed: 5, Scale: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		b, err := datagen.Generate(ds, datagen.Config{Seed: 5, Scale: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if a.Size() != b.Size() || a.NumRecords() != b.NumRecords() {
			t.Errorf("%s: same seed produced different stores (%d/%d vs %d/%d bytes/records)",
				ds, a.Size(), a.NumRecords(), b.Size(), b.NumRecords())
		}
		c, err := datagen.Generate(ds, datagen.Config{Seed: 6, Scale: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if c.Size() == a.Size() {
			t.Logf("%s: different seeds produced equal sizes (possible but suspicious)", ds)
		}
	}
}

func TestScaleGrowsElements(t *testing.T) {
	for _, ds := range datagen.AllDatasets {
		small, err := datagen.Generate(ds, datagen.Config{Seed: 1, Scale: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		big, err := datagen.Generate(ds, datagen.Config{Seed: 1, Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		se, err := small.CountElements()
		if err != nil {
			t.Fatal(err)
		}
		be, err := big.CountElements()
		if err != nil {
			t.Fatal(err)
		}
		if be <= se {
			t.Errorf("%s: scale 0.05 has %d elements, scale 0.01 has %d", ds, be, se)
		}
	}
}

func TestDefaultDepthLimit(t *testing.T) {
	if datagen.DefaultDepthLimit(datagen.TCMDDataset) != 0 {
		t.Error("TCMD should use the collection (depth 0) index")
	}
	for _, ds := range []datagen.Dataset{datagen.DBLPDataset, datagen.XMarkDataset, datagen.TreebankDataset} {
		if datagen.DefaultDepthLimit(ds) != 6 {
			t.Errorf("%s depth limit != 6", ds)
		}
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := datagen.Generate("nope", datagen.Config{}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestQueryVocabularyPresent(t *testing.T) {
	// Every label used by the fixed benchmark queries must occur in the
	// generated data, otherwise those queries are vacuously empty.
	want := map[datagen.Dataset][]string{
		datagen.TCMDDataset:     {"article", "epilog", "acknoledgements", "references", "a_id", "prolog", "keywords", "authors", "author", "contact", "phone"},
		datagen.DBLPDataset:     {"proceedings", "booktitle", "title", "sup", "i", "sub", "article", "number", "author", "inproceedings", "url", "publisher", "year"},
		datagen.XMarkDataset:    {"category", "description", "parlist", "listitem", "text", "closed_auction", "open_auction", "annotation", "seller", "item", "mailbox", "mail", "emph", "keyword", "bold", "to", "name", "payment", "quantity", "shipping"},
		datagen.TreebankDataset: {"EMPTY", "S", "NP", "VP", "PP"},
	}
	for ds, labels := range want {
		st, err := datagen.Generate(ds, datagen.Config{Seed: 3, Scale: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range labels {
			if _, ok := st.Dict().Lookup(l); !ok {
				t.Errorf("%s: label %q missing from generated data", ds, l)
			}
		}
	}
}

func TestRandomQueriesAreValidAndMatch(t *testing.T) {
	st, err := datagen.Generate(datagen.XMarkDataset, datagen.Config{Seed: 9, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	queries := datagen.RandomQueries(st, 11, 30, 4, 3)
	if len(queries) < 20 {
		t.Fatalf("generated only %d queries", len(queries))
	}
	seen := map[string]bool{}
	for _, q := range queries {
		s := q.String()
		if seen[s] {
			t.Errorf("duplicate query %s", s)
		}
		seen[s] = true
		// Carved from real subtrees, every query must match somewhere.
		nq, err := nok.Compile(q.Tree(), st.Dict())
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for rec := 0; rec < st.NumRecords() && !found; rec++ {
			cur, err := st.Cursor(uint32(rec))
			if err != nil {
				t.Fatal(err)
			}
			found = nq.Exists(cur, 0)
		}
		if !found {
			t.Errorf("random query %s matches nothing", s)
		}
	}
}
