package datagen

import (
	"math/rand"

	"github.com/fix-index/fix/internal/xmltree"
)

// XMark generates one XMark-style auction-site document: structure-rich,
// fairly deep, and flat (the bisimulation graph has a large fan-out), so
// almost all random twig patterns are highly selective (paper §6.1). The
// schema covers the paths of the paper's XMark queries: items with
// mailbox/mail/text rich content, categories with recursive
// parlist/listitem descriptions, and open/closed auctions with
// annotations.
func XMark(cfg Config) *xmltree.Node {
	rng := rand.New(rand.NewSource(cfg.Seed))
	site := xmltree.Elem("site")

	regions := xmltree.Elem("regions")
	regionNames := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	itemsPerRegion := cfg.scale(600)
	for _, rn := range regionNames {
		region := xmltree.Elem(rn)
		for i := 0; i < itemsPerRegion; i++ {
			region.Append(xmarkItem(rng))
		}
		regions.Append(region)
	}
	site.Append(regions)

	categories := xmltree.Elem("categories")
	for i := cfg.scale(100); i > 0; i-- {
		cat := xmltree.Elem("category", xmltree.Elem("name", text(rng, 2)))
		cat.Append(xmarkDescription(rng, 3))
		categories.Append(cat)
	}
	site.Append(categories)

	open := xmltree.Elem("open_auctions")
	for i := cfg.scale(2000); i > 0; i-- {
		open.Append(xmarkOpenAuction(rng))
	}
	site.Append(open)

	closed := xmltree.Elem("closed_auctions")
	for i := cfg.scale(1600); i > 0; i-- {
		closed.Append(xmarkClosedAuction(rng))
	}
	site.Append(closed)

	people := xmltree.Elem("people")
	for i := cfg.scale(2550); i > 0; i-- {
		people.Append(xmarkPerson(rng))
	}
	site.Append(people)

	return site
}

// xmarkText builds XMark's rich text content: a text element mixing
// character data with emph/bold/keyword markup, occasionally nested
// (emph/keyword is what the hi-selectivity queries probe).
func xmarkText(rng *rand.Rand, depth int) *xmltree.Node {
	t := xmltree.Elem("text", text(rng, between(rng, 4, 15)))
	if depth <= 0 {
		return t
	}
	if chance(rng, 0.25) {
		emph := xmltree.Elem("emph", text(rng, 2))
		if chance(rng, 0.4) {
			emph.Append(xmltree.Elem("keyword", text(rng, 1)))
		}
		if chance(rng, 0.15) {
			emph.Append(xmltree.Elem("bold", text(rng, 1)))
		}
		t.Append(emph)
	}
	if chance(rng, 0.2) {
		bold := xmltree.Elem("bold", text(rng, 2))
		if chance(rng, 0.3) {
			bold.Append(xmltree.Elem("keyword", text(rng, 1)))
		}
		t.Append(bold)
	}
	if chance(rng, 0.15) {
		t.Append(xmltree.Elem("keyword", text(rng, 1)))
	}
	return t
}

// xmarkDescription is either plain text or a recursive parlist.
func xmarkDescription(rng *rand.Rand, depth int) *xmltree.Node {
	d := xmltree.Elem("description")
	if depth > 0 && chance(rng, 0.45) {
		d.Append(xmarkParlist(rng, depth))
	} else {
		d.Append(xmarkText(rng, 1))
	}
	return d
}

func xmarkParlist(rng *rand.Rand, depth int) *xmltree.Node {
	pl := xmltree.Elem("parlist")
	for i := between(rng, 1, 3); i > 0; i-- {
		li := xmltree.Elem("listitem")
		if depth > 1 && chance(rng, 0.3) {
			li.Append(xmarkParlist(rng, depth-1))
		} else {
			li.Append(xmarkText(rng, 1))
		}
		pl.Append(li)
	}
	return pl
}

func xmarkItem(rng *rand.Rand) *xmltree.Node {
	item := xmltree.Elem("item")
	item.Append(xmltree.Elem("location", text(rng, 1)))
	item.Append(xmltree.Elem("quantity", text(rng, 1)))
	if chance(rng, 0.92) {
		item.Append(xmltree.Elem("name", text(rng, 2)))
	}
	if chance(rng, 0.85) {
		item.Append(xmltree.Elem("payment", text(rng, 2)))
	}
	item.Append(xmarkDescription(rng, 2))
	if chance(rng, 0.8) {
		item.Append(xmltree.Elem("shipping", text(rng, 2)))
	}
	mailbox := xmltree.Elem("mailbox")
	for i := between(rng, 0, 3); i > 0; i-- {
		mail := xmltree.Elem("mail",
			xmltree.Elem("from", text(rng, 2)),
			xmltree.Elem("date", text(rng, 1)))
		if chance(rng, 0.85) {
			mail.Append(xmltree.Elem("to", text(rng, 2)))
		}
		mail.Append(xmarkText(rng, 2))
		mailbox.Append(mail)
	}
	item.Append(mailbox)
	return item
}

func xmarkOpenAuction(rng *rand.Rand) *xmltree.Node {
	oa := xmltree.Elem("open_auction")
	oa.Append(xmltree.Elem("initial", text(rng, 1)))
	for i := between(rng, 0, 4); i > 0; i-- {
		oa.Append(xmltree.Elem("bidder",
			xmltree.Elem("date", text(rng, 1)),
			xmltree.Elem("personref", text(rng, 1)),
			xmltree.Elem("increase", text(rng, 1))))
	}
	if chance(rng, 0.7) {
		oa.Append(xmltree.Elem("seller", text(rng, 1)))
	}
	if chance(rng, 0.8) {
		ann := xmltree.Elem("annotation",
			xmltree.Elem("author", text(rng, 1)))
		ann.Append(xmarkDescription(rng, 2))
		oa.Append(ann)
	}
	oa.Append(xmltree.Elem("quantity", text(rng, 1)))
	oa.Append(xmltree.Elem("itemref", text(rng, 1)))
	return oa
}

func xmarkClosedAuction(rng *rand.Rand) *xmltree.Node {
	ca := xmltree.Elem("closed_auction",
		xmltree.Elem("seller", text(rng, 1)),
		xmltree.Elem("buyer", text(rng, 1)),
		xmltree.Elem("itemref", text(rng, 1)),
		xmltree.Elem("price", text(rng, 1)),
		xmltree.Elem("date", text(rng, 1)))
	if chance(rng, 0.75) {
		ann := xmltree.Elem("annotation",
			xmltree.Elem("author", text(rng, 1)))
		ann.Append(xmarkDescription(rng, 2))
		ca.Append(ann)
	}
	return ca
}

func xmarkPerson(rng *rand.Rand) *xmltree.Node {
	p := xmltree.Elem("person", xmltree.Elem("name", text(rng, 2)))
	if chance(rng, 0.8) {
		p.Append(xmltree.Elem("emailaddress", text(rng, 1)))
	}
	if chance(rng, 0.4) {
		p.Append(xmltree.Elem("phone", text(rng, 1)))
	}
	if chance(rng, 0.5) {
		p.Append(xmltree.Elem("address",
			xmltree.Elem("street", text(rng, 2)),
			xmltree.Elem("city", text(rng, 1)),
			xmltree.Elem("country", text(rng, 1)),
			xmltree.Elem("zipcode", text(rng, 1))))
	}
	if chance(rng, 0.3) {
		watches := xmltree.Elem("watches")
		for i := between(rng, 1, 3); i > 0; i-- {
			watches.Append(xmltree.Elem("watch", text(rng, 1)))
		}
		p.Append(watches)
	}
	return p
}
