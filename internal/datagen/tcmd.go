package datagen

import (
	"math/rand"

	"github.com/fix-index/fix/internal/xmltree"
)

// tcmdDoc generates one XBench-TCMD-style article: small (tens of
// elements), text-centric, with a handful of optional sub-elements so the
// collection is nearly regular. The element vocabulary includes the paths
// used by the paper's representative queries (§6.2), including the
// original's "acknoledgements" spelling.
//
// The optional-element probabilities are tuned so the three representative
// queries land in the paper's selectivity bands: /article[epilog]/prolog/
// authors/author matches most documents (low selectivity), the
// keywords+phone query about half (medium), and the
// acknoledgements+references query few (high).
func tcmdDoc(rng *rand.Rand) *xmltree.Node {
	article := xmltree.Elem("article")

	prolog := xmltree.Elem("prolog")
	prolog.Append(xmltree.Elem("title", text(rng, 4)))
	if chance(rng, 0.55) {
		prolog.Append(xmltree.Elem("dateline",
			xmltree.Elem("date", text(rng, 1)),
			xmltree.Elem("country", text(rng, 1))))
	}
	if chance(rng, 0.93) {
		authors := xmltree.Elem("authors")
		for i := between(rng, 1, 3); i > 0; i-- {
			author := xmltree.Elem("author", xmltree.Elem("name", text(rng, 2)))
			if chance(rng, 0.78) {
				contact := xmltree.Elem("contact")
				if chance(rng, 0.72) {
					contact.Append(xmltree.Elem("phone", text(rng, 1)))
				}
				if chance(rng, 0.8) {
					contact.Append(xmltree.Elem("email", text(rng, 1)))
				}
				author.Append(contact)
			}
			if chance(rng, 0.4) {
				author.Append(xmltree.Elem("affiliation", text(rng, 3)))
			}
			authors.Append(author)
		}
		prolog.Append(authors)
	}
	if chance(rng, 0.62) {
		kw := xmltree.Elem("keywords")
		for i := between(rng, 1, 5); i > 0; i-- {
			kw.Append(xmltree.Elem("keyword", text(rng, 1)))
		}
		prolog.Append(kw)
	}
	if chance(rng, 0.5) {
		prolog.Append(xmltree.Elem("genre", text(rng, 1)))
	}
	article.Append(prolog)

	body := xmltree.Elem("body")
	for i := between(rng, 1, 4); i > 0; i-- {
		section := xmltree.Elem("section")
		if chance(rng, 0.7) {
			section.Append(xmltree.Elem("title", text(rng, 3)))
		}
		for j := between(rng, 1, 4); j > 0; j-- {
			section.Append(xmltree.Elem("p", text(rng, between(rng, 8, 30))))
		}
		body.Append(section)
	}
	article.Append(body)

	if chance(rng, 0.9) {
		epilog := xmltree.Elem("epilog")
		if chance(rng, 0.34) {
			epilog.Append(xmltree.Elem("acknoledgements", text(rng, 6)))
		}
		if chance(rng, 0.64) {
			refs := xmltree.Elem("references")
			for i := between(rng, 1, 6); i > 0; i-- {
				refs.Append(xmltree.Elem("a_id", text(rng, 1)))
			}
			epilog.Append(refs)
		}
		if chance(rng, 0.5) {
			epilog.Append(xmltree.Elem("date", text(rng, 1)))
		}
		article.Append(epilog)
	}
	return article
}
