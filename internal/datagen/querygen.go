package datagen

import (
	"math/rand"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// RandomQueries samples n distinct random twig queries from the data in
// st, as the paper does for Figure 5 (1000 random queries per dataset).
// Each query is derived from an actual subtree: a random element is
// chosen, then a random sub-twig of bounded depth and branching is carved
// out of its subtree, so generated queries always have at least one
// match somewhere in the data. Queries are //-rooted twigs.
func RandomQueries(st *storage.Store, seed int64, n, maxDepth, maxBranch int) []*xpath.Path {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]struct{})
	var out []*xpath.Path
	attempts := 0
	for len(out) < n && attempts < n*50 {
		attempts++
		rec := uint32(rng.Intn(st.NumRecords()))
		cur, err := st.Cursor(rec)
		if err != nil {
			continue
		}
		ref, ok := randomElement(rng, cur)
		if !ok {
			continue
		}
		q := carveTwig(rng, cur, ref, maxDepth, maxBranch)
		if q == nil {
			continue
		}
		s := q.String()
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		path, err := xpath.Parse(s)
		if err != nil {
			continue
		}
		out = append(out, path)
	}
	return out
}

// randomElement picks a uniformly random element of the record by
// reservoir sampling over a preorder walk.
func randomElement(rng *rand.Rand, cur xmltree.Cursor) (xmltree.Ref, bool) {
	var chosen xmltree.Ref
	count := 0
	var walk func(r xmltree.Ref)
	walk = func(r xmltree.Ref) {
		if cur.IsText(r) {
			return
		}
		count++
		if rng.Intn(count) == 0 {
			chosen = r
		}
		it := cur.Children(r)
		for {
			c, ok := it.Next()
			if !ok {
				return
			}
			walk(c)
		}
	}
	walk(0)
	return chosen, count > 0
}

// carveTwig builds a twig query mirroring part of the subtree at ref.
func carveTwig(rng *rand.Rand, cur xmltree.Cursor, ref xmltree.Ref, maxDepth, maxBranch int) *xpath.QNode {
	root := carve(rng, cur, ref, maxDepth, maxBranch)
	if root == nil {
		return nil
	}
	root.Axis = xpath.Descendant
	// Reject trivial single-node queries: they are almost always
	// selectivity-0-or-1 probes the paper excludes anyway.
	if len(root.Children) == 0 {
		return nil
	}
	return root
}

func carve(rng *rand.Rand, cur xmltree.Cursor, ref xmltree.Ref, depth, maxBranch int) *xpath.QNode {
	if cur.IsText(ref) {
		return nil
	}
	n := &xpath.QNode{Name: cur.Label(ref), Axis: xpath.Child}
	if depth <= 1 {
		return n
	}
	// Collect distinct-label element children, then keep a random subset.
	var kids []xmltree.Ref
	seen := make(map[string]struct{})
	it := cur.Children(ref)
	for {
		c, ok := it.Next()
		if !ok {
			break
		}
		if cur.IsText(c) {
			continue
		}
		l := cur.Label(c)
		if _, dup := seen[l]; dup {
			continue
		}
		seen[l] = struct{}{}
		kids = append(kids, c)
	}
	rng.Shuffle(len(kids), func(i, j int) { kids[i], kids[j] = kids[j], kids[i] })
	take := between(rng, 1, maxBranch)
	if take > len(kids) {
		take = len(kids)
	}
	for _, c := range kids[:take] {
		// Recurse with decreasing probability so depths vary.
		d := depth - 1
		if chance(rng, 0.35) {
			d = 1
		}
		if child := carve(rng, cur, c, d, maxBranch); child != nil {
			n.Children = append(n.Children, child)
		}
	}
	return n
}
