package datagen

import (
	"fmt"
	"math/rand"

	"github.com/fix-index/fix/internal/xmltree"
)

// DBLP generates one DBLP-style bibliography: a shallow, regular document
// where a small set of record structures repeats many times, so
// individual structural patterns are weakly selective (paper §6.1). It is
// the only dataset with meaningful PCDATA (author names, years,
// publishers), matching the paper's use of DBLP for the value-index
// experiments (§6.4).
func DBLP(cfg Config) *xmltree.Node {
	rng := rand.New(rand.NewSource(cfg.Seed))
	root := xmltree.Elem("dblp")
	for i := cfg.scale(40000); i > 0; i-- {
		root.Append(dblpRecord(rng))
	}
	return root
}

var (
	dblpAuthors = []string{
		"Jim Gray", "Michael Stonebraker", "David J. DeWitt", "Jeffrey D. Ullman",
		"Serge Abiteboul", "Dan Suciu", "Jennifer Widom", "Hector Garcia-Molina",
		"Rakesh Agrawal", "Jiawei Han", "Divesh Srivastava", "H. V. Jagadish",
		"M. Tamer Ozsu", "Ihab F. Ilyas", "Ashraf Aboulnaga", "Ning Zhang",
		"Alon Y. Halevy", "Gerhard Weikum", "Raghu Ramakrishnan", "Joseph M. Hellerstein",
	}
	dblpPublishers = []string{"Springer", "ACM", "IEEE Computer Society", "Morgan Kaufmann", "Elsevier"}
	dblpBooktitles = []string{"SIGMOD Conference", "VLDB", "ICDE", "EDBT", "PODS", "CIKM", "WWW"}
	dblpJournals   = []string{"TODS", "VLDB Journal", "TKDE", "SIGMOD Record", "Information Systems"}
)

func dblpYear(rng *rand.Rand) string { return fmt.Sprintf("%d", between(rng, 1985, 2005)) }

// dblpTitle builds a title, sometimes with markup children (sub/sup/i)
// like real DBLP titles, which the paper's hi-selectivity queries target.
func dblpTitle(rng *rand.Rand) *xmltree.Node {
	title := xmltree.Elem("title", text(rng, between(rng, 3, 9)))
	if chance(rng, 0.06) {
		title.Append(xmltree.Elem("i", text(rng, 1)))
	}
	if chance(rng, 0.03) {
		title.Append(xmltree.Elem("sub", text(rng, 1)))
	}
	if chance(rng, 0.03) {
		title.Append(xmltree.Elem("sup", text(rng, 1)))
	}
	return title
}

func dblpRecord(rng *rand.Rand) *xmltree.Node {
	r := rng.Float64()
	switch {
	case r < 0.38:
		rec := xmltree.Elem("article")
		for i := between(rng, 1, 3); i > 0; i-- {
			rec.Append(xmltree.Elem("author", xmltree.Text(pick(rng, dblpAuthors))))
		}
		rec.Append(dblpTitle(rng))
		rec.Append(xmltree.Elem("journal", xmltree.Text(pick(rng, dblpJournals))))
		if chance(rng, 0.72) {
			rec.Append(xmltree.Elem("number", text(rng, 1)))
		}
		if chance(rng, 0.85) {
			rec.Append(xmltree.Elem("volume", text(rng, 1)))
		}
		rec.Append(xmltree.Elem("year", xmltree.Text(dblpYear(rng))))
		if chance(rng, 0.4) {
			rec.Append(xmltree.Elem("url", text(rng, 1)))
		}
		return rec
	case r < 0.80:
		rec := xmltree.Elem("inproceedings")
		for i := between(rng, 1, 4); i > 0; i-- {
			rec.Append(xmltree.Elem("author", xmltree.Text(pick(rng, dblpAuthors))))
		}
		rec.Append(dblpTitle(rng))
		rec.Append(xmltree.Elem("booktitle", xmltree.Text(pick(rng, dblpBooktitles))))
		rec.Append(xmltree.Elem("year", xmltree.Text(dblpYear(rng))))
		if chance(rng, 0.55) {
			rec.Append(xmltree.Elem("pages", text(rng, 1)))
		}
		if chance(rng, 0.65) {
			rec.Append(xmltree.Elem("url", text(rng, 1)))
		}
		if chance(rng, 0.5) {
			rec.Append(xmltree.Elem("ee", text(rng, 1)))
		}
		return rec
	case r < 0.90:
		rec := xmltree.Elem("proceedings")
		if chance(rng, 0.6) {
			rec.Append(xmltree.Elem("editor", xmltree.Text(pick(rng, dblpAuthors))))
		}
		rec.Append(dblpTitle(rng))
		rec.Append(xmltree.Elem("booktitle", xmltree.Text(pick(rng, dblpBooktitles))))
		rec.Append(xmltree.Elem("publisher", xmltree.Text(pick(rng, dblpPublishers))))
		rec.Append(xmltree.Elem("year", xmltree.Text(dblpYear(rng))))
		if chance(rng, 0.5) {
			rec.Append(xmltree.Elem("isbn", text(rng, 1)))
		}
		return rec
	case r < 0.96:
		rec := xmltree.Elem("book")
		for i := between(rng, 1, 2); i > 0; i-- {
			rec.Append(xmltree.Elem("author", xmltree.Text(pick(rng, dblpAuthors))))
		}
		rec.Append(dblpTitle(rng))
		rec.Append(xmltree.Elem("publisher", xmltree.Text(pick(rng, dblpPublishers))))
		rec.Append(xmltree.Elem("year", xmltree.Text(dblpYear(rng))))
		return rec
	default:
		rec := xmltree.Elem("www")
		rec.Append(xmltree.Elem("author", xmltree.Text(pick(rng, dblpAuthors))))
		rec.Append(dblpTitle(rng))
		rec.Append(xmltree.Elem("url", text(rng, 1)))
		return rec
	}
}
