// Package datagen synthesizes the four evaluation workloads of the paper
// (§6.1) at configurable scale. The real corpora (XBench TCMD, DBLP,
// XMark, Treebank) are not redistributable here, so each generator
// reproduces the *structural regime* the paper relies on instead:
//
//   - TCMD: a large collection of small, nearly-regular text-centric
//     documents (weak structural selectivity);
//   - DBLP: one shallow, regular, highly repetitive bibliography document;
//   - XMark: one structure-rich auction-site document with large
//     bisimulation fan-out;
//   - Treebank: one deep, highly recursive parse-tree document with very
//     selective structures.
//
// All generators are deterministic in their seed.
package datagen

import (
	"fmt"
	"math/rand"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
)

// Dataset names the four workloads.
type Dataset string

// The four datasets of the paper's evaluation.
const (
	TCMDDataset     Dataset = "tcmd"
	DBLPDataset     Dataset = "dblp"
	XMarkDataset    Dataset = "xmark"
	TreebankDataset Dataset = "treebank"
)

// AllDatasets lists the datasets in the paper's order.
var AllDatasets = []Dataset{TCMDDataset, DBLPDataset, XMarkDataset, TreebankDataset}

// Config controls generation volume. Scale 1.0 approximates one tenth of
// the paper's element counts, which keeps the full harness laptop-sized;
// raise it to approach the original sizes.
type Config struct {
	Seed  int64
	Scale float64
}

func (c Config) scale(base int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	n := int(float64(base) * s)
	if n < 1 {
		n = 1
	}
	return n
}

// Generate materializes the named dataset into a fresh in-memory store.
func Generate(ds Dataset, cfg Config) (*storage.Store, error) {
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		return nil, err
	}
	if err := Populate(st, ds, cfg); err != nil {
		return nil, err
	}
	return st, nil
}

// Populate appends the named dataset's documents to an existing store.
func Populate(st *storage.Store, ds Dataset, cfg Config) error {
	switch ds {
	case TCMDDataset:
		rng := rand.New(rand.NewSource(cfg.Seed))
		for i := 0; i < cfg.scale(2607); i++ {
			if _, err := st.AppendTree(tcmdDoc(rng)); err != nil {
				return err
			}
		}
		return nil
	case DBLPDataset:
		_, err := st.AppendTree(DBLP(cfg))
		return err
	case XMarkDataset:
		_, err := st.AppendTree(XMark(cfg))
		return err
	case TreebankDataset:
		_, err := st.AppendTree(Treebank(cfg))
		return err
	default:
		return fmt.Errorf("datagen: unknown dataset %q", ds)
	}
}

// DefaultDepthLimit returns the paper's index depth limit per dataset:
// unlimited (0) for the TCMD collection, 6 for the single large documents.
func DefaultDepthLimit(ds Dataset) int {
	if ds == TCMDDataset {
		return 0
	}
	return 6
}

// chance reports true with probability p.
func chance(rng *rand.Rand, p float64) bool { return rng.Float64() < p }

// between returns a uniform int in [lo, hi].
func between(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// pick returns a random element of choices.
func pick(rng *rand.Rand, choices []string) string {
	return choices[rng.Intn(len(choices))]
}

// words generates n space-separated pseudo-words.
func words(rng *rand.Rand, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	buf := make([]byte, 0, n*6)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		l := between(rng, 3, 8)
		for j := 0; j < l; j++ {
			buf = append(buf, letters[rng.Intn(len(letters))])
		}
	}
	return string(buf)
}

func text(rng *rand.Rand, n int) *xmltree.Node { return xmltree.Text(words(rng, n)) }
