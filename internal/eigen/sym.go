// Package eigen implements dense eigenvalue computation for the matrices
// FIX derives from twig patterns. The paper (§3.3) computes the spectrum
// of an anti-symmetric (skew-symmetric) matrix M through the Hermitian
// matrix iM; its eigenvalues are pure imaginary and come in ±iσ pairs. We
// obtain the magnitudes σ as the singular values of M, i.e. the square
// roots of the eigenvalues of the symmetric positive-semidefinite matrix
// MᵀM, which needs only a real symmetric eigensolver and is numerically
// robust.
//
// Every solver in the package is a pure function over its arguments (the
// iterative paths use deterministic seeded start vectors, no global
// state), so all of them are safe to call from concurrent goroutines;
// the parallel index build relies on this.
//
// The symmetric solver is the classic Householder tridiagonalization
// followed by the implicit-shift QL iteration (Numerical Recipes, the
// paper's reference [22]); a Jacobi rotation solver is provided as an
// independent cross-check used by the tests.
package eigen

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoConvergence is returned when the QL iteration fails to converge,
// which for well-formed symmetric input practically never happens.
var ErrNoConvergence = errors.New("eigen: QL iteration did not converge")

// SymEigenvalues returns the eigenvalues of the dense symmetric matrix a
// in ascending order. The input is not modified. It returns an error if a
// is not square or the iteration fails to converge.
func SymEigenvalues(a [][]float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, nil
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("eigen: row %d has %d columns, want %d", i, len(a[i]), n)
		}
	}
	// Work on a copy; tridiagonalization destroys its input.
	w := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range w {
		w[i] = flat[i*n : (i+1)*n]
		copy(w[i], a[i])
	}
	d := make([]float64, n)
	e := make([]float64, n)
	tridiagonalize(w, d, e)
	if err := qlImplicit(d, e); err != nil {
		return nil, err
	}
	sort.Float64s(d)
	return d, nil
}

// tridiagonalize reduces the symmetric matrix a (destroyed) to tridiagonal
// form with diagonal d and subdiagonal e (e[0] unused), using Householder
// reflections. Eigenvectors are not accumulated.
func tridiagonalize(a [][]float64, d, e []float64) {
	n := len(a)
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(a[i][k])
			}
			if scale == 0 {
				e[i] = a[i][l]
			} else {
				for k := 0; k <= l; k++ {
					a[i][k] /= scale
					h += a[i][k] * a[i][k]
				}
				f := a[i][l]
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				a[i][l] = f - g
				f = 0
				for j := 0; j <= l; j++ {
					g = 0
					for k := 0; k <= j; k++ {
						g += a[j][k] * a[i][k]
					}
					for k := j + 1; k <= l; k++ {
						g += a[k][j] * a[i][k]
					}
					e[j] = g / h
					f += e[j] * a[i][j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = a[i][j]
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						a[j][k] -= f*e[k] + g*a[i][k]
					}
				}
			}
		} else {
			e[i] = a[i][l]
		}
	}
	e[0] = 0
	for i := 0; i < n; i++ {
		d[i] = a[i][i]
	}
}

// qlImplicit runs the implicit-shift QL iteration on a tridiagonal matrix
// given by diagonal d and subdiagonal e (e[0] unused on input). On return
// d holds the eigenvalues in arbitrary order.
func qlImplicit(d, e []float64) error {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= machEps*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter++; iter > 64 {
				return ErrNoConvergence
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Recover from underflow by deflating.
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

const machEps = 2.220446049250313e-16

// JacobiEigenvalues computes the eigenvalues of the dense symmetric matrix
// a by cyclic Jacobi rotations, in ascending order. It is slower than
// SymEigenvalues and exists as an independent implementation for
// cross-validation in tests.
func JacobiEigenvalues(a [][]float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, nil
	}
	w := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range w {
		w[i] = flat[i*n : (i+1)*n]
		if len(a[i]) != n {
			return nil, fmt.Errorf("eigen: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		copy(w[i], a[i])
	}
	for sweep := 0; sweep < 128; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w[i][j] * w[i][j]
			}
		}
		if off < 1e-28 {
			d := make([]float64, n)
			for i := range d {
				d[i] = w[i][i]
			}
			sort.Float64s(d)
			return d, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(w[p][q]) < 1e-18 {
					continue
				}
				theta := (w[q][q] - w[p][p]) / (2 * w[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					wkp, wkq := w[k][p], w[k][q]
					w[k][p] = c*wkp - s*wkq
					w[k][q] = s*wkp + c*wkq
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w[p][k], w[q][k]
					w[p][k] = c*wpk - s*wqk
					w[q][k] = s*wpk + c*wqk
				}
			}
		}
	}
	return nil, errors.New("eigen: Jacobi iteration did not converge")
}
