package eigen

import "math"

// Edge is one weighted directed edge of a sparse skew-symmetric matrix:
// M[From][To] = W, M[To][From] = -W.
type Edge struct {
	From, To int32
	W        float64
}

// SkewMaxSparse computes σmax of the n×n skew-symmetric matrix given by
// its edge list, using power iteration on S = MᵀM with sparse
// matrix-vector products. Cost is O(|edges| · iterations), which makes the
// near-budget subpatterns of index construction cheap where a dense
// solver would be cubic (the paper's §3.3 observes sparse eigenvalue
// computation "would be even more efficient"; this is that path).
//
// The returned value converges from below; callers that must preserve the
// no-false-negative property should apply a small upward margin (see
// SafetyMargin).
func SkewMaxSparse(n int, edges []Edge) float64 {
	if n == 0 || len(edges) == 0 {
		return 0
	}
	x := make([]float64, n)
	// Deterministic pseudo-random start vector to avoid an unlucky
	// orthogonal initialization; index construction must be reproducible.
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range x {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		x[i] = float64(seed%2048)/2048.0 + 0.5
	}
	normalize(x)
	y := make([]float64, n)
	z := make([]float64, n)
	prev := 0.0
	const maxIter = 2000
	for iter := 0; iter < maxIter; iter++ {
		// y = M x ; z = Mᵀ y = -M y
		for i := range y {
			y[i] = 0
		}
		for _, e := range edges {
			y[e.From] += e.W * x[e.To]
			y[e.To] -= e.W * x[e.From]
		}
		for i := range z {
			z[i] = 0
		}
		for _, e := range edges {
			z[e.To] += e.W * y[e.From]
			z[e.From] -= e.W * y[e.To]
		}
		// Rayleigh quotient of S at x is ||Mx||² = ⟨z, x⟩ for unit x.
		lambda := 0.0
		for i := range z {
			lambda += z[i] * x[i]
		}
		if lambda <= 0 {
			return 0
		}
		norm := normalize(z)
		if norm == 0 {
			return math.Sqrt(lambda)
		}
		x, z = z, x
		sigma := math.Sqrt(lambda)
		if iter > 4 && math.Abs(sigma-prev) <= 1e-12*math.Max(1, sigma) {
			return sigma
		}
		prev = sigma
	}
	return prev
}

// SafetyMargin inflates a power-iteration estimate so that an
// underestimate cannot produce index false negatives: entry keys are
// stored with the margin applied, query features are computed exactly
// with the dense solver.
func SafetyMargin(sigma float64) float64 {
	return sigma * (1 + 1e-6)
}

func normalize(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return 0
	}
	inv := 1 / math.Sqrt(s)
	for i := range v {
		v[i] *= inv
	}
	return math.Sqrt(s)
}
