package eigen

import (
	"fmt"
	"math"
)

// SkewSpectrum returns the magnitudes σ of the eigenvalues {±iσ} of the
// skew-symmetric matrix m, sorted descending. The input must satisfy
// m[i][j] == -m[j][i]; this is checked and an error is returned otherwise.
//
// The magnitudes are computed as the square roots of the eigenvalues of
// the symmetric positive-semidefinite matrix MᵀM. Tiny negative rounding
// residues are clamped to zero.
func SkewSpectrum(m [][]float64) ([]float64, error) {
	n := len(m)
	if n == 0 {
		return nil, nil
	}
	for i := range m {
		if len(m[i]) != n {
			return nil, fmt.Errorf("eigen: row %d has %d columns, want %d", i, len(m[i]), n)
		}
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if m[i][j] != -m[j][i] {
				return nil, fmt.Errorf("eigen: matrix is not skew-symmetric at (%d,%d)", i, j)
			}
		}
	}
	// S = MᵀM is symmetric PSD; its eigenvalues are σ².
	s := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range s {
		s[i] = flat[i*n : (i+1)*n]
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += m[k][i] * m[k][j]
			}
			s[i][j] = sum
			s[j][i] = sum
		}
	}
	vals, err := SymEigenvalues(s)
	if err != nil {
		return nil, err
	}
	// vals ascending; convert to descending σ.
	out := make([]float64, n)
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		out[n-1-i] = math.Sqrt(v)
	}
	return out, nil
}

// SkewExtremes returns (λmin, λmax) of the skew-symmetric matrix m as used
// for the FIX key: the spectrum is {±iσ}, so the extremes are ∓σmax taken
// as real magnitudes, exactly the |λ| convention the paper adopts for the
// indexed range (§3.3).
func SkewExtremes(m [][]float64) (min, max float64, err error) {
	sigma, err := SkewSpectrum(m)
	if err != nil {
		return 0, 0, err
	}
	if len(sigma) == 0 {
		return 0, 0, nil
	}
	return -sigma[0], sigma[0], nil
}
