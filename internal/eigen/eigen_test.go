package eigen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSymKnownMatrices(t *testing.T) {
	cases := []struct {
		name string
		m    [][]float64
		want []float64
	}{
		{"diag", [][]float64{{3, 0}, {0, -1}}, []float64{-1, 3}},
		{"pauli-x", [][]float64{{0, 1}, {1, 0}}, []float64{-1, 1}},
		{"2x2", [][]float64{{2, 1}, {1, 2}}, []float64{1, 3}},
		{
			// Path-graph adjacency: eigenvalues 2cos(kπ/(n+1)).
			"path4",
			[][]float64{
				{0, 1, 0, 0},
				{1, 0, 1, 0},
				{0, 1, 0, 1},
				{0, 0, 1, 0},
			},
			[]float64{
				2 * math.Cos(4*math.Pi/5),
				2 * math.Cos(3*math.Pi/5),
				2 * math.Cos(2*math.Pi/5),
				2 * math.Cos(1*math.Pi/5),
			},
		},
	}
	for _, c := range cases {
		got, err := SymEigenvalues(c.m)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("%s: got %d eigenvalues", c.name, len(got))
		}
		for i := range got {
			if !almostEqual(got[i], c.want[i], 1e-10) {
				t.Errorf("%s: eig[%d] = %v, want %v", c.name, i, got[i], c.want[i])
			}
		}
	}
}

func TestSymRejectsNonSquare(t *testing.T) {
	if _, err := SymEigenvalues([][]float64{{1, 2}}); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := JacobiEigenvalues([][]float64{{1, 2}}); err == nil {
		t.Error("Jacobi: non-square accepted")
	}
	if v, err := SymEigenvalues(nil); err != nil || v != nil {
		t.Error("empty matrix should yield empty result")
	}
}

func randomSymmetric(rng *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64() * 5
			m[i][j] = v
			m[j][i] = v
		}
	}
	return m
}

func TestQLAgreesWithJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		m := randomSymmetric(rng, n)
		a, err := SymEigenvalues(m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := JacobiEigenvalues(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !almostEqual(a[i], b[i], 1e-8) {
				t.Fatalf("trial %d: QL %v vs Jacobi %v differ at %d", trial, a, b, i)
			}
		}
	}
}

func TestEigenvalueSumEqualsTrace(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		m := randomSymmetric(rng, n)
		vals, err := SymEigenvalues(m)
		if err != nil {
			return false
		}
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += m[i][i]
		}
		for _, v := range vals {
			sum += v
		}
		return almostEqual(trace, sum, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSkewKnownMatrices(t *testing.T) {
	// [[0,a],[-a,0]] has spectrum ±ia.
	sig, err := SkewSpectrum([][]float64{{0, 3}, {-3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sig[0], 3, 1e-12) || !almostEqual(sig[1], 3, 1e-12) {
		t.Errorf("2x2 spectrum = %v, want [3 3]", sig)
	}
	// Star a->b (w=1), a->c (w=2): sigma_max = sqrt(1+4).
	star := [][]float64{
		{0, 1, 2},
		{-1, 0, 0},
		{-2, 0, 0},
	}
	min, max, err := SkewExtremes(star)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(max, math.Sqrt(5), 1e-12) || !almostEqual(min, -math.Sqrt(5), 1e-12) {
		t.Errorf("star extremes = %v, %v; want ±sqrt(5)", min, max)
	}
	// Chain a->b (u), b->c (v): sigma_max = sqrt(u²+v²).
	chain := [][]float64{
		{0, 2, 0},
		{-2, 0, 5},
		{0, -5, 0},
	}
	_, max, err = SkewExtremes(chain)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(max, math.Sqrt(29), 1e-12) {
		t.Errorf("chain sigma = %v, want sqrt(29)", max)
	}
}

func TestSkewRejectsNonSkew(t *testing.T) {
	if _, err := SkewSpectrum([][]float64{{0, 1}, {1, 0}}); err == nil {
		t.Error("symmetric matrix accepted as skew")
	}
	if _, err := SkewSpectrum([][]float64{{1, 0}, {0, 1}}); err == nil {
		t.Error("nonzero diagonal accepted as skew")
	}
}

// randomSkewDAG builds a random weighted DAG's skew matrix (edges only
// from lower to higher index, like a topological order).
func randomSkewDAG(rng *rand.Rand, n int, p float64) ([][]float64, []Edge) {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				w := float64(1 + rng.Intn(30))
				m[i][j] = w
				m[j][i] = -w
				edges = append(edges, Edge{From: int32(i), To: int32(j), W: w})
			}
		}
	}
	return m, edges
}

// TestInterlacing is the property Theorem 3 rests on: the eigenvalue range
// of an induced subgraph (principal submatrix) is contained in the
// range of the full matrix.
func TestInterlacing(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(10)
		m, _ := randomSkewDAG(rng, n, 0.4)
		_, fullMax, err := SkewExtremes(m)
		if err != nil {
			t.Fatal(err)
		}
		// Take a random subset of vertices as the induced subgraph.
		keep := rng.Perm(n)[:1+rng.Intn(n-1)]
		sub := make([][]float64, len(keep))
		for i := range sub {
			sub[i] = make([]float64, len(keep))
			for j := range sub[i] {
				sub[i][j] = m[keep[i]][keep[j]]
			}
		}
		_, subMax, err := SkewExtremes(sub)
		if err != nil {
			t.Fatal(err)
		}
		if subMax > fullMax+1e-9 {
			t.Fatalf("trial %d: induced subgraph sigma %v > full %v", trial, subMax, fullMax)
		}
	}
}

func TestPowerIterationAgreesWithDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(40)
		m, edges := randomSkewDAG(rng, n, 0.25)
		if len(edges) == 0 {
			continue
		}
		_, dense, err := SkewExtremes(m)
		if err != nil {
			t.Fatal(err)
		}
		sparse := SkewMaxSparse(n, edges)
		if !almostEqual(dense, sparse, 1e-6) {
			t.Fatalf("trial %d (n=%d, %d edges): dense %v vs sparse %v",
				trial, n, len(edges), dense, sparse)
		}
	}
}

func TestPowerIterationDegenerate(t *testing.T) {
	if got := SkewMaxSparse(0, nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := SkewMaxSparse(5, nil); got != 0 {
		t.Errorf("edgeless = %v", got)
	}
	// Repeated top singular value (two disjoint equal edges).
	edges := []Edge{{0, 1, 7}, {2, 3, 7}}
	if got := SkewMaxSparse(4, edges); !almostEqual(got, 7, 1e-9) {
		t.Errorf("degenerate top pair = %v, want 7", got)
	}
}

func TestSafetyMarginIsUpward(t *testing.T) {
	for _, v := range []float64{0, 1, 1e-12, 12345.678} {
		if SafetyMargin(v) < v {
			t.Errorf("SafetyMargin(%v) = %v < input", v, SafetyMargin(v))
		}
	}
}

func TestSingleElementMatrices(t *testing.T) {
	v, err := SymEigenvalues([][]float64{{7}})
	if err != nil || len(v) != 1 || v[0] != 7 {
		t.Errorf("1x1 sym = %v, %v", v, err)
	}
	s, err := SkewSpectrum([][]float64{{0}})
	if err != nil || len(s) != 1 || s[0] != 0 {
		t.Errorf("1x1 skew = %v, %v", s, err)
	}
	min, max, err := SkewExtremes(nil)
	if err != nil || min != 0 || max != 0 {
		t.Errorf("empty extremes = %v %v %v", min, max, err)
	}
}

func TestLargeRandomSymmetricStaysFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := randomSymmetric(rng, 80)
	vals, err := SymEigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("eigenvalue %d is %v", i, v)
		}
		if i > 0 && vals[i-1] > v {
			t.Fatal("eigenvalues not sorted")
		}
	}
}
