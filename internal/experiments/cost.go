package experiments

import "time"

// IOStats is the implementation-independent I/O footprint of one query
// execution: random accesses (seeks) and sequentially transferred bytes.
type IOStats struct {
	Random   int64
	SeqBytes int64
}

// Add accumulates another footprint.
func (s *IOStats) Add(o IOStats) {
	s.Random += o.Random
	s.SeqBytes += o.SeqBytes
}

// CostModel converts an I/O footprint into time on a reference disk. The
// defaults model the paper's 2006 testbed (single consumer 7200 rpm
// drive): ~8.5 ms per random access, ~50 MB/s sequential transfer. The
// experiments report RAM-resident wall time, the raw footprint, and the
// modeled time side by side; the modeled column is what reproduces the
// paper's disk-bound orderings (notably F&B versus clustered FIX).
type CostModel struct {
	Seek    time.Duration
	SeqMBps float64
}

// Disk2006 approximates the paper's testbed storage.
var Disk2006 = CostModel{Seek: 8500 * time.Microsecond, SeqMBps: 50}

// IOTime converts a footprint to modeled disk time.
func (c CostModel) IOTime(s IOStats) time.Duration {
	seq := time.Duration(float64(s.SeqBytes) / (c.SeqMBps * 1e6) * float64(time.Second))
	return time.Duration(s.Random)*c.Seek + seq
}
