package experiments

import (
	"fmt"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/joins"
	"github.com/fix-index/fix/internal/tagindex"
	"github.com/fix-index/fix/internal/xpath"
)

// Extension experiments beyond the paper's evaluation: the §8 future-work
// R-tree over feature vectors, and the join-based evaluator of the
// architecture in Figure 3 compared against the navigational operator.

// RTreeRow compares the search effort of the B-tree range scan against
// the R-tree box query for one representative query. Both return the same
// candidate set; the interesting quantity is how much of the index each
// one touches.
type RTreeRow struct {
	Query        string
	Candidates   int
	BTreeScanned int   // entries touched by the B-tree range scan
	RTreeVisited int64 // R-tree nodes visited
}

// ExtRTree builds the feature R-tree and contrasts scan effort.
func ExtRTree(env *Env) ([]RTreeRow, error) {
	ix, err := env.Unclustered()
	if err != nil {
		return nil, err
	}
	rt, err := ix.BuildFeatureRTree()
	if err != nil {
		return nil, err
	}
	var rows []RTreeRow
	for _, rq := range RepresentativeQueries[env.Dataset] {
		q, err := xpath.Parse(rq.XPath)
		if err != nil {
			return nil, err
		}
		bt, scanned, err := ix.Candidates(q)
		if err != nil {
			return nil, err
		}
		rt.ResetStats()
		rc, err := rt.Candidates(q)
		if err != nil {
			return nil, err
		}
		if len(bt) != len(rc) {
			return nil, fmt.Errorf("experiments: %s: candidate sets differ (%d vs %d)", rq.Name, len(bt), len(rc))
		}
		rows = append(rows, RTreeRow{
			Query:        rq.Name,
			Candidates:   len(bt),
			BTreeScanned: scanned,
			RTreeVisited: rt.NodesVisited(),
		})
	}
	return rows, nil
}

// EvaluatorRow compares the navigational (NoK) and join-based
// (Stack-Tree structural join) processors on one runtime query, both
// without FIX pruning.
type EvaluatorRow struct {
	Query    string
	Count    int
	NoK      time.Duration
	Joins    time.Duration
	TagBuild time.Duration
	TagMB    float64
}

// ExtEvaluators runs the dataset's runtime workload through both
// evaluators.
func ExtEvaluators(env *Env) ([]EvaluatorRow, error) {
	queries, ok := RuntimeQueries[env.Dataset]
	if !ok {
		return nil, fmt.Errorf("experiments: no runtime queries for %s", env.Dataset)
	}
	t0 := time.Now()
	tags, err := tagindex.Build(env.Store)
	if err != nil {
		return nil, err
	}
	tagBuild := time.Since(t0)
	ev := joins.New(tags)
	var rows []EvaluatorRow
	for _, rq := range queries {
		q, err := xpath.Parse(rq.XPath)
		if err != nil {
			return nil, err
		}
		row := EvaluatorRow{Query: rq.Name, TagBuild: tagBuild, TagMB: float64(tags.SizeBytes()) / (1 << 20)}
		nokCount, nokTime, err := timeIt(func() (int, error) { return env.NoKScan(q) })
		if err != nil {
			return nil, err
		}
		row.NoK = nokTime
		jc, jTime, err := timeIt(func() (int, error) { return ev.Count(q.Tree()) })
		if err != nil {
			return nil, err
		}
		row.Joins = jTime
		if jc != nokCount {
			return nil, fmt.Errorf("experiments: %s: joins %d != NoK %d", rq.Name, jc, nokCount)
		}
		row.Count = jc
		rows = append(rows, row)
	}
	return rows, nil
}

// SpectrumRow compares candidate counts with and without the spectrum
// filter (§3.3 "whole set of eigenvalues") for one representative query.
type SpectrumRow struct {
	Query     string
	CandPlain int
	CandK4    int
	Rst       int // exact result-producing entries (both must agree)
}

// ExtSpectrum builds a SpectrumK=4 index alongside the plain one and
// contrasts pruning.
func ExtSpectrum(env *Env) ([]SpectrumRow, error) {
	plain, err := env.SoundIndex()
	if err != nil {
		return nil, err
	}
	spectral, err := core.Build(env.Store, core.Options{DepthLimit: env.DepthLimit(), SpectrumK: 4})
	if err != nil {
		return nil, err
	}
	var rows []SpectrumRow
	for _, rq := range RepresentativeQueries[env.Dataset] {
		q, err := xpath.Parse(rq.XPath)
		if err != nil {
			return nil, err
		}
		a, err := plain.Query(q)
		if err != nil {
			return nil, err
		}
		b, err := spectral.Query(q)
		if err != nil {
			return nil, err
		}
		if a.Count != b.Count {
			return nil, fmt.Errorf("experiments: %s: spectrum filter changed results (%d vs %d)", rq.Name, a.Count, b.Count)
		}
		rows = append(rows, SpectrumRow{Query: rq.Name, CandPlain: a.Candidates, CandK4: b.Candidates, Rst: b.Matched})
	}
	return rows, nil
}
