package experiments

import (
	"os"
	"testing"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/datagen"
	"github.com/fix-index/fix/internal/fbindex"
)

// TestProfileBuild is a manual driver: FIXPROFILE=1 go test -run ProfileBuild -v -cpuprofile cpu.out
func TestProfileBuild(t *testing.T) {
	if os.Getenv("FIXPROFILE") == "" {
		t.Skip("set FIXPROFILE to run")
	}
	st, err := datagen.Generate(datagen.TreebankDataset, datagen.Config{Seed: 7, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	ix, err := core.Build(st, core.Options{DepthLimit: 6})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("FIX build: %v entries=%d", time.Since(t0), ix.Entries())
	t0 = time.Now()
	fb, err := fbindex.Build(st)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("FB build: %v classes=%d", time.Since(t0), fb.NumClasses())
}
