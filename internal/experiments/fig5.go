package experiments

import (
	"github.com/fix-index/fix/internal/datagen"
)

// Fig5Row reports average selectivity, pruning power and false-positive
// ratio over a set of random queries (paper Figure 5; 1000 queries per
// dataset in the original). Both pruning bounds are reported: the paper's
// full-pattern bound and the library's provably complete bound. Because
// the paper bound can produce false negatives on adversarial twigs (see
// DESIGN.md), the row also counts random queries on which it lost
// results.
type Fig5Row struct {
	Dataset string
	Queries int // queries actually evaluated (sel in (0,1), covered)

	AvgSel float64 // exact, from the sound run

	// Paper bound.
	AvgPP  float64
	AvgFPR float64
	// FalseNegQueries counts queries where the paper bound missed at
	// least one true result.
	FalseNegQueries int

	// Provably complete bound.
	SoundAvgPP  float64
	SoundAvgFPR float64
}

// Fig5 generates random twig queries from the dataset and averages the
// metrics, excluding selectivity-0 and selectivity-1 queries as the paper
// does (§6.2 footnote).
func Fig5(env *Env, numQueries int) (Fig5Row, error) {
	paper, err := env.Unclustered()
	if err != nil {
		return Fig5Row{}, err
	}
	sound, err := env.SoundIndex()
	if err != nil {
		return Fig5Row{}, err
	}
	maxDepth := env.DepthLimit()
	if maxDepth == 0 {
		maxDepth = 5
	}
	queries := datagen.RandomQueries(env.Store, env.Cfg.Seed+1, numQueries, maxDepth, 3)
	row := Fig5Row{Dataset: string(env.Dataset)}
	for _, q := range queries {
		if !sound.Covered(q) {
			continue
		}
		exact, err := sound.Evaluate(q)
		if err != nil {
			return Fig5Row{}, err
		}
		if exact.Rst == 0 || exact.Rst == exact.Ent {
			continue // sel 1 or 0: uninformative, excluded as in the paper
		}
		pm, err := paper.Evaluate(q)
		if err != nil {
			return Fig5Row{}, err
		}
		row.Queries++
		row.AvgSel += exact.Sel
		row.AvgPP += pm.PP
		row.AvgFPR += pm.FPR
		if pm.Rst < exact.Rst {
			row.FalseNegQueries++
		}
		row.SoundAvgPP += exact.PP
		row.SoundAvgFPR += exact.FPR
	}
	if row.Queries > 0 {
		n := float64(row.Queries)
		row.AvgSel /= n
		row.AvgPP /= n
		row.AvgFPR /= n
		row.SoundAvgPP /= n
		row.SoundAvgFPR /= n
	}
	return row, nil
}
