package experiments

import (
	"testing"
	"time"
)

func TestCostModelArithmetic(t *testing.T) {
	m := CostModel{Seek: 10 * time.Millisecond, SeqMBps: 100}
	cases := []struct {
		io   IOStats
		want time.Duration
	}{
		{IOStats{}, 0},
		{IOStats{Random: 5}, 50 * time.Millisecond},
		{IOStats{SeqBytes: 100e6}, time.Second},
		{IOStats{Random: 2, SeqBytes: 50e6}, 20*time.Millisecond + 500*time.Millisecond},
	}
	for i, c := range cases {
		if got := m.IOTime(c.io); got != c.want {
			t.Errorf("case %d: IOTime = %v, want %v", i, got, c.want)
		}
	}
}

func TestIOStatsAdd(t *testing.T) {
	a := IOStats{Random: 1, SeqBytes: 10}
	a.Add(IOStats{Random: 2, SeqBytes: 20})
	if a.Random != 3 || a.SeqBytes != 30 {
		t.Errorf("Add = %+v", a)
	}
}

func TestDisk2006Defaults(t *testing.T) {
	if Disk2006.Seek != 8500*time.Microsecond || Disk2006.SeqMBps != 50 {
		t.Errorf("Disk2006 = %+v", Disk2006)
	}
}
