package experiments

import (
	"context"
	"testing"
	"time"
)

// TestShardSweepSmall runs a miniature sweep end to end: every shard
// count completes, counts are coherent, and throughput numbers are
// positive.
func TestShardSweepSmall(t *testing.T) {
	rows, err := ShardSweep(context.Background(), t.TempDir(), []int{1, 2}, 4, 2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	wantDocs := 4 * len(shardSweepLabels)
	for _, r := range rows {
		if r.Docs != wantDocs {
			t.Errorf("shards=%d: docs = %d, want %d", r.Shards, r.Docs, wantDocs)
		}
		if r.IngestDocsPerSec <= 0 || r.ScatteredQPS <= 0 || r.TargetedQPS <= 0 {
			t.Errorf("shards=%d: non-positive throughput: %+v", r.Shards, r)
		}
	}
}
