// Package experiments reproduces every table and figure of the paper's
// evaluation (§6) over the synthetic workloads in internal/datagen. Each
// experiment function returns structured rows; cmd/fixbench formats them
// in the paper's layout, and the repository's benchmarks wrap them as
// testing.B targets.
package experiments

import (
	"fmt"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/datagen"
	"github.com/fix-index/fix/internal/fbindex"
	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xpath"
)

// Env holds one dataset plus lazily built indexes so experiments sharing
// a dataset do not rebuild them.
type Env struct {
	Dataset datagen.Dataset
	Cfg     datagen.Config
	Store   *storage.Store

	// Workers bounds the worker pool of every index the environment
	// builds (0 = one per CPU). It must be set before the first lazy
	// build; the index bytes are identical for every value, so the
	// experiment results do not depend on it.
	Workers int

	elements int

	uidx  *core.Index // unclustered structural, paper pruning bound
	cidx  *core.Index // clustered structural, paper pruning bound
	vidx  *core.Index // clustered with values, paper pruning bound
	sound *core.Index // unclustered, provably complete bound
	fb    *fbindex.Index

	uidxTime, cidxTime, vidxTime, fbTime time.Duration
}

// Setup generates the dataset and counts its elements.
func Setup(ds datagen.Dataset, cfg datagen.Config) (*Env, error) {
	st, err := datagen.Generate(ds, cfg)
	if err != nil {
		return nil, err
	}
	elems, err := st.CountElements()
	if err != nil {
		return nil, err
	}
	return &Env{Dataset: ds, Cfg: cfg, Store: st, elements: elems}, nil
}

// Elements returns the dataset's element count.
func (e *Env) Elements() int { return e.elements }

// DepthLimit returns the paper's per-dataset depth limit.
func (e *Env) DepthLimit() int { return datagen.DefaultDepthLimit(e.Dataset) }

// The experiment indexes use the paper's literal pruning bound
// (PaperPruning) to reproduce its tables and figures; SoundIndex provides
// the library's default provably complete bound for the comparison rows.

// Unclustered returns (building on first use) the unclustered FIX index.
func (e *Env) Unclustered() (*core.Index, error) {
	if e.uidx != nil {
		return e.uidx, nil
	}
	ix, err := core.Build(e.Store, core.Options{DepthLimit: e.DepthLimit(), PaperPruning: true, Workers: e.Workers})
	if err != nil {
		return nil, err
	}
	e.uidx, e.uidxTime = ix, ix.BuildTime()
	return ix, nil
}

// SoundIndex returns (building on first use) an unclustered index using
// the provably complete pruning bound.
func (e *Env) SoundIndex() (*core.Index, error) {
	if e.sound != nil {
		return e.sound, nil
	}
	ix, err := core.Build(e.Store, core.Options{DepthLimit: e.DepthLimit(), Workers: e.Workers})
	if err != nil {
		return nil, err
	}
	e.sound = ix
	return ix, nil
}

// Clustered returns (building on first use) the clustered FIX index.
func (e *Env) Clustered() (*core.Index, error) {
	if e.cidx != nil {
		return e.cidx, nil
	}
	ix, err := core.Build(e.Store, core.Options{DepthLimit: e.DepthLimit(), Clustered: true, PaperPruning: true, Workers: e.Workers})
	if err != nil {
		return nil, err
	}
	e.cidx, e.cidxTime = ix, ix.BuildTime()
	return ix, nil
}

// ValueIndex returns (building on first use) the clustered FIX index with
// the value extension enabled.
func (e *Env) ValueIndex(beta uint32) (*core.Index, error) {
	if e.vidx != nil {
		return e.vidx, nil
	}
	ix, err := core.Build(e.Store, core.Options{
		DepthLimit:   e.DepthLimit(),
		Clustered:    true,
		Values:       true,
		Beta:         beta,
		PaperPruning: true,
		Workers:      e.Workers,
	})
	if err != nil {
		return nil, err
	}
	e.vidx, e.vidxTime = ix, ix.BuildTime()
	return ix, nil
}

// FB returns (building on first use) the F&B bisimulation index.
func (e *Env) FB() (*fbindex.Index, error) {
	if e.fb != nil {
		return e.fb, nil
	}
	start := time.Now()
	ix, err := fbindex.Build(e.Store)
	if err != nil {
		return nil, err
	}
	e.fb, e.fbTime = ix, time.Since(start)
	return ix, nil
}

// VerifyIndexes runs the integrity check over every FIX index the
// environment has built so far. A benchmark run can use it (fixbench
// -verify) to assert the structures it measured were sound.
func (e *Env) VerifyIndexes() error {
	for _, ix := range []struct {
		name string
		idx  *core.Index
	}{
		{"unclustered", e.uidx},
		{"clustered", e.cidx},
		{"values", e.vidx},
		{"sound", e.sound},
	} {
		if ix.idx == nil {
			continue
		}
		if err := ix.idx.Verify(); err != nil {
			return fmt.Errorf("experiments: %s index failed verification: %w", ix.name, err)
		}
	}
	return nil
}

// NoKScan evaluates the query over the whole store with the bare
// navigational operator (the unindexed baseline) and returns the number
// of output matches.
func (e *Env) NoKScan(q *xpath.Path) (int, error) {
	nq, err := nok.Compile(q.Tree(), e.Store.Dict())
	if err != nil {
		return 0, err
	}
	total := 0
	for rec := 0; rec < e.Store.NumRecords(); rec++ {
		cur, err := e.Store.Cursor(uint32(rec))
		if err != nil {
			return 0, err
		}
		total += nq.Count(cur, 0)
	}
	return total, nil
}

// timeIt runs fn once warm (after one discarded warm-up run) and returns
// the measured duration of the second run together with its result.
func timeIt[T any](fn func() (T, error)) (T, time.Duration, error) {
	var zero T
	if _, err := fn(); err != nil {
		return zero, 0, err
	}
	start := time.Now()
	v, err := fn()
	return v, time.Since(start), err
}
