package experiments

import (
	"testing"

	"github.com/fix-index/fix/internal/datagen"
	"github.com/fix-index/fix/internal/xpath"
)

const testScale = 0.04

func testEnv(t *testing.T, ds datagen.Dataset) *Env {
	t.Helper()
	env, err := Setup(ds, datagen.Config{Seed: 7, Scale: testScale})
	if err != nil {
		t.Fatalf("Setup(%s): %v", ds, err)
	}
	return env
}

func TestTable1AllDatasets(t *testing.T) {
	for _, ds := range datagen.AllDatasets {
		env := testEnv(t, ds)
		row, err := Table1(env)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if row.Elements <= 0 || row.UIdxBytes <= 0 || row.CIdxBytes <= 0 {
			t.Errorf("%s: degenerate row %+v", ds, row)
		}
		if row.CIdxBytes <= row.UIdxBytes {
			t.Errorf("%s: clustered index (%d B) should exceed unclustered (%d B)",
				ds, row.CIdxBytes, row.UIdxBytes)
		}
		t.Logf("%-9s size=%dKB elems=%d ICT=%v UIdx=%dKB CIdx=%dKB oversize=%d",
			ds, row.SizeBytes/1024, row.Elements, row.ICT, row.UIdxBytes/1024, row.CIdxBytes/1024, row.Oversize)
	}
}

func TestTable2AllDatasets(t *testing.T) {
	for _, ds := range datagen.AllDatasets {
		env := testEnv(t, ds)
		rows, err := Table2(env)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		for _, r := range rows {
			if r.FPR < 0 || r.FPR > 1 || r.PP < 0 || r.PP > 1 {
				t.Errorf("%s: metric out of range: %+v", r.Query, r.Metrics)
			}
			t.Logf("%-9s %s", r.Query, r.Metrics)
		}
	}
}

func TestFig5SmallSample(t *testing.T) {
	for _, ds := range datagen.AllDatasets {
		env := testEnv(t, ds)
		row, err := Fig5(env, 40)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if row.Queries == 0 {
			t.Errorf("%s: no informative random queries generated", ds)
		}
		// The provably complete bound can never out-prune the true
		// selectivity; the paper bound may (false negatives), which the
		// row reports rather than hides.
		if row.SoundAvgPP > row.AvgSel+1e-9 {
			t.Errorf("%s: sound pruning power %.4f exceeds selectivity %.4f (false negatives!)",
				ds, row.SoundAvgPP, row.AvgSel)
		}
		t.Logf("%-9s n=%d avgSel=%.3f paper(pp=%.3f fpr=%.3f FN=%d) sound(pp=%.3f fpr=%.3f)",
			ds, row.Queries, row.AvgSel, row.AvgPP, row.AvgFPR, row.FalseNegQueries,
			row.SoundAvgPP, row.SoundAvgFPR)
	}
}

func TestFig6CrossSystemConsistency(t *testing.T) {
	for _, ds := range []datagen.Dataset{datagen.XMarkDataset, datagen.TreebankDataset, datagen.DBLPDataset} {
		env := testEnv(t, ds)
		rows, err := Fig6(env)
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		for _, r := range rows {
			if r.NoK.Count != r.FIXUnclust.Count || r.NoK.Count != r.FB.Count || r.NoK.Count != r.FIXClus.Count {
				t.Errorf("%s: result counts disagree: NoK=%d FIXu=%d FB=%d FIXc=%d",
					r.Query, r.NoK.Count, r.FIXUnclust.Count, r.FB.Count, r.FIXClus.Count)
			}
			t.Logf("%-12s count=%-6d NoK=%-10v FIXu=%-10v FB=%-10v FIXc=%v | modeled NoK=%v FIXu=%v FB=%v FIXc=%v",
				r.Query, r.NoK.Count, r.NoK.Wall, r.FIXUnclust.Wall, r.FB.Wall, r.FIXClus.Wall,
				r.NoK.Modeled, r.FIXUnclust.Modeled, r.FB.Modeled, r.FIXClus.Modeled)
		}
	}
}

func TestFig7ValueQueries(t *testing.T) {
	env := testEnv(t, datagen.DBLPDataset)
	rows, err := Fig7(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FB.Count != r.FIXVal.Count {
			t.Errorf("%s: F&B count %d != FIX count %d", r.Query, r.FB.Count, r.FIXVal.Count)
		}
		t.Logf("%-10s %s FB=%v/%v FIXval=%v/%v count=%d",
			r.Query, r.Metrics, r.FB.Wall, r.FB.Modeled, r.FIXVal.Wall, r.FIXVal.Modeled, r.FIXVal.Count)
	}
}

func TestBetaSweep(t *testing.T) {
	env := testEnv(t, datagen.DBLPDataset)
	rows, err := BetaSweep(env, []uint32{2, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		t.Logf("beta=%-3d build=%-10v idx=%dKB pairs=%d entries=%d",
			r.Beta, r.BuildTime, r.IdxBytes/1024, r.EdgePairs, r.Entries)
	}
}

func TestExtRTree(t *testing.T) {
	env := testEnv(t, datagen.XMarkDataset)
	rows, err := ExtRTree(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-10s candidates=%-6d btreeScanned=%-6d rtreeVisited=%d",
			r.Query, r.Candidates, r.BTreeScanned, r.RTreeVisited)
	}
}

func TestExtEvaluators(t *testing.T) {
	for _, ds := range []datagen.Dataset{datagen.XMarkDataset, datagen.TreebankDataset} {
		env := testEnv(t, ds)
		rows, err := ExtEvaluators(env)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			t.Logf("%-14s count=%-6d NoK=%-12v joins=%v", r.Query, r.Count, r.NoK, r.Joins)
		}
	}
}

func TestAblationRootLabelAndDepth(t *testing.T) {
	env := testEnv(t, datagen.XMarkDataset)
	rows, err := AblationRootLabel(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PPWithout > r.PPWith+1e-9 {
			t.Errorf("%s: removing the label feature increased pruning (%.3f -> %.3f)",
				r.Query, r.PPWith, r.PPWithout)
		}
		t.Logf("%-10s pp(label)=%.3f pp(none)=%.3f scan %d vs %d",
			r.Query, r.PPWith, r.PPWithout, r.ScannedWith, r.ScannedWithout)
	}
	depths, err := AblationDepth(env, []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(depths) != 3 {
		t.Fatalf("depth rows = %d", len(depths))
	}
	for i := 1; i < len(depths); i++ {
		if depths[i].IdxBytes < depths[i-1].IdxBytes {
			t.Logf("note: index size not monotone in depth (%d: %d vs %d: %d)",
				depths[i-1].Depth, depths[i-1].IdxBytes, depths[i].Depth, depths[i].IdxBytes)
		}
	}
	for _, r := range depths {
		t.Logf("depth=%d ICT=%v idx=%dKB covered=%d avgPP=%.3f", r.Depth, r.ICT, r.IdxBytes/1024, r.Covered, r.AvgPP)
	}
}

func TestAblationPruningModeRows(t *testing.T) {
	env := testEnv(t, datagen.TreebankDataset)
	rows, err := AblationPruningMode(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SoundPP > r.PaperPP+1e-9 {
			t.Errorf("%s: sound bound out-pruned the paper bound (%.3f > %.3f)", r.Query, r.SoundPP, r.PaperPP)
		}
		t.Logf("%-10s pp paper=%.3f sound=%.3f rst paper=%d exact=%d",
			r.Query, r.PaperPP, r.SoundPP, r.PaperRst, r.SoundRst)
	}
}

func TestFixedQueriesWellFormed(t *testing.T) {
	// Every benchmark query must parse, and every depth-limited workload
	// query must fit under the paper's depth limit of 6.
	check := func(name, expr string, needDepth bool) {
		q, err := xpath.Parse(expr)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		if needDepth {
			if d := xpath.Decompose(q.Tree())[0].Root.Depth(); d > 6 {
				t.Errorf("%s: top twig depth %d exceeds the index limit 6", name, d)
			}
		}
	}
	for ds, queries := range RepresentativeQueries {
		for _, rq := range queries {
			check(rq.Name, rq.XPath, ds != datagen.TCMDDataset)
		}
	}
	for ds, queries := range RuntimeQueries {
		for _, rq := range queries {
			check(rq.Name, rq.XPath, ds != datagen.TCMDDataset)
		}
	}
	for _, rq := range ValueQueries {
		check(rq.Name, rq.XPath, true)
	}
}

func TestTable1RowShape(t *testing.T) {
	env := testEnv(t, datagen.TCMDDataset)
	row, err := Table1(env)
	if err != nil {
		t.Fatal(err)
	}
	if row.DepthLimit != 0 {
		t.Errorf("TCMD depth limit = %d", row.DepthLimit)
	}
	if row.MaxDocDepth <= 0 {
		t.Errorf("max doc depth = %d", row.MaxDocDepth)
	}
	// Collection index: one entry per document.
	uidx, err := env.Unclustered()
	if err != nil {
		t.Fatal(err)
	}
	if uidx.Entries() != env.Store.NumRecords() {
		t.Errorf("entries %d != documents %d", uidx.Entries(), env.Store.NumRecords())
	}
}

func TestExtSpectrum(t *testing.T) {
	env := testEnv(t, datagen.TreebankDataset)
	rows, err := ExtSpectrum(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CandK4 > r.CandPlain {
			t.Errorf("%s: spectrum filter increased candidates (%d -> %d)", r.Query, r.CandPlain, r.CandK4)
		}
		if r.CandK4 < r.Rst {
			t.Errorf("%s: spectrum filter pruned below rst (%d < %d)", r.Query, r.CandK4, r.Rst)
		}
		t.Logf("%-10s cdt: %d -> %d (rst %d)", r.Query, r.CandPlain, r.CandK4, r.Rst)
	}
}
