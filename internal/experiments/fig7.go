package experiments

import (
	"fmt"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/datagen"
	"github.com/fix-index/fix/internal/xpath"
)

// DefaultBeta is the paper's β for the DBLP value index (§6.4).
const DefaultBeta = 10

// Fig7Row is one value-predicate query: implementation-independent
// metrics of the integrated value index (Figure 7a) and the runtime
// comparison against F&B (Figure 7b).
type Fig7Row struct {
	Query   string
	Metrics core.Metrics
	FB      SystemRun
	FIXVal  SystemRun
}

// Fig7 runs the DBLP value workload on the value-extended clustered FIX
// index and the F&B baseline, both with cold caches.
func Fig7(env *Env) ([]Fig7Row, error) {
	if env.Dataset != datagen.DBLPDataset {
		return nil, fmt.Errorf("experiments: Fig7 runs on DBLP, not %s", env.Dataset)
	}
	vidx, err := env.ValueIndex(DefaultBeta)
	if err != nil {
		return nil, err
	}
	fb, err := env.FB()
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, rq := range ValueQueries {
		q, err := xpath.Parse(rq.XPath)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", rq.Name, err)
		}
		row := Fig7Row{Query: rq.Name}
		m, err := vidx.Evaluate(q)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s (metrics): %w", rq.Name, err)
		}
		row.Metrics = m

		row.FB, err = runCold(
			func() error {
				fb.ClearCache()
				fb.ResetStats()
				env.Store.ClearCache()
				env.Store.ResetStats()
				return nil
			},
			func() (int, error) { return fb.Eval(q.Tree(), env.Store.Dict()) },
			func() IOStats {
				st := fb.Stats()
				io := storeIO(env.Store) // value refinement reads documents
				io.Random += st.PageReads
				io.SeqBytes += st.ExtentBytes
				return io
			},
		)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s (F&B): %w", rq.Name, err)
		}

		row.FIXVal, err = runCold(
			func() error {
				cs := vidx.ClusteredStore()
				cs.ClearCache()
				cs.ResetStats()
				vidx.BTree().ResetStats()
				return vidx.BTree().ClearCache()
			},
			func() (int, error) {
				res, err := vidx.Query(q)
				return res.Count, err
			},
			func() IOStats {
				io := storeIO(vidx.ClusteredStore())
				io.Random += vidx.BTree().Stats().PageReads
				return io
			},
		)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s (FIX values): %w", rq.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BetaRow reports the §6.4 construction-cost tradeoff for one β: a larger
// hash range means more distinct value labels, a larger bisimulation
// graph and a larger B-tree.
type BetaRow struct {
	Beta      uint32
	BuildTime time.Duration
	IdxBytes  int64
	EdgePairs int
	Entries   int
}

// BetaSweep builds value indexes for each β and reports their cost,
// alongside the β=0 structural baseline.
func BetaSweep(env *Env, betas []uint32) ([]BetaRow, error) {
	// Structural baseline first.
	base, err := core.Build(env.Store, core.Options{DepthLimit: env.DepthLimit(), Clustered: true})
	if err != nil {
		return nil, err
	}
	rows := []BetaRow{{
		Beta:      0,
		BuildTime: base.BuildTime(),
		IdxBytes:  base.SizeBytes(),
		EdgePairs: base.EdgePairs(),
		Entries:   base.Entries(),
	}}
	for _, beta := range betas {
		ix, err := core.Build(env.Store, core.Options{
			DepthLimit: env.DepthLimit(),
			Clustered:  true,
			Values:     true,
			Beta:       beta,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BetaRow{
			Beta:      beta,
			BuildTime: ix.BuildTime(),
			IdxBytes:  ix.SizeBytes(),
			EdgePairs: ix.EdgePairs(),
			Entries:   ix.Entries(),
		})
	}
	return rows, nil
}
