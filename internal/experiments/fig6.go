package experiments

import (
	"fmt"
	"time"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xpath"
)

// SystemRun is one system's cold-cache execution of one query: wall time
// in RAM, the I/O footprint, and the footprint converted to reference
// disk time (wall + modeled I/O).
type SystemRun struct {
	Wall    time.Duration
	IO      IOStats
	Modeled time.Duration
	Count   int
}

// Fig6Row is one runtime comparison: the four systems of Figure 6 on one
// query. Unclustered FIX is compared against the bare NoK scan, clustered
// FIX against the F&B index, as in the paper (§6.3).
type Fig6Row struct {
	Query                        string
	NoK, FIXUnclust, FB, FIXClus SystemRun
}

// Fig6 runs the dataset's runtime workload over all four systems with
// cold caches.
func Fig6(env *Env) ([]Fig6Row, error) {
	queries, ok := RuntimeQueries[env.Dataset]
	if !ok {
		return nil, fmt.Errorf("experiments: no runtime queries for %s", env.Dataset)
	}
	uidx, err := env.Unclustered()
	if err != nil {
		return nil, err
	}
	cidx, err := env.Clustered()
	if err != nil {
		return nil, err
	}
	fb, err := env.FB()
	if err != nil {
		return nil, err
	}
	var rows []Fig6Row
	for _, rq := range queries {
		q, err := xpath.Parse(rq.XPath)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", rq.Name, err)
		}
		row := Fig6Row{Query: rq.Name}

		row.NoK, err = runCold(
			func() error { env.Store.ClearCache(); env.Store.ResetStats(); return nil },
			func() (int, error) { return env.NoKScan(q) },
			func() IOStats { return storeIO(env.Store) },
		)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s (NoK): %w", rq.Name, err)
		}

		row.FIXUnclust, err = runCold(
			func() error {
				env.Store.ClearCache()
				env.Store.ResetStats()
				uidx.BTree().ResetStats()
				return uidx.BTree().ClearCache()
			},
			func() (int, error) {
				res, err := uidx.Query(q)
				return res.Count, err
			},
			func() IOStats {
				// Unclustered refinement dereferences one pointer per
				// candidate: a seek plus the subtree's bytes.
				st := env.Store.Stats()
				return IOStats{
					Random:   st.SubtreeReads + uidx.BTree().Stats().PageReads,
					SeqBytes: st.SubtreeBytes,
				}
			},
		)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s (FIX unclustered): %w", rq.Name, err)
		}

		row.FB, err = runCold(
			func() error { fb.ClearCache(); fb.ResetStats(); return nil },
			func() (int, error) { return fb.Eval(q.Tree(), env.Store.Dict()) },
			func() IOStats {
				st := fb.Stats()
				return IOStats{Random: st.PageReads, SeqBytes: st.ExtentBytes}
			},
		)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s (F&B): %w", rq.Name, err)
		}

		row.FIXClus, err = runCold(
			func() error {
				cs := cidx.ClusteredStore()
				cs.ClearCache()
				cs.ResetStats()
				cidx.BTree().ResetStats()
				return cidx.BTree().ClearCache()
			},
			func() (int, error) {
				res, err := cidx.Query(q)
				return res.Count, err
			},
			func() IOStats {
				io := storeIO(cidx.ClusteredStore())
				io.Random += cidx.BTree().Stats().PageReads
				return io
			},
		)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s (FIX clustered): %w", rq.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runCold clears state, executes once, and collects wall time plus the
// I/O footprint.
func runCold(clear func() error, run func() (int, error), io func() IOStats) (SystemRun, error) {
	if err := clear(); err != nil {
		return SystemRun{}, err
	}
	start := time.Now()
	count, err := run()
	if err != nil {
		return SystemRun{}, err
	}
	wall := time.Since(start)
	footprint := io()
	return SystemRun{
		Wall:    wall,
		IO:      footprint,
		Modeled: wall + Disk2006.IOTime(footprint),
		Count:   count,
	}, nil
}

// storeIO converts store counters to a footprint: random record accesses
// are seeks, all transferred bytes stream sequentially after the seek.
func storeIO(s *storage.Store) IOStats {
	st := s.Stats()
	return IOStats{Random: st.RandomReads, SeqBytes: st.BytesRead}
}
