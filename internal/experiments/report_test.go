package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/fix-index/fix/internal/core"
)

// The printers render the tables users quote in reports; a malformed verb
// or misaligned column would silently garble every experiment. Render
// each one and check the headers and a known cell.
func TestPrinters(t *testing.T) {
	var sb strings.Builder

	PrintTable1(&sb, []Table1Row{{
		Dataset: "xmark", SizeBytes: 2 << 20, Elements: 1234,
		ICT: 3 * time.Second, UIdxBytes: 1 << 20, CIdxBytes: 2 << 20, Oversize: 7,
	}})
	out := sb.String()
	for _, want := range []string{"data set", "xmark", "1234", "3s", "2.0 MB", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	PrintTable2(&sb, []Table2Row{{
		Query: "Q_hi", Band: "hi",
		Metrics: core.Metrics{Ent: 100, Cdt: 10, Rst: 5, Sel: 0.95, PP: 0.9, FPR: 0.5},
	}})
	out = sb.String()
	for _, want := range []string{"Q_hi", "95.00%", "90.00%", "50.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	PrintFig5(&sb, []Fig5Row{{Dataset: "dblp", Queries: 300, AvgSel: 0.97, AvgPP: 0.96, AvgFPR: 0.3, FalseNegQueries: 2, SoundAvgPP: 0.95, SoundAvgFPR: 0.31}})
	if !strings.Contains(sb.String(), "FN qry") || !strings.Contains(sb.String(), "dblp") {
		t.Errorf("Fig5 output:\n%s", sb.String())
	}

	sb.Reset()
	run := SystemRun{Wall: time.Millisecond, Modeled: 2 * time.Millisecond, Count: 9}
	PrintFig6(&sb, "xmark", []Fig6Row{{Query: "q", NoK: run, FIXUnclust: run, FB: run, FIXClus: run}})
	if !strings.Contains(sb.String(), "FIX-clus") || !strings.Contains(sb.String(), "modeled") {
		t.Errorf("Fig6 output:\n%s", sb.String())
	}

	sb.Reset()
	PrintFig7(&sb, []Fig7Row{{Query: "v", Metrics: core.Metrics{Sel: 0.99, PP: 0.98, FPR: 0.7}, FB: run, FIXVal: run}})
	if !strings.Contains(sb.String(), "Figure 7a") {
		t.Errorf("Fig7 output:\n%s", sb.String())
	}

	sb.Reset()
	PrintBetaSweep(&sb, []BetaRow{{Beta: 10, BuildTime: time.Second, IdxBytes: 1 << 10, EdgePairs: 50, Entries: 99}})
	if !strings.Contains(sb.String(), "beta") || !strings.Contains(sb.String(), "99") {
		t.Errorf("BetaSweep output:\n%s", sb.String())
	}

	sb.Reset()
	PrintRootLabelAblation(&sb, []RootLabelRow{{Query: "q", PPWith: 0.9, PPWithout: 0.5, ScannedWith: 10, ScannedWithout: 1000}})
	if !strings.Contains(sb.String(), "pp(label)") {
		t.Errorf("RootLabel output:\n%s", sb.String())
	}

	sb.Reset()
	PrintDepthSweep(&sb, []DepthSweepRow{{Depth: 6, ICT: time.Second, IdxBytes: 1 << 20, Covered: 3, AvgPP: 0.99}})
	if !strings.Contains(sb.String(), "depth") {
		t.Errorf("DepthSweep output:\n%s", sb.String())
	}

	sb.Reset()
	PrintPruningMode(&sb, []PruningModeRow{{Query: "q", PaperPP: 0.9, SoundPP: 0.9, PaperRst: 4, SoundRst: 5}})
	if !strings.Contains(sb.String(), "false negatives") {
		t.Errorf("PruningMode output should flag lost results:\n%s", sb.String())
	}

	sb.Reset()
	PrintRTree(&sb, []RTreeRow{{Query: "q", Candidates: 5, BTreeScanned: 100, RTreeVisited: 12}})
	if !strings.Contains(sb.String(), "rtree visited") {
		t.Errorf("RTree output:\n%s", sb.String())
	}

	sb.Reset()
	PrintEvaluators(&sb, []EvaluatorRow{{Query: "q", Count: 3, NoK: time.Millisecond, Joins: time.Microsecond, TagBuild: time.Millisecond, TagMB: 1.5}})
	if !strings.Contains(sb.String(), "joins") {
		t.Errorf("Evaluators output:\n%s", sb.String())
	}
	PrintEvaluators(&sb, nil) // empty rows must not panic

	sb.Reset()
	PrintSpectrum(&sb, []SpectrumRow{{Query: "q", CandPlain: 10, CandK4: 8, Rst: 5}})
	if !strings.Contains(sb.String(), "cdt(K=4)") {
		t.Errorf("Spectrum output:\n%s", sb.String())
	}
}
