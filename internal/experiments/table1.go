package experiments

import "time"

// Table1Row reports dataset characteristics, index construction time and
// index sizes, the columns of the paper's Table 1.
type Table1Row struct {
	Dataset     string
	SizeBytes   int64
	Elements    int
	ICT         time.Duration // unclustered construction time
	UIdxBytes   int64
	CIdxBytes   int64
	Oversize    int // entries with the artificial [0, inf) range (§6.1)
	DepthLimit  int
	MaxDocDepth int
}

// Table1 builds both index layouts for the environment's dataset and
// returns the statistics row.
func Table1(env *Env) (Table1Row, error) {
	uidx, err := env.Unclustered()
	if err != nil {
		return Table1Row{}, err
	}
	cidx, err := env.Clustered()
	if err != nil {
		return Table1Row{}, err
	}
	return Table1Row{
		Dataset:     string(env.Dataset),
		SizeBytes:   env.Store.Size(),
		Elements:    env.Elements(),
		ICT:         env.uidxTime,
		UIdxBytes:   uidx.SizeBytes(),
		CIdxBytes:   cidx.SizeBytes(),
		Oversize:    uidx.OversizeEntries(),
		DepthLimit:  env.DepthLimit(),
		MaxDocDepth: uidx.MaxDocDepth(),
	}, nil
}
