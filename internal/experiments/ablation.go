package experiments

import (
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/xpath"
)

// The ablations quantify two design choices DESIGN.md calls out: the
// root-label component of the feature key (paper §3.4) and the depth
// limit / coverage / index size tradeoff (paper §4.4).

// RootLabelRow compares pruning with and without the root-label feature
// for one representative query.
type RootLabelRow struct {
	Query          string
	PPWith         float64
	PPWithout      float64
	ScannedWith    int
	ScannedWithout int
}

// AblationRootLabel builds a second index whose query planner ignores the
// root label and contrasts pruning power and scan effort.
func AblationRootLabel(env *Env) ([]RootLabelRow, error) {
	with, err := env.Unclustered()
	if err != nil {
		return nil, err
	}
	without, err := core.Build(env.Store, core.Options{
		DepthLimit:  env.DepthLimit(),
		NoRootLabel: true,
	})
	if err != nil {
		return nil, err
	}
	var rows []RootLabelRow
	for _, rq := range RepresentativeQueries[env.Dataset] {
		q, err := xpath.Parse(rq.XPath)
		if err != nil {
			return nil, err
		}
		resW, err := with.Query(q)
		if err != nil {
			return nil, err
		}
		resWo, err := without.Query(q)
		if err != nil {
			return nil, err
		}
		mW := computeMetricsFromResult(resW)
		mWo := computeMetricsFromResult(resWo)
		rows = append(rows, RootLabelRow{
			Query:          rq.Name,
			PPWith:         mW.PP,
			PPWithout:      mWo.PP,
			ScannedWith:    resW.Scanned,
			ScannedWithout: resWo.Scanned,
		})
	}
	return rows, nil
}

func computeMetricsFromResult(r core.Result) core.Metrics {
	return core.Metrics{
		Ent: r.Entries, Cdt: r.Candidates, Rst: r.Matched,
		PP: 1 - float64(r.Candidates)/float64(max(1, r.Entries)),
	}
}

// DepthSweepRow reports one depth limit's cost and coverage.
type DepthSweepRow struct {
	Depth    int
	ICT      time.Duration
	IdxBytes int64
	Oversize int
	Covered  int // representative queries the index can answer
	AvgPP    float64
}

// AblationDepth builds unclustered indexes at several depth limits and
// reports construction cost, coverage of the representative queries and
// average pruning power over the covered ones.
func AblationDepth(env *Env, depths []int) ([]DepthSweepRow, error) {
	queries := RepresentativeQueries[env.Dataset]
	var rows []DepthSweepRow
	for _, d := range depths {
		ix, err := core.Build(env.Store, core.Options{DepthLimit: d})
		if err != nil {
			return nil, err
		}
		row := DepthSweepRow{
			Depth:    d,
			ICT:      ix.BuildTime(),
			IdxBytes: ix.SizeBytes(),
			Oversize: ix.OversizeEntries(),
		}
		for _, rq := range queries {
			q, err := xpath.Parse(rq.XPath)
			if err != nil {
				return nil, err
			}
			if !ix.Covered(q) {
				continue
			}
			m, err := ix.Evaluate(q)
			if err != nil {
				return nil, err
			}
			row.Covered++
			row.AvgPP += m.PP
		}
		if row.Covered > 0 {
			row.AvgPP /= float64(row.Covered)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PruningModeRow contrasts the paper's pruning bound with the provably
// complete default on one representative query.
type PruningModeRow struct {
	Query    string
	PaperPP  float64
	SoundPP  float64
	PaperRst int
	SoundRst int // exact; a smaller PaperRst means false negatives
}

// AblationPruningMode evaluates the dataset's representative queries
// under both pruning bounds.
func AblationPruningMode(env *Env) ([]PruningModeRow, error) {
	paper, err := env.Unclustered()
	if err != nil {
		return nil, err
	}
	sound, err := env.SoundIndex()
	if err != nil {
		return nil, err
	}
	var rows []PruningModeRow
	for _, rq := range RepresentativeQueries[env.Dataset] {
		q, err := xpath.Parse(rq.XPath)
		if err != nil {
			return nil, err
		}
		pm, err := paper.Evaluate(q)
		if err != nil {
			return nil, err
		}
		sm, err := sound.Evaluate(q)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PruningModeRow{
			Query:    rq.Name,
			PaperPP:  pm.PP,
			SoundPP:  sm.PP,
			PaperRst: pm.Rst,
			SoundRst: sm.Rst,
		})
	}
	return rows, nil
}
