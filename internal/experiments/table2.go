package experiments

import (
	"fmt"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/xpath"
)

// Table2Row is one representative query's implementation-independent
// metrics (paper Table 2).
type Table2Row struct {
	Query string
	Band  string
	core.Metrics
}

// Table2 evaluates the dataset's representative queries on the
// unclustered index.
func Table2(env *Env) ([]Table2Row, error) {
	ix, err := env.Unclustered()
	if err != nil {
		return nil, err
	}
	queries, ok := RepresentativeQueries[env.Dataset]
	if !ok {
		return nil, fmt.Errorf("experiments: no representative queries for %s", env.Dataset)
	}
	var rows []Table2Row
	for _, rq := range queries {
		q, err := xpath.Parse(rq.XPath)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", rq.Name, err)
		}
		m, err := ix.Evaluate(q)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", rq.Name, err)
		}
		rows = append(rows, Table2Row{Query: rq.Name, Band: rq.Band, Metrics: m})
	}
	return rows, nil
}
