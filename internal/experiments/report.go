package experiments

import (
	"fmt"
	"io"
	"time"
)

// Report formatting: paper-style rows, one function per table/figure, so
// cmd/fixbench stays a thin flag-parsing shell.

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func fmtDur(d time.Duration) string {
	return d.Round(100 * time.Microsecond).String()
}

// PrintTable1 renders Table 1 rows.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: data sets, index construction times (ICT), index sizes\n")
	fmt.Fprintf(w, "%-10s %10s %10s %12s %10s %10s %9s\n",
		"data set", "size", "#elements", "ICT", "|UIdx|", "|CIdx|", "oversize")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10s %10d %12s %10s %10s %9d\n",
			r.Dataset, fmtBytes(r.SizeBytes), r.Elements, fmtDur(r.ICT),
			fmtBytes(r.UIdxBytes), fmtBytes(r.CIdxBytes), r.Oversize)
	}
}

// PrintTable2 renders Table 2 rows.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-10s %8s %8s %8s %10s %10s %10s\n",
		"query", "sel", "pp", "fpr", "ent", "cdt", "rst")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %7.2f%% %7.2f%% %7.2f%% %10d %10d %10d\n",
			r.Query, r.Sel*100, r.PP*100, r.FPR*100, r.Ent, r.Cdt, r.Rst)
	}
}

// PrintFig5 renders Figure 5 rows.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintf(w, "Figure 5: average sel/pp/fpr over random queries (paper bound | sound bound)\n")
	fmt.Fprintf(w, "%-10s %8s %8s | %8s %8s %7s | %8s %8s\n",
		"data set", "queries", "avg sel", "avg pp", "avg fpr", "FN qry", "pp", "fpr")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %7.2f%% | %7.2f%% %7.2f%% %7d | %7.2f%% %7.2f%%\n",
			r.Dataset, r.Queries, r.AvgSel*100,
			r.AvgPP*100, r.AvgFPR*100, r.FalseNegQueries,
			r.SoundAvgPP*100, r.SoundAvgFPR*100)
	}
}

// PrintFig6 renders one dataset's Figure 6 rows: wall-clock (RAM) and
// modeled reference-disk time per system.
func PrintFig6(w io.Writer, title string, rows []Fig6Row) {
	fmt.Fprintf(w, "Figure 6 (%s): runtime, wall (RAM-resident) | modeled (2006 disk)\n", title)
	fmt.Fprintf(w, "%-14s %8s | %12s %12s %12s %12s | %12s %12s %12s %12s\n",
		"query", "results", "NoK", "FIX-uncl", "F&B", "FIX-clus", "NoK*", "FIX-uncl*", "F&B*", "FIX-clus*")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d | %12s %12s %12s %12s | %12s %12s %12s %12s\n",
			r.Query, r.NoK.Count,
			fmtDur(r.NoK.Wall), fmtDur(r.FIXUnclust.Wall), fmtDur(r.FB.Wall), fmtDur(r.FIXClus.Wall),
			fmtDur(r.NoK.Modeled), fmtDur(r.FIXUnclust.Modeled), fmtDur(r.FB.Modeled), fmtDur(r.FIXClus.Modeled))
	}
	fmt.Fprintf(w, "(* modeled: wall + 8.5ms/seek + 50MB/s sequential; see EXPERIMENTS.md)\n")
}

// PrintFig7 renders the Figure 7 rows.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Figure 7a: value-index metrics      Figure 7b: runtime vs F&B\n")
	fmt.Fprintf(w, "%-12s %8s %8s %8s | %12s %12s | %12s %12s\n",
		"query", "sel", "pp", "fpr", "F&B wall", "FIX wall", "F&B*", "FIX*")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %7.2f%% %7.2f%% %7.2f%% | %12s %12s | %12s %12s\n",
			r.Query, r.Metrics.Sel*100, r.Metrics.PP*100, r.Metrics.FPR*100,
			fmtDur(r.FB.Wall), fmtDur(r.FIXVal.Wall), fmtDur(r.FB.Modeled), fmtDur(r.FIXVal.Modeled))
	}
}

// PrintBetaSweep renders the β construction-cost sweep (§6.4).
func PrintBetaSweep(w io.Writer, rows []BetaRow) {
	fmt.Fprintf(w, "Beta sweep (§6.4): value-index construction cost vs β (β=0: structural)\n")
	fmt.Fprintf(w, "%6s %14s %12s %12s %10s\n", "beta", "build", "index size", "edge pairs", "entries")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %14s %12s %12d %10d\n",
			r.Beta, fmtDur(r.BuildTime), fmtBytes(r.IdxBytes), r.EdgePairs, r.Entries)
	}
}

// PrintRootLabelAblation renders the root-label feature ablation.
func PrintRootLabelAblation(w io.Writer, rows []RootLabelRow) {
	fmt.Fprintf(w, "Ablation: root-label feature (pruning power with/without)\n")
	fmt.Fprintf(w, "%-10s %10s %10s %12s %14s\n", "query", "pp(label)", "pp(none)", "scan(label)", "scan(none)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9.2f%% %9.2f%% %12d %14d\n",
			r.Query, r.PPWith*100, r.PPWithout*100, r.ScannedWith, r.ScannedWithout)
	}
}

// PrintDepthSweep renders the depth-limit ablation.
func PrintDepthSweep(w io.Writer, rows []DepthSweepRow) {
	fmt.Fprintf(w, "Ablation: depth limit (cost vs coverage)\n")
	fmt.Fprintf(w, "%6s %14s %12s %9s %8s %8s\n", "depth", "ICT", "index size", "oversize", "covered", "avg pp")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %14s %12s %9d %8d %7.2f%%\n",
			r.Depth, fmtDur(r.ICT), fmtBytes(r.IdxBytes), r.Oversize, r.Covered, r.AvgPP*100)
	}
}

// PrintPruningMode renders the pruning-bound ablation.
func PrintPruningMode(w io.Writer, rows []PruningModeRow) {
	fmt.Fprintf(w, "Ablation: pruning bound (paper full-pattern vs provably complete)\n")
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s\n", "query", "pp(paper)", "pp(sound)", "rst(paper)", "rst(exact)")
	for _, r := range rows {
		flag := ""
		if r.PaperRst < r.SoundRst {
			flag = "  <- false negatives"
		}
		fmt.Fprintf(w, "%-10s %9.2f%% %9.2f%% %10d %10d%s\n",
			r.Query, r.PaperPP*100, r.SoundPP*100, r.PaperRst, r.SoundRst, flag)
	}
}

// PrintRTree renders the R-tree extension comparison.
func PrintRTree(w io.Writer, rows []RTreeRow) {
	fmt.Fprintf(w, "Extension (§8): feature R-tree vs B-tree scan effort\n")
	fmt.Fprintf(w, "%-10s %12s %14s %14s\n", "query", "candidates", "btree scanned", "rtree visited")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12d %14d %14d\n", r.Query, r.Candidates, r.BTreeScanned, r.RTreeVisited)
	}
}

// PrintEvaluators renders the evaluator comparison.
func PrintEvaluators(w io.Writer, rows []EvaluatorRow) {
	fmt.Fprintf(w, "Extension: navigational (NoK) vs join-based (structural join) evaluation\n")
	fmt.Fprintf(w, "%-14s %8s %12s %12s   (tag index: %s build, %.1f MB)\n",
		"query", "results", "NoK", "joins",
		func() string {
			if len(rows) > 0 {
				return fmtDur(rows[0].TagBuild)
			}
			return "-"
		}(),
		func() float64 {
			if len(rows) > 0 {
				return rows[0].TagMB
			}
			return 0
		}())
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %8d %12s %12s\n", r.Query, r.Count, fmtDur(r.NoK), fmtDur(r.Joins))
	}
}

// PrintSpectrum renders the spectrum-filter extension comparison.
func PrintSpectrum(w io.Writer, rows []SpectrumRow) {
	fmt.Fprintf(w, "Extension (§3.3): spectrum filter, candidates without/with K=4\n")
	fmt.Fprintf(w, "%-10s %12s %12s %10s\n", "query", "cdt(K=0)", "cdt(K=4)", "rst")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12d %12d %10d\n", r.Query, r.CandPlain, r.CandK4, r.Rst)
	}
}
