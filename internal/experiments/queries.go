package experiments

import "github.com/fix-index/fix/internal/datagen"

// The fixed query workloads of the paper's evaluation, verbatim from §6.2
// (representative selectivity queries), §6.3 (runtime queries) and §6.4
// (value queries).

// RepQuery is a representative query with its selectivity band.
type RepQuery struct {
	Name  string
	Band  string // hi, md, lo
	XPath string
}

// RepresentativeQueries reproduces the Table 2 workload.
var RepresentativeQueries = map[datagen.Dataset][]RepQuery{
	datagen.TCMDDataset: {
		{"TCMD_hi", "hi", "/article/epilog[acknoledgements]/references/a_id"},
		{"TCMD_md", "md", "/article/prolog[keywords]/authors/author/contact[phone]"},
		{"TCMD_lo", "lo", "/article[epilog]/prolog/authors/author"},
	},
	datagen.DBLPDataset: {
		{"DBLP_hi", "hi", "//proceedings[booktitle]/title[sup][i]"},
		{"DBLP_md", "md", "//article[number]/author"},
		{"DBLP_lo", "lo", "//inproceedings[url]/title"},
	},
	datagen.XMarkDataset: {
		{"XMark_hi", "hi", "//category/description[parlist]/parlist/listitem/text"},
		{"XMark_md", "md", "//closed_auction/annotation/description/text"},
		{"XMark_lo", "lo", "//open_auction[seller]/annotation/description/text"},
	},
	datagen.TreebankDataset: {
		{"TrBnk_hi", "hi", "//EMPTY/S/NP[PP]/NP"},
		{"TrBnk_md", "md", "//S[VP]/NP/NP/PP/NP"},
		{"TrBnk_lo", "lo", "//EMPTY/S[VP]/NP"},
	},
}

// RuntimeQuery is one Figure 6 query: {hi,lo} selectivity × {simple path,
// branching path}.
type RuntimeQuery struct {
	Name  string
	XPath string
}

// RuntimeQueries reproduces the §6.3 workload for Figures 6a-6c.
var RuntimeQueries = map[datagen.Dataset][]RuntimeQuery{
	datagen.XMarkDataset: {
		{"XMark_hi_sp", "//item/mailbox/mail/text/emph/keyword"},
		{"XMark_lo_sp", "//description/parlist/listitem"},
		{"XMark_hi_bp", "//item[name]/mailbox/mail[to]/text[bold]/emph/bold"},
		{"XMark_lo_bp", "//item[payment][quantity][shipping][mailbox/mail/text]/description/parlist"},
	},
	datagen.TreebankDataset: {
		{"Trbnk_hi_sp", "//EMPTY/S/NP/NP/PP"},
		{"Trbnk_lo_sp", "//EMPTY/S/VP"},
		{"Trbnk_hi_bp", "//EMPTY/S/NP[PP]/NP"},
		{"Trbnk_lo_bp", "//EMPTY/S[VP]/NP"},
	},
	datagen.DBLPDataset: {
		{"DBLP_hi_sp", "//inproceedings/title/i"},
		{"DBLP_lo_sp", "//dblp/inproceedings/author"},
		{"DBLP_hi_bp", "//inproceedings[url]/title[sub][i]"},
		{"DBLP_lo_bp", "//article[number]/author"},
	},
}

// ValueQueries reproduces the §6.4 DBLP value-predicate workload
// (Figure 7).
var ValueQueries = []RuntimeQuery{
	{"DBLP_vl_hi", `//proceedings[publisher="Springer"][title]`},
	{"DBLP_vl_lo", `//inproceedings[year="1998"][title]/author`},
}
