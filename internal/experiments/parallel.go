package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"time"

	"github.com/fix-index/fix/internal/core"
)

// The parallel-construction sweep is not a paper experiment — the paper
// predates the many-core era — but it validates the repository's claim
// that Build parallelizes without changing the index: every worker count
// must produce byte-identical entries, and the speedup table shows what
// the extra cores buy.

// ParallelRow is one (dataset, worker count) measurement of the sweep.
type ParallelRow struct {
	Dataset     string        `json:"dataset"`
	Workers     int           `json:"workers"`
	Build       time.Duration `json:"build_ns"`
	Speedup     float64       `json:"speedup_vs_1"`
	UnitsPerSec float64       `json:"units_per_sec"`
	Entries     int           `json:"entries"`
	Hash        string        `json:"entry_hash"`
	Identical   bool          `json:"identical_to_workers_1"`
}

// SweepWorkerCounts returns the canonical sweep: 1, 2, 4 and NumCPU
// workers, deduplicated and sorted.
func SweepWorkerCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var counts []int
	for n := range set {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	return counts
}

// ParallelSweep rebuilds the unclustered index of env's dataset once per
// worker count, hashing the resulting entries to prove the index is
// independent of the parallelism, and reports build time and speedup
// relative to the sequential build.
func ParallelSweep(env *Env, workerCounts []int) ([]ParallelRow, error) {
	var rows []ParallelRow
	var baseline time.Duration
	var baseHash string
	for _, w := range workerCounts {
		ix, err := core.Build(env.Store, core.Options{
			DepthLimit:   env.DepthLimit(),
			PaperPruning: true,
			Workers:      w,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: parallel sweep, %d workers: %w", w, err)
		}
		h, err := indexEntryHash(ix)
		if err != nil {
			return nil, err
		}
		stats := ix.Stats()
		row := ParallelRow{
			Dataset:     string(env.Dataset),
			Workers:     stats.Workers,
			Build:       stats.Wall,
			UnitsPerSec: stats.UnitsPerSec(),
			Entries:     ix.Entries(),
			Hash:        h,
		}
		if len(rows) == 0 {
			baseline, baseHash = stats.Wall, h
		}
		if baseline > 0 {
			row.Speedup = baseline.Seconds() / stats.Wall.Seconds()
		}
		row.Identical = h == baseHash
		if !row.Identical {
			return nil, fmt.Errorf("experiments: index with %d workers diverged from sequential build (hash %s != %s)", w, h, baseHash)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// indexEntryHash hashes every B-tree entry (key and value bytes) in key
// order. Two builds with the same hash produced the same index content,
// whatever their worker counts.
func indexEntryHash(ix *core.Index) (string, error) {
	h := fnv.New64a()
	var lenBuf [4]byte
	err := ix.BTree().Scan(nil, nil, func(k, v []byte) bool {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(k)))
		h.Write(lenBuf[:])
		h.Write(k)
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(v)))
		h.Write(lenBuf[:])
		h.Write(v)
		return true
	})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// PrintParallelSweep renders the sweep as a speedup table.
func PrintParallelSweep(w io.Writer, rows []ParallelRow) {
	fmt.Fprintf(w, "Parallel construction sweep (NumCPU=%d; identical=index bytes match Workers=1)\n", runtime.NumCPU())
	fmt.Fprintf(w, "%-10s %8s %12s %9s %12s %8s  %s\n",
		"dataset", "workers", "build", "speedup", "units/s", "entries", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %12s %8.2fx %12.0f %8d  %v\n",
			r.Dataset, r.Workers, r.Build.Round(time.Millisecond), r.Speedup, r.UnitsPerSec, r.Entries, r.Identical)
	}
}
