package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/fix-index/fix/fix"
)

// The maintenance sweep is not a paper experiment: it measures the
// online-checkpointing claim (PR 10) that the maintenance subsystem
// bounds the stall a writer sees. Both modes run the same single-writer
// batched ingest stream against a persistent, indexed database; the
// difference is the absorption regime. "blocking-save" is the old
// behavior: a periodic timer calls the naive full-lock Save, so dirty
// heap bytes accumulate for the whole period and the unlucky writer
// stalls for the entire absorption (fsync cost grows linearly with the
// window — ~5ms/MB on typical hardware). "background-checkpoint" is the
// shipped Maintainer: a WAL-bytes threshold triggers chunked
// checkpoints whose heap pre-sync runs off-lock, so both the replay
// window and the locked tail stay small no matter how fast ingest runs.
// The interesting columns are the per-batch latency tail (p99, max) and
// the replay-window high-water mark.

// MaintenanceRow is one absorption mode's ingest-stall measurement.
type MaintenanceRow struct {
	Mode        string        `json:"mode"`
	Docs        int           `json:"docs"`
	Batches     int           `json:"batches"`
	Checkpoints int64         `json:"checkpoints"`
	IngestWall  time.Duration `json:"ingest_ns"`
	DocsPerSec  float64       `json:"docs_per_sec"`
	// StallP50/P99/Max summarize the per-batch IngestBatchCtx latency —
	// the stall an acknowledged write waits through, including any
	// concurrent absorption it had to queue behind.
	StallP50 time.Duration `json:"stall_p50_ns"`
	StallP99 time.Duration `json:"stall_p99_ns"`
	StallMax time.Duration `json:"stall_max_ns"`
	// MaxWALBytes is the replay-window high-water mark sampled during
	// the run: the most WAL a crash at the worst moment would replay.
	MaxWALBytes int64 `json:"max_wal_bytes"`
}

// MaintenanceModes returns the sweep's absorption modes in print order.
func MaintenanceModes() []string {
	return []string{"blocking-save", "background-checkpoint"}
}

// maintenanceDoc builds one synthetic document: a small structural head
// (so the index has paths to maintain) and an ~8 KB text blob. The blob
// is the point — it is cheap to parse and extract per byte, so a writer
// dirties heap pages much faster than it burns CPU, and the stall
// contrast between the modes is exactly the dirty-heap volume a
// blocking Save fsyncs under lock.
func maintenanceDoc(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<rec seq="%d"><name>n%d</name>`, n, n)
	for j := 0; j < 4; j++ {
		fmt.Fprintf(&b, `<field idx="%d"><v>payload-%d-%d</v></field>`, j, n, j)
	}
	b.WriteString(`<blob>`)
	b.WriteString(strings.Repeat("x", 8<<10))
	b.WriteString(`</blob></rec>`)
	return b.String()
}

// MaintenanceSweep measures per-batch ingest latency under each
// absorption mode: docs documents in batches of batch, with the WAL
// absorbed every interval. Each mode runs in its own database under
// dir.
func MaintenanceSweep(ctx context.Context, dir string, docs, batch int, interval time.Duration) ([]MaintenanceRow, error) {
	var rows []MaintenanceRow
	for _, mode := range MaintenanceModes() {
		row, err := maintenanceOne(ctx, filepath.Join(dir, mode), mode, docs, batch, interval)
		if err != nil {
			return nil, fmt.Errorf("experiments: maintenance sweep, mode %s: %w", mode, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func maintenanceOne(ctx context.Context, dir, mode string, docs, batch int, interval time.Duration) (MaintenanceRow, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return MaintenanceRow{}, err
	}
	db, err := fix.Create(dir)
	if err != nil {
		return MaintenanceRow{}, err
	}
	defer db.Close()

	// Seed and index the database so every absorption carries the full
	// commit cost — heap fsync plus the index's shadow-commit journal —
	// the way a long-running serving instance's does.
	for i := 0; i < 256; i++ {
		if _, err := db.AddDocumentString(maintenanceDoc(i)); err != nil {
			return MaintenanceRow{}, err
		}
	}
	if err := db.BuildIndex(fix.IndexOptions{}); err != nil {
		return MaintenanceRow{}, err
	}
	if err := db.Save(); err != nil {
		return MaintenanceRow{}, err
	}

	// Absorption, per mode. The blocking ticker calls the naive
	// full-lock Save once per interval — the window grows with ingest
	// rate. The maintainer evaluates its triggers at interval/8 and
	// absorbs once a megabyte of WAL accumulates (with interval as the
	// age backstop), keeping every absorption small.
	// blockingCkpts and maxWAL are written only by their goroutine and
	// read after wg.Wait — the WaitGroup orders the accesses.
	done := make(chan struct{})
	var wg sync.WaitGroup
	var blockingCkpts int64
	var mnt *fix.Maintainer
	switch mode {
	case "blocking-save":
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-done:
					return
				case <-ticker.C:
					if err := db.CheckpointBlocking(); err == nil {
						blockingCkpts++
					}
				}
			}
		}()
	case "background-checkpoint":
		mnt, err = db.StartMaintainer(ctx, fix.MaintainConfig{
			Interval:      interval / 8,
			WALOps:        -1,
			WALBytes:      1 << 20,
			MaxAge:        interval,
			ScrubInterval: -1,
		})
		if err != nil {
			return MaintenanceRow{}, err
		}
		defer mnt.Close()
	default:
		return MaintenanceRow{}, fmt.Errorf("unknown mode %q", mode)
	}

	// The replay-window sampler: WAL size polled at 1/8 the absorption
	// cadence, high-water kept.
	var maxWAL int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval / 8)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if n := db.WALBytes(); n > maxWAL {
					maxWAL = n
				}
			}
		}
	}()

	// The measured foreground: one writer streaming batches, each
	// acknowledged call timed individually.
	batches := (docs + batch - 1) / batch
	lat := make([]time.Duration, 0, batches)
	total := 0
	start := time.Now()
	for b := 0; b < batches; b++ {
		group := make([]string, 0, batch)
		for j := 0; j < batch && total+len(group) < docs; j++ {
			group = append(group, maintenanceDoc(1000+b*batch+j))
		}
		t0 := time.Now()
		if _, err := db.IngestBatchCtx(ctx, group); err != nil {
			close(done)
			wg.Wait()
			return MaintenanceRow{}, err
		}
		lat = append(lat, time.Since(t0))
		total += len(group)
	}
	wall := time.Since(start)
	close(done)
	wg.Wait()

	row := MaintenanceRow{
		Mode:        mode,
		Docs:        total,
		Batches:     len(lat),
		IngestWall:  wall,
		DocsPerSec:  float64(total) / wall.Seconds(),
		MaxWALBytes: maxWAL,
	}
	if mnt != nil {
		mnt.Close()
		row.Checkpoints = mnt.Health().Checkpoints
	} else {
		row.Checkpoints = blockingCkpts
	}
	// Leave the database consistent (and count the final absorption the
	// way both modes' operators would run it).
	if err := db.Checkpoint(); err != nil {
		return MaintenanceRow{}, err
	}
	row.Checkpoints++
	row.StallP50, row.StallP99, row.StallMax = latencyQuantiles(lat)
	return row, nil
}

// latencyQuantiles returns the p50/p99/max of the sample set.
func latencyQuantiles(lat []time.Duration) (p50, p99, max time.Duration) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return at(0.50), at(0.99), s[len(s)-1]
}

// PrintMaintenanceSweep renders the sweep as a stall table.
func PrintMaintenanceSweep(w io.Writer, rows []MaintenanceRow) {
	fmt.Fprintln(w, "Maintenance sweep: per-batch ingest latency while the WAL is absorbed (blocking Save vs background checkpointer)")
	fmt.Fprintf(w, "%22s %7s %6s %8s %10s %10s %10s %10s %10s\n",
		"mode", "docs", "ckpts", "ingest", "docs/s", "p50", "p99", "max", "wal-high")
	for _, r := range rows {
		fmt.Fprintf(w, "%22s %7d %6d %8s %10.0f %10s %10s %10s %9dK\n",
			r.Mode, r.Docs, r.Checkpoints, r.IngestWall.Round(time.Millisecond),
			r.DocsPerSec,
			r.StallP50.Round(10*time.Microsecond),
			r.StallP99.Round(10*time.Microsecond),
			r.StallMax.Round(10*time.Microsecond),
			r.MaxWALBytes/1024)
	}
}
