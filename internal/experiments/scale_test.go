package experiments

import (
	"os"
	"strconv"
	"testing"

	"github.com/fix-index/fix/internal/datagen"
)

// TestScaleTrend is a manual experiment driver: FIXSCALE=0.5 go test -run ScaleTrend -v
func TestScaleTrend(t *testing.T) {
	scaleStr := os.Getenv("FIXSCALE")
	if scaleStr == "" {
		t.Skip("set FIXSCALE to run")
	}
	scale, err := strconv.ParseFloat(scaleStr, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []datagen.Dataset{datagen.TreebankDataset, datagen.XMarkDataset, datagen.DBLPDataset} {
		env, err := Setup(ds, datagen.Config{Seed: 7, Scale: scale})
		if err != nil {
			t.Fatal(err)
		}
		fb, err := env.FB()
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: elems=%d fbClasses=%d fbEdges=%d fbSize=%dKB rounds=%d buildFB=%v",
			ds, env.Elements(), fb.NumClasses(), fb.NumEdges(), fb.SizeBytes()/1024, fb.Rounds(), env.fbTime)
		rows, err := Fig6(env)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			t.Logf("%-12s count=%-6d wall: NoK=%-11v FIXu=%-11v FB=%-11v FIXc=%-11v | modeled: NoK=%-11v FIXu=%-11v FB=%-11v FIXc=%v",
				r.Query, r.NoK.Count, r.NoK.Wall, r.FIXUnclust.Wall, r.FB.Wall, r.FIXClus.Wall,
				r.NoK.Modeled, r.FIXUnclust.Modeled, r.FB.Modeled, r.FIXClus.Modeled)
		}
	}
}
