package experiments

import (
	"context"
	"testing"
	"time"
)

// TestMaintenanceSweepSmall runs a miniature sweep end to end: both
// absorption modes complete, every document lands, checkpoints happen,
// and the latency summary is coherent.
func TestMaintenanceSweepSmall(t *testing.T) {
	rows, err := MaintenanceSweep(context.Background(), t.TempDir(), 120, 8, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(MaintenanceModes()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(MaintenanceModes()))
	}
	for _, r := range rows {
		if r.Docs != 120 {
			t.Errorf("%s: docs = %d, want 120", r.Mode, r.Docs)
		}
		if r.Checkpoints < 1 {
			t.Errorf("%s: no checkpoints recorded", r.Mode)
		}
		if r.DocsPerSec <= 0 {
			t.Errorf("%s: non-positive throughput: %+v", r.Mode, r)
		}
		if r.StallP50 <= 0 || r.StallP99 < r.StallP50 || r.StallMax < r.StallP99 {
			t.Errorf("%s: incoherent latency summary: %+v", r.Mode, r)
		}
	}
}

func TestLatencyQuantiles(t *testing.T) {
	lat := []time.Duration{5, 1, 3, 2, 4}
	p50, p99, max := latencyQuantiles(lat)
	if p50 != 3 || p99 != 4 || max != 5 {
		t.Errorf("quantiles = %d %d %d, want 3 4 5", p50, p99, max)
	}
	if a, b, c := latencyQuantiles(nil); a != 0 || b != 0 || c != 0 {
		t.Errorf("empty sample set: %d %d %d", a, b, c)
	}
}
