package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/xpath"
)

// The generation sweep is not a paper experiment: it measures the
// repository's lock-free read path (immutable index generations, PR 7)
// against the locked path it replaced. Both evaluate the same §6.2
// representative workload over the same index; the locked path goes
// through Index.QueryGoverned (B-tree probes serialize on the tree
// mutex), the generation path through Generation.QueryGoverned (probes
// read a frozen page image, no lock anywhere). The interesting column is
// throughput as reader goroutines grow: the locked path flattens where
// the mutex saturates, the generation path scales with the cores.

// GenerationRow is one (dataset, goroutine count) throughput measurement.
type GenerationRow struct {
	Dataset    string  `json:"dataset"`
	Goroutines int     `json:"goroutines"`
	LockedQPS  float64 `json:"locked_qps"`
	ViewQPS    float64 `json:"view_qps"`
	// Speedup is ViewQPS/LockedQPS at this concurrency.
	Speedup float64 `json:"view_vs_locked"`
	// LockedScale and ViewScale are each path's throughput relative to
	// its own single-goroutine row — the scaling curve.
	LockedScale float64 `json:"locked_scale_vs_1"`
	ViewScale   float64 `json:"view_scale_vs_1"`
	// Queries is the total evaluated across both paths at this level.
	Queries int64 `json:"queries"`
}

// GenerationSweepCounts returns the canonical reader sweep: 1, 2, 4 and
// GOMAXPROCS goroutines, deduplicated and sorted.
func GenerationSweepCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	var counts []int
	for n := range set {
		counts = append(counts, n)
	}
	for i := 1; i < len(counts); i++ {
		for j := i; j > 0 && counts[j] < counts[j-1]; j-- {
			counts[j], counts[j-1] = counts[j-1], counts[j]
		}
	}
	return counts
}

// GenerationSweep measures locked vs generation query throughput on the
// env's dataset for each goroutine count, running each configuration for
// window wall time. Before measuring it cross-checks that both paths
// return identical counts for every workload query. ctx bounds the
// whole sweep (each query observes it).
func GenerationSweep(ctx context.Context, env *Env, goroutines []int, window time.Duration) ([]GenerationRow, error) {
	ix, err := env.Unclustered()
	if err != nil {
		return nil, err
	}
	reps := RepresentativeQueries[env.Dataset]
	if len(reps) == 0 {
		return nil, fmt.Errorf("experiments: no representative queries for %s", env.Dataset)
	}
	var paths []*xpath.Path
	for _, rq := range reps {
		p, err := xpath.Parse(rq.XPath)
		if err != nil {
			return nil, fmt.Errorf("experiments: parsing %s: %w", rq.Name, err)
		}
		paths = append(paths, p)
	}
	gen := core.NewGeneration(1, ix, env.Store, env.Store.Dict(), nil, nil)
	defer gen.Unpin()
	if err := gen.Health(); err != nil {
		return nil, fmt.Errorf("experiments: generation frozen degraded: %w", err)
	}

	// Soundness gate: the frozen image must answer exactly like the
	// locked index before any throughput number means anything.
	for i, p := range paths {
		lr, err := ix.QueryGoverned(ctx, p, nil, core.Limits{})
		if err != nil {
			return nil, fmt.Errorf("experiments: locked %s: %w", reps[i].Name, err)
		}
		vr, err := gen.QueryGoverned(ctx, p, nil, core.Limits{})
		if err != nil {
			return nil, fmt.Errorf("experiments: generation %s: %w", reps[i].Name, err)
		}
		if lr.Count != vr.Count {
			return nil, fmt.Errorf("experiments: %s: locked count %d != generation count %d",
				reps[i].Name, lr.Count, vr.Count)
		}
	}

	run := func(n int, query func(p *xpath.Path) error) (float64, int64, error) {
		var (
			wg    sync.WaitGroup
			total atomic.Int64
			fail  atomic.Value
		)
		deadline := time.Now().Add(window)
		start := time.Now()
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; time.Now().Before(deadline); i++ {
					if err := query(paths[i%len(paths)]); err != nil {
						fail.Store(err)
						return
					}
					total.Add(1)
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err, ok := fail.Load().(error); ok && err != nil {
			return 0, 0, err
		}
		return float64(total.Load()) / elapsed.Seconds(), total.Load(), nil
	}

	var rows []GenerationRow
	var locked1, view1 float64
	for _, n := range goroutines {
		lockedQPS, lq, err := run(n, func(p *xpath.Path) error {
			_, err := ix.QueryGoverned(ctx, p, nil, core.Limits{})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: locked sweep, %d goroutines: %w", n, err)
		}
		viewQPS, vq, err := run(n, func(p *xpath.Path) error {
			_, err := gen.QueryGoverned(ctx, p, nil, core.Limits{})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: generation sweep, %d goroutines: %w", n, err)
		}
		row := GenerationRow{
			Dataset:    string(env.Dataset),
			Goroutines: n,
			LockedQPS:  lockedQPS,
			ViewQPS:    viewQPS,
			Queries:    lq + vq,
		}
		if lockedQPS > 0 {
			row.Speedup = viewQPS / lockedQPS
		}
		if len(rows) == 0 {
			locked1, view1 = lockedQPS, viewQPS
		}
		if locked1 > 0 {
			row.LockedScale = lockedQPS / locked1
		}
		if view1 > 0 {
			row.ViewScale = viewQPS / view1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintGenerationSweep renders the sweep as a throughput table.
func PrintGenerationSweep(w io.Writer, rows []GenerationRow) {
	fmt.Fprintf(w, "Generation read-path sweep (NumCPU=%d, GOMAXPROCS=%d; locked=Index.QueryGoverned, view=Generation.QueryGoverned)\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-10s %11s %12s %12s %10s %13s %11s\n",
		"dataset", "goroutines", "locked q/s", "view q/s", "view/lock", "locked scale", "view scale")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11d %12.0f %12.0f %9.2fx %12.2fx %10.2fx\n",
			r.Dataset, r.Goroutines, r.LockedQPS, r.ViewQPS, r.Speedup, r.LockedScale, r.ViewScale)
	}
}
