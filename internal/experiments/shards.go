package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fix-index/fix/internal/collection"
)

// The shard sweep is not a paper experiment — FIX predates serving
// infrastructure — but it validates the collection layer's claim that
// the paper's cost model (§6) decomposes over disjoint document
// partitions: root-label routing should make targeted queries
// independent of shard count while scattered queries pay one probe per
// shard, and ingest should scale with the number of shard WALs taking
// group commits.

// ShardRow is one shard-count measurement of the sweep.
type ShardRow struct {
	Shards           int           `json:"shards"`
	Docs             int           `json:"docs"`
	IngestWall       time.Duration `json:"ingest_ns"`
	IngestDocsPerSec float64       `json:"ingest_docs_per_sec"`
	ScatteredQPS     float64       `json:"scattered_qps"`
	TargetedQPS      float64       `json:"targeted_qps"`
	Clients          int           `json:"clients"`
}

// ShardSweepCounts returns the canonical shard-count sweep.
func ShardSweepCounts() []int { return []int{1, 2, 4, 8} }

// shardSweepLabels are the root labels of the synthetic corpus; eight
// labels spread over up to eight shards keeps every shard populated at
// every sweep point.
var shardSweepLabels = []string{
	"orders", "people", "items", "logs", "mail", "parts", "bids", "sites",
}

// shardSweepDoc builds one synthetic document under the given root
// label, shaped deep enough that queries exercise probe + refine.
func shardSweepDoc(label string, n int) string {
	return fmt.Sprintf(
		`<%s><entry seq="%d"><name>n%d</name><detail><note>x</note></detail></entry></%s>`,
		label, n, n, label)
}

// ShardSweep measures ingest and query throughput of a collection at
// each shard count. For every count it creates a fresh collection
// under dir, routes docsPerLabel documents per root label through the
// batched ingest path, then runs clients concurrent query loops for
// the measure window — half issuing scattered descendant-axis queries
// (one probe per shard), half targeted child-axis queries (one probe
// total, whatever the shard count).
func ShardSweep(ctx context.Context, dir string, counts []int, docsPerLabel, clients int, measure time.Duration) ([]ShardRow, error) {
	var rows []ShardRow
	for _, n := range counts {
		row, err := shardSweepOne(ctx, filepath.Join(dir, fmt.Sprintf("shards-%d", n)), n, docsPerLabel, clients, measure)
		if err != nil {
			return nil, fmt.Errorf("experiments: shard sweep, %d shards: %w", n, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func shardSweepOne(ctx context.Context, dir string, nshards, docsPerLabel, clients int, measure time.Duration) (ShardRow, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ShardRow{}, err
	}
	col, err := collection.Create(ctx, dir,
		collection.Spec{Name: fmt.Sprintf("sweep%d", nshards), Shards: nshards},
		collection.Options{})
	if err != nil {
		return ShardRow{}, err
	}
	defer col.Close()

	// Ingest in label-interleaved batches so every batch fans out across
	// shards, the way routed serving traffic does.
	const batchSize = 64
	var batch []string
	total := 0
	start := time.Now()
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := col.AddBatch(ctx, batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for i := 0; i < docsPerLabel; i++ {
		for _, label := range shardSweepLabels {
			batch = append(batch, shardSweepDoc(label, i))
			total++
			if len(batch) == batchSize {
				if err := flush(); err != nil {
					return ShardRow{}, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return ShardRow{}, err
	}
	ingestWall := time.Since(start)

	scattered, err := shardQueryLoop(ctx, col, clients, measure, func(i int) string {
		return "//name"
	})
	if err != nil {
		return ShardRow{}, err
	}
	targeted, err := shardQueryLoop(ctx, col, clients, measure, func(i int) string {
		return "/" + shardSweepLabels[i%len(shardSweepLabels)] + "/entry/name"
	})
	if err != nil {
		return ShardRow{}, err
	}
	return ShardRow{
		Shards:           nshards,
		Docs:             total,
		IngestWall:       ingestWall,
		IngestDocsPerSec: float64(total) / ingestWall.Seconds(),
		ScatteredQPS:     scattered,
		TargetedQPS:      targeted,
		Clients:          clients,
	}, nil
}

// shardQueryLoop runs clients concurrent query loops for the measure
// window and returns aggregate queries per second. exprFor varies the
// expression per iteration so targeted loops spread over shards.
func shardQueryLoop(ctx context.Context, col *collection.Collection, clients int, measure time.Duration, exprFor func(i int) string) (float64, error) {
	var done atomic.Int64
	var firstErr atomic.Value
	deadline := time.Now().Add(measure)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; time.Now().Before(deadline); i++ {
				res, err := col.Query(ctx, exprFor(i), collection.QueryOpts{})
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if res.Partial {
					firstErr.CompareAndSwap(nil, fmt.Errorf("partial result with no shard deadline set"))
					return
				}
				done.Add(1)
			}
		}(c)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return float64(done.Load()) / measure.Seconds(), nil
}

// PrintShardSweep renders the sweep as a throughput table.
func PrintShardSweep(w io.Writer, rows []ShardRow) {
	fmt.Fprintln(w, "Shard sweep: collection throughput by shard count (targeted = child-axis first step, single-shard route)")
	fmt.Fprintf(w, "%7s %8s %12s %14s %14s %14s\n",
		"shards", "docs", "ingest", "ingest docs/s", "scattered q/s", "targeted q/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d %8d %12s %14.0f %14.0f %14.0f\n",
			r.Shards, r.Docs, r.IngestWall.Round(time.Millisecond),
			r.IngestDocsPerSec, r.ScatteredQPS, r.TargetedQPS)
	}
}
