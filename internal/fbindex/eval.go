package fbindex

import (
	"fmt"
	"sort"

	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// Query evaluation navigates the class graph top-down from the classes
// whose label matches the query root (found through the in-memory label
// directory), memoizing per-(class, query node) match decisions. Because
// F&B bisimulation is a covering index for twig queries, a structural
// match on the graph needs no refinement against the data.

type compiled struct {
	labels   []uint32
	desc     []bool
	output   []bool
	children [][]int
	rootDesc bool
	valued   bool
	bad      bool
}

func compile(root *xpath.QNode, dict *xmltree.Dict) (*compiled, error) {
	c := &compiled{rootDesc: root.Axis == xpath.Descendant}
	var add func(n *xpath.QNode) (int, error)
	add = func(n *xpath.QNode) (int, error) {
		if n.IsValue {
			// Value leaves are dropped from the structural match; the
			// refinement pass checks them.
			c.valued = true
			return -1, nil
		}
		idx := len(c.labels)
		id, ok := dict.Lookup(n.Name)
		if !ok {
			c.bad = true
		}
		c.labels = append(c.labels, id)
		c.desc = append(c.desc, n.Axis == xpath.Descendant)
		c.output = append(c.output, n.Output)
		c.children = append(c.children, nil)
		if len(c.labels) > 64 {
			return 0, fmt.Errorf("fbindex: query exceeds 64 nodes")
		}
		for _, ch := range n.Children {
			ci, err := add(ch)
			if err != nil {
				return 0, err
			}
			if ci >= 0 {
				c.children[idx] = append(c.children[idx], ci)
			}
		}
		return idx, nil
	}
	if _, err := add(root); err != nil {
		return nil, err
	}
	return c, nil
}

type fbEval struct {
	ix *Index
	q  *compiled
	// memo maps class -> (decided mask, result mask) for direct matches,
	// and the same for descendant-existence probes.
	decided, result         map[int32]uint64
	descDecided, descResult map[int32]uint64
}

func newEval(ix *Index, q *compiled) *fbEval {
	return &fbEval{
		ix: ix, q: q,
		decided: make(map[int32]uint64), result: make(map[int32]uint64),
		descDecided: make(map[int32]uint64), descResult: make(map[int32]uint64),
	}
}

// matches reports whether class c matches query node qi (labels equal and
// all child constraints satisfiable below c).
func (e *fbEval) matches(c int32, qi int) (bool, error) {
	bit := uint64(1) << uint(qi)
	if e.decided[c]&bit != 0 {
		return e.result[c]&bit != 0, nil
	}
	e.decided[c] |= bit // mark first: the class DAG has no cycles, but
	// sibling probes may revisit while we are below.
	rec, err := e.ix.fetch(c)
	if err != nil {
		return false, err
	}
	ok := rec.label == e.q.labels[qi] && e.q.labels[qi] != 0
	if ok {
		for _, ci := range e.q.children[qi] {
			found := false
			for _, k := range rec.children {
				if e.q.desc[ci] {
					found, err = e.existsBelow(k, ci)
				} else {
					found, err = e.matches(k, ci)
				}
				if err != nil {
					return false, err
				}
				if found {
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
	}
	if ok {
		e.result[c] |= bit
	}
	return ok, nil
}

// existsBelow reports whether class c or any descendant matches qi.
func (e *fbEval) existsBelow(c int32, qi int) (bool, error) {
	bit := uint64(1) << uint(qi)
	if e.descDecided[c]&bit != 0 {
		return e.descResult[c]&bit != 0, nil
	}
	e.descDecided[c] |= bit
	ok, err := e.matches(c, qi)
	if err != nil {
		return false, err
	}
	if !ok {
		rec, err := e.ix.fetch(c)
		if err != nil {
			return false, err
		}
		for _, k := range rec.children {
			ok, err = e.existsBelow(k, qi)
			if err != nil {
				return false, err
			}
			if ok {
				break
			}
		}
	}
	if ok {
		e.descResult[c] |= bit
	}
	return ok, nil
}

// Matches returns the pointers of all elements binding the query's output
// node, determined purely from the index graph (covering evaluation). The
// boolean reports whether the query carries value predicates, in which
// case the pointers are the structural candidate set and Eval should be
// used for exact answers.
func (ix *Index) Matches(root *xpath.QNode, dict *xmltree.Dict) ([]storage.Pointer, bool, error) {
	q, err := compile(root, dict)
	if err != nil {
		return nil, false, err
	}
	if q.bad {
		return nil, q.valued, nil
	}
	e := newEval(ix, q)

	// Root binding candidates: all classes with the root label (for //),
	// or document-root classes (for /).
	var starts []int32
	if q.rootDesc {
		starts = ix.byLabel[q.labels[0]]
	} else {
		starts = ix.roots
	}
	var matched []int32
	for _, c := range starts {
		ok, err := e.matches(c, 0)
		if err != nil {
			return nil, false, err
		}
		if ok {
			matched = append(matched, c)
		}
	}

	// Witness pass: walk matched embeddings to find output classes.
	witnessed := make(map[int32]uint64)
	descMarked := make(map[int32]uint64)
	outClasses := make(map[int32]struct{})
	var mark func(c int32, qi int) error
	var markDesc func(c int32, qi int) error
	markDesc = func(c int32, qi int) error {
		bit := uint64(1) << uint(qi)
		if descMarked[c]&bit != 0 {
			return nil
		}
		descMarked[c] |= bit
		ok, err := e.existsBelow(c, qi)
		if err != nil || !ok {
			return err
		}
		if m, err := e.matches(c, qi); err != nil {
			return err
		} else if m {
			if err := mark(c, qi); err != nil {
				return err
			}
		}
		rec, err := ix.fetch(c)
		if err != nil {
			return err
		}
		for _, k := range rec.children {
			if err := markDesc(k, qi); err != nil {
				return err
			}
		}
		return nil
	}
	mark = func(c int32, qi int) error {
		bit := uint64(1) << uint(qi)
		if witnessed[c]&bit != 0 {
			return nil
		}
		witnessed[c] |= bit
		if e.q.output[qi] {
			outClasses[c] = struct{}{}
		}
		rec, err := ix.fetch(c)
		if err != nil {
			return err
		}
		for _, ci := range e.q.children[qi] {
			for _, k := range rec.children {
				if e.q.desc[ci] {
					if err := markDesc(k, ci); err != nil {
						return err
					}
					continue
				}
				ok, err := e.matches(k, ci)
				if err != nil {
					return err
				}
				if ok {
					if err := mark(k, ci); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	for _, c := range matched {
		if err := mark(c, 0); err != nil {
			return nil, false, err
		}
	}
	var out []storage.Pointer
	ids := make([]int32, 0, len(outClasses))
	for c := range outClasses {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, c := range ids {
		rec, err := ix.fetch(c)
		if err != nil {
			return nil, false, err
		}
		ext, err := ix.extent(rec)
		if err != nil {
			return nil, false, err
		}
		out = append(out, ext...)
	}
	return out, q.valued, nil
}

// Eval answers the query exactly: structural queries directly from the
// covering index, value queries by refining the structural candidates
// against primary storage with NoK. It returns the number of output-node
// matches.
func (ix *Index) Eval(root *xpath.QNode, dict *xmltree.Dict) (int, error) {
	ptrs, valued, err := ix.Matches(root, dict)
	if err != nil {
		return 0, err
	}
	if !valued {
		return len(ptrs), nil
	}
	nq, err := nok.Compile(root, dict)
	if err != nil {
		return 0, err
	}
	docs := make(map[uint32]struct{})
	for _, p := range ptrs {
		docs[p.Rec()] = struct{}{}
	}
	recs := make([]uint32, 0, len(docs))
	for r := range docs {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i] < recs[j] })
	total := 0
	for _, rec := range recs {
		cur, err := ix.store.Cursor(rec)
		if err != nil {
			return 0, err
		}
		total += nq.Count(cur, 0)
	}
	return total, nil
}
