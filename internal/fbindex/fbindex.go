// Package fbindex implements a disk-based forward-and-backward (F&B)
// bisimulation index, the clustering covering index FIX is compared
// against in the paper's runtime experiments (§6.3, reference [27]). Two
// elements share an F&B class iff they have the same label, bisimilar
// children and a bisimilar parent chain; the class graph covers all twig
// queries, so structural queries are answered by navigating the graph
// alone and returning the extents of matched classes.
//
// The partition is computed by iterated refinement: class identity at
// round k+1 is (label, parent class at k, set of child classes at k),
// iterated to a fixpoint. The class graph is then serialized to a file
// and queries navigate it through a bounded LRU cache — small graphs
// (DBLP) stay memory-resident while structure-rich graphs (Treebank,
// XMark) churn the cache, which is exactly the behaviour the paper's
// runtime comparison turns on.
//
// Value-equality predicates are outside the structural index; they are
// handled by refining the structurally matched candidates against primary
// storage with the NoK operator, as a clustering index is deployed in
// practice.
package fbindex

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
)

// Stats counts index I/O at page granularity, the unit a disk-resident
// deployment pays for.
type Stats struct {
	PageReads   int64 // 4 KiB graph pages fetched past the cache
	PageHits    int64
	ExtentReads int64 // extent fetches (one per matched output class)
	ExtentBytes int64
}

// fbPageSize is the I/O unit of the serialized class graph.
const fbPageSize = 4096

// Options configures the F&B index.
type Options struct {
	// CachePages bounds the number of 4 KiB graph pages kept in memory.
	// The default of 64 (256 KiB) comfortably holds DBLP's whole F&B
	// graph — the paper notes its 180 KB DBLP index was fully cached,
	// which is why F&B wins there — while the Treebank and XMark graphs
	// spill.
	CachePages int
	// File receives the serialized class graph; nil uses an in-memory
	// file.
	File storage.File
}

// Index is a disk-resident F&B bisimulation graph over one store.
type Index struct {
	store *storage.Store
	f     storage.File

	offsets []int64 // class record offsets in f
	byLabel map[uint32][]int32
	roots   []int32

	numElements int
	numEdges    int
	rounds      int
	sizeBytes   int64

	cacheCap int
	cache    map[int64]*cacheEntry
	lru      *list.List
	stats    Stats
}

type cacheEntry struct {
	page int64
	buf  []byte
	elem *list.Element
}

// classRec is the decoded on-disk class record.
type classRec struct {
	id        int32
	label     uint32
	children  []int32
	extentOff int64
	extentLen int32
}

// Build constructs the F&B index over every document in the store.
func Build(st *storage.Store, opts ...Options) (*Index, error) {
	var opt Options
	if len(opts) > 0 {
		opt = opts[0]
	}
	if opt.CachePages <= 0 {
		opt.CachePages = 64
	}
	if opt.File == nil {
		opt.File = storage.NewMemFile()
	}

	var (
		labels  []uint32
		parents []int32
		ptrs    []storage.Pointer
	)
	for rec := 0; rec < st.NumRecords(); rec++ {
		cur, err := st.Cursor(uint32(rec))
		if err != nil {
			return nil, err
		}
		var walk func(r xmltree.Ref, parent int32)
		walk = func(r xmltree.Ref, parent int32) {
			if cur.IsText(r) {
				return
			}
			idx := int32(len(labels))
			labels = append(labels, cur.LabelID(r))
			parents = append(parents, parent)
			ptrs = append(ptrs, storage.MakePointer(uint32(rec), uint32(r)))
			it := cur.Children(r)
			for {
				cr, ok := it.Next()
				if !ok {
					break
				}
				walk(cr, idx)
			}
		}
		walk(0, -1)
	}
	n := len(labels)
	childIdx := make([][]int32, n)
	for i := 0; i < n; i++ {
		if p := parents[i]; p >= 0 {
			childIdx[p] = append(childIdx[p], int32(i))
		}
	}

	// Iterated refinement to the F&B fixpoint.
	class := make([]int32, n)
	for i := range class {
		class[i] = int32(labels[i])
	}
	numClasses := 0
	rounds := 0
	for {
		rounds++
		next := make([]int32, n)
		seen := make(map[string]int32)
		var key []byte
		for i := 0; i < n; i++ {
			key = key[:0]
			key = binary.AppendUvarint(key, uint64(labels[i]))
			p := int32(-1)
			if parents[i] >= 0 {
				p = class[parents[i]]
			}
			key = binary.AppendVarint(key, int64(p))
			kids := make([]int32, 0, len(childIdx[i]))
			for _, c := range childIdx[i] {
				kids = append(kids, class[c])
			}
			sort.Slice(kids, func(a, b int) bool { return kids[a] < kids[b] })
			prev := int32(-1)
			for _, k := range kids {
				if k == prev {
					continue
				}
				prev = k
				key = binary.AppendVarint(key, int64(k))
			}
			id, ok := seen[string(key)]
			if !ok {
				id = int32(len(seen))
				seen[string(key)] = id
			}
			next[i] = id
		}
		stable := len(seen) == numClasses
		numClasses = len(seen)
		class = next
		if stable {
			break
		}
	}

	// Assemble per-class data.
	cLabels := make([]uint32, numClasses)
	cChildren := make([]map[int32]struct{}, numClasses)
	cExtents := make([][]storage.Pointer, numClasses)
	var roots []int32
	rootSeen := make(map[int32]struct{})
	for i := 0; i < n; i++ {
		c := class[i]
		cLabels[c] = labels[i]
		cExtents[c] = append(cExtents[c], ptrs[i])
		if parents[i] >= 0 {
			pc := class[parents[i]]
			if cChildren[pc] == nil {
				cChildren[pc] = make(map[int32]struct{})
			}
			cChildren[pc][c] = struct{}{}
		} else if _, ok := rootSeen[c]; !ok {
			rootSeen[c] = struct{}{}
			roots = append(roots, c)
		}
	}

	ix := &Index{
		store:       st,
		f:           opt.File,
		byLabel:     make(map[uint32][]int32),
		roots:       roots,
		numElements: n,
		rounds:      rounds,
		cacheCap:    opt.CachePages,
		cache:       make(map[int64]*cacheEntry),
		lru:         list.New(),
	}
	if err := ix.serialize(cLabels, cChildren, cExtents); err != nil {
		return nil, err
	}
	for c, l := range cLabels {
		ix.byLabel[l] = append(ix.byLabel[l], int32(c))
	}
	return ix, nil
}

// serialize lays the index out on the file: first the extent region, then
// one class record per class, remembering record offsets.
func (ix *Index) serialize(labels []uint32, children []map[int32]struct{}, extents [][]storage.Pointer) error {
	var pos int64
	extentOff := make([]int64, len(labels))
	var buf []byte
	for c, ext := range extents {
		extentOff[c] = pos
		buf = buf[:0]
		for _, p := range ext {
			buf = binary.BigEndian.AppendUint64(buf, uint64(p))
		}
		if _, err := ix.f.WriteAt(buf, pos); err != nil {
			return fmt.Errorf("fbindex: writing extents: %w", err)
		}
		pos += int64(len(buf))
	}
	ix.offsets = make([]int64, len(labels))
	for c := range labels {
		ix.offsets[c] = pos
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(labels[c]))
		kids := make([]int32, 0, len(children[c]))
		for k := range children[c] {
			kids = append(kids, k)
		}
		sort.Slice(kids, func(a, b int) bool { return kids[a] < kids[b] })
		ix.numEdges += len(kids)
		buf = binary.AppendUvarint(buf, uint64(len(kids)))
		for _, k := range kids {
			buf = binary.AppendUvarint(buf, uint64(k))
		}
		buf = binary.AppendVarint(buf, extentOff[c])
		buf = binary.AppendUvarint(buf, uint64(len(extents[c])))
		if _, err := ix.f.WriteAt(buf, pos); err != nil {
			return fmt.Errorf("fbindex: writing class %d: %w", c, err)
		}
		pos += int64(len(buf))
	}
	ix.sizeBytes = pos
	return nil
}

// page returns the 4 KiB page containing offset, through the LRU cache.
func (ix *Index) page(p int64) ([]byte, error) {
	if e, ok := ix.cache[p]; ok {
		ix.stats.PageHits++
		ix.lru.MoveToFront(e.elem)
		return e.buf, nil
	}
	ix.stats.PageReads++
	buf := make([]byte, fbPageSize)
	n, err := ix.f.ReadAt(buf, p*fbPageSize)
	if err != nil && n == 0 {
		return nil, fmt.Errorf("fbindex: reading page %d: %w", p, err)
	}
	e := &cacheEntry{page: p, buf: buf[:n]}
	e.elem = ix.lru.PushFront(p)
	ix.cache[p] = e
	for ix.lru.Len() > ix.cacheCap {
		tail := ix.lru.Back()
		victim := tail.Value.(int64)
		ix.lru.Remove(tail)
		delete(ix.cache, victim)
	}
	return e.buf, nil
}

// readAt returns length bytes starting at off, stitching across pages
// through the cache.
func (ix *Index) readAt(off, length int64) ([]byte, error) {
	out := make([]byte, 0, length)
	for length > 0 {
		pg := off / fbPageSize
		buf, err := ix.page(pg)
		if err != nil {
			return nil, err
		}
		start := off % fbPageSize
		if start >= int64(len(buf)) {
			return nil, fmt.Errorf("fbindex: offset %d beyond page %d", off, pg)
		}
		take := int64(len(buf)) - start
		if take > length {
			take = length
		}
		out = append(out, buf[start:start+take]...)
		off += take
		length -= take
	}
	return out, nil
}

// fetch returns the decoded class record at c.
func (ix *Index) fetch(c int32) (*classRec, error) {
	end := ix.sizeBytes
	if int(c)+1 < len(ix.offsets) {
		end = ix.offsets[c+1]
	}
	buf, err := ix.readAt(ix.offsets[c], end-ix.offsets[c])
	if err != nil {
		return nil, fmt.Errorf("fbindex: reading class %d: %w", c, err)
	}
	rec := &classRec{id: c}
	pos := 0
	v, k := binary.Uvarint(buf[pos:])
	pos += k
	rec.label = uint32(v)
	nkids, k := binary.Uvarint(buf[pos:])
	pos += k
	rec.children = make([]int32, nkids)
	for i := range rec.children {
		kid, k := binary.Uvarint(buf[pos:])
		pos += k
		rec.children[i] = int32(kid)
	}
	off, k := binary.Varint(buf[pos:])
	pos += k
	rec.extentOff = off
	cnt, _ := binary.Uvarint(buf[pos:])
	rec.extentLen = int32(cnt)
	return rec, nil
}

// extent reads a class's extent pointers from the extent region.
func (ix *Index) extent(rec *classRec) ([]storage.Pointer, error) {
	ix.stats.ExtentReads++
	ix.stats.ExtentBytes += int64(rec.extentLen) * 8
	buf, err := ix.readAt(rec.extentOff, int64(rec.extentLen)*8)
	if err != nil {
		return nil, fmt.Errorf("fbindex: reading extent of class %d: %w", rec.id, err)
	}
	out := make([]storage.Pointer, rec.extentLen)
	for i := range out {
		out[i] = storage.Pointer(binary.BigEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

// ClearCache drops all cached pages, so a following query measures cold
// I/O.
func (ix *Index) ClearCache() {
	ix.cache = make(map[int64]*cacheEntry)
	ix.lru = list.New()
}

// NumClasses returns the number of index vertices.
func (ix *Index) NumClasses() int { return len(ix.offsets) }

// NumEdges returns the number of index edges.
func (ix *Index) NumEdges() int { return ix.numEdges }

// NumElements returns the number of indexed elements.
func (ix *Index) NumElements() int { return ix.numElements }

// Rounds returns the number of refinement rounds to reach the fixpoint.
func (ix *Index) Rounds() int { return ix.rounds }

// SizeBytes returns the serialized index size.
func (ix *Index) SizeBytes() int64 { return ix.sizeBytes }

// Stats returns a snapshot of the I/O counters.
func (ix *Index) Stats() Stats { return ix.stats }

// ResetStats zeroes the I/O counters.
func (ix *Index) ResetStats() { ix.stats = Stats{} }
