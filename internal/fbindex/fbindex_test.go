package fbindex

import (
	"math/rand"
	"testing"

	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

func buildStore(t *testing.T, docs []string) *storage.Store {
	t.Helper()
	st, err := storage.NewStore(storage.NewMemFile(), xmltree.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range docs {
		n, err := xmltree.ParseString(d)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if _, err := st.AppendTree(n); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// nokCount evaluates the query over the whole store as ground truth.
func nokCount(t *testing.T, st *storage.Store, q *xpath.Path) int {
	t.Helper()
	nq, err := nok.Compile(q.Tree(), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for rec := 0; rec < st.NumRecords(); rec++ {
		cur, err := st.Cursor(uint32(rec))
		if err != nil {
			t.Fatal(err)
		}
		total += nq.Count(cur, 0)
	}
	return total
}

func TestFBClassMerging(t *testing.T) {
	// F&B bisimulation includes the parent chain, so the two authors
	// below come out in DIFFERENT classes even though their subtrees are
	// identical (unlike the downward bisimulation of package bisim).
	st := buildStore(t, []string{
		`<bib><book><author><email/></author></book><www><author><email/></author></www></bib>`,
	})
	ix, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	// Classes: bib, book, www, author(book), author(www), email(book
	// author), email(www author) = 7.
	if ix.NumClasses() != 7 {
		t.Errorf("classes = %d, want 7", ix.NumClasses())
	}
	if ix.NumElements() != 7 {
		t.Errorf("elements = %d, want 7", ix.NumElements())
	}
}

func TestFBSharedContextMerges(t *testing.T) {
	// Identical subtrees under identical contexts do merge.
	st := buildStore(t, []string{
		`<bib><book><author/></book><book><author/></book></bib>`,
	})
	ix, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	// Classes: bib, book, author = 3 (the two books are bisimilar).
	if ix.NumClasses() != 3 {
		t.Errorf("classes = %d, want 3", ix.NumClasses())
	}
}

func TestFBEvalMatchesNoK(t *testing.T) {
	docs := []string{
		`<bib><article><title/><author><email/></author></article></bib>`,
		`<bib><book><title/><author><phone/></author></book><article><title/></article></bib>`,
		`<bib><inproceedings><author><email/><affiliation/></author></inproceedings></bib>`,
	}
	st := buildStore(t, docs)
	ix, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"//article",
		"//author[email]",
		"//book/author/phone",
		"/bib/article/title",
		"//bib//email",
		"//article//affiliation",
		"//nosuch",
	}
	for _, qs := range queries {
		q := xpath.MustParse(qs)
		want := nokCount(t, st, q)
		got, err := ix.Eval(q.Tree(), st.Dict())
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if got != want {
			t.Errorf("%s: F&B = %d, NoK = %d", qs, got, want)
		}
	}
}

func TestFBValueQueriesRefine(t *testing.T) {
	st := buildStore(t, []string{
		`<lib><book><publisher>Springer</publisher><title/></book></lib>`,
		`<lib><book><publisher>ACM</publisher><title/></book></lib>`,
	})
	ix, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	q := xpath.MustParse(`//book[publisher="Springer"]/title`)
	got, err := ix.Eval(q.Tree(), st.Dict())
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("value query = %d, want 1", got)
	}
	// Matches reports the structural candidate set and the valued flag.
	ptrs, valued, err := ix.Matches(q.Tree(), st.Dict())
	if err != nil || !valued {
		t.Fatalf("Matches: valued=%v err=%v", valued, err)
	}
	if len(ptrs) != 2 {
		t.Errorf("structural candidates = %d, want 2", len(ptrs))
	}
}

func randomFBDoc(rng *rand.Rand, depth int) *xmltree.Node {
	labels := []string{"a", "b", "c", "d", "e"}
	var build func(d int) *xmltree.Node
	build = func(d int) *xmltree.Node {
		n := xmltree.Elem(labels[rng.Intn(len(labels))])
		if d <= 0 {
			return n
		}
		for i := rng.Intn(3); i > 0; i-- {
			n.Children = append(n.Children, build(d-1))
		}
		return n
	}
	return xmltree.Elem("root", build(depth), build(depth))
}

func TestFBRandomAgainstNoK(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	queries := []string{
		"//a/b", "//a[b][c]", "//root//d", "//b/c/d", "//a//e",
		"/root/a", "//c[d]/a", "//e[a/b]",
	}
	for trial := 0; trial < 25; trial++ {
		st, err := storage.NewStore(storage.NewMemFile(), xmltree.NewDict())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := st.AppendTree(randomFBDoc(rng, 4)); err != nil {
				t.Fatal(err)
			}
		}
		ix, err := Build(st)
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			q := xpath.MustParse(qs)
			want := nokCount(t, st, q)
			got, err := ix.Eval(q.Tree(), st.Dict())
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, qs, err)
			}
			if got != want {
				t.Fatalf("trial %d %s: F&B = %d, NoK = %d", trial, qs, got, want)
			}
		}
	}
}

func TestFBCacheBehaviour(t *testing.T) {
	docs := make([]string, 0, 50)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		docs = append(docs, xmltree.MarshalString(randomFBDoc(rng, 5)))
	}
	st := buildStore(t, docs)
	ix, err := Build(st, Options{CachePages: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := xpath.MustParse("//a[b]/c").Tree()
	if _, err := ix.Eval(q, st.Dict()); err != nil {
		t.Fatal(err)
	}
	cold := ix.Stats()
	if cold.PageReads == 0 {
		t.Error("cold eval did no page reads")
	}
	// A big cache makes the second run nearly I/O-free.
	ix2, err := Build(st, Options{CachePages: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix2.Eval(q, st.Dict()); err != nil {
		t.Fatal(err)
	}
	first := ix2.Stats().PageReads
	if _, err := ix2.Eval(q, st.Dict()); err != nil {
		t.Fatal(err)
	}
	if ix2.Stats().PageReads != first {
		t.Errorf("warm eval re-read pages: %d -> %d", first, ix2.Stats().PageReads)
	}
	ix2.ClearCache()
	ix2.ResetStats()
	if _, err := ix2.Eval(q, st.Dict()); err != nil {
		t.Fatal(err)
	}
	if ix2.Stats().PageReads == 0 {
		t.Error("ClearCache did not force page reads")
	}
}

func TestFBSizeAndRounds(t *testing.T) {
	st := buildStore(t, []string{`<a><b><c/></b><b><c/></b></a>`})
	ix, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	if ix.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
	if ix.Rounds() < 1 {
		t.Error("Rounds < 1")
	}
	if ix.NumEdges() != ix.NumClasses()-1 {
		// A tree-shaped dataset yields a tree-shaped class graph.
		t.Errorf("edges = %d, classes = %d", ix.NumEdges(), ix.NumClasses())
	}
}
