package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"github.com/fix-index/fix/tools/fixvet/cfg"
)

// lockorderAnalyzer enforces the module's declared lock hierarchy.
// Mutex fields opt in with a rank annotation:
//
//	mu sync.Mutex // lockcheck: order 40
//
// Lower ranks are acquired first: while holding a lock of rank N, a
// goroutine may only acquire locks of rank strictly greater than N.
// That single rule makes deadlock by lock-order inversion impossible
// among annotated locks — the documented ingestMu → pubMu → mu order in
// fix.DB, and the collection registry's mutex ordered before all of
// them.
//
// The analyzer is module-global and flow-aware: a lightweight call
// graph (resolved through go/types, fixed-pointed for transitive
// acquisitions) summarizes which ranks each function may acquire, and a
// CFG dataflow tracks the exact set of ranked locks held at every
// statement — so a lock released before a call site does not poison the
// call, and a lock acquired on one branch is tracked on exactly the
// paths that hold it. Both direct acquisitions and calls into
// lock-acquiring functions are checked against the held set.
//
// `// lockorder: ignore` on a function's doc comment (with a justifying
// comment) skips it — for intentionally unordered code like tests of
// the locks themselves.
var lockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "mutexes annotated `lockcheck: order N` must be acquired in " +
		"increasing rank on every path, through calls (module-wide " +
		"call-graph check)",
	RunModule: runLockorder,
}

var lockOrderRe = regexp.MustCompile(`lockcheck:\s*order\s+(\d+)`)

// rankedLock is one annotated mutex field.
type rankedLock struct {
	id    int
	pkg   string // package path of the owning struct
	typ   string // struct type name
	field string
	rank  int
}

func (r *rankedLock) name() string { return r.typ + "." + r.field }

// lockOrderState is the module-wide analysis state.
type lockOrderState struct {
	mp    *ModulePass
	locks []*rankedLock
	byKey map[string]*rankedLock // "pkgpath\ttype\tfield"

	// funcs indexes every function declaration by its types object, so
	// call sites resolve across packages.
	funcs map[types.Object]*loFunc
	order []*loFunc
}

// loFunc is one analyzed function.
type loFunc struct {
	pass *Pass
	fd   *ast.FuncDecl
	obj  types.Object
	// acquires is the transitive set of lock ids this function may
	// acquire (itself or via callees), as a bitset index set.
	acquires map[int]bool
	// direct reports whether the body itself acquires a ranked lock —
	// only those functions need the intra-procedural dataflow.
	direct bool
}

func runLockorder(mp *ModulePass) {
	st := &lockOrderState{
		mp:    mp,
		byKey: map[string]*rankedLock{},
		funcs: map[types.Object]*loFunc{},
	}
	st.collectLocks()
	if len(st.locks) == 0 {
		return
	}
	st.indexFuncs()
	st.summarize()
	for _, fn := range st.order {
		if fn.direct {
			st.checkFunc(fn)
		}
	}
}

// collectLocks reads every `lockcheck: order N` annotation in the
// module.
func (st *lockOrderState) collectLocks() {
	for _, pass := range st.mp.Pkgs {
		p := pass
		eachStructField(p, func(typeName string, field *ast.Field) {
			m := lockOrderRe.FindStringSubmatch(fieldComments(field))
			if m == nil || !isMutexType(field.Type) {
				return
			}
			rank, err := strconv.Atoi(m[1])
			if err != nil {
				return
			}
			for _, n := range field.Names {
				l := &rankedLock{id: len(st.locks), pkg: p.PkgPath, typ: typeName, field: n.Name, rank: rank}
				st.locks = append(st.locks, l)
				st.byKey[l.pkg+"\t"+l.typ+"\t"+l.field] = l
			}
		})
	}
}

// indexFuncs maps every function declaration to its types object.
func (st *lockOrderState) indexFuncs() {
	for _, pass := range st.mp.Pkgs {
		p := pass
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				var obj types.Object
				if p.Info != nil {
					obj = p.Info.Defs[fd.Name]
				}
				fn := &loFunc{pass: p, fd: fd, obj: obj, acquires: map[int]bool{}}
				if obj != nil {
					st.funcs[obj] = fn
				}
				st.order = append(st.order, fn)
			}
		}
	}
}

// resolveLock maps a mutex expression (db.mu in db.mu.Lock()) to its
// ranked lock, if annotated.
func (st *lockOrderState) resolveLock(pass *Pass, mutexExpr ast.Expr) *rankedLock {
	sel, ok := mutexExpr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if pass.Info == nil {
		return nil
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return nil
	}
	named := namedOf(tv.Type)
	if named == nil || named.Obj().Pkg() == nil {
		return nil
	}
	return st.byKey[named.Obj().Pkg().Path()+"\t"+named.Obj().Name()+"\t"+sel.Sel.Name]
}

// lockOp is one ordered event in a block: a ranked acquire/release or a
// call into a summarized function.
type lockOp struct {
	lock    *rankedLock // non-nil for acquire/release
	acquire bool
	callee  *loFunc // non-nil for call sites
	pos     token.Pos
}

// blockOps extracts the ordered lock-relevant events of one CFG block.
// Goroutine bodies run concurrently (their acquisitions are not "while
// holding"), closures are summarized at their call sites conservatively
// as not acquiring, and defers run at exit — all three are skipped.
func (st *lockOrderState) blockOps(fn *loFunc, b *cfg.Block) []lockOp {
	var ops []lockOp
	scan := func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				ops = append(ops, st.callOps(fn, x)...)
			}
			return true
		})
	}
	for _, node := range b.Nodes {
		switch n := node.(type) {
		case *ast.DeferStmt:
			continue
		case *ast.RangeStmt:
			if n.X != nil {
				scan(n.X)
			}
		default:
			scan(node)
		}
	}
	return ops
}

// callOps classifies one call expression.
func (st *lockOrderState) callOps(fn *loFunc, call *ast.CallExpr) []lockOp {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if l := st.resolveLock(fn.pass, sel.X); l != nil {
				return []lockOp{{lock: l, acquire: true, pos: call.Pos()}}
			}
		case "Unlock", "RUnlock":
			if l := st.resolveLock(fn.pass, sel.X); l != nil {
				return []lockOp{{lock: l, pos: call.Pos()}}
			}
		}
	}
	if callee := st.calleeFunc(fn.pass, call); callee != nil {
		return []lockOp{{callee: callee, pos: call.Pos()}}
	}
	return nil
}

// calleeFunc resolves a call to a module function declaration, when the
// types layer can.
func (st *lockOrderState) calleeFunc(pass *Pass, call *ast.CallExpr) *loFunc {
	if pass.Info == nil {
		return nil
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[fun]; ok {
			obj = s.Obj()
		} else {
			obj = pass.Info.Uses[fun.Sel] // pkg-qualified call
		}
	}
	if obj == nil {
		return nil
	}
	return st.funcs[obj]
}

// summarize computes each function's transitive acquire set with a
// fixpoint over the call graph (cycles converge because sets only
// grow).
func (st *lockOrderState) summarize() {
	type edge struct{ from, to *loFunc }
	var edges []edge
	for _, fn := range st.order {
		g := cfg.New(fn.fd.Body)
		for _, b := range g.Blocks {
			for _, op := range st.blockOps(fn, b) {
				if op.lock != nil && op.acquire {
					fn.acquires[op.lock.id] = true
					fn.direct = true
				}
				if op.callee != nil {
					edges = append(edges, edge{from: fn, to: op.callee})
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			for id := range e.to.acquires {
				if !e.from.acquires[id] {
					e.from.acquires[id] = true
					changed = true
				}
			}
		}
	}
}

// checkFunc runs the held-locks dataflow over one function and checks
// every acquire and call site against the held set.
func (st *lockOrderState) checkFunc(fn *loFunc) {
	if fn.fd.Doc != nil && strings.Contains(fn.fd.Doc.Text(), "lockorder: ignore") {
		return
	}
	g := cfg.New(fn.fd.Body)
	ops := map[*cfg.Block][]lockOp{}
	for _, b := range g.Blocks {
		ops[b] = st.blockOps(fn, b)
	}
	in, _ := cfg.Forward(g, len(st.locks), func(b *cfg.Block, facts cfg.BitSet) cfg.BitSet {
		for _, op := range ops[b] {
			if op.lock != nil {
				if op.acquire {
					facts.Set(op.lock.id)
				} else {
					facts.Clear(op.lock.id)
				}
			}
		}
		return facts
	})
	reported := map[token.Pos]bool{}
	for _, b := range g.Blocks {
		held := in[b].Clone()
		for _, op := range ops[b] {
			switch {
			case op.lock != nil && op.acquire:
				if worst := st.maxHeld(held, op.lock.rank); worst != nil && !reported[op.pos] {
					reported[op.pos] = true
					fn.pass.Reportf(op.pos, "%s acquires %s (rank %d) while holding %s (rank %d); ranked locks must be acquired in increasing order",
						fn.fd.Name.Name, op.lock.name(), op.lock.rank, worst.name(), worst.rank)
				}
				held.Set(op.lock.id)
			case op.lock != nil:
				held.Clear(op.lock.id)
			case op.callee != nil:
				lowest := st.minAcquired(op.callee)
				if lowest == nil {
					continue
				}
				if worst := st.maxHeld(held, lowest.rank); worst != nil && !reported[op.pos] {
					reported[op.pos] = true
					fn.pass.Reportf(op.pos, "%s calls %s, which may acquire %s (rank %d), while holding %s (rank %d); ranked locks must be acquired in increasing order",
						fn.fd.Name.Name, op.callee.fd.Name.Name, lowest.name(), lowest.rank, worst.name(), worst.rank)
				}
			}
		}
	}
}

// maxHeld returns the highest-ranked held lock whose rank is >= limit,
// or nil when every held lock ranks strictly below it.
func (st *lockOrderState) maxHeld(held cfg.BitSet, limit int) *rankedLock {
	var worst *rankedLock
	for _, l := range st.locks {
		if held.Has(l.id) && l.rank >= limit {
			if worst == nil || l.rank > worst.rank {
				worst = l
			}
		}
	}
	return worst
}

// minAcquired returns the lowest-ranked lock a callee may acquire.
func (st *lockOrderState) minAcquired(fn *loFunc) *rankedLock {
	ids := make([]int, 0, len(fn.acquires))
	for id := range fn.acquires {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var lowest *rankedLock
	for _, id := range ids {
		l := st.locks[id]
		if lowest == nil || l.rank < lowest.rank {
			lowest = l
		}
	}
	return lowest
}
