package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position. The triple
// (Analyzer, File, Message) identifies a finding for baseline matching;
// the line number is display-only so a baseline survives unrelated edits
// above the flagged line.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, slash-separated
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the classic file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// key is the baseline-matching identity of the finding.
func (f Finding) key() string {
	return f.Analyzer + "\t" + f.File + "\t" + f.Message
}

// Pass is everything one analyzer sees for one package.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	PkgName string
	Pkg     *types.Package
	Info    *types.Info
	ModPath string // module path, for layering-sensitive rules
	Root    string // module root, for rendering relative paths

	analyzer string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer,
		File:     filepath.ToSlash(file),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// relPkg returns the package path relative to the module ("" for the
// module root package).
func (p *Pass) relPkg() string {
	return strings.TrimPrefix(strings.TrimPrefix(p.PkgPath, p.ModPath), "/")
}

// inLibrary reports whether the package is library code (the public fix
// package or anything under internal/), as opposed to cmd, tools,
// examples, or the module root.
func (p *Pass) inLibrary() bool {
	rel := p.relPkg()
	return rel == "fix" || rel == "internal" || strings.HasPrefix(rel, "fix/") || strings.HasPrefix(rel, "internal/")
}

// Analyzer is one named rule set.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// analyzers is the full suite, in the order findings are attributed.
var analyzers = []*Analyzer{
	errcmpAnalyzer,
	lockcheckAnalyzer,
	ctxcheckAnalyzer,
	obscheckAnalyzer,
	depcheckAnalyzer,
	doccheckAnalyzer,
}

// runAnalyzers applies the selected analyzers to every package and
// returns the merged findings sorted by position.
func runAnalyzers(l *Loader, pkgs []*Package, selected []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range selected {
			pass := &Pass{
				Fset:     l.Fset,
				Files:    pkg.Files,
				PkgPath:  pkg.Path,
				PkgName:  pkg.Name,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				ModPath:  l.ModPath,
				Root:     l.Root,
				analyzer: a.Name,
				findings: &findings,
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.key() < b.key()
	})
	return findings
}

// loadBaseline reads the allowlist file: one finding key per line in the
// rendered "analyzer<TAB>file<TAB>message" form, '#' comments and blank
// lines ignored. A missing file is an empty baseline.
func loadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]bool{}, nil
		}
		return nil, err
	}
	defer f.Close()
	base := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line] = false // value flips to true when matched
	}
	return base, sc.Err()
}

// applyBaseline splits findings into new ones and baselined ones, and
// returns any stale baseline entries that no longer match a finding.
func applyBaseline(findings []Finding, base map[string]bool) (fresh []Finding, suppressed int, stale []string) {
	for _, f := range findings {
		if _, ok := base[f.key()]; ok {
			base[f.key()] = true
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	for k, matched := range base {
		if !matched {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, suppressed, stale
}
