package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Severity levels order findings for output formats and exit policy.
// Everything fails the build by default; the level picks the GitHub
// annotation kind and lets -severity=error relax heuristic passes.
const (
	SevError   = "error"
	SevWarning = "warning"
)

// Finding is one rule violation at a source position. The triple
// (Analyzer, File, Message) identifies a finding for baseline matching;
// the line number is display-only so a baseline survives unrelated edits
// above the flagged line.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	File     string `json:"file"` // module-root-relative, slash-separated
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the classic file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// key is the baseline-matching identity of the finding.
func (f Finding) key() string {
	return f.Analyzer + "\t" + f.File + "\t" + f.Message
}

// Pass is everything one analyzer sees for one package.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	PkgName string
	Pkg     *types.Package
	Info    *types.Info
	ModPath string // module path, for layering-sensitive rules
	Root    string // module root, for rendering relative paths

	analyzer string
	severity string
	findings *[]Finding
}

// Reportf records a finding at pos with the analyzer's severity.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer,
		Severity: p.severity,
		File:     filepath.ToSlash(file),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// relPkg returns the package path relative to the module ("" for the
// module root package).
func (p *Pass) relPkg() string {
	return strings.TrimPrefix(strings.TrimPrefix(p.PkgPath, p.ModPath), "/")
}

// inLibrary reports whether the package is library code (the public fix
// package or anything under internal/), as opposed to cmd, tools,
// examples, or the module root.
func (p *Pass) inLibrary() bool {
	rel := p.relPkg()
	return rel == "fix" || rel == "internal" || strings.HasPrefix(rel, "fix/") || strings.HasPrefix(rel, "internal/")
}

// ModulePass is what a module-level analyzer sees: every loaded package
// at once, for rules that need a cross-package view (lockorder's call
// graph). Module passes run single-threaded after the per-package
// phase.
type ModulePass struct {
	Fset    *token.FileSet
	Pkgs    []*Pass // one per package, sharing the module-wide finding sink
	ModPath string
	Root    string
}

// Analyzer is one named rule set. Run analyzes one package at a time
// (and must be safe to call concurrently for different packages);
// RunModule, when set instead, sees the whole module at once.
type Analyzer struct {
	Name      string
	Doc       string
	Severity  string // SevError (default) or SevWarning
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// severity returns the analyzer's effective severity.
func (a *Analyzer) severityLevel() string {
	if a.Severity == "" {
		return SevError
	}
	return a.Severity
}

// analyzers is the full suite, in the order findings are attributed.
var analyzers = []*Analyzer{
	errcmpAnalyzer,
	lockcheckAnalyzer,
	lockorderAnalyzer,
	paircheckAnalyzer,
	atomiccheckAnalyzer,
	sendcheckAnalyzer,
	ctxcheckAnalyzer,
	obscheckAnalyzer,
	depcheckAnalyzer,
	doccheckAnalyzer,
}

// passTimes accumulates per-analyzer wall time (nanoseconds) across the
// parallel package fan-out, for the -v report.
type passTimes struct {
	names []string
	nanos map[string]*atomic.Int64
}

func newPassTimes(selected []*Analyzer) *passTimes {
	pt := &passTimes{nanos: map[string]*atomic.Int64{}}
	for _, a := range selected {
		pt.names = append(pt.names, a.Name)
		pt.nanos[a.Name] = &atomic.Int64{}
	}
	return pt
}

func (pt *passTimes) add(name string, d time.Duration) {
	pt.nanos[name].Add(int64(d))
}

// report prints one line per analyzer, slowest first.
func (pt *passTimes) report(w *os.File) {
	type row struct {
		name string
		d    time.Duration
	}
	rows := make([]row, 0, len(pt.names))
	for _, n := range pt.names {
		rows = append(rows, row{n, time.Duration(pt.nanos[n].Load())})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	for _, r := range rows {
		fmt.Fprintf(w, "fixvet: pass %-12s %8.1fms\n", r.name, float64(r.d)/1e6)
	}
}

// newPass builds a per-package Pass for one analyzer writing into sink.
func newPass(l *Loader, pkg *Package, a *Analyzer, sink *[]Finding) *Pass {
	return &Pass{
		Fset:     l.Fset,
		Files:    pkg.Files,
		PkgPath:  pkg.Path,
		PkgName:  pkg.Name,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		ModPath:  l.ModPath,
		Root:     l.Root,
		analyzer: a.Name,
		severity: a.severityLevel(),
		findings: sink,
	}
}

// runAnalyzers applies the selected analyzers to every package and
// returns the merged findings sorted by position. Per-package analyzers
// fan out over a bounded worker pool (the loader's type-checked
// packages are immutable by then); findings are collected per package
// and merged in deterministic order, so the output is identical to a
// sequential run. Module-level analyzers run once, afterwards, over the
// whole package set.
func runAnalyzers(l *Loader, pkgs []*Package, selected []*Analyzer, times *passTimes) []Finding {
	var perPkg, module []*Analyzer
	for _, a := range selected {
		if a.RunModule != nil {
			module = append(module, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	results := make([][]Finding, len(pkgs))
	workers := runtime.NumCPU()
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pkgs) {
					return
				}
				var local []Finding
				for _, a := range perPkg {
					start := time.Now()
					a.Run(newPass(l, pkgs[i], a, &local))
					if times != nil {
						times.add(a.Name, time.Since(start))
					}
				}
				results[i] = local
			}
		}()
	}
	wg.Wait()

	var findings []Finding
	for _, r := range results {
		findings = append(findings, r...)
	}

	for _, a := range module {
		start := time.Now()
		mp := &ModulePass{Fset: l.Fset, ModPath: l.ModPath, Root: l.Root}
		for _, pkg := range pkgs {
			mp.Pkgs = append(mp.Pkgs, newPass(l, pkg, a, &findings))
		}
		a.RunModule(mp)
		if times != nil {
			times.add(a.Name, time.Since(start))
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.key() < b.key()
	})
	return findings
}

// loadBaseline reads the allowlist file: one finding key per line in the
// rendered "analyzer<TAB>file<TAB>message" form, '#' comments and blank
// lines ignored. A missing file is an empty baseline.
func loadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]bool{}, nil
		}
		return nil, err
	}
	defer f.Close()
	base := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line] = false // value flips to true when matched
	}
	return base, sc.Err()
}

// applyBaseline splits findings into new ones and baselined ones, and
// returns any stale baseline entries that no longer match a finding.
func applyBaseline(findings []Finding, base map[string]bool) (fresh []Finding, suppressed int, stale []string) {
	for _, f := range findings {
		if _, ok := base[f.key()]; ok {
			base[f.key()] = true
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	for k, matched := range base {
		if !matched {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, suppressed, stale
}
