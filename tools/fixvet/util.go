package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorExpr reports whether e's static type satisfies error. With no
// type information it falls back to the naming convention (an identifier
// or selector whose name is err-shaped).
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	if info != nil {
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			if tv.IsNil() {
				return false
			}
			return types.Implements(tv.Type, errorType) ||
				types.Implements(types.NewPointer(tv.Type), errorType) ||
				types.Identical(tv.Type, errorType)
		}
	}
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	}
	lower := strings.ToLower(name)
	return lower == "err" || strings.HasPrefix(name, "Err") || strings.HasSuffix(lower, "err")
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// calleeName splits a call's callee into (package-or-receiver, name):
// fmt.Errorf → ("fmt", "Errorf"), Lock() on t.mu → ("", "Lock") with the
// receiver available from the selector itself. For a bare identifier the
// qualifier is "".
func calleeName(call *ast.CallExpr) (qual, name string) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return "", fn.Name
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name, fn.Sel.Name
		}
		return "", fn.Sel.Name
	}
	return "", ""
}

// isPkgCall reports whether call is pkg.name(...) where pkg resolves to
// the package named pkgName (by import name when type info is present,
// by identifier text otherwise).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgName, funcName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if info != nil {
		if obj, ok := info.Uses[id]; ok {
			pn, isPkg := obj.(*types.PkgName)
			return isPkg && pn.Imported().Name() == pkgName
		}
	}
	return id.Name == pkgName
}

// exprString renders simple expressions (identifiers and dotted
// selectors) for messages; anything else becomes "<expr>".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "<expr>"
}

// funcsIn yields every function body in the file: declarations and
// literals, each paired with the declaration it lives in (for naming).
func funcsIn(f *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd, fd.Body)
		}
	}
}

// parentMap records the parent of every node under root.
type parentMap map[ast.Node]ast.Node

// buildParents walks root and records each node's parent.
func buildParents(root ast.Node) parentMap {
	pm := parentMap{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			pm[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return pm
}

// receiverName returns the receiver identifier and base type name of a
// method declaration ("" and "" for plain functions).
func receiverName(fd *ast.FuncDecl) (recv, typeName string) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", ""
	}
	field := fd.Recv.List[0]
	if len(field.Names) > 0 {
		recv = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip type parameters on generic receivers.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recv, typeName
}
