package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// errcmpAnalyzer enforces the error-handling discipline the durability
// layer depends on: typed sentinel errors (btree.ErrCorrupt,
// core.ErrDegraded, ...) travel through wrapped chains, so they must be
// matched with errors.Is, wrapped with %w, and their Close/cleanup
// errors must not be silently dropped.
var errcmpAnalyzer = &Analyzer{
	Name: "errcmp",
	Doc: "sentinel errors must be matched with errors.Is (never ==/!=), " +
		"fmt.Errorf over an error needs %w, and Close() errors must be " +
		"checked or explicitly discarded",
	Run: runErrcmp,
}

func runErrcmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.ExprStmt:
				checkUncheckedClose(pass, n)
			}
			return true
		})
	}
}

// checkSentinelCompare flags x == ErrFoo / x != pkg.ErrFoo. Wrapped
// errors (every fmt.Errorf("...%w") in this codebase) make the direct
// comparison silently false; errors.Is is the only correct match.
func checkSentinelCompare(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isNilIdent(b.X) || isNilIdent(b.Y) {
		return // err == nil is the idiom
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if name, ok := sentinelRef(pass.Info, side); ok {
			op := "=="
			if b.Op == token.NEQ {
				op = "!="
			}
			pass.Reportf(b.OpPos, "sentinel error %s compared with %s; use errors.Is so wrapped errors still match", name, op)
			return
		}
	}
}

// sentinelRef reports whether e references a package-level error
// variable named Err*.
func sentinelRef(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		id, name = x, x.Name
	case *ast.SelectorExpr:
		id, name = x.Sel, exprString(x)
	default:
		return "", false
	}
	if !strings.HasPrefix(id.Name, "Err") || len(id.Name) < 4 {
		return "", false
	}
	if info != nil {
		obj, ok := info.Uses[id]
		if ok {
			v, isVar := obj.(*types.Var)
			if !isVar || v.Parent() == nil || (v.Pkg() != nil && v.Parent() != v.Pkg().Scope()) {
				return "", false // not a package-level var
			}
			if !types.Implements(v.Type(), errorType) && !types.Identical(v.Type(), errorType) {
				return "", false
			}
			return name, true
		}
	}
	// No resolution (fixture with missing imports): fall back to the
	// naming convention alone.
	return name, true
}

// checkErrorfWrap flags fmt.Errorf calls that format an error argument
// while the format string carries no %w at all: the cause is erased and
// errors.Is/As can no longer see it. A format that already has a %w may
// format further errors with %v deliberately.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgCall(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorExpr(pass.Info, arg) {
			pass.Reportf(call.Pos(), "fmt.Errorf formats error %s without %%w; the cause is invisible to errors.Is", exprString(arg))
			return
		}
	}
}

// checkUncheckedClose flags statement-level x.Close() whose error result
// is dropped. Deliberate discards must say `_ = x.Close()`; defer
// x.Close() on read-only paths is left alone (a different, visible
// idiom).
func checkUncheckedClose(pass *Pass, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
		return
	}
	// Only flag when Close actually returns an error (or when type info
	// is unavailable and we assume the io.Closer shape).
	if pass.Info != nil {
		if tv, ok := pass.Info.Types[call]; ok {
			if tv.Type == nil || !types.Implements(tv.Type, errorType) {
				return
			}
		}
	}
	pass.Reportf(stmt.Pos(), "%s.Close() error is silently dropped; check it or write `_ = %s.Close()`",
		exprString(sel.X), exprString(sel.X))
}
