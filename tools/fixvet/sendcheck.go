package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// sendcheckAnalyzer applies goroutine-leak heuristics to channel
// operations inside spawned goroutines. A goroutine blocked forever on
// an unbuffered send is the classic slow leak: the spawner timed out
// and went away, nobody receives, and the goroutine (plus everything it
// captured) lives until process exit.
//
// Inside a `go` statement's body (literal, or the resolved same-package
// function for `go x.method()`), every blocking channel operation must
// be provably bounded or cancellable:
//
//   - a send/receive inside a select with a default case, a
//     ctx.Done() case, or a timer/ticker case is cancellable
//   - a send to a channel that is only ever made with a capacity
//     (make(chan T, n) locally, or every make assigned to that struct
//     field has a capacity) is bounded
//   - `<-ctx.Done()`, timer/ticker receives (x.C, time.After) are waits
//     by design
//   - `for range ch` is fine when the package closes that channel, or
//     the channel is a receive-only parameter (the producer owns
//     closing it)
//
// Everything else is flagged at warning severity. A deliberate blocking
// op is waived with `// sendcheck: bounded` on the operation's line, on
// the `go` statement's line, or in the spawned function's doc comment —
// with a justifying comment, like a baseline entry.
var sendcheckAnalyzer = &Analyzer{
	Name:     "sendcheck",
	Severity: SevWarning,
	Doc: "channel ops in spawned goroutines must be cancellable " +
		"(select with default/ctx.Done()/timer) or provably buffered; " +
		"`// sendcheck: bounded` waives a deliberate block",
	Run: runSendcheck,
}

func runSendcheck(pass *Pass) {
	sum := newChanSummary(pass)
	waived := boundedWaivers(pass)
	seen := map[*ast.BlockStmt]bool{}
	for _, f := range pass.Files {
		funcsIn(f, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				spawned, encl, doc := spawnedBody(pass, gs, fd)
				if spawned == nil || seen[spawned] {
					return true
				}
				seen[spawned] = true
				if docWaivesSend(doc) || waived[lineKey(pass, gs.Pos())] {
					return true
				}
				checkGoroutine(pass, sum, waived, encl, spawned)
				return true
			})
		})
	}
}

// lineKey renders a position as "file:line" for the waiver set.
func lineKey(pass *Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// boundedWaivers collects every `// sendcheck: bounded` comment line in
// the package.
func boundedWaivers(pass *Pass) map[string]bool {
	out := map[string]bool{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "sendcheck: bounded") {
					out[lineKey(pass, c.Pos())] = true
				}
			}
		}
	}
	return out
}

func docWaivesSend(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(doc.Text(), "sendcheck: bounded")
}

// spawnedBody resolves what a go statement runs: a function literal's
// body, or the body of a same-package function/method called directly.
// It returns the body, the function whose scope local channels should
// be resolved in, and the spawned function's doc comment (if any).
func spawnedBody(pass *Pass, gs *ast.GoStmt, encl *ast.FuncDecl) (*ast.BlockStmt, *ast.FuncDecl, *ast.CommentGroup) {
	if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return fl.Body, encl, nil
	}
	// go x.method() / go fn(): resolve to a declaration in this package.
	var name string
	switch fun := gs.Call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return nil, nil, nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Name.Name == name && fd.Body != nil {
				return fd.Body, fd, fd.Doc
			}
		}
	}
	return nil, nil, nil
}

// chanSummary is the package-wide channel knowledge: which struct
// fields are always made with a capacity, and which are closed.
type chanSummary struct {
	buffered   map[string]bool // field name → every make has a capacity arg
	unbuffered map[string]bool // field name → some make has no capacity
	closed     map[string]bool // field name → close(x.f) exists in package
}

func newChanSummary(pass *Pass) *chanSummary {
	sum := &chanSummary{
		buffered:   map[string]bool{},
		unbuffered: map[string]bool{},
		closed:     map[string]bool{},
	}
	record := func(field string, make_ *ast.CallExpr) {
		if len(make_.Args) >= 2 {
			sum.buffered[field] = true
		} else {
			sum.unbuffered[field] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || i >= len(x.Rhs) {
						continue
					}
					if mk := asChanMake(x.Rhs[min(i, len(x.Rhs)-1)]); mk != nil {
						record(sel.Sel.Name, mk)
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := x.Key.(*ast.Ident); ok {
					if mk := asChanMake(x.Value); mk != nil {
						record(key.Name, mk)
					}
				}
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
					if sel, ok := x.Args[0].(*ast.SelectorExpr); ok {
						sum.closed[sel.Sel.Name] = true
					}
				}
			}
			return true
		})
	}
	return sum
}

// asChanMake returns e as a make(chan ...) call, or nil.
func asChanMake(e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" || len(call.Args) == 0 {
		return nil
	}
	if _, ok := call.Args[0].(*ast.ChanType); !ok {
		return nil
	}
	return call
}

// checkGoroutine flags blocking channel operations in one goroutine
// body. Nested go statements are analyzed by their own visit.
func checkGoroutine(pass *Pass, sum *chanSummary, waived map[string]bool, encl *ast.FuncDecl, body *ast.BlockStmt) {
	parents := buildParents(body)
	report := func(pos token.Pos, format string, args ...any) {
		if waived[lineKey(pass, pos)] {
			return
		}
		pass.Reportf(pos, format, args...)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			if inCancellableSelect(x, parents) || chanBounded(pass, sum, encl, x.Chan) {
				return true
			}
			report(x.Pos(), "goroutine sends on %s, which is not provably buffered, outside a cancellable select (may leak; `// sendcheck: bounded` waives)",
				exprString(x.Chan))
		case *ast.UnaryExpr:
			if x.Op != token.ARROW {
				return true
			}
			ch := x.X
			if isWaitChan(pass, ch) || inCancellableSelect(x, parents) || chanBounded(pass, sum, encl, ch) {
				return true
			}
			report(x.Pos(), "goroutine blocks receiving from %s outside a cancellable select (may leak; `// sendcheck: bounded` waives)",
				exprString(ch))
		case *ast.RangeStmt:
			if !isChanType(pass, x.X) {
				return true
			}
			if chanEventuallyClosed(pass, sum, encl, x.X) {
				return true
			}
			report(x.X.Pos(), "goroutine ranges over %s but nothing in this package closes it (may leak; `// sendcheck: bounded` waives)",
				exprString(x.X))
		}
		return true
	})
}

// inCancellableSelect reports whether op sits inside a select statement
// that can always make progress: a default case, a ctx.Done() case, or
// a timer/ticker case. Only comm clauses count — an op in a case BODY
// has already been chosen and blocks on its own.
func inCancellableSelect(op ast.Node, parents parentMap) bool {
	prev := op
	for n := parents[op]; n != nil; n = parents[n] {
		if cc, ok := n.(*ast.CommClause); ok {
			if !nodeContains(cc.Comm, prev, parents) {
				return false // in the clause body, not the comm op
			}
			sel, ok := parents[parents[cc]].(*ast.SelectStmt)
			if !ok {
				return false
			}
			return selectCancellable(sel)
		}
		prev = n
	}
	return false
}

// nodeContains reports whether inner is within outer by parent-walking.
func nodeContains(outer, inner ast.Node, parents parentMap) bool {
	if outer == nil {
		return false
	}
	for n := inner; n != nil; n = parents[n] {
		if n == outer {
			return true
		}
	}
	return false
}

// selectCancellable reports whether a select has an always-progressing
// arm.
func selectCancellable(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default
		}
		found := false
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
				if isWaitChanShape(un.X) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isWaitChan reports whether ch is a deliberate wait: ctx.Done(), a
// timer/ticker channel, or time.After/time.Tick.
func isWaitChan(pass *Pass, ch ast.Expr) bool {
	return isWaitChanShape(ch)
}

// isWaitChanShape matches the wait-channel expressions by shape.
func isWaitChanShape(ch ast.Expr) bool {
	switch x := ch.(type) {
	case *ast.CallExpr:
		_, name := calleeName(x)
		return name == "Done" || name == "After" || name == "Tick"
	case *ast.SelectorExpr:
		return x.Sel.Name == "C"
	}
	return false
}

// chanBounded proves a channel has a capacity: a local `ch := make(chan
// T, n)` in the enclosing function, or a struct field whose every make
// in the package passes a capacity.
func chanBounded(pass *Pass, sum *chanSummary, encl *ast.FuncDecl, ch ast.Expr) bool {
	switch x := ch.(type) {
	case *ast.Ident:
		if encl == nil || encl.Body == nil {
			return false
		}
		bounded := false
		ast.Inspect(encl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != x.Name || i >= len(as.Rhs) {
					continue
				}
				if mk := asChanMake(as.Rhs[i]); mk != nil && len(mk.Args) >= 2 {
					bounded = true
				}
			}
			return !bounded
		})
		return bounded
	case *ast.SelectorExpr:
		f := x.Sel.Name
		return sum.buffered[f] && !sum.unbuffered[f]
	}
	return false
}

// chanEventuallyClosed reports whether ranging over ch terminates:
// someone closes it, or it is a receive-only parameter whose producer
// owns the close.
func chanEventuallyClosed(pass *Pass, sum *chanSummary, encl *ast.FuncDecl, ch ast.Expr) bool {
	switch x := ch.(type) {
	case *ast.SelectorExpr:
		return sum.closed[x.Sel.Name]
	case *ast.Ident:
		// Receive-only channels hand close responsibility to the sender.
		if pass.Info != nil {
			if tv, ok := pass.Info.Types[ch]; ok && tv.Type != nil {
				if c, ok := tv.Type.Underlying().(*types.Chan); ok && c.Dir() == types.RecvOnly {
					return true
				}
			}
		}
		if encl == nil || encl.Body == nil {
			return false
		}
		closed := false
		ast.Inspect(encl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
				if arg, ok := call.Args[0].(*ast.Ident); ok && arg.Name == x.Name {
					closed = true
				}
			}
			return !closed
		})
		return closed
	}
	return false
}

// isChanType reports whether e's static type is a channel.
func isChanType(pass *Pass, e ast.Expr) bool {
	if pass.Info == nil {
		return false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
