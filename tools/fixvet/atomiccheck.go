package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomiccheckAnalyzer enforces that fields shared through sync/atomic are
// never also touched with plain loads and stores. Mixing the two access
// modes is a data race even when it "works" on amd64, and it silently
// defeats the lock-free generation read path.
//
// Three rules:
//
//  1. A field declared with a typed atomic (atomic.Int64, atomic.Uint64,
//     atomic.Bool, atomic.Pointer[T], ...) must only be used through its
//     methods: `x.f = v` and value copies `y := x.f` are flagged; use
//     Store/Load. (Copies also smuggle the internal noCopy sentinel.)
//  2. A field whose address is passed to an old-style atomic function
//     anywhere in the package (atomic.AddInt64(&x.f, 1)) becomes atomic
//     everywhere: any plain read or write of that field outside a
//     builder function is flagged.
//  3. The immutable-after-publish discipline (formerly in lockcheck):
//     a field commented `// immutable after publish` may only be
//     assigned — or have its address taken — inside builder functions
//     (new*/New*, freeze*, publish*, or `lockcheck: builder` in the doc
//     comment). Published values are shared across goroutines without
//     locks, so any later write is a race.
var atomiccheckAnalyzer = &Analyzer{
	Name: "atomiccheck",
	Doc: "fields accessed via sync/atomic (typed atomics or &f passed to " +
		"atomic.*) must never be read or written non-atomically; " +
		"`// immutable after publish` fields are only assigned in builders",
	Run: runAtomiccheck,
}

func runAtomiccheck(pass *Pass) {
	checkImmutable(pass)
	typed := typedAtomicFields(pass)
	old := oldStyleAtomicFields(pass)
	if len(typed) == 0 && len(old) == 0 {
		return
	}
	for _, f := range pass.Files {
		parents := buildParents(f)
		funcsIn(f, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				owner := ownerTypeName(pass, fd, sel)
				if owner == "" {
					return true
				}
				field := sel.Sel.Name
				switch {
				case typed[owner][field]:
					checkTypedUse(pass, fd, sel, parents)
				case old[owner][field]:
					checkOldStyleUse(pass, fd, sel, parents)
				}
				return true
			})
		})
	}
}

// atomicTypeNames are the typed atomics of sync/atomic.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isAtomicType matches the AST shape atomic.X / atomic.Pointer[T].
func isAtomicType(t ast.Expr) bool {
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "atomic" && atomicTypeNames[sel.Sel.Name]
}

// typedAtomicFields maps struct name → fields declared with a typed
// atomic.
func typedAtomicFields(pass *Pass) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	eachStructField(pass, func(typeName string, field *ast.Field) {
		if !isAtomicType(field.Type) {
			return
		}
		set := out[typeName]
		if set == nil {
			set = map[string]bool{}
			out[typeName] = set
		}
		for _, n := range field.Names {
			set[n.Name] = true
		}
	})
	return out
}

// oldStyleAtomicFields maps struct name → fields whose address is passed
// to a sync/atomic function somewhere in the package. One atomic access
// site makes the field atomic everywhere.
func oldStyleAtomicFields(pass *Pass) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, f := range pass.Files {
		funcsIn(f, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicFuncCall(pass, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := un.X.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					owner := ownerTypeName(pass, fd, sel)
					if owner == "" {
						continue
					}
					set := out[owner]
					if set == nil {
						set = map[string]bool{}
						out[owner] = set
					}
					set[sel.Sel.Name] = true
				}
				return true
			})
		})
	}
	return out
}

// isAtomicFuncCall matches atomic.AddInt64 / atomic.LoadUint32 / ... —
// by import path when type info resolves, by AST shape otherwise.
func isAtomicFuncCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pass.Info != nil {
		if obj, ok := pass.Info.Uses[id]; ok {
			if pn, isPkg := obj.(*types.PkgName); isPkg {
				return pn.Imported().Path() == "sync/atomic"
			}
		}
	}
	if id.Name != "atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return true
		}
	}
	return false
}

// checkTypedUse flags plain assignment and value copies of a typed
// atomic field. Method calls (x.f.Load()) and taking the address are
// fine.
func checkTypedUse(pass *Pass, fd *ast.FuncDecl, sel *ast.SelectorExpr, parents map[ast.Node]ast.Node) {
	switch p := parents[sel].(type) {
	case *ast.SelectorExpr:
		return // x.f.Load() / x.f.Store(v)
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return // &x.f handed to a helper keeps atomic access
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == sel {
				pass.Reportf(sel.Pos(), "%s assigns typed atomic field %s directly; use %s.Store",
					fd.Name.Name, exprString(sel), sel.Sel.Name)
				return
			}
		}
	}
	pass.Reportf(sel.Pos(), "%s copies typed atomic field %s by value; use %s.Load",
		fd.Name.Name, exprString(sel), sel.Sel.Name)
}

// checkOldStyleUse flags plain reads/writes of a field that is accessed
// via atomic.* elsewhere in the package. The access is fine when it is
// itself the &f argument of an atomic call, or inside a builder.
func checkOldStyleUse(pass *Pass, fd *ast.FuncDecl, sel *ast.SelectorExpr, parents map[ast.Node]ast.Node) {
	if isBuilderFunc(fd) {
		return
	}
	if un, ok := parents[sel].(*ast.UnaryExpr); ok && un.Op == token.AND {
		if call, ok := parents[un].(*ast.CallExpr); ok && isAtomicFuncCall(pass, call) {
			return
		}
		pass.Reportf(sel.Pos(), "%s takes the address of atomically-accessed field %s outside an atomic call",
			fd.Name.Name, exprString(sel))
		return
	}
	pass.Reportf(sel.Pos(), "%s accesses %s non-atomically; the field is used via sync/atomic elsewhere",
		fd.Name.Name, exprString(sel))
}

// ownerTypeName resolves the struct type a selector's base refers to:
// through type info when available, else through the receiver's declared
// type for lenient fixture runs.
func ownerTypeName(pass *Pass, fd *ast.FuncDecl, sel *ast.SelectorExpr) string {
	if pass.Info != nil {
		if tv, ok := pass.Info.Types[sel.X]; ok {
			if named := namedOf(tv.Type); named != nil {
				return named.Obj().Name()
			}
		}
	}
	if recv, recvType := receiverName(fd); recv != "" {
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			return recvType
		}
	}
	return ""
}

// eachStructField visits every named struct field declaration in the
// package.
func eachStructField(pass *Pass, fn func(typeName string, field *ast.Field)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					fn(ts.Name.Name, field)
				}
			}
		}
	}
}

// immutableFields maps struct name → field names commented
// `// immutable after publish`. Unlike the mutex rules, structs without
// a mutex participate: frozen views are lock-free by design.
func immutableFields(pass *Pass) map[string]map[string]bool {
	owners := map[string]map[string]bool{}
	eachStructField(pass, func(typeName string, field *ast.Field) {
		if !strings.Contains(fieldComments(field), "immutable after publish") {
			return
		}
		set := owners[typeName]
		if set == nil {
			set = map[string]bool{}
			owners[typeName] = set
		}
		for _, n := range field.Names {
			set[n.Name] = true
		}
	})
	return owners
}

// isBuilderFunc reports whether fd may initialize immutable-after-
// publish fields: constructors and freeze/publish paths by name prefix,
// or any function annotated `lockcheck: builder` in its doc comment.
func isBuilderFunc(fd *ast.FuncDecl) bool {
	name := strings.ToLower(fd.Name.Name)
	for _, prefix := range []string{"new", "freeze", "publish"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return fd.Doc != nil && strings.Contains(fd.Doc.Text(), "lockcheck: builder")
}

// checkImmutable flags assignments to `immutable after publish` fields
// outside builder functions, and — new with the flow-aware suite —
// taking such a field's address outside a builder, which would let it
// be mutated through the pointer after publication. The owning struct
// is resolved through type info when available, falling back to the
// method receiver's declared type for fixtures analyzed without full
// type checking.
func checkImmutable(pass *Pass) {
	owners := immutableFields(pass)
	if len(owners) == 0 {
		return
	}
	// target unwraps an assignment LHS (through index and dereference
	// expressions, so x.field[i] = v counts as writing x.field) down to
	// a selector over an annotated struct.
	target := func(fd *ast.FuncDecl, lhs ast.Expr) (string, string, bool) {
	unwrap:
		for {
			switch e := lhs.(type) {
			case *ast.IndexExpr:
				lhs = e.X
			case *ast.StarExpr:
				lhs = e.X
			case *ast.ParenExpr:
				lhs = e.X
			default:
				break unwrap
			}
		}
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			return "", "", false
		}
		typeName := ownerTypeName(pass, fd, sel)
		if typeName == "" || !owners[typeName][sel.Sel.Name] {
			return "", "", false
		}
		return typeName, exprString(sel), true
	}
	for _, f := range pass.Files {
		funcsIn(f, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			if isBuilderFunc(fd) {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						if tn, field, ok := target(fd, lhs); ok {
							pass.Reportf(lhs.Pos(), "%s.%s writes %s (immutable after publish) outside a builder",
								tn, fd.Name.Name, field)
						}
					}
				case *ast.IncDecStmt:
					if tn, field, ok := target(fd, st.X); ok {
						pass.Reportf(st.X.Pos(), "%s.%s writes %s (immutable after publish) outside a builder",
							tn, fd.Name.Name, field)
					}
				case *ast.UnaryExpr:
					if st.Op != token.AND {
						return true
					}
					if sel, ok := st.X.(*ast.SelectorExpr); ok {
						if tn, ok2 := owners[ownerTypeName(pass, fd, sel)]; ok2 && tn[sel.Sel.Name] {
							pass.Reportf(st.Pos(), "%s.%s takes the address of %s (immutable after publish) outside a builder",
								ownerTypeName(pass, fd, sel), fd.Name.Name, exprString(sel))
						}
					}
				}
				return true
			})
		})
	}
}
