package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// repoRoot locates the module root two levels above this package.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	return root
}

// A want comment marks the line where a finding is expected:
//
//	expr // want `regexp`
//
// An optional offset relocates the expectation, for sites where a
// trailing comment would change the analysis (doc comments):
//
//	// want:+2 `regexp`
var (
	wantLineRe = regexp.MustCompile(`^want(?::([+-]?\d+))?\s+(.*)$`)
	wantArgRe  = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// parseWants extracts the expectations from a fixture package's
// comments, rendering file paths the same way Reportf does.
func parseWants(t *testing.T, l *Loader, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := wantLineRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, err := strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want offset %q", pos.Filename, pos.Line, m[1])
					}
					line += off
				}
				file := pos.Filename
				if rel, err := filepath.Rel(l.Root, file); err == nil {
					file = filepath.ToSlash(rel)
				}
				args := wantArgRe.FindAllStringSubmatch(m[2], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: want comment with no pattern: %s", pos.Filename, pos.Line, text)
				}
				for _, a := range args {
					raw := a[1]
					if raw == "" {
						raw = a[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: file, line: line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range analyzers {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// fixtureCases maps each golden-fixture directory to the analyzer it
// seeds violations for. The meta-test below checks that every
// registered analyzer appears here.
var fixtureCases = []struct {
	dir      string // under tools/fixvet/testdata/src
	analyzer string
	asPath   string // fake module-relative import path, selects scope-gated rules
}{
	{"errcmp", "errcmp", "internal/fixture"},
	{"lockcheck", "lockcheck", "internal/fixture"},
	{"lockorder", "lockorder", "internal/fixture"},
	{"paircheck", "paircheck", "internal/fixture"},
	{"atomiccheck", "atomiccheck", "internal/fixture"},
	{"sendcheck", "sendcheck", "internal/fixture"},
	{"ctxcheck", "ctxcheck", "internal/core"},
	{"obscheck", "obscheck", "internal/fixture"},
	{"obscheck_obs", "obscheck", "internal/obs"},
	{"depcheck", "depcheck", "internal/fixture"},
	{"doccheck_nodoc", "doccheck", "internal/nodoc"},
	{"doccheck_fix", "doccheck", "fix"},
}

// TestFixtures runs each analyzer over its seeded-violation package and
// checks the findings against the want comments, both ways: every
// finding must be wanted, every want must be found. The non-empty
// assertion doubles as the driver's seeded-violation exit check: any of
// these findings would make the binary exit non-zero.
func TestFixtures(t *testing.T) {
	root := repoRoot(t)
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			l, err := NewLoader(root)
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(root, "tools", "fixvet", "testdata", "src", tc.dir)
			pkg, err := l.LoadDir(dir, l.ModPath+"/"+tc.asPath)
			if err != nil {
				t.Fatal(err)
			}
			findings := runAnalyzers(l, []*Package{pkg}, []*Analyzer{analyzerByName(t, tc.analyzer)}, nil)
			if len(findings) == 0 {
				t.Fatalf("fixture %s seeds violations but produced no findings", tc.dir)
			}
			wants := parseWants(t, l, pkg)
			for _, f := range findings {
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no finding matching %q", w.file, w.line, w.raw)
				}
			}
		})
	}
}

// TestRegistryComplete asserts the suite's registration invariants:
// every registered analyzer shows up in the -list output with a doc
// string, and every analyzer has at least one golden fixture exercising
// it, so a new pass cannot land without a seeded-violation test.
func TestRegistryComplete(t *testing.T) {
	var buf strings.Builder
	listAnalyzers(&buf)
	listing := buf.String()
	covered := map[string]bool{}
	for _, tc := range fixtureCases {
		covered[tc.analyzer] = true
	}
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %q registered without a name or doc", a.Name)
			continue
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		seen[a.Name] = true
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunModule", a.Name)
		}
		if !strings.Contains(listing, a.Name) {
			t.Errorf("analyzer %q missing from -list output", a.Name)
		}
		if !strings.Contains(listing, "["+a.severityLevel()+"]") {
			t.Errorf("analyzer %q severity %q missing from -list output", a.Name, a.severityLevel())
		}
		if !covered[a.Name] {
			t.Errorf("analyzer %q has no golden fixture under testdata/src", a.Name)
		}
	}
	for _, tc := range fixtureCases {
		if !seen[tc.analyzer] {
			t.Errorf("fixture %q names unregistered analyzer %q", tc.dir, tc.analyzer)
		}
		if _, err := os.Stat(filepath.Join(repoRoot(t), "tools", "fixvet", "testdata", "src", tc.dir)); err != nil {
			t.Errorf("fixture dir %q missing: %v", tc.dir, err)
		}
	}
}

// TestRepoClean asserts the live tree has no findings beyond the
// committed baseline — the same invariant `make lint` enforces in CI.
func TestRepoClean(t *testing.T) {
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	findings := runAnalyzers(l, pkgs, analyzers, nil)
	base, err := loadBaseline(filepath.Join(root, "tools", "fixvet", "baseline.txt"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, stale := applyBaseline(findings, base)
	for _, f := range fresh {
		t.Errorf("finding not in baseline: %s", f)
	}
	for _, s := range stale {
		t.Errorf("stale baseline entry (fix no longer needed, delete the line): %s", strings.ReplaceAll(s, "\t", " | "))
	}
}

// TestBaselineSuppression checks the baseline identity: keyed by
// analyzer+file+message so line drift from unrelated edits does not
// resurrect suppressed findings, while stale entries are surfaced.
func TestBaselineSuppression(t *testing.T) {
	findings := []Finding{
		{Analyzer: "errcmp", File: "a.go", Line: 10, Message: "m1"},
		{Analyzer: "errcmp", File: "a.go", Line: 99, Message: "m2"},
	}
	base := map[string]bool{
		"errcmp\ta.go\tm2":    false, // suppresses regardless of line
		"errcmp\tgone.go\tmx": false, // stale
	}
	fresh, suppressed, stale := applyBaseline(findings, base)
	if len(fresh) != 1 || fresh[0].Message != "m1" {
		t.Errorf("fresh = %v, want only m1", fresh)
	}
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", suppressed)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "gone.go") {
		t.Errorf("stale = %v, want the gone.go entry", stale)
	}
}
