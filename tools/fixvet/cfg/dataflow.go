package cfg

// BitSet is a fixed-width bit vector used as the fact domain of the
// dataflow solvers: one bit per tracked resource or lock.
type BitSet []uint64

// NewBitSet returns an empty set with capacity for n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set sets bit i.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// Or unions other into s and reports whether s changed.
func (s BitSet) Or(other BitSet) bool {
	changed := false
	for i := range s {
		n := s[i] | other[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Clone returns an independent copy of s.
func (s BitSet) Clone() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// Empty reports whether no bit is set.
func (s BitSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Forward solves a forward may-analysis over g with union at merge
// points: in[entry] = ∅, in[b] = ⋃ out[pred], out[b] = transfer(b,
// in[b]). The transfer function must be monotone (it may only add or
// remove bits as a pure function of the block and its input) and must
// not retain or mutate the BitSet it is handed beyond returning a
// derived value; nbits is the domain width. Blocks unreachable from
// Entry keep empty facts.
func Forward(g *Graph, nbits int, transfer func(b *Block, in BitSet) BitSet) (in, out map[*Block]BitSet) {
	in = make(map[*Block]BitSet, len(g.Blocks))
	out = make(map[*Block]BitSet, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = NewBitSet(nbits)
		out[b] = NewBitSet(nbits)
	}
	// Seed the worklist with every block reachable from Entry, in
	// discovery order, so blocks whose input never changes (it stays
	// empty) still apply their own gen effects once.
	var work []*Block
	queued := map[*Block]bool{}
	var visit func(b *Block)
	visit = func(b *Block) {
		if queued[b] {
			return
		}
		queued[b] = true
		work = append(work, b)
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		newOut := transfer(b, in[b].Clone())
		if bitsEqual(newOut, out[b]) {
			continue
		}
		out[b] = newOut
		for _, s := range b.Succs {
			if in[s].Or(newOut) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in, out
}

// bitsEqual reports whether two same-width sets are identical.
func bitsEqual(a, b BitSet) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
