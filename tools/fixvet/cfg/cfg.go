// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies, for the flow-aware fixvet passes (lockorder,
// paircheck). It is stdlib-only by design, like the rest of the driver:
// no golang.org/x/tools, just a direct translation of Go's statement
// forms into basic blocks and successor edges.
//
// The graph is statement-granular: each basic block holds the
// statements (and branch condition expressions) that execute
// straight-line, in order, and edges connect blocks along every
// possible control transfer — including early returns, explicit
// panic(...) statements (which route to a dedicated Panic block),
// break/continue with and without labels, switch fallthrough, select
// arms, and goto. Deferred calls are collected separately in Defers:
// they run at every function exit, so flow-sensitive passes treat them
// as exit-time effects rather than placing them in a block.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: statements that execute consecutively, then
// a transfer to one of Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks, stable across a
	// build (entry is always 0).
	Index int
	// Label names the block's role for tests and debugging: "entry",
	// "exit", "panic", "if.then", "for.body", "select.case", ...
	Label string
	// Nodes holds the block's statements and control expressions in
	// execution order. Condition expressions (if/for/switch tags) appear
	// as bare ast.Expr entries at the point they are evaluated.
	Nodes []ast.Node
	// Succs are the possible next blocks.
	Succs []*Block
}

// addSucc appends s to b's successors, once.
func (b *Block) addSucc(s *Block) {
	for _, x := range b.Succs {
		if x == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// IfInfo records the blocks an *ast.IfStmt was lowered to, so passes
// can attribute edge-sensitive effects (a resource acquired only when
// the condition is true) to the right branch.
type IfInfo struct {
	Cond *Block // the block evaluating the condition
	Then *Block // the true branch's first block
	Else *Block // the false branch's first block (the join when no else)
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	// Exit is the single normal-completion block: every return
	// statement and the implicit fall-off-the-end edge lead here.
	Exit *Block
	// Panic is the explicit-panic exit: panic(...) statements edge
	// here. Deferred calls still run on this path; non-deferred cleanup
	// does not.
	Panic *Block
	// Blocks lists every block, Entry first. Blocks unreachable from
	// Entry (code after return) are retained.
	Blocks []*Block
	// Defers collects every defer statement in the body, in source
	// order. The builder approximates defer semantics: a deferred call
	// is treated as running at every exit, even when the defer sits in
	// a conditional (a deliberate over-approximation that passes must
	// keep in mind when proving "released on every path").
	Defers []*ast.DeferStmt
	// Ifs maps each if statement to its lowered blocks.
	Ifs map[*ast.IfStmt]IfInfo
}

// Preds computes the predecessor map of the graph.
func (g *Graph) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// loopFrame tracks the break/continue targets of one enclosing loop,
// switch, or select.
type loopFrame struct {
	label     string // the statement's label, "" when unlabeled
	breakTo   *Block
	contTo    *Block // nil for switch/select frames
	isLoop    bool
	nextCase  *Block // fallthrough target while building switch bodies
	savedCase *Block
}

// builder carries the state of one graph construction.
type builder struct {
	g      *Graph
	cur    *Block
	frames []loopFrame
	labels map[string]*Block   // goto targets
	gotos  map[*Block][]string // unresolved gotos per origin block
	label  string              // pending label for the next loop/switch
}

// New builds the control-flow graph of body. A nil body yields a
// two-block graph (entry → exit).
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{Ifs: map[*ast.IfStmt]IfInfo{}}
	b := &builder{
		g:      g,
		labels: map[string]*Block{},
		gotos:  map[*Block][]string{},
	}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	g.Panic = b.newBlock("panic")
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.cur.addSucc(g.Exit)
	// Resolve gotos now that every label has been seen.
	for from, names := range b.gotos {
		for _, name := range names {
			if to, ok := b.labels[name]; ok {
				from.addSucc(to)
			}
		}
	}
	return g
}

// newBlock allocates a block and registers it.
func (b *builder) newBlock(label string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Label: label}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// startBlock switches construction to a fresh block without linking it;
// used after a terminating statement so trailing dead code still has a
// home.
func (b *builder) startBlock(label string) {
	b.cur = b.newBlock(label)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt lowers one statement into the graph.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// A label is both a goto target and (for loops/switches) the
		// name break/continue statements refer to.
		target := b.newBlock("label." + s.Label.Name)
		b.cur.addSucc(target)
		b.cur = target
		b.labels[s.Label.Name] = target
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		cond := b.cur
		cond.Nodes = append(cond.Nodes, s.Cond)
		then := b.newBlock("if.then")
		join := b.newBlock("if.join")
		cond.addSucc(then)
		info := IfInfo{Cond: cond, Then: then}
		b.cur = then
		b.stmt(s.Body)
		b.cur.addSucc(join)
		if s.Else != nil {
			els := b.newBlock("if.else")
			cond.addSucc(els)
			info.Else = els
			b.cur = els
			b.stmt(s.Else)
			b.cur.addSucc(join)
		} else {
			cond.addSucc(join)
			info.Else = join
		}
		b.g.Ifs[s] = info
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		b.cur.addSucc(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.addSucc(done)
		}
		head.addSucc(body)
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			post.addSucc(head)
			contTo = post
		}
		b.pushFrame(loopFrame{label: b.takeLabel(), breakTo: done, contTo: contTo, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		b.cur.addSucc(contTo)
		b.popFrame()
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.cur.addSucc(head)
		head.Nodes = append(head.Nodes, s)
		head.addSucc(body)
		head.addSucc(done)
		b.pushFrame(loopFrame{label: b.takeLabel(), breakTo: done, contTo: head, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		b.cur.addSucc(head)
		b.popFrame()
		b.cur = done

	case *ast.SwitchStmt:
		b.lowerSwitch(s.Init, s.Tag, s.Body, "switch")

	case *ast.TypeSwitchStmt:
		b.lowerSwitch(s.Init, nil, s.Body, "typeswitch")
		// The assign statement (x := y.(type)) evaluates once, with the
		// tag: record it on the block that owned the dispatch.

	case *ast.SelectStmt:
		join := b.newBlock("select.join")
		dispatch := b.cur
		b.pushFrame(loopFrame{label: b.takeLabel(), breakTo: join})
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			label := "select.case"
			if cc.Comm == nil {
				label = "select.default"
			}
			arm := b.newBlock(label)
			dispatch.addSucc(arm)
			if cc.Comm != nil {
				arm.Nodes = append(arm.Nodes, cc.Comm)
			}
			b.cur = arm
			b.stmtList(cc.Body)
			b.cur.addSucc(join)
		}
		b.popFrame()
		if len(s.Body.List) == 0 {
			// select {} blocks forever; join is unreachable.
			b.startBlock("select.dead")
			b.cur = join
			return
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cur.addSucc(b.g.Exit)
		b.startBlock("dead")

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findFrame(s.Label, false); t != nil {
				b.cur.addSucc(t.breakTo)
			}
			b.startBlock("dead")
		case token.CONTINUE:
			if t := b.findFrame(s.Label, true); t != nil && t.contTo != nil {
				b.cur.addSucc(t.contTo)
			}
			b.startBlock("dead")
		case token.GOTO:
			if s.Label != nil {
				b.gotos[b.cur] = append(b.gotos[b.cur], s.Label.Name)
			}
			b.startBlock("dead")
		case token.FALLTHROUGH:
			if f := b.topSwitch(); f != nil && f.nextCase != nil {
				b.cur.addSucc(f.nextCase)
			}
			b.startBlock("dead")
		}

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.cur.Nodes = append(b.cur.Nodes, s)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isPanicCall(s.X) {
			b.cur.addSucc(b.g.Panic)
			b.startBlock("dead")
		}

	case nil:
		// Empty else of a lowered construct; nothing to add.

	default:
		// Assignments, declarations, sends, go statements, empty
		// statements: straight-line, no control transfer.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// lowerSwitch handles expression and type switches: the tag evaluates
// in the current block, each case body is its own block joining below,
// fallthrough edges run to the next case's body, and a missing default
// lets the dispatch block fall through to the join directly.
func (b *builder) lowerSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, kind string) {
	if init != nil {
		b.cur.Nodes = append(b.cur.Nodes, init)
	}
	if tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, tag)
	}
	dispatch := b.cur
	join := b.newBlock(kind + ".join")
	var arms []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		label := kind + ".case"
		if cc.List == nil {
			label = kind + ".default"
			hasDefault = true
		}
		arm := b.newBlock(label)
		dispatch.addSucc(arm)
		arms = append(arms, arm)
		clauses = append(clauses, cc)
	}
	if !hasDefault {
		dispatch.addSucc(join)
	}
	b.pushFrame(loopFrame{label: b.takeLabel(), breakTo: join})
	for i, cc := range clauses {
		f := &b.frames[len(b.frames)-1]
		f.nextCase = nil
		if i+1 < len(arms) {
			f.nextCase = arms[i+1]
		}
		b.cur = arms[i]
		b.stmtList(cc.Body)
		b.cur.addSucc(join)
	}
	b.popFrame()
	b.cur = join
}

// takeLabel consumes the pending statement label.
func (b *builder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *builder) pushFrame(f loopFrame) { b.frames = append(b.frames, f) }
func (b *builder) popFrame()             { b.frames = b.frames[:len(b.frames)-1] }

// findFrame resolves a break (needLoop=false) or continue
// (needLoop=true) target, honoring an optional label.
func (b *builder) findFrame(label *ast.Ident, needLoop bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// topSwitch returns the innermost switch frame (for fallthrough).
func (b *builder) topSwitch() *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		if !b.frames[i].isLoop {
			return &b.frames[i]
		}
	}
	return nil
}

// isPanicCall reports whether e is a call to the predeclared panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
