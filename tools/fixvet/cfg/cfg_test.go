package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// buildGraph parses a function body and builds its graph.
func buildGraph(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// edges renders the graph as sorted "from->to" label pairs, suffixing
// duplicate labels with their ordinal so expectations stay unambiguous.
func edges(g *Graph) []string {
	names := map[*Block]string{}
	seen := map[string]int{}
	for _, b := range g.Blocks {
		n := b.Label
		seen[n]++
		if seen[n] > 1 {
			n = fmt.Sprintf("%s#%d", n, seen[n])
		}
		names[b] = n
	}
	var out []string
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			out = append(out, names[b]+"->"+names[s])
		}
	}
	sort.Strings(out)
	return out
}

// hasEdge reports whether the rendered edge list contains from->to.
func hasEdge(es []string, from, to string) bool {
	for _, e := range es {
		if e == from+"->"+to {
			return true
		}
	}
	return false
}

func TestGraphShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
		want []string // required edges, from->to by block label
		ban  []string // edges that must not exist
	}{
		{
			name: "straight line",
			body: "x := 1\n_ = x",
			want: []string{"entry->exit"},
		},
		{
			name: "if without else",
			body: "if c { a() }\nb()",
			want: []string{"entry->if.then", "entry->if.join", "if.then->if.join", "if.join->exit"},
		},
		{
			name: "if with else",
			body: "if c { a() } else { b() }",
			want: []string{"entry->if.then", "entry->if.else", "if.then->if.join", "if.else->if.join"},
			ban:  []string{"entry->if.join"},
		},
		{
			name: "early return",
			body: "if c { return }\na()",
			want: []string{"if.then->exit", "if.join->exit"},
			ban:  []string{"if.then->if.join"},
		},
		{
			name: "for with condition",
			body: "for i := 0; i < n; i++ { a() }",
			want: []string{"entry->for.head", "for.head->for.body", "for.head->for.done", "for.body->for.post", "for.post->for.head", "for.done->exit"},
		},
		{
			name: "infinite for only exits via break",
			body: "for { if c { break }\na() }",
			want: []string{"for.head->for.body", "if.then->for.done", "if.join->for.head"},
			ban:  []string{"for.head->for.done"},
		},
		{
			name: "range loop",
			body: "for _, v := range xs { use(v) }",
			want: []string{"entry->range.head", "range.head->range.body", "range.head->range.done", "range.body->range.head"},
		},
		{
			name: "continue targets the post",
			body: "for i := 0; i < n; i++ { if c { continue }\na() }",
			want: []string{"if.then->for.post", "if.join->for.post"},
			ban:  []string{"if.then->for.head"},
		},
		{
			name: "switch with default",
			body: "switch x {\ncase 1: a()\ncase 2: b()\ndefault: c()\n}",
			want: []string{"entry->switch.case", "entry->switch.case#2", "entry->switch.default", "switch.case->switch.join", "switch.default->switch.join"},
			ban:  []string{"entry->switch.join"},
		},
		{
			name: "switch without default falls to join",
			body: "switch x {\ncase 1: a()\n}",
			want: []string{"entry->switch.join", "entry->switch.case", "switch.case->switch.join"},
		},
		{
			name: "switch fallthrough",
			body: "switch x {\ncase 1:\n\ta()\n\tfallthrough\ncase 2: b()\n}",
			want: []string{"switch.case->switch.case#2"},
		},
		{
			name: "type switch",
			body: "switch x.(type) {\ncase int: a()\ndefault: b()\n}",
			want: []string{"entry->typeswitch.case", "entry->typeswitch.default"},
		},
		{
			name: "select arms join",
			body: "select {\ncase <-a: f()\ncase b <- v: g()\ndefault: h()\n}",
			want: []string{"entry->select.case", "entry->select.case#2", "entry->select.default", "select.case->select.join", "select.default->select.join"},
		},
		{
			name: "panic routes to the panic exit",
			body: "if c { panic(\"boom\") }\na()",
			want: []string{"if.then->panic", "if.join->exit"},
			ban:  []string{"if.then->if.join"},
		},
		{
			name: "labeled break leaves the outer loop",
			body: "outer:\nfor {\n\tfor {\n\t\tif c { break outer }\n\t}\n}",
			want: []string{"if.then->for.done"},
			ban:  []string{"if.then->for.done#2"},
		},
		{
			name: "labeled continue restarts the outer loop",
			body: "outer:\nfor {\n\tfor {\n\t\tif c { continue outer }\n\t}\n}",
			want: []string{"if.then->for.head"},
		},
		{
			name: "goto jumps to its label",
			body: "again:\na()\nif c { goto again }",
			want: []string{"if.then->label.again"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildGraph(t, tc.body)
			es := edges(g)
			for _, w := range tc.want {
				parts := strings.SplitN(w, "->", 2)
				if !hasEdge(es, parts[0], parts[1]) {
					t.Errorf("missing edge %s; have:\n  %s", w, strings.Join(es, "\n  "))
				}
			}
			for _, b := range tc.ban {
				parts := strings.SplitN(b, "->", 2)
				if hasEdge(es, parts[0], parts[1]) {
					t.Errorf("unexpected edge %s; have:\n  %s", b, strings.Join(es, "\n  "))
				}
			}
		})
	}
}

// TestDefersCollected checks defer statements land in Defers, not as
// control flow.
func TestDefersCollected(t *testing.T) {
	g := buildGraph(t, "defer a()\nif c { defer b() }\nx()")
	if len(g.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(g.Defers))
	}
}

// TestIfInfo checks the if-lowering records the branch blocks so passes
// can attribute condition-dependent effects (paircheck's `if g.Pin()`).
func TestIfInfo(t *testing.T) {
	g := buildGraph(t, "if c { a() } else { b() }")
	if len(g.Ifs) != 1 {
		t.Fatalf("Ifs = %d, want 1", len(g.Ifs))
	}
	for _, info := range g.Ifs {
		if info.Cond == nil || info.Then == nil || info.Else == nil {
			t.Fatalf("incomplete IfInfo: %+v", info)
		}
		if info.Then.Label != "if.then" || info.Else.Label != "if.else" {
			t.Errorf("branch labels = %s/%s, want if.then/if.else", info.Then.Label, info.Else.Label)
		}
	}
}

// TestForwardDataflow runs the solver on a diamond: a fact generated in
// one branch must be visible at the join (may-analysis) but not before.
func TestForwardDataflow(t *testing.T) {
	g := buildGraph(t, "if c { acquire() }\nrest()")
	var genBlock *Block
	for _, b := range g.Blocks {
		if b.Label == "if.then" {
			genBlock = b
		}
	}
	if genBlock == nil {
		t.Fatal("no if.then block")
	}
	in, out := Forward(g, 1, func(b *Block, facts BitSet) BitSet {
		if b == genBlock {
			facts.Set(0)
		}
		return facts
	})
	var join *Block
	for _, b := range g.Blocks {
		if b.Label == "if.join" {
			join = b
		}
	}
	if !in[join].Has(0) {
		t.Error("fact generated in branch not visible at join")
	}
	if out[g.Entry].Has(0) {
		t.Error("fact visible before its gen block")
	}
	if !in[g.Exit].Has(0) {
		t.Error("fact not propagated to exit")
	}
}

// TestPanicPathSkipsLaterBlocks checks facts on the panic path do not
// leak into the normal exit when the panic dominates them.
func TestPanicPathSkipsLaterBlocks(t *testing.T) {
	g := buildGraph(t, "acquire()\npanic(\"x\")")
	in, _ := Forward(g, 1, func(b *Block, facts BitSet) BitSet {
		if b == g.Entry {
			facts.Set(0)
		}
		return facts
	})
	if !in[g.Panic].Has(0) {
		t.Error("fact not visible at the panic exit")
	}
}
