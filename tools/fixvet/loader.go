package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and (best-effort) type-checked package.
// Type errors are collected rather than fatal so that analyzers can run
// over fixture packages with deliberately unresolvable imports; `go
// build` remains the authority on compilability.
type Package struct {
	Path  string // import path ("github.com/fix-index/fix/internal/btree")
	Dir   string // absolute directory
	Name  string // package name from the package clauses
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds every error the type checker reported; analyses
	// degrade gracefully when type information is partial.
	TypeErrors []error
}

// Loader discovers, parses, and type-checks every package of one module
// using only the standard library: go/parser for syntax, go/types with
// the toolchain's default importer for the standard library, and its own
// directory walk for module-internal imports. No x/tools dependency.
type Loader struct {
	Root    string // absolute module root
	ModPath string // module path from go.mod
	Fset    *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package // by import path, fully loaded
	loading map[string]bool     // cycle guard
}

// NewLoader reads go.mod under root and prepares a loader.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Root:    abs,
		ModPath: modPath,
		Fset:    token.NewFileSet(),
		std:     importer.Default(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// LoadAll loads every package in the module, skipping testdata, hidden
// directories, and _test.go files, and returns them sorted by import
// path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	err := filepath.WalkDir(l.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			// Walk order interleaves a package's files with its
			// subdirectories (fixvet's own cfg/ sorts mid-package), so
			// dedupe by directory, not by run.
			if dir := filepath.Dir(path); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", rel, err)
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads a single out-of-tree directory (a test fixture) as if it
// had import path asPath, so path-sensitive analyzers behave as they
// would inside the module. Imports of module-internal packages resolve
// against the loader's module root.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(asPath, abs)
}

// load parses and type-checks the package in dir, memoized by path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !e.IsDir() {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	pkg := &Package{Path: path, Dir: dir}
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Name = f.Name.Name
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	l.loading[path] = true
	tpkg, _ := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	delete(l.loading, path)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter resolves imports during type checking: module-internal
// paths load recursively from the module tree, everything else goes to
// the toolchain importer, and anything unresolvable becomes an empty
// marker package so checking can continue (the miss is still visible as
// a collected type error and, for non-stdlib paths, a depcheck finding).
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		if l.loading[path] {
			return fakePackage(path), nil // import cycle; let go build report it
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.load(path, filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil || pkg == nil {
			return fakePackage(path), nil
		}
		return pkg.Types, nil
	}
	if p, err := l.std.Import(path); err == nil {
		return p, nil
	}
	return fakePackage(path), nil
}

// fakePackage returns an empty, complete package for an unresolvable
// import path.
func fakePackage(path string) *types.Package {
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p
}
