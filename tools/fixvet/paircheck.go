package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/fix-index/fix/tools/fixvet/cfg"
)

// paircheckAnalyzer proves acquire/release pairing on every control-flow
// path. Where lockcheck's rules are about which lock guards what,
// paircheck is about the shape of the critical section itself: a
// resource acquired on a path must be released on every continuation of
// that path, including early returns and explicit panics.
//
// Tracked pairs:
//
//   - mutexes: x.Lock()/x.Unlock(), x.RLock()/x.RUnlock() (read and
//     write modes tracked separately)
//   - generation pins: g.Pin()/g.Unpin(); `if g.Pin() { ... }` attributes
//     the acquire to the true branch only
//   - views and other closable handles: v := x.View() must reach
//     v.Close()
//   - release funcs: cancel from context.WithCancel/WithTimeout/
//     WithDeadline, and the release func returned by Acquire* APIs, must
//     be called (the classic lostcancel bug)
//   - phase timers: t := time.Now() observed via time.Since(t)/x.Sub(t)
//     on some paths must be observed on all of them (obscheck keeps the
//     flat never-observed rule; error returns and panic paths are exempt
//     for timers only)
//
// A release inside `defer` (directly or in a deferred closure) satisfies
// every path. Handing the resource off — returning it, storing it in a
// struct or global, passing it to another function, capturing it in a
// closure — transfers the release obligation and ends tracking.
//
// Annotation vocabulary (function doc comments):
//
//   - `// paircheck: releases(X)` — the body must contain a release call
//     mentioning X. Use it on release-only functions (View.Close unpins
//     v.gen) so deleting the release line fails the build.
//   - `// paircheck: acquires(X)` — dual obligation for acquire-only
//     functions.
//   - `// paircheck: ignore(X)` — stop tracking resources matching X in
//     this function; bare `paircheck: ignore` skips the whole function.
//     Every use needs a justifying comment, like baseline entries.
var paircheckAnalyzer = &Analyzer{
	Name: "paircheck",
	Doc: "acquire/release pairs (Lock/Unlock, Pin/Unpin, View/Close, " +
		"cancel funcs, phase timers) must match on every CFG path; " +
		"`// paircheck: acquires/releases(X)` declares obligations",
	Run: runPaircheck,
}

type pairKind int

const (
	pairMutex pairKind = iota
	pairPin
	pairHandle
	pairTimer
)

func (k pairKind) String() string {
	switch k {
	case pairMutex:
		return "mutex"
	case pairPin:
		return "pin"
	case pairHandle:
		return "handle"
	default:
		return "timer"
	}
}

// pairResource is one tracked obligation inside a single function.
type pairResource struct {
	id      int
	kind    pairKind
	key     string // mutex/pin: receiver expr ("/R" suffix for read mode); handle/timer: variable name
	desc    string // rendered for messages: "db.mu", "v (from db.View())"
	relVerb string // what a release looks like, for messages
	pos     token.Pos
	errVar  string // handle acquired alongside an error result: error path exempt

	releases int
	deferred bool
	escaped  bool
}

// pairEvent is an acquire or release at a point in a block.
type pairEvent struct {
	res     *pairResource
	acquire bool
}

var pairObligationRe = regexp.MustCompile(`paircheck:\s*(acquires|releases|ignore)(?:\(([^)]*)\))?`)

func runPaircheck(pass *Pass) {
	for _, f := range pass.Files {
		funcsIn(f, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			ignoreAll, ignoreKeys := pairIgnores(fd.Doc)
			checkPairObligations(pass, fd)
			if !ignoreAll {
				analyzePairs(pass, fd.Name.Name, body, ignoreKeys)
			}
			// Closures are functions too: goroutine bodies and deferred
			// cleanups get their own graphs (the enclosing analysis skips
			// their interiors).
			ast.Inspect(body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok && !ignoreAll {
					analyzePairs(pass, fd.Name.Name+" (func literal)", fl.Body, ignoreKeys)
				}
				return true
			})
		})
	}
}

// pairIgnores parses `paircheck: ignore` / `paircheck: ignore(X)` from a
// doc comment.
func pairIgnores(doc *ast.CommentGroup) (all bool, keys []string) {
	if doc == nil {
		return false, nil
	}
	for _, m := range pairObligationRe.FindAllStringSubmatch(doc.Text(), -1) {
		if m[1] != "ignore" {
			continue
		}
		if m[2] == "" {
			return true, nil
		}
		keys = append(keys, strings.TrimSpace(m[2]))
	}
	return false, keys
}

// checkPairObligations enforces declared acquires(X)/releases(X): the
// body must contain a matching call. The annotation exists for functions
// whose counterpart lives elsewhere (View.Close releases a pin acquired
// in DB.View), so deleting the release line is caught even though no
// intra-procedural pair breaks.
func checkPairObligations(pass *Pass, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	for _, m := range pairObligationRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
		verb, arg := m[1], strings.TrimSpace(m[2])
		if verb == "ignore" || arg == "" {
			continue
		}
		want := map[string]bool{}
		if verb == "acquires" {
			for _, v := range []string{"Lock", "RLock", "Pin", "TryLock"} {
				want[v] = true
			}
		} else {
			for _, v := range []string{"Unlock", "RUnlock", "Unpin", "Close", "Stop"} {
				want[v] = true
			}
		}
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			expr := exprString(call.Fun)
			if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
				if want[sel.Sel.Name] && strings.Contains(exprString(sel.X), arg) {
					found = true
				}
			} else if verb == "releases" && expr == arg {
				found = true // release func called by name: cancel()
			}
			return true
		})
		if !found {
			pass.Reportf(fd.Pos(), "%s declares `paircheck: %s(%s)` but its body has no matching %s call",
				fd.Name.Name, verb, arg, verb[:len(verb)-1])
		}
	}
}

// pairState carries one function's analysis.
type pairState struct {
	pass    *Pass
	name    string
	ignores []string
	g       *cfg.Graph
	byKey   map[string]*pairResource
	list    []*pairResource
	events  map[*cfg.Block][]pairEvent
	pre     map[*cfg.Block][]pairEvent // branch-attributed events, run at block entry
	cond    map[*ast.CallExpr]bool     // acquire calls consumed by if-condition attribution
	thenOf  map[*cfg.Block]*ast.IfStmt
}

func analyzePairs(pass *Pass, name string, body *ast.BlockStmt, ignores []string) {
	if body == nil {
		return
	}
	st := &pairState{
		pass:    pass,
		name:    name,
		ignores: ignores,
		g:       cfg.New(body),
		byKey:   map[string]*pairResource{},
		events:  map[*cfg.Block][]pairEvent{},
		pre:     map[*cfg.Block][]pairEvent{},
		cond:    map[*ast.CallExpr]bool{},
		thenOf:  map[*cfg.Block]*ast.IfStmt{},
	}
	for ifStmt, info := range st.g.Ifs {
		st.thenOf[info.Then] = ifStmt
	}
	st.condAcquires()
	st.scanBlocks(true)  // acquires
	st.scanBlocks(false) // releases
	st.errGuardKills()
	st.liftGuardedTimerReleases()
	st.scanDefers()
	st.scanEscapes(body)
	st.report()
}

// ignored reports whether a resource key was waived by ignore(X).
func (st *pairState) ignored(key string) bool {
	for _, ig := range st.ignores {
		if strings.Contains(key, ig) {
			return true
		}
	}
	return false
}

// resource interns a tracked resource by kind+key.
func (st *pairState) resource(kind pairKind, key, desc, relVerb string, pos token.Pos) *pairResource {
	full := kind.String() + ":" + key
	if r, ok := st.byKey[full]; ok {
		return r
	}
	if st.ignored(key) {
		return nil
	}
	r := &pairResource{id: len(st.list), kind: kind, key: key, desc: desc, relVerb: relVerb, pos: pos}
	st.byKey[full] = r
	st.list = append(st.list, r)
	return r
}

// lookup finds an existing resource without creating one.
func (st *pairState) lookup(kind pairKind, key string) *pairResource {
	return st.byKey[kind.String()+":"+key]
}

// condAcquires attributes conditional acquisitions — `if g.Pin() { ... }`,
// `if mu.TryLock() { ... }` — to the branch where they hold: the true
// branch, or the false branch under negation.
func (st *pairState) condAcquires() {
	for ifStmt, info := range st.g.Ifs {
		target := info.Then
		cond := ifStmt.Cond
		if un, ok := cond.(*ast.UnaryExpr); ok && un.Op == token.NOT {
			cond, target = un.X, info.Else
		}
		call, ok := cond.(*ast.CallExpr)
		if !ok {
			continue
		}
		res := st.classifyCondAcquire(call)
		if res == nil {
			continue
		}
		st.cond[call] = true
		st.pre[target] = append(st.pre[target], pairEvent{res: res, acquire: true})
	}
}

// classifyCondAcquire recognizes bool-returning acquire calls.
func (st *pairState) classifyCondAcquire(call *ast.CallExpr) *pairResource {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	recv := exprString(sel.X)
	switch sel.Sel.Name {
	case "Pin":
		return st.resource(pairPin, recv, recv, "Unpin", call.Pos())
	case "TryLock":
		if st.isMutexRecv(sel) {
			return st.resource(pairMutex, recv, recv, "Unlock", call.Pos())
		}
	case "TryRLock":
		if st.isMutexRecv(sel) {
			return st.resource(pairMutex, recv+"/R", recv, "RUnlock", call.Pos())
		}
	}
	return nil
}

// isMutexRecv reports whether a method selector's receiver is a
// sync.Mutex/RWMutex — by type info (which also resolves promoted
// methods) or, failing that, by the mu-naming convention.
func (st *pairState) isMutexRecv(sel *ast.SelectorExpr) bool {
	if st.pass.Info != nil {
		if s, ok := st.pass.Info.Selections[sel]; ok {
			if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil {
				return fn.Pkg().Path() == "sync"
			}
		}
		if tv, ok := st.pass.Info.Types[sel.X]; ok {
			if named := namedOf(tv.Type); named != nil {
				if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
					return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
				}
				return false
			}
		}
	}
	base := exprString(sel.X)
	if i := strings.LastIndex(base, "."); i >= 0 {
		base = base[i+1:]
	}
	lower := strings.ToLower(base)
	return strings.Contains(lower, "mu") || strings.Contains(lower, "lock")
}

// scanBlocks walks every block's nodes in execution order collecting
// acquire events (first sweep) then release events (second sweep —
// releases can only bind to resources the first sweep discovered).
func (st *pairState) scanBlocks(acquires bool) {
	for _, b := range st.g.Blocks {
		for _, node := range b.Nodes {
			st.scanNode(b, node, acquires)
		}
	}
}

// scanNode extracts events from one block-level node. Defer statements
// are exit-time effects handled by scanDefers; range statements carry
// their body in the AST but not in execution order, so only the range
// expression is scanned here; closures are separate functions.
func (st *pairState) scanNode(b *cfg.Block, node ast.Node, acquires bool) {
	switch n := node.(type) {
	case *ast.DeferStmt:
		return
	case *ast.RangeStmt:
		if n.X != nil {
			st.scanExpr(b, n.X, acquires)
		}
		return
	}
	st.scanExpr(b, node, acquires)
}

func (st *pairState) scanExpr(b *cfg.Block, node ast.Node, acquires bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if acquires {
				st.assignAcquire(b, x)
			}
			return true
		case *ast.CallExpr:
			if acquires {
				st.callAcquire(b, x)
			} else {
				st.callRelease(b, x)
			}
			return true
		}
		return true
	})
}

// assignAcquire recognizes handle- and timer-producing assignments:
// v := x.View(), t := time.Now(), ctx, cancel := context.WithCancel(...),
// h, release, err := s.Acquire(...).
func (st *pairState) assignAcquire(b *cfg.Block, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	lhsIdent := func(i int) *ast.Ident {
		if i >= len(as.Lhs) {
			return nil
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		return id
	}

	// t := time.Now()
	if isPkgCall(st.pass.Info, call, "time", "Now") && len(as.Lhs) == 1 {
		if id := lhsIdent(0); id != nil {
			r := st.resource(pairTimer, id.Name, id.Name+" (time.Now())", "time.Since", as.Pos())
			if r != nil {
				st.events[b] = append(st.events[b], pairEvent{res: r, acquire: true})
			}
		}
		return
	}

	// v := x.View() — only when the result type really has a Close method,
	// so value-semantic snapshots stay untracked.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "View" && len(as.Lhs) == 1 {
		if id := lhsIdent(0); id != nil && st.hasCloseMethod(call) {
			r := st.resource(pairHandle, id.Name, id.Name+" (from "+exprString(call.Fun)+")", "Close", as.Pos())
			if r != nil {
				st.events[b] = append(st.events[b], pairEvent{res: r, acquire: true})
			}
		}
		return
	}

	// Release funcs: context.WithCancel/WithTimeout/WithDeadline, and
	// Acquire*-style APIs returning a func() alongside an error.
	isCtx := isPkgCall(st.pass.Info, call, "context", "WithCancel") ||
		isPkgCall(st.pass.Info, call, "context", "WithTimeout") ||
		isPkgCall(st.pass.Info, call, "context", "WithDeadline")
	_, calleeN := calleeName(call)
	isAcq := strings.HasPrefix(calleeN, "Acquire")
	if !isCtx && !isAcq {
		return
	}
	errVar := ""
	if last := lhsIdent(len(as.Lhs) - 1); last != nil && isErrorExpr(st.pass.Info, last) {
		errVar = last.Name
	}
	for i := range as.Lhs {
		id := lhsIdent(i)
		if id == nil || id.Name == errVar {
			continue
		}
		if !st.isReleaseFunc(id) {
			continue
		}
		r := st.resource(pairHandle, id.Name, id.Name+" (from "+exprString(call.Fun)+")", "call", as.Pos())
		if r != nil {
			r.errVar = errVar
			st.events[b] = append(st.events[b], pairEvent{res: r, acquire: true})
		}
	}
}

// isReleaseFunc reports whether an assigned identifier is a nullary
// cleanup function: func() by type, or cancel/release-shaped by name
// when type info is unavailable.
func (st *pairState) isReleaseFunc(id *ast.Ident) bool {
	if st.pass.Info != nil {
		obj := st.pass.Info.Defs[id]
		if obj == nil {
			obj = st.pass.Info.Uses[id]
		}
		if obj != nil && obj.Type() != nil {
			if sig, ok := obj.Type().Underlying().(*types.Signature); ok {
				return sig.Params().Len() == 0
			}
			return false
		}
	}
	lower := strings.ToLower(id.Name)
	for _, n := range []string{"cancel", "release", "cleanup", "stop", "done"} {
		if strings.Contains(lower, n) {
			return true
		}
	}
	return false
}

// hasCloseMethod reports whether the call's result type has a Close
// method.
func (st *pairState) hasCloseMethod(call *ast.CallExpr) bool {
	if st.pass.Info == nil {
		return false
	}
	tv, ok := st.pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	ms := types.NewMethodSet(t)
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		ms = types.NewMethodSet(types.NewPointer(t))
	}
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Close" {
			return true
		}
	}
	return false
}

// callAcquire records unconditional mutex and pin acquisitions.
func (st *pairState) callAcquire(b *cfg.Block, call *ast.CallExpr) {
	if st.cond[call] {
		return // attributed to a branch by condAcquires
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := exprString(sel.X)
	var r *pairResource
	switch sel.Sel.Name {
	case "Lock":
		if st.isMutexRecv(sel) {
			r = st.resource(pairMutex, recv, recv, "Unlock", call.Pos())
		}
	case "RLock":
		if st.isMutexRecv(sel) {
			r = st.resource(pairMutex, recv+"/R", recv, "RUnlock", call.Pos())
		}
	case "Pin":
		r = st.resource(pairPin, recv, recv, "Unpin", call.Pos())
	}
	if r != nil {
		st.events[b] = append(st.events[b], pairEvent{res: r, acquire: true})
	}
}

// callRelease records releases of already-discovered resources.
func (st *pairState) callRelease(b *cfg.Block, call *ast.CallExpr) {
	if r := st.releaseTarget(call); r != nil {
		r.releases++
		st.events[b] = append(st.events[b], pairEvent{res: r})
	}
}

// releaseTarget resolves which tracked resource a call releases, if any.
func (st *pairState) releaseTarget(call *ast.CallExpr) *pairResource {
	// cancel() / release()
	if id, ok := call.Fun.(*ast.Ident); ok {
		return st.lookup(pairHandle, id.Name)
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	recv := exprString(sel.X)
	switch sel.Sel.Name {
	case "Unlock":
		return st.lookup(pairMutex, recv)
	case "RUnlock":
		return st.lookup(pairMutex, recv+"/R")
	case "Unpin":
		return st.lookup(pairPin, recv)
	case "Close":
		return st.lookup(pairHandle, recv)
	case "Since", "Sub":
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if r := st.lookup(pairTimer, id.Name); r != nil {
					return r
				}
			}
		}
	}
	return nil
}

// errGuardKills exempts the error path of handle acquisitions that came
// with an error result: after `h, release, err := Acquire(...)`, the
// `if err != nil { return ... }` branch does not owe a release (the API
// returns no live resource on error).
func (st *pairState) errGuardKills() {
	for _, r := range st.list {
		if r.errVar == "" {
			continue
		}
		for ifStmt, info := range st.g.Ifs {
			bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
			if !ok || bin.Op != token.NEQ {
				continue
			}
			x, y := bin.X, bin.Y
			if isNilIdent(x) {
				x, y = y, x
			}
			id, ok := x.(*ast.Ident)
			if ok && id.Name == r.errVar && isNilIdent(y) {
				st.pre[info.Then] = append(st.pre[info.Then], pairEvent{res: r})
			}
		}
	}
}

// liftGuardedTimerReleases handles the nil-guarded trace write idiom:
//
//	if tr != nil { tr.Parse = time.Since(start) }
//
// The observation is deliberately conditional, so the release is lifted
// to the condition block — both branches count as observed, and the
// false branch is not reported as a missing observation.
func (st *pairState) liftGuardedTimerReleases() {
	for b, evs := range st.events {
		ifStmt, isThen := st.thenOf[b]
		if !isThen {
			continue
		}
		bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || bin.Op != token.NEQ || !(isNilIdent(bin.X) || isNilIdent(bin.Y)) {
			continue
		}
		info := st.g.Ifs[ifStmt]
		kept := evs[:0]
		for _, ev := range evs {
			if !ev.acquire && ev.res.kind == pairTimer {
				st.events[info.Cond] = append(st.events[info.Cond], ev)
				continue
			}
			kept = append(kept, ev)
		}
		st.events[b] = kept
	}
}

// scanDefers marks resources released by deferred calls — directly
// (defer mu.Unlock()) or inside a deferred closure. The CFG treats
// defers as running at every exit, so a deferred release satisfies all
// paths including panic.
func (st *pairState) scanDefers() {
	for _, d := range st.g.Defers {
		if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if r := st.releaseTarget(call); r != nil {
						r.deferred = true
					}
				}
				return true
			})
			continue
		}
		if r := st.releaseTarget(d.Call); r != nil {
			r.deferred = true
		}
	}
}

// scanEscapes marks resources whose obligation transfers out of the
// function: returned, stored into a field or global, passed to another
// function, sent on a channel, or captured by a closure. Method calls
// on the resource (v.Close(), now.After(x)) are uses, not transfers.
func (st *pairState) scanEscapes(body *ast.BlockStmt) {
	byName := map[string][]*pairResource{}
	for _, r := range st.list {
		name := r.key
		if r.kind == pairMutex {
			continue // lock identity is not a first-class value here
		}
		name = strings.TrimSuffix(name, "/R")
		if strings.ContainsAny(name, ".[(") {
			// Compound receiver (v.gen): can't track the value; assume the
			// obligation lives with the owner. Pins on fields are covered
			// by paircheck: releases(...) annotations instead.
			r.escaped = true
			continue
		}
		byName[name] = append(byName[name], r)
	}
	if len(byName) == 0 {
		return
	}
	parents := buildParents(body)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		rs := byName[id.Name]
		if len(rs) == 0 {
			return true
		}
		if st.identEscapes(id, parents) {
			for _, r := range rs {
				r.escaped = true
			}
		}
		return true
	})
}

// identEscapes classifies one use of a tracked identifier.
func (st *pairState) identEscapes(id *ast.Ident, parents parentMap) bool {
	parent := parents[id]
	// v.Close(), v.Foo, v.field — selector base: a use, not a transfer.
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
		return false
	}
	// Direct argument to a call that is not a recorded release.
	if call, ok := parent.(*ast.CallExpr); ok {
		if call.Fun == id {
			return false // cancel() — the release itself
		}
		if st.releaseTarget(call) != nil {
			return false // time.Since(t)
		}
		return true
	}
	if as, ok := parent.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if lhs == id {
				return false // (re)definition, not a use
			}
		}
		return true // aliased or stored somewhere
	}
	if send, ok := parent.(*ast.SendStmt); ok && send.Value == id {
		return true
	}
	// Anything under a return, composite literal, or closure transfers.
	for n := parent; n != nil; n = parents[n] {
		switch n.(type) {
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return true
		case *ast.BlockStmt:
			return false
		}
	}
	return false
}

// report runs the dataflow for partially-released resources and emits
// findings.
func (st *pairState) report() {
	var tracked []*pairResource
	for _, r := range st.list {
		if r.deferred || r.escaped {
			continue
		}
		if r.releases == 0 {
			if r.kind == pairTimer {
				continue // obscheck owns the flat never-observed rule
			}
			st.pass.Reportf(r.pos, "%s %s in %s is never released (no %s on any path)",
				r.kind, r.desc, st.name, r.relVerb)
			continue
		}
		tracked = append(tracked, r)
	}
	if len(tracked) == 0 {
		return
	}
	final := map[*cfg.Block][]pairEvent{}
	for b, evs := range st.events {
		final[b] = evs
	}
	for b, evs := range st.pre {
		final[b] = append(append([]pairEvent{}, evs...), final[b]...)
	}
	_, out := cfg.Forward(st.g, len(st.list), func(b *cfg.Block, in cfg.BitSet) cfg.BitSet {
		for _, ev := range final[b] {
			if ev.acquire {
				in.Set(ev.res.id)
			} else {
				in.Clear(ev.res.id)
			}
		}
		return in
	})
	preds := st.g.Preds()
	for _, r := range tracked {
		st.reportLeaks(r, preds, out)
	}
}

// reportLeaks emits one finding per resource that survives to an exit on
// some path.
func (st *pairState) reportLeaks(r *pairResource, preds map[*cfg.Block][]*cfg.Block, out map[*cfg.Block]cfg.BitSet) {
	for _, p := range preds[st.g.Exit] {
		if !out[p].Has(r.id) {
			continue
		}
		if r.kind == pairTimer && st.endsInErrorReturn(p) {
			continue
		}
		at := "falling off the end"
		if ret := lastReturn(p); ret != nil {
			at = fmt.Sprintf("the return at line %d", st.lineOf(ret.Pos()))
		}
		st.pass.Reportf(r.pos, "%s %s in %s is released on some paths but not when %s",
			r.kind, r.desc, st.name, at)
		return
	}
	if r.kind == pairTimer {
		return // timers are harmless across panic
	}
	for _, p := range preds[st.g.Panic] {
		if out[p].Has(r.id) {
			st.pass.Reportf(r.pos, "%s %s in %s is still held when the panic at line %d fires (release it or use defer)",
				r.kind, r.desc, st.name, st.lineOf(p.Nodes[len(p.Nodes)-1].Pos()))
			return
		}
	}
}

func (st *pairState) lineOf(pos token.Pos) int {
	return st.pass.Fset.Position(pos).Line
}

// lastReturn returns the trailing return statement of a block, if any.
func lastReturn(b *cfg.Block) *ast.ReturnStmt {
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		if ret, ok := b.Nodes[i].(*ast.ReturnStmt); ok {
			return ret
		}
	}
	return nil
}

// endsInErrorReturn reports whether the block's exit is an error return:
// its return statement's last result is a non-nil error expression.
// Timer observations are not owed on failure paths — latency of a failed
// operation is recorded by the error counters, not the phase timers.
func (st *pairState) endsInErrorReturn(b *cfg.Block) bool {
	ret := lastReturn(b)
	if ret == nil || len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	if isNilIdent(last) {
		return false
	}
	return isErrorExpr(st.pass.Info, last)
}
