package main

import (
	"go/ast"
	"strings"
)

// ctxcheckAnalyzer enforces the context discipline the parallel pipeline
// introduced: cancellable work always flows through a *Ctx variant, and
// nothing in library code silently detaches from the caller's context.
var ctxcheckAnalyzer = &Analyzer{
	Name: "ctxcheck",
	Doc: "ctx context.Context must be the first parameter; " +
		"context.Background()/TODO() in library packages only inside a " +
		"Foo → FooCtx delegating wrapper; when Foo and FooCtx coexist, " +
		"Foo must be a pure delegation",
	Run: runCtxcheck,
}

func runCtxcheck(pass *Pass) {
	for _, f := range pass.Files {
		funcsIn(f, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			checkCtxParam(pass, fd.Name.Name, fd.Type)
			ast.Inspect(body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkCtxParam(pass, "func literal", fl.Type)
				}
				return true
			})
		})
	}
	if pass.inLibrary() {
		checkBackgroundUse(pass)
	}
	rel := pass.relPkg()
	if rel == "fix" || rel == "internal/core" {
		checkCtxPairs(pass)
	}
}

// isCtxType matches the AST shape context.Context.
func isCtxType(t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// checkCtxParam requires a context.Context parameter to be first and
// named ctx.
func checkCtxParam(pass *Pass, what string, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	flat := 0 // parameter index counting each name in a shared field once
	for fi, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtxType(field.Type) {
			if fi != 0 || flat != 0 {
				pass.Reportf(field.Pos(), "%s: context.Context must be the first parameter", what)
			}
			for _, name := range field.Names {
				if name.Name != "ctx" && name.Name != "_" {
					pass.Reportf(name.Pos(), "%s: context parameter must be named ctx, not %s", what, name.Name)
				}
			}
		}
		flat += n
	}
}

// checkBackgroundUse flags context.Background()/context.TODO() in
// library code except in the one sanctioned place: the body of an
// exported context-free Foo that is a single-return delegation to its
// own FooCtx variant, passing the fresh context first.
func checkBackgroundUse(pass *Pass) {
	for _, f := range pass.Files {
		funcsIn(f, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				isBg := isPkgCall(pass.Info, call, "context", "Background")
				isTodo := isPkgCall(pass.Info, call, "context", "TODO")
				if !isBg && !isTodo {
					return true
				}
				if isTodo {
					pass.Reportf(call.Pos(), "context.TODO() in library code; plumb a real ctx")
					return true
				}
				if !isDelegation(fd, body, call) {
					pass.Reportf(call.Pos(), "context.Background() in library code outside a FooCtx delegating wrapper; accept a ctx instead")
				}
				return true
			})
		})
	}
}

// isDelegation reports whether bgCall appears as the first argument of
// the single `return recv.<Name>Ctx(context.Background(), ...)` (or
// package-level `<Name>Ctx(...)`) statement that forms fd's whole body.
func isDelegation(fd *ast.FuncDecl, body *ast.BlockStmt, bgCall *ast.CallExpr) bool {
	if len(body.List) != 1 {
		return false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	outer, ok := ret.Results[0].(*ast.CallExpr)
	if !ok || len(outer.Args) == 0 || outer.Args[0] != bgCall {
		return false
	}
	_, callee := calleeName(outer)
	return callee == fd.Name.Name+"Ctx"
}

// checkCtxPairs: wherever Foo and FooCtx are both declared (same
// receiver), Foo must be the thin delegation — one return statement
// calling FooCtx — so behavior can never diverge between the pair.
func checkCtxPairs(pass *Pass) {
	type key struct{ recv, name string }
	funcs := map[key]*ast.FuncDecl{}
	for _, f := range pass.Files {
		funcsIn(f, func(fd *ast.FuncDecl, _ *ast.BlockStmt) {
			_, typeName := receiverName(fd)
			funcs[key{typeName, fd.Name.Name}] = fd
		})
	}
	for k, fd := range funcs {
		if strings.HasSuffix(k.name, "Ctx") {
			continue
		}
		ctxDecl, ok := funcs[key{k.recv, k.name + "Ctx"}]
		if !ok || !fd.Name.IsExported() || !ctxDecl.Name.IsExported() {
			continue
		}
		if hasCtxParam(fd.Type) {
			pass.Reportf(fd.Pos(), "%s already takes a ctx; the %sCtx variant is redundant", k.name, k.name)
			continue
		}
		if !isThinDelegation(fd) {
			pass.Reportf(fd.Pos(), "%s has a %sCtx variant but is not a single-return delegation to it; the pair can drift apart", k.name, k.name)
		}
	}
}

// hasCtxParam reports whether the signature includes a context.Context.
func hasCtxParam(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(field.Type) {
			return true
		}
	}
	return false
}

// isThinDelegation reports whether fd's body is exactly
// `return <...>.<Name>Ctx(...)`.
func isThinDelegation(fd *ast.FuncDecl) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ret.Results[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	_, callee := calleeName(call)
	return callee == fd.Name.Name+"Ctx"
}
