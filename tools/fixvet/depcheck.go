package main

import (
	"go/ast"
	"strconv"
	"strings"
)

// depcheckAnalyzer pins the module's dependency policy: the standard
// library plus module-internal packages only (the container builds with
// no network), and a one-way layering — binaries sit on top of the
// library, never the other way around, and internal engine packages
// never import the public fix package. Packages in serviceLayer are the
// deliberate exception: they sit *above* fix (like cmd binaries do) but
// stay internal because they are operational infrastructure, not public
// API; they may import fix, and fix may never import them.
var depcheckAnalyzer = &Analyzer{
	Name: "depcheck",
	Doc: "imports must be stdlib or module-internal; cmd/tools/examples " +
		"may not be imported; internal/ may not import the public fix " +
		"package (service-layer packages excepted)",
	Run: runDepcheck,
}

// serviceLayer lists internal packages layered above the public fix
// package: they orchestrate whole fix.DB instances (sharding, serving
// infrastructure) rather than implementing the engine. The layering for
// them runs cmd → service layer → fix → internal engine; depcheck still
// forbids the reverse direction (fix importing them) through the general
// internal-import rules in the fix package itself.
var serviceLayer = map[string]bool{
	"internal/collection": true,
	// experiments drives whole databases from the outside (the
	// maintenance sweep measures fix.DB checkpoint stalls), so it sits
	// above fix the same way collection does.
	"internal/experiments": true,
}

func runDepcheck(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			checkImport(pass, imp, path)
		}
	}
}

// checkImport applies the policy to a single import.
func checkImport(pass *Pass, imp *ast.ImportSpec, path string) {
	if path == "C" {
		pass.Reportf(imp.Pos(), "cgo is not allowed; the module is pure Go")
		return
	}
	inModule := path == pass.ModPath || strings.HasPrefix(path, pass.ModPath+"/")
	if !inModule {
		if !isStdlibPath(path) {
			pass.Reportf(imp.Pos(), "import %q is neither stdlib nor module-internal; the module policy is stdlib-only", path)
		}
		return
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, pass.ModPath), "/")
	passRel := pass.relPkg()
	inTools := segment(passRel) == "tools"
	switch segment(rel) {
	case "cmd", "examples":
		pass.Reportf(imp.Pos(), "import %q: command and tool packages may not be imported as libraries", path)
		return
	case "tools":
		// The tools subtree may layer internally (fixvet imports its own
		// cfg package); nothing outside it may reach in.
		if !inTools {
			pass.Reportf(imp.Pos(), "import %q: command and tool packages may not be imported as libraries", path)
		}
		return
	}
	if inTools {
		// Tools introspect the module from outside: they read source, not
		// APIs. Importing the library would couple `make lint` to the code
		// it is linting (and quietly exempt that code from analysis).
		if rel == "fix" || strings.HasPrefix(rel, "fix/") || segment(rel) == "internal" {
			pass.Reportf(imp.Pos(), "import %q: tools may only import stdlib and the tools subtree, not the library they analyze", path)
			return
		}
	}
	if pass.inLibrary() && strings.HasPrefix(pass.PkgPath, pass.ModPath+"/internal") {
		if serviceLayer[strings.TrimPrefix(strings.TrimPrefix(pass.PkgPath, pass.ModPath), "/")] {
			return
		}
		if rel == "fix" || strings.HasPrefix(rel, "fix/") {
			pass.Reportf(imp.Pos(), "internal package imports the public %q package; layering runs fix → internal, never back", path)
		}
	}
}

// segment returns the first path segment of a slash path.
func segment(p string) string {
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i]
	}
	return p
}

// isStdlibPath uses the import-path convention: standard library paths
// have no dot in their first segment ("net/http" yes, "example.com/x"
// no). That is exactly the rule the go command applies.
func isStdlibPath(path string) bool {
	return !strings.Contains(segment(path), ".")
}
