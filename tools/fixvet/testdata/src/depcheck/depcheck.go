// Package fixture seeds every depcheck rule. The driver test loads it
// as an internal/ package, where the layering rules apply.
package fixture

import (
	_ "fmt" // ok: stdlib

	_ "example.com/notstdlib" // want `neither stdlib nor module-internal`

	_ "github.com/fix-index/fix/cmd/fixindex" // want `command and tool packages may not be imported`

	_ "github.com/fix-index/fix/fix" // want `internal package imports the public`

	_ "github.com/fix-index/fix/internal/xpath" // ok: module-internal library
)
