// Package fixture seeds lock-ordering violations against a declared
// two-level hierarchy: a direct inversion inside one function, and one
// reached through a callee via the module call graph.
package fixture

import "sync"

// DB owns two ranked locks: ingestMu (20) is acquired before mu (40).
type DB struct {
	ingestMu sync.Mutex // lockcheck: order 20
	mu       sync.Mutex // lockcheck: order 40
	n        int        // guarded by mu
}

// Good acquires in increasing rank order.
func (d *DB) Good() {
	d.ingestMu.Lock()
	defer d.ingestMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
}

// Staged releases the higher rank before taking the lower one again:
// the dataflow knows mu is no longer held, so this is fine.
func (d *DB) Staged() {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
	d.ingestMu.Lock()
	defer d.ingestMu.Unlock()
}

// Inverted acquires the lower rank while holding the higher.
func (d *DB) Inverted() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ingestMu.Lock() // want `Inverted acquires DB.ingestMu \(rank 20\) while holding DB.mu \(rank 40\)`
	defer d.ingestMu.Unlock()
	d.n++
}

// ingest takes the ingest lock on behalf of callers.
func (d *DB) ingest() {
	d.ingestMu.Lock()
	defer d.ingestMu.Unlock()
}

// CallSite reaches the same inversion through a callee: the call-graph
// summary knows ingest may acquire ingestMu.
func (d *DB) CallSite() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ingest() // want `CallSite calls ingest, which may acquire DB.ingestMu \(rank 20\), while holding DB.mu \(rank 40\)`
}

// Waived inverts deliberately; the annotation records why.
//
// lockorder: ignore — fixture for the waiver itself.
func (d *DB) Waived() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ingestMu.Lock()
	defer d.ingestMu.Unlock()
}
